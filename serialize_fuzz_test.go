package wavelethist

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// Fuzz targets for the serialize layer: a registry loading snapshots from
// disk must never panic on a corrupt blob, and any blob it does accept
// must survive a marshal/unmarshal round trip unchanged.

func fuzzSeedBlobs1D(t testing.TB) [][]byte {
	t.Helper()
	ds := zipfDS(t, 5000, 1<<10)
	var blobs [][]byte
	for _, k := range []int{1, 5, 30} {
		res, err := Build(ds, SendV, Options{K: k, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		b, err := res.Histogram.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, b)
	}
	return blobs
}

func FuzzUnmarshalHistogram(f *testing.F) {
	for _, b := range fuzzSeedBlobs1D(f) {
		f.Add(b)
	}
	// Hostile seeds: valid header with NaN coefficient, trailing garbage.
	nan := binary.LittleEndian.AppendUint32(nil, histMagic)
	nan = binary.LittleEndian.AppendUint32(nan, 1)
	nan = binary.LittleEndian.AppendUint64(nan, 256)
	nan = binary.LittleEndian.AppendUint32(nan, 3)
	nan = binary.LittleEndian.AppendUint64(nan, math.Float64bits(math.NaN()))
	f.Add(nan)
	f.Add(append(append([]byte(nil), nan[:16]...), 0xde, 0xad))

	f.Fuzz(func(t *testing.T, b []byte) {
		h, err := UnmarshalHistogram(b)
		if err != nil {
			return
		}
		// Accepted input: every coefficient finite, same byte length
		// (no trailing bytes tolerated), and semantically stable under
		// remarshal. Byte equality is deliberately not asserted: the
		// wire format accepts coefficients in any order, while marshal
		// emits them magnitude-sorted.
		for _, c := range h.Coefficients() {
			if math.IsNaN(c.Value) || math.IsInf(c.Value, 0) {
				t.Fatalf("accepted non-finite coefficient %v", c)
			}
		}
		out, err := h.MarshalBinary()
		if err != nil {
			t.Fatalf("remarshal of accepted blob failed: %v", err)
		}
		if len(out) != len(b) {
			t.Fatalf("round trip changed size: %d bytes in, %d out", len(b), len(out))
		}
		h2, err := UnmarshalHistogram(out)
		if err != nil {
			t.Fatalf("reparse of remarshaled blob failed: %v", err)
		}
		if h2.Domain() != h.Domain() || h2.K() != h.K() {
			t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
				h.Domain(), h.K(), h2.Domain(), h2.K())
		}
		for x := int64(0); x < h.Domain(); x += 1 + h.Domain()/7 {
			if h2.PointEstimate(x) != h.PointEstimate(x) {
				t.Fatalf("round trip changed estimate at %d", x)
			}
		}
		if est := h.PointEstimate(0); math.IsNaN(est) {
			t.Fatal("accepted histogram produced NaN estimate")
		}
		// A canonical (marshal-produced) blob must be a byte-for-byte
		// fixed point.
		out2, err := h2.MarshalBinary()
		if err != nil || !bytes.Equal(out2, out) {
			t.Fatalf("canonical blob not a fixed point (err %v)", err)
		}
	})
}

func FuzzUnmarshalHistogram2D(f *testing.F) {
	const side = 16
	xs := make([]int64, 300)
	ys := make([]int64, 300)
	for i := range xs {
		xs[i], ys[i] = int64(i%side), int64((i*7)%side)
	}
	ds, err := NewDataset2DFromPairs(xs, ys, side, 512, 3)
	if err != nil {
		f.Fatal(err)
	}
	for _, k := range []int{1, 10, 40} {
		res, err := Build2D(ds, SendV2D, Options{K: k, Seed: 3})
		if err != nil {
			f.Fatal(err)
		}
		b, err := res.Histogram.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	inf := binary.LittleEndian.AppendUint32(nil, histMagic2D)
	inf = binary.LittleEndian.AppendUint32(inf, 1)
	inf = binary.LittleEndian.AppendUint64(inf, 16)
	inf = binary.LittleEndian.AppendUint64(inf, 2)
	inf = binary.LittleEndian.AppendUint64(inf, math.Float64bits(math.Inf(1)))
	f.Add(inf)

	f.Fuzz(func(t *testing.T, b []byte) {
		h, err := UnmarshalHistogram2D(b)
		if err != nil {
			return
		}
		out, err := h.MarshalBinary()
		if err != nil {
			t.Fatalf("remarshal of accepted blob failed: %v", err)
		}
		if len(out) != len(b) {
			t.Fatalf("round trip changed size: %d bytes in, %d out", len(b), len(out))
		}
		h2, err := UnmarshalHistogram2D(out)
		if err != nil {
			t.Fatalf("reparse of remarshaled blob failed: %v", err)
		}
		if h2.Side() != h.Side() || h2.K() != h.K() {
			t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
				h.Side(), h.K(), h2.Side(), h2.K())
		}
		for x := int64(0); x < h.Side(); x += 1 + h.Side()/5 {
			if h2.PointEstimate(x, x) != h.PointEstimate(x, x) {
				t.Fatalf("round trip changed estimate at (%d,%d)", x, x)
			}
		}
		if est := h.PointEstimate(0, 0); math.IsNaN(est) || math.IsInf(est, 0) {
			t.Fatal("accepted histogram produced non-finite estimate")
		}
		out2, err := h2.MarshalBinary()
		if err != nil || !bytes.Equal(out2, out) {
			t.Fatalf("canonical blob not a fixed point (err %v)", err)
		}
	})
}
