package ha

import (
	"bytes"
	"net/http"
	"sort"
	"sync"
	"time"

	"wavelethist/internal/obs"
)

// Router observability: every route is wrapped in a latency histogram and
// request counter (label route), and the router's forwarding counters are
// collected at scrape time. Exposed at GET /metrics on the router itself —
// a stateless front door still has health worth watching (failover rate is
// the earliest "a primary is down" signal in the cluster).

func (rt *Router) initMetrics() {
	m := obs.NewRegistry()
	rt.metrics = m
	// The coalescer instruments are registered unconditionally so the
	// families exist (at zero) on routers running with coalescing off —
	// dashboards and alert rules need no config-conditional queries.
	rt.coalesced = m.Counter("waverouter_coalesced_queries_total",
		"Single-query GETs merged into shard batches by the router-side coalescer.")
	rt.coalesceSize = m.Histogram("waverouter_coalesce_batch_size",
		"Coalesced batch sizes, recorded as size in nanoseconds: a bucket boundary of s seconds covers batches up to s*1e9 queries.")
	m.Collect(func(w *obs.Writer) {
		w.Counter("waverouter_proxied_total", "Requests forwarded to an upstream daemon.", float64(rt.proxied.Load()))
		w.Counter("waverouter_failovers_total", "Read retries against a replica after a primary failed.", float64(rt.failovers.Load()))
		w.Gauge("waverouter_shards", "Shards in the routing ring.", float64(len(rt.shards())))
		w.Gauge("waverouter_coalesce_queue_depth",
			"Queries currently parked in the coalescer awaiting batch dispatch.", float64(rt.coalesceDepth.Load()))
		rt.collectTopology(w)
	})
}

// collectTopology emits the failover posture: per-shard role health
// (primary up 0/1, replicas up count — against the LIVE topology, so a
// promotion moves the samples with it), the promotion/demotion
// counters, and the breaker counters. Without a health checker every
// target is reported up: the families must exist on static routers so
// alert rules need no config-conditional queries.
func (rt *Router) collectTopology(w *obs.Writer) {
	const stateHelp = "Per-shard role health: primary up (0/1) and count of up replicas, per the router's health checker (all up when probing is off)."
	topo := rt.topo.Load()
	ids := make([]string, 0, len(topo.shards))
	for id := range topo.shards {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		sh := topo.shards[id]
		pUp := 1.0
		if rt.health != nil && !rt.health.isUp(sh.Primary) {
			pUp = 0
		}
		rUp := 0.0
		for _, rep := range sh.Replicas {
			if rt.health == nil || rt.health.isUp(rep) {
				rUp++
			}
		}
		w.Gauge("waverouter_shard_state", stateHelp, pUp, obs.L("shard", id), obs.L("role", "primary"))
		w.Gauge("waverouter_shard_state", stateHelp, rUp, obs.L("shard", id), obs.L("role", "replica"))
	}
	var promotions, demotions float64
	if rt.health != nil {
		promotions = float64(rt.health.promotions.Load())
		demotions = float64(rt.health.demotions.Load())
	}
	w.Counter("waverouter_promotions_total", "Replicas auto-promoted to primary by the health checker.", promotions)
	w.Counter("waverouter_demotions_total", "Writable targets fenced read-only (superseded lineages).", demotions)
	w.Counter("waverouter_breaker_trips_total", "Circuit breakers opened after consecutive target failures.", float64(rt.breakers.trips.Load()))
	w.Counter("waverouter_breaker_skips_total", "Requests refused fast by an open circuit breaker.", float64(rt.breakers.skips.Load()))
}

// Metrics exposes the router's metrics registry. Note GET /metrics on
// the router serves more than this registry: see handleMetrics.
func (rt *Router) Metrics() *obs.Registry { return rt.metrics }

// handleMetrics serves the aggregated cluster exposition: the router's
// own families plus every shard's /metrics page re-labeled with
// shard="<id>" — one scrape target covering the whole fleet, no
// Prometheus federation required. A shard that is unreachable (primary
// and all replicas) or returns an unparsable page contributes only
// waverouter_shard_up{shard} = 0; everything else keeps flowing.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	merged := map[string]*obs.Family{}
	var buf bytes.Buffer
	if err := rt.metrics.Expose(&buf); err == nil {
		if own, err := obs.ParseExposition(buf.String()); err == nil {
			obs.MergeFamilies(merged, own)
		}
	}

	type shardFams struct {
		id   string
		fams map[string]*obs.Family
	}
	results := make([]shardFams, 0, len(rt.shards()))
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	for id, sh := range rt.shards() {
		wg.Add(1)
		go func(id string, sh *Shard) {
			defer wg.Done()
			var fams map[string]*obs.Family
			if resp, err := rt.readShard(r.Context(), sh, http.MethodGet, "/metrics", "", nil); err == nil && resp.status == http.StatusOK {
				fams, _ = obs.ParseExposition(string(resp.body))
			}
			mu.Lock()
			results = append(results, shardFams{id: id, fams: fams})
			mu.Unlock()
		}(id, sh)
	}
	wg.Wait()
	sort.Slice(results, func(i, j int) bool { return results[i].id < results[j].id })

	up := &obs.Family{
		Name: "waverouter_shard_up",
		Type: obs.TypeGauge,
		Help: "1 when the shard's /metrics was scraped and parsed on this request.",
	}
	for _, res := range results {
		v := 0.0
		if res.fams != nil {
			obs.MergeFamilies(merged, res.fams, obs.L("shard", res.id))
			v = 1
		}
		up.Samples = append(up.Samples, obs.Sample{
			Name:   "waverouter_shard_up",
			Labels: map[string]string{"shard": res.id},
			Value:  v,
		})
	}
	merged["waverouter_shard_up"] = up

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var out bytes.Buffer
	if err := obs.RenderFamilies(&out, merged); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Write(out.Bytes())
}

// timed wraps a handler with a per-route latency histogram and request
// counter. The route label is a fixed name, not the raw path, so
// cardinality stays bounded.
func (rt *Router) timed(route string, h http.HandlerFunc) http.HandlerFunc {
	dur := rt.metrics.Histogram("waverouter_request_duration_seconds",
		"Router-side request latency by route (including upstream time).", obs.L("route", route))
	total := rt.metrics.Counter("waverouter_requests_total",
		"Requests handled by route.", obs.L("route", route))
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		h(w, r)
		dur.Observe(time.Since(t0))
		total.Inc()
	}
}
