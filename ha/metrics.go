package ha

import (
	"net/http"
	"time"

	"wavelethist/internal/obs"
)

// Router observability: every route is wrapped in a latency histogram and
// request counter (label route), and the router's forwarding counters are
// collected at scrape time. Exposed at GET /metrics on the router itself —
// a stateless front door still has health worth watching (failover rate is
// the earliest "a primary is down" signal in the cluster).

func (rt *Router) initMetrics() {
	m := obs.NewRegistry()
	rt.metrics = m
	m.Collect(func(w *obs.Writer) {
		w.Counter("waverouter_proxied_total", "Requests forwarded to an upstream daemon.", float64(rt.proxied.Load()))
		w.Counter("waverouter_failovers_total", "Read retries against a replica after a primary failed.", float64(rt.failovers.Load()))
		w.Gauge("waverouter_shards", "Shards in the routing ring.", float64(len(rt.shards)))
	})
}

// Metrics exposes the router's metrics registry (GET /metrics).
func (rt *Router) Metrics() *obs.Registry { return rt.metrics }

// timed wraps a handler with a per-route latency histogram and request
// counter. The route label is a fixed name, not the raw path, so
// cardinality stays bounded.
func (rt *Router) timed(route string, h http.HandlerFunc) http.HandlerFunc {
	dur := rt.metrics.Histogram("waverouter_request_duration_seconds",
		"Router-side request latency by route (including upstream time).", obs.L("route", route))
	total := rt.metrics.Counter("waverouter_requests_total",
		"Requests handled by route.", obs.L("route", route))
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		h(w, r)
		dur.Observe(time.Since(t0))
		total.Inc()
	}
}
