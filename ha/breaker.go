package ha

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Per-target circuit breakers. A black-holed shard must cost one
// breaker trip, not a full client timeout per request: after
// FailThreshold consecutive failures the breaker opens and requests to
// that target fail immediately, until a jittered exponential backoff
// elapses and one half-open probe is let through. Success closes the
// breaker and resets the backoff; failure re-opens it with a doubled
// (capped) backoff. Jitter decorrelates the probe times of routers
// sharing a recovering target.

// BreakerConfig tunes the router's per-target circuit breakers; the
// zero value enables them with defaults.
type BreakerConfig struct {
	// FailThreshold is how many consecutive failures open the breaker
	// (default 3; negative disables breakers entirely).
	FailThreshold int
	// BaseBackoff is the first open interval (default 100ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (default 5s).
	MaxBackoff time.Duration
	// Seed fixes the jitter stream for deterministic tests (0 = seeded
	// from the clock).
	Seed int64
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailThreshold == 0 {
		c.FailThreshold = 3
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 100 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 5 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = time.Now().UnixNano()
	}
	return c
}

const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

type breaker struct {
	state     int
	fails     int           // consecutive failures while closed
	backoff   time.Duration // next open interval
	openUntil time.Time
}

// breakerSet holds one breaker per upstream target URL, created lazily.
type breakerSet struct {
	cfg BreakerConfig

	mu  sync.Mutex
	m   map[string]*breaker
	rng *rand.Rand

	trips atomic.Uint64 // breakers opened (waverouter_breaker_trips_total)
	skips atomic.Uint64 // requests refused while open (waverouter_breaker_skips_total)
}

func newBreakerSet(cfg BreakerConfig) *breakerSet {
	cfg = cfg.withDefaults()
	return &breakerSet{
		cfg: cfg,
		m:   map[string]*breaker{},
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
}

var errBreakerOpen = fmt.Errorf("ha: circuit breaker open")

// Allow reports whether a request to target may proceed. An open
// breaker past its backoff admits exactly one half-open probe; further
// requests keep failing fast until that probe reports back.
func (s *breakerSet) Allow(target string) bool {
	if s == nil || s.cfg.FailThreshold < 0 {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.m[target]
	if b == nil {
		return true
	}
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if time.Now().Before(b.openUntil) {
			s.skips.Add(1)
			return false
		}
		b.state = breakerHalfOpen
		return true // the probe
	default: // half-open, probe in flight
		s.skips.Add(1)
		return false
	}
}

// Success records a successful exchange: the breaker (if any) closes
// and its backoff resets.
func (s *breakerSet) Success(target string) {
	if s == nil || s.cfg.FailThreshold < 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if b := s.m[target]; b != nil {
		b.state = breakerClosed
		b.fails = 0
		b.backoff = 0
	}
}

// Failure records a failed exchange (network error or 5xx). Crossing
// the threshold — or failing the half-open probe — opens the breaker
// for a jittered, exponentially growing interval.
func (s *breakerSet) Failure(target string) {
	if s == nil || s.cfg.FailThreshold < 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.m[target]
	if b == nil {
		b = &breaker{}
		s.m[target] = b
	}
	if b.state == breakerHalfOpen {
		s.open(b)
		return
	}
	b.fails++
	if b.fails >= s.cfg.FailThreshold {
		s.open(b)
	}
}

// open transitions to the open state with the next backoff interval,
// jittered ±50% so recovering targets are not probed in lockstep.
func (s *breakerSet) open(b *breaker) {
	if b.backoff <= 0 {
		b.backoff = s.cfg.BaseBackoff
	} else {
		b.backoff *= 2
		if b.backoff > s.cfg.MaxBackoff {
			b.backoff = s.cfg.MaxBackoff
		}
	}
	jittered := b.backoff/2 + time.Duration(s.rng.Int63n(int64(b.backoff)))
	b.state = breakerOpen
	b.fails = 0
	b.openUntil = time.Now().Add(jittered)
	s.trips.Add(1)
}

// state returns the target's breaker state for the topology endpoint.
func (s *breakerSet) stateOf(target string) string {
	if s == nil || s.cfg.FailThreshold < 0 {
		return "disabled"
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.m[target]
	if b == nil {
		return "closed"
	}
	switch b.state {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}
