package ha

import (
	"fmt"
	"net/http/httptest"
	"testing"

	"wavelethist/serve"
)

// TestCrossBatchStraddlesShardsVectorized: one POST /v1/query whose
// queries straddle shard boundaries — per-shard groups large enough that
// every shard answers through the vectorized batch executor — comes back
// reassembled in request order with every estimate bit-identical to the
// owning entry's scalar answer.
func TestCrossBatchStraddlesShardsVectorized(t *testing.T) {
	s0, ts0 := newNode(t, serve.Config{Shard: "s0"})
	s1, ts1 := newNode(t, serve.Config{Shard: "s1"})
	defer s0.Close()
	defer s1.Close()
	rt, err := NewRouter([]Shard{
		{ID: "s0", Primary: ts0.URL},
		{ID: "s1", Primary: ts1.URL},
	})
	if err != nil {
		t.Fatal(err)
	}
	nodes := map[string]*serve.Server{"s0": s0, "s1": s1}

	// Find histogram names on both sides of the shard boundary and
	// publish each to its owning shard.
	byShard := map[string][]string{}
	for i := 0; len(byShard["s0"]) < 2 || len(byShard["s1"]) < 2; i++ {
		name := fmt.Sprintf("hist-%d", i)
		id := rt.Shard(name).ID
		if len(byShard[id]) >= 2 {
			continue
		}
		if _, err := nodes[id].Registry().Publish(name, buildTestHist(t, uint64(i+1))); err != nil {
			t.Fatal(err)
		}
		byShard[id] = append(byShard[id], name)
	}
	names := append(append([]string{}, byShard["s0"]...), byShard["s1"]...)

	rtSrv := httptest.NewServer(rt)
	defer rtSrv.Close()

	// 30 queries per name (well past the vectorized threshold per shard
	// group), interleaved round-robin so adjacent request indexes land on
	// different shards — reassembly order is actually exercised.
	const perName = 30
	var queries []NamedQuery
	for j := 0; j < perName; j++ {
		for _, name := range names {
			q := NamedQuery{Name: name}
			if j%3 == 0 {
				q.Op = "range"
				q.Lo = int64(j * 5)
				q.Hi = int64(j*5 + 300)
			} else {
				q.Op = "point"
				q.Key = int64((j * 37) % (1 << 12))
			}
			queries = append(queries, q)
		}
	}
	if perName < vecMinForTest {
		t.Fatalf("per-name groups of %d are under the vectorized threshold", perName)
	}

	out := postJSON(t, rtSrv.URL+"/v1/query", map[string]any{"queries": queries}, 200)
	results := out["results"].([]any)
	if len(results) != len(queries) {
		t.Fatalf("got %d results for %d queries", len(results), len(queries))
	}
	for i, rr := range results {
		res := rr.(map[string]any)
		if e, ok := res["error"]; ok && e != "" {
			t.Fatalf("query %d errored: %v", i, e)
		}
		q := queries[i]
		entry, ok := nodes[rt.Shard(q.Name).ID].Registry().Lookup(q.Name)
		if !ok {
			t.Fatalf("entry %q missing", q.Name)
		}
		var want float64
		var err error
		if q.Op == "point" {
			want, err = entry.Point(q.Key)
		} else {
			want, err = entry.Range(q.Lo, q.Hi)
		}
		if err != nil {
			t.Fatal(err)
		}
		if got := res["estimate"].(float64); got != want {
			t.Fatalf("query %d (%+v): router %v, direct %v", i, q, got, want)
		}
	}
}

// vecMinForTest mirrors serve.vecBatchMin (unexported) so this test
// fails loudly if the threshold ever outgrows the per-shard group size.
const vecMinForTest = 16
