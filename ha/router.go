package ha

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"wavelethist/internal/obs"
	"wavelethist/serve"
)

// Shard is one shard's endpoints: the writable primary plus zero or more
// read replicas (in retry order).
type Shard struct {
	ID       string   `json:"id"`
	Primary  string   `json:"primary"`
	Replicas []string `json:"replicas,omitempty"`
}

// Router is the stateless front door of a sharded wavehistd cluster. It
// owns no histogram state — placement is recomputed per request from the
// consistent-hash ring — so any number of routers can run behind a load
// balancer with zero coordination.
//
// Routing policy:
//   - Per-name requests (point, range, batch, updates, build) go to the
//     owning shard. Reads that fail against the primary (network error
//     or 5xx) retry against its replicas in order; mutations never fail
//     over, because a replica cannot accept writes.
//   - GET /v1/hist and /v1/stats fan out to every shard and merge.
//   - POST /v1/query is the cross-shard batch endpoint: queries naming
//     different histograms are grouped per name, dispatched to their
//     shards concurrently, and reassembled in request order.
//   - POST /v1/datasets broadcasts to every primary, so a later build
//     can land on whichever shard owns the histogram name.
type Router struct {
	ring *Ring
	// topo is the dynamic shard map: an immutable snapshot swapped
	// atomically when the health checker promotes a replica or fences a
	// resurrected primary. Request paths load it once and never see a
	// half-updated topology; topoMu serializes writers only.
	topo   atomic.Pointer[topology]
	topoMu sync.Mutex
	client *http.Client
	mux    *http.ServeMux

	maxBody int64

	// Per-request-class timeouts: reads must fail fast (a stuck shard
	// should cost milliseconds, not the mutation ceiling), mutations —
	// builds, dataset creation — may legitimately run long.
	readTimeout time.Duration
	mutTimeout  time.Duration

	breakers *breakerSet
	health   *healthChecker // nil unless ProbeInterval > 0

	metrics *obs.Registry

	proxied   atomic.Uint64 // requests forwarded upstream
	failovers atomic.Uint64 // retries against a further target

	// Query coalescing (coalesce.go): nil unless RouterConfig.CoalesceWait
	// is set. The depth gauge and the dispatch instruments live on the
	// Router so the metric families exist even with coalescing off.
	coal          *coalescer
	coalesceDepth atomic.Int64
	coalesced     *obs.Counter
	coalesceSize  *obs.Histogram
}

// topology is one immutable view of the shard map. Shards and their
// replica slices are never mutated in place — swaps build fresh copies.
type topology struct {
	version uint64 // bumped on every swap
	shards  map[string]*Shard
}

// RouterConfig tunes the router's optional behaviours; the zero value
// matches NewRouter.
type RouterConfig struct {
	// CoalesceWait enables router-side query coalescing: single-query
	// GETs (point, range) arriving for the same histogram within this
	// window are merged into one vectorized shard batch and scattered
	// back in arrival order. 0 disables coalescing.
	CoalesceWait time.Duration
	// CoalesceMax caps how many queries one coalesced batch may carry; a
	// full batch dispatches immediately instead of waiting out the
	// window. 0 = default (256).
	CoalesceMax int

	// ReadTimeout bounds proxied reads (point/range/batch/stats/
	// metrics); default 2s. MutationTimeout bounds proxied mutations
	// (updates, datasets, build); default 60s.
	ReadTimeout     time.Duration
	MutationTimeout time.Duration

	// Breaker tunes the per-target circuit breakers (zero value =
	// enabled with defaults; FailThreshold -1 disables).
	Breaker BreakerConfig

	// ProbeInterval enables the health checker: every target's /healthz
	// is probed on this interval, primaries are marked down after
	// ProbeFailThreshold consecutive failures (default 3), and — unless
	// NoAutoFailover — the most caught-up replica is promoted with an
	// epoch fencing token and the topology swapped. 0 disables probing
	// (the PR-6 static behaviour).
	ProbeInterval      time.Duration
	ProbeTimeout       time.Duration // per-probe budget (default min(ProbeInterval, 1s))
	ProbeFailThreshold int
	NoAutoFailover     bool
}

// NewRouter builds a router over the given shards (at least one, unique
// IDs, each with a primary) with default configuration.
func NewRouter(shards []Shard) (*Router, error) {
	return NewRouterConfig(shards, RouterConfig{})
}

// NewRouterConfig builds a router with explicit configuration.
func NewRouterConfig(shards []Shard, cfg RouterConfig) (*Router, error) {
	ids := make([]string, 0, len(shards))
	byID := make(map[string]*Shard, len(shards))
	for i := range shards {
		sh := shards[i]
		if sh.Primary == "" {
			return nil, fmt.Errorf("ha: shard %q has no primary", sh.ID)
		}
		sh.Primary = trimSlash(sh.Primary)
		for j, rep := range sh.Replicas {
			sh.Replicas[j] = trimSlash(rep)
		}
		ids = append(ids, sh.ID)
		byID[sh.ID] = &sh
	}
	ring, err := NewRing(ids, 0)
	if err != nil {
		return nil, err
	}
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = 2 * time.Second
	}
	if cfg.MutationTimeout <= 0 {
		cfg.MutationTimeout = 60 * time.Second
	}
	rt := &Router{
		ring: ring,
		// No client-level timeout: deadlines are per request class via
		// context (doTarget), so a slow build proxy cannot be killed by
		// a read ceiling nor a read stalled for the mutation one.
		client:      &http.Client{},
		mux:         http.NewServeMux(),
		maxBody:     8 << 20,
		readTimeout: cfg.ReadTimeout,
		mutTimeout:  cfg.MutationTimeout,
		breakers:    newBreakerSet(cfg.Breaker),
	}
	rt.topo.Store(&topology{version: 1, shards: byID})
	if cfg.ProbeInterval > 0 {
		rt.health = newHealthChecker(rt, cfg)
	}
	rt.initMetrics()
	if cfg.CoalesceWait > 0 {
		max := cfg.CoalesceMax
		if max <= 0 {
			max = 256
		}
		rt.coal = newCoalescer(rt, cfg.CoalesceWait, max)
	}
	rt.routes()
	if rt.health != nil {
		rt.health.start()
	}
	return rt, nil
}

// Close stops the router's background loops (health checker). Safe to
// call on routers created without one.
func (rt *Router) Close() {
	if rt.health != nil {
		rt.health.stop()
	}
}

// ServeHTTP implements http.Handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rt.mux.ServeHTTP(w, r)
}

// Shard returns the shard owning a histogram name, resolved against the
// current topology snapshot.
func (rt *Router) Shard(name string) *Shard { return rt.topo.Load().shards[rt.ring.Shard(name)] }

// shards returns the current topology's shard map. The map and its
// *Shard values are immutable — hold the pointer, never mutate.
func (rt *Router) shards() map[string]*Shard { return rt.topo.Load().shards }

// swapPrimary installs a new topology snapshot in which newPrimary
// leads shardID and the former primary (if different) is appended to
// the replica list — the router-side half of a promotion or of adopting
// a primary discovered via probes after a router restart.
func (rt *Router) swapPrimary(shardID, newPrimary string) {
	rt.topoMu.Lock()
	defer rt.topoMu.Unlock()
	old := rt.topo.Load()
	sh, ok := old.shards[shardID]
	if !ok || sh.Primary == newPrimary {
		return
	}
	next := &Shard{ID: shardID, Primary: newPrimary}
	next.Replicas = append(next.Replicas, sh.Primary)
	for _, rep := range sh.Replicas {
		if rep != newPrimary {
			next.Replicas = append(next.Replicas, rep)
		}
	}
	shards := make(map[string]*Shard, len(old.shards))
	for id, s := range old.shards {
		shards[id] = s
	}
	shards[shardID] = next
	rt.topo.Store(&topology{version: old.version + 1, shards: shards})
}

func (rt *Router) routes() {
	rt.mux.HandleFunc("GET /healthz", rt.handleHealth)
	rt.mux.HandleFunc("GET /v1/router", rt.handleTopology)
	rt.mux.HandleFunc("GET /v1/hist", rt.timed("list", rt.handleList))
	rt.mux.HandleFunc("GET /v1/hist/{name}/point", rt.timed("point", rt.maybeCoalesce("point", rt.handleNamedRead)))
	rt.mux.HandleFunc("GET /v1/hist/{name}/range", rt.timed("range", rt.maybeCoalesce("range", rt.handleNamedRead)))
	rt.mux.HandleFunc("POST /v1/hist/{name}/query", rt.timed("batch", rt.handleNamedRead))
	rt.mux.HandleFunc("POST /v1/hist/{name}/updates", rt.timed("updates", rt.handleNamedWrite))
	rt.mux.HandleFunc("POST /v1/query", rt.timed("cross_batch", rt.handleCrossBatch))
	rt.mux.HandleFunc("GET /v1/stats", rt.timed("stats", rt.handleStats))
	rt.mux.HandleFunc("POST /v1/datasets", rt.timed("datasets", rt.handleDatasets))
	rt.mux.HandleFunc("POST /v1/build", rt.timed("build", rt.handleBuild))
	rt.mux.HandleFunc("GET /v1/jobs/{id}", rt.timed("job", rt.handleJob))
	rt.mux.Handle("GET /metrics", http.HandlerFunc(rt.handleMetrics))
}

// --- upstream plumbing ---

type upstream struct {
	status      int
	contentType string
	body        []byte
}

// Request classes pick the context deadline in doTarget.
type reqClass int

const (
	classRead reqClass = iota // point/range/batch/stats/list/metrics/jobs
	classMut                  // updates/datasets/build
)

func (rt *Router) timeoutFor(class reqClass) time.Duration {
	if class == classMut {
		return rt.mutTimeout
	}
	return rt.readTimeout
}

// doMethod sends one request to a specific upstream target, honoring
// its circuit breaker and the request class's deadline. Network errors
// and 5xx answers count against the breaker; everything else closes it.
func (rt *Router) doMethod(ctx context.Context, class reqClass, method, target, pathAndQuery, contentType string, body []byte, hdr ...string) (*upstream, error) {
	if !rt.breakers.Allow(target) {
		return nil, fmt.Errorf("%w for %s", errBreakerOpen, target)
	}
	ctx, cancel := context.WithTimeout(ctx, rt.timeoutFor(class))
	defer cancel()
	rt.proxied.Add(1)
	req, err := http.NewRequestWithContext(ctx, method, target+pathAndQuery, bytes.NewReader(body))
	if err != nil {
		rt.breakers.Failure(target)
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	for i := 0; i+1 < len(hdr); i += 2 {
		req.Header.Set(hdr[i], hdr[i+1])
	}
	res, err := rt.client.Do(req)
	if err != nil {
		rt.breakers.Failure(target)
		return nil, err
	}
	defer res.Body.Close()
	b, err := io.ReadAll(res.Body)
	if err != nil {
		rt.breakers.Failure(target)
		return nil, err
	}
	if res.StatusCode >= 500 {
		rt.breakers.Failure(target)
	} else {
		rt.breakers.Success(target)
	}
	return &upstream{status: res.StatusCode, contentType: res.Header.Get("Content-Type"), body: b}, nil
}

// readShard sends a read to the shard, retrying replicas when the
// primary is unreachable or failing (network error, open breaker, or
// 5xx). Targets the health checker has marked down are tried last
// instead of skipped — if everything is down, stale verdicts must not
// make the router refuse a request that would have succeeded. 4xx
// answers are returned as-is — they are the shard's verdict, not its
// health.
func (rt *Router) readShard(ctx context.Context, sh *Shard, method, pathAndQuery, contentType string, body []byte, hdr ...string) (*upstream, error) {
	targets := make([]string, 0, 1+len(sh.Replicas))
	targets = append(targets, sh.Primary)
	targets = append(targets, sh.Replicas...)
	if rt.health != nil {
		targets = rt.health.orderUp(targets)
	}
	var (
		last    *upstream
		lastErr error
	)
	for i, target := range targets {
		if i > 0 {
			rt.failovers.Add(1)
		}
		resp, err := rt.doMethod(ctx, classRead, method, target, pathAndQuery, contentType, body, hdr...)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.status >= 500 {
			last, lastErr = resp, nil
			continue
		}
		return resp, nil
	}
	if last != nil {
		return last, nil
	}
	return nil, lastErr
}

func writeUpstream(w http.ResponseWriter, u *upstream) {
	if u.contentType != "" {
		w.Header().Set("Content-Type", u.contentType)
	}
	w.WriteHeader(u.status)
	w.Write(u.body)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (rt *Router) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	b, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.maxBody))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "read body: %v", err)
		return nil, false
	}
	return b, true
}

// --- handlers ---

func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "shards": len(rt.shards())})
}

// handleTopology surfaces the live shard map — roles as of the last
// health-driven swap, not the flags the router started with — plus
// per-target probe state, fence epochs, and the forwarding counters.
func (rt *Router) handleTopology(w http.ResponseWriter, r *http.Request) {
	topo := rt.topo.Load()
	shards := make([]*Shard, 0, len(topo.shards))
	for _, id := range rt.ring.Shards() {
		shards = append(shards, topo.shards[id])
	}
	out := map[string]any{
		"shards":           shards,
		"topology_version": topo.version,
		"proxied":          rt.proxied.Load(),
		"failovers":        rt.failovers.Load(),
	}
	if rt.health != nil {
		health, fences := rt.health.view()
		out["health"] = health
		out["fences"] = fences
		out["promotions"] = rt.health.promotions.Load()
		out["demotions"] = rt.health.demotions.Load()
	}
	writeJSON(w, http.StatusOK, out)
}

// handleNamedRead proxies a per-name read to the owning shard with
// replica failover.
func (rt *Router) handleNamedRead(w http.ResponseWriter, r *http.Request) {
	sh := rt.Shard(r.PathValue("name"))
	var body []byte
	if r.Method == http.MethodPost {
		var ok bool
		if body, ok = rt.readBody(w, r); !ok {
			return
		}
	}
	resp, err := rt.readShard(r.Context(), sh, r.Method, r.URL.RequestURI(), r.Header.Get("Content-Type"), body)
	if err != nil {
		writeErr(w, http.StatusBadGateway, "shard %q unreachable: %v", sh.ID, err)
		return
	}
	writeUpstream(w, resp)
}

// handleNamedWrite proxies a per-name mutation to the owning shard's
// primary. No failover: replicas reject writes by design, and blindly
// retrying a write elsewhere would fork the lineage.
func (rt *Router) handleNamedWrite(w http.ResponseWriter, r *http.Request) {
	sh := rt.Shard(r.PathValue("name"))
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	resp, err := rt.doMethod(r.Context(), classMut, r.Method, sh.Primary, r.URL.RequestURI(), r.Header.Get("Content-Type"), body)
	if err != nil {
		writeErr(w, http.StatusBadGateway, "shard %q primary unreachable: %v", sh.ID, err)
		return
	}
	writeUpstream(w, resp)
}

// handleList fans GET /v1/hist out to every shard and merges the
// histogram lists. A fully-unreachable shard is reported under its ID
// instead of failing the whole listing — partial visibility beats none.
func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) {
	type shardList struct {
		RegistryVersion uint64            `json:"registry_version"`
		Histograms      []json.RawMessage `json:"histograms"`
	}
	var (
		mu     sync.Mutex
		merged []json.RawMessage
		per    = map[string]any{}
		wg     sync.WaitGroup
	)
	for id, sh := range rt.shards() {
		wg.Add(1)
		go func(id string, sh *Shard) {
			defer wg.Done()
			resp, err := rt.readShard(r.Context(), sh, http.MethodGet, "/v1/hist", "", nil)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				per[id] = map[string]string{"error": err.Error()}
				return
			}
			var sl shardList
			if resp.status != http.StatusOK || json.Unmarshal(resp.body, &sl) != nil {
				per[id] = map[string]any{"error": fmt.Sprintf("HTTP %d", resp.status)}
				return
			}
			per[id] = map[string]any{"registry_version": sl.RegistryVersion}
			merged = append(merged, sl.Histograms...)
		}(id, sh)
	}
	wg.Wait()
	// Stable output: sort merged entries by their "name" field.
	sort.Slice(merged, func(i, j int) bool {
		var a, b struct {
			Name string `json:"name"`
		}
		json.Unmarshal(merged[i], &a)
		json.Unmarshal(merged[j], &b)
		return a.Name < b.Name
	})
	if merged == nil {
		merged = []json.RawMessage{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"shards": per, "histograms": merged})
}

// handleStats fans GET /v1/stats out and nests each shard's stats under
// its ID, plus the router's own counters.
func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	var (
		mu  sync.Mutex
		per = map[string]any{}
		wg  sync.WaitGroup
	)
	for id, sh := range rt.shards() {
		wg.Add(1)
		go func(id string, sh *Shard) {
			defer wg.Done()
			resp, err := rt.readShard(r.Context(), sh, http.MethodGet, "/v1/stats", "", nil)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				per[id] = map[string]string{"error": err.Error()}
				return
			}
			per[id] = json.RawMessage(resp.body)
		}(id, sh)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, map[string]any{
		"shards": per,
		"router": map[string]uint64{"proxied": rt.proxied.Load(), "failovers": rt.failovers.Load()},
	})
}

// handleDatasets broadcasts dataset creation to every primary so a
// subsequent build can run on whichever shard owns its histogram name.
func (rt *Router) handleDatasets(w http.ResponseWriter, r *http.Request) {
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	ct := r.Header.Get("Content-Type")
	var (
		mu       sync.Mutex
		firstErr *upstream
		errShard string
		netErr   error
		wg       sync.WaitGroup
	)
	for id, sh := range rt.shards() {
		wg.Add(1)
		go func(id string, sh *Shard) {
			defer wg.Done()
			resp, err := rt.doMethod(r.Context(), classMut, http.MethodPost, sh.Primary, "/v1/datasets", ct, body)
			mu.Lock()
			defer mu.Unlock()
			if err != nil && netErr == nil {
				netErr, errShard = err, id
				return
			}
			if err == nil && resp.status != http.StatusCreated && firstErr == nil {
				firstErr, errShard = resp, id
			}
		}(id, sh)
	}
	wg.Wait()
	if netErr != nil {
		writeErr(w, http.StatusBadGateway, "shard %q primary unreachable: %v", errShard, netErr)
		return
	}
	if firstErr != nil {
		writeUpstream(w, firstErr)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"shards": len(rt.shards())})
}

// handleBuild routes a build to the shard owning the histogram name in
// the request body, tagging the accepted-job response with the shard ID
// so clients know where the job lives.
func (rt *Router) handleBuild(w http.ResponseWriter, r *http.Request) {
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	var req struct {
		Name string `json:"name"`
	}
	if err := json.Unmarshal(body, &req); err != nil || req.Name == "" {
		writeErr(w, http.StatusBadRequest, "build request needs a histogram name")
		return
	}
	sh := rt.Shard(req.Name)
	resp, err := rt.doMethod(r.Context(), classMut, http.MethodPost, sh.Primary, "/v1/build", r.Header.Get("Content-Type"), body)
	if err != nil {
		writeErr(w, http.StatusBadGateway, "shard %q primary unreachable: %v", sh.ID, err)
		return
	}
	var accepted map[string]any
	if resp.status == http.StatusAccepted && json.Unmarshal(resp.body, &accepted) == nil {
		accepted["shard"] = sh.ID
		writeJSON(w, http.StatusAccepted, accepted)
		return
	}
	writeUpstream(w, resp)
}

// handleJob resolves a job ID. Shards number their jobs independently
// ("job-1" exists on every shard that has built something), so the
// build response tags the owning shard and clients pass it back as
// ?shard=ID for an exact lookup. Without the tag, every shard is asked
// and the first non-404 answer wins — unambiguous only while job IDs
// happen not to collide.
func (rt *Router) handleJob(w http.ResponseWriter, r *http.Request) {
	if id := r.URL.Query().Get("shard"); id != "" {
		sh, ok := rt.shards()[id]
		if !ok {
			writeErr(w, http.StatusBadRequest, "unknown shard %q", id)
			return
		}
		resp, err := rt.readShard(r.Context(), sh, http.MethodGet, r.URL.RequestURI(), "", nil)
		if err != nil {
			writeErr(w, http.StatusBadGateway, "shard %q unreachable: %v", id, err)
			return
		}
		writeUpstream(w, resp)
		return
	}
	for _, sh := range rt.shards() {
		resp, err := rt.readShard(r.Context(), sh, http.MethodGet, r.URL.RequestURI(), "", nil)
		if err != nil || resp.status == http.StatusNotFound {
			continue
		}
		writeUpstream(w, resp)
		return
	}
	writeErr(w, http.StatusNotFound, "no shard knows job %q", r.PathValue("id"))
}

// NamedQuery is one entry of the cross-shard batch endpoint
// POST /v1/query: a histogram name plus a standard batch query.
type NamedQuery struct {
	Name string `json:"name"`
	serve.BatchQuery
}

// handleCrossBatch groups a mixed-name batch by histogram, dispatches
// each group to its owning shard concurrently (with replica failover),
// and reassembles per-query results in request order — the scatter-
// gather a dashboard issuing one round trip for many histograms needs.
func (rt *Router) handleCrossBatch(w http.ResponseWriter, r *http.Request) {
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	var req struct {
		Queries []NamedQuery `json:"queries"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Queries) == 0 {
		writeErr(w, http.StatusBadRequest, "empty batch")
		return
	}
	// Group query indexes by name; one upstream call per distinct name.
	groups := map[string][]int{}
	for i, q := range req.Queries {
		if q.Name == "" {
			writeErr(w, http.StatusBadRequest, "query %d has no histogram name", i)
			return
		}
		groups[q.Name] = append(groups[q.Name], i)
	}
	results := make([]serve.BatchResult, len(req.Queries))
	var wg sync.WaitGroup
	for name, idxs := range groups {
		wg.Add(1)
		go func(name string, idxs []int) {
			defer wg.Done()
			sub := struct {
				Queries []serve.BatchQuery `json:"queries"`
			}{Queries: make([]serve.BatchQuery, len(idxs))}
			for j, i := range idxs {
				sub.Queries[j] = req.Queries[i].BatchQuery
			}
			payload, _ := json.Marshal(&sub)
			sh := rt.Shard(name)
			resp, err := rt.readShard(r.Context(), sh, http.MethodPost,
				"/v1/hist/"+name+"/query", "application/json", payload)
			if err != nil {
				for _, i := range idxs {
					results[i] = serve.BatchResult{Error: fmt.Sprintf("shard %q unreachable: %v", sh.ID, err)}
				}
				return
			}
			var out struct {
				Results []serve.BatchResult `json:"results"`
				Error   string              `json:"error"`
			}
			if jerr := json.Unmarshal(resp.body, &out); jerr != nil || (resp.status != http.StatusOK && out.Error == "") {
				for _, i := range idxs {
					results[i] = serve.BatchResult{Error: fmt.Sprintf("shard %q: HTTP %d", sh.ID, resp.status)}
				}
				return
			}
			if out.Error != "" {
				for _, i := range idxs {
					results[i] = serve.BatchResult{Error: out.Error}
				}
				return
			}
			for j, i := range idxs {
				if j < len(out.Results) {
					results[i] = out.Results[j]
				}
			}
		}(name, idxs)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, map[string]any{"results": results})
}
