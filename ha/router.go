package ha

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"wavelethist/internal/obs"
	"wavelethist/serve"
)

// Shard is one shard's endpoints: the writable primary plus zero or more
// read replicas (in retry order).
type Shard struct {
	ID       string   `json:"id"`
	Primary  string   `json:"primary"`
	Replicas []string `json:"replicas,omitempty"`
}

// Router is the stateless front door of a sharded wavehistd cluster. It
// owns no histogram state — placement is recomputed per request from the
// consistent-hash ring — so any number of routers can run behind a load
// balancer with zero coordination.
//
// Routing policy:
//   - Per-name requests (point, range, batch, updates, build) go to the
//     owning shard. Reads that fail against the primary (network error
//     or 5xx) retry against its replicas in order; mutations never fail
//     over, because a replica cannot accept writes.
//   - GET /v1/hist and /v1/stats fan out to every shard and merge.
//   - POST /v1/query is the cross-shard batch endpoint: queries naming
//     different histograms are grouped per name, dispatched to their
//     shards concurrently, and reassembled in request order.
//   - POST /v1/datasets broadcasts to every primary, so a later build
//     can land on whichever shard owns the histogram name.
type Router struct {
	ring   *Ring
	shards map[string]*Shard
	client *http.Client
	mux    *http.ServeMux

	maxBody int64

	metrics *obs.Registry

	proxied   atomic.Uint64 // requests forwarded upstream
	failovers atomic.Uint64 // retries against a further target

	// Query coalescing (coalesce.go): nil unless RouterConfig.CoalesceWait
	// is set. The depth gauge and the dispatch instruments live on the
	// Router so the metric families exist even with coalescing off.
	coal          *coalescer
	coalesceDepth atomic.Int64
	coalesced     *obs.Counter
	coalesceSize  *obs.Histogram
}

// RouterConfig tunes the router's optional behaviours; the zero value
// matches NewRouter.
type RouterConfig struct {
	// CoalesceWait enables router-side query coalescing: single-query
	// GETs (point, range) arriving for the same histogram within this
	// window are merged into one vectorized shard batch and scattered
	// back in arrival order. 0 disables coalescing.
	CoalesceWait time.Duration
	// CoalesceMax caps how many queries one coalesced batch may carry; a
	// full batch dispatches immediately instead of waiting out the
	// window. 0 = default (256).
	CoalesceMax int
}

// NewRouter builds a router over the given shards (at least one, unique
// IDs, each with a primary) with default configuration.
func NewRouter(shards []Shard) (*Router, error) {
	return NewRouterConfig(shards, RouterConfig{})
}

// NewRouterConfig builds a router with explicit configuration.
func NewRouterConfig(shards []Shard, cfg RouterConfig) (*Router, error) {
	ids := make([]string, 0, len(shards))
	byID := make(map[string]*Shard, len(shards))
	for i := range shards {
		sh := shards[i]
		if sh.Primary == "" {
			return nil, fmt.Errorf("ha: shard %q has no primary", sh.ID)
		}
		sh.Primary = trimSlash(sh.Primary)
		for j, rep := range sh.Replicas {
			sh.Replicas[j] = trimSlash(rep)
		}
		ids = append(ids, sh.ID)
		byID[sh.ID] = &sh
	}
	ring, err := NewRing(ids, 0)
	if err != nil {
		return nil, err
	}
	rt := &Router{
		ring:    ring,
		shards:  byID,
		client:  &http.Client{Timeout: 60 * time.Second},
		mux:     http.NewServeMux(),
		maxBody: 8 << 20,
	}
	rt.initMetrics()
	if cfg.CoalesceWait > 0 {
		max := cfg.CoalesceMax
		if max <= 0 {
			max = 256
		}
		rt.coal = newCoalescer(rt, cfg.CoalesceWait, max)
	}
	rt.routes()
	return rt, nil
}

// ServeHTTP implements http.Handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rt.mux.ServeHTTP(w, r)
}

// Shard returns the shard owning a histogram name.
func (rt *Router) Shard(name string) *Shard { return rt.shards[rt.ring.Shard(name)] }

func (rt *Router) routes() {
	rt.mux.HandleFunc("GET /healthz", rt.handleHealth)
	rt.mux.HandleFunc("GET /v1/router", rt.handleTopology)
	rt.mux.HandleFunc("GET /v1/hist", rt.timed("list", rt.handleList))
	rt.mux.HandleFunc("GET /v1/hist/{name}/point", rt.timed("point", rt.maybeCoalesce("point", rt.handleNamedRead)))
	rt.mux.HandleFunc("GET /v1/hist/{name}/range", rt.timed("range", rt.maybeCoalesce("range", rt.handleNamedRead)))
	rt.mux.HandleFunc("POST /v1/hist/{name}/query", rt.timed("batch", rt.handleNamedRead))
	rt.mux.HandleFunc("POST /v1/hist/{name}/updates", rt.timed("updates", rt.handleNamedWrite))
	rt.mux.HandleFunc("POST /v1/query", rt.timed("cross_batch", rt.handleCrossBatch))
	rt.mux.HandleFunc("GET /v1/stats", rt.timed("stats", rt.handleStats))
	rt.mux.HandleFunc("POST /v1/datasets", rt.timed("datasets", rt.handleDatasets))
	rt.mux.HandleFunc("POST /v1/build", rt.timed("build", rt.handleBuild))
	rt.mux.HandleFunc("GET /v1/jobs/{id}", rt.timed("job", rt.handleJob))
	rt.mux.Handle("GET /metrics", http.HandlerFunc(rt.handleMetrics))
}

// --- upstream plumbing ---

type upstream struct {
	status      int
	contentType string
	body        []byte
}

func (rt *Router) do(ctx context.Context, method, url, contentType string, body []byte, hdr ...string) (*upstream, error) {
	rt.proxied.Add(1)
	req, err := http.NewRequestWithContext(ctx, method, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	for i := 0; i+1 < len(hdr); i += 2 {
		req.Header.Set(hdr[i], hdr[i+1])
	}
	res, err := rt.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer res.Body.Close()
	b, err := io.ReadAll(res.Body)
	if err != nil {
		return nil, err
	}
	return &upstream{status: res.StatusCode, contentType: res.Header.Get("Content-Type"), body: b}, nil
}

// readShard sends a read to the shard, retrying replicas when the
// primary is unreachable or failing (network error or 5xx). 4xx answers
// are returned as-is — they are the shard's verdict, not its health.
func (rt *Router) readShard(ctx context.Context, sh *Shard, method, pathAndQuery, contentType string, body []byte, hdr ...string) (*upstream, error) {
	var (
		last    *upstream
		lastErr error
	)
	for i, target := range append([]string{sh.Primary}, sh.Replicas...) {
		if i > 0 {
			rt.failovers.Add(1)
		}
		resp, err := rt.do(ctx, method, target+pathAndQuery, contentType, body, hdr...)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.status >= 500 {
			last, lastErr = resp, nil
			continue
		}
		return resp, nil
	}
	if last != nil {
		return last, nil
	}
	return nil, lastErr
}

func writeUpstream(w http.ResponseWriter, u *upstream) {
	if u.contentType != "" {
		w.Header().Set("Content-Type", u.contentType)
	}
	w.WriteHeader(u.status)
	w.Write(u.body)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (rt *Router) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	b, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.maxBody))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "read body: %v", err)
		return nil, false
	}
	return b, true
}

// --- handlers ---

func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "shards": len(rt.shards)})
}

func (rt *Router) handleTopology(w http.ResponseWriter, r *http.Request) {
	shards := make([]*Shard, 0, len(rt.shards))
	for _, id := range rt.ring.Shards() {
		shards = append(shards, rt.shards[id])
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"shards":    shards,
		"proxied":   rt.proxied.Load(),
		"failovers": rt.failovers.Load(),
	})
}

// handleNamedRead proxies a per-name read to the owning shard with
// replica failover.
func (rt *Router) handleNamedRead(w http.ResponseWriter, r *http.Request) {
	sh := rt.Shard(r.PathValue("name"))
	var body []byte
	if r.Method == http.MethodPost {
		var ok bool
		if body, ok = rt.readBody(w, r); !ok {
			return
		}
	}
	resp, err := rt.readShard(r.Context(), sh, r.Method, r.URL.RequestURI(), r.Header.Get("Content-Type"), body)
	if err != nil {
		writeErr(w, http.StatusBadGateway, "shard %q unreachable: %v", sh.ID, err)
		return
	}
	writeUpstream(w, resp)
}

// handleNamedWrite proxies a per-name mutation to the owning shard's
// primary. No failover: replicas reject writes by design, and blindly
// retrying a write elsewhere would fork the lineage.
func (rt *Router) handleNamedWrite(w http.ResponseWriter, r *http.Request) {
	sh := rt.Shard(r.PathValue("name"))
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	resp, err := rt.do(r.Context(), r.Method, sh.Primary+r.URL.RequestURI(), r.Header.Get("Content-Type"), body)
	if err != nil {
		writeErr(w, http.StatusBadGateway, "shard %q primary unreachable: %v", sh.ID, err)
		return
	}
	writeUpstream(w, resp)
}

// handleList fans GET /v1/hist out to every shard and merges the
// histogram lists. A fully-unreachable shard is reported under its ID
// instead of failing the whole listing — partial visibility beats none.
func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) {
	type shardList struct {
		RegistryVersion uint64            `json:"registry_version"`
		Histograms      []json.RawMessage `json:"histograms"`
	}
	var (
		mu     sync.Mutex
		merged []json.RawMessage
		per    = map[string]any{}
		wg     sync.WaitGroup
	)
	for id, sh := range rt.shards {
		wg.Add(1)
		go func(id string, sh *Shard) {
			defer wg.Done()
			resp, err := rt.readShard(r.Context(), sh, http.MethodGet, "/v1/hist", "", nil)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				per[id] = map[string]string{"error": err.Error()}
				return
			}
			var sl shardList
			if resp.status != http.StatusOK || json.Unmarshal(resp.body, &sl) != nil {
				per[id] = map[string]any{"error": fmt.Sprintf("HTTP %d", resp.status)}
				return
			}
			per[id] = map[string]any{"registry_version": sl.RegistryVersion}
			merged = append(merged, sl.Histograms...)
		}(id, sh)
	}
	wg.Wait()
	// Stable output: sort merged entries by their "name" field.
	sort.Slice(merged, func(i, j int) bool {
		var a, b struct {
			Name string `json:"name"`
		}
		json.Unmarshal(merged[i], &a)
		json.Unmarshal(merged[j], &b)
		return a.Name < b.Name
	})
	if merged == nil {
		merged = []json.RawMessage{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"shards": per, "histograms": merged})
}

// handleStats fans GET /v1/stats out and nests each shard's stats under
// its ID, plus the router's own counters.
func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	var (
		mu  sync.Mutex
		per = map[string]any{}
		wg  sync.WaitGroup
	)
	for id, sh := range rt.shards {
		wg.Add(1)
		go func(id string, sh *Shard) {
			defer wg.Done()
			resp, err := rt.readShard(r.Context(), sh, http.MethodGet, "/v1/stats", "", nil)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				per[id] = map[string]string{"error": err.Error()}
				return
			}
			per[id] = json.RawMessage(resp.body)
		}(id, sh)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, map[string]any{
		"shards": per,
		"router": map[string]uint64{"proxied": rt.proxied.Load(), "failovers": rt.failovers.Load()},
	})
}

// handleDatasets broadcasts dataset creation to every primary so a
// subsequent build can run on whichever shard owns its histogram name.
func (rt *Router) handleDatasets(w http.ResponseWriter, r *http.Request) {
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	ct := r.Header.Get("Content-Type")
	var (
		mu       sync.Mutex
		firstErr *upstream
		errShard string
		netErr   error
		wg       sync.WaitGroup
	)
	for id, sh := range rt.shards {
		wg.Add(1)
		go func(id string, sh *Shard) {
			defer wg.Done()
			resp, err := rt.do(r.Context(), http.MethodPost, sh.Primary+"/v1/datasets", ct, body)
			mu.Lock()
			defer mu.Unlock()
			if err != nil && netErr == nil {
				netErr, errShard = err, id
				return
			}
			if err == nil && resp.status != http.StatusCreated && firstErr == nil {
				firstErr, errShard = resp, id
			}
		}(id, sh)
	}
	wg.Wait()
	if netErr != nil {
		writeErr(w, http.StatusBadGateway, "shard %q primary unreachable: %v", errShard, netErr)
		return
	}
	if firstErr != nil {
		writeUpstream(w, firstErr)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"shards": len(rt.shards)})
}

// handleBuild routes a build to the shard owning the histogram name in
// the request body, tagging the accepted-job response with the shard ID
// so clients know where the job lives.
func (rt *Router) handleBuild(w http.ResponseWriter, r *http.Request) {
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	var req struct {
		Name string `json:"name"`
	}
	if err := json.Unmarshal(body, &req); err != nil || req.Name == "" {
		writeErr(w, http.StatusBadRequest, "build request needs a histogram name")
		return
	}
	sh := rt.Shard(req.Name)
	resp, err := rt.do(r.Context(), http.MethodPost, sh.Primary+"/v1/build", r.Header.Get("Content-Type"), body)
	if err != nil {
		writeErr(w, http.StatusBadGateway, "shard %q primary unreachable: %v", sh.ID, err)
		return
	}
	var accepted map[string]any
	if resp.status == http.StatusAccepted && json.Unmarshal(resp.body, &accepted) == nil {
		accepted["shard"] = sh.ID
		writeJSON(w, http.StatusAccepted, accepted)
		return
	}
	writeUpstream(w, resp)
}

// handleJob resolves a job ID. Shards number their jobs independently
// ("job-1" exists on every shard that has built something), so the
// build response tags the owning shard and clients pass it back as
// ?shard=ID for an exact lookup. Without the tag, every shard is asked
// and the first non-404 answer wins — unambiguous only while job IDs
// happen not to collide.
func (rt *Router) handleJob(w http.ResponseWriter, r *http.Request) {
	if id := r.URL.Query().Get("shard"); id != "" {
		sh, ok := rt.shards[id]
		if !ok {
			writeErr(w, http.StatusBadRequest, "unknown shard %q", id)
			return
		}
		resp, err := rt.readShard(r.Context(), sh, http.MethodGet, r.URL.RequestURI(), "", nil)
		if err != nil {
			writeErr(w, http.StatusBadGateway, "shard %q unreachable: %v", id, err)
			return
		}
		writeUpstream(w, resp)
		return
	}
	for _, sh := range rt.shards {
		resp, err := rt.readShard(r.Context(), sh, http.MethodGet, r.URL.RequestURI(), "", nil)
		if err != nil || resp.status == http.StatusNotFound {
			continue
		}
		writeUpstream(w, resp)
		return
	}
	writeErr(w, http.StatusNotFound, "no shard knows job %q", r.PathValue("id"))
}

// NamedQuery is one entry of the cross-shard batch endpoint
// POST /v1/query: a histogram name plus a standard batch query.
type NamedQuery struct {
	Name string `json:"name"`
	serve.BatchQuery
}

// handleCrossBatch groups a mixed-name batch by histogram, dispatches
// each group to its owning shard concurrently (with replica failover),
// and reassembles per-query results in request order — the scatter-
// gather a dashboard issuing one round trip for many histograms needs.
func (rt *Router) handleCrossBatch(w http.ResponseWriter, r *http.Request) {
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	var req struct {
		Queries []NamedQuery `json:"queries"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Queries) == 0 {
		writeErr(w, http.StatusBadRequest, "empty batch")
		return
	}
	// Group query indexes by name; one upstream call per distinct name.
	groups := map[string][]int{}
	for i, q := range req.Queries {
		if q.Name == "" {
			writeErr(w, http.StatusBadRequest, "query %d has no histogram name", i)
			return
		}
		groups[q.Name] = append(groups[q.Name], i)
	}
	results := make([]serve.BatchResult, len(req.Queries))
	var wg sync.WaitGroup
	for name, idxs := range groups {
		wg.Add(1)
		go func(name string, idxs []int) {
			defer wg.Done()
			sub := struct {
				Queries []serve.BatchQuery `json:"queries"`
			}{Queries: make([]serve.BatchQuery, len(idxs))}
			for j, i := range idxs {
				sub.Queries[j] = req.Queries[i].BatchQuery
			}
			payload, _ := json.Marshal(&sub)
			sh := rt.Shard(name)
			resp, err := rt.readShard(r.Context(), sh, http.MethodPost,
				"/v1/hist/"+name+"/query", "application/json", payload)
			if err != nil {
				for _, i := range idxs {
					results[i] = serve.BatchResult{Error: fmt.Sprintf("shard %q unreachable: %v", sh.ID, err)}
				}
				return
			}
			var out struct {
				Results []serve.BatchResult `json:"results"`
				Error   string              `json:"error"`
			}
			if jerr := json.Unmarshal(resp.body, &out); jerr != nil || (resp.status != http.StatusOK && out.Error == "") {
				for _, i := range idxs {
					results[i] = serve.BatchResult{Error: fmt.Sprintf("shard %q: HTTP %d", sh.ID, resp.status)}
				}
				return
			}
			if out.Error != "" {
				for _, i := range idxs {
					results[i] = serve.BatchResult{Error: out.Error}
				}
				return
			}
			for j, i := range idxs {
				if j < len(out.Results) {
					results[i] = out.Results[j]
				}
			}
		}(name, idxs)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, map[string]any{"results": results})
}
