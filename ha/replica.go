package ha

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"wavelethist"
	"wavelethist/dist"
	"wavelethist/serve"
)

// Replica keeps a read-only serve.Server following a primary: a pull
// loop asks the primary for every registry entry newer than the version
// the replica has applied (the catch-up protocol in dist's replication
// frames) and installs the histograms locally. Because registry versions
// are strictly monotonic and entries arrive in version order, one uint64
// cursor is the whole replication state — a replica that restarts from
// zero simply pulls a full snapshot.
type Replica struct {
	srv      *serve.Server
	primary  string // base URL, no trailing slash
	client   *http.Client
	interval time.Duration

	version atomic.Uint64 // last fully-applied primary version
	epoch   atomic.Uint64 // primary epoch the cursor was minted under (0 = none)

	// primaryVersion is the highest primary registry version this
	// replica has ever observed — it lets the failure path report a
	// truthful lag instead of freezing the gauge at its last value.
	primaryVersion atomic.Uint64
	epochResets    atomic.Uint64
	firstAttempt   atomic.Pointer[time.Time]

	mu      sync.Mutex
	stop    chan struct{}
	done    chan struct{}
	stopped bool
}

// NewReplica wraps a (normally read-only) server as a follower of the
// primary at primaryURL, pulling every interval (<= 0 = 1s).
func NewReplica(srv *serve.Server, primaryURL string, interval time.Duration) *Replica {
	if interval <= 0 {
		interval = time.Second
	}
	return &Replica{
		srv:      srv,
		primary:  trimSlash(primaryURL),
		client:   &http.Client{Timeout: 30 * time.Second},
		interval: interval,
	}
}

// Version returns the primary registry version this replica has applied.
func (r *Replica) Version() uint64 { return r.version.Load() }

// SyncOnce performs one pull-and-apply cycle against the primary and
// updates the server's replication status either way — the failure path
// refreshes the lag/staleness gauges too, so the replication alerts
// cannot go quiet exactly when replication is broken. A cycle with no
// new entries costs one small round trip.
//
// Epoch fencing: the pull carries the primary epoch this replica last
// synced under. If the primary's epoch differs (it restarted, or a
// different node was promoted), the cursor is meaningless — the primary
// answers with a full snapshot (response Since 0) and the replica
// re-bases on it rather than serving stale data forever. Against an
// old primary that ignores epochs, the replica detects the change
// itself and re-pulls from zero.
func (r *Replica) SyncOnce(ctx context.Context) error {
	if r.firstAttempt.Load() == nil {
		now := time.Now()
		r.firstAttempt.CompareAndSwap(nil, &now)
	}
	since, lastEpoch := r.version.Load(), r.epoch.Load()
	resp, err := r.pull(ctx, since, lastEpoch)
	if err != nil {
		r.failStatus(err)
		return err
	}
	if resp.Version > r.primaryVersion.Load() {
		r.primaryVersion.Store(resp.Version)
	}
	if lastEpoch != 0 && resp.Epoch != 0 && resp.Epoch != lastEpoch && resp.Since != 0 {
		// The primary's epoch changed but it still answered from our
		// stale cursor (a pre-epoch primary echoes nothing; a current
		// one would have sent Since 0). Re-pull the full snapshot.
		if resp, err = r.pull(ctx, 0, 0); err != nil {
			r.failStatus(err)
			return err
		}
	}
	if lastEpoch != 0 && resp.Epoch != 0 && resp.Epoch != lastEpoch {
		r.epochResets.Add(1)
	}
	since = resp.Since // the cursor the primary actually answered from
	if err := r.srv.ReplApply(func() error { return r.apply(resp) }); err != nil {
		r.failStatus(err)
		return err
	}
	r.version.Store(resp.Version)
	r.epoch.Store(resp.Epoch)
	var lag uint64
	if resp.Version > since {
		lag = resp.Version - since
	}
	now := time.Now()
	r.srv.SetReplStatus(serve.ReplStatus{
		Primary:      r.primary,
		Version:      resp.Version,
		Epoch:        resp.Epoch,
		EpochResets:  r.epochResets.Load(),
		SyncedAt:     now,
		LastAttempt:  now,
		FirstAttempt: *r.firstAttempt.Load(),
		LagVersions:  lag,
	})
	return nil
}

// failStatus records a failed sync cycle without losing gauge accuracy:
// lag is recomputed from the highest primary version ever observed, and
// the attempt timestamps keep the staleness gauge moving for replicas
// that have never synced.
func (r *Replica) failStatus(err error) {
	st := r.srv.ReplStatus()
	st.Primary = r.primary
	st.Error = err.Error()
	st.LastAttempt = time.Now()
	if fa := r.firstAttempt.Load(); fa != nil {
		st.FirstAttempt = *fa
	}
	if hv := r.primaryVersion.Load(); hv > r.version.Load() {
		st.LagVersions = hv - r.version.Load()
	}
	st.Epoch = r.epoch.Load()
	st.EpochResets = r.epochResets.Load()
	r.srv.SetReplStatus(st)
}

// EpochResets reports how many times an epoch mismatch forced a full
// re-snapshot.
func (r *Replica) EpochResets() uint64 { return r.epochResets.Load() }

// pull posts one binary ReplPullRequest to the primary.
func (r *Replica) pull(ctx context.Context, since, epoch uint64) (*dist.ReplPullResponse, error) {
	frame := dist.EncodeReplPullRequest(&dist.ReplPullRequest{Since: since, Epoch: epoch})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.primary+"/v1/repl/pull", bytes.NewReader(frame))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", dist.ContentTypeBinary)
	hres, err := r.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer hres.Body.Close()
	body, err := io.ReadAll(hres.Body)
	if err != nil {
		return nil, err
	}
	if hres.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("ha: pull from %s: HTTP %d: %s", r.primary, hres.StatusCode, truncate(body))
	}
	return dist.DecodeReplPullResponse(body)
}

// apply installs a pull response into the local registry: publish every
// new entry in version order, then drop local names the primary no
// longer has.
func (r *Replica) apply(resp *dist.ReplPullResponse) error {
	reg := r.srv.Registry()
	for _, e := range resp.Entries {
		switch e.Kind {
		case dist.ReplKind1D:
			h, err := wavelethist.UnmarshalHistogram(e.Blob)
			if err != nil {
				return fmt.Errorf("ha: replicate %q: %w", e.Name, err)
			}
			if _, err := reg.Publish(e.Name, h); err != nil {
				return fmt.Errorf("ha: replicate %q: %w", e.Name, err)
			}
		case dist.ReplKind2D:
			h, err := wavelethist.UnmarshalHistogram2D(e.Blob)
			if err != nil {
				return fmt.Errorf("ha: replicate %q: %w", e.Name, err)
			}
			if _, err := reg.Publish2D(e.Name, h); err != nil {
				return fmt.Errorf("ha: replicate %q: %w", e.Name, err)
			}
		default:
			return fmt.Errorf("ha: replicate %q: unknown kind %d", e.Name, e.Kind)
		}
	}
	live := make(map[string]bool, len(resp.Names))
	for _, n := range resp.Names {
		live[n] = true
	}
	for _, n := range reg.Snapshot().Names() {
		if !live[n] {
			reg.Drop(n)
		}
	}
	return nil
}

// Start launches the background follow loop. Stop (or Promote) ends it.
func (r *Replica) Start() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stop != nil || r.stopped {
		return
	}
	r.stop = make(chan struct{})
	r.done = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		t := time.NewTicker(r.interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				ctx, cancel := context.WithTimeout(context.Background(), r.interval*4+time.Second)
				err := r.SyncOnce(ctx) // errors land in ReplStatus; keep following
				cancel()
				if errors.Is(err, serve.ErrNotReplica) {
					// The server was promoted out from under this loop
					// (router-driven POST /v1/promote). It is a primary
					// now: following the old one would mix lineages.
					return
				}
			}
		}
	}(r.stop, r.done)
}

// Stop ends the follow loop and waits for it to drain.
func (r *Replica) Stop() {
	r.mu.Lock()
	stop, done := r.stop, r.done
	r.stop, r.done = nil, nil
	r.stopped = true
	r.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// Promote stops following the (presumably dead) primary and flips the
// local server writable — the failover path. The replica serves whatever
// it had replicated as the new authoritative state; with monotonic pulls
// that is always a prefix-consistent view of the old primary's registry.
func (r *Replica) Promote() {
	r.Stop()
	r.srv.Promote()
}

func trimSlash(s string) string {
	for len(s) > 0 && s[len(s)-1] == '/' {
		s = s[:len(s)-1]
	}
	return s
}

func truncate(b []byte) string {
	const max = 200
	if len(b) > max {
		b = b[:max]
	}
	return string(bytes.TrimSpace(b))
}
