package ha

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"wavelethist"
	"wavelethist/dist"
	"wavelethist/serve"
)

// Replica keeps a read-only serve.Server following a primary: a pull
// loop asks the primary for every registry entry newer than the version
// the replica has applied (the catch-up protocol in dist's replication
// frames) and installs the histograms locally. Because registry versions
// are strictly monotonic and entries arrive in version order, one uint64
// cursor is the whole replication state — a replica that restarts from
// zero simply pulls a full snapshot.
type Replica struct {
	srv      *serve.Server
	primary  string // base URL, no trailing slash
	client   *http.Client
	interval time.Duration

	version atomic.Uint64 // last fully-applied primary version

	mu      sync.Mutex
	stop    chan struct{}
	done    chan struct{}
	stopped bool
}

// NewReplica wraps a (normally read-only) server as a follower of the
// primary at primaryURL, pulling every interval (<= 0 = 1s).
func NewReplica(srv *serve.Server, primaryURL string, interval time.Duration) *Replica {
	if interval <= 0 {
		interval = time.Second
	}
	return &Replica{
		srv:      srv,
		primary:  trimSlash(primaryURL),
		client:   &http.Client{Timeout: 30 * time.Second},
		interval: interval,
	}
}

// Version returns the primary registry version this replica has applied.
func (r *Replica) Version() uint64 { return r.version.Load() }

// SyncOnce performs one pull-and-apply cycle against the primary and
// updates the server's replication status either way. A cycle with no
// new entries costs one small round trip.
func (r *Replica) SyncOnce(ctx context.Context) error {
	since := r.version.Load()
	resp, err := r.pull(ctx, since)
	if err != nil {
		st := r.srv.ReplStatus()
		st.Primary = r.primary
		st.Error = err.Error()
		r.srv.SetReplStatus(st)
		return err
	}
	if err := r.apply(resp); err != nil {
		st := r.srv.ReplStatus()
		st.Primary = r.primary
		st.Error = err.Error()
		r.srv.SetReplStatus(st)
		return err
	}
	r.version.Store(resp.Version)
	var lag uint64
	if resp.Version > since {
		lag = resp.Version - since
	}
	r.srv.SetReplStatus(serve.ReplStatus{
		Primary:     r.primary,
		Version:     resp.Version,
		SyncedAt:    time.Now(),
		LagVersions: lag,
	})
	return nil
}

// pull posts one binary ReplPullRequest to the primary.
func (r *Replica) pull(ctx context.Context, since uint64) (*dist.ReplPullResponse, error) {
	frame := dist.EncodeReplPullRequest(&dist.ReplPullRequest{Since: since})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.primary+"/v1/repl/pull", bytes.NewReader(frame))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", dist.ContentTypeBinary)
	hres, err := r.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer hres.Body.Close()
	body, err := io.ReadAll(hres.Body)
	if err != nil {
		return nil, err
	}
	if hres.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("ha: pull from %s: HTTP %d: %s", r.primary, hres.StatusCode, truncate(body))
	}
	return dist.DecodeReplPullResponse(body)
}

// apply installs a pull response into the local registry: publish every
// new entry in version order, then drop local names the primary no
// longer has.
func (r *Replica) apply(resp *dist.ReplPullResponse) error {
	reg := r.srv.Registry()
	for _, e := range resp.Entries {
		switch e.Kind {
		case dist.ReplKind1D:
			h, err := wavelethist.UnmarshalHistogram(e.Blob)
			if err != nil {
				return fmt.Errorf("ha: replicate %q: %w", e.Name, err)
			}
			if _, err := reg.Publish(e.Name, h); err != nil {
				return fmt.Errorf("ha: replicate %q: %w", e.Name, err)
			}
		case dist.ReplKind2D:
			h, err := wavelethist.UnmarshalHistogram2D(e.Blob)
			if err != nil {
				return fmt.Errorf("ha: replicate %q: %w", e.Name, err)
			}
			if _, err := reg.Publish2D(e.Name, h); err != nil {
				return fmt.Errorf("ha: replicate %q: %w", e.Name, err)
			}
		default:
			return fmt.Errorf("ha: replicate %q: unknown kind %d", e.Name, e.Kind)
		}
	}
	live := make(map[string]bool, len(resp.Names))
	for _, n := range resp.Names {
		live[n] = true
	}
	for _, n := range reg.Snapshot().Names() {
		if !live[n] {
			reg.Drop(n)
		}
	}
	return nil
}

// Start launches the background follow loop. Stop (or Promote) ends it.
func (r *Replica) Start() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stop != nil || r.stopped {
		return
	}
	r.stop = make(chan struct{})
	r.done = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		t := time.NewTicker(r.interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				ctx, cancel := context.WithTimeout(context.Background(), r.interval*4+time.Second)
				_ = r.SyncOnce(ctx) // errors land in ReplStatus; keep following
				cancel()
			}
		}
	}(r.stop, r.done)
}

// Stop ends the follow loop and waits for it to drain.
func (r *Replica) Stop() {
	r.mu.Lock()
	stop, done := r.stop, r.done
	r.stop, r.done = nil, nil
	r.stopped = true
	r.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// Promote stops following the (presumably dead) primary and flips the
// local server writable — the failover path. The replica serves whatever
// it had replicated as the new authoritative state; with monotonic pulls
// that is always a prefix-consistent view of the old primary's registry.
func (r *Replica) Promote() {
	r.Stop()
	r.srv.Promote()
}

func trimSlash(s string) string {
	for len(s) > 0 && s[len(s)-1] == '/' {
		s = s[:len(s)-1]
	}
	return s
}

func truncate(b []byte) string {
	const max = 200
	if len(b) > max {
		b = b[:max]
	}
	return string(bytes.TrimSpace(b))
}
