package ha

import (
	"context"
	"encoding/json"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"wavelethist/serve"
)

// Router-side query coalescing: single-query GETs (point, range) that
// arrive for the same histogram within a short window are merged into
// one POST /v1/hist/{name}/query batch — so the shard answers them with
// its vectorized shared-walk executors instead of one tree walk per
// request — and the estimates are scattered back to the waiting
// requests in arrival order. Responses are byte-identical to the
// shard's own single-query endpoints (serve.AppendEstimate renders
// both), so clients cannot tell whether their GET was coalesced.
//
// Trade-off: a query waits at most CoalesceWait before its batch
// dispatches (a full batch of CoalesceMax dispatches immediately), so
// p50 latency rises by up to the window in exchange for shard-side
// throughput. One deliberate divergence: a query using the wrong
// dimensional form for its histogram (e.g. ?key= against a 2D entry)
// gets the batch API's semantics — fields interpreted per the entry's
// dimension, missing ones defaulting to 0 — instead of the direct
// endpoint's 400, because the router does not know entry
// dimensionality. Queries whose parameters don't parse as a single
// unambiguous form fall through to the direct proxy path untouched.

// coalescer accumulates pending single queries per histogram name.
type coalescer struct {
	rt   *Router
	wait time.Duration
	max  int

	mu      sync.Mutex
	pending map[string]*pendingBatch
}

// pendingBatch is one open window's worth of queries for one histogram.
type pendingBatch struct {
	queries []serve.BatchQuery
	waiters []chan coalesceResult
	timer   *time.Timer
}

// coalesceResult is what dispatch hands each waiter: exactly one of the
// four outcome fields is meaningful.
type coalesceResult struct {
	est     float64 // estimate, when errMsg == "" and raw == nil and netErr == nil
	version uint64
	errMsg  string    // per-query error from the shard's batch result
	raw     *upstream // non-200 shard response, passed through verbatim
	netErr  error     // shard unreachable (primary and all replicas)
	shardID string
}

func newCoalescer(rt *Router, wait time.Duration, max int) *coalescer {
	return &coalescer{rt: rt, wait: wait, max: max, pending: map[string]*pendingBatch{}}
}

// enqueue parks one query under its histogram name. The first query of
// a window arms the dispatch timer; the CoalesceMax-th dispatches the
// batch inline (the timer's flush finds the window already gone and
// does nothing).
func (c *coalescer) enqueue(name string, q serve.BatchQuery) chan coalesceResult {
	ch := make(chan coalesceResult, 1)
	c.mu.Lock()
	b := c.pending[name]
	if b == nil {
		b = &pendingBatch{}
		b.timer = time.AfterFunc(c.wait, func() { c.flush(name, b) })
		c.pending[name] = b
	}
	b.queries = append(b.queries, q)
	b.waiters = append(b.waiters, ch)
	full := len(b.queries) >= c.max
	if full {
		delete(c.pending, name)
		b.timer.Stop()
	}
	c.rt.coalesceDepth.Add(1)
	c.mu.Unlock()
	if full {
		c.dispatch(name, b)
	}
	return ch
}

// flush is the timer path: dispatch the window unless a size-triggered
// dispatch already claimed it (identity check — a new window for the
// same name must not be stolen by a stale timer).
func (c *coalescer) flush(name string, b *pendingBatch) {
	c.mu.Lock()
	if c.pending[name] != b {
		c.mu.Unlock()
		return
	}
	delete(c.pending, name)
	c.mu.Unlock()
	c.dispatch(name, b)
}

// dispatch sends the merged batch to the owning shard (with replica
// failover) and scatters per-query outcomes back to the waiters in
// arrival order. The upstream call uses the router's client timeout,
// not any single waiter's context: one canceled client must not fail
// the queries it was batched with.
func (c *coalescer) dispatch(name string, b *pendingBatch) {
	n := len(b.queries)
	c.rt.coalesceDepth.Add(int64(-n))
	c.rt.coalesced.Add(int64(n))
	c.rt.coalesceSize.ObserveNanos(int64(n))

	payload, _ := json.Marshal(struct {
		Queries []serve.BatchQuery `json:"queries"`
	}{b.queries})
	sh := c.rt.Shard(name)
	resp, err := c.rt.readShard(context.Background(), sh, http.MethodPost,
		"/v1/hist/"+url.PathEscape(name)+"/query", "application/json", payload,
		"X-Wavehist-Coalesced", strconv.Itoa(n))
	if err != nil {
		for _, ch := range b.waiters {
			ch <- coalesceResult{netErr: err, shardID: sh.ID}
		}
		return
	}
	var out struct {
		Version uint64              `json:"version"`
		Results []serve.BatchResult `json:"results"`
	}
	if resp.status != http.StatusOK || json.Unmarshal(resp.body, &out) != nil || len(out.Results) != n {
		// The shard's verdict (404 for an unknown name, 400 for a
		// malformed batch, …) passes through verbatim to every waiter.
		for _, ch := range b.waiters {
			ch <- coalesceResult{raw: resp, shardID: sh.ID}
		}
		return
	}
	for i, ch := range b.waiters {
		r := out.Results[i]
		if r.Error != "" {
			ch <- coalesceResult{errMsg: r.Error, shardID: sh.ID}
		} else {
			ch <- coalesceResult{est: r.Estimate, version: out.Version, shardID: sh.ID}
		}
	}
}

// maybeCoalesce wraps a single-query GET route with the coalescing
// intercept. With coalescing off (or parameters that don't form one
// unambiguous query) the request takes the direct proxy path.
func (rt *Router) maybeCoalesce(route string, fallback http.HandlerFunc) http.HandlerFunc {
	if rt.coal == nil {
		return fallback
	}
	return func(w http.ResponseWriter, r *http.Request) {
		q, fields, ok := coalesceQuery(route, r.URL.Query())
		if !ok {
			fallback(w, r)
			return
		}
		name := r.PathValue("name")
		ch := rt.coal.enqueue(name, q)
		select {
		case res := <-ch:
			switch {
			case res.netErr != nil:
				writeErr(w, http.StatusBadGateway, "shard %q unreachable: %v", res.shardID, res.netErr)
			case res.raw != nil:
				writeUpstream(w, res.raw)
			case res.errMsg != "":
				writeErr(w, http.StatusBadRequest, "%s", res.errMsg)
			default:
				b := serve.AppendEstimate(nil, name, res.version, res.est, fields...)
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusOK)
				w.Write(b)
			}
		case <-r.Context().Done():
			// Client gone; its slot in the batch still dispatches (the
			// buffered channel absorbs the unclaimed result).
		}
	}
}

// coalesceQuery parses a single-query GET's parameters into the batch
// form, plus the echo fields the response renders. ok is false when the
// parameters are not one unambiguous, fully-parsed query — those fall
// through to the direct proxy so error responses stay byte-identical
// with an uncoalesced router.
func coalesceQuery(route string, vals url.Values) (serve.BatchQuery, []serve.EstimateField, bool) {
	get := func(key string) (int64, bool) {
		s := vals.Get(key)
		if s == "" {
			return 0, false
		}
		v, err := strconv.ParseInt(s, 10, 64)
		return v, err == nil
	}
	switch route {
	case "point":
		key, okKey := get("key")
		x, okX := get("x")
		y, okY := get("y")
		switch {
		case okKey && !vals.Has("x") && !vals.Has("y"):
			return serve.BatchQuery{Op: "point", Key: key},
				[]serve.EstimateField{{Name: "key", Value: key}}, true
		case okX && okY && !vals.Has("key"):
			return serve.BatchQuery{Op: "point", X: x, Y: y},
				[]serve.EstimateField{{Name: "x", Value: x}, {Name: "y", Value: y}}, true
		}
	case "range":
		lo, okLo := get("lo")
		hi, okHi := get("hi")
		xlo, okXLo := get("xlo")
		xhi, okXHi := get("xhi")
		ylo, okYLo := get("ylo")
		yhi, okYHi := get("yhi")
		switch {
		case okLo && okHi && !vals.Has("xlo") && !vals.Has("xhi") && !vals.Has("ylo") && !vals.Has("yhi"):
			return serve.BatchQuery{Op: "range", Lo: lo, Hi: hi},
				[]serve.EstimateField{{Name: "lo", Value: lo}, {Name: "hi", Value: hi}}, true
		case okXLo && okXHi && okYLo && okYHi && !vals.Has("lo") && !vals.Has("hi"):
			return serve.BatchQuery{Op: "range", XLo: xlo, XHi: xhi, YLo: ylo, YHi: yhi},
				[]serve.EstimateField{
					{Name: "xlo", Value: xlo}, {Name: "xhi", Value: xhi},
					{Name: "ylo", Value: ylo}, {Name: "yhi", Value: yhi},
				}, true
		}
	}
	return serve.BatchQuery{}, nil, false
}
