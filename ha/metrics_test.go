package ha

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"wavelethist/internal/obs"
	"wavelethist/serve"
)

// TestRouterMetricsAggregation: the router's GET /metrics is one scrape
// for the whole fleet — every reachable shard's families appear
// re-labeled with shard="<id>", the router's own families stay
// unlabeled, a down shard degrades to waverouter_shard_up 0 without
// poisoning the page, and the merged exposition passes the lint the CI
// smoke runs on single-daemon pages.
func TestRouterMetricsAggregation(t *testing.T) {
	s0, ts0 := newNode(t, serve.Config{Shard: "s0"})
	s1, ts1 := newNode(t, serve.Config{Shard: "s1"})
	defer s0.Close()
	defer s1.Close()
	for i, s := range []*serve.Server{s0, s1} {
		if _, err := s.Registry().Publish(fmt.Sprintf("h%d", i), buildTestHist(t, uint64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	// s2 is configured but not running: its scrape must fail cleanly.
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()

	rt, err := NewRouter([]Shard{
		{ID: "s0", Primary: ts0.URL},
		{ID: "s1", Primary: ts1.URL},
		{ID: "s2", Primary: dead.URL},
	})
	if err != nil {
		t.Fatal(err)
	}
	rtSrv := httptest.NewServer(rt)
	defer rtSrv.Close()

	// Drive one request through the router so its own counters are live.
	getJSON(t, rtSrv.URL+"/v1/hist", http.StatusOK)

	resp, err := http.Get(rtSrv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d: %s", resp.StatusCode, body)
	}
	fams, err := obs.Lint(string(body))
	if err != nil {
		t.Fatalf("aggregated exposition fails lint: %v\n%s", err, body)
	}
	if err := obs.RequireFamilies(fams,
		"waverouter_proxied_total", "waverouter_shards", "waverouter_shard_up",
		"wavehist_registry_version", "wavehist_queries_total", "wavehist_query_duration_seconds",
	); err != nil {
		t.Fatal(err)
	}

	// Shard families carry exactly the shard label per contributing shard.
	seen := map[string]bool{}
	for _, sm := range fams["wavehist_registry_version"].Samples {
		seen[sm.Labels["shard"]] = true
		if sm.Value != 1 {
			t.Errorf("shard %q registry version %v, want 1", sm.Labels["shard"], sm.Value)
		}
	}
	if !seen["s0"] || !seen["s1"] || len(seen) != 2 {
		t.Fatalf("wavehist_registry_version shards = %v, want s0+s1", seen)
	}
	// Router-own families stay unlabeled by shard.
	for _, sm := range fams["waverouter_proxied_total"].Samples {
		if _, ok := sm.Labels["shard"]; ok {
			t.Fatalf("router-own sample grew a shard label: %v", sm)
		}
	}
	// Up gauge: 1 for live shards, 0 for the dead one.
	ups := map[string]float64{}
	for _, sm := range fams["waverouter_shard_up"].Samples {
		ups[sm.Labels["shard"]] = sm.Value
	}
	if ups["s0"] != 1 || ups["s1"] != 1 || ups["s2"] != 0 {
		t.Fatalf("waverouter_shard_up = %v, want s0:1 s1:1 s2:0", ups)
	}
}

// TestMergeRenderRoundTrip pins the obs fan-in helpers the aggregation
// is built on: parse → merge with label injection → render must produce
// lintable text whose samples carry the injected label, and re-parsing
// the rendered page yields the same sample values.
func TestMergeRenderRoundTrip(t *testing.T) {
	page := "# HELP x_total things\n# TYPE x_total counter\nx_total{op=\"a\"} 3\nx_total 4\n" +
		"# HELP y_seconds lat\n# TYPE y_seconds histogram\n" +
		"y_seconds_bucket{le=\"0.5\"} 1\ny_seconds_bucket{le=\"+Inf\"} 2\ny_seconds_sum 0.75\ny_seconds_count 2\n"
	src, err := obs.ParseExposition(page)
	if err != nil {
		t.Fatal(err)
	}
	merged := map[string]*obs.Family{}
	obs.MergeFamilies(merged, src, obs.L("shard", "s0"))
	src2, _ := obs.ParseExposition(page)
	obs.MergeFamilies(merged, src2, obs.L("shard", "s1"))

	var out strings.Builder
	if err := obs.RenderFamilies(&out, merged); err != nil {
		t.Fatal(err)
	}
	fams, err := obs.Lint(out.String())
	if err != nil {
		t.Fatalf("rendered merge fails lint: %v\n%s", err, out.String())
	}
	if got := len(fams["x_total"].Samples); got != 4 {
		t.Fatalf("x_total has %d samples, want 4:\n%s", got, out.String())
	}
	var s0a float64
	for _, sm := range fams["x_total"].Samples {
		if sm.Labels["shard"] == "s0" && sm.Labels["op"] == "a" {
			s0a = sm.Value
		}
	}
	if s0a != 3 {
		t.Fatalf("x_total{op=a,shard=s0} = %v, want 3", s0a)
	}
	if got := len(fams["y_seconds"].Samples); got != 8 {
		t.Fatalf("y_seconds has %d samples, want 8", got)
	}
}
