package ha

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"wavelethist"
	"wavelethist/serve"
)

func buildTestHist(t testing.TB, seed uint64) *wavelethist.Histogram {
	t.Helper()
	ds, err := wavelethist.NewZipfDataset(wavelethist.ZipfOptions{
		Records: 20000, Domain: 1 << 12, Alpha: 1.1, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := wavelethist.Build(ds, wavelethist.TwoLevelS, wavelethist.Options{K: 40, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return res.Histogram
}

func newNode(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	s, err := serve.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func getJSON(t *testing.T, url string, wantCode int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s: HTTP %d (want %d): %s", url, resp.StatusCode, wantCode, body)
	}
	var out map[string]any
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("GET %s: bad JSON %q: %v", url, body, err)
	}
	return out
}

func postJSON(t *testing.T, url string, req any, wantCode int) map[string]any {
	t.Helper()
	payload, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("POST %s: HTTP %d (want %d): %s", url, resp.StatusCode, wantCode, body)
	}
	var out map[string]any
	if len(body) > 0 {
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatalf("POST %s: bad JSON %q: %v", url, body, err)
		}
	}
	return out
}

// TestReplicaSync: the pull loop carries publishes, republishes, and
// drops from a primary to a read replica, with the registry version as
// the replication cursor and sync state surfaced in the replica's stats.
func TestReplicaSync(t *testing.T) {
	pSrv, pTS := newNode(t, serve.Config{})
	rSrv, rTS := newNode(t, serve.Config{ReadOnly: true})
	rep := NewReplica(rSrv, pTS.URL, 50*time.Millisecond)

	h := buildTestHist(t, 1)
	if _, err := pSrv.Registry().Publish("a", h); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := rep.SyncOnce(ctx); err != nil {
		t.Fatalf("first sync: %v", err)
	}
	if rep.Version() != pSrv.Registry().Version() {
		t.Fatalf("cursor %d, primary at %d", rep.Version(), pSrv.Registry().Version())
	}
	got, ok := rSrv.Registry().Lookup("a")
	if !ok {
		t.Fatal("replica missing histogram after sync")
	}
	for _, key := range []int64{0, 17, 512, 4095} {
		if got.H.PointEstimate(key) != h.PointEstimate(key) {
			t.Fatalf("replicated estimate differs at key %d", key)
		}
	}

	// Republish + new publish, then a drop — all carried by later pulls.
	if _, err := pSrv.Registry().Publish("a", buildTestHist(t, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := pSrv.Registry().Publish("b", buildTestHist(t, 3)); err != nil {
		t.Fatal(err)
	}
	if err := rep.SyncOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if _, ok := rSrv.Registry().Lookup("b"); !ok {
		t.Fatal("new publish did not replicate")
	}
	pSrv.Registry().Drop("b")
	if err := rep.SyncOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if _, ok := rSrv.Registry().Lookup("b"); ok {
		t.Fatal("drop did not propagate")
	}

	// The replica's stats expose the sync state.
	stats := getJSON(t, rTS.URL+"/v1/stats", http.StatusOK)
	repl, ok := stats["replication"].(map[string]any)
	if !ok {
		t.Fatalf("no replication section in stats: %v", stats)
	}
	if repl["primary"] != pTS.URL || uint64(repl["version"].(float64)) != rep.Version() {
		t.Fatalf("replication stats: %v", repl)
	}

	// A dead primary turns into a reported error, not a wedged replica.
	pTS.Close()
	if err := rep.SyncOnce(ctx); err == nil {
		t.Fatal("sync against a dead primary succeeded")
	}
	if st := rSrv.ReplStatus(); st.Error == "" {
		t.Fatal("sync failure not recorded in replication status")
	}
}

// cluster is two shards, each a primary plus one following replica,
// fronted by a router — the smallest real topology.
type cluster struct {
	router    *Router
	routerTS  *httptest.Server
	primaries [2]*httptest.Server
	replicas  [2]*serve.Server
	reps      [2]*Replica
}

func newCluster(t *testing.T) *cluster {
	t.Helper()
	c := &cluster{}
	var shards []Shard
	for i := 0; i < 2; i++ {
		_, pTS := newNode(t, serve.Config{Shard: fmt.Sprintf("s%d", i)})
		rSrv, rTS := newNode(t, serve.Config{ReadOnly: true, Shard: fmt.Sprintf("s%d", i)})
		rep := NewReplica(rSrv, pTS.URL, 25*time.Millisecond)
		rep.Start()
		t.Cleanup(rep.Stop)
		c.primaries[i] = pTS
		c.replicas[i] = rSrv
		c.reps[i] = rep
		shards = append(shards, Shard{
			ID:       fmt.Sprintf("s%d", i),
			Primary:  pTS.URL,
			Replicas: []string{rTS.URL},
		})
	}
	router, err := NewRouter(shards)
	if err != nil {
		t.Fatal(err)
	}
	c.router = router
	c.routerTS = httptest.NewServer(router)
	t.Cleanup(c.routerTS.Close)
	return c
}

// nameOn finds a histogram name the ring places on the given shard.
func (c *cluster) nameOn(t *testing.T, shard string) string {
	t.Helper()
	for i := 0; i < 256; i++ {
		name := fmt.Sprintf("hist-%d", i)
		if c.router.Shard(name).ID == shard {
			return name
		}
	}
	t.Fatalf("no candidate name lands on shard %s", shard)
	return ""
}

func (c *cluster) waitFor(t *testing.T, desc string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", desc)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestClusterFailoverSmoke is the end-to-end acceptance path: build
// through the router onto each shard's primary, watch the histograms
// become queryable on the replicas within the sync cycle, kill one
// primary, and verify routed reads keep answering — bit-identically —
// through the replica, then promote the replica into a writable primary.
func TestClusterFailoverSmoke(t *testing.T) {
	c := newCluster(t)
	base := c.routerTS.URL

	name0 := c.nameOn(t, "s0")
	name1 := c.nameOn(t, "s1")

	// Dataset broadcast reaches every primary; builds then land on
	// whichever shard owns each name.
	postJSON(t, base+"/v1/datasets", map[string]any{
		"name": "ds", "kind": "zipf", "records": 20000, "domain": 4096, "seed": 7,
	}, http.StatusCreated)
	for name, shard := range map[string]string{name0: "s0", name1: "s1"} {
		acc := postJSON(t, base+"/v1/build", map[string]any{
			"name": name, "dataset": "ds", "method": "Send-V", "k": 40, "seed": 9,
		}, http.StatusAccepted)
		if acc["shard"] != shard {
			t.Fatalf("build of %s routed to shard %v, want %s", name, acc["shard"], shard)
		}
		// The job is resolvable through the router, pinned to its shard
		// (shards number jobs independently, so the tag disambiguates).
		id := acc["job"].(string)
		c.waitFor(t, "job "+id, func() bool {
			job := getJSON(t, base+"/v1/jobs/"+id+"?shard="+shard, http.StatusOK)
			if job["error"] != nil && job["error"] != "" {
				t.Fatalf("job %s failed: %v", id, job["error"])
			}
			return job["state"] == "done"
		})
	}

	// Both names visible in the merged listing.
	list := getJSON(t, base+"/v1/hist", http.StatusOK)
	hists := list["histograms"].([]any)
	if len(hists) != 2 {
		t.Fatalf("merged listing has %d histograms: %v", len(hists), list)
	}

	// Record routed estimates while both primaries are alive.
	pt0 := getJSON(t, base+"/v1/hist/"+name0+"/point?key=123", http.StatusOK)["estimate"].(float64)
	pt1 := getJSON(t, base+"/v1/hist/"+name1+"/point?key=123", http.StatusOK)["estimate"].(float64)
	rg0 := getJSON(t, base+"/v1/hist/"+name0+"/range?lo=0&hi=500", http.StatusOK)["estimate"].(float64)

	// The background pull loops make the builds queryable on the replicas.
	c.waitFor(t, "replica catch-up", func() bool {
		_, ok0 := c.replicas[0].Registry().Lookup(name0)
		_, ok1 := c.replicas[1].Registry().Lookup(name1)
		return ok0 && ok1
	})

	// Kill shard 0's primary. Reads keep succeeding through the replica
	// with identical answers; the router records the failovers.
	c.primaries[0].Close()
	if got := getJSON(t, base+"/v1/hist/"+name0+"/point?key=123", http.StatusOK)["estimate"].(float64); got != pt0 {
		t.Fatalf("post-failover point estimate %v, want %v", got, pt0)
	}
	if got := getJSON(t, base+"/v1/hist/"+name0+"/range?lo=0&hi=500", http.StatusOK)["estimate"].(float64); got != rg0 {
		t.Fatalf("post-failover range estimate %v, want %v", got, rg0)
	}
	topo := getJSON(t, base+"/v1/router", http.StatusOK)
	if topo["failovers"].(float64) == 0 {
		t.Fatalf("router recorded no failovers: %v", topo)
	}

	// Cross-shard batch: one round trip spanning the degraded shard (via
	// its replica) and the healthy one.
	batch := postJSON(t, base+"/v1/query", map[string]any{
		"queries": []map[string]any{
			{"name": name0, "op": "point", "key": 123},
			{"name": name1, "op": "point", "key": 123},
			{"name": name0, "op": "range", "lo": 0, "hi": 500},
		},
	}, http.StatusOK)
	results := batch["results"].([]any)
	if len(results) != 3 {
		t.Fatalf("batch returned %d results", len(results))
	}
	for i, want := range []float64{pt0, pt1, rg0} {
		res := results[i].(map[string]any)
		if e, _ := res["error"].(string); e != "" {
			t.Fatalf("batch result %d errored: %s", i, e)
		}
		if res["estimate"].(float64) != want {
			t.Fatalf("batch result %d = %v, want %v", i, res["estimate"], want)
		}
	}

	// Stats fan-out still answers for every shard (s0 via its replica).
	stats := getJSON(t, base+"/v1/stats", http.StatusOK)
	shards := stats["shards"].(map[string]any)
	if _, ok := shards["s0"]; !ok {
		t.Fatalf("stats lost shard s0: %v", stats)
	}
	if _, ok := shards["s1"]; !ok {
		t.Fatalf("stats lost shard s1: %v", stats)
	}

	// Writes never fail over — with the primary dead they fail loudly.
	postJSON(t, base+"/v1/hist/"+name0+"/updates", map[string]any{
		"updates": []map[string]any{{"key": 1, "delta": 1}},
	}, http.StatusBadGateway)

	// Promote the surviving replica: it stops following and goes
	// writable, and the data it serves is the replicated lineage.
	c.reps[0].Promote()
	if c.replicas[0].ReadOnly() {
		t.Fatal("replica still read-only after promotion")
	}
	rTS := httptest.NewServer(c.replicas[0])
	defer rTS.Close()
	postJSON(t, rTS.URL+"/v1/hist/"+name0+"/updates", map[string]any{
		"updates": []map[string]any{{"key": 1, "delta": 1}},
	}, http.StatusOK)
}
