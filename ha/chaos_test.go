package ha

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"wavelethist"
	"wavelethist/internal/chaos"
	"wavelethist/serve"
)

// The chaos suite drives the self-healing tier through real failures:
// every shard target sits behind a fault-injecting proxy
// (internal/chaos), the primary is killed mid-replication, and the
// assertions are the paper-serving invariants — routed reads stay
// bit-identical through auto-promotion, a replica that never saw a
// histogram answers 404 rather than anything stale, and a resurrected
// old primary is fenced read-only instead of forking the lineage.

func waitUntil(t *testing.T, desc string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", desc)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// routedRead GETs a point estimate through the router, returning the
// HTTP status (0 on transport error) and the estimate when 200.
func routedRead(base, name string) (int, float64) {
	res, err := http.Get(base + "/v1/hist/" + name + "/point?key=123")
	if err != nil {
		return 0, 0
	}
	defer res.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(res.Body).Decode(&out); err != nil {
		return res.StatusCode, 0
	}
	if res.StatusCode != http.StatusOK {
		return res.StatusCode, 0
	}
	est, _ := out["estimate"].(float64)
	return res.StatusCode, est
}

// TestChaosFailoverPromoteResurrect is the acceptance path of the
// self-healing tier, end to end on one shard:
//
//  1. A replica is left exactly one sync behind (histogram "behind" was
//     published after its last pull).
//  2. The primary is killed (server closed AND its proxy black-holed).
//  3. Routed reads of the replicated histogram keep answering with
//     bit-identical estimates; the un-replicated one 404s — never a
//     stale or fabricated answer.
//  4. The health checker detects the dead primary and auto-promotes the
//     replica with an epoch fencing token; writes come back. Both MTTRs
//     (first routed read, first routed write) are measured.
//  5. The old primary resurrects from its snapshot directory — writable,
//     with a bumped persisted epoch, still holding "behind" — and is
//     demoted read-only by the router's fence before it can accept a
//     write. Reads keep coming from the promoted lineage.
func TestChaosFailoverPromoteResurrect(t *testing.T) {
	dir := t.TempDir()
	pSrv, pTS := newNode(t, serve.Config{Shard: "s0", SnapshotDir: dir})
	pProxy := chaos.New(pTS.URL, chaos.Config{Seed: 11})
	pFront := httptest.NewServer(pProxy)
	defer pFront.Close()

	rSrv, rTS := newNode(t, serve.Config{ReadOnly: true, Shard: "s0"})
	rProxy := chaos.New(rTS.URL, chaos.Config{Seed: 12})
	rFront := httptest.NewServer(rProxy)
	defer rFront.Close()

	rep := NewReplica(rSrv, pTS.URL, 20*time.Millisecond) // manual pulls only

	// Replicate "alive", then publish "behind" WITHOUT syncing: the
	// replica is now one full sync behind the primary.
	if _, err := pSrv.Registry().Publish("alive", buildTestHist(t, 1)); err != nil {
		t.Fatal(err)
	}
	if err := rep.SyncOnce(context.Background()); err != nil {
		t.Fatalf("seed sync: %v", err)
	}
	if _, err := pSrv.Registry().Publish("behind", buildTestHist(t, 2)); err != nil {
		t.Fatal(err)
	}
	if rep.Version() >= pSrv.Registry().Version() {
		t.Fatalf("replica cursor %d not behind primary %d", rep.Version(), pSrv.Registry().Version())
	}

	router, err := NewRouterConfig([]Shard{{
		ID: "s0", Primary: pFront.URL, Replicas: []string{rFront.URL},
	}}, RouterConfig{
		ProbeInterval:      20 * time.Millisecond,
		ProbeFailThreshold: 3,
		ReadTimeout:        time.Second,
		Breaker:            BreakerConfig{Seed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	routerTS := httptest.NewServer(router)
	defer routerTS.Close()
	base := routerTS.URL

	// Let the checker learn the shard: both targets probed and the fence
	// pinned to the primary's persisted epoch.
	waitUntil(t, "health checker warm-up", func() bool {
		health, fences := router.health.view()
		probed := 0
		for _, th := range health {
			if th.Probes > 0 && th.Up {
				probed++
			}
		}
		return probed == 2 && fences["s0"] == pSrv.Epoch()
	})

	status, pt := routedRead(base, "alive")
	if status != http.StatusOK {
		t.Fatalf("healthy routed read: HTTP %d", status)
	}
	rg := getJSON(t, base+"/v1/hist/alive/range?lo=0&hi=500", http.StatusOK)["estimate"].(float64)
	oldEpoch := rSrv.Epoch()

	// --- Kill the primary: process gone, address black-holed. ---
	killedAt := time.Now()
	pTS.Close()
	pProxy.SetBlackhole(true)

	// Reads survive immediately via replica failover, bit-identically.
	var mttrRead time.Duration
	waitUntil(t, "first routed read after kill", func() bool {
		st, est := routedRead(base, "alive")
		if st != http.StatusOK {
			return false
		}
		if est != pt {
			t.Fatalf("post-kill estimate %v, want %v", est, pt)
		}
		mttrRead = time.Since(killedAt)
		return true
	})

	// The never-replicated histogram 404s — zero stale responses.
	if st, _ := routedRead(base, "behind"); st != http.StatusNotFound {
		t.Fatalf("un-replicated histogram answered HTTP %d, want 404", st)
	}

	// Auto-promotion: the replica goes writable under a fencing token.
	waitUntil(t, "auto-promotion of the replica", func() bool { return !rSrv.ReadOnly() })
	if rSrv.Epoch() <= oldEpoch {
		t.Fatalf("promotion did not advance the epoch: %d -> %d", oldEpoch, rSrv.Epoch())
	}

	// Write availability is restored through the router.
	var mttrWrite time.Duration
	payload := `{"updates":[{"key":1,"delta":1}]}`
	waitUntil(t, "first routed write after kill", func() bool {
		res, err := http.Post(base+"/v1/hist/alive/updates", "application/json", strings.NewReader(payload))
		if err != nil {
			return false
		}
		defer res.Body.Close()
		if res.StatusCode != http.StatusOK {
			return false
		}
		mttrWrite = time.Since(killedAt)
		return true
	})
	t.Logf("failover MTTR: first read %v, first write %v", mttrRead, mttrWrite)
	if mttrRead > 5*time.Second || mttrWrite > 8*time.Second {
		t.Fatalf("MTTR out of budget: read %v, write %v", mttrRead, mttrWrite)
	}

	// The topology swap is visible: the replica's address now leads the
	// shard and the promotion was counted.
	topo := getJSON(t, base+"/v1/router", http.StatusOK)
	sh := topo["shards"].([]any)[0].(map[string]any)
	if sh["primary"] != rFront.URL {
		t.Fatalf("topology primary = %v, want %v", sh["primary"], rFront.URL)
	}
	if topo["promotions"].(float64) < 1 {
		t.Fatalf("no promotion recorded: %v", topo)
	}
	if topo["topology_version"].(float64) < 2 {
		t.Fatalf("topology version did not advance: %v", topo)
	}

	// --- Resurrect the old primary from its data directory. ---
	p2Srv, p2TS := newNode(t, serve.Config{Shard: "s0", SnapshotDir: dir})
	if p2Srv.ReadOnly() {
		t.Fatal("resurrected primary started read-only; the fence should do the demoting")
	}
	if _, ok := p2Srv.Registry().Lookup("behind"); !ok {
		t.Fatal("resurrected primary lost its persisted histograms")
	}
	pProxy.SetBlackhole(false)
	pProxy.SetUpstream(p2TS.URL)

	// The router's fence demotes it read-only: died a primary, returns a
	// replica. No split brain.
	waitUntil(t, "resurrected primary fenced read-only", func() bool { return p2Srv.ReadOnly() })
	postJSON(t, p2TS.URL+"/v1/hist/alive/updates", map[string]any{
		"updates": []map[string]any{{"key": 1, "delta": 1}},
	}, http.StatusForbidden)

	// Reads still come from the promoted lineage, bit-identically; the
	// resurrected node's private "behind" histogram stays invisible.
	if st, est := routedRead(base, "alive"); st != http.StatusOK || est != pt {
		t.Fatalf("post-resurrection read: HTTP %d estimate %v, want 200 %v", st, est, pt)
	}
	if got := getJSON(t, base+"/v1/hist/alive/range?lo=0&hi=500", http.StatusOK)["estimate"].(float64); got != rg {
		t.Fatalf("post-resurrection range estimate %v, want %v", got, rg)
	}
	if st, _ := routedRead(base, "behind"); st != http.StatusNotFound {
		t.Fatalf("fenced node's un-replicated histogram leaked: HTTP %d, want 404", st)
	}
}

// TestChaosFaultyPrimaryReadsStayCorrect runs routed reads through a
// primary proxy injecting seeded 5xx answers, connection drops, and
// truncated bodies, with a clean fully-synced replica behind the shard:
// every read must still return the exact healthy-path estimate — the
// breaker and replica failover absorb the faults, never surfacing them
// or a wrong answer to the client.
func TestChaosFaultyPrimaryReadsStayCorrect(t *testing.T) {
	pSrv, pTS := newNode(t, serve.Config{Shard: "s0"})
	rSrv, rTS := newNode(t, serve.Config{ReadOnly: true, Shard: "s0"})
	rep := NewReplica(rSrv, pTS.URL, 20*time.Millisecond)

	h := buildTestHist(t, 3)
	if _, err := pSrv.Registry().Publish("steady", h); err != nil {
		t.Fatal(err)
	}
	if err := rep.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := h.PointEstimate(123)

	pProxy := chaos.New(pTS.URL, chaos.Config{
		Seed: 99, ErrorProb: 0.35, DropProb: 0.25, PartialProb: 0.15,
	})
	pFront := httptest.NewServer(pProxy)
	defer pFront.Close()

	router, err := NewRouterConfig([]Shard{{
		ID: "s0", Primary: pFront.URL, Replicas: []string{rTS.URL},
	}}, RouterConfig{
		ReadTimeout: time.Second,
		Breaker:     BreakerConfig{Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	routerTS := httptest.NewServer(router)
	defer routerTS.Close()

	for i := 0; i < 30; i++ {
		st, est := routedRead(routerTS.URL, "steady")
		if st != http.StatusOK {
			t.Fatalf("read %d through faulty primary: HTTP %d", i, st)
		}
		if est != want {
			t.Fatalf("read %d: estimate %v, want %v", i, est, want)
		}
	}
	if router.failovers.Load() == 0 {
		t.Fatal("faults injected but the router never failed over")
	}
	c := pProxy.Counts()
	if c.Dropped+c.Errored+c.Partial == 0 {
		t.Fatalf("chaos proxy injected nothing: %+v", c)
	}
}

// TestChaosPromoteRaceWithPull races POST /v1/promote against an
// in-flight replication pull stream (run under -race in CI). The
// promotion lock guarantees the replica's registry is always a
// prefix-consistent view — every histogram present is bit-identical to
// the primary's, presence is a contiguous prefix of the publish order,
// and nothing is half-applied when the epoch flips.
func TestChaosPromoteRaceWithPull(t *testing.T) {
	pSrv, pTS := newNode(t, serve.Config{})
	rSrv, rTS := newNode(t, serve.Config{ReadOnly: true})
	rep := NewReplica(rSrv, pTS.URL, time.Millisecond)

	const n = 12
	names := make([]string, n)
	blobs := make([][]byte, n)
	hists := make([]*wavelethist.Histogram, n)
	for i := range names {
		names[i] = fmt.Sprintf("h%03d", i)
		hists[i] = buildTestHist(t, uint64(i+1))
		b, err := hists[i].MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		blobs[i] = b
	}
	// Seed one entry so the first pull has work.
	if _, err := pSrv.Registry().Publish(names[0], hists[0]); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // publisher: keeps the pull stream busy during promotion
		defer wg.Done()
		for i := 1; i < n; i++ {
			if _, err := pSrv.Registry().Publish(names[i], hists[i]); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()
	go func() { // syncer: pull-and-apply until promotion cuts it off
		defer wg.Done()
		ctx := context.Background()
		for {
			err := rep.SyncOnce(ctx)
			if errors.Is(err, serve.ErrNotReplica) {
				return
			}
			if err != nil {
				t.Errorf("sync: %v", err)
				return
			}
		}
	}()

	time.Sleep(3 * time.Millisecond)
	token := rSrv.Epoch() + 1
	postJSON(t, rTS.URL+"/v1/promote", map[string]any{"epoch": token}, http.StatusOK)
	wg.Wait()

	if rSrv.ReadOnly() {
		t.Fatal("replica still read-only after promotion")
	}
	// Presence must be a contiguous prefix of the publish order...
	present := 0
	for present < n {
		if _, ok := rSrv.Registry().Lookup(names[present]); !ok {
			break
		}
		present++
	}
	for i := present; i < n; i++ {
		if _, ok := rSrv.Registry().Lookup(names[i]); ok {
			t.Fatalf("torn view: %s present but %s missing", names[i], names[present])
		}
	}
	// ...and every present histogram bit-identical to the primary's.
	for i := 0; i < present; i++ {
		e, _ := rSrv.Registry().Lookup(names[i])
		got, err := e.H.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, blobs[i]) {
			t.Fatalf("%s differs from the primary's bytes after the promote race", names[i])
		}
	}
	t.Logf("promote landed with %d/%d histograms replicated", present, n)
}
