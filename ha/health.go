package ha

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Router-driven health checking and automatic failover. Every probe
// interval the checker GETs each shard target's /healthz — one probe
// answers liveness, role (read_only), registry epoch, and replication
// progress (applied version + the epoch it was synced under). Verdicts
// are EWMA-smoothed for reporting, but state transitions are discrete:
// a target is marked down after ProbeFailThreshold consecutive
// failures (one flaky probe must not trigger failover) and up again on
// the first success.
//
// After each sweep the checker reconciles every shard:
//
//   - A down primary (and no writable stand-in) elects the most
//     caught-up replica — ordered by (repl epoch, applied version), so
//     a replica already re-based on a newer lineage beats a longer but
//     stale cursor — and promotes it via POST /v1/promote with an
//     epoch fencing token (max epoch observed anywhere in the shard,
//     plus one). Success atomically swaps the router's topology
//     snapshot: the shard map is config only until the first failover.
//   - A writable target that is NOT the shard's best lineage (a
//     resurrected old primary whose epoch the fence has moved past, or
//     the loser of a tie) is demoted via POST /v1/demote with a token
//     above every epoch in sight. The demote endpoint refuses stale
//     tokens, so a lagging router cannot fence the legitimate primary.
//   - A replica-positioned target that IS writable with the shard's
//     highest epoch (this router restarted and lost the swap, or an
//     operator promoted by hand) is adopted as primary without any
//     RPC — the router re-learns the cluster instead of fighting it.
type healthChecker struct {
	rt           *Router
	interval     time.Duration
	timeout      time.Duration
	failN        int
	autoFailover bool
	client       *http.Client

	mu      sync.Mutex
	targets map[string]*targetHealth
	fences  map[string]uint64 // shard ID -> epoch of the lineage this router follows

	promotions atomic.Uint64
	demotions  atomic.Uint64

	stopCh chan struct{}
	doneCh chan struct{}
}

// targetHealth is one target's probe state, exported as-is in
// GET /v1/router's "health" map.
type targetHealth struct {
	URL         string  `json:"url"`
	Up          bool    `json:"up"`
	ConsecFails int     `json:"consec_fails"`
	EWMA        float64 `json:"ewma"` // smoothed availability in [0,1]
	Probes      uint64  `json:"probes"`
	Epoch       uint64  `json:"epoch"`
	ReplEpoch   uint64  `json:"repl_epoch"`
	Applied     uint64  `json:"applied"`
	Version     uint64  `json:"version"`
	ReadOnly    bool    `json:"read_only"`
	LastErr     string  `json:"last_error,omitempty"`
}

// ewmaAlpha weights the newest probe at 30% — a few probes to saturate
// either way, responsive without flapping on one blip.
const ewmaAlpha = 0.3

func newHealthChecker(rt *Router, cfg RouterConfig) *healthChecker {
	timeout := cfg.ProbeTimeout
	if timeout <= 0 {
		timeout = cfg.ProbeInterval
		if timeout > time.Second {
			timeout = time.Second
		}
	}
	failN := cfg.ProbeFailThreshold
	if failN <= 0 {
		failN = 3
	}
	return &healthChecker{
		rt:           rt,
		interval:     cfg.ProbeInterval,
		timeout:      timeout,
		failN:        failN,
		autoFailover: !cfg.NoAutoFailover,
		client:       &http.Client{},
		targets:      map[string]*targetHealth{},
		fences:       map[string]uint64{},
	}
}

func (h *healthChecker) start() {
	h.stopCh = make(chan struct{})
	h.doneCh = make(chan struct{})
	go func() {
		defer close(h.doneCh)
		t := time.NewTicker(h.interval)
		defer t.Stop()
		for {
			select {
			case <-h.stopCh:
				return
			case <-t.C:
				h.sweep()
			}
		}
	}()
}

func (h *healthChecker) stop() {
	if h.stopCh == nil {
		return
	}
	close(h.stopCh)
	<-h.doneCh
	h.stopCh = nil
}

// healthzBody is the subset of GET /healthz the checker elects on.
type healthzBody struct {
	OK        bool   `json:"ok"`
	Version   uint64 `json:"version"`
	Epoch     uint64 `json:"epoch"`
	ReadOnly  bool   `json:"read_only"`
	Applied   uint64 `json:"applied"`
	ReplEpoch uint64 `json:"repl_epoch"`
}

// sweep probes every target in the current topology concurrently, then
// reconciles each shard's roles against what the probes learned.
func (h *healthChecker) sweep() {
	topo := h.rt.topo.Load()
	type result struct {
		url  string
		body healthzBody
		err  error
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		results []result
	)
	for _, sh := range topo.shards {
		for _, url := range shardTargets(sh) {
			wg.Add(1)
			go func(url string) {
				defer wg.Done()
				body, err := h.probe(url)
				mu.Lock()
				results = append(results, result{url: url, body: body, err: err})
				mu.Unlock()
			}(url)
		}
	}
	wg.Wait()

	h.mu.Lock()
	for _, res := range results {
		th := h.targets[res.url]
		if th == nil {
			th = &targetHealth{URL: res.url, Up: true, EWMA: 1}
			h.targets[res.url] = th
		}
		th.Probes++
		if res.err != nil {
			th.ConsecFails++
			th.EWMA *= 1 - ewmaAlpha
			th.LastErr = res.err.Error()
			if th.ConsecFails >= h.failN {
				th.Up = false
			}
			continue
		}
		th.ConsecFails = 0
		th.Up = true
		th.EWMA = ewmaAlpha + (1-ewmaAlpha)*th.EWMA
		th.LastErr = ""
		th.Epoch = res.body.Epoch
		th.ReadOnly = res.body.ReadOnly
		th.Applied = res.body.Applied
		th.ReplEpoch = res.body.ReplEpoch
		th.Version = res.body.Version
	}
	h.mu.Unlock()

	for _, sh := range topo.shards {
		h.reconcile(sh)
	}
}

func (h *healthChecker) probe(url string) (healthzBody, error) {
	var body healthzBody
	ctx, cancel := context.WithTimeout(context.Background(), h.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/healthz", nil)
	if err != nil {
		return body, err
	}
	res, err := h.client.Do(req)
	if err != nil {
		return body, err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return body, fmt.Errorf("healthz: HTTP %d", res.StatusCode)
	}
	if err := json.NewDecoder(res.Body).Decode(&body); err != nil {
		return body, fmt.Errorf("healthz: %w", err)
	}
	if !body.OK {
		return body, fmt.Errorf("healthz: ok=false")
	}
	return body, nil
}

func shardTargets(sh *Shard) []string {
	out := make([]string, 0, 1+len(sh.Replicas))
	out = append(out, sh.Primary)
	out = append(out, sh.Replicas...)
	return out
}

// reconcile applies the failover rules to one shard. It runs only from
// the single sweep goroutine; h.mu guards the probe-state reads because
// /v1/router and readShard read them concurrently.
func (h *healthChecker) reconcile(sh *Shard) {
	h.mu.Lock()
	fence := h.fences[sh.ID]
	maxEpoch := fence
	var (
		writables []*targetHealth
		primary   = h.targets[sh.Primary]
	)
	for _, url := range shardTargets(sh) {
		th := h.targets[url]
		if th == nil || !th.Up || th.Probes == 0 {
			continue
		}
		if th.Epoch > maxEpoch {
			maxEpoch = th.Epoch
		}
		if th.ReplEpoch > maxEpoch {
			maxEpoch = th.ReplEpoch
		}
		if !th.ReadOnly {
			writables = append(writables, th)
		}
	}

	// The best writable lineage: highest epoch, version as tie-break
	// (a resurrected primary's restarted counter loses to the promoted
	// replica's advanced one).
	var best *targetHealth
	for _, th := range writables {
		if best == nil || th.Epoch > best.Epoch ||
			(th.Epoch == best.Epoch && th.Version > best.Version) {
			best = th
		}
	}

	var (
		adoptURL   string
		promoteURL string
		token      uint64
		demotes    []string
	)
	switch {
	case best != nil && best.Epoch >= fence:
		// A legitimate primary is up and writable. Follow it (adopting
		// it if the topology still points elsewhere) and fence every
		// other writable out of the shard.
		fence = best.Epoch
		h.fences[sh.ID] = fence
		if best.URL != sh.Primary {
			adoptURL = best.URL
		}
		for _, th := range writables {
			if th != best {
				demotes = append(demotes, th.URL)
			}
		}
		token = maxEpoch + 1
	case h.autoFailover && primary != nil && !primary.Up && primary.ConsecFails >= h.failN:
		// Primary down, no acceptable writable: elect the most
		// caught-up replica, fencing with a token above every epoch
		// this shard has ever shown us.
		var cand *targetHealth
		for _, url := range sh.Replicas {
			th := h.targets[url]
			if th == nil || !th.Up || th.Probes == 0 || !th.ReadOnly {
				continue
			}
			if cand == nil || th.ReplEpoch > cand.ReplEpoch ||
				(th.ReplEpoch == cand.ReplEpoch && th.Applied > cand.Applied) {
				cand = th
			}
		}
		token = maxEpoch + 1
		if cand != nil {
			promoteURL = cand.URL
		}
		// A stale writable (old primary back from the dead while the
		// fence points past it) is demoted even without a promotion.
		for _, th := range writables {
			demotes = append(demotes, th.URL)
		}
	default:
		// Primary not (yet) conclusively down. Writables below the
		// fence are still superseded lineages — fence them out.
		token = maxEpoch + 1
		for _, th := range writables {
			if th.Epoch < fence {
				demotes = append(demotes, th.URL)
			}
		}
	}
	h.mu.Unlock()

	if adoptURL != "" {
		h.rt.swapPrimary(sh.ID, adoptURL)
	}
	if promoteURL != "" {
		if err := h.fencePost(promoteURL, "/v1/promote", token); err == nil {
			h.promotions.Add(1)
			h.rt.swapPrimary(sh.ID, promoteURL)
			h.mu.Lock()
			h.fences[sh.ID] = token
			if th := h.targets[promoteURL]; th != nil {
				th.ReadOnly = false
				th.Epoch = token
			}
			h.mu.Unlock()
		}
	}
	for _, url := range demotes {
		if err := h.fencePost(url, "/v1/demote", token); err == nil {
			h.demotions.Add(1)
			h.mu.Lock()
			if th := h.targets[url]; th != nil {
				th.ReadOnly = true
			}
			h.mu.Unlock()
		}
	}
}

// fencePost sends a promote/demote with an epoch fencing token.
func (h *healthChecker) fencePost(target, path string, token uint64) error {
	payload, _ := json.Marshal(map[string]uint64{"epoch": token})
	timeout := 4 * h.timeout
	if timeout < 2*time.Second {
		timeout = 2 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target+path, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	res, err := h.client.Do(req)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d", path, res.StatusCode)
	}
	return nil
}

// orderUp stably partitions targets so the ones the checker believes up
// come first. Down targets are tried last, never skipped: if the whole
// shard looks down, a stale verdict must not turn a servable request
// into a refusal.
func (h *healthChecker) orderUp(targets []string) []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	up := make([]string, 0, len(targets))
	var down []string
	for _, t := range targets {
		if th := h.targets[t]; th != nil && !th.Up {
			down = append(down, t)
			continue
		}
		up = append(up, t)
	}
	return append(up, down...)
}

// isUp reports the checker's current verdict (unknown targets are up).
func (h *healthChecker) isUp(target string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	th := h.targets[target]
	return th == nil || th.Up
}

// view returns a copy of the probe states (sorted by URL) and fence
// epochs for GET /v1/router.
func (h *healthChecker) view() ([]targetHealth, map[string]uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]targetHealth, 0, len(h.targets))
	for _, th := range h.targets {
		out = append(out, *th)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	fences := make(map[string]uint64, len(h.fences))
	for id, f := range h.fences {
		fences[id] = f
	}
	return out, fences
}
