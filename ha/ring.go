// Package ha is the high-availability serving tier: it turns single
// wavehistd processes into a sharded, replicated cluster. Histogram
// names are placed on shards by a consistent-hash ring (Ring), each
// shard's primary streams registry changes to read replicas (Replica),
// and a stateless router (Router) fronts the fleet — forwarding queries
// to the owning shard, retrying reads against replicas when a primary is
// down, and fanning out list/stats/batch requests across shards.
//
// The division of labor mirrors the paper's serving story: summaries are
// tiny (kilobytes), so replication is cheap enough to run everywhere,
// and the expensive part — the distributed build — stays on the
// coordinator, which checkpoints its round barriers (dist.Config.
// CheckpointDir) so even mid-build coordinator crashes resume without
// re-running completed rounds.
package ha

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// defaultVnodes is how many virtual nodes each shard gets on the ring.
// 128 keeps the max/min load ratio within a few percent for small fleets
// while the whole ring stays tiny (vnodes × 12 bytes).
const defaultVnodes = 128

type vnode struct {
	hash  uint64
	shard int // index into shards
}

// Ring is an immutable consistent-hash ring mapping histogram names to
// shard IDs. Placement depends only on the shard ID set, so every router
// and client configured with the same shards computes identical
// placements with no coordination — and adding a shard moves only
// ~1/(n+1) of the names.
type Ring struct {
	shards []string
	vnodes []vnode
}

// NewRing builds a ring over the given shard IDs with vnodesPer virtual
// nodes each (<= 0 = default 128). Shard IDs must be unique.
func NewRing(shards []string, vnodesPer int) (*Ring, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("ha: ring needs at least one shard")
	}
	if vnodesPer <= 0 {
		vnodesPer = defaultVnodes
	}
	seen := map[string]bool{}
	r := &Ring{
		shards: append([]string(nil), shards...),
		vnodes: make([]vnode, 0, len(shards)*vnodesPer),
	}
	for si, id := range shards {
		if id == "" || seen[id] {
			return nil, fmt.Errorf("ha: invalid or duplicate shard ID %q", id)
		}
		seen[id] = true
		for i := 0; i < vnodesPer; i++ {
			r.vnodes = append(r.vnodes, vnode{hash: hash64(fmt.Sprintf("%s#%d", id, i)), shard: si})
		}
	}
	sort.Slice(r.vnodes, func(i, j int) bool { return r.vnodes[i].hash < r.vnodes[j].hash })
	return r, nil
}

// Shard returns the shard ID owning name: the first vnode clockwise of
// the name's hash.
func (r *Ring) Shard(name string) string {
	h := hash64(name)
	i := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= h })
	if i == len(r.vnodes) {
		i = 0 // wrap past the top of the ring
	}
	return r.shards[r.vnodes[i].shard]
}

// Shards returns the shard IDs in configuration order.
func (r *Ring) Shards() []string { return append([]string(nil), r.shards...) }

// hash64 is FNV-1a finished with the splitmix64 mixer. Raw FNV-1a
// avalanches poorly on the short, near-identical strings ring keys are
// made of ("s0#17", "s1#17", …) — vnodes end up clumped and one shard
// can own most of the keyspace. The finisher makes every input bit
// perturb every output bit, which is what ring uniformity depends on.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
