package ha

import (
	"fmt"
	"testing"
)

func TestRingPlacement(t *testing.T) {
	r, err := NewRing([]string{"s0", "s1", "s2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic: same name, same shard, every time.
	for i := 0; i < 50; i++ {
		name := fmt.Sprintf("hist-%d", i)
		first := r.Shard(name)
		if again := r.Shard(name); again != first {
			t.Fatalf("%s moved from %s to %s", name, first, again)
		}
	}
	// Every shard owns a reasonable chunk of a large name population.
	counts := map[string]int{}
	const n = 3000
	for i := 0; i < n; i++ {
		counts[r.Shard(fmt.Sprintf("name-%d", i))]++
	}
	for _, id := range r.Shards() {
		if c := counts[id]; c < n/3/3 || c > n {
			t.Fatalf("shard %s owns %d of %d names — badly unbalanced: %v", id, c, n, counts)
		}
	}

	// Consistency: adding a shard relocates only a bounded fraction.
	r2, err := NewRing([]string{"s0", "s1", "s2", "s3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("name-%d", i)
		if a, b := r.Shard(name), r2.Shard(name); a != b {
			if b != "s3" {
				t.Fatalf("%s moved between surviving shards (%s → %s)", name, a, b)
			}
			moved++
		}
	}
	// Expected ~n/4; allow generous slack for hash variance.
	if moved == 0 || moved > n/2 {
		t.Fatalf("adding a shard moved %d of %d names", moved, n)
	}
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty ring accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 0); err == nil {
		t.Error("duplicate shard accepted")
	}
	if _, err := NewRing([]string{""}, 0); err == nil {
		t.Error("empty shard ID accepted")
	}
}
