package ha

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"wavelethist/serve"
)

// coalesceFixture stands up one real shard behind two routers over the
// same topology: one coalescing, one direct. Byte-comparing their
// responses is the core contract check — clients must not be able to
// tell whether their GET was coalesced.
type coalesceFixture struct {
	shard    *serve.Server
	coalComp *Router
	coalTS   *httptest.Server
	directTS *httptest.Server
}

func newCoalesceFixture(t *testing.T, cfg RouterConfig) *coalesceFixture {
	t.Helper()
	s, shardTS := newNode(t, serve.Config{})
	h := buildTestHist(t, 51)
	if _, err := s.Registry().Publish("demo", h); err != nil {
		t.Fatal(err)
	}
	shards := []Shard{{ID: "s0", Primary: shardTS.URL}}
	coal, err := NewRouterConfig(shards, cfg)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := NewRouter([]Shard{{ID: "s0", Primary: shardTS.URL}})
	if err != nil {
		t.Fatal(err)
	}
	coalTS := httptest.NewServer(coal)
	t.Cleanup(coalTS.Close)
	directTS := httptest.NewServer(direct)
	t.Cleanup(directTS.Close)
	return &coalesceFixture{shard: s, coalComp: coal, coalTS: coalTS, directTS: directTS}
}

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

// TestCoalesceScatterOrder: concurrent single-query GETs merged into one
// batch come back byte-identical to the direct (uncoalesced) router —
// each waiter receives its own query's estimate, echo fields included,
// across points, 1D ranges, and mixed off-domain keys.
func TestCoalesceScatterOrder(t *testing.T) {
	f := newCoalesceFixture(t, RouterConfig{CoalesceWait: 20 * time.Millisecond, CoalesceMax: 512})
	paths := make([]string, 48)
	for i := range paths {
		switch i % 3 {
		case 0:
			paths[i] = fmt.Sprintf("/v1/hist/demo/point?key=%d", i*37%(1<<12))
		case 1:
			paths[i] = fmt.Sprintf("/v1/hist/demo/range?lo=%d&hi=%d", i, i+500)
		default:
			paths[i] = fmt.Sprintf("/v1/hist/demo/point?key=%d", 1<<12+i) // off-domain → 400
		}
	}
	want := make([]string, len(paths))
	wantCode := make([]int, len(paths))
	for i, p := range paths {
		wantCode[i], want[i] = getBody(t, f.directTS.URL+p)
	}
	got := make([]string, len(paths))
	gotCode := make([]int, len(paths))
	var wg sync.WaitGroup
	for i, p := range paths {
		wg.Add(1)
		go func(i int, p string) {
			defer wg.Done()
			gotCode[i], got[i] = getBody(t, f.coalTS.URL+p)
		}(i, p)
	}
	wg.Wait()
	for i := range paths {
		if gotCode[i] != wantCode[i] || got[i] != want[i] {
			t.Errorf("%s:\n  coalesced: %d %q\n  direct:    %d %q",
				paths[i], gotCode[i], got[i], wantCode[i], want[i])
		}
	}
	if n := f.coalComp.coalesced.Value(); n < int64(len(paths)) {
		t.Errorf("coalesced counter = %d, want >= %d", n, len(paths))
	}
	if d := f.coalComp.coalesceDepth.Load(); d != 0 {
		t.Errorf("queue depth = %d after drain, want 0", d)
	}
}

// TestCoalesceMaxDispatch: a full batch dispatches immediately — with a
// wait window far longer than the test, CoalesceMax concurrent queries
// must still come back promptly via the size trigger.
func TestCoalesceMaxDispatch(t *testing.T) {
	f := newCoalesceFixture(t, RouterConfig{CoalesceWait: time.Hour, CoalesceMax: 4})
	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if code, body := getBody(t, f.coalTS.URL+fmt.Sprintf("/v1/hist/demo/point?key=%d", i)); code != http.StatusOK {
					t.Errorf("key=%d: HTTP %d: %s", i, code, body)
				}
			}(i)
		}
		wg.Wait()
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("full batch did not dispatch before the wait window")
	}
}

// TestCoalesceLatencyBudget: a lone query never waits longer than
// roughly the configured window before its batch-of-one dispatches.
func TestCoalesceLatencyBudget(t *testing.T) {
	f := newCoalesceFixture(t, RouterConfig{CoalesceWait: 50 * time.Millisecond, CoalesceMax: 256})
	t0 := time.Now()
	code, body := getBody(t, f.coalTS.URL+"/v1/hist/demo/point?key=7")
	elapsed := time.Since(t0)
	if code != http.StatusOK {
		t.Fatalf("HTTP %d: %s", code, body)
	}
	if elapsed < 40*time.Millisecond {
		t.Errorf("lone query returned in %v — did not wait out the window", elapsed)
	}
	if elapsed > 5*time.Second {
		t.Errorf("lone query took %v, far beyond the window", elapsed)
	}
	if n := f.coalComp.coalesced.Value(); n != 1 {
		t.Errorf("coalesced counter = %d, want 1", n)
	}
}

// TestCoalesceErrorPassthrough: shard verdicts survive coalescing — an
// unknown name's 404 passes through verbatim, and ambiguous or
// unparsable parameters fall through to the direct proxy path with its
// exact error responses.
func TestCoalesceErrorPassthrough(t *testing.T) {
	f := newCoalesceFixture(t, RouterConfig{CoalesceWait: 5 * time.Millisecond})
	for _, path := range []string{
		"/v1/hist/ghost/point?key=1",          // unknown name: shard 404 via batch passthrough
		"/v1/hist/demo/point?key=notanint",    // unparsable: falls through to direct proxy
		"/v1/hist/demo/point?key=1&x=2&y=3",   // ambiguous form: falls through
		"/v1/hist/demo/range?lo=1",            // half a range: falls through (400)
		"/v1/hist/demo/range?lo=1&hi=2&xlo=0", // mixed 1D/2D params: falls through
		"/v1/hist/demo/point?key=999999999",   // off-domain: per-query 400
	} {
		wantCode, wantBody := getBody(t, f.directTS.URL+path)
		gotCode, gotBody := getBody(t, f.coalTS.URL+path)
		if gotCode != wantCode || gotBody != wantBody {
			t.Errorf("%s:\n  coalesced: %d %q\n  direct:    %d %q", path, gotCode, gotBody, wantCode, wantBody)
		}
	}

	// Documented divergence (see coalesce.go): a wrong-dimensional form
	// that IS a complete, parseable query takes the batch API's
	// semantics — here a 2D rectangle against a 1D entry becomes
	// RangeCount(0, 0) — where the direct endpoint answers 400. Pin it
	// so a behaviour change is a conscious one.
	code, _ := getBody(t, f.coalTS.URL+"/v1/hist/demo/range?xlo=1&xhi=2&ylo=0&yhi=3")
	if code != http.StatusOK {
		t.Errorf("2D form on 1D entry through coalescer: HTTP %d, want 200 (batch semantics)", code)
	}
}

// TestCoalesceShardDown: with every target unreachable the waiters get
// the router's 502, not a hang.
func TestCoalesceShardDown(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // nothing listens anymore
	rt, err := NewRouterConfig([]Shard{{ID: "s0", Primary: dead.URL}},
		RouterConfig{CoalesceWait: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt)
	defer ts.Close()
	code, body := getBody(t, ts.URL+"/v1/hist/demo/point?key=1")
	if code != http.StatusBadGateway {
		t.Fatalf("HTTP %d: %s", code, body)
	}
}

// TestCoalesceUnderUpdateLoad is the race smoke CI runs with -race:
// concurrent coalesced reads race maintainer updates (and the
// republishes they trigger) flowing through the same router, exercising
// the pending-map locking, timer/size dispatch races, and the shard's
// snapshot swaps together.
func TestCoalesceUnderUpdateLoad(t *testing.T) {
	f := newCoalesceFixture(t, RouterConfig{CoalesceWait: 2 * time.Millisecond, CoalesceMax: 8})
	const readers = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var path string
				if i%2 == 0 {
					path = fmt.Sprintf("/v1/hist/demo/point?key=%d", (g*131+i)%(1<<12))
				} else {
					path = fmt.Sprintf("/v1/hist/demo/range?lo=%d&hi=%d", i%100, i%100+900)
				}
				if code, body := getBody(t, f.coalTS.URL+path); code != http.StatusOK {
					t.Errorf("%s: HTTP %d: %s", path, code, body)
					return
				}
			}
		}(g)
	}
	for i := 0; i < 25; i++ {
		updates := make([]map[string]any, 40)
		for j := range updates {
			updates[j] = map[string]any{"key": int64((i*40 + j) % (1 << 12)), "delta": 1.0}
		}
		postJSON(t, f.coalTS.URL+"/v1/hist/demo/updates",
			map[string]any{"updates": updates}, http.StatusOK)
	}
	close(stop)
	wg.Wait()
}
