package chaos

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func upstream(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		w.Header().Set("Content-Type", "text/plain")
		w.Write([]byte("echo:" + r.URL.RequestURI() + ":" + string(body)))
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestCleanPassThrough(t *testing.T) {
	up := upstream(t)
	p := New(up.URL, Config{Seed: 7})
	front := httptest.NewServer(p)
	defer front.Close()

	res, err := http.Post(front.URL+"/v1/thing?q=1", "text/plain", strings.NewReader("hello"))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer res.Body.Close()
	body, _ := io.ReadAll(res.Body)
	if got, want := string(body), "echo:/v1/thing?q=1:hello"; got != want {
		t.Fatalf("body = %q, want %q", got, want)
	}
	if c := p.Counts(); c.Forwarded != 1 || c.Dropped+c.Errored+c.Partial+c.Blackhole != 0 {
		t.Fatalf("counts = %+v, want one clean forward", c)
	}
}

func TestBlackholeResetsConnections(t *testing.T) {
	up := upstream(t)
	p := New(up.URL, Config{Seed: 7})
	front := httptest.NewServer(p)
	defer front.Close()

	p.SetBlackhole(true)
	if _, err := http.Get(front.URL + "/healthz"); err == nil {
		t.Fatal("expected a transport error through a blackholed proxy")
	}
	p.SetBlackhole(false)
	res, err := http.Get(front.URL + "/healthz")
	if err != nil {
		t.Fatalf("after un-blackholing: %v", err)
	}
	res.Body.Close()
	if c := p.Counts(); c.Blackhole == 0 {
		t.Fatalf("counts = %+v, want blackhole hits recorded", c)
	}
}

func TestSetUpstreamSwapsTarget(t *testing.T) {
	a := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("A"))
	}))
	defer a.Close()
	b := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("B"))
	}))
	defer b.Close()

	p := New(a.URL+"/", Config{Seed: 7}) // trailing slash must be trimmed
	front := httptest.NewServer(p)
	defer front.Close()

	get := func() string {
		res, err := http.Get(front.URL + "/x")
		if err != nil {
			t.Fatalf("get: %v", err)
		}
		defer res.Body.Close()
		body, _ := io.ReadAll(res.Body)
		return string(body)
	}
	if got := get(); got != "A" {
		t.Fatalf("before swap: %q, want A", got)
	}
	p.SetUpstream(b.URL)
	if got := get(); got != "B" {
		t.Fatalf("after swap: %q, want B", got)
	}
}

func TestInjectedErrorsAreDeterministic(t *testing.T) {
	run := func() []int {
		up := upstream(t)
		p := New(up.URL, Config{Seed: 42, ErrorProb: 0.5})
		front := httptest.NewServer(p)
		defer front.Close()
		var codes []int
		for i := 0; i < 20; i++ {
			res, err := http.Get(front.URL + "/x")
			if err != nil {
				t.Fatalf("get %d: %v", i, err)
			}
			io.Copy(io.Discard, res.Body)
			res.Body.Close()
			codes = append(codes, res.StatusCode)
		}
		return codes
	}
	first, second := run(), run()
	var fails int
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("run divergence at %d: %d vs %d", i, first[i], second[i])
		}
		if first[i] == http.StatusBadGateway {
			fails++
		}
	}
	if fails == 0 || fails == len(first) {
		t.Fatalf("got %d/%d injected errors, want a mix", fails, len(first))
	}
}

func TestDropsSurfaceAsTransportErrors(t *testing.T) {
	up := upstream(t)
	p := New(up.URL, Config{Seed: 3, DropProb: 1})
	front := httptest.NewServer(p)
	defer front.Close()

	// Disable keep-alives so each attempt sees the reset directly rather
	// than a reused-connection edge case.
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	if _, err := client.Get(front.URL + "/x"); err == nil {
		t.Fatal("expected transport error from dropped connection")
	}
	if c := p.Counts(); c.Dropped == 0 {
		t.Fatalf("counts = %+v, want drops recorded", c)
	}
}

func TestPartialBodyTruncates(t *testing.T) {
	big := strings.Repeat("wavelet-", 512)
	up := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(big))
	}))
	defer up.Close()

	p := New(up.URL, Config{Seed: 3, PartialProb: 1})
	front := httptest.NewServer(p)
	defer front.Close()

	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	res, err := client.Get(front.URL + "/x")
	if err != nil {
		// Some transports surface the mid-body reset at Do time; that is
		// an acceptable shape for a partial-body fault.
		return
	}
	defer res.Body.Close()
	body, readErr := io.ReadAll(res.Body)
	if readErr == nil && len(body) == len(big) {
		t.Fatalf("read full %d-byte body with no error, want truncation", len(body))
	}
	if c := p.Counts(); c.Partial == 0 {
		t.Fatalf("counts = %+v, want partial recorded", c)
	}
}

func TestDelayStalls(t *testing.T) {
	up := upstream(t)
	p := New(up.URL, Config{Seed: 3, DelayProb: 1, Delay: 50 * time.Millisecond})
	front := httptest.NewServer(p)
	defer front.Close()

	t0 := time.Now()
	res, err := http.Get(front.URL + "/x")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	res.Body.Close()
	if d := time.Since(t0); d < 50*time.Millisecond {
		t.Fatalf("request returned in %v, want >= 50ms injected delay", d)
	}
}
