// Package chaos is a deterministic fault-injecting HTTP proxy for
// failover tests: it forwards requests to an upstream while injecting
// seeded drops (connection resets), delays, 5xx answers, and partial
// bodies, plus a blackhole switch that kills every connection — the
// "primary just died" lever. The upstream is swappable at runtime so a
// test can resurrect a killed node as a fresh process behind the same
// stable address the router keeps probing.
//
// Determinism: every injection decision is drawn from one seeded PRNG
// under a mutex, so a fixed seed and a fixed request order replay the
// same fault sequence — the property a CI chaos smoke needs to not
// flake.
package chaos

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Config sets the injection probabilities (all default 0 = a clean
// pass-through proxy).
type Config struct {
	// Seed fixes the PRNG (0 = 1, still deterministic).
	Seed int64
	// DropProb resets the client connection without any response.
	DropProb float64
	// DelayProb stalls the exchange by Delay before forwarding.
	DelayProb float64
	Delay     time.Duration
	// ErrorProb answers 502 without contacting the upstream.
	ErrorProb float64
	// PartialProb forwards the response but truncates the body halfway
	// and resets — the client sees an unexpected EOF mid-read.
	PartialProb float64
}

// Counts reports what the proxy has done so far.
type Counts struct {
	Forwarded uint64 `json:"forwarded"`
	Dropped   uint64 `json:"dropped"`
	Delayed   uint64 `json:"delayed"`
	Errored   uint64 `json:"errored"`
	Partial   uint64 `json:"partial"`
	Blackhole uint64 `json:"blackhole"`
}

// Proxy is an http.Handler; host it on an httptest.Server (or any
// listener) and point the router at that address.
type Proxy struct {
	cfg Config

	mu  sync.Mutex
	rng *rand.Rand

	upstream  atomic.Value // string
	blackhole atomic.Bool

	forwarded atomic.Uint64
	dropped   atomic.Uint64
	delayed   atomic.Uint64
	errored   atomic.Uint64
	partial   atomic.Uint64
	blackImpl atomic.Uint64

	client *http.Client
}

// New builds a proxy forwarding to upstream (base URL, no trailing
// slash needed).
func New(upstream string, cfg Config) *Proxy {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	p := &Proxy{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		client: &http.Client{},
	}
	p.upstream.Store(trimSlash(upstream))
	return p
}

// SetUpstream atomically swaps the forwarding target — resurrection:
// the proxy's address stays stable while the process behind it changes.
func (p *Proxy) SetUpstream(upstream string) { p.upstream.Store(trimSlash(upstream)) }

// Upstream returns the current forwarding target.
func (p *Proxy) Upstream() string { return p.upstream.Load().(string) }

// SetBlackhole toggles kill mode: every connection is reset immediately,
// exactly what a router sees from a dead host with the port closed.
func (p *Proxy) SetBlackhole(on bool) { p.blackhole.Store(on) }

// Counts returns a snapshot of the proxy's decision counters.
func (p *Proxy) Counts() Counts {
	return Counts{
		Forwarded: p.forwarded.Load(),
		Dropped:   p.dropped.Load(),
		Delayed:   p.delayed.Load(),
		Errored:   p.errored.Load(),
		Partial:   p.partial.Load(),
		Blackhole: p.blackImpl.Load(),
	}
}

// roll draws the injection decisions for one request under the lock, in
// arrival order — the deterministic heart of the proxy.
func (p *Proxy) roll() (drop, delay, errOut, partial bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	drop = p.rng.Float64() < p.cfg.DropProb
	delay = p.rng.Float64() < p.cfg.DelayProb
	errOut = p.rng.Float64() < p.cfg.ErrorProb
	partial = p.rng.Float64() < p.cfg.PartialProb
	return
}

func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if p.blackhole.Load() {
		p.blackImpl.Add(1)
		reset(w)
		return
	}
	drop, delay, errOut, partial := p.roll()
	if drop {
		p.dropped.Add(1)
		reset(w)
		return
	}
	if delay && p.cfg.Delay > 0 {
		p.delayed.Add(1)
		select {
		case <-time.After(p.cfg.Delay):
		case <-r.Context().Done():
			return
		}
	}
	if errOut {
		p.errored.Add(1)
		http.Error(w, "chaos: injected upstream error", http.StatusBadGateway)
		return
	}

	body, err := io.ReadAll(r.Body)
	if err != nil {
		reset(w)
		return
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method,
		p.Upstream()+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	req.Header = r.Header.Clone()
	res, err := p.client.Do(req)
	if err != nil {
		// Upstream genuinely unreachable (killed): surface as a reset,
		// not a tidy 502 — the router must handle both shapes anyway.
		reset(w)
		return
	}
	defer res.Body.Close()
	respBody, err := io.ReadAll(res.Body)
	if err != nil {
		reset(w)
		return
	}
	if partial && len(respBody) > 1 {
		// Declare the full length, send half, reset: the client gets an
		// unexpected EOF mid-body instead of a short-but-valid answer.
		p.partial.Add(1)
		hj, ok := w.(http.Hijacker)
		if !ok {
			reset(w)
			return
		}
		conn, bw, err := hj.Hijack()
		if err != nil {
			return
		}
		fmt.Fprintf(bw, "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n\r\n",
			res.StatusCode, http.StatusText(res.StatusCode),
			res.Header.Get("Content-Type"), len(respBody))
		bw.Write(respBody[:len(respBody)/2])
		bw.Flush()
		conn.Close()
		return
	}
	p.forwarded.Add(1)
	for k, vs := range res.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(res.StatusCode)
	w.Write(respBody)
}

// reset hijacks and closes the underlying connection so the client sees
// a TCP-level failure (connection reset / unexpected EOF), not an HTTP
// response. Falls back to a 502 when the writer cannot be hijacked.
func reset(w http.ResponseWriter) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		http.Error(w, "chaos: injected fault", http.StatusBadGateway)
		return
	}
	conn, _, err := hj.Hijack()
	if err != nil {
		return
	}
	conn.Close()
}

func trimSlash(s string) string {
	for len(s) > 0 && s[len(s)-1] == '/' {
		s = s[:len(s)-1]
	}
	return s
}
