package sketch

import (
	"fmt"
	"math"

	"wavelethist/internal/heap"
)

// GCS is the Group-Count Sketch of Cormode et al. [13]: a hierarchy of
// linear sketches over a degree-d search tree on the coefficient domain
// [0, u). Level 0 groups are single coefficients; level ℓ groups are
// aligned blocks of d^ℓ coefficients. Each level keeps depth hash rows of
// buckets×subbuckets cells: an item i in group g updates cell
// [row][h_row(g)][f_row(i)] with ξ_row(i)·v. Group L2 energy is estimated
// as the median over rows of the squared sum of the group's subbuckets;
// the top-k coefficients are recovered by descending the tree toward
// high-energy groups and point-estimating the surviving leaves.
//
// The paper runs "GCS-8" (degree 8) with 20KB·log2(u) of space per split
// sketch and merges the m split sketches at the reducer (linearity).
type GCS struct {
	u      int64
	degree int
	depth  int
	bux    int // buckets per row
	sub    int // subbuckets per bucket
	seed   uint64

	levels []gcsLevel
}

type gcsLevel struct {
	numGroups int64
	cells     []float64  // depth × bux × sub
	groupHash []polyHash // per row: group -> bucket
	itemHash  []polyHash // per row: item  -> subbucket
	signHash  []polyHash // per row: item  -> ±1
}

// NewGCS builds a GCS over coefficient domain [0, u) with the given search
// degree, hash depth, and per-row bucket/subbucket counts.
func NewGCS(u int64, degree, depth, buckets, subbuckets int, seed uint64) *GCS {
	if u < 1 {
		panic("sketch: GCS domain must be >= 1")
	}
	if degree < 2 {
		panic("sketch: GCS degree must be >= 2")
	}
	if depth < 1 || buckets < 1 || subbuckets < 1 {
		panic("sketch: GCS dimensions must be positive")
	}
	g := &GCS{u: u, degree: degree, depth: depth, bux: buckets, sub: subbuckets, seed: seed}
	// Levels from leaves (groups of size 1) to a root level with <= degree
	// groups.
	groups := u
	level := 0
	for {
		lv := gcsLevel{
			numGroups: groups,
			cells:     make([]float64, depth*buckets*subbuckets),
			groupHash: make([]polyHash, depth),
			itemHash:  make([]polyHash, depth),
			signHash:  make([]polyHash, depth),
		}
		for d := 0; d < depth; d++ {
			base := seed ^ uint64(level)*0x9e3779b97f4a7c15 ^ uint64(d)*0xc2b2ae3d27d4eb4f
			lv.groupHash[d] = newPolyHash(base ^ 0x01)
			lv.itemHash[d] = newPolyHash(base ^ 0x02)
			lv.signHash[d] = newPolyHash(base ^ 0x03)
		}
		g.levels = append(g.levels, lv)
		if groups <= int64(degree) {
			break
		}
		groups = (groups + int64(degree) - 1) / int64(degree)
		level++
	}
	return g
}

// NewGCSWithBudget sizes a GCS to approximately budgetBytes (the paper's
// 20KB·log2(u) recommendation) split evenly across levels, with the given
// degree and depth 3.
func NewGCSWithBudget(u int64, degree int, budgetBytes int64, seed uint64) *GCS {
	// Count levels the same way NewGCS will.
	numLevels := 1
	for groups := u; groups > int64(degree); groups = (groups + int64(degree) - 1) / int64(degree) {
		numLevels++
	}
	const depth = 3
	const sub = 8
	cellsPerLevel := budgetBytes / 8 / int64(numLevels) / depth
	buckets := int(cellsPerLevel / sub)
	if buckets < 1 {
		buckets = 1
	}
	return NewGCS(u, degree, depth, buckets, sub, seed)
}

// U returns the coefficient domain size.
func (g *GCS) U() int64 { return g.u }

// Levels returns the number of hierarchy levels.
func (g *GCS) Levels() int { return len(g.levels) }

// Bytes returns total sketch memory (8 bytes per cell).
func (g *GCS) Bytes() int64 {
	var n int64
	for _, lv := range g.levels {
		n += int64(len(lv.cells)) * 8
	}
	return n
}

// UpdateCost returns the number of cell updates one Update performs —
// the per-item update cost the paper measures (GCS-8's selling point).
func (g *GCS) UpdateCost() int {
	return len(g.levels) * g.depth
}

// Update adds v to coefficient i. The loop body is kept tight — locals
// hoisted, one bounds-checked slice per level — because this is the map
// side's dominant cost for Send-Sketch (levels × depth cell updates per
// distinct coefficient).
func (g *GCS) Update(i int64, v float64) {
	if i < 0 || i >= g.u {
		panic(fmt.Sprintf("sketch: GCS update %d out of domain %d", i, g.u))
	}
	item := uint64(i)
	gid := uint64(i)
	bux, sub, depth := g.bux, g.sub, g.depth
	deg := uint64(g.degree)
	for l := range g.levels {
		lv := &g.levels[l]
		cells := lv.cells
		for d := 0; d < depth; d++ {
			b := lv.groupHash[d].bucket(gid, bux)
			s := lv.itemHash[d].bucket(item, sub)
			cells[(d*bux+b)*sub+s] += lv.signHash[d].sign(item) * v
		}
		gid /= deg
	}
}

// GroupEnergy estimates the L2² energy of group gid at the given level.
func (g *GCS) GroupEnergy(level int, gid int64) float64 {
	lv := &g.levels[level]
	ests := make([]float64, g.depth)
	for d := 0; d < g.depth; d++ {
		b := lv.groupHash[d].bucket(uint64(gid), g.bux)
		var sum float64
		for s := 0; s < g.sub; s++ {
			c := lv.cells[(d*g.bux+b)*g.sub+s]
			sum += c * c
		}
		ests[d] = sum
	}
	return median(ests)
}

// Estimate point-estimates coefficient i (signed) from the leaf level.
func (g *GCS) Estimate(i int64) float64 {
	lv := &g.levels[0]
	item := uint64(i)
	ests := make([]float64, g.depth)
	for d := 0; d < g.depth; d++ {
		b := lv.groupHash[d].bucket(uint64(i), g.bux)
		s := lv.itemHash[d].bucket(item, g.sub)
		ests[d] = lv.signHash[d].sign(item) * lv.cells[(d*g.bux+b)*g.sub+s]
	}
	return median(ests)
}

// TopK recovers the k coefficients of (approximately) largest magnitude by
// hierarchical search: starting from the root groups, each level keeps the
// beam-width groups of largest estimated energy and expands their children;
// surviving leaves are point-estimated and the best k returned. beam <= 0
// uses max(4k, 32).
func (g *GCS) TopK(k, beam int) []CoefEstimate {
	if beam <= 0 {
		beam = 4 * k
		if beam < 32 {
			beam = 32
		}
	}
	top := len(g.levels) - 1
	// All root groups are candidates.
	cands := make([]int64, 0, g.levels[top].numGroups)
	for gid := int64(0); gid < g.levels[top].numGroups; gid++ {
		cands = append(cands, gid)
	}
	for level := top; level >= 1; level-- {
		// Keep the beam highest-energy groups at this level.
		h := heap.NewTopK(beam)
		for _, gid := range cands {
			h.Push(heap.Item{ID: gid, Score: g.GroupEnergy(level, gid)})
		}
		next := cands[:0]
		for _, it := range h.Sorted() {
			// Expand to children at level-1.
			base := it.ID * int64(g.degree)
			for c := 0; c < g.degree; c++ {
				child := base + int64(c)
				if child < g.levels[level-1].numGroups {
					next = append(next, child)
				}
			}
		}
		cands = next
	}
	// Leaves: point-estimate and keep top-k by magnitude.
	h := heap.NewTopK(k)
	vals := make(map[int64]float64, len(cands))
	for _, i := range cands {
		est := g.Estimate(i)
		vals[i] = est
		h.Push(heap.Item{ID: i, Score: math.Abs(est)})
	}
	items := h.Sorted()
	out := make([]CoefEstimate, len(items))
	for i, it := range items {
		out[i] = CoefEstimate{Index: it.ID, Value: vals[it.ID]}
	}
	return out
}

// CoefEstimate is a recovered coefficient.
type CoefEstimate struct {
	Index int64
	Value float64
}

// Merge adds other into g; sketches must share all parameters and seed.
func (g *GCS) Merge(other *GCS) error {
	if g.u != other.u || g.degree != other.degree || g.depth != other.depth ||
		g.bux != other.bux || g.sub != other.sub || g.seed != other.seed {
		return fmt.Errorf("sketch: incompatible GCS sketches")
	}
	for l := range g.levels {
		dst, src := g.levels[l].cells, other.levels[l].cells
		for i := range dst {
			dst[i] += src[i]
		}
	}
	return nil
}

// NonZeroEntries enumerates non-zero cells as (packed index, value) pairs;
// packed = level·2^40 + flatCell. This is Send-Sketch's wire format.
func (g *GCS) NonZeroEntries(emit func(idx int64, v float64)) {
	for l := range g.levels {
		base := int64(l) << 40
		for i, v := range g.levels[l].cells {
			if v != 0 {
				emit(base+int64(i), v)
			}
		}
	}
}

// AddEntry merges one shipped non-zero entry.
func (g *GCS) AddEntry(idx int64, v float64) {
	l := int(idx >> 40)
	cell := idx & ((1 << 40) - 1)
	g.levels[l].cells[cell] += v
}
