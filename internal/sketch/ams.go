package sketch

import (
	"fmt"
	"sort"
)

// AMS is the fast-AMS / CountSketch estimator: depth×width counters; item i
// with update v adds ξ_d(i)·v to cell [d][h_d(i)]. Point queries return the
// median over depths of ξ_d(i)·cell; the L2 norm is estimated as the median
// of per-row squared sums. It is linear, so sketches with equal seeds merge
// by addition.
type AMS struct {
	depth  int
	width  int
	seed   uint64
	cells  []float64 // depth × width
	hashes []polyHash
	signs  []polyHash
}

// NewAMS creates a depth×width sketch derived from seed.
func NewAMS(depth, width int, seed uint64) *AMS {
	if depth < 1 || width < 1 {
		panic("sketch: AMS dimensions must be positive")
	}
	s := &AMS{
		depth:  depth,
		width:  width,
		seed:   seed,
		cells:  make([]float64, depth*width),
		hashes: make([]polyHash, depth),
		signs:  make([]polyHash, depth),
	}
	for d := 0; d < depth; d++ {
		s.hashes[d] = newPolyHash(seed ^ uint64(d)*0xa076_1d64_78bd_642f)
		s.signs[d] = newPolyHash(seed ^ 0x5555_5555_5555_5555 ^ uint64(d)*0xe703_7ed1_a0b4_28db)
	}
	return s
}

// Depth returns the number of hash rows.
func (s *AMS) Depth() int { return s.depth }

// Width returns the number of buckets per row.
func (s *AMS) Width() int { return s.width }

// Update adds v to item i.
func (s *AMS) Update(i int64, v float64) {
	x := uint64(i)
	for d := 0; d < s.depth; d++ {
		b := s.hashes[d].bucket(x, s.width)
		s.cells[d*s.width+b] += s.signs[d].sign(x) * v
	}
}

// Estimate returns the point estimate of item i's aggregate value.
func (s *AMS) Estimate(i int64) float64 {
	x := uint64(i)
	ests := make([]float64, s.depth)
	for d := 0; d < s.depth; d++ {
		b := s.hashes[d].bucket(x, s.width)
		ests[d] = s.signs[d].sign(x) * s.cells[d*s.width+b]
	}
	return median(ests)
}

// L2Squared estimates ‖a‖²: the median over rows of Σ_b cell².
func (s *AMS) L2Squared() float64 {
	ests := make([]float64, s.depth)
	for d := 0; d < s.depth; d++ {
		var sum float64
		for b := 0; b < s.width; b++ {
			c := s.cells[d*s.width+b]
			sum += c * c
		}
		ests[d] = sum
	}
	return median(ests)
}

// Merge adds other into s. Both must share dimensions and seed.
func (s *AMS) Merge(other *AMS) error {
	if s.depth != other.depth || s.width != other.width || s.seed != other.seed {
		return fmt.Errorf("sketch: incompatible AMS sketches")
	}
	for i, v := range other.cells {
		s.cells[i] += v
	}
	return nil
}

// NonZeroEntries returns (index, value) for non-zero cells — what Send-
// Sketch ships over the network.
func (s *AMS) NonZeroEntries() (idx []int64, val []float64) {
	for i, v := range s.cells {
		if v != 0 {
			idx = append(idx, int64(i))
			val = append(val, v)
		}
	}
	return idx, val
}

// AddEntry adds v into flat cell index i (reducer-side merge from shipped
// non-zero entries).
func (s *AMS) AddEntry(i int64, v float64) {
	s.cells[i] += v
}

// Bytes returns the in-memory sketch size (8 bytes per cell).
func (s *AMS) Bytes() int64 { return int64(len(s.cells)) * 8 }

func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}
