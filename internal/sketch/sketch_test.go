package sketch

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"wavelethist/internal/wavelet"
	"wavelethist/internal/zipf"
)

func TestMulmod61(t *testing.T) {
	cases := []struct{ a, b uint64 }{
		{0, 0}, {1, 1}, {mersenne61 - 1, mersenne61 - 1},
		{1 << 60, 2}, {123456789, 987654321}, {mersenne61 - 1, 2},
	}
	for _, c := range cases {
		// Reference via big-ish arithmetic using float-free splitting:
		// (a*b) mod p computed with 32-bit limbs.
		want := refMulMod(c.a, c.b)
		if got := mulmod61(c.a, c.b); got != want {
			t.Errorf("mulmod61(%d,%d) = %d, want %d", c.a, c.b, got, want)
		}
	}
}

// refMulMod computes (a*b) mod 2^61-1 via 32-bit limb arithmetic.
func refMulMod(a, b uint64) uint64 {
	const p = mersenne61
	a %= p
	b %= p
	// Split b = bh·2^32 + bl.
	bh, bl := b>>32, b&0xFFFFFFFF
	// a·bh·2^32 mod p, then ·2^32 again via repeated doubling-free path:
	mulPow2 := func(x uint64, k uint) uint64 {
		for i := uint(0); i < k; i++ {
			x <<= 1
			if x >= p {
				x -= p
			}
		}
		return x
	}
	mulSmall := func(x, y uint64) uint64 { // y < 2^32
		var r uint64
		for y > 0 {
			if y&1 == 1 {
				r += x
				if r >= p {
					r -= p
				}
			}
			x <<= 1
			if x >= p {
				x -= p
			}
			y >>= 1
		}
		return r
	}
	hi := mulPow2(mulSmall(a, bh), 32)
	lo := mulSmall(a, bl)
	r := hi + lo
	if r >= p {
		r -= p
	}
	return r
}

func TestMulmodQuick(t *testing.T) {
	f := func(a, b uint64) bool {
		a %= mersenne61
		b %= mersenne61
		return mulmod61(a, b) == refMulMod(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPolyHashUniform(t *testing.T) {
	h := newPolyHash(7)
	const buckets = 16
	counts := make([]int, buckets)
	for x := uint64(0); x < 16000; x++ {
		counts[h.bucket(x, buckets)]++
	}
	for b, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("bucket %d count %d, want ~1000", b, c)
		}
	}
}

func TestPolyHashSignBalance(t *testing.T) {
	h := newPolyHash(13)
	var sum float64
	for x := uint64(0); x < 10000; x++ {
		sum += h.sign(x)
	}
	if math.Abs(sum) > 400 {
		t.Errorf("sign imbalance %v over 10000 draws", sum)
	}
}

func TestAMSPointEstimates(t *testing.T) {
	r := zipf.NewRNG(1)
	s := NewAMS(5, 512, 42)
	truth := make(map[int64]float64)
	// A few heavy items plus background noise.
	for i := int64(0); i < 10; i++ {
		truth[i] = 1000 + float64(i)*100
	}
	for i := int64(100); i < 400; i++ {
		truth[i] = math.Floor(r.Float64() * 10)
	}
	var l2 float64
	for i, v := range truth {
		s.Update(i, v)
		l2 += v * v
	}
	for i := int64(0); i < 10; i++ {
		est := s.Estimate(i)
		if math.Abs(est-truth[i]) > 0.15*math.Sqrt(l2) {
			t.Errorf("item %d estimate %v, truth %v", i, est, truth[i])
		}
	}
	if got := s.L2Squared(); math.Abs(got-l2) > 0.3*l2 {
		t.Errorf("L2² estimate %v, truth %v", got, l2)
	}
}

func TestAMSLinearity(t *testing.T) {
	a := NewAMS(3, 64, 9)
	b := NewAMS(3, 64, 9)
	whole := NewAMS(3, 64, 9)
	for i := int64(0); i < 50; i++ {
		a.Update(i, float64(i))
		whole.Update(i, float64(i))
	}
	for i := int64(25); i < 75; i++ {
		b.Update(i, 2*float64(i))
		whole.Update(i, 2*float64(i))
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	for i := range whole.cells {
		if a.cells[i] != whole.cells[i] {
			t.Fatalf("merged cell %d = %v, want %v", i, a.cells[i], whole.cells[i])
		}
	}
}

func TestAMSMergeIncompatible(t *testing.T) {
	a := NewAMS(3, 64, 1)
	b := NewAMS(3, 64, 2)
	if err := a.Merge(b); err == nil {
		t.Error("expected seed mismatch error")
	}
	c := NewAMS(4, 64, 1)
	if err := a.Merge(c); err == nil {
		t.Error("expected dimension mismatch error")
	}
}

func TestAMSNonZeroRoundTrip(t *testing.T) {
	a := NewAMS(3, 32, 5)
	for i := int64(0); i < 20; i++ {
		a.Update(i, float64(i+1))
	}
	b := NewAMS(3, 32, 5)
	idx, val := a.NonZeroEntries()
	if len(idx) == 0 {
		t.Fatal("no non-zero entries")
	}
	for i := range idx {
		b.AddEntry(idx[i], val[i])
	}
	for i := range a.cells {
		if a.cells[i] != b.cells[i] {
			t.Fatalf("cell %d differs after entry round trip", i)
		}
	}
}

func TestGCSLevels(t *testing.T) {
	g := NewGCS(1<<12, 8, 3, 64, 8, 1)
	// 4096 -> 512 -> 64 -> 8 groups: 4 levels.
	if g.Levels() != 4 {
		t.Errorf("levels = %d, want 4", g.Levels())
	}
	if g.UpdateCost() != 4*3 {
		t.Errorf("update cost = %d, want 12", g.UpdateCost())
	}
}

func TestGCSGroupEnergy(t *testing.T) {
	const u = 1 << 10
	g := NewGCS(u, 4, 5, 256, 8, 3)
	// Single heavy item: its ancestor groups carry all the energy.
	g.Update(777, 100)
	gid := int64(777)
	for level := 0; level < g.Levels(); level++ {
		e := g.GroupEnergy(level, gid)
		if math.Abs(e-10000) > 2000 {
			t.Errorf("level %d energy = %v, want ~10000", level, e)
		}
		gid /= 4
	}
	// A random unrelated group should carry ~0 energy.
	if e := g.GroupEnergy(0, 5); e > 2000 {
		t.Errorf("empty group energy = %v", e)
	}
}

func TestGCSTopKRecoversHeavyCoefficients(t *testing.T) {
	const u = 1 << 14
	g := NewGCS(u, 8, 5, 1024, 8, 11)
	heavy := map[int64]float64{
		3: 5000, 100: -4000, 9000: 3000, 12345: -2500, 42: 2000,
	}
	r := zipf.NewRNG(4)
	for i, v := range heavy {
		g.Update(i, v)
	}
	for i := 0; i < 2000; i++ {
		g.Update(r.Int63n(u), math.Floor(r.Float64()*4)-2)
	}
	got := g.TopK(5, 0)
	found := make(map[int64]float64)
	for _, c := range got {
		found[c.Index] = c.Value
	}
	for i, v := range heavy {
		est, ok := found[i]
		if !ok {
			t.Errorf("heavy coefficient %d not recovered (got %v)", i, got)
			continue
		}
		if math.Abs(est-v) > 0.2*math.Abs(v) {
			t.Errorf("coefficient %d estimate %v, truth %v", i, est, v)
		}
	}
}

func TestGCSLinearityAndEntryShipping(t *testing.T) {
	const u = 1 << 10
	mk := func() *GCS { return NewGCS(u, 4, 3, 128, 4, 99) }
	a, b, whole := mk(), mk(), mk()
	r := zipf.NewRNG(8)
	for i := 0; i < 300; i++ {
		x := r.Int63n(u)
		v := math.Floor(r.Float64()*20) - 10
		if i%2 == 0 {
			a.Update(x, v)
		} else {
			b.Update(x, v)
		}
		whole.Update(x, v)
	}
	// Merge via non-zero entry shipping (the MapReduce path).
	merged := mk()
	n := 0
	a.NonZeroEntries(func(idx int64, v float64) { merged.AddEntry(idx, v); n++ })
	b.NonZeroEntries(func(idx int64, v float64) { merged.AddEntry(idx, v); n++ })
	if n == 0 {
		t.Fatal("no entries shipped")
	}
	for l := range whole.levels {
		for i := range whole.levels[l].cells {
			if math.Abs(merged.levels[l].cells[i]-whole.levels[l].cells[i]) > 1e-9 {
				t.Fatalf("level %d cell %d differs", l, i)
			}
		}
	}
	// Direct Merge agrees too.
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	for l := range whole.levels {
		for i := range whole.levels[l].cells {
			if math.Abs(a.levels[l].cells[i]-whole.levels[l].cells[i]) > 1e-9 {
				t.Fatalf("Merge: level %d cell %d differs", l, i)
			}
		}
	}
}

func TestGCSMergeIncompatible(t *testing.T) {
	a := NewGCS(1<<10, 4, 3, 64, 4, 1)
	b := NewGCS(1<<10, 4, 3, 64, 4, 2)
	if err := a.Merge(b); err == nil {
		t.Error("expected incompatible-seed error")
	}
}

func TestGCSWithBudget(t *testing.T) {
	const budget = 400 << 10
	g := NewGCSWithBudget(1<<20, 8, budget, 7)
	if g.Bytes() > budget*5/4 || g.Bytes() < budget/2 {
		t.Errorf("sketch bytes = %d, want ≈ %d", g.Bytes(), budget)
	}
}

// End-to-end: sketch the wavelet coefficients of a skewed frequency vector
// (what Send-Sketch's mappers do) and verify recovered top-k overlaps the
// true top-k.
func TestGCSOnWaveletCoefficients(t *testing.T) {
	const u = 1 << 12
	r := zipf.NewRNG(21)
	z := zipf.NewZipf(u, 1.1)
	v := make([]float64, u)
	for i := 0; i < 200000; i++ {
		v[z.Sample(r)-1]++
	}
	w := wavelet.Transform(v)
	g := NewGCS(u, 8, 5, 2048, 8, 77)
	for i, val := range w {
		if val != 0 {
			g.Update(int64(i), val)
		}
	}
	const k = 10
	got := g.TopK(k, 0)
	trueTop := wavelet.SelectTopKDense(w, k)
	trueSet := make(map[int64]bool)
	for _, c := range trueTop {
		trueSet[c.Index] = true
	}
	hits := 0
	for _, c := range got {
		if trueSet[c.Index] {
			hits++
		}
	}
	if hits < k*6/10 {
		t.Errorf("only %d/%d true top-k recovered", hits, k)
	}
}

func TestMedian(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("median odd = %v", m)
	}
	if m := median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Errorf("median even = %v", m)
	}
}

func TestGCSSortStability(t *testing.T) {
	// TopK output must be magnitude-sorted.
	g := NewGCS(1<<8, 4, 3, 64, 4, 5)
	g.Update(10, 50)
	g.Update(20, -100)
	g.Update(30, 75)
	got := g.TopK(3, 0)
	mags := make([]float64, len(got))
	for i, c := range got {
		mags[i] = math.Abs(c.Value)
	}
	if !sort.IsSorted(sort.Reverse(sort.Float64Slice(mags))) {
		t.Errorf("TopK not magnitude-sorted: %v", got)
	}
}

// BenchmarkTopKRecovery contrasts GCS's hierarchical group search with the
// only recovery AMS supports — enumerating all u point estimates — which
// is why the paper (following Cormode et al. [13]) sketches wavelets with
// GCS rather than AMS.
func BenchmarkTopKRecovery(b *testing.B) {
	const u = 1 << 16
	const k = 30
	r := zipf.NewRNG(31)
	z := zipf.NewZipf(u, 1.1)
	freq := make(map[int64]float64)
	for i := 0; i < 50000; i++ {
		freq[z.Sample(r)-1]++
	}
	g := NewGCS(u, 8, 3, 2048, 8, 7)
	a := NewAMS(5, 16384, 7)
	for x, c := range freq {
		g.Update(x, c)
		a.Update(x, c)
	}
	b.Run("GCS_hierarchical", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = g.TopK(k, 0)
		}
	})
	b.Run("AMS_enumerate_u", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			h := make([]CoefEstimate, 0, k)
			var kth float64
			for x := int64(0); x < u; x++ {
				est := a.Estimate(x)
				if math.Abs(est) > kth {
					h = append(h, CoefEstimate{Index: x, Value: est})
					if len(h) > 4*k {
						sort.Slice(h, func(i, j int) bool {
							return math.Abs(h[i].Value) > math.Abs(h[j].Value)
						})
						h = h[:k]
						kth = math.Abs(h[k-1].Value)
					}
				}
			}
		}
	})
}

func BenchmarkGCSUpdate(b *testing.B) {
	g := NewGCS(1<<20, 8, 3, 1024, 8, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Update(int64(i)&((1<<20)-1), 1)
	}
}

func BenchmarkAMSUpdate(b *testing.B) {
	s := NewAMS(5, 1024, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Update(int64(i), 1)
	}
}
