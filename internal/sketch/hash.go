// Package sketch implements the linear sketches the paper's Send-Sketch
// baseline builds on: the AMS/CountSketch point-query sketch (Alon, Matias,
// Szegedy [4]; used by Gilbert et al. [20] for streaming wavelets) and the
// Group-Count Sketch of Cormode, Garofalakis, Sacharidis [13], the
// state-of-the-art wavelet sketch the paper selects. Both are linear, so
// per-split sketches merge at the reducer by addition.
package sketch

import "math/bits"

// Hashing: 4-wise independent polynomial hash over the Mersenne prime
// p = 2^61 - 1, the standard choice for CountSketch-style estimators
// (4-wise independence is required for the variance bounds on second
// moments).

const mersenne61 = (1 << 61) - 1

// mulmod61 returns a*b mod 2^61-1 for a, b < 2^61.
func mulmod61(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// a*b = hi·2^64 + lo, and 2^64 ≡ 8 (mod 2^61-1).
	r := hi*8 + (lo & mersenne61) + (lo >> 61)
	for r >= mersenne61 {
		r -= mersenne61
	}
	return r
}

// polyHash is a degree-3 polynomial hash (4-wise independent family).
type polyHash struct {
	a [4]uint64
}

// newPolyHash draws coefficients from rng-like seeds (SplitMix64 expansion
// of the seed keeps the package dependency-free).
func newPolyHash(seed uint64) polyHash {
	var h polyHash
	s := seed
	for i := range h.a {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		h.a[i] = z % mersenne61
	}
	// Leading coefficient non-zero keeps the family 4-wise independent.
	if h.a[3] == 0 {
		h.a[3] = 1
	}
	return h
}

// eval returns the hash of x in [0, 2^61-1).
func (h polyHash) eval(x uint64) uint64 {
	x %= mersenne61
	r := h.a[3]
	r = mulmod61(r, x) + h.a[2]
	if r >= mersenne61 {
		r -= mersenne61
	}
	r = mulmod61(r, x) + h.a[1]
	if r >= mersenne61 {
		r -= mersenne61
	}
	r = mulmod61(r, x) + h.a[0]
	if r >= mersenne61 {
		r -= mersenne61
	}
	return r
}

// bucket maps x into [0, n).
func (h polyHash) bucket(x uint64, n int) int {
	return int(h.eval(x) % uint64(n))
}

// sign maps x to ±1.
func (h polyHash) sign(x uint64) float64 {
	if h.eval(x)&1 == 0 {
		return 1
	}
	return -1
}
