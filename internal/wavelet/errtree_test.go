package wavelet

import (
	"math"
	"testing"

	"wavelethist/internal/zipf"
)

// randomRep builds a randomized representation: indices drawn from [0, u)
// (with deliberate duplicates), values signed, and a sprinkling of exact
// zeros — the shapes the equivalence properties must hold for.
func randomRep(r *zipf.RNG, u int64, k int) *Representation {
	coefs := make([]Coef, 0, k)
	for i := 0; i < k; i++ {
		idx := r.Int63n(u)
		if i > 0 && r.Bernoulli(0.15) {
			idx = coefs[r.Int63n(int64(len(coefs)))].Index // duplicate
		}
		v := (r.Float64() - 0.5) * 1000
		if r.Bernoulli(0.05) {
			v = 0
		}
		coefs = append(coefs, Coef{Index: idx, Value: v})
	}
	return NewRepresentation(u, coefs)
}

// bitEq demands bit-level equality, the property the error-tree index
// guarantees against the linear scan.
func bitEq(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

func TestErrTreePointEquivalence(t *testing.T) {
	r := zipf.NewRNG(7)
	for _, u := range []int64{1, 2, 4, 64, 1 << 12, 1 << 20} {
		for _, k := range []int{0, 1, 7, 64, 300} {
			rep := randomRep(r, u, k)
			xs := []int64{-1, 0, 1, u - 1, u, u + 17, math.MinInt64, math.MaxInt64}
			for i := 0; i < 200; i++ {
				xs = append(xs, r.Int63n(u))
			}
			for _, x := range xs {
				got, want := rep.PointEstimate(x), rep.ScanPointEstimate(x)
				if !bitEq(got, want) {
					t.Fatalf("u=%d k=%d PointEstimate(%d) = %x, scan %x", u, k, x,
						math.Float64bits(got), math.Float64bits(want))
				}
			}
		}
	}
}

func TestErrTreeRangeEquivalence(t *testing.T) {
	r := zipf.NewRNG(8)
	for _, u := range []int64{1, 2, 64, 1 << 12, 1 << 20} {
		rep := randomRep(r, u, 256)
		type bounds struct{ lo, hi int64 }
		cases := []bounds{
			{0, u - 1}, // full domain
			{0, 0}, {u - 1, u - 1},
			{5, 2},         // empty (lo > hi)
			{-100, u + 50}, // clamps both sides
			{-10, -5},      // entirely below the domain
			{u, u + 100},   // entirely above the domain
			{math.MinInt64, math.MaxInt64},
		}
		for i := 0; i < 300; i++ {
			lo := r.Int63n(3*u) - u
			hi := r.Int63n(3*u) - u
			cases = append(cases, bounds{lo, hi})
		}
		for _, c := range cases {
			got, want := rep.RangeSum(c.lo, c.hi), rep.ScanRangeSum(c.lo, c.hi)
			if !bitEq(got, want) {
				t.Fatalf("u=%d RangeSum(%d, %d) = %x, scan %x", u, c.lo, c.hi,
					math.Float64bits(got), math.Float64bits(want))
			}
		}
		// The clamp contract itself: empty intersections are exactly 0.
		for _, c := range []bounds{{5, 2}, {-10, -5}, {u, u + 100}} {
			if got := rep.RangeSum(c.lo, c.hi); got != 0 {
				t.Fatalf("u=%d RangeSum(%d, %d) = %v, want 0 for empty range", u, c.lo, c.hi, got)
			}
		}
	}
}

func TestErrTree2DPointEquivalence(t *testing.T) {
	r := zipf.NewRNG(9)
	for _, u := range []int64{1, 2, 16, 256, 1 << 10} {
		for _, k := range []int{0, 1, 40, 300} {
			coefs := make([]Coef, 0, k)
			for i := 0; i < k; i++ {
				idx := r.Int63n(u * u)
				if i > 0 && r.Bernoulli(0.15) {
					idx = coefs[r.Int63n(int64(len(coefs)))].Index
				}
				v := (r.Float64() - 0.5) * 1000
				if r.Bernoulli(0.05) {
					v = 0
				}
				coefs = append(coefs, Coef{Index: idx, Value: v})
			}
			rep := NewRepresentation2D(u, coefs)
			type cell struct{ x, y int64 }
			cells := []cell{{-1, 0}, {0, -1}, {u, 0}, {0, u}, {0, 0}, {u - 1, u - 1}}
			for i := 0; i < 150; i++ {
				cells = append(cells, cell{r.Int63n(u), r.Int63n(u)})
			}
			for _, c := range cells {
				got, want := rep.PointEstimate(c.x, c.y), rep.ScanPointEstimate(c.x, c.y)
				if !bitEq(got, want) {
					t.Fatalf("u=%d k=%d PointEstimate(%d, %d) = %x, scan %x", u, k, c.x, c.y,
						math.Float64bits(got), math.Float64bits(want))
				}
			}
		}
	}
}

// TestErrTreeQueriesAllocationFree pins the steady-state serving property:
// indexed point and range queries do not allocate.
func TestErrTreeQueriesAllocationFree(t *testing.T) {
	r := zipf.NewRNG(10)
	const u = 1 << 20
	rep := randomRep(r, u, 2048)
	var sink float64
	if a := testing.AllocsPerRun(200, func() { sink += rep.PointEstimate(12345) }); a != 0 {
		t.Errorf("PointEstimate allocates %v per op", a)
	}
	if a := testing.AllocsPerRun(200, func() { sink += rep.RangeSum(1000, 900000) }); a != 0 {
		t.Errorf("RangeSum allocates %v per op", a)
	}
	coefs2 := make([]Coef, 512)
	for i := range coefs2 {
		coefs2[i] = Coef{Index: r.Int63n(256 * 256), Value: r.Float64()}
	}
	rep2 := NewRepresentation2D(256, coefs2)
	if a := testing.AllocsPerRun(200, func() { sink += rep2.PointEstimate(17, 200) }); a != 0 {
		t.Errorf("2D PointEstimate allocates %v per op", a)
	}
	_ = sink
}

// FuzzRangeSumBounds fuzzes RangeSum's bound clamping: arbitrary (lo, hi)
// — including wildly out-of-domain and inverted bounds — must agree
// bit-for-bit with the linear scan, equal the explicitly clamped query,
// and estimate exactly 0 on empty intersections.
func FuzzRangeSumBounds(f *testing.F) {
	const u = 1 << 16
	r := zipf.NewRNG(11)
	rep := randomRep(r, u, 512)
	f.Add(int64(0), int64(u-1))
	f.Add(int64(5), int64(2))
	f.Add(int64(-1000), int64(u+1000))
	f.Add(int64(math.MinInt64), int64(math.MaxInt64))
	f.Add(int64(u), int64(u))
	f.Fuzz(func(t *testing.T, lo, hi int64) {
		got := rep.RangeSum(lo, hi)
		if want := rep.ScanRangeSum(lo, hi); !bitEq(got, want) {
			t.Fatalf("RangeSum(%d, %d) = %x, scan %x", lo, hi,
				math.Float64bits(got), math.Float64bits(want))
		}
		clo, chi := lo, hi
		if clo < 0 {
			clo = 0
		}
		if chi >= u {
			chi = u - 1
		}
		if clo > chi {
			if got != 0 {
				t.Fatalf("empty range [%d, %d] estimated %v, want 0", lo, hi, got)
			}
			return
		}
		if want := rep.RangeSum(clo, chi); !bitEq(got, want) {
			t.Fatalf("RangeSum(%d, %d) != clamped RangeSum(%d, %d)", lo, hi, clo, chi)
		}
	})
}

func benchRep(b *testing.B, u int64, k int) *Representation {
	b.Helper()
	r := zipf.NewRNG(12)
	coefs := make([]Coef, k)
	seen := map[int64]bool{}
	for i := range coefs {
		idx := r.Int63n(u)
		for seen[idx] {
			idx = r.Int63n(u)
		}
		seen[idx] = true
		coefs[i] = Coef{Index: idx, Value: (r.Float64() - 0.5) * 1000}
	}
	return NewRepresentation(u, coefs)
}

func BenchmarkQueryPoint(b *testing.B) {
	rep := benchRep(b, 1<<20, 2048)
	b.Run("scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = rep.ScanPointEstimate(int64(i) & (1<<20 - 1))
		}
	})
	b.Run("errtree", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = rep.PointEstimate(int64(i) & (1<<20 - 1))
		}
	})
}

func BenchmarkQueryRange(b *testing.B) {
	rep := benchRep(b, 1<<20, 2048)
	b.Run("scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			lo := int64(i) & (1<<19 - 1)
			_ = rep.ScanRangeSum(lo, lo+1<<18)
		}
	})
	b.Run("errtree", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			lo := int64(i) & (1<<19 - 1)
			_ = rep.RangeSum(lo, lo+1<<18)
		}
	})
}
