package wavelet

import (
	"fmt"
	"math"
)

// d-dimensional Haar transforms (the paper: the 2D row/column process
// "can be similarly extended to d dimensions"). Signals are dense
// row-major arrays over [0,u)^d, or sparse maps over packed keys
// Σ x_i · u^(d-1-i). Coefficient indices pack the same way: the
// coefficient at multi-index (i_1, ..., i_d) is <v, ψ_{i_1} ⊗ ... ⊗ ψ_{i_d}>.

// KeyND packs coordinates over [0,u)^d row-major.
func KeyND(coords []int64, u int64) int64 {
	var key int64
	for _, c := range coords {
		if c < 0 || c >= u {
			panic("wavelet: ND coordinate out of domain")
		}
		key = key*u + c
	}
	return key
}

// SplitKeyND unpacks a packed ND key into d coordinates.
func SplitKeyND(key, u int64, d int) []int64 {
	coords := make([]int64, d)
	for i := d - 1; i >= 0; i-- {
		coords[i] = key % u
		key /= u
	}
	return coords
}

// TransformND computes the full tensor Haar transform of a dense d-dim
// signal (len(v) must equal u^d): the 1D transform applied along every
// axis in turn, exactly generalizing the paper's 2D rows-then-columns.
func TransformND(v []float64, u int64, d int) []float64 {
	checkND(int64(len(v)), u, d)
	out := make([]float64, len(v))
	copy(out, v)
	transformAxes(out, u, d, Transform)
	return out
}

// InverseND inverts TransformND.
func InverseND(w []float64, u int64, d int) []float64 {
	checkND(int64(len(w)), u, d)
	out := make([]float64, len(w))
	copy(out, w)
	transformAxes(out, u, d, Inverse)
	return out
}

func checkND(n, u int64, d int) {
	if !IsPowerOfTwo(u) {
		panic("wavelet: ND domain side must be a power of two")
	}
	if d < 1 {
		panic("wavelet: dimension must be >= 1")
	}
	want := int64(1)
	for i := 0; i < d; i++ {
		want *= u
	}
	if n != want {
		panic(fmt.Sprintf("wavelet: signal length %d != u^d = %d", n, want))
	}
}

// transformAxes applies a 1D transform along each axis of the row-major
// d-dim array in place.
func transformAxes(a []float64, u int64, d int, tf func([]float64) []float64) {
	n := int64(len(a))
	line := make([]float64, u)
	// Axis i varies with stride u^(d-1-i).
	stride := n / u // axis 0 first
	for axis := 0; axis < d; axis++ {
		// Enumerate all lines along this axis: indices where the axis
		// coordinate is 0.
		for base := int64(0); base < n; base++ {
			// base is a line start iff its axis coordinate is zero:
			// (base / stride) % u == 0.
			if (base/stride)%u != 0 {
				continue
			}
			for x := int64(0); x < u; x++ {
				line[x] = a[base+x*stride]
			}
			t := tf(line)
			for x := int64(0); x < u; x++ {
				a[base+x*stride] = t[x]
			}
		}
		stride /= u
	}
}

// SparseTransformND computes the non-zero tensor coefficients of a sparse
// d-dim frequency map (packed keys). Each key contributes to
// (log2(u)+1)^d coefficients — its tensor path.
func SparseTransformND(freq map[int64]float64, u int64, d int) map[int64]float64 {
	if !IsPowerOfTwo(u) {
		panic("wavelet: ND domain side must be a power of two")
	}
	logu := Log2(u)
	type pathEntry struct {
		idx int64
		val float64
	}
	// Per-axis ψ paths.
	axisPath := func(x int64) []pathEntry {
		path := make([]pathEntry, 0, logu+1)
		path = append(path, pathEntry{0, 1 / math.Sqrt(float64(u))})
		for j := uint(0); j < logu; j++ {
			rangeLen := u >> j
			k := x / rangeLen
			val := 1 / math.Sqrt(float64(rangeLen))
			if x-k*rangeLen < rangeLen/2 {
				val = -val
			}
			path = append(path, pathEntry{int64(1)<<j + k, val})
		}
		return path
	}
	w := make(map[int64]float64)
	for key, c := range freq {
		if c == 0 {
			continue
		}
		coords := SplitKeyND(key, u, d)
		paths := make([][]pathEntry, d)
		for i, x := range coords {
			paths[i] = axisPath(x)
		}
		// Cartesian product of the d paths.
		var rec func(axis int, idx int64, val float64)
		rec = func(axis int, idx int64, val float64) {
			if axis == d {
				nv := w[idx] + val
				if nv == 0 {
					delete(w, idx)
				} else {
					w[idx] = nv
				}
				return
			}
			for _, pe := range paths[axis] {
				rec(axis+1, idx*u+pe.idx, val*pe.val)
			}
		}
		rec(0, 0, c)
	}
	return w
}

// BasisNDAt evaluates the tensor basis function of a packed coefficient
// index at packed point coordinates.
func BasisNDAt(packedCoef int64, coords []int64, u int64) float64 {
	d := len(coords)
	idx := SplitKeyND(packedCoef, u, d)
	out := 1.0
	for i, x := range coords {
		out *= BasisAt(idx[i], x, u)
		if out == 0 {
			return 0
		}
	}
	return out
}
