package wavelet

import (
	"math"
	"sort"
	"sync"
)

// SparseTransform computes all non-zero Haar coefficients of the sparse
// frequency vector freq (key -> count) over domain [0, u). It runs in
// O(|v| log u) time — the bound the paper's mappers need instead of the
// O(u) dense transform, because a 256 MB split has far fewer distinct keys
// than u = 2^29.
//
// Each key contributes to exactly log2(u)+1 coefficients (its root-to-leaf
// path), so the output has at most |v|·(log2(u)+1) entries.
func SparseTransform(freq map[int64]float64, u int64) map[int64]float64 {
	logu := Log2(u)
	w := make(map[int64]float64, len(freq)*int(logu+1)/2)
	sqrtU := math.Sqrt(float64(u))
	for x, c := range freq {
		if x < 0 || x >= u {
			panic("wavelet: key out of domain")
		}
		if c == 0 {
			continue
		}
		w[0] += c / sqrtU
		// Walk levels top-down; at level j the covering detail
		// coefficient is 2^j + x/(u/2^j), with sign by half.
		for j := uint(0); j < logu; j++ {
			rangeLen := u >> j
			k := x / rangeLen
			idx := int64(1)<<j + k
			contrib := c / math.Sqrt(float64(rangeLen))
			if x-k*rangeLen < rangeLen/2 {
				contrib = -contrib
			}
			nv := w[idx] + contrib
			if nv == 0 {
				delete(w, idx)
			} else {
				w[idx] = nv
			}
		}
	}
	if w[0] == 0 {
		delete(w, 0)
	}
	return w
}

// StreamingTransformer computes non-zero Haar coefficients from keys fed in
// strictly increasing order, using O(log u) memory — the Gilbert et al.
// algorithm the paper cites for mappers ([20], Appendix A). Coefficients
// are emitted exactly once, as soon as their dyadic range closes.
type StreamingTransformer struct {
	u      int64
	logu   uint
	emit   func(Coef)
	path   []float64 // partial detail sums per level, for the current path
	curKey int64     // last key fed, -1 initially
	avg    float64   // partial overall-average coefficient
	any    bool
}

// NewStreamingTransformer creates a transformer over [0, u) that calls emit
// for every non-zero coefficient.
func NewStreamingTransformer(u int64, emit func(Coef)) *StreamingTransformer {
	logu := Log2(u)
	return &StreamingTransformer{
		u:      u,
		logu:   logu,
		emit:   emit,
		path:   make([]float64, logu),
		curKey: -1,
	}
}

// Feed adds count occurrences of key x. Keys must arrive in strictly
// increasing order.
func (t *StreamingTransformer) Feed(x int64, count float64) {
	if x < 0 || x >= t.u {
		panic("wavelet: key out of domain")
	}
	if x <= t.curKey {
		panic("wavelet: streaming keys must be strictly increasing")
	}
	if count == 0 {
		return
	}
	if t.any {
		t.flushClosed(t.curKey, x)
	}
	t.curKey = x
	t.any = true
	t.avg += count / math.Sqrt(float64(t.u))
	for j := uint(0); j < t.logu; j++ {
		rangeLen := t.u >> j
		k := x / rangeLen
		contrib := count / math.Sqrt(float64(rangeLen))
		if x-k*rangeLen < rangeLen/2 {
			contrib = -contrib
		}
		t.path[j] += contrib
	}
}

// flushClosed emits every level's coefficient whose dyadic range no longer
// contains the next key.
func (t *StreamingTransformer) flushClosed(prev, next int64) {
	for j := uint(0); j < t.logu; j++ {
		rangeLen := t.u >> j
		if prev/rangeLen != next/rangeLen {
			// Range at level j closed.
			if t.path[j] != 0 {
				idx := int64(1)<<j + prev/rangeLen
				t.emit(Coef{Index: idx, Value: t.path[j]})
			}
			t.path[j] = 0
		}
	}
}

// Close flushes all pending coefficients (including the overall average).
// The transformer must not be used afterwards.
func (t *StreamingTransformer) Close() {
	if !t.any {
		return
	}
	for j := uint(0); j < t.logu; j++ {
		if t.path[j] != 0 {
			rangeLen := t.u >> j
			idx := int64(1)<<j + t.curKey/rangeLen
			t.emit(Coef{Index: idx, Value: t.path[j]})
			t.path[j] = 0
		}
	}
	if t.avg != 0 {
		t.emit(Coef{Index: 0, Value: t.avg})
	}
	t.any = false
}

// SparseTransformSorted runs the streaming transformer over a sorted list
// of (key, count) pairs and collects the result. It is the path the
// simulated mappers use after aggregating their split's frequency map.
func SparseTransformSorted(keys []int64, counts []float64, u int64) []Coef {
	var out []Coef
	t := NewStreamingTransformer(u, func(c Coef) { out = append(out, c) })
	for i, x := range keys {
		t.Feed(x, counts[i])
	}
	t.Close()
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// SortFreq converts a frequency map into parallel sorted slices, the form
// SparseTransformSorted consumes.
func SortFreq(freq map[int64]float64) (keys []int64, counts []float64) {
	keys = make([]int64, 0, len(freq))
	for x := range freq {
		keys = append(keys, x)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	counts = make([]float64, len(keys))
	for i, x := range keys {
		counts[i] = freq[x]
	}
	return keys, counts
}

// FreqBuffers is a reusable (keys, counts) scratch pair for transforms
// that sort a frequency map, convert it, and discard the sorted form.
// Acquire with GetFreqBuffers, return with PutFreqBuffers; the slices
// returned by Load are only valid until the buffers are put back.
type FreqBuffers struct {
	Keys   []int64
	Counts []float64
}

var freqPool = sync.Pool{New: func() any { return new(FreqBuffers) }}

// GetFreqBuffers fetches a pooled scratch pair.
func GetFreqBuffers() *FreqBuffers { return freqPool.Get().(*FreqBuffers) }

// PutFreqBuffers returns a scratch pair to the pool.
func PutFreqBuffers(b *FreqBuffers) {
	b.Keys = b.Keys[:0]
	b.Counts = b.Counts[:0]
	freqPool.Put(b)
}

// Load fills the buffers with freq's sorted (key, count) pairs — the same
// output as SortFreq, without allocating when the buffers have capacity.
func (b *FreqBuffers) Load(freq map[int64]float64) (keys []int64, counts []float64) {
	b.Keys = b.Keys[:0]
	for x := range freq {
		b.Keys = append(b.Keys, x)
	}
	sort.Slice(b.Keys, func(i, j int) bool { return b.Keys[i] < b.Keys[j] })
	if cap(b.Counts) < len(b.Keys) {
		b.Counts = make([]float64, len(b.Keys))
	}
	b.Counts = b.Counts[:len(b.Keys)]
	for i, x := range b.Keys {
		b.Counts[i] = freq[x]
	}
	return b.Keys, b.Counts
}
