package wavelet

import (
	"math"
	"sort"

	"wavelethist/internal/heap"
)

// SelectTopK returns the k coefficients of largest magnitude, sorted by
// decreasing |Value| with ties broken by ascending Index (deterministic).
// This is the paper's "best k-term wavelet representation" selection,
// done with a size-k priority queue in one pass (Section 2.1).
func SelectTopK(coefs []Coef, k int) []Coef {
	h := heap.NewTopK(k)
	vals := make(map[int64]float64, len(coefs))
	for _, c := range coefs {
		vals[c.Index] = c.Value
		h.Push(heap.Item{ID: c.Index, Score: math.Abs(c.Value)})
	}
	items := h.Sorted()
	out := make([]Coef, len(items))
	for i, it := range items {
		out[i] = Coef{Index: it.ID, Value: vals[it.ID]}
	}
	return out
}

// SelectTopKMap is SelectTopK over a coefficient map.
func SelectTopKMap(w map[int64]float64, k int) []Coef {
	coefs := make([]Coef, 0, len(w))
	for i, v := range w {
		coefs = append(coefs, Coef{Index: i, Value: v})
	}
	return SelectTopK(coefs, k)
}

// SelectTopKDense is SelectTopK over a dense coefficient vector.
func SelectTopKDense(w []float64, k int) []Coef {
	h := heap.NewTopK(k)
	for i, v := range w {
		if v != 0 {
			h.Push(heap.Item{ID: int64(i), Score: math.Abs(v)})
		}
	}
	items := h.Sorted()
	out := make([]Coef, len(items))
	for i, it := range items {
		out[i] = Coef{Index: it.ID, Value: w[it.ID]}
	}
	return out
}

// SortCoefsByMagnitude sorts coefficients by decreasing |Value|, ties by
// ascending Index.
func SortCoefsByMagnitude(coefs []Coef) {
	sort.Slice(coefs, func(i, j int) bool {
		ai, aj := math.Abs(coefs[i].Value), math.Abs(coefs[j].Value)
		if ai != aj {
			return ai > aj
		}
		return coefs[i].Index < coefs[j].Index
	})
}

// Representation is a k-term wavelet representation: a small set of
// retained coefficients over domain [0, u), plus an immutable error-tree
// index (built once, shared by snapshot copies) that answers point and
// range queries in O(log u) coefficient touches instead of O(k).
type Representation struct {
	U     int64
	Coefs []Coef

	// tree is the error-tree index over Coefs. It stores positions, not
	// values, so snapshots that patch values in place (the incremental
	// Maintainer) share one tree. Nil only for hand-rolled struct
	// literals, which fall back to the linear scan.
	tree *errTree
}

// NewRepresentation validates and wraps a coefficient set, building its
// error-tree query index.
func NewRepresentation(u int64, coefs []Coef) *Representation {
	if !IsPowerOfTwo(u) {
		panic("wavelet: representation domain must be a power of two")
	}
	cs := make([]Coef, len(coefs))
	copy(cs, coefs)
	SortCoefsByMagnitude(cs)
	return &Representation{U: u, Coefs: cs, tree: newErrTree(u, cs)}
}

// K returns the number of retained coefficients.
func (r *Representation) K() int { return len(r.Coefs) }

// Reconstruct materializes the dense estimated frequency vector
// v̂(x) = Σ w_i ψ_i(x). O(u + Σ support) ≤ O(k·u) time.
func (r *Representation) Reconstruct() []float64 {
	v := make([]float64, r.U)
	for _, c := range r.Coefs {
		addBasis(v, c, r.U)
	}
	return v
}

// addBasis adds c.Value·ψ_{c.Index} into v.
func addBasis(v []float64, c Coef, u int64) {
	if c.Index == 0 {
		val := c.Value / math.Sqrt(float64(u))
		for x := range v {
			v[x] += val
		}
		return
	}
	j := coefLevel(c.Index)
	k := c.Index - int64(1)<<j
	rangeLen := u >> j
	lo := k * rangeLen
	val := c.Value / math.Sqrt(float64(rangeLen))
	half := lo + rangeLen/2
	for x := lo; x < half; x++ {
		v[x] -= val
	}
	for x := half; x < lo+rangeLen; x++ {
		v[x] += val
	}
}

// PointEstimate returns v̂(x), touching only the ≤ log2(u)+1 error-tree
// ancestors of x — O(log u) coefficient visits via the index, bit-identical
// to ScanPointEstimate. Keys outside [0, u) estimate 0.
func (r *Representation) PointEstimate(x int64) float64 {
	if r.tree == nil {
		return r.ScanPointEstimate(x)
	}
	return r.tree.pointEstimate(r.Coefs, x)
}

// ScanPointEstimate is the O(k) linear-scan reference evaluation of v̂(x),
// retained for equivalence tests and benchmarks against the indexed path.
func (r *Representation) ScanPointEstimate(x int64) float64 {
	var s float64
	for _, c := range r.Coefs {
		s += c.Value * BasisAt(c.Index, x, r.U)
	}
	return s
}

// RangeSum estimates Σ_{x=lo..hi} v(x) (inclusive bounds), touching only
// the error-tree ancestors of the two boundaries — interior ψ terms cancel
// exactly — so O(log u) coefficient visits, bit-identical to ScanRangeSum.
//
// Bound contract (shared by the serving layer): lo and hi are clamped to
// [0, u-1]; a range whose intersection with the domain is empty (lo > hi,
// or the whole range off-domain) estimates 0. Never an error.
func (r *Representation) RangeSum(lo, hi int64) float64 {
	if r.tree == nil {
		return r.ScanRangeSum(lo, hi)
	}
	return r.tree.rangeSum(r.Coefs, lo, hi)
}

// ScanRangeSum is the O(k) linear-scan reference evaluation of RangeSum
// (Matias et al. [26]'s selectivity estimate), with the same bound
// clamping.
func (r *Representation) ScanRangeSum(lo, hi int64) float64 {
	if lo < 0 {
		lo = 0
	}
	if hi >= r.U {
		hi = r.U - 1
	}
	if lo > hi {
		return 0
	}
	var s float64
	for _, c := range r.Coefs {
		s += c.Value * basisRangeSum(c.Index, lo, hi, r.U)
	}
	return s
}

// basisRangeSum returns Σ_{x=lo..hi} ψ_i(x) in O(1).
func basisRangeSum(i, lo, hi, u int64) float64 {
	if i == 0 {
		return float64(hi-lo+1) / math.Sqrt(float64(u))
	}
	j := coefLevel(i)
	k := i - int64(1)<<j
	rangeLen := u >> j
	start := k * rangeLen
	mid := start + rangeLen/2
	end := start + rangeLen // exclusive
	// Overlap with negative half [start, mid) and positive half [mid, end).
	neg := overlap(lo, hi+1, start, mid)
	pos := overlap(lo, hi+1, mid, end)
	if neg == 0 && pos == 0 {
		return 0
	}
	return float64(pos-neg) / math.Sqrt(float64(rangeLen))
}

// overlap returns |[aLo,aHi) ∩ [bLo,bHi)|.
func overlap(aLo, aHi, bLo, bHi int64) int64 {
	lo, hi := aLo, aHi
	if bLo > lo {
		lo = bLo
	}
	if bHi < hi {
		hi = bHi
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// SSEAgainst computes Σ_x (v(x) - v̂(x))² against a dense truth vector
// without materializing v̂ when k is small: it reconstructs once (O(k·u))
// — still the cheapest exact approach for the experiment domains used here.
func (r *Representation) SSEAgainst(v []float64) float64 {
	if int64(len(v)) != r.U {
		panic("wavelet: SSEAgainst domain mismatch")
	}
	vhat := r.Reconstruct()
	return SSE(v, vhat)
}

// IdealSSE returns the minimum possible SSE of any k-term representation of
// the signal with coefficient vector w: energy minus the energy of the k
// largest-magnitude coefficients (Parseval).
func IdealSSE(w []float64, k int) float64 {
	top := SelectTopKDense(w, k)
	var kept float64
	for _, c := range top {
		kept += c.Value * c.Value
	}
	return Energy(w) - kept
}
