package wavelet

import (
	"math"
	"testing"
	"testing/quick"

	"wavelethist/internal/zipf"
)

const eps = 1e-9

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

// The paper's Figure 1 example: v = (3,5,10,8,2,2,10,14).
// Tree coefficients: total average 6.75 and details (0.25; -1.5, 2.5;
// 1, -1, 0, 2), each scaled by sqrt(u/2^l).
func TestTransformPaperExample(t *testing.T) {
	v := []float64{3, 5, 10, 8, 2, 2, 10, 14}
	w := Transform(v)
	u := 8.0
	// Tree (unnormalized) coefficients: total average 6.75 (the figure's
	// "6.8"), then 0.25 ("0.3"), then {2.5, 5}, then {1, -1, 0, 2}; the
	// energy-preserving coefficient at tree level l is the tree value
	// times sqrt(u/2^l).
	want := []float64{
		6.75 * math.Sqrt(u),  // w1 = sum/sqrt(u) = 54/sqrt(8)
		0.25 * math.Sqrt(u),  // w2
		2.5 * math.Sqrt(u/2), // w3
		5 * math.Sqrt(u/2),   // w4
		1 * math.Sqrt(u/4),   // w5
		-1 * math.Sqrt(u/4),  // w6
		0 * math.Sqrt(u/4),   // w7
		2 * math.Sqrt(u/4),   // w8
	}
	for i := range want {
		if !almostEq(w[i], want[i], eps) {
			t.Errorf("w[%d] = %v, want %v", i, w[i], want[i])
		}
	}
}

// Figure 2 gives the coefficients directly as basis dot products.
func TestTransformMatchesBasisDefinition(t *testing.T) {
	r := zipf.NewRNG(1)
	for _, u := range []int64{1, 2, 4, 8, 16, 64} {
		v := make([]float64, u)
		for i := range v {
			v[i] = math.Floor(r.Float64()*20) - 5
		}
		w := Transform(v)
		for i := int64(0); i < u; i++ {
			var dot float64
			for x := int64(0); x < u; x++ {
				dot += v[x] * BasisAt(i, x, u)
			}
			if !almostEq(w[i], dot, 1e-9) {
				t.Errorf("u=%d w[%d] = %v, want dot %v", u, i, w[i], dot)
			}
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	r := zipf.NewRNG(2)
	for _, u := range []int64{1, 2, 8, 32, 256, 1024} {
		v := make([]float64, u)
		for i := range v {
			v[i] = r.Float64() * 100
		}
		got := Inverse(Transform(v))
		for i := range v {
			if !almostEq(v[i], got[i], 1e-9) {
				t.Fatalf("u=%d round trip v[%d]: %v != %v", u, i, got[i], v[i])
			}
		}
	}
}

// Parseval: transform preserves energy exactly (paper Section 2.1).
func TestEnergyPreservation(t *testing.T) {
	r := zipf.NewRNG(3)
	for _, u := range []int64{2, 16, 128, 2048} {
		v := make([]float64, u)
		for i := range v {
			v[i] = r.NormFloat64() * 10
		}
		w := Transform(v)
		if !almostEq(Energy(v), Energy(w), 1e-9) {
			t.Errorf("u=%d energy %v != %v", u, Energy(v), Energy(w))
		}
	}
}

func TestTransformLinearity(t *testing.T) {
	r := zipf.NewRNG(4)
	const u = 64
	a := make([]float64, u)
	b := make([]float64, u)
	for i := range a {
		a[i], b[i] = r.Float64(), r.Float64()
	}
	wa, wb := Transform(a), Transform(b)
	sum := make([]float64, u)
	for i := range sum {
		sum[i] = 2*a[i] - 3*b[i]
	}
	ws := Transform(sum)
	for i := range ws {
		if !almostEq(ws[i], 2*wa[i]-3*wb[i], 1e-9) {
			t.Fatalf("linearity violated at %d", i)
		}
	}
}

func TestTransformPanicsOnNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Transform(make([]float64, 5))
}

func TestLog2(t *testing.T) {
	cases := map[int64]uint{1: 0, 2: 1, 4: 2, 1024: 10, 1 << 29: 29}
	for u, want := range cases {
		if got := Log2(u); got != want {
			t.Errorf("Log2(%d) = %d, want %d", u, got, want)
		}
	}
	if IsPowerOfTwo(0) || IsPowerOfTwo(3) || IsPowerOfTwo(-4) {
		t.Error("IsPowerOfTwo misclassifies")
	}
	if !IsPowerOfTwo(1) || !IsPowerOfTwo(1<<30) {
		t.Error("IsPowerOfTwo misclassifies powers")
	}
}

func TestBasisOrthonormality(t *testing.T) {
	const u = 32
	for i := int64(0); i < u; i++ {
		for j := i; j < u; j++ {
			var dot float64
			for x := int64(0); x < u; x++ {
				dot += BasisAt(i, x, u) * BasisAt(j, x, u)
			}
			want := 0.0
			if i == j {
				want = 1.0
			}
			if !almostEq(dot, want, 1e-9) {
				t.Errorf("<psi_%d, psi_%d> = %v, want %v", i, j, dot, want)
			}
		}
	}
}

func TestSparseTransformMatchesDense(t *testing.T) {
	r := zipf.NewRNG(5)
	for _, u := range []int64{4, 16, 256, 4096} {
		freq := make(map[int64]float64)
		dense := make([]float64, u)
		// Sparse signal: ~u/8 non-zeros.
		for c := int64(0); c < u/8+1; c++ {
			x := r.Int63n(u)
			val := math.Floor(r.Float64()*50) + 1
			freq[x] += val
			dense[x] += val
		}
		wDense := Transform(dense)
		wSparse := SparseTransform(freq, u)
		for i := int64(0); i < u; i++ {
			if !almostEq(wDense[i], wSparse[i], 1e-9) {
				t.Fatalf("u=%d coef %d: dense %v sparse %v", u, i, wDense[i], wSparse[i])
			}
		}
		// No spurious non-zeros.
		for i, v := range wSparse {
			if math.Abs(v) > 1e-12 && math.Abs(wDense[i]) < 1e-12 {
				t.Fatalf("u=%d spurious sparse coef %d = %v", u, i, v)
			}
		}
	}
}

func TestStreamingTransformerMatchesSparse(t *testing.T) {
	r := zipf.NewRNG(6)
	for _, u := range []int64{4, 64, 1024} {
		freq := make(map[int64]float64)
		for c := int64(0); c < u/4+1; c++ {
			freq[r.Int63n(u)] += float64(1 + r.Int63n(9))
		}
		keys, counts := SortFreq(freq)
		got := SparseTransformSorted(keys, counts, u)
		want := SparseTransform(freq, u)
		// Compare as maps with tolerance: summation order differs between
		// the two algorithms, so a mathematically-zero coefficient can be
		// exactly 0 in one and ~1e-17 in the other.
		gotMap := make(map[int64]float64, len(got))
		for _, c := range got {
			gotMap[c.Index] = c.Value
		}
		union := make(map[int64]bool)
		for i := range gotMap {
			union[i] = true
		}
		for i := range want {
			union[i] = true
		}
		for i := range union {
			if !almostEq(gotMap[i], want[i], 1e-9) {
				t.Fatalf("u=%d coef %d: streaming %v, sparse %v", u, i, gotMap[i], want[i])
			}
		}
	}
}

func TestStreamingTransformerRejectsUnsorted(t *testing.T) {
	tr := NewStreamingTransformer(8, func(Coef) {})
	tr.Feed(3, 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on non-increasing key")
		}
	}()
	tr.Feed(3, 1)
}

func TestStreamingTransformerEmpty(t *testing.T) {
	n := 0
	tr := NewStreamingTransformer(8, func(Coef) { n++ })
	tr.Close()
	if n != 0 {
		t.Errorf("empty stream emitted %d coefficients", n)
	}
}

// Property: for random sparse inputs, streaming == map == dense.
func TestSparseQuick(t *testing.T) {
	f := func(raw []uint16, sizeSel uint8) bool {
		u := int64(1) << (3 + sizeSel%8) // 8..1024
		freq := make(map[int64]float64)
		dense := make([]float64, u)
		for i, rv := range raw {
			x := int64(rv) % u
			val := float64(i%7 + 1)
			freq[x] += val
			dense[x] += val
		}
		wDense := Transform(dense)
		wSparse := SparseTransform(freq, u)
		for i := int64(0); i < u; i++ {
			if !almostEq(wDense[i], wSparse[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectTopK(t *testing.T) {
	coefs := []Coef{
		{Index: 1, Value: -10},
		{Index: 2, Value: 3},
		{Index: 3, Value: 7},
		{Index: 4, Value: -2},
		{Index: 5, Value: 8},
	}
	top := SelectTopK(coefs, 3)
	if len(top) != 3 {
		t.Fatalf("len = %d", len(top))
	}
	if top[0].Index != 1 || top[0].Value != -10 {
		t.Errorf("top[0] = %+v, want index 1 value -10", top[0])
	}
	if top[1].Index != 5 || top[2].Index != 3 {
		t.Errorf("order = %+v", top)
	}
}

func TestSelectTopKDenseMatchesMap(t *testing.T) {
	r := zipf.NewRNG(7)
	w := make([]float64, 256)
	m := make(map[int64]float64)
	for i := range w {
		if r.Float64() < 0.5 {
			w[i] = r.NormFloat64()
			m[int64(i)] = w[i]
		}
	}
	a := SelectTopKDense(w, 10)
	b := SelectTopKMap(m, 10)
	if len(a) != len(b) {
		t.Fatalf("lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("mismatch at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestReconstructAllCoefficientsExact(t *testing.T) {
	r := zipf.NewRNG(8)
	const u = 128
	v := make([]float64, u)
	for i := range v {
		v[i] = math.Floor(r.Float64() * 30)
	}
	w := Transform(v)
	coefs := make([]Coef, 0, u)
	for i, val := range w {
		if val != 0 {
			coefs = append(coefs, Coef{Index: int64(i), Value: val})
		}
	}
	rep := NewRepresentation(u, coefs)
	got := rep.Reconstruct()
	for i := range v {
		if !almostEq(v[i], got[i], 1e-8) {
			t.Fatalf("full reconstruction differs at %d: %v vs %v", i, got[i], v[i])
		}
	}
}

// Keeping the true top-k minimizes SSE, and SSE equals residual energy.
func TestTopKSSEEqualsResidualEnergy(t *testing.T) {
	r := zipf.NewRNG(9)
	const u = 256
	v := make([]float64, u)
	for i := range v {
		v[i] = r.NormFloat64() * 5
	}
	w := Transform(v)
	for _, k := range []int{1, 5, 20, 100} {
		rep := NewRepresentation(u, SelectTopKDense(w, k))
		sse := rep.SSEAgainst(v)
		ideal := IdealSSE(w, k)
		if !almostEq(sse, ideal, 1e-8) {
			t.Errorf("k=%d SSE %v != residual energy %v", k, sse, ideal)
		}
	}
}

func TestSSEDecreasesWithK(t *testing.T) {
	r := zipf.NewRNG(10)
	const u = 512
	v := make([]float64, u)
	for i := range v {
		v[i] = r.Float64() * 100
	}
	w := Transform(v)
	prev := math.Inf(1)
	for _, k := range []int{5, 10, 20, 40, 80} {
		sse := IdealSSE(w, k)
		if sse > prev+1e-9 {
			t.Errorf("SSE increased with k: k=%d sse=%v prev=%v", k, sse, prev)
		}
		prev = sse
	}
}

func TestPointEstimateMatchesReconstruct(t *testing.T) {
	r := zipf.NewRNG(11)
	const u = 64
	v := make([]float64, u)
	for i := range v {
		v[i] = r.Float64() * 10
	}
	rep := NewRepresentation(u, SelectTopKDense(Transform(v), 8))
	dense := rep.Reconstruct()
	for x := int64(0); x < u; x++ {
		if !almostEq(dense[x], rep.PointEstimate(x), 1e-9) {
			t.Fatalf("point estimate differs at %d", x)
		}
	}
}

func TestRangeSumMatchesReconstruct(t *testing.T) {
	r := zipf.NewRNG(12)
	const u = 128
	v := make([]float64, u)
	for i := range v {
		v[i] = math.Floor(r.Float64() * 9)
	}
	rep := NewRepresentation(u, SelectTopKDense(Transform(v), 16))
	dense := rep.Reconstruct()
	for trial := 0; trial < 200; trial++ {
		lo := r.Int63n(u)
		hi := lo + r.Int63n(u-lo)
		var want float64
		for x := lo; x <= hi; x++ {
			want += dense[x]
		}
		got := rep.RangeSum(lo, hi)
		if !almostEq(got, want, 1e-8) {
			t.Fatalf("RangeSum(%d,%d) = %v, want %v", lo, hi, got, want)
		}
	}
}

func TestRangeSumClamps(t *testing.T) {
	rep := NewRepresentation(8, []Coef{{Index: 0, Value: math.Sqrt(8)}}) // v = all ones
	if got := rep.RangeSum(-5, 100); !almostEq(got, 8, 1e-9) {
		t.Errorf("clamped full-range sum = %v, want 8", got)
	}
	if got := rep.RangeSum(5, 2); got != 0 {
		t.Errorf("inverted range = %v, want 0", got)
	}
}

func TestRangeSumFullEqualsTotal(t *testing.T) {
	r := zipf.NewRNG(13)
	const u = 64
	v := make([]float64, u)
	var total float64
	for i := range v {
		v[i] = math.Floor(r.Float64() * 5)
		total += v[i]
	}
	// All coefficients retained: range sum must be exact.
	w := Transform(v)
	coefs := make([]Coef, 0)
	for i, val := range w {
		coefs = append(coefs, Coef{Index: int64(i), Value: val})
	}
	rep := NewRepresentation(u, coefs)
	if got := rep.RangeSum(0, u-1); !almostEq(got, total, 1e-8) {
		t.Errorf("full range = %v, want %v", got, total)
	}
}
