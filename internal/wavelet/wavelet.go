// Package wavelet implements the Haar wavelet machinery of the paper:
// dense and sparse (frequency-vector) transforms, the O(|v| log u)-time /
// O(log u)-memory streaming transform the mappers use (Appendix A, citing
// Gilbert et al. [20]), best k-term selection, reconstruction, point and
// range-sum queries, SSE/energy accounting, and the 2D extension.
//
// # Indexing and normalization
//
// The key domain is [u] = {0, ..., u-1} (0-based; the paper is 1-based) and
// u must be a power of two. Coefficients are indexed 0-based as well:
//
//	w[0]            = <v, ψ1>,  ψ1 = (1,...,1)/√u        (overall average)
//	w[2^j + k]      = detail at tree level j covering the dyadic range
//	                  [k·u/2^j, (k+1)·u/2^j), j = 0..log2(u)-1
//
// All coefficients use the energy-preserving (orthonormal) normalization,
// so ‖v‖² = Σ w_i² exactly (Parseval), which the paper relies on when
// arguing that keeping the k largest-magnitude coefficients minimizes SSE.
package wavelet

import (
	"fmt"
	"math"
)

// Coef is a single wavelet coefficient: its index in [0, u) and its value
// under the orthonormal Haar basis.
type Coef struct {
	Index int64
	Value float64
}

// IsPowerOfTwo reports whether u is a positive power of two.
func IsPowerOfTwo(u int64) bool {
	return u > 0 && u&(u-1) == 0
}

// Log2 returns log2(u) for a power of two u.
func Log2(u int64) uint {
	if !IsPowerOfTwo(u) {
		panic(fmt.Sprintf("wavelet: domain %d is not a power of two", u))
	}
	var l uint
	for 1<<(l+1) <= u {
		l++
	}
	return l
}

// Transform computes all u Haar coefficients of the dense signal v.
// len(v) must be a power of two. O(u) time, O(u) space.
func Transform(v []float64) []float64 {
	u := int64(len(v))
	if !IsPowerOfTwo(u) {
		panic(fmt.Sprintf("wavelet: signal length %d is not a power of two", u))
	}
	logu := Log2(u)
	// sums holds running dyadic sums; we fold bottom-up. s starts as v.
	s := make([]float64, u)
	copy(s, v)
	w := make([]float64, u)
	// Level j detail coefficients are produced when ranges of length
	// u/2^j close. Work bottom-up: at step t (t = logu-1 ... 0) ranges of
	// length u/2^t merge pairwise from ranges of length u/2^(t+1).
	length := u // current number of partial sums
	for level := int(logu) - 1; level >= 0; level-- {
		half := length / 2
		scale := math.Sqrt(float64(u) / float64(int64(1)<<uint(level)))
		for k := int64(0); k < half; k++ {
			left, right := s[2*k], s[2*k+1]
			// Detail: (sumRight - sumLeft)/sqrt(u/2^level).
			w[int64(1)<<uint(level)+k] = (right - left) / scale
			s[k] = left + right
		}
		length = half
	}
	w[0] = s[0] / math.Sqrt(float64(u))
	return w
}

// Inverse reconstructs the dense signal from all u coefficients.
// O(u) time.
func Inverse(w []float64) []float64 {
	u := int64(len(w))
	if !IsPowerOfTwo(u) {
		panic(fmt.Sprintf("wavelet: coefficient length %d is not a power of two", u))
	}
	logu := Log2(u)
	s := make([]float64, u)
	s[0] = w[0] * math.Sqrt(float64(u))
	length := int64(1)
	for level := 0; level < int(logu); level++ {
		scale := math.Sqrt(float64(u) / float64(int64(1)<<uint(level)))
		// Expand each range sum into its two child sums using the detail.
		for k := length - 1; k >= 0; k-- {
			sum := s[k]
			diff := w[int64(1)<<uint(level)+k] * scale
			s[2*k] = (sum - diff) / 2
			s[2*k+1] = (sum + diff) / 2
		}
		length *= 2
	}
	return s
}

// coefLevel returns the tree level j of coefficient index i (i >= 1), such
// that i = 2^j + k. The overall-average coefficient (i == 0) has no level.
func coefLevel(i int64) uint {
	if i < 1 {
		panic("wavelet: coefLevel of average coefficient")
	}
	var j uint
	for int64(1)<<(j+1) <= i {
		j++
	}
	return j
}

// BasisAt evaluates ψ_i(x) for coefficient index i over domain size u.
// O(1). Used by point queries and tests against the definition.
func BasisAt(i, x, u int64) float64 {
	if x < 0 || x >= u {
		return 0
	}
	if i == 0 {
		return 1 / math.Sqrt(float64(u))
	}
	j := coefLevel(i)
	k := i - int64(1)<<j
	rangeLen := u >> j // u / 2^j
	lo := k * rangeLen
	if x < lo || x >= lo+rangeLen {
		return 0
	}
	val := 1 / math.Sqrt(float64(rangeLen))
	if x < lo+rangeLen/2 {
		return -val
	}
	return val
}

// Energy returns ‖v‖² = Σ v(x)².
func Energy(v []float64) float64 {
	var e float64
	for _, x := range v {
		e += x * x
	}
	return e
}

// SSE returns Σ (a(x) - b(x))². Slices must have equal length.
func SSE(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("wavelet: SSE length mismatch")
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
