package wavelet

import (
	"math"
	"testing"

	"wavelethist/internal/zipf"
)

func TestKeyNDRoundTrip(t *testing.T) {
	const u = 16
	cases := [][]int64{{0, 0, 0}, {1, 2, 3}, {15, 15, 15}, {7, 0, 9}}
	for _, coords := range cases {
		key := KeyND(coords, u)
		got := SplitKeyND(key, u, len(coords))
		for i := range coords {
			if got[i] != coords[i] {
				t.Errorf("round trip %v -> %d -> %v", coords, key, got)
			}
		}
	}
}

func TestTransformNDMatches1D(t *testing.T) {
	r := zipf.NewRNG(1)
	const u = 64
	v := make([]float64, u)
	for i := range v {
		v[i] = r.Float64() * 10
	}
	got := TransformND(v, u, 1)
	want := Transform(v)
	for i := range want {
		if !almostEq(got[i], want[i], 1e-9) {
			t.Fatalf("1D mismatch at %d", i)
		}
	}
}

func TestTransformNDMatches2D(t *testing.T) {
	r := zipf.NewRNG(2)
	const u = 8
	grid := randomGrid(r, u)
	flat := make([]float64, u*u)
	for x := int64(0); x < u; x++ {
		for y := int64(0); y < u; y++ {
			flat[x*u+y] = grid[x][y]
		}
	}
	got := TransformND(flat, u, 2)
	want := Transform2D(grid)
	for i := int64(0); i < u; i++ {
		for j := int64(0); j < u; j++ {
			if !almostEq(got[i*u+j], want[i][j], 1e-9) {
				t.Fatalf("2D mismatch at (%d,%d): %v vs %v", i, j, got[i*u+j], want[i][j])
			}
		}
	}
}

func TestTransformNDRoundTrip3D(t *testing.T) {
	r := zipf.NewRNG(3)
	const u = 8
	const d = 3
	v := make([]float64, u*u*u)
	for i := range v {
		v[i] = math.Floor(r.Float64() * 9)
	}
	got := InverseND(TransformND(v, u, d), u, d)
	for i := range v {
		if !almostEq(v[i], got[i], 1e-9) {
			t.Fatalf("3D round trip differs at %d", i)
		}
	}
}

func TestTransformNDEnergy3D(t *testing.T) {
	r := zipf.NewRNG(4)
	const u = 4
	v := make([]float64, u*u*u)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	w := TransformND(v, u, 3)
	if !almostEq(Energy(v), Energy(w), 1e-9) {
		t.Errorf("3D energy not preserved: %v vs %v", Energy(v), Energy(w))
	}
}

func TestSparseTransformNDMatchesDense(t *testing.T) {
	r := zipf.NewRNG(5)
	const u = 8
	const d = 3
	n := int64(u * u * u)
	v := make([]float64, n)
	freq := make(map[int64]float64)
	for c := 0; c < 40; c++ {
		key := r.Int63n(n)
		val := math.Floor(r.Float64()*10) + 1
		v[key] += val
		freq[key] += val
	}
	dense := TransformND(v, u, d)
	sparse := SparseTransformND(freq, u, d)
	for i := int64(0); i < n; i++ {
		if !almostEq(dense[i], sparse[i], 1e-9) {
			t.Fatalf("coef %d: dense %v sparse %v", i, dense[i], sparse[i])
		}
	}
}

// Linearity in d dims: local ND coefficients sum to global ones — the
// property that lets H-WTopk run unchanged in any dimension.
func TestSparseTransformNDLinearity(t *testing.T) {
	r := zipf.NewRNG(6)
	const u = 4
	const d = 3
	n := int64(u * u * u)
	a := make(map[int64]float64)
	b := make(map[int64]float64)
	whole := make(map[int64]float64)
	for c := 0; c < 30; c++ {
		key := r.Int63n(n)
		val := float64(1 + r.Int63n(5))
		if c%2 == 0 {
			a[key] += val
		} else {
			b[key] += val
		}
		whole[key] += val
	}
	wa := SparseTransformND(a, u, d)
	wb := SparseTransformND(b, u, d)
	ww := SparseTransformND(whole, u, d)
	union := make(map[int64]bool)
	for i := range wa {
		union[i] = true
	}
	for i := range wb {
		union[i] = true
	}
	for i := range ww {
		union[i] = true
	}
	for i := range union {
		if !almostEq(wa[i]+wb[i], ww[i], 1e-9) {
			t.Fatalf("ND linearity fails at %d", i)
		}
	}
}

func TestBasisNDAtMatchesTransform(t *testing.T) {
	r := zipf.NewRNG(7)
	const u = 4
	const d = 3
	n := int64(u * u * u)
	v := make([]float64, n)
	for i := range v {
		v[i] = math.Floor(r.Float64() * 5)
	}
	w := TransformND(v, u, d)
	// Spot-check a handful of coefficients against explicit dot products.
	for trial := 0; trial < 20; trial++ {
		ci := r.Int63n(n)
		var dot float64
		for key := int64(0); key < n; key++ {
			dot += v[key] * BasisNDAt(ci, SplitKeyND(key, u, d), u)
		}
		if !almostEq(w[ci], dot, 1e-9) {
			t.Fatalf("coef %d: transform %v, dot %v", ci, w[ci], dot)
		}
	}
}

func TestNDValidation(t *testing.T) {
	mustPanic := func(f func()) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		f()
	}
	mustPanic(func() { TransformND(make([]float64, 10), 3, 2) })
	mustPanic(func() { TransformND(make([]float64, 10), 4, 2) })
	mustPanic(func() { TransformND(make([]float64, 16), 4, 0) })
	mustPanic(func() { KeyND([]int64{5}, 4) })
}
