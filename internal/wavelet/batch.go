package wavelet

import (
	"slices"
	"sort"
	"sync"
)

// The vectorized batch executor.
//
// A scalar point estimate walks the query key's root-to-leaf ancestor
// path, binary-searching each error-tree level for the one coefficient
// index that can contribute — O(log u · log k) data-dependent loads per
// query. For a batch of n queries that search repeats per query, even
// though at level j the batch's n ancestor targets are a monotone
// function of the sorted keys and level j's coefficient indices are
// already stored sorted (errTree.ord / errTree.idxs).
//
// The batch executor exploits that: sort the query keys once, then sweep
// every level exactly once with a merge join — one forward cursor over
// the level's sorted index array, advanced monotonically as the sorted
// queries' ancestor targets increase. Each level costs O(n + k_level)
// sequential comparisons instead of n binary searches, ancestor targets
// come from shifts instead of divisions, and adjacent queries sharing an
// ancestor (the common case in the dense top levels) reuse the matched
// run without rescanning. Range queries walk the same sweep with two
// sorted boundary walkers per query (2n walkers), mirroring rangeSum's
// kLo/kHi probes including its "probe kHi only when it differs" dedup.
// 2D ranges sweep the row-group table with the same walker scheme on the
// x axis and probe each matched row's y-axis boundary candidates.
//
// Every level sweep parks its cursor with one binary search at the first
// query's target instead of scanning from the level start. For a
// full-batch sweep that changes nothing (the linear scan would stop at
// the same place); it exists so a sweep over any contiguous segment of
// the sorted queries costs only its own share of the level — the
// property the parallel executors in parallel.go split batches on.
//
// # Bit-identical to the scalar path
//
// PointEstimate / RangeSum stay the oracle. Per query the sweep matches
// exactly the term multiset the scalar walk matches (same levels, same
// targets, same duplicate runs) and computes each term with the same
// arithmetic — precomputed ±1/sqrt and /sqrt factors that are bitwise
// equal to the scalar path's per-query derivations (math.Sqrt is
// correctly rounded, so caching a root changes nothing). Matched terms
// are collected in a flat structure-of-arrays arena (parallel tq/terms
// columns), grouped per query with one counting-sort scatter, and each
// query's group is finished with the same sumByPos the scalar path uses;
// a query's matched coefficient positions are distinct, so the
// position-sorted summation order — and therefore every partial sum's
// rounding — is identical no matter what order the sweep discovered the
// terms in.
//
// All scratch state lives in a pooled arena, so steady-state batches
// allocate nothing.

// batchScratch is one batch's reusable state: the sorted query order,
// the flat term arena and its per-query offset table, clamped range
// bounds, and the legacy linked-list columns kept for the arena
// benchmark baseline. Pooled; every slice is length-reset per use.
type batchScratch struct {
	qord  []int32   // in-domain query indexes, sorted by key
	word  []int32   // range boundary walkers (query<<1 | isHi), sorted by boundary
	pk    []int64   // packed key<<shift|index sort buffer (comparator-free sort)
	tq    []int32   // arena column: owning query index per term
	terms []posTerm // arena column: the matched terms, sweep order
	qoff  []int32   // counting-sort offsets, len n+1
	flat  []posTerm // terms scattered contiguously per query
	klo   []int64   // clamped range lows (x axis in 2D), indexed by query
	khi   []int64   // clamped range highs (x axis in 2D), indexed by query
	kylo  []int64   // clamped 2D range lows, y axis
	kyhi  []int64   // clamped 2D range highs, y axis

	// Linked-arena baseline state (BatchPointsLinkedArena only).
	head []int32   // per-query list head, -1 = no terms
	next []int32   // linked-list next pointers, parallel to terms
	buf  []posTerm // per-query collection buffer for sumByPos
}

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// resetArena clears the term arena and zeroes the offset table for a
// batch of n queries.
func (sc *batchScratch) resetArena(n int) {
	sc.tq = sc.tq[:0]
	sc.terms = sc.terms[:0]
	if cap(sc.qoff) < n+1 {
		sc.qoff = make([]int32, n+1)
	}
	sc.qoff = sc.qoff[:n+1]
	for i := range sc.qoff {
		sc.qoff[i] = 0
	}
}

// push appends one matched term owned by query qi.
func (sc *batchScratch) push(qi int32, p int32, term float64) {
	sc.tq = append(sc.tq, qi)
	sc.terms = append(sc.terms, posTerm{p, term})
}

// finishFlat groups the arena by query with one counting-sort scatter —
// count into qoff, prefix-sum, then one sequential pass moving each term
// into its query's contiguous run in flat — and sums each active query's
// run in scan order into out. Two branch-free sequential passes over the
// arena replace the linked list's per-term pointer chase.
func (sc *batchScratch) finishFlat(active []int32, out []float64) {
	qoff := sc.qoff
	for _, qi := range sc.tq {
		qoff[qi+1]++
	}
	for i := 1; i < len(qoff); i++ {
		qoff[i] += qoff[i-1]
	}
	if cap(sc.flat) < len(sc.terms) {
		sc.flat = make([]posTerm, len(sc.terms))
	}
	flat := sc.flat[:cap(sc.flat)]
	for i, qi := range sc.tq {
		flat[qoff[qi]] = sc.terms[i]
		qoff[qi]++
	}
	sc.flat = flat
	// The scatter advanced qoff[qi] to the end of query qi's run; its
	// start is the previous query's end.
	for _, qi := range active {
		s := int32(0)
		if qi > 0 {
			s = qoff[qi-1]
		}
		out[qi] = sumByPos(flat[s:qoff[qi]])
	}
}

// resetHeads sizes head to n and fills it with -1.
func (sc *batchScratch) resetHeads(n int) {
	if cap(sc.head) < n {
		sc.head = make([]int32, n)
	}
	sc.head = sc.head[:n]
	for i := range sc.head {
		sc.head[i] = -1
	}
}

// finishLinked is the pre-flat-arena finisher kept as a benchmark
// baseline: it threads the arena into per-query linked lists and sums
// each list with a pointer chase — the data-dependent loads finishFlat's
// counting sort eliminates.
func (sc *batchScratch) finishLinked(n int, active []int32, out []float64) {
	sc.resetHeads(n)
	if cap(sc.next) < len(sc.tq) {
		sc.next = make([]int32, len(sc.tq))
	}
	next := sc.next[:len(sc.tq)]
	for i, qi := range sc.tq {
		next[i] = sc.head[qi]
		sc.head[qi] = int32(i)
	}
	sc.next = next
	for _, qi := range active {
		buf := sc.buf[:0]
		for li := sc.head[qi]; li >= 0; li = next[li] {
			buf = append(buf, sc.terms[li])
		}
		sc.buf = buf
		out[qi] = sumByPos(buf)
	}
}

// sortPointQueries zeroes out, drops out-of-domain keys, and returns the
// surviving query indexes sorted by key (stored in sc.qord).
func (t *errTree) sortPointQueries(sc *batchScratch, xs []int64, out []float64) []int32 {
	qord := sc.qord[:0]
	if t.u <= 1<<31 {
		// Comparator-free sort: pack key<<31|index into one int64 so
		// slices.Sort runs without closure calls. Equal keys tie-break
		// by index; per-query sums are order-independent (sumByPos
		// canonicalizes), so the result is still bit-identical.
		pk := sc.pk[:0]
		for i, x := range xs {
			out[i] = 0
			if x >= 0 && x < t.u {
				pk = append(pk, x<<31|int64(i))
			}
		}
		slices.Sort(pk)
		for _, v := range pk {
			qord = append(qord, int32(v&(1<<31-1)))
		}
		sc.pk = pk
	} else {
		for i, x := range xs {
			out[i] = 0
			if x >= 0 && x < t.u {
				qord = append(qord, int32(i))
			}
		}
		slices.SortFunc(qord, func(a, b int32) int {
			xa, xb := xs[a], xs[b]
			switch {
			case xa < xb:
				return -1
			case xa > xb:
				return 1
			}
			return 0
		})
	}
	sc.qord = qord
	return qord
}

// sweepPoints runs the per-level merge joins for a key-sorted slice of
// point queries, pushing every matched term into sc's arena. qord may be
// any contiguous segment of a sorted batch: each level's cursor is
// binary-searched to the segment's first target, which parks it exactly
// where a linear advance from the level start would — later targets are
// monotone, so every walker still lands on its full duplicate run.
func (t *errTree) sweepPoints(sc *batchScratch, coefs []Coef, xs []int64, qord []int32) {
	if len(qord) == 0 {
		return
	}
	// Level 0: every in-domain query matches the average coefficient(s).
	if s0, e0 := int(t.off[0]), int(t.off[1]); s0 < e0 {
		b := t.invSqrtU // == 1/math.Sqrt(float64(t.u)), the scalar factor
		for _, qi := range qord {
			for i := s0; i < e0; i++ {
				p := t.ord[i]
				sc.push(qi, p, coefs[p].Value*b)
			}
		}
	}

	// Detail levels: one merge join per level. A query's ancestor target
	// at detail level j is 2^j + x>>(logu-j) — non-decreasing in sorted
	// key order — so a single forward cursor replaces per-query searches.
	for j := uint(0); j < t.logu; j++ {
		s, e := int(t.off[j+1]), int(t.off[j+2])
		if s == e {
			continue
		}
		shift := t.logu - j // rangeLen = 1<<shift
		base := int64(1) << j
		val := t.invSqrtLen[j]
		first := base + xs[qord[0]]>>shift
		cur := s + sort.Search(e-s, func(i int) bool { return t.idxs[s+i] >= first })
		for _, qi := range qord {
			x := xs[qi]
			target := base + x>>shift
			for cur < e && t.idxs[cur] < target {
				cur++
			}
			if cur == e {
				break // later queries have even larger targets
			}
			if t.idxs[cur] != target {
				continue
			}
			// basisAtLevel's sign: negative iff x mod rangeLen lands in
			// the first half, i.e. bit shift-1 of x is clear.
			b := val
			if x>>(shift-1)&1 == 0 {
				b = -val
			}
			// The cursor stays at the run start so a following query with
			// the same ancestor rematches it without rescanning.
			for m := cur; m < e && t.idxs[m] == target; m++ {
				p := t.ord[m]
				sc.push(qi, p, coefs[p].Value*b)
			}
		}
	}
}

// BatchPoints answers n point queries at once: out[i] = PointEstimate
// of xs[i], bit for bit. len(out) must equal len(xs). Keys may repeat
// and arrive in any order; keys outside [0, u) estimate 0, exactly as
// the scalar path does. Steady-state calls are allocation-free.
func (r *Representation) BatchPoints(xs []int64, out []float64) {
	if len(out) != len(xs) {
		panic("wavelet: BatchPoints slice length mismatch")
	}
	if r.tree == nil {
		for i, x := range xs {
			out[i] = r.PointEstimate(x)
		}
		return
	}
	r.tree.batchPoints(r.Coefs, xs, out)
}

func (t *errTree) batchPoints(coefs []Coef, xs []int64, out []float64) {
	n := len(xs)
	if n == 0 {
		return
	}
	sc := batchScratchPool.Get().(*batchScratch)
	qord := t.sortPointQueries(sc, xs, out)
	sc.resetArena(n)
	t.sweepPoints(sc, coefs, xs, qord)
	sc.finishFlat(qord, out)
	batchScratchPool.Put(sc)
}

// BatchPointsLinkedArena is BatchPoints finished through the linked-list
// term arena the executor used before the flat structure-of-arrays
// layout. Results are bit-identical; it exists so wavebench can measure
// the flat arena's win and will go away once that comparison stops being
// interesting.
func (r *Representation) BatchPointsLinkedArena(xs []int64, out []float64) {
	if len(out) != len(xs) {
		panic("wavelet: BatchPointsLinkedArena slice length mismatch")
	}
	if r.tree == nil {
		r.BatchPoints(xs, out)
		return
	}
	n := len(xs)
	if n == 0 {
		return
	}
	sc := batchScratchPool.Get().(*batchScratch)
	qord := r.tree.sortPointQueries(sc, xs, out)
	sc.resetArena(n)
	r.tree.sweepPoints(sc, r.Coefs, xs, qord)
	sc.finishLinked(n, qord, out)
	batchScratchPool.Put(sc)
}

// clampRangeQueries zeroes out, clamps each [los[i], his[i]] to [0, u)
// into sc.klo/sc.khi, and returns the non-empty query indexes in input
// order (stored in sc.qord).
func clampRangeQueries(sc *batchScratch, u int64, los, his []int64, out []float64) []int32 {
	n := len(los)
	if cap(sc.klo) < n {
		sc.klo = make([]int64, n)
		sc.khi = make([]int64, n)
	}
	sc.klo, sc.khi = sc.klo[:n], sc.khi[:n]
	qis := sc.qord[:0]
	for i := 0; i < n; i++ {
		out[i] = 0
		lo, hi := los[i], his[i]
		if lo < 0 {
			lo = 0
		}
		if hi >= u {
			hi = u - 1
		}
		if lo > hi {
			continue
		}
		sc.klo[i], sc.khi[i] = lo, hi
		qis = append(qis, int32(i))
	}
	sc.qord = qis
	return qis
}

// buildBoundaryWalkers packs each listed query's two boundary walkers
// (query<<1 for lo, query<<1|1 for hi) and sorts them by boundary key so
// each level's walker targets are monotone. packed selects the
// comparator-free key<<31|walker sort (valid when the domain fits 31
// bits). The sorted walkers are stored in sc.word and returned.
func buildBoundaryWalkers(sc *batchScratch, qis []int32, klo, khi []int64, packed bool) []int32 {
	word := sc.word[:0]
	if packed {
		pk := sc.pk[:0]
		for _, qi := range qis {
			pk = append(pk, klo[qi]<<31|int64(qi)<<1, khi[qi]<<31|int64(qi)<<1|1)
		}
		slices.Sort(pk)
		for _, v := range pk {
			word = append(word, int32(v&(1<<31-1)))
		}
		sc.pk = pk
	} else {
		for _, qi := range qis {
			word = append(word, qi<<1, qi<<1|1)
		}
		slices.SortFunc(word, func(a, b int32) int {
			ka, kb := klo[a>>1], klo[b>>1]
			if a&1 != 0 {
				ka = khi[a>>1]
			}
			if b&1 != 0 {
				kb = khi[b>>1]
			}
			switch {
			case ka < kb:
				return -1
			case ka > kb:
				return 1
			}
			return 0
		})
	}
	sc.word = word
	return word
}

// sweepRangeLevels runs the per-level merge joins for a set of clamped
// range queries (qis) and their sorted boundary walkers (word), pushing
// every matched term into sc's arena. Like sweepPoints it accepts any
// contiguous segment of a klo-sorted batch; each level's cursor is
// binary-searched to the first walker's target.
func (t *errTree) sweepRangeLevels(sc *batchScratch, coefs []Coef, qis, word []int32, klo, khi []int64) {
	if len(word) == 0 {
		return
	}
	// Level 0: every active query matches the average coefficient(s) with
	// the scalar factor (hi-lo+1)/sqrt(u).
	if s0, e0 := int(t.off[0]), int(t.off[1]); s0 < e0 {
		for _, qi := range qis {
			b := float64(khi[qi]-klo[qi]+1) / t.sqrtU
			for i := s0; i < e0; i++ {
				p := t.ord[i]
				sc.push(qi, p, coefs[p].Value*b)
			}
		}
	}

	// Detail levels: merge join of sorted boundary walkers against the
	// level's index array, mirroring rangeSum — the lo walker always
	// probes its dyadic cell, the hi walker only when it differs (the
	// scalar path's double-count guard).
	for j := uint(0); j < t.logu; j++ {
		s, e := int(t.off[j+1]), int(t.off[j+2])
		if s == e {
			continue
		}
		shift := t.logu - j
		base := int64(1) << j
		rangeLen := t.u >> j
		sq := t.sqrtLen[j]
		w0 := word[0]
		k0 := klo[w0>>1] >> shift
		if w0&1 != 0 {
			k0 = khi[w0>>1] >> shift
		}
		first := base + k0
		cur := s + sort.Search(e-s, func(i int) bool { return t.idxs[s+i] >= first })
		for _, w := range word {
			qi := w >> 1
			lo, hi := klo[qi], khi[qi]
			var k int64
			if w&1 != 0 {
				k = hi >> shift
				if k == lo>>shift {
					continue
				}
			} else {
				k = lo >> shift
			}
			target := base + k
			for cur < e && t.idxs[cur] < target {
				cur++
			}
			if cur == e {
				break
			}
			if t.idxs[cur] != target {
				continue
			}
			// appendRangeTerms' arithmetic, with the cached level root.
			start := k << shift
			mid := start + rangeLen/2
			end := start + rangeLen
			neg := overlap(lo, hi+1, start, mid)
			pos := overlap(lo, hi+1, mid, end)
			b := float64(pos-neg) / sq
			for m := cur; m < e && t.idxs[m] == target; m++ {
				p := t.ord[m]
				sc.push(qi, p, coefs[p].Value*b)
			}
		}
	}
}

// BatchRanges answers n range-sum queries at once: out[i] = RangeSum of
// [los[i], his[i]], bit for bit, with the scalar path's clamp contract
// (bounds clamped to the domain, empty intersection estimates 0).
// len(los), len(his) and len(out) must match. Steady-state calls are
// allocation-free.
func (r *Representation) BatchRanges(los, his []int64, out []float64) {
	if len(his) != len(los) || len(out) != len(los) {
		panic("wavelet: BatchRanges slice length mismatch")
	}
	if r.tree == nil {
		for i := range los {
			out[i] = r.RangeSum(los[i], his[i])
		}
		return
	}
	r.tree.batchRanges(r.Coefs, los, his, out)
}

func (t *errTree) batchRanges(coefs []Coef, los, his []int64, out []float64) {
	n := len(los)
	if n == 0 {
		return
	}
	sc := batchScratchPool.Get().(*batchScratch)
	qis := clampRangeQueries(sc, t.u, los, his, out)
	sc.resetArena(n)
	word := buildBoundaryWalkers(sc, qis, sc.klo, sc.khi, t.u <= 1<<31)
	t.sweepRangeLevels(sc, coefs, qis, word, sc.klo, sc.khi)
	sc.finishFlat(qis, out)
	batchScratchPool.Put(sc)
}

// sortPointQueries2D zeroes out, drops off-grid cells, and returns the
// surviving query indexes sorted by (x, y): queries sharing an x-run
// compute the x ancestor path once, and within a run the ascending y
// keys make each (x-level, y-level) pair's packed targets monotone.
func (t *errTree2D) sortPointQueries2D(sc *batchScratch, xs, ys []int64, out []float64) []int32 {
	qord := sc.qord[:0]
	for i := range xs {
		out[i] = 0
		if xs[i] >= 0 && xs[i] < t.u && ys[i] >= 0 && ys[i] < t.u {
			qord = append(qord, int32(i))
		}
	}
	slices.SortFunc(qord, func(a, b int32) int {
		switch {
		case xs[a] < xs[b]:
			return -1
		case xs[a] > xs[b]:
			return 1
		case ys[a] < ys[b]:
			return -1
		case ys[a] > ys[b]:
			return 1
		}
		return 0
	})
	sc.qord = qord
	return qord
}

// sweepPoints2D runs the row-group merge joins for an (x, y)-sorted
// slice of 2D point queries. Like the 1D sweeps it accepts any
// contiguous segment of a sorted batch: each x-level's row cursor is
// lazily binary-searched to its first row target instead of scanning
// the row table from the start.
func (t *errTree2D) sweepPoints2D(sc *batchScratch, coefs []Coef, xs, ys []int64, qord []int32) {
	// Per-x-level cursors into the row-group table: for a fixed x-level a,
	// the row index xi[a] is non-decreasing as x increases, so each
	// cursor only moves forward across the whole segment. -1 = unparked.
	var gcur [66]int
	for i := range gcur {
		gcur[i] = -1
	}
	var xi [64]int64
	var xb [64]float64
	nq := len(qord)
	for i := 0; i < nq; {
		x := xs[qord[i]]
		j := i + 1
		for j < nq && xs[qord[j]] == x {
			j++
		}
		run := qord[i:j]
		nx := t.ancestorPaths(x, &xi, &xb)
		for a := 0; a < nx; a++ {
			if gcur[a] < 0 {
				xt := xi[a]
				gcur[a] = sort.Search(len(t.gkey), func(g int) bool { return t.gkey[g] >= xt })
			}
			for gcur[a] < len(t.gkey) && t.gkey[gcur[a]] < xi[a] {
				gcur[a]++
			}
			if gcur[a] == len(t.gkey) || t.gkey[gcur[a]] != xi[a] {
				continue
			}
			g := gcur[a]
			glo, ghi := int(t.goff[g]), int(t.goff[g+1])
			base := xi[a] * t.u
			bxa := xb[a]
			// One merge join per y-level within this row group; the run's
			// ascending y keys keep each join's targets monotone.
			for b := uint(0); b <= t.logu; b++ {
				cur := glo
				for _, qi := range run {
					y := ys[qi]
					var target int64
					var by float64
					if b == 0 {
						target = base
						by = t.invSqrtU
					} else {
						jj := b - 1
						shift := t.logu - jj
						target = base + int64(1)<<jj + y>>shift
						by = t.invSqrtLen[jj]
						if y>>(shift-1)&1 == 0 {
							by = -by
						}
					}
					for cur < ghi && t.idxs[cur] < target {
						cur++
					}
					if cur == ghi {
						break
					}
					if t.idxs[cur] != target {
						continue
					}
					bv := bxa * by
					for m := cur; m < ghi && t.idxs[m] == target; m++ {
						p := t.ord[m]
						sc.push(qi, p, coefs[p].Value*bv)
					}
				}
			}
		}
		i = j
	}
}

// BatchPoints answers n 2D point queries at once: out[i] = PointEstimate
// of (xs[i], ys[i]), bit for bit. len(xs), len(ys) and len(out) must
// match; off-grid cells estimate 0. Steady-state calls are
// allocation-free.
func (r *Representation2D) BatchPoints(xs, ys []int64, out []float64) {
	if len(ys) != len(xs) || len(out) != len(xs) {
		panic("wavelet: BatchPoints slice length mismatch")
	}
	if r.tree == nil {
		for i := range xs {
			out[i] = r.PointEstimate(xs[i], ys[i])
		}
		return
	}
	r.tree.batchPoints(r.Coefs, xs, ys, out)
}

func (t *errTree2D) batchPoints(coefs []Coef, xs, ys []int64, out []float64) {
	n := len(xs)
	if n == 0 {
		return
	}
	sc := batchScratchPool.Get().(*batchScratch)
	qord := t.sortPointQueries2D(sc, xs, ys, out)
	sc.resetArena(n)
	t.sweepPoints2D(sc, coefs, xs, ys, qord)
	sc.finishFlat(qord, out)
	batchScratchPool.Put(sc)
}

// clampRangeQueries2D zeroes out, clamps each query's x bounds into
// sc.klo/sc.khi and y bounds into sc.kylo/sc.kyhi, and returns the query
// indexes whose clamped rectangle is non-empty on both axes.
func (t *errTree2D) clampRangeQueries2D(sc *batchScratch, xlos, xhis, ylos, yhis []int64, out []float64) []int32 {
	n := len(xlos)
	if cap(sc.klo) < n {
		sc.klo = make([]int64, n)
		sc.khi = make([]int64, n)
	}
	if cap(sc.kylo) < n {
		sc.kylo = make([]int64, n)
		sc.kyhi = make([]int64, n)
	}
	sc.klo, sc.khi = sc.klo[:n], sc.khi[:n]
	sc.kylo, sc.kyhi = sc.kylo[:n], sc.kyhi[:n]
	qis := sc.qord[:0]
	for i := 0; i < n; i++ {
		out[i] = 0
		xlo, xhi := xlos[i], xhis[i]
		if xlo < 0 {
			xlo = 0
		}
		if xhi >= t.u {
			xhi = t.u - 1
		}
		ylo, yhi := ylos[i], yhis[i]
		if ylo < 0 {
			ylo = 0
		}
		if yhi >= t.u {
			yhi = t.u - 1
		}
		if xlo > xhi || ylo > yhi {
			continue
		}
		sc.klo[i], sc.khi[i] = xlo, xhi
		sc.kylo[i], sc.kyhi[i] = ylo, yhi
		qis = append(qis, int32(i))
	}
	sc.qord = qis
	return qis
}

// push2DTarget pushes the (possibly duplicated) coefficients whose
// packed index equals target within row group [glo, ghi), scaled by bv,
// into query qi's terms.
func (t *errTree2D) push2DTarget(sc *batchScratch, coefs []Coef, qi int32, glo, ghi int, target int64, bv float64) {
	lo, hi := glo, ghi
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if t.idxs[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for lo < ghi && t.idxs[lo] == target {
		p := t.ord[lo]
		sc.push(qi, p, coefs[p].Value*bv)
		lo++
	}
}

// pushRangeRow pushes one matched x-axis row's contributions to query
// qi: the y-axis average plus each y-level's boundary cell(s), scaled by
// the row's x factor bx — the same candidate set and arithmetic as the
// scalar rangeSum's rangeCandidates pass.
func (t *errTree2D) pushRangeRow(sc *batchScratch, coefs []Coef, qi int32, glo, ghi int, base int64, bx float64, ylo, yhi int64) {
	by := float64(yhi-ylo+1) / t.sqrtU
	t.push2DTarget(sc, coefs, qi, glo, ghi, base, bx*by)
	for j := uint(0); j < t.logu; j++ {
		rangeLen := t.u >> j
		kLo, kHi := ylo/rangeLen, yhi/rangeLen
		t.push2DTarget(sc, coefs, qi, glo, ghi, base+int64(1)<<j+kLo, bx*t.rangeFactor(j, kLo, ylo, yhi))
		if kHi != kLo {
			t.push2DTarget(sc, coefs, qi, glo, ghi, base+int64(1)<<j+kHi, bx*t.rangeFactor(j, kHi, ylo, yhi))
		}
	}
}

// sweepRanges2D runs the x-axis walker sweep over the row-group table
// for a set of clamped 2D range queries: the x average row and, per
// x-level, each walker's boundary row; every matched row probes the
// query's y-axis candidates within that row group. Accepts any
// contiguous segment of an x-lo-sorted batch (walkers are rebuilt and
// cursors binary-parked per segment).
func (t *errTree2D) sweepRanges2D(sc *batchScratch, coefs []Coef, qis, word []int32, xlo, xhi, ylo, yhi []int64) {
	if len(word) == 0 {
		return
	}
	// x-average row (row index 0, first in the ascending row table).
	if len(t.gkey) > 0 && t.gkey[0] == 0 {
		glo, ghi := int(t.goff[0]), int(t.goff[1])
		for _, qi := range qis {
			bx := float64(xhi[qi]-xlo[qi]+1) / t.sqrtU
			t.pushRangeRow(sc, coefs, qi, glo, ghi, 0, bx, ylo[qi], yhi[qi])
		}
	}
	// x detail levels: the 1D boundary-walker merge join, against the
	// row-group table instead of a coefficient level.
	for j := uint(0); j < t.logu; j++ {
		shift := t.logu - j
		base := int64(1) << j
		rangeLen := t.u >> j
		w0 := word[0]
		k0 := xlo[w0>>1] >> shift
		if w0&1 != 0 {
			k0 = xhi[w0>>1] >> shift
		}
		first := base + k0
		cur := sort.Search(len(t.gkey), func(g int) bool { return t.gkey[g] >= first })
		for _, w := range word {
			qi := w >> 1
			lo, hi := xlo[qi], xhi[qi]
			var k int64
			if w&1 != 0 {
				k = hi >> shift
				if k == lo>>shift {
					continue
				}
			} else {
				k = lo >> shift
			}
			row := base + k
			for cur < len(t.gkey) && t.gkey[cur] < row {
				cur++
			}
			if cur == len(t.gkey) {
				break
			}
			if t.gkey[cur] != row {
				continue
			}
			start := k << shift
			mid := start + rangeLen/2
			end := start + rangeLen
			neg := overlap(lo, hi+1, start, mid)
			pos := overlap(lo, hi+1, mid, end)
			bx := float64(pos-neg) / t.sqrtLen[j]
			t.pushRangeRow(sc, coefs, qi, int(t.goff[cur]), int(t.goff[cur+1]), row*t.u, bx, ylo[qi], yhi[qi])
		}
	}
}

// BatchRanges answers n 2D range-sum queries at once: out[i] = RangeSum
// of [xlos[i], xhis[i]] × [ylos[i], yhis[i]], bit for bit, with the
// scalar path's per-axis clamp contract. All five slice lengths must
// match. Steady-state calls are allocation-free.
func (r *Representation2D) BatchRanges(xlos, xhis, ylos, yhis []int64, out []float64) {
	n := len(xlos)
	if len(xhis) != n || len(ylos) != n || len(yhis) != n || len(out) != n {
		panic("wavelet: BatchRanges slice length mismatch")
	}
	if r.tree == nil {
		for i := range xlos {
			out[i] = r.RangeSum(xlos[i], xhis[i], ylos[i], yhis[i])
		}
		return
	}
	r.tree.batchRanges(r.Coefs, xlos, xhis, ylos, yhis, out)
}

func (t *errTree2D) batchRanges(coefs []Coef, xlos, xhis, ylos, yhis []int64, out []float64) {
	n := len(xlos)
	if n == 0 {
		return
	}
	sc := batchScratchPool.Get().(*batchScratch)
	qis := t.clampRangeQueries2D(sc, xlos, xhis, ylos, yhis, out)
	sc.resetArena(n)
	word := buildBoundaryWalkers(sc, qis, sc.klo, sc.khi, t.u <= 1<<31)
	t.sweepRanges2D(sc, coefs, qis, word, sc.klo, sc.khi, sc.kylo, sc.kyhi)
	sc.finishFlat(qis, out)
	batchScratchPool.Put(sc)
}
