package wavelet

import (
	"slices"
	"sync"
)

// The vectorized batch executor.
//
// A scalar point estimate walks the query key's root-to-leaf ancestor
// path, binary-searching each error-tree level for the one coefficient
// index that can contribute — O(log u · log k) data-dependent loads per
// query. For a batch of n queries that search repeats per query, even
// though at level j the batch's n ancestor targets are a monotone
// function of the sorted keys and level j's coefficient indices are
// already stored sorted (errTree.ord / errTree.idxs).
//
// The batch executor exploits that: sort the query keys once, then sweep
// every level exactly once with a merge join — one forward cursor over
// the level's sorted index array, advanced monotonically as the sorted
// queries' ancestor targets increase. Each level costs O(n + k_level)
// sequential comparisons instead of n binary searches, ancestor targets
// come from shifts instead of divisions, and adjacent queries sharing an
// ancestor (the common case in the dense top levels) reuse the matched
// run without rescanning. Range queries walk the same sweep with two
// sorted boundary walkers per query (2n walkers), mirroring rangeSum's
// kLo/kHi probes including its "probe kHi only when it differs" dedup.
//
// # Bit-identical to the scalar path
//
// PointEstimate / RangeSum stay the oracle. Per query the sweep matches
// exactly the term multiset the scalar walk matches (same levels, same
// targets, same duplicate runs) and computes each term with the same
// arithmetic — precomputed ±1/sqrt and /sqrt factors that are bitwise
// equal to the scalar path's per-query derivations (math.Sqrt is
// correctly rounded, so caching a root changes nothing). Matched terms
// are collected per query in a linked-list arena and finished with the
// same sumByPos the scalar path uses; a query's matched coefficient
// positions are distinct, so the position-sorted summation order — and
// therefore every partial sum's rounding — is identical no matter what
// order the sweep discovered the terms in.
//
// All scratch state lives in a pooled arena, so steady-state batches
// allocate nothing.

// batchScratch is one batch's reusable state: the sorted query order,
// the per-query term linked lists (a flat arena + next pointers + per-
// query heads), clamped range bounds, and the sort buffer handed to
// sumByPos. Pooled; every slice is length-reset per use.
type batchScratch struct {
	qord  []int32   // in-domain query indexes, sorted by key
	word  []int32   // range boundary walkers (query<<1 | isHi), sorted by boundary
	pk    []int64   // packed key<<shift|index sort buffer (comparator-free sort)
	head  []int32   // per-query arena list head, -1 = no terms
	terms []posTerm // term arena
	next  []int32   // arena linked-list next pointers, parallel to terms
	buf   []posTerm // per-query collection buffer for sumByPos
	klo   []int64   // clamped range lows, indexed by query
	khi   []int64   // clamped range highs, indexed by query
}

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// resetHeads sizes head to n and fills it with -1.
func (sc *batchScratch) resetHeads(n int) {
	if cap(sc.head) < n {
		sc.head = make([]int32, n)
	}
	sc.head = sc.head[:n]
	for i := range sc.head {
		sc.head[i] = -1
	}
}

// push appends one matched term to query qi's list.
func (sc *batchScratch) push(qi int32, p int32, term float64) {
	sc.terms = append(sc.terms, posTerm{p, term})
	sc.next = append(sc.next, sc.head[qi])
	sc.head[qi] = int32(len(sc.terms) - 1)
}

// finish sums each listed query's terms in scan order into out.
func (sc *batchScratch) finish(order []int32, out []float64) {
	for _, qi := range order {
		buf := sc.buf[:0]
		for li := sc.head[qi]; li >= 0; li = sc.next[li] {
			buf = append(buf, sc.terms[li])
		}
		sc.buf = buf
		out[qi] = sumByPos(buf)
	}
}

// BatchPoints answers n point queries at once: out[i] = PointEstimate
// of xs[i], bit for bit. len(out) must equal len(xs). Keys may repeat
// and arrive in any order; keys outside [0, u) estimate 0, exactly as
// the scalar path does. Steady-state calls are allocation-free.
func (r *Representation) BatchPoints(xs []int64, out []float64) {
	if len(out) != len(xs) {
		panic("wavelet: BatchPoints slice length mismatch")
	}
	if r.tree == nil {
		for i, x := range xs {
			out[i] = r.PointEstimate(x)
		}
		return
	}
	r.tree.batchPoints(r.Coefs, xs, out)
}

func (t *errTree) batchPoints(coefs []Coef, xs []int64, out []float64) {
	n := len(xs)
	if n == 0 {
		return
	}
	sc := batchScratchPool.Get().(*batchScratch)
	sc.resetHeads(n)
	qord := sc.qord[:0]
	if t.u <= 1<<31 {
		// Comparator-free sort: pack key<<31|index into one int64 so
		// slices.Sort runs without closure calls. Equal keys tie-break
		// by index; per-query sums are order-independent (sumByPos
		// canonicalizes), so the result is still bit-identical.
		pk := sc.pk[:0]
		for i, x := range xs {
			out[i] = 0
			if x >= 0 && x < t.u {
				pk = append(pk, x<<31|int64(i))
			}
		}
		slices.Sort(pk)
		for _, v := range pk {
			qord = append(qord, int32(v&(1<<31-1)))
		}
		sc.pk = pk
	} else {
		for i, x := range xs {
			out[i] = 0
			if x >= 0 && x < t.u {
				qord = append(qord, int32(i))
			}
		}
		slices.SortFunc(qord, func(a, b int32) int {
			xa, xb := xs[a], xs[b]
			switch {
			case xa < xb:
				return -1
			case xa > xb:
				return 1
			}
			return 0
		})
	}
	sc.terms, sc.next = sc.terms[:0], sc.next[:0]

	// Level 0: every in-domain query matches the average coefficient(s).
	if s0, e0 := int(t.off[0]), int(t.off[1]); s0 < e0 {
		b := t.invSqrtU // == 1/math.Sqrt(float64(t.u)), the scalar factor
		for _, qi := range qord {
			for i := s0; i < e0; i++ {
				p := t.ord[i]
				sc.push(qi, p, coefs[p].Value*b)
			}
		}
	}

	// Detail levels: one merge join per level. A query's ancestor target
	// at detail level j is 2^j + x>>(logu-j) — non-decreasing in sorted
	// key order — so a single forward cursor replaces per-query searches.
	for j := uint(0); j < t.logu; j++ {
		s, e := int(t.off[j+1]), int(t.off[j+2])
		if s == e {
			continue
		}
		shift := t.logu - j // rangeLen = 1<<shift
		base := int64(1) << j
		val := t.invSqrtLen[j]
		cur := s
		for _, qi := range qord {
			x := xs[qi]
			target := base + x>>shift
			for cur < e && t.idxs[cur] < target {
				cur++
			}
			if cur == e {
				break // later queries have even larger targets
			}
			if t.idxs[cur] != target {
				continue
			}
			// basisAtLevel's sign: negative iff x mod rangeLen lands in
			// the first half, i.e. bit shift-1 of x is clear.
			b := val
			if x>>(shift-1)&1 == 0 {
				b = -val
			}
			// The cursor stays at the run start so a following query with
			// the same ancestor rematches it without rescanning.
			for m := cur; m < e && t.idxs[m] == target; m++ {
				p := t.ord[m]
				sc.push(qi, p, coefs[p].Value*b)
			}
		}
	}

	sc.finish(qord, out)
	sc.qord = qord
	batchScratchPool.Put(sc)
}

// BatchRanges answers n range-sum queries at once: out[i] = RangeSum of
// [los[i], his[i]], bit for bit, with the scalar path's clamp contract
// (bounds clamped to the domain, empty intersection estimates 0).
// len(los), len(his) and len(out) must match. Steady-state calls are
// allocation-free.
func (r *Representation) BatchRanges(los, his []int64, out []float64) {
	if len(his) != len(los) || len(out) != len(los) {
		panic("wavelet: BatchRanges slice length mismatch")
	}
	if r.tree == nil {
		for i := range los {
			out[i] = r.RangeSum(los[i], his[i])
		}
		return
	}
	r.tree.batchRanges(r.Coefs, los, his, out)
}

func (t *errTree) batchRanges(coefs []Coef, los, his []int64, out []float64) {
	n := len(los)
	if n == 0 {
		return
	}
	sc := batchScratchPool.Get().(*batchScratch)
	sc.resetHeads(n)
	if cap(sc.klo) < n {
		sc.klo = make([]int64, n)
		sc.khi = make([]int64, n)
	}
	klo, khi := sc.klo[:n], sc.khi[:n]
	// Clamp per query; non-empty ranges contribute two boundary walkers
	// (query<<1 for lo, query<<1|1 for hi), sorted by boundary key so each
	// level's walker targets are monotone.
	word := sc.word[:0]
	if t.u <= 1<<31 {
		// Same comparator-free packed sort as batchPoints: boundary
		// key<<31 over the walker id (query<<1|isHi) in the low bits.
		pk := sc.pk[:0]
		for i := 0; i < n; i++ {
			out[i] = 0
			lo, hi := los[i], his[i]
			if lo < 0 {
				lo = 0
			}
			if hi >= t.u {
				hi = t.u - 1
			}
			if lo > hi {
				continue
			}
			klo[i], khi[i] = lo, hi
			pk = append(pk, lo<<31|int64(i)<<1, hi<<31|int64(i)<<1|1)
		}
		slices.Sort(pk)
		for _, v := range pk {
			word = append(word, int32(v&(1<<31-1)))
		}
		sc.pk = pk
	} else {
		for i := 0; i < n; i++ {
			out[i] = 0
			lo, hi := los[i], his[i]
			if lo < 0 {
				lo = 0
			}
			if hi >= t.u {
				hi = t.u - 1
			}
			if lo > hi {
				continue
			}
			klo[i], khi[i] = lo, hi
			word = append(word, int32(i)<<1, int32(i)<<1|1)
		}
		slices.SortFunc(word, func(a, b int32) int {
			ka, kb := klo[a>>1], klo[b>>1]
			if a&1 != 0 {
				ka = khi[a>>1]
			}
			if b&1 != 0 {
				kb = khi[b>>1]
			}
			switch {
			case ka < kb:
				return -1
			case ka > kb:
				return 1
			}
			return 0
		})
	}
	sc.terms, sc.next = sc.terms[:0], sc.next[:0]

	// Level 0: every active query (enumerated by its lo walker) matches
	// the average coefficient(s) with the scalar factor (hi-lo+1)/sqrt(u).
	if s0, e0 := int(t.off[0]), int(t.off[1]); s0 < e0 {
		for _, w := range word {
			if w&1 != 0 {
				continue
			}
			qi := w >> 1
			b := float64(khi[qi]-klo[qi]+1) / t.sqrtU
			for i := s0; i < e0; i++ {
				p := t.ord[i]
				sc.push(qi, p, coefs[p].Value*b)
			}
		}
	}

	// Detail levels: merge join of sorted boundary walkers against the
	// level's index array, mirroring rangeSum — the lo walker always
	// probes its dyadic cell, the hi walker only when it differs (the
	// scalar path's double-count guard).
	for j := uint(0); j < t.logu; j++ {
		s, e := int(t.off[j+1]), int(t.off[j+2])
		if s == e {
			continue
		}
		shift := t.logu - j
		base := int64(1) << j
		rangeLen := t.u >> j
		sq := t.sqrtLen[j]
		cur := s
		for _, w := range word {
			qi := w >> 1
			lo, hi := klo[qi], khi[qi]
			var k int64
			if w&1 != 0 {
				k = hi >> shift
				if k == lo>>shift {
					continue
				}
			} else {
				k = lo >> shift
			}
			target := base + k
			for cur < e && t.idxs[cur] < target {
				cur++
			}
			if cur == e {
				break
			}
			if t.idxs[cur] != target {
				continue
			}
			// appendRangeTerms' arithmetic, with the cached level root.
			start := k << shift
			mid := start + rangeLen/2
			end := start + rangeLen
			neg := overlap(lo, hi+1, start, mid)
			pos := overlap(lo, hi+1, mid, end)
			b := float64(pos-neg) / sq
			for m := cur; m < e && t.idxs[m] == target; m++ {
				p := t.ord[m]
				sc.push(qi, p, coefs[p].Value*b)
			}
		}
	}

	// Sum each active query once (its lo walker).
	for _, w := range word {
		if w&1 != 0 {
			continue
		}
		qi := w >> 1
		buf := sc.buf[:0]
		for li := sc.head[qi]; li >= 0; li = sc.next[li] {
			buf = append(buf, sc.terms[li])
		}
		sc.buf = buf
		out[qi] = sumByPos(buf)
	}
	sc.word = word
	batchScratchPool.Put(sc)
}

// BatchPoints answers n 2D point queries at once: out[i] = PointEstimate
// of (xs[i], ys[i]), bit for bit. len(xs), len(ys) and len(out) must
// match; off-grid cells estimate 0. Steady-state calls are
// allocation-free.
func (r *Representation2D) BatchPoints(xs, ys []int64, out []float64) {
	if len(ys) != len(xs) || len(out) != len(xs) {
		panic("wavelet: BatchPoints slice length mismatch")
	}
	if r.tree == nil {
		for i := range xs {
			out[i] = r.PointEstimate(xs[i], ys[i])
		}
		return
	}
	r.tree.batchPoints(r.Coefs, xs, ys, out)
}

func (t *errTree2D) batchPoints(coefs []Coef, xs, ys []int64, out []float64) {
	n := len(xs)
	if n == 0 {
		return
	}
	sc := batchScratchPool.Get().(*batchScratch)
	sc.resetHeads(n)
	qord := sc.qord[:0]
	for i := range xs {
		out[i] = 0
		if xs[i] >= 0 && xs[i] < t.u && ys[i] >= 0 && ys[i] < t.u {
			qord = append(qord, int32(i))
		}
	}
	// Sort by (x, y): queries sharing an x-run compute the x ancestor path
	// once, and within a run the ascending y keys make each (x-level,
	// y-level) pair's packed targets monotone for the merge join.
	slices.SortFunc(qord, func(a, b int32) int {
		switch {
		case xs[a] < xs[b]:
			return -1
		case xs[a] > xs[b]:
			return 1
		case ys[a] < ys[b]:
			return -1
		case ys[a] > ys[b]:
			return 1
		}
		return 0
	})
	sc.terms, sc.next = sc.terms[:0], sc.next[:0]

	// Per-x-level cursors into the row-group table: for a fixed x-level a,
	// the row index xi[a] is non-decreasing as x increases, so each
	// cursor only moves forward across the whole batch.
	var gcur [66]int
	var xi [64]int64
	var xb [64]float64
	nq := len(qord)
	for i := 0; i < nq; {
		x := xs[qord[i]]
		j := i + 1
		for j < nq && xs[qord[j]] == x {
			j++
		}
		run := qord[i:j]
		nx := t.ancestorPaths(x, &xi, &xb)
		for a := 0; a < nx; a++ {
			for gcur[a] < len(t.gkey) && t.gkey[gcur[a]] < xi[a] {
				gcur[a]++
			}
			if gcur[a] == len(t.gkey) || t.gkey[gcur[a]] != xi[a] {
				continue
			}
			g := gcur[a]
			glo, ghi := int(t.goff[g]), int(t.goff[g+1])
			base := xi[a] * t.u
			bxa := xb[a]
			// One merge join per y-level within this row group; the run's
			// ascending y keys keep each join's targets monotone.
			for b := uint(0); b <= t.logu; b++ {
				cur := glo
				for _, qi := range run {
					y := ys[qi]
					var target int64
					var by float64
					if b == 0 {
						target = base
						by = t.invSqrtU
					} else {
						jj := b - 1
						shift := t.logu - jj
						target = base + int64(1)<<jj + y>>shift
						by = t.invSqrtLen[jj]
						if y>>(shift-1)&1 == 0 {
							by = -by
						}
					}
					for cur < ghi && t.idxs[cur] < target {
						cur++
					}
					if cur == ghi {
						break
					}
					if t.idxs[cur] != target {
						continue
					}
					bv := bxa * by
					for m := cur; m < ghi && t.idxs[m] == target; m++ {
						p := t.ord[m]
						sc.push(qi, p, coefs[p].Value*bv)
					}
				}
			}
		}
		i = j
	}

	sc.finish(qord, out)
	sc.qord = qord
	batchScratchPool.Put(sc)
}
