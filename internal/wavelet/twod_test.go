package wavelet

import (
	"math"
	"testing"

	"wavelethist/internal/zipf"
)

func randomGrid(r *zipf.RNG, u int64) [][]float64 {
	v := make([][]float64, u)
	for x := range v {
		v[x] = make([]float64, u)
		for y := range v[x] {
			v[x][y] = math.Floor(r.Float64() * 10)
		}
	}
	return v
}

func TestTransform2DRoundTrip(t *testing.T) {
	r := zipf.NewRNG(20)
	for _, u := range []int64{1, 2, 4, 16} {
		v := randomGrid(r, u)
		got := Inverse2D(Transform2D(v))
		for x := range v {
			for y := range v[x] {
				if !almostEq(v[x][y], got[x][y], 1e-9) {
					t.Fatalf("u=%d round trip differs at (%d,%d)", u, x, y)
				}
			}
		}
	}
}

// 2D transform equals tensor-product basis dot products.
func TestTransform2DMatchesTensorBasis(t *testing.T) {
	r := zipf.NewRNG(21)
	const u = 8
	v := randomGrid(r, u)
	w := Transform2D(v)
	for i := int64(0); i < u; i++ {
		for j := int64(0); j < u; j++ {
			var dot float64
			for x := int64(0); x < u; x++ {
				for y := int64(0); y < u; y++ {
					dot += v[x][y] * BasisAt(i, x, u) * BasisAt(j, y, u)
				}
			}
			if !almostEq(w[i][j], dot, 1e-9) {
				t.Errorf("W[%d][%d] = %v, want %v", i, j, w[i][j], dot)
			}
		}
	}
}

func TestTransform2DEnergy(t *testing.T) {
	r := zipf.NewRNG(22)
	const u = 16
	v := randomGrid(r, u)
	w := Transform2D(v)
	var ev, ew float64
	for x := range v {
		ev += Energy(v[x])
		ew += Energy(w[x])
	}
	if !almostEq(ev, ew, 1e-9) {
		t.Errorf("2D energy not preserved: %v vs %v", ev, ew)
	}
}

func TestSparseTransform2DMatchesDense(t *testing.T) {
	r := zipf.NewRNG(23)
	const u = 8
	freq := make(map[int64]float64)
	v := randomGrid(r, u)
	// Make it sparse-ish but nontrivial.
	for x := int64(0); x < u; x++ {
		for y := int64(0); y < u; y++ {
			if r.Float64() < 0.6 {
				v[x][y] = 0
			}
			if v[x][y] != 0 {
				freq[Key2D(x, y, u)] = v[x][y]
			}
		}
	}
	wDense := Transform2D(v)
	wSparse := SparseTransform2D(freq, u)
	for i := int64(0); i < u; i++ {
		for j := int64(0); j < u; j++ {
			if !almostEq(wDense[i][j], wSparse[Key2D(i, j, u)], 1e-9) {
				t.Fatalf("coef (%d,%d): dense %v sparse %v",
					i, j, wDense[i][j], wSparse[Key2D(i, j, u)])
			}
		}
	}
}

// 2D linearity: coefficients of a sum are sums of coefficients — the
// property H-WTopk relies on in 2D (Section 3, multi-dimensional).
func TestTransform2DLinearity(t *testing.T) {
	r := zipf.NewRNG(24)
	const u = 8
	a, b := randomGrid(r, u), randomGrid(r, u)
	sum := make([][]float64, u)
	for x := range sum {
		sum[x] = make([]float64, u)
		for y := range sum[x] {
			sum[x][y] = a[x][y] + b[x][y]
		}
	}
	wa, wb, ws := Transform2D(a), Transform2D(b), Transform2D(sum)
	for i := range ws {
		for j := range ws[i] {
			if !almostEq(ws[i][j], wa[i][j]+wb[i][j], 1e-9) {
				t.Fatalf("2D linearity fails at (%d,%d)", i, j)
			}
		}
	}
}

func TestKey2DRoundTrip(t *testing.T) {
	const u = 64
	for _, xy := range [][2]int64{{0, 0}, {5, 9}, {63, 63}, {1, 62}} {
		k := Key2D(xy[0], xy[1], u)
		x, y := SplitKey2D(k, u)
		if x != xy[0] || y != xy[1] {
			t.Errorf("round trip (%d,%d) -> %d -> (%d,%d)", xy[0], xy[1], k, x, y)
		}
	}
}

func TestRepresentation2DReconstruct(t *testing.T) {
	r := zipf.NewRNG(25)
	const u = 8
	v := randomGrid(r, u)
	w := Transform2D(v)
	// Retain everything: reconstruction must be exact.
	coefs := make([]Coef, 0, u*u)
	for i := int64(0); i < u; i++ {
		for j := int64(0); j < u; j++ {
			if w[i][j] != 0 {
				coefs = append(coefs, Coef{Index: Key2D(i, j, u), Value: w[i][j]})
			}
		}
	}
	rep := NewRepresentation2D(u, coefs)
	got := rep.Reconstruct()
	for x := range v {
		for y := range v[x] {
			if !almostEq(v[x][y], got[x][y], 1e-8) {
				t.Fatalf("full 2D reconstruction differs at (%d,%d): %v vs %v",
					x, y, got[x][y], v[x][y])
			}
		}
	}
	// Point estimates agree with the dense reconstruction.
	for x := int64(0); x < u; x++ {
		for y := int64(0); y < u; y++ {
			if !almostEq(got[x][y], rep.PointEstimate(x, y), 1e-9) {
				t.Fatalf("2D point estimate differs at (%d,%d)", x, y)
			}
		}
	}
}

func TestSSE2D(t *testing.T) {
	a := [][]float64{{1, 2}, {3, 4}}
	b := [][]float64{{1, 0}, {0, 4}}
	if got := SSE2D(a, b); got != 4+9 {
		t.Errorf("SSE2D = %v, want 13", got)
	}
}

func BenchmarkTransformDense(b *testing.B) {
	r := zipf.NewRNG(1)
	v := make([]float64, 1<<16)
	for i := range v {
		v[i] = r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Transform(v)
	}
}

func BenchmarkSparseTransform(b *testing.B) {
	r := zipf.NewRNG(2)
	freq := make(map[int64]float64)
	for i := 0; i < 4096; i++ {
		freq[r.Int63n(1<<26)] += 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SparseTransform(freq, 1<<26)
	}
}
