package wavelet

import (
	"runtime"
	"slices"
	"sync"
)

// Parallel batch executors.
//
// The vectorized sweeps in batch.go are embarrassingly parallel across
// contiguous segments of the sorted query order: a level's forward
// cursor depends only on the monotone targets it has already passed, so
// a sweep restricted to queries [a, b) of the sorted batch — with its
// cursor binary-searched to query a's target — matches exactly the runs
// the full sweep matches for those queries. The parallel executors
// exploit that: sort (or clamp) once on the calling goroutine, split the
// active queries into per-worker contiguous segments, and run the
// ordinary segment sweep on each worker with its own pooled arena.
//
// Bit-identity is inherited, not re-argued: every worker runs the same
// sweep code over the same sorted sub-slice it would occupy in the
// serial order, pushes into a private arena, and finishes its own
// queries with the same position-ordered sumByPos. Workers write
// disjoint out[i] slots (a query lives in exactly one segment), so the
// fan-out is race-free by construction.
//
// Range batches are segmented by query (sorted by clamped lo bound), not
// by walker: both of a query's boundary walkers must land in the same
// worker, which rebuilds and sorts its segment's walker list privately.

// parMinPerWorker is the minimum sorted-segment size worth a goroutine;
// below it the fan-out overhead (scratch reset is O(n) per worker)
// outweighs the sweep work.
const parMinPerWorker = 64

// resolveWorkers maps a caller's worker request onto a batch of n
// queries: explicit requests are honored (capped at n), and workers <= 0
// asks for the automatic policy — GOMAXPROCS workers, reduced so every
// worker gets at least parMinPerWorker queries.
func resolveWorkers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if max := (n + parMinPerWorker - 1) / parMinPerWorker; workers > max {
			workers = max
		}
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// fanOut runs sweep over per-worker contiguous segments of the sorted
// active-query list and blocks until all segments finish.
func fanOut(workers int, qord []int32, sweep func(seg []int32)) {
	nq := len(qord)
	if workers > nq {
		workers = nq
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		seg := qord[nq*w/workers : nq*(w+1)/workers]
		if len(seg) == 0 {
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			sweep(seg)
		}()
	}
	wg.Wait()
}

// sortActiveByLo reorders qis by each query's clamped lo bound so
// contiguous segments cover contiguous key ranges, using the same
// comparator-free packed sort as the point path when the domain permits.
func sortActiveByLo(sc *batchScratch, qis []int32, klo []int64, packed bool) {
	if packed {
		pk := sc.pk[:0]
		for _, qi := range qis {
			pk = append(pk, klo[qi]<<31|int64(qi))
		}
		slices.Sort(pk)
		for i, v := range pk {
			qis[i] = int32(v & (1<<31 - 1))
		}
		sc.pk = pk
		return
	}
	slices.SortFunc(qis, func(a, b int32) int {
		ka, kb := klo[a], klo[b]
		switch {
		case ka < kb:
			return -1
		case ka > kb:
			return 1
		}
		return 0
	})
}

// BatchPointsParallel is BatchPoints fanned across a bounded worker
// pool: the batch is sorted once, split into per-worker contiguous key
// segments, and each segment swept independently. out is bit-identical
// to BatchPoints (and so to n scalar PointEstimate calls) for every
// worker count. workers <= 0 selects GOMAXPROCS capped so each worker
// keeps a useful segment; workers == 1 (or a tree-less representation)
// runs the serial path.
func (r *Representation) BatchPointsParallel(xs []int64, out []float64, workers int) {
	if len(out) != len(xs) {
		panic("wavelet: BatchPointsParallel slice length mismatch")
	}
	workers = resolveWorkers(workers, len(xs))
	if r.tree == nil || workers <= 1 {
		r.BatchPoints(xs, out)
		return
	}
	r.tree.batchPointsParallel(r.Coefs, xs, out, workers)
}

func (t *errTree) batchPointsParallel(coefs []Coef, xs []int64, out []float64, workers int) {
	n := len(xs)
	psc := batchScratchPool.Get().(*batchScratch)
	qord := t.sortPointQueries(psc, xs, out)
	fanOut(workers, qord, func(seg []int32) {
		sc := batchScratchPool.Get().(*batchScratch)
		sc.resetArena(n)
		t.sweepPoints(sc, coefs, xs, seg)
		sc.finishFlat(seg, out)
		batchScratchPool.Put(sc)
	})
	batchScratchPool.Put(psc)
}

// BatchRangesParallel is BatchRanges fanned across a bounded worker
// pool. Segmentation is per query (sorted by clamped lo bound) so both
// of a query's boundary walkers stay on one worker; results are
// bit-identical to BatchRanges for every worker count.
func (r *Representation) BatchRangesParallel(los, his []int64, out []float64, workers int) {
	if len(his) != len(los) || len(out) != len(los) {
		panic("wavelet: BatchRangesParallel slice length mismatch")
	}
	workers = resolveWorkers(workers, len(los))
	if r.tree == nil || workers <= 1 {
		r.BatchRanges(los, his, out)
		return
	}
	r.tree.batchRangesParallel(r.Coefs, los, his, out, workers)
}

func (t *errTree) batchRangesParallel(coefs []Coef, los, his []int64, out []float64, workers int) {
	n := len(los)
	psc := batchScratchPool.Get().(*batchScratch)
	qis := clampRangeQueries(psc, t.u, los, his, out)
	packed := t.u <= 1<<31
	sortActiveByLo(psc, qis, psc.klo, packed)
	klo, khi := psc.klo, psc.khi
	fanOut(workers, qis, func(seg []int32) {
		sc := batchScratchPool.Get().(*batchScratch)
		sc.resetArena(n)
		word := buildBoundaryWalkers(sc, seg, klo, khi, packed)
		t.sweepRangeLevels(sc, coefs, seg, word, klo, khi)
		sc.finishFlat(seg, out)
		batchScratchPool.Put(sc)
	})
	batchScratchPool.Put(psc)
}

// BatchPointsParallel is the 2D BatchPoints fanned across a bounded
// worker pool over contiguous (x, y)-sorted segments; bit-identical to
// the serial path for every worker count.
func (r *Representation2D) BatchPointsParallel(xs, ys []int64, out []float64, workers int) {
	if len(ys) != len(xs) || len(out) != len(xs) {
		panic("wavelet: BatchPointsParallel slice length mismatch")
	}
	workers = resolveWorkers(workers, len(xs))
	if r.tree == nil || workers <= 1 {
		r.BatchPoints(xs, ys, out)
		return
	}
	r.tree.batchPointsParallel(r.Coefs, xs, ys, out, workers)
}

func (t *errTree2D) batchPointsParallel(coefs []Coef, xs, ys []int64, out []float64, workers int) {
	n := len(xs)
	psc := batchScratchPool.Get().(*batchScratch)
	qord := t.sortPointQueries2D(psc, xs, ys, out)
	fanOut(workers, qord, func(seg []int32) {
		sc := batchScratchPool.Get().(*batchScratch)
		sc.resetArena(n)
		t.sweepPoints2D(sc, coefs, xs, ys, seg)
		sc.finishFlat(seg, out)
		batchScratchPool.Put(sc)
	})
	batchScratchPool.Put(psc)
}

// BatchRangesParallel is the 2D BatchRanges fanned across a bounded
// worker pool over x-lo-sorted query segments; bit-identical to the
// serial path for every worker count.
func (r *Representation2D) BatchRangesParallel(xlos, xhis, ylos, yhis []int64, out []float64, workers int) {
	n := len(xlos)
	if len(xhis) != n || len(ylos) != n || len(yhis) != n || len(out) != n {
		panic("wavelet: BatchRangesParallel slice length mismatch")
	}
	workers = resolveWorkers(workers, n)
	if r.tree == nil || workers <= 1 {
		r.BatchRanges(xlos, xhis, ylos, yhis, out)
		return
	}
	r.tree.batchRangesParallel(r.Coefs, xlos, xhis, ylos, yhis, out, workers)
}

func (t *errTree2D) batchRangesParallel(coefs []Coef, xlos, xhis, ylos, yhis []int64, out []float64, workers int) {
	n := len(xlos)
	psc := batchScratchPool.Get().(*batchScratch)
	qis := t.clampRangeQueries2D(psc, xlos, xhis, ylos, yhis, out)
	packed := t.u <= 1<<31
	sortActiveByLo(psc, qis, psc.klo, packed)
	klo, khi, kylo, kyhi := psc.klo, psc.khi, psc.kylo, psc.kyhi
	fanOut(workers, qis, func(seg []int32) {
		sc := batchScratchPool.Get().(*batchScratch)
		sc.resetArena(n)
		word := buildBoundaryWalkers(sc, seg, klo, khi, packed)
		t.sweepRanges2D(sc, coefs, seg, word, klo, khi, kylo, kyhi)
		sc.finishFlat(seg, out)
		batchScratchPool.Put(sc)
	})
	batchScratchPool.Put(psc)
}
