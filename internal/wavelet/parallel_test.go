package wavelet

import (
	"math"
	"testing"

	"wavelethist/internal/zipf"
)

// randomRep2D builds a randomized 2D representation with duplicate and
// exact-zero coefficients, mirroring randomRep.
func randomRep2D(r *zipf.RNG, u int64, k int) *Representation2D {
	coefs := make([]Coef, 0, k)
	for i := 0; i < k; i++ {
		idx := r.Int63n(u * u)
		if i > 0 && r.Bernoulli(0.15) {
			idx = coefs[r.Int63n(int64(len(coefs)))].Index
		}
		v := (r.Float64() - 0.5) * 1000
		if r.Bernoulli(0.05) {
			v = 0
		}
		coefs = append(coefs, Coef{Index: idx, Value: v})
	}
	return NewRepresentation2D(u, coefs)
}

// workerGrid is the worker counts every parallel equivalence property
// runs at: serial, small fan-outs that leave segment boundaries inside
// duplicate runs, and more workers than most batches have queries.
var workerGrid = []int{1, 2, 3, 8}

// TestBatchPointsParallelMatchesScalar is the parallel half of the
// tentpole equivalence property: for every worker count, a batch of
// duplicated / unsorted / partly out-of-domain keys must answer
// bit-identically to both the serial vectorized walk and the scalar
// oracle.
func TestBatchPointsParallelMatchesScalar(t *testing.T) {
	r := zipf.NewRNG(31)
	for _, u := range []int64{1, 4, 64, 1 << 12, 1 << 20} {
		for _, k := range []int{0, 1, 64, 1024} {
			rep := randomRep(r, u, k)
			for _, n := range []int{0, 1, 5, 129, 1024} {
				xs := make([]int64, 0, n)
				for len(xs) < n {
					switch {
					case r.Bernoulli(0.1):
						xs = append(xs, r.Int63n(3*u)-u)
					case len(xs) > 0 && r.Bernoulli(0.2):
						xs = append(xs, xs[r.Int63n(int64(len(xs)))])
					default:
						xs = append(xs, r.Int63n(u))
					}
				}
				serial := make([]float64, n)
				rep.BatchPoints(xs, serial)
				out := make([]float64, n)
				for _, w := range workerGrid {
					rep.BatchPointsParallel(xs, out, w)
					for i := range xs {
						if !bitEq(out[i], serial[i]) {
							t.Fatalf("u=%d k=%d n=%d w=%d: parallel[%d] = %x, serial %x",
								u, k, n, w, i, math.Float64bits(out[i]), math.Float64bits(serial[i]))
						}
						if want := rep.PointEstimate(xs[i]); !bitEq(out[i], want) {
							t.Fatalf("u=%d k=%d n=%d w=%d: parallel[%d] = %x, scalar %x",
								u, k, n, w, i, math.Float64bits(out[i]), math.Float64bits(want))
						}
					}
				}
				rep.BatchPointsParallel(xs, out, 0) // automatic worker policy
				for i := range xs {
					if !bitEq(out[i], serial[i]) {
						t.Fatalf("u=%d k=%d n=%d auto: parallel[%d] = %x, serial %x",
							u, k, n, i, math.Float64bits(out[i]), math.Float64bits(serial[i]))
					}
				}
			}
		}
	}
}

// TestBatchRangesParallelMatchesScalar covers per-query segmentation of
// the two-walker range sweep: both walkers of a query must travel
// together, for every worker count, under clamped / inverted / empty
// bounds.
func TestBatchRangesParallelMatchesScalar(t *testing.T) {
	r := zipf.NewRNG(32)
	for _, u := range []int64{1, 2, 64, 1 << 12, 1 << 20} {
		for _, k := range []int{0, 1, 64, 512} {
			rep := randomRep(r, u, k)
			n := 300
			los := make([]int64, n)
			his := make([]int64, n)
			for i := 0; i < n; i++ {
				switch {
				case i < 8:
					edge := [][2]int64{
						{0, u - 1}, {0, 0}, {u - 1, u - 1}, {5, 2},
						{-100, u + 50}, {-10, -5}, {u, u + 100},
						{math.MinInt64, math.MaxInt64},
					}[i]
					los[i], his[i] = edge[0], edge[1]
				case r.Bernoulli(0.3):
					lo := r.Int63n(u)
					los[i], his[i] = lo, lo+r.Int63n(4)
				default:
					los[i] = r.Int63n(3*u) - u
					his[i] = r.Int63n(3*u) - u
				}
			}
			serial := make([]float64, n)
			rep.BatchRanges(los, his, serial)
			out := make([]float64, n)
			for _, w := range workerGrid {
				rep.BatchRangesParallel(los, his, out, w)
				for i := range los {
					if !bitEq(out[i], serial[i]) {
						t.Fatalf("u=%d k=%d w=%d: parallel[%d] (%d,%d) = %x, serial %x",
							u, k, w, i, los[i], his[i], math.Float64bits(out[i]), math.Float64bits(serial[i]))
					}
					if want := rep.RangeSum(los[i], his[i]); !bitEq(out[i], want) {
						t.Fatalf("u=%d k=%d w=%d: parallel[%d] (%d,%d) = %x, scalar %x",
							u, k, w, i, los[i], his[i], math.Float64bits(out[i]), math.Float64bits(want))
					}
				}
			}
		}
	}
}

// TestBatch2DRangeSumMatchesScan pins the new scalar 2D range engine:
// the tensor-candidate walk must reproduce the O(k) scan bit for bit,
// including clamped, inverted, single-cell, and full-grid rectangles.
func TestBatch2DRangeSumMatchesScan(t *testing.T) {
	r := zipf.NewRNG(33)
	for _, u := range []int64{1, 2, 16, 256, 1 << 10} {
		for _, k := range []int{0, 1, 40, 300} {
			rep := randomRep2D(r, u, k)
			type rect struct{ xlo, xhi, ylo, yhi int64 }
			cases := []rect{
				{0, u - 1, 0, u - 1},
				{0, 0, 0, 0},
				{u - 1, u - 1, u - 1, u - 1},
				{5, 2, 0, u - 1}, // empty x
				{0, u - 1, 7, 3}, // empty y
				{-100, u + 50, -100, u + 50},
				{u, u + 10, 0, u - 1},
				{math.MinInt64, math.MaxInt64, math.MinInt64, math.MaxInt64},
			}
			for i := 0; i < 200; i++ {
				cases = append(cases, rect{
					r.Int63n(3*u) - u, r.Int63n(3*u) - u,
					r.Int63n(3*u) - u, r.Int63n(3*u) - u,
				})
			}
			for _, c := range cases {
				got := rep.RangeSum(c.xlo, c.xhi, c.ylo, c.yhi)
				want := rep.ScanRangeSum(c.xlo, c.xhi, c.ylo, c.yhi)
				if !bitEq(got, want) {
					t.Fatalf("u=%d k=%d RangeSum(%d,%d,%d,%d) = %x, scan %x",
						u, k, c.xlo, c.xhi, c.ylo, c.yhi, math.Float64bits(got), math.Float64bits(want))
				}
			}
		}
	}
}

// TestBatch2DRangesMatchesScalar covers the vectorized 2D range sweep
// (x-axis walkers over the row table, y candidates per matched row) and
// its parallel fan-out against the scalar engine.
func TestBatch2DRangesMatchesScalar(t *testing.T) {
	r := zipf.NewRNG(34)
	for _, u := range []int64{1, 2, 16, 256, 1 << 10} {
		for _, k := range []int{0, 1, 40, 300} {
			rep := randomRep2D(r, u, k)
			n := 180
			xlos := make([]int64, n)
			xhis := make([]int64, n)
			ylos := make([]int64, n)
			yhis := make([]int64, n)
			for i := 0; i < n; i++ {
				xlos[i] = r.Int63n(3*u) - u
				xhis[i] = r.Int63n(3*u) - u
				ylos[i] = r.Int63n(3*u) - u
				yhis[i] = r.Int63n(3*u) - u
				if r.Bernoulli(0.25) { // narrow rectangles inside one cell pair
					xlos[i] = r.Int63n(u)
					xhis[i] = xlos[i] + r.Int63n(3)
					ylos[i] = r.Int63n(u)
					yhis[i] = ylos[i] + r.Int63n(3)
				}
			}
			out := make([]float64, n)
			rep.BatchRanges(xlos, xhis, ylos, yhis, out)
			for i := range xlos {
				if want := rep.RangeSum(xlos[i], xhis[i], ylos[i], yhis[i]); !bitEq(out[i], want) {
					t.Fatalf("u=%d k=%d: BatchRanges[%d] = %x, scalar %x",
						u, k, i, math.Float64bits(out[i]), math.Float64bits(want))
				}
			}
			par := make([]float64, n)
			for _, w := range workerGrid {
				rep.BatchRangesParallel(xlos, xhis, ylos, yhis, par, w)
				for i := range xlos {
					if !bitEq(par[i], out[i]) {
						t.Fatalf("u=%d k=%d w=%d: parallel 2D BatchRanges[%d] = %x, serial %x",
							u, k, w, i, math.Float64bits(par[i]), math.Float64bits(out[i]))
					}
				}
			}
		}
	}
}

// TestBatchPoints2DParallelMatchesSerial covers segment boundaries that
// split shared-x runs: every worker count must reproduce the serial 2D
// point sweep bit for bit.
func TestBatchPoints2DParallelMatchesSerial(t *testing.T) {
	r := zipf.NewRNG(35)
	for _, u := range []int64{1, 16, 256, 1 << 10} {
		rep := randomRep2D(r, u, 200)
		n := 500
		xs := make([]int64, n)
		ys := make([]int64, n)
		for i := 0; i < n; i++ {
			xs[i] = r.Int63n(3*u) - u
			ys[i] = r.Int63n(3*u) - u
			if i > 0 && r.Bernoulli(0.4) {
				xs[i] = xs[r.Int63n(int64(i))] // long shared-x runs
			}
		}
		serial := make([]float64, n)
		rep.BatchPoints(xs, ys, serial)
		out := make([]float64, n)
		for _, w := range workerGrid {
			rep.BatchPointsParallel(xs, ys, out, w)
			for i := range xs {
				if !bitEq(out[i], serial[i]) {
					t.Fatalf("u=%d w=%d: parallel 2D BatchPoints[%d] = %x, serial %x",
						u, w, i, math.Float64bits(out[i]), math.Float64bits(serial[i]))
				}
			}
		}
	}
}

// TestBatchPointsLinkedArenaMatches pins the benchmark baseline: the
// retained linked-list finisher must still agree with the flat arena.
func TestBatchPointsLinkedArenaMatches(t *testing.T) {
	r := zipf.NewRNG(36)
	for _, u := range []int64{1, 64, 1 << 16} {
		rep := randomRep(r, u, 512)
		n := 300
		xs := make([]int64, n)
		for i := range xs {
			xs[i] = r.Int63n(3*u) - u
		}
		flat := make([]float64, n)
		linked := make([]float64, n)
		rep.BatchPoints(xs, flat)
		rep.BatchPointsLinkedArena(xs, linked)
		for i := range xs {
			if !bitEq(flat[i], linked[i]) {
				t.Fatalf("u=%d: linked arena [%d] = %x, flat %x",
					u, i, math.Float64bits(linked[i]), math.Float64bits(flat[i]))
			}
		}
	}
}

// TestBatch2DAllocationFree extends the steady-state pool property to
// the new 2D range executor.
func TestBatch2DAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation makes sync.Pool allocate")
	}
	r := zipf.NewRNG(37)
	const u = 1 << 10
	rep := randomRep2D(r, u, 512)
	n := 256
	xlos := make([]int64, n)
	xhis := make([]int64, n)
	ylos := make([]int64, n)
	yhis := make([]int64, n)
	for i := 0; i < n; i++ {
		xlos[i] = r.Int63n(u)
		xhis[i] = xlos[i] + r.Int63n(u/4)
		ylos[i] = r.Int63n(u)
		yhis[i] = ylos[i] + r.Int63n(u/4)
	}
	out := make([]float64, n)
	rep.BatchRanges(xlos, xhis, ylos, yhis, out) // warm the pool
	if a := testing.AllocsPerRun(100, func() { rep.BatchRanges(xlos, xhis, ylos, yhis, out) }); a != 0 {
		t.Errorf("2D BatchRanges allocates %v per call, want 0", a)
	}
}

// FuzzBatchPointsParallel fuzzes key bytes and the worker count together:
// any fan-out must agree bit for bit with the scalar oracle.
func FuzzBatchPointsParallel(f *testing.F) {
	const u = 1 << 16
	r := zipf.NewRNG(38)
	rep := randomRep(r, u, 512)
	f.Add(uint8(2), []byte{0, 0, 0, 0, 0, 0, 0, 1})
	f.Add(uint8(7), []byte{255, 255, 255, 255, 255, 255, 255, 255, 0, 0, 0, 0, 0, 0, 255, 255})
	f.Add(uint8(0), []byte{1, 2, 3, 4, 5, 6, 7, 8, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Fuzz(func(t *testing.T, wb uint8, data []byte) {
		n := len(data) / 8
		if n > 1024 {
			n = 1024
		}
		xs := make([]int64, n)
		for i := 0; i < n; i++ {
			var v uint64
			for b := 0; b < 8; b++ {
				v = v<<8 | uint64(data[i*8+b])
			}
			xs[i] = int64(v)
			if i%3 == 0 {
				xs[i] = int64(v % (3 * u))
			}
		}
		out := make([]float64, n)
		rep.BatchPointsParallel(xs, out, int(wb%9))
		for i, x := range xs {
			if want := rep.PointEstimate(x); !bitEq(out[i], want) {
				t.Fatalf("w=%d BatchPointsParallel[%d] key %d = %x, scalar %x", wb%9, i, x,
					math.Float64bits(out[i]), math.Float64bits(want))
			}
		}
	})
}

// FuzzBatch2DRanges fuzzes rectangle bounds through the 2D batch
// executor against the scalar engine (itself pinned to the scan).
func FuzzBatch2DRanges(f *testing.F) {
	const u = 1 << 8
	r := zipf.NewRNG(39)
	rep := randomRep2D(r, u, 256)
	f.Add([]byte{0, 1, 0, 200, 3, 3, 9, 9})
	f.Add([]byte{255, 255, 0, 0, 128, 7, 7, 128, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		n := len(data) / 8
		if n > 512 {
			n = 512
		}
		xlos := make([]int64, n)
		xhis := make([]int64, n)
		ylos := make([]int64, n)
		yhis := make([]int64, n)
		for i := 0; i < n; i++ {
			b := data[i*8 : i*8+8]
			xlos[i] = int64(uint64(b[0])<<8|uint64(b[1]))%(3*u) - u
			xhis[i] = int64(uint64(b[2])<<8|uint64(b[3]))%(3*u) - u
			ylos[i] = int64(uint64(b[4])<<8|uint64(b[5]))%(3*u) - u
			yhis[i] = int64(uint64(b[6])<<8|uint64(b[7]))%(3*u) - u
		}
		out := make([]float64, n)
		rep.BatchRanges(xlos, xhis, ylos, yhis, out)
		for i := range xlos {
			if want := rep.RangeSum(xlos[i], xhis[i], ylos[i], yhis[i]); !bitEq(out[i], want) {
				t.Fatalf("BatchRanges[%d] = %x, scalar %x", i,
					math.Float64bits(out[i]), math.Float64bits(want))
			}
		}
	})
}

func BenchmarkBatchPointsParallel(b *testing.B) {
	rep := benchRep(b, 1<<20, 2048)
	r := zipf.NewRNG(40)
	n := 4096
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = r.Int63n(1 << 20)
	}
	out := make([]float64, n)
	rep.BatchPointsParallel(xs, out, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep.BatchPointsParallel(xs, out, 0)
	}
}

func BenchmarkBatchPointsLinkedArena(b *testing.B) {
	rep := benchRep(b, 1<<20, 2048)
	r := zipf.NewRNG(41)
	n := 4096
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = r.Int63n(1 << 20)
	}
	out := make([]float64, n)
	rep.BatchPointsLinkedArena(xs, out)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep.BatchPointsLinkedArena(xs, out)
	}
}
