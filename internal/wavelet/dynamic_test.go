package wavelet

import (
	"math"
	"testing"

	"wavelethist/internal/zipf"
)

func fullCoefs(v []float64) []Coef {
	w := Transform(v)
	out := make([]Coef, 0, len(w))
	for i, val := range w {
		if val != 0 {
			out = append(out, Coef{Index: int64(i), Value: val})
		}
	}
	return out
}

func TestMaintainerTracksExactTopK(t *testing.T) {
	const u = 256
	const k = 10
	r := zipf.NewRNG(1)
	v := make([]float64, u)
	for i := range v {
		v[i] = math.Floor(r.Float64() * 50)
	}
	m := NewMaintainer(u, fullCoefs(v), k, 0)

	// Apply a stream of inserts/deletes, mirroring them on v.
	for step := 0; step < 3000; step++ {
		x := r.Int63n(u)
		delta := float64(1 + r.Int63n(3))
		if r.Bernoulli(0.3) && v[x] >= delta {
			delta = -delta
		}
		if v[x]+delta < 0 {
			delta = -v[x]
		}
		v[x] += delta
		m.Update(x, delta)
	}

	// Maintained coefficients must equal the exact transform on every
	// retained index.
	w := Transform(v)
	rep := m.Representation()
	if rep.K() == 0 {
		t.Fatal("empty maintained representation")
	}
	for _, c := range rep.Coefs {
		if !almostEq(c.Value, w[c.Index], 1e-8) {
			t.Errorf("maintained coef %d = %v, exact %v", c.Index, c.Value, w[c.Index])
		}
	}
	// And the maintained top-k must achieve SSE close to the ideal.
	got := rep.SSEAgainst(v)
	ideal := IdealSSE(w, k)
	if got > ideal*1.2+1e-6 {
		t.Errorf("maintained SSE %v vs ideal %v", got, ideal)
	}
}

func TestMaintainerDeletionsCancel(t *testing.T) {
	const u = 64
	m := NewMaintainer(u, nil, 5, 0)
	// Insert then fully delete: everything cancels to the empty signal.
	for i := 0; i < 100; i++ {
		m.Update(int64(i%u), 2)
	}
	for i := 0; i < 100; i++ {
		m.Update(int64(i%u), -2)
	}
	rep := m.Representation()
	for _, c := range rep.Coefs {
		if math.Abs(c.Value) > 1e-9 {
			t.Errorf("residual coefficient %d = %v after full cancellation", c.Index, c.Value)
		}
	}
}

func TestMaintainerCompactBoundsMemory(t *testing.T) {
	const u = 1 << 14
	const k = 8
	m := NewMaintainer(u, nil, k, 16)
	r := zipf.NewRNG(2)
	for i := 0; i < 20000; i++ {
		m.Update(r.Int63n(u), 1)
	}
	if m.Tracked() > 2*(k+16) {
		t.Errorf("tracked set grew to %d, bound is %d", m.Tracked(), 2*(k+16))
	}
}

func TestMaintainerHeavyShiftDetected(t *testing.T) {
	// A key absent from the initial build becomes the heaviest item; the
	// maintainer must pick its path coefficients up.
	const u = 128
	const k = 6
	r := zipf.NewRNG(3)
	v := make([]float64, u)
	for i := 0; i < 500; i++ {
		v[r.Int63n(u)]++
	}
	// Track every initial coefficient so retained values stay exact (the
	// shadow cap trades exactness for memory; see the package comment).
	initial := fullCoefs(v)
	m := NewMaintainer(u, initial, k, len(initial))
	const newHot = 77
	for i := 0; i < 5000; i++ {
		v[newHot]++
		m.Update(newHot, 1)
	}
	rep := m.Representation()
	// The leaf detail coefficient adjacent to the new hot key must now be
	// retained (it dominates the spectrum).
	w := Transform(v)
	trueTop := SelectTopKDense(w, 1)[0]
	found := false
	for _, c := range rep.Coefs {
		if c.Index == trueTop.Index {
			found = true
			if !almostEq(c.Value, trueTop.Value, 1e-8) {
				t.Errorf("hot coefficient %d = %v, exact %v", c.Index, c.Value, trueTop.Value)
			}
		}
	}
	if !found {
		t.Errorf("dominant coefficient %d not retained after shift", trueTop.Index)
	}
}

func TestMaintainerPanics(t *testing.T) {
	mustPanic := func(f func()) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		f()
	}
	mustPanic(func() { NewMaintainer(100, nil, 5, 0) })
	mustPanic(func() { NewMaintainer(128, nil, 0, 0) })
	m := NewMaintainer(128, nil, 5, 0)
	mustPanic(func() { m.Update(128, 1) })
}

func TestMaintainerZeroDeltaNoop(t *testing.T) {
	m := NewMaintainer(64, nil, 3, 0)
	m.Update(5, 0)
	if m.Tracked() != 0 {
		t.Errorf("zero delta created %d tracked coefficients", m.Tracked())
	}
}
