package wavelet

import (
	"math"
	"testing"

	"wavelethist/internal/zipf"
)

func fullCoefs(v []float64) []Coef {
	w := Transform(v)
	out := make([]Coef, 0, len(w))
	for i, val := range w {
		if val != 0 {
			out = append(out, Coef{Index: int64(i), Value: val})
		}
	}
	return out
}

func TestMaintainerTracksExactTopK(t *testing.T) {
	const u = 256
	const k = 10
	r := zipf.NewRNG(1)
	v := make([]float64, u)
	for i := range v {
		v[i] = math.Floor(r.Float64() * 50)
	}
	m := NewMaintainer(u, fullCoefs(v), k, 0)

	// Apply a stream of inserts/deletes, mirroring them on v.
	for step := 0; step < 3000; step++ {
		x := r.Int63n(u)
		delta := float64(1 + r.Int63n(3))
		if r.Bernoulli(0.3) && v[x] >= delta {
			delta = -delta
		}
		if v[x]+delta < 0 {
			delta = -v[x]
		}
		v[x] += delta
		m.Update(x, delta)
	}

	// Maintained coefficients must equal the exact transform on every
	// retained index.
	w := Transform(v)
	rep := m.Representation()
	if rep.K() == 0 {
		t.Fatal("empty maintained representation")
	}
	for _, c := range rep.Coefs {
		if !almostEq(c.Value, w[c.Index], 1e-8) {
			t.Errorf("maintained coef %d = %v, exact %v", c.Index, c.Value, w[c.Index])
		}
	}
	// And the maintained top-k must achieve SSE close to the ideal.
	got := rep.SSEAgainst(v)
	ideal := IdealSSE(w, k)
	if got > ideal*1.2+1e-6 {
		t.Errorf("maintained SSE %v vs ideal %v", got, ideal)
	}
}

func TestMaintainerDeletionsCancel(t *testing.T) {
	const u = 64
	m := NewMaintainer(u, nil, 5, 0)
	// Insert then fully delete: everything cancels to the empty signal.
	for i := 0; i < 100; i++ {
		m.Update(int64(i%u), 2)
	}
	for i := 0; i < 100; i++ {
		m.Update(int64(i%u), -2)
	}
	rep := m.Representation()
	for _, c := range rep.Coefs {
		if math.Abs(c.Value) > 1e-9 {
			t.Errorf("residual coefficient %d = %v after full cancellation", c.Index, c.Value)
		}
	}
}

func TestMaintainerCompactBoundsMemory(t *testing.T) {
	const u = 1 << 14
	const k = 8
	m := NewMaintainer(u, nil, k, 16)
	r := zipf.NewRNG(2)
	for i := 0; i < 20000; i++ {
		m.Update(r.Int63n(u), 1)
	}
	if m.Tracked() > 2*(k+16) {
		t.Errorf("tracked set grew to %d, bound is %d", m.Tracked(), 2*(k+16))
	}
}

func TestMaintainerHeavyShiftDetected(t *testing.T) {
	// A key absent from the initial build becomes the heaviest item; the
	// maintainer must pick its path coefficients up.
	const u = 128
	const k = 6
	r := zipf.NewRNG(3)
	v := make([]float64, u)
	for i := 0; i < 500; i++ {
		v[r.Int63n(u)]++
	}
	// Track every initial coefficient so retained values stay exact (the
	// shadow cap trades exactness for memory; see the package comment).
	initial := fullCoefs(v)
	m := NewMaintainer(u, initial, k, len(initial))
	const newHot = 77
	for i := 0; i < 5000; i++ {
		v[newHot]++
		m.Update(newHot, 1)
	}
	rep := m.Representation()
	// The leaf detail coefficient adjacent to the new hot key must now be
	// retained (it dominates the spectrum).
	w := Transform(v)
	trueTop := SelectTopKDense(w, 1)[0]
	found := false
	for _, c := range rep.Coefs {
		if c.Index == trueTop.Index {
			found = true
			if !almostEq(c.Value, trueTop.Value, 1e-8) {
				t.Errorf("hot coefficient %d = %v, exact %v", c.Index, c.Value, trueTop.Value)
			}
		}
	}
	if !found {
		t.Errorf("dominant coefficient %d not retained after shift", trueTop.Index)
	}
}

func TestMaintainerPanics(t *testing.T) {
	mustPanic := func(f func()) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		f()
	}
	mustPanic(func() { NewMaintainer(100, nil, 5, 0) })
	mustPanic(func() { NewMaintainer(128, nil, 0, 0) })
	m := NewMaintainer(128, nil, 5, 0)
	mustPanic(func() { m.Update(128, 1) })
}

func TestMaintainerZeroDeltaNoop(t *testing.T) {
	m := NewMaintainer(64, nil, 3, 0)
	m.Update(5, 0)
	if m.Tracked() != 0 {
		t.Errorf("zero delta created %d tracked coefficients", m.Tracked())
	}
}

// TestMaintainerMatchesFullReselection pins the incremental partition to
// the legacy semantics: at any point in an arbitrary update stream, the
// maintained representation must be exactly what a full top-k re-selection
// over the tracked set would produce — same coefficients, same order,
// bit-identical values.
func TestMaintainerMatchesFullReselection(t *testing.T) {
	const u = 1 << 12
	const k = 24
	r := zipf.NewRNG(21)
	m := NewMaintainer(u, nil, k, 64)
	for step := 0; step < 8000; step++ {
		delta := float64(1 + r.Int63n(4))
		if r.Bernoulli(0.4) {
			delta = -delta
		}
		m.Update(r.Int63n(u), delta)
		if step%613 != 0 {
			continue
		}
		got := m.Representation()
		tracked := make(map[int64]float64, m.Tracked())
		for _, c := range m.TrackedCoefs() {
			tracked[c.Index] = c.Value
		}
		want := NewRepresentation(u, SelectTopKMap(tracked, k))
		if len(got.Coefs) != len(want.Coefs) {
			t.Fatalf("step %d: incremental kept %d coefs, reselection %d", step, len(got.Coefs), len(want.Coefs))
		}
		for i := range want.Coefs {
			g, w := got.Coefs[i], want.Coefs[i]
			if g.Index != w.Index || math.Float64bits(g.Value) != math.Float64bits(w.Value) {
				t.Fatalf("step %d slot %d: incremental (%d, %x), reselection (%d, %x)",
					step, i, g.Index, math.Float64bits(g.Value), w.Index, math.Float64bits(w.Value))
			}
		}
	}
}

// TestMaintainerSnapshotsImmutable: a handed-out representation must never
// change, even as updates keep patching the maintainer's internal state —
// registry snapshots may hold it forever.
func TestMaintainerSnapshotsImmutable(t *testing.T) {
	const u = 1 << 10
	r := zipf.NewRNG(22)
	m := NewMaintainer(u, nil, 16, 64)
	for i := 0; i < 2000; i++ {
		m.Update(r.Int63n(u), 1)
	}
	rep1 := m.Representation()
	frozen := make([]Coef, len(rep1.Coefs))
	copy(frozen, rep1.Coefs)
	est1 := rep1.PointEstimate(123)
	for i := 0; i < 2000; i++ {
		m.Update(r.Int63n(u), 2)
		if i%100 == 0 {
			m.Representation()
		}
	}
	for i, c := range rep1.Coefs {
		if c != frozen[i] {
			t.Fatalf("snapshot coefficient %d mutated: %+v -> %+v", i, frozen[i], c)
		}
	}
	if got := rep1.PointEstimate(123); math.Float64bits(got) != math.Float64bits(est1) {
		t.Fatalf("snapshot estimate drifted: %v -> %v", est1, got)
	}
	rep2 := m.Representation()
	if rep2 == rep1 {
		t.Fatal("maintainer returned a stale snapshot after updates")
	}
}

// TestMaintainerPatchedSnapshotEquivalence: copy-and-patch snapshots share
// the previous snapshot's error-tree index; their indexed estimates must
// stay bit-identical to the linear scan through arbitrary interleavings.
func TestMaintainerPatchedSnapshotEquivalence(t *testing.T) {
	const u = 1 << 14
	r := zipf.NewRNG(23)
	m := NewMaintainer(u, nil, 32, 128)
	for i := 0; i < 6000; i++ {
		m.Update(r.Int63n(u), float64(1+r.Int63n(3)))
		if i%37 != 0 {
			continue
		}
		rep := m.Representation()
		for j := 0; j < 10; j++ {
			x := r.Int63n(u)
			if g, w := rep.PointEstimate(x), rep.ScanPointEstimate(x); math.Float64bits(g) != math.Float64bits(w) {
				t.Fatalf("patched snapshot PointEstimate(%d) = %v, scan %v", x, g, w)
			}
			lo, hi := r.Int63n(u), r.Int63n(u)
			if g, w := rep.RangeSum(lo, hi), rep.ScanRangeSum(lo, hi); math.Float64bits(g) != math.Float64bits(w) {
				t.Fatalf("patched snapshot RangeSum(%d, %d) = %v, scan %v", lo, hi, g, w)
			}
		}
	}
}

// TestMaintainerNoRebuildStorm is the rebuild-storm regression test: a
// workload alternating one Update with one Representation() read must not
// re-heapify (or re-allocate proportionally to) the whole tracked set per
// read. Guarded two ways: per-pair allocations stay a small constant, and
// the maintainer's own repair-op telemetry stays O(log u · log tracked)
// per update — both independent of how many coefficients are tracked.
func TestMaintainerNoRebuildStorm(t *testing.T) {
	const u = 1 << 16
	const k = 128
	const shadow = 2048
	r := zipf.NewRNG(24)
	m := NewMaintainer(u, nil, k, shadow)
	// Populate a large tracked set, then hammer one hot key so its path
	// coefficients are firmly retained and reads take the patch path.
	for i := 0; i < 4*(k+shadow); i++ {
		m.Update(r.Int63n(u), 1)
	}
	const hot = 31337
	for i := 0; i < 200; i++ {
		m.Update(hot, 5)
		m.Representation()
	}
	if got := m.Tracked(); got < k+shadow/2 {
		t.Fatalf("tracked set too small (%d) for the regression to be meaningful", got)
	}
	allocs := testing.AllocsPerRun(200, func() {
		m.Update(hot, 5)
		m.Representation()
	})
	// The patch path costs one coefficient-array copy and one snapshot
	// struct; the old path allocated a fresh map + heap + two sorted
	// slices over all tracked coefficients on every read.
	if allocs > 8 {
		t.Errorf("update+read pair allocates %.1f objects; the tracked set is being rebuilt per read", allocs)
	}
	opsBefore := m.RepairOps()
	const pairs = 500
	for i := 0; i < pairs; i++ {
		m.Update(hot, 5)
		m.Representation()
	}
	perUpdate := float64(m.RepairOps()-opsBefore) / pairs
	logu := float64(Log2(u)) + 1
	// ~log2(k+shadow) heap moves per touched path coefficient, with slack;
	// a tracked-set re-heapify would cost >= k+shadow = 2176 moves.
	bound := logu * 24
	if perUpdate > bound {
		t.Errorf("%.1f repair ops per update (bound %.0f, tracked %d): partition repair is not incremental",
			perUpdate, bound, m.Tracked())
	}
}
