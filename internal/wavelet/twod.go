package wavelet

import (
	"math"
	"sort"
)

// The 2D extension (Section 2.1 / "Multi-dimensional wavelets"): a standard
// 2D Haar transform applies the 1D transform to every row of the u×u
// frequency array, then to every column of the result. That equals the
// tensor-product orthonormal basis Ψ_{i,j}(x,y) = ψ_i(x)·ψ_j(y), so 2D
// coefficients remain linear in v and all the paper's distributed
// machinery (local-coefficient summation, H-WTopk, sampling estimators)
// carries over unchanged.

// Transform2D computes the full 2D coefficient array W[i][j] = <v, ψ_i⊗ψ_j>
// of the dense u×u signal. Rows first, then columns, as the paper states.
func Transform2D(v [][]float64) [][]float64 {
	u := int64(len(v))
	if !IsPowerOfTwo(u) {
		panic("wavelet: 2D domain must be a power of two")
	}
	// Row pass.
	a := make([][]float64, u)
	for x := int64(0); x < u; x++ {
		if int64(len(v[x])) != u {
			panic("wavelet: 2D signal must be square")
		}
		a[x] = Transform(v[x])
	}
	// Column pass.
	col := make([]float64, u)
	w := make([][]float64, u)
	for i := range w {
		w[i] = make([]float64, u)
	}
	for j := int64(0); j < u; j++ {
		for x := int64(0); x < u; x++ {
			col[x] = a[x][j]
		}
		tc := Transform(col)
		for i := int64(0); i < u; i++ {
			w[i][j] = tc[i]
		}
	}
	return w
}

// Inverse2D inverts Transform2D.
func Inverse2D(w [][]float64) [][]float64 {
	u := int64(len(w))
	if !IsPowerOfTwo(u) {
		panic("wavelet: 2D domain must be a power of two")
	}
	// Invert columns first (reverse order of application).
	a := make([][]float64, u)
	for i := range a {
		a[i] = make([]float64, u)
	}
	col := make([]float64, u)
	for j := int64(0); j < u; j++ {
		for i := int64(0); i < u; i++ {
			col[i] = w[i][j]
		}
		ic := Inverse(col)
		for x := int64(0); x < u; x++ {
			a[x][j] = ic[x]
		}
	}
	v := make([][]float64, u)
	for x := int64(0); x < u; x++ {
		v[x] = Inverse(a[x])
	}
	return v
}

// Key2D packs a 2D key (x, y) ∈ [0,u)² into a single int64 x·u + y, the
// representation datasets and algorithms use for 2D domains.
func Key2D(x, y, u int64) int64 { return x*u + y }

// SplitKey2D unpacks a packed 2D key.
func SplitKey2D(key, u int64) (x, y int64) { return key / u, key % u }

// SparseTransform2D computes non-zero 2D coefficients of a sparse 2D
// frequency map (packed keys). Each cell contributes to (log2(u)+1)²
// coefficients — its tensor path. Output is keyed by packed (i, j).
// Cells are consumed in sorted key order so the floating-point
// accumulation — and therefore every coefficient's exact bit pattern — is
// independent of map iteration order, which the distributed engine's
// bit-identical parity (and replay after worker loss) relies on.
func SparseTransform2D(freq map[int64]float64, u int64) map[int64]float64 {
	logu := Log2(u)
	type pathEntry struct {
		idx int64
		val float64
	}
	keys := make([]int64, 0, len(freq))
	for key := range freq {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	path := make([]pathEntry, 0, logu+1)
	w := make(map[int64]float64)
	for _, key := range keys {
		c := freq[key]
		if c == 0 {
			continue
		}
		x, y := SplitKey2D(key, u)
		if x < 0 || x >= u || y < 0 || y >= u {
			panic("wavelet: 2D key out of domain")
		}
		// ψ path for x.
		path = path[:0]
		path = append(path, pathEntry{0, 1 / math.Sqrt(float64(u))})
		for j := uint(0); j < logu; j++ {
			rangeLen := u >> j
			k := x / rangeLen
			val := 1 / math.Sqrt(float64(rangeLen))
			if x-k*rangeLen < rangeLen/2 {
				val = -val
			}
			path = append(path, pathEntry{int64(1)<<j + k, val})
		}
		// ψ path for y, combined on the fly.
		for _, px := range path {
			base := px.idx * u
			contrib0 := c * px.val
			// y's average coefficient.
			add2d(w, base+0, contrib0/math.Sqrt(float64(u)))
			for j := uint(0); j < logu; j++ {
				rangeLen := u >> j
				k := y / rangeLen
				val := 1 / math.Sqrt(float64(rangeLen))
				if y-k*rangeLen < rangeLen/2 {
					val = -val
				}
				add2d(w, base+int64(1)<<j+k, contrib0*val)
			}
		}
	}
	return w
}

func add2d(w map[int64]float64, idx int64, v float64) {
	nv := w[idx] + v
	if nv == 0 {
		delete(w, idx)
	} else {
		w[idx] = nv
	}
}

// Basis2DAt evaluates Ψ_{i,j}(x, y) = ψ_i(x)·ψ_j(y) for a packed
// coefficient index over [0,u)².
func Basis2DAt(packed, x, y, u int64) float64 {
	i, j := SplitKey2D(packed, u)
	return BasisAt(i, x, u) * BasisAt(j, y, u)
}

// Representation2D is a k-term 2D wavelet representation with packed
// coefficient indices and an error-tree index for O(log²u) point queries.
type Representation2D struct {
	U     int64
	Coefs []Coef

	// tree indexes Coefs by packed error-tree position (see errTree2D);
	// nil only for hand-rolled literals, which fall back to the scan.
	tree *errTree2D
}

// NewRepresentation2D wraps and magnitude-sorts a 2D coefficient set,
// building its error-tree query index.
func NewRepresentation2D(u int64, coefs []Coef) *Representation2D {
	if !IsPowerOfTwo(u) {
		panic("wavelet: representation domain must be a power of two")
	}
	cs := make([]Coef, len(coefs))
	copy(cs, coefs)
	SortCoefsByMagnitude(cs)
	return &Representation2D{U: u, Coefs: cs, tree: newErrTree2D(u, cs)}
}

// PointEstimate returns v̂(x, y), evaluating only the (log2(u)+1)²
// ancestor pairs of the cell via the index — O(log²u) instead of O(k),
// bit-identical to ScanPointEstimate. Off-grid cells estimate 0.
func (r *Representation2D) PointEstimate(x, y int64) float64 {
	if r.tree == nil {
		return r.ScanPointEstimate(x, y)
	}
	return r.tree.pointEstimate(r.Coefs, x, y)
}

// ScanPointEstimate is the O(k) linear-scan reference evaluation of
// v̂(x, y), retained for equivalence tests and benchmarks.
func (r *Representation2D) ScanPointEstimate(x, y int64) float64 {
	var s float64
	for _, c := range r.Coefs {
		s += c.Value * Basis2DAt(c.Index, x, y, r.U)
	}
	return s
}

// RangeSum returns Σ_{x=xlo..xhi, y=ylo..yhi} v̂(x, y), evaluating only
// the tensor products of the two axes' boundary candidates via the index
// — O(log²u) instead of O(k), bit-identical to ScanRangeSum. Bounds are
// clamped to the grid per axis; an empty intersection returns 0.
func (r *Representation2D) RangeSum(xlo, xhi, ylo, yhi int64) float64 {
	if r.tree == nil {
		return r.ScanRangeSum(xlo, xhi, ylo, yhi)
	}
	return r.tree.rangeSum(r.Coefs, xlo, xhi, ylo, yhi)
}

// ScanRangeSum is the O(k) linear-scan reference evaluation of RangeSum,
// with the same per-axis clamp contract: Σ_c w_c · (Σψ_i over the x
// range) · (Σψ_j over the y range).
func (r *Representation2D) ScanRangeSum(xlo, xhi, ylo, yhi int64) float64 {
	if xlo < 0 {
		xlo = 0
	}
	if xhi >= r.U {
		xhi = r.U - 1
	}
	if ylo < 0 {
		ylo = 0
	}
	if yhi >= r.U {
		yhi = r.U - 1
	}
	if xlo > xhi || ylo > yhi {
		return 0
	}
	var s float64
	for _, c := range r.Coefs {
		i, j := SplitKey2D(c.Index, r.U)
		s += c.Value * (basisRangeSum(i, xlo, xhi, r.U) * basisRangeSum(j, ylo, yhi, r.U))
	}
	return s
}

// Reconstruct materializes the dense u×u estimate. O(k·u²) worst case;
// intended for the small domains of tests and examples.
func (r *Representation2D) Reconstruct() [][]float64 {
	v := make([][]float64, r.U)
	for x := range v {
		v[x] = make([]float64, r.U)
	}
	for _, c := range r.Coefs {
		i, j := SplitKey2D(c.Index, r.U)
		for x := int64(0); x < r.U; x++ {
			bx := BasisAt(i, x, r.U)
			if bx == 0 {
				continue
			}
			row := v[x]
			for y := int64(0); y < r.U; y++ {
				by := BasisAt(j, y, r.U)
				if by != 0 {
					row[y] += c.Value * bx * by
				}
			}
		}
	}
	return v
}

// SSE2D returns Σ (a-b)² over two dense u×u arrays.
func SSE2D(a, b [][]float64) float64 {
	if len(a) != len(b) {
		panic("wavelet: SSE2D dimension mismatch")
	}
	var s float64
	for i := range a {
		s += SSE(a[i], b[i])
	}
	return s
}
