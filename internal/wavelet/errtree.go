package wavelet

import (
	"math"
	"sort"
)

// The error-tree query engine.
//
// A k-term representation answers queries as v̂(x) = Σ w_i ψ_i(x), and the
// naive evaluation scans all k retained coefficients even though ψ_i(x) is
// non-zero only for the ≤ log2(u)+1 coefficients on x's root-to-leaf path
// in the Haar error tree (Matias, Vitter, Wang's query model — the reason
// wavelet histograms answer point and range queries fast). errTree is the
// per-representation index that makes those ancestor lookups cheap: the
// coefficient positions of the representation's Coefs slice, sorted by
// coefficient index and bucketed by error-tree level, so an ancestor is
// found with one binary search inside its level — per-level offset tables
// over an index-sorted position array, no hashing on the read path.
//
// The index is structural: it stores positions into Coefs, never values,
// so a caller that patches coefficient values in place (the incremental
// Maintainer's snapshot path) can share one errTree across snapshots whose
// index multiset is unchanged.
//
// # Bit-identical results
//
// Indexed estimates are bit-identical to the O(k) linear scan, not merely
// close. Two facts make this work:
//
//  1. Skipped coefficients contribute an exact ±0 term in the scan (their
//     basis factor is 0), and adding ±0 never changes a running float64
//     sum that started at +0 — a finite sum can never round to -0, so
//     s + ±0 == s at every step.
//  2. The matched ancestor terms are accumulated in coefficient-position
//     order — exactly the order the scan visits them — using the same
//     basis arithmetic (basisAtLevel / basisRangeSum), so every partial
//     sum rounds identically.
//
// Invalid coefficient indices (negative, or outside the domain) are
// parked in a trailing overflow bucket no query target can reach; the
// scan path gives such coefficients an exact zero basis factor too, with
// one divergence: the scan panics on negative indices (coefLevel), the
// index silently ignores them. Serialized histograms reject them before
// either path runs.
type errTree struct {
	u    int64
	logu uint
	ord  []int32 // positions into Coefs, sorted by (level, index, position)
	off  []int32 // level L entries are ord[off[L]:off[L+1]]; L=0 is the
	// average coefficient, L=j+1 is detail level j, L=logu+1 is
	// the overflow bucket for out-of-domain indices.

	// idxs[i] == coefs[ord[i]].Index, materialized at build time so the
	// batch executor's per-level merge joins compare against one flat
	// sorted array instead of chasing ord into Coefs. Indices never change
	// across value-patched snapshots (only values do), so caching them is
	// as safe as caching ord itself.
	idxs []int64

	// Precomputed basis factors, bit-identical to what the scalar path
	// derives per query: sqrtU = math.Sqrt(float64(u)); sqrtLen[j] =
	// math.Sqrt(float64(u>>j)) and invSqrtLen[j] = 1/sqrtLen[j] for detail
	// level j. math.Sqrt is correctly rounded, so dividing by (or negating)
	// a cached root gives the same bits as recomputing it per term.
	sqrtU      float64
	invSqrtU   float64
	sqrtLen    []float64
	invSqrtLen []float64
}

// posTerm is one matched ancestor's contribution, tagged with its position
// in the representation's Coefs slice so terms can be summed in scan order.
type posTerm struct {
	pos  int32
	term float64
}

// errTreeLevel buckets a coefficient index: 0 for the overall average,
// 1+j for detail level j, logu+1 for anything outside the domain.
func errTreeLevel(idx, u int64, logu uint) int {
	if idx == 0 {
		return 0
	}
	if idx < 0 || idx >= u {
		return int(logu) + 1
	}
	return int(coefLevel(idx)) + 1
}

// newErrTree indexes coefs (a Representation's Coefs slice) over domain u.
// O(k log k) build; the result is immutable and safe for concurrent reads.
func newErrTree(u int64, coefs []Coef) *errTree {
	logu := Log2(u)
	t := &errTree{u: u, logu: logu}
	n := len(coefs)
	t.ord = make([]int32, n)
	for i := range t.ord {
		t.ord[i] = int32(i)
	}
	sort.Slice(t.ord, func(a, b int) bool {
		pa, pb := t.ord[a], t.ord[b]
		ia, ib := coefs[pa].Index, coefs[pb].Index
		la, lb := errTreeLevel(ia, u, logu), errTreeLevel(ib, u, logu)
		if la != lb {
			return la < lb
		}
		if ia != ib {
			return ia < ib
		}
		return pa < pb
	})
	t.off = make([]int32, int(logu)+3)
	for i := range t.off {
		t.off[i] = int32(n)
	}
	cur := -1
	for i, p := range t.ord {
		l := errTreeLevel(coefs[p].Index, u, logu)
		if l != cur {
			for j := cur + 1; j <= l; j++ {
				t.off[j] = int32(i)
			}
			cur = l
		}
	}
	t.idxs = make([]int64, n)
	for i, p := range t.ord {
		t.idxs[i] = coefs[p].Index
	}
	t.sqrtU = math.Sqrt(float64(u))
	t.invSqrtU = 1 / t.sqrtU
	t.sqrtLen = make([]float64, logu)
	t.invSqrtLen = make([]float64, logu)
	for j := uint(0); j < logu; j++ {
		t.sqrtLen[j] = math.Sqrt(float64(u >> j))
		t.invSqrtLen[j] = 1 / t.sqrtLen[j]
	}
	return t
}

// find returns the half-open range of positions in level L whose
// coefficient index equals target (duplicates are adjacent).
func (t *errTree) find(coefs []Coef, level int, target int64) (int, int) {
	lo, hi := int(t.off[level]), int(t.off[level+1])
	end := hi
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if coefs[t.ord[mid]].Index < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	hi = lo
	for hi < end && coefs[t.ord[hi]].Index == target {
		hi++
	}
	return lo, hi
}

// basisAtLevel is BasisAt for a coefficient known to live at detail level
// j and dyadic position k — the same arithmetic without re-deriving the
// level, so indexed and scan estimates round identically.
func basisAtLevel(j uint, k, x, u int64) float64 {
	rangeLen := u >> j
	val := 1 / math.Sqrt(float64(rangeLen))
	if x-k*rangeLen < rangeLen/2 {
		return -val
	}
	return val
}

// sumByPos sorts the matched terms by coefficient position (insertion
// sort: the slice is at most a few dozen entries) and sums them in that
// order — the linear scan's visitation order.
func sumByPos(terms []posTerm) float64 {
	for i := 1; i < len(terms); i++ {
		e := terms[i]
		j := i - 1
		for j >= 0 && terms[j].pos > e.pos {
			terms[j+1] = terms[j]
			j--
		}
		terms[j+1] = e
	}
	var s float64
	for _, e := range terms {
		s += e.term
	}
	return s
}

// pointEstimate evaluates v̂(x) touching only x's ≤ log2(u)+1 error-tree
// ancestors: O(log u · log k) with the per-level binary searches.
// Allocation-free for representations without pathological duplicate
// runs (the term buffer spills to the heap past 80 matches).
func (t *errTree) pointEstimate(coefs []Coef, x int64) float64 {
	if x < 0 || x >= t.u {
		return 0 // every basis factor is zero off-domain, as in the scan
	}
	var stack [80]posTerm
	terms := stack[:0]
	lo, hi := t.find(coefs, 0, 0)
	if lo < hi {
		b := 1 / math.Sqrt(float64(t.u))
		for i := lo; i < hi; i++ {
			p := t.ord[i]
			terms = append(terms, posTerm{p, coefs[p].Value * b})
		}
	}
	for j := uint(0); j < t.logu; j++ {
		rangeLen := t.u >> j
		k := x / rangeLen
		lo, hi := t.find(coefs, int(j)+1, int64(1)<<j+k)
		if lo == hi {
			continue
		}
		b := basisAtLevel(j, k, x, t.u)
		for i := lo; i < hi; i++ {
			p := t.ord[i]
			terms = append(terms, posTerm{p, coefs[p].Value * b})
		}
	}
	return sumByPos(terms)
}

// rangeSum evaluates Σ_{x=lo..hi} v̂(x) touching only the ancestors of the
// two range boundaries — every strictly interior coefficient's positive
// and negative ψ halves cancel exactly, so only boundary-straddling
// coefficients (plus the average) contribute: O(log u · log k).
// Bounds are clamped to the domain; an empty intersection returns 0.
func (t *errTree) rangeSum(coefs []Coef, lo, hi int64) float64 {
	if lo < 0 {
		lo = 0
	}
	if hi >= t.u {
		hi = t.u - 1
	}
	if lo > hi {
		return 0
	}
	var stack [160]posTerm
	terms := stack[:0]
	s, e := t.find(coefs, 0, 0)
	if s < e {
		b := float64(hi-lo+1) / math.Sqrt(float64(t.u))
		for i := s; i < e; i++ {
			p := t.ord[i]
			terms = append(terms, posTerm{p, coefs[p].Value * b})
		}
	}
	for j := uint(0); j < t.logu; j++ {
		rangeLen := t.u >> j
		kLo, kHi := lo/rangeLen, hi/rangeLen
		terms = t.appendRangeTerms(coefs, terms, j, kLo, lo, hi)
		if kHi != kLo {
			terms = t.appendRangeTerms(coefs, terms, j, kHi, lo, hi)
		}
	}
	return sumByPos(terms)
}

// appendRangeTerms adds the contributions of the (possibly duplicated)
// coefficient at detail level j, dyadic position k, to a clamped [lo, hi]
// range query, using basisRangeSum's exact arithmetic.
func (t *errTree) appendRangeTerms(coefs []Coef, terms []posTerm, j uint, k, lo, hi int64) []posTerm {
	s, e := t.find(coefs, int(j)+1, int64(1)<<j+k)
	if s == e {
		return terms
	}
	rangeLen := t.u >> j
	start := k * rangeLen
	mid := start + rangeLen/2
	end := start + rangeLen
	neg := overlap(lo, hi+1, start, mid)
	pos := overlap(lo, hi+1, mid, end)
	b := float64(pos-neg) / math.Sqrt(float64(rangeLen))
	for i := s; i < e; i++ {
		p := t.ord[i]
		terms = append(terms, posTerm{p, coefs[p].Value * b})
	}
	return terms
}

// errTree2D indexes a 2D representation's packed coefficients: positions
// sorted by packed index, with an offset table over the distinct row
// indices i (the x-axis ψ component), so the ≤ (log2(u)+1)² ancestor
// pairs of a cell resolve with one row search plus per-row binary
// searches. Out-of-domain packed indices are dropped from the index
// entirely — their basis factor is an exact zero in the scan.
type errTree2D struct {
	u    int64
	logu uint
	ord  []int32 // in-domain positions, sorted by (packed index, position)
	gkey []int64 // distinct row index i per group, ascending
	goff []int32 // group g entries are ord[goff[g]:goff[g+1]]

	// idxs[i] == coefs[ord[i]].Index — flat packed-index mirror for the
	// batch executor's merge joins (see errTree.idxs).
	idxs []int64

	// Precomputed basis factors (see errTree): invSqrtU matches
	// ancestorPaths' 1/math.Sqrt(float64(u)); invSqrtLen[j] matches
	// basisAtLevel's 1/math.Sqrt(float64(u>>j)), bit for bit. sqrtU and
	// sqrtLen are the roots themselves for the range path's divisions —
	// dividing by a cached correctly-rounded root gives the same bits as
	// recomputing math.Sqrt per term (and is NOT the same as multiplying
	// by the cached inverse, which rounds differently).
	sqrtU      float64
	invSqrtU   float64
	sqrtLen    []float64
	invSqrtLen []float64
}

// newErrTree2D indexes coefs (packed 2D indices) over the u×u grid.
func newErrTree2D(u int64, coefs []Coef) *errTree2D {
	t := &errTree2D{u: u, logu: Log2(u)}
	t.ord = make([]int32, 0, len(coefs))
	for i, c := range coefs {
		if c.Index >= 0 && c.Index < u*u {
			t.ord = append(t.ord, int32(i))
		}
	}
	sort.Slice(t.ord, func(a, b int) bool {
		pa, pb := t.ord[a], t.ord[b]
		if coefs[pa].Index != coefs[pb].Index {
			return coefs[pa].Index < coefs[pb].Index
		}
		return pa < pb
	})
	var curRow int64 = -1
	for i, p := range t.ord {
		row := coefs[p].Index / u
		if row != curRow {
			t.gkey = append(t.gkey, row)
			t.goff = append(t.goff, int32(i))
			curRow = row
		}
	}
	t.goff = append(t.goff, int32(len(t.ord)))
	t.idxs = make([]int64, len(t.ord))
	for i, p := range t.ord {
		t.idxs[i] = coefs[p].Index
	}
	t.sqrtU = math.Sqrt(float64(t.u))
	t.invSqrtU = 1 / t.sqrtU
	t.sqrtLen = make([]float64, t.logu)
	t.invSqrtLen = make([]float64, t.logu)
	for j := uint(0); j < t.logu; j++ {
		t.sqrtLen[j] = math.Sqrt(float64(t.u >> j))
		t.invSqrtLen[j] = 1 / t.sqrtLen[j]
	}
	return t
}

// ancestorPaths fills the level-indexed ancestor indices and basis values
// of coordinate x: slot 0 is the average component, slot j+1 detail level
// j. Returns the slice length (logu+1).
func (t *errTree2D) ancestorPaths(x int64, idx *[64]int64, bas *[64]float64) int {
	idx[0] = 0
	bas[0] = 1 / math.Sqrt(float64(t.u))
	for j := uint(0); j < t.logu; j++ {
		rangeLen := t.u >> j
		k := x / rangeLen
		idx[j+1] = int64(1)<<j + k
		bas[j+1] = basisAtLevel(j, k, x, t.u)
	}
	return int(t.logu) + 1
}

// pointEstimate evaluates v̂(x, y) touching only the (log2(u)+1)² ancestor
// pairs: O(log²u · log k). Bit-identical to the scan for the same reasons
// as the 1D index.
func (t *errTree2D) pointEstimate(coefs []Coef, x, y int64) float64 {
	if x < 0 || x >= t.u || y < 0 || y >= t.u {
		return 0
	}
	var xi, yi [64]int64
	var xb, yb [64]float64
	nx := t.ancestorPaths(x, &xi, &xb)
	ny := t.ancestorPaths(y, &yi, &yb)
	var stack [144]posTerm
	terms := stack[:0]
	for a := 0; a < nx; a++ {
		g := sort.Search(len(t.gkey), func(i int) bool { return t.gkey[i] >= xi[a] })
		if g == len(t.gkey) || t.gkey[g] != xi[a] {
			continue
		}
		glo, ghi := int(t.goff[g]), int(t.goff[g+1])
		base := xi[a] * t.u
		for b := 0; b < ny; b++ {
			target := base + yi[b]
			lo, hi := glo, ghi
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				if coefs[t.ord[mid]].Index < target {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			bv := xb[a] * yb[b]
			for lo < ghi && coefs[t.ord[lo]].Index == target {
				p := t.ord[lo]
				terms = append(terms, posTerm{p, coefs[p].Value * bv})
				lo++
			}
		}
	}
	return sumByPos(terms)
}

// rangeFactor is Σ_{x=lo..hi} ψ over detail level j, dyadic position k —
// basisRangeSum's arithmetic with the cached level root, so indexed and
// scan range sums round identically.
func (t *errTree2D) rangeFactor(j uint, k, lo, hi int64) float64 {
	rangeLen := t.u >> j
	start := k * rangeLen
	mid := start + rangeLen/2
	end := start + rangeLen
	neg := overlap(lo, hi+1, start, mid)
	pos := overlap(lo, hi+1, mid, end)
	return float64(pos-neg) / t.sqrtLen[j]
}

// rangeCandidates fills the ≤ 2·log2(u)+1 error-tree candidates of a
// clamped 1D range [lo, hi]: the average component plus, per detail
// level, the cell containing lo and (when it differs) the cell containing
// hi — every other cell's positive and negative ψ halves cancel exactly.
// row[c] is the coefficient index, fac[c] the summed basis factor.
// Returns the candidate count.
func (t *errTree2D) rangeCandidates(lo, hi int64, row *[128]int64, fac *[128]float64) int {
	row[0] = 0
	fac[0] = float64(hi-lo+1) / t.sqrtU
	n := 1
	for j := uint(0); j < t.logu; j++ {
		rangeLen := t.u >> j
		kLo, kHi := lo/rangeLen, hi/rangeLen
		row[n] = int64(1)<<j + kLo
		fac[n] = t.rangeFactor(j, kLo, lo, hi)
		n++
		if kHi != kLo {
			row[n] = int64(1)<<j + kHi
			fac[n] = t.rangeFactor(j, kHi, lo, hi)
			n++
		}
	}
	return n
}

// append2DTarget appends the (possibly duplicated) coefficients whose
// packed index equals target within row group [glo, ghi), each scaled by
// the combined basis factor bv.
func (t *errTree2D) append2DTarget(coefs []Coef, terms []posTerm, glo, ghi int, target int64, bv float64) []posTerm {
	lo, hi := glo, ghi
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if t.idxs[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for lo < ghi && t.idxs[lo] == target {
		p := t.ord[lo]
		terms = append(terms, posTerm{p, coefs[p].Value * bv})
		lo++
	}
	return terms
}

// rangeSum evaluates Σ_{x=xlo..xhi, y=ylo..yhi} v̂(x, y) touching only the
// tensor products of the two axes' boundary candidates — O(log²u · log k)
// instead of the O(k) scan, bit-identical to it: per axis only the
// average and boundary-straddling components have a non-zero summed
// basis factor (interior cells cancel exactly, and a cell containing the
// whole range is an ancestor of both bounds), and the factor arithmetic
// matches basisRangeSum term for term. Bounds are clamped per axis; an
// empty intersection returns 0.
func (t *errTree2D) rangeSum(coefs []Coef, xlo, xhi, ylo, yhi int64) float64 {
	if xlo < 0 {
		xlo = 0
	}
	if xhi >= t.u {
		xhi = t.u - 1
	}
	if ylo < 0 {
		ylo = 0
	}
	if yhi >= t.u {
		yhi = t.u - 1
	}
	if xlo > xhi || ylo > yhi {
		return 0
	}
	var xrow, yrow [128]int64
	var xfac, yfac [128]float64
	nx := t.rangeCandidates(xlo, xhi, &xrow, &xfac)
	ny := t.rangeCandidates(ylo, yhi, &yrow, &yfac)
	var stack [288]posTerm
	terms := stack[:0]
	for a := 0; a < nx; a++ {
		g := sort.Search(len(t.gkey), func(i int) bool { return t.gkey[i] >= xrow[a] })
		if g == len(t.gkey) || t.gkey[g] != xrow[a] {
			continue
		}
		glo, ghi := int(t.goff[g]), int(t.goff[g+1])
		base := xrow[a] * t.u
		bx := xfac[a]
		for b := 0; b < ny; b++ {
			terms = t.append2DTarget(coefs, terms, glo, ghi, base+yrow[b], bx*yfac[b])
		}
	}
	return sumByPos(terms)
}
