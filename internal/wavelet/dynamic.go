package wavelet

import (
	"math"
	"sort"

	"wavelethist/internal/heap"
)

// Dynamic maintenance of a wavelet histogram under updates — the paper's
// closing-remarks open problem ("how to incrementally maintain the summary
// when the data stored in the MapReduce cluster is being updated"),
// following the shadow-coefficient approach of Matias, Vitter, Wang [27]:
// keep the retained top-k set plus a larger shadow set of runner-up
// coefficients; apply each update's O(log u) path contributions to
// whichever tracked coefficients it touches; promote shadow coefficients
// the moment they outgrow retained ones.
//
// The maintained histogram is exact on every tracked coefficient; error
// creeps in only when an untracked coefficient grows past the shadow
// threshold between rebuilds, which the shadow margin makes unlikely for
// skewed workloads (the same argument as [27]).
//
// The retained/shadow partition is maintained *incrementally*: the
// retained set lives in a weakest-at-root indexed heap, the shadow set in
// a strongest-at-root one, and each update repairs only the ≤ log2(u)+1
// coefficients on the touched path (O(log u · log(k+shadow)) heap moves).
// Reads never re-select top-k over the whole tracked set: while retained
// membership is unchanged, Representation snapshots copy the previous
// coefficient array, patch just the values that moved, and share the
// previous snapshot's error-tree index.

// stronger is the total order the partition lives under: larger magnitude
// first, ties broken by ascending coefficient index — the same order
// SelectTopK and SortCoefsByMagnitude use, so the incremental partition
// selects exactly the coefficients a full re-selection would.
func stronger(a, b heap.Item) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.ID < b.ID
}

func weaker(a, b heap.Item) bool { return stronger(b, a) }

// Maintainer incrementally maintains a k-term representation.
type Maintainer struct {
	u      int64
	logu   uint
	k      int
	shadow int // tracked coefficients beyond k

	coefs map[int64]float64 // tracked coefficient values (exact)

	// The incrementally maintained partition. Invariant: ret holds the
	// top-min(k, tracked) coefficients under the `stronger` order (its
	// root is the weakest retained one), sha holds the rest (its root is
	// the strongest shadow one), and every retained coefficient is
	// stronger than every shadow one.
	ret *heap.Indexed
	sha *heap.Indexed

	// Snapshot machinery. rep is the last representation handed out and
	// is immutable from that moment on (registry snapshots may hold it
	// forever). While retained membership is unchanged, the next read
	// copies rep's coefficient array, patches only the slots listed in
	// dirtyIdx (or all of them once the list would outgrow k), and
	// shares rep's error-tree index — the index stores positions, not
	// values. A membership change invalidates slots and forces a full
	// rebuild on the next read.
	rep         *Representation
	slots       map[int64]int32 // coefficient index -> slot in rep.Coefs
	dirtyIdx    []int64         // retained coefficients whose values moved
	patchAll    bool
	memberDirty bool

	opsBase int64 // heap moves accumulated before a shadow-heap rebuild
}

// NewMaintainer starts maintenance from a full coefficient set (e.g. the
// non-zero coefficients of an initial build). shadow <= 0 defaults to 4k.
func NewMaintainer(u int64, initial []Coef, k, shadow int) *Maintainer {
	if !IsPowerOfTwo(u) {
		panic("wavelet: maintainer domain must be a power of two")
	}
	if k < 1 {
		panic("wavelet: maintainer k must be >= 1")
	}
	if shadow <= 0 {
		shadow = 4 * k
	}
	m := &Maintainer{
		u:           u,
		logu:        Log2(u),
		k:           k,
		shadow:      shadow,
		coefs:       make(map[int64]float64),
		ret:         heap.NewIndexed(weaker),
		sha:         heap.NewIndexed(stronger),
		memberDirty: true,
	}
	// Track the top (k + shadow) initial coefficients; SelectTopK returns
	// them strongest-first, so the first k seed the retained set.
	m.seed(SelectTopK(initial, k+shadow))
	return m
}

// RestoreMaintainer rebuilds a maintainer from a persisted tracked set
// (the slice TrackedCoefs returned). Unlike NewMaintainer it tracks every
// given coefficient — a live maintainer adopts coefficients beyond
// k+shadow between compactions, and truncating them on restore would
// diverge from the saved state. Because the retained/shadow partition is
// a pure function of the tracked set under the `stronger` order, the
// restored maintainer is state-identical to the one that was saved.
func RestoreMaintainer(u int64, tracked []Coef, k, shadow int) *Maintainer {
	m := NewMaintainer(u, nil, k, shadow)
	m.seed(SelectTopK(tracked, len(tracked)))
	return m
}

// seed installs coefficients (given strongest-first) into the empty
// partition: the first k retained, the rest shadow.
func (m *Maintainer) seed(coefs []Coef) {
	for _, c := range coefs {
		if _, dup := m.coefs[c.Index]; dup || c.Value == 0 {
			continue
		}
		m.coefs[c.Index] = c.Value
		it := heap.Item{ID: c.Index, Score: math.Abs(c.Value)}
		if m.ret.Len() < m.k {
			m.ret.Push(it)
		} else {
			m.sha.Push(it)
		}
	}
}

// K returns the maintained representation size.
func (m *Maintainer) K() int { return m.k }

// Domain returns the key-domain size u.
func (m *Maintainer) Domain() int64 { return m.u }

// Shadow returns the configured shadow-set size (tracked slots beyond k).
func (m *Maintainer) Shadow() int { return m.shadow }

// Tracked returns the number of tracked (retained + shadow) coefficients.
func (m *Maintainer) Tracked() int { return len(m.coefs) }

// TrackedCoefs returns a copy of the tracked coefficient set (retained
// and shadow, unspecified order) — the state a caller would persist or
// re-seed a maintainer from.
func (m *Maintainer) TrackedCoefs() []Coef {
	out := make([]Coef, 0, len(m.coefs))
	for idx, v := range m.coefs {
		out = append(out, Coef{Index: idx, Value: v})
	}
	return out
}

// RepairOps returns the cumulative number of heap item moves performed by
// incremental partition repairs. Regression tests bound its growth per
// update to O(log u · log(k+shadow)) — independent of the tracked-set
// size — to prove updates never re-heapify the whole tracked set.
func (m *Maintainer) RepairOps() int64 {
	return m.opsBase + m.ret.Moves() + m.sha.Moves()
}

// Update applies delta occurrences of key x (delta may be negative for
// deletions). O(log u) path coefficients touched, each repaired with
// O(log(k+shadow)) heap moves: tracked ones are adjusted exactly, and any
// path coefficient that becomes large enough to matter is newly tracked
// (it starts from the correct current value only if it was tracked before
// — untracked path coefficients are adopted with just this update's
// contribution, the [27] approximation).
func (m *Maintainer) Update(x int64, delta float64) {
	if x < 0 || x >= m.u {
		panic("wavelet: update key out of domain")
	}
	if delta == 0 {
		return
	}
	m.applyCoef(0, delta/math.Sqrt(float64(m.u)))
	for j := uint(0); j < m.logu; j++ {
		rangeLen := m.u >> j
		k := x / rangeLen
		contrib := delta / math.Sqrt(float64(rangeLen))
		if x-k*rangeLen < rangeLen/2 {
			contrib = -contrib
		}
		m.applyCoef(int64(1)<<j+k, contrib)
	}
	// Bound memory: when tracking grows well past k+shadow, drop the
	// weakest shadow tail.
	if len(m.coefs) > 2*(m.k+m.shadow) {
		m.compact()
	}
}

// applyCoef adds contrib to one tracked-or-adopted coefficient and
// repairs the retained/shadow partition around it.
func (m *Maintainer) applyCoef(idx int64, contrib float64) {
	old, tracked := m.coefs[idx]
	nv := old + contrib
	if nv == 0 {
		if !tracked {
			return
		}
		delete(m.coefs, idx)
		if _, ok := m.ret.Remove(idx); ok {
			m.markMemberDirty()
			// Refill the freed retained slot with the strongest shadow.
			if it, ok := m.sha.PopRoot(); ok {
				m.ret.Push(it)
			}
		} else {
			m.sha.Remove(idx)
		}
		return
	}
	m.coefs[idx] = nv
	it := heap.Item{ID: idx, Score: math.Abs(nv)}
	switch {
	case m.ret.Has(idx):
		m.ret.Fix(idx, it.Score)
		m.markValueDirty(idx)
		// The changed coefficient may now be weaker than the strongest
		// shadow; swap across the boundary until the invariant holds.
		for {
			rr, _ := m.ret.Root()
			sr, ok := m.sha.Root()
			if !ok || !stronger(sr, rr) {
				break
			}
			m.sha.PopRoot()
			m.ret.PopRoot()
			m.ret.Push(sr)
			m.sha.Push(rr)
			m.markMemberDirty()
		}
	case m.sha.Has(idx):
		// Decide promotion on the new score first; Remove works off the
		// position map, so a promoted coefficient never pays a Fix sift
		// it is about to undo.
		if m.ret.Len() < m.k {
			m.sha.Remove(idx)
			m.ret.Push(it)
			m.markMemberDirty()
		} else if rr, _ := m.ret.Root(); stronger(it, rr) {
			m.sha.Remove(idx)
			m.ret.PopRoot()
			m.ret.Push(it)
			m.sha.Push(rr)
			m.markMemberDirty()
		} else {
			m.sha.Fix(idx, it.Score)
		}
	default:
		// Untracked path coefficient: adopt it (the [27] rule).
		if m.ret.Len() < m.k {
			m.ret.Push(it)
			m.markMemberDirty()
		} else if rr, _ := m.ret.Root(); stronger(it, rr) {
			m.ret.PopRoot()
			m.ret.Push(it)
			m.sha.Push(rr)
			m.markMemberDirty()
		} else {
			m.sha.Push(it)
		}
	}
}

func (m *Maintainer) markMemberDirty() {
	m.memberDirty = true
	m.dirtyIdx = m.dirtyIdx[:0]
	m.patchAll = false
}

func (m *Maintainer) markValueDirty(idx int64) {
	if m.memberDirty || m.rep == nil || m.patchAll {
		return
	}
	if len(m.dirtyIdx) >= m.k {
		m.patchAll = true
		m.dirtyIdx = m.dirtyIdx[:0]
		return
	}
	m.dirtyIdx = append(m.dirtyIdx, idx)
}

// compact trims the shadow set back so tracked coefficients total
// k+shadow, dropping the weakest. Amortized: it runs at most once per
// ~(k+shadow)/log2(u) updates, since each update adopts at most
// log2(u)+1 new coefficients.
func (m *Maintainer) compact() {
	keep := m.k + m.shadow - m.ret.Len()
	if keep < 0 {
		keep = 0
	}
	items := m.sha.Items()
	if len(items) <= keep {
		return
	}
	sort.Slice(items, func(i, j int) bool { return stronger(items[i], items[j]) })
	m.opsBase += m.sha.Moves()
	m.sha = heap.NewIndexed(stronger)
	for _, it := range items[:keep] {
		m.sha.Push(it)
	}
	for _, it := range items[keep:] {
		delete(m.coefs, it.ID)
	}
}

// Representation returns the current k-term representation (the retained
// set). The returned value is immutable and safe to publish; the result
// is cached until the next Update. After value-only changes the snapshot
// is a copy-and-patch of the previous one sharing its error-tree index;
// only a retained-membership change rebuilds the array and index.
func (m *Maintainer) Representation() *Representation {
	if m.rep == nil || m.memberDirty {
		m.rebuildRep()
	} else if m.patchAll || len(m.dirtyIdx) > 0 {
		m.patchRep()
	}
	return m.rep
}

func (m *Maintainer) rebuildRep() {
	items := m.ret.Items()
	sort.Slice(items, func(i, j int) bool { return stronger(items[i], items[j]) })
	cs := make([]Coef, len(items))
	slots := make(map[int64]int32, len(items))
	for i, it := range items {
		cs[i] = Coef{Index: it.ID, Value: m.coefs[it.ID]}
		slots[it.ID] = int32(i)
	}
	m.rep = &Representation{U: m.u, Coefs: cs, tree: newErrTree(m.u, cs)}
	m.slots = slots
	m.memberDirty = false
	m.dirtyIdx = m.dirtyIdx[:0]
	m.patchAll = false
}

func (m *Maintainer) patchRep() {
	cs := make([]Coef, len(m.rep.Coefs))
	copy(cs, m.rep.Coefs)
	if m.patchAll {
		for i := range cs {
			cs[i].Value = m.coefs[cs[i].Index]
		}
	} else {
		for _, idx := range m.dirtyIdx {
			cs[m.slots[idx]].Value = m.coefs[idx]
		}
	}
	m.rep = &Representation{U: m.u, Coefs: cs, tree: m.rep.tree}
	m.dirtyIdx = m.dirtyIdx[:0]
	m.patchAll = false
}
