package wavelet

import (
	"math"

	"wavelethist/internal/heap"
)

// Dynamic maintenance of a wavelet histogram under updates — the paper's
// closing-remarks open problem ("how to incrementally maintain the summary
// when the data stored in the MapReduce cluster is being updated"),
// following the shadow-coefficient approach of Matias, Vitter, Wang [27]:
// keep the retained top-k set plus a larger shadow set of runner-up
// coefficients; apply each update's O(log u) path contributions to
// whichever tracked coefficients it touches; periodically promote shadow
// coefficients that have outgrown retained ones.
//
// The maintained histogram is exact on every tracked coefficient; error
// creeps in only when an untracked coefficient grows past the shadow
// threshold between rebuilds, which the shadow margin makes unlikely for
// skewed workloads (the same argument as [27]).

// Maintainer incrementally maintains a k-term representation.
type Maintainer struct {
	u      int64
	logu   uint
	k      int
	shadow int // tracked coefficients beyond k

	coefs map[int64]float64 // tracked coefficient values (exact)
	dirty bool
	rep   *Representation // cached current top-k; rebuilt lazily
}

// NewMaintainer starts maintenance from a full coefficient set (e.g. the
// non-zero coefficients of an initial build). shadow <= 0 defaults to 4k.
func NewMaintainer(u int64, initial []Coef, k, shadow int) *Maintainer {
	if !IsPowerOfTwo(u) {
		panic("wavelet: maintainer domain must be a power of two")
	}
	if k < 1 {
		panic("wavelet: maintainer k must be >= 1")
	}
	if shadow <= 0 {
		shadow = 4 * k
	}
	m := &Maintainer{
		u:      u,
		logu:   Log2(u),
		k:      k,
		shadow: shadow,
		coefs:  make(map[int64]float64),
		dirty:  true,
	}
	// Track the top (k + shadow) initial coefficients.
	top := SelectTopK(initial, k+shadow)
	for _, c := range top {
		m.coefs[c.Index] = c.Value
	}
	return m
}

// K returns the maintained representation size.
func (m *Maintainer) K() int { return m.k }

// Domain returns the key-domain size u.
func (m *Maintainer) Domain() int64 { return m.u }

// Tracked returns the number of tracked (retained + shadow) coefficients.
func (m *Maintainer) Tracked() int { return len(m.coefs) }

// Update applies delta occurrences of key x (delta may be negative for
// deletions). O(log u): the update touches exactly the log2(u)+1
// coefficients on x's root-to-leaf path; tracked ones are adjusted
// exactly, and any path coefficient that becomes large enough to matter
// is newly tracked (it starts from the correct current value only if it
// was tracked before — untracked path coefficients are adopted with just
// this update's contribution, the [27] approximation).
func (m *Maintainer) Update(x int64, delta float64) {
	if x < 0 || x >= m.u {
		panic("wavelet: update key out of domain")
	}
	if delta == 0 {
		return
	}
	m.dirty = true
	m.apply(0, delta/math.Sqrt(float64(m.u)))
	for j := uint(0); j < m.logu; j++ {
		rangeLen := m.u >> j
		k := x / rangeLen
		contrib := delta / math.Sqrt(float64(rangeLen))
		if x-k*rangeLen < rangeLen/2 {
			contrib = -contrib
		}
		m.apply(int64(1)<<j+k, contrib)
	}
	// Bound memory: when tracking grows well past k+shadow, drop the
	// smallest-magnitude tail.
	if len(m.coefs) > 2*(m.k+m.shadow) {
		m.compact()
	}
}

func (m *Maintainer) apply(idx int64, contrib float64) {
	nv := m.coefs[idx] + contrib
	if nv == 0 {
		delete(m.coefs, idx)
	} else {
		m.coefs[idx] = nv
	}
}

// compact trims tracked coefficients back to k+shadow by magnitude.
func (m *Maintainer) compact() {
	h := heap.NewTopK(m.k + m.shadow)
	for idx, v := range m.coefs {
		h.Push(heap.Item{ID: idx, Score: math.Abs(v)})
	}
	kept := make(map[int64]float64, m.k+m.shadow)
	for _, it := range h.Items() {
		kept[it.ID] = m.coefs[it.ID]
	}
	m.coefs = kept
}

// Representation returns the current k-term representation (top-k of the
// tracked set). The result is cached until the next Update.
func (m *Maintainer) Representation() *Representation {
	if m.dirty || m.rep == nil {
		m.rep = NewRepresentation(m.u, SelectTopKMap(m.coefs, m.k))
		m.dirty = false
	}
	return m.rep
}
