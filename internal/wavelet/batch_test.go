package wavelet

import (
	"math"
	"testing"

	"wavelethist/internal/zipf"
)

// TestBatchPointsMatchesScalar is the tentpole equivalence property: for
// every domain/k shape (including k=0), a batch of keys — duplicated,
// unsorted, and partly out-of-domain — must answer bit-identically to
// per-key PointEstimate calls.
func TestBatchPointsMatchesScalar(t *testing.T) {
	r := zipf.NewRNG(21)
	for _, u := range []int64{1, 2, 4, 64, 1 << 12, 1 << 20} {
		for _, k := range []int{0, 1, 7, 64, 300, 2048} {
			rep := randomRep(r, u, k)
			for _, n := range []int{0, 1, 3, 17, 256} {
				xs := make([]int64, 0, n)
				for len(xs) < n {
					switch {
					case r.Bernoulli(0.1):
						xs = append(xs, r.Int63n(3*u)-u) // often off-domain
					case len(xs) > 0 && r.Bernoulli(0.2):
						xs = append(xs, xs[r.Int63n(int64(len(xs)))]) // duplicate
					default:
						xs = append(xs, r.Int63n(u))
					}
				}
				out := make([]float64, n)
				rep.BatchPoints(xs, out)
				for i, x := range xs {
					if want := rep.PointEstimate(x); !bitEq(out[i], want) {
						t.Fatalf("u=%d k=%d n=%d: BatchPoints[%d] key %d = %x, scalar %x",
							u, k, n, i, x, math.Float64bits(out[i]), math.Float64bits(want))
					}
				}
			}
		}
	}
}

// TestBatchRangesMatchesScalar covers the two-walker range sweep against
// scalar RangeSum, including inverted, clamped, and fully off-domain
// bounds and ranges that share one dyadic cell at deep levels.
func TestBatchRangesMatchesScalar(t *testing.T) {
	r := zipf.NewRNG(22)
	for _, u := range []int64{1, 2, 64, 1 << 12, 1 << 20} {
		for _, k := range []int{0, 1, 64, 512} {
			rep := randomRep(r, u, k)
			n := 200
			los := make([]int64, n)
			his := make([]int64, n)
			for i := 0; i < n; i++ {
				switch {
				case i < 8: // deliberate edge shapes
					edge := [][2]int64{
						{0, u - 1}, {0, 0}, {u - 1, u - 1}, {5, 2},
						{-100, u + 50}, {-10, -5}, {u, u + 100},
						{math.MinInt64, math.MaxInt64},
					}[i]
					los[i], his[i] = edge[0], edge[1]
				case r.Bernoulli(0.3): // narrow ranges inside one cell
					lo := r.Int63n(u)
					los[i], his[i] = lo, lo+r.Int63n(4)
				default:
					los[i] = r.Int63n(3*u) - u
					his[i] = r.Int63n(3*u) - u
				}
			}
			out := make([]float64, n)
			rep.BatchRanges(los, his, out)
			for i := range los {
				if want := rep.RangeSum(los[i], his[i]); !bitEq(out[i], want) {
					t.Fatalf("u=%d k=%d: BatchRanges[%d] (%d, %d) = %x, scalar %x",
						u, k, i, los[i], his[i], math.Float64bits(out[i]), math.Float64bits(want))
				}
			}
		}
	}
}

// TestBatchPoints2DMatchesScalar checks the 2D shared walk: sorted
// (x, y) runs, per-x ancestor reuse, and the row-group merge joins must
// reproduce scalar PointEstimate bit for bit.
func TestBatchPoints2DMatchesScalar(t *testing.T) {
	r := zipf.NewRNG(23)
	for _, u := range []int64{1, 2, 16, 256, 1 << 10} {
		for _, k := range []int{0, 1, 40, 300} {
			coefs := make([]Coef, 0, k)
			for i := 0; i < k; i++ {
				idx := r.Int63n(u * u)
				if i > 0 && r.Bernoulli(0.15) {
					idx = coefs[r.Int63n(int64(len(coefs)))].Index
				}
				coefs = append(coefs, Coef{Index: idx, Value: (r.Float64() - 0.5) * 1000})
			}
			rep := NewRepresentation2D(u, coefs)
			n := 220
			xs := make([]int64, n)
			ys := make([]int64, n)
			for i := 0; i < n; i++ {
				xs[i] = r.Int63n(3*u) - u
				ys[i] = r.Int63n(3*u) - u
				if i > 0 && r.Bernoulli(0.25) {
					xs[i] = xs[r.Int63n(int64(i))] // shared x runs
				}
				if i > 0 && r.Bernoulli(0.1) {
					j := r.Int63n(int64(i))
					xs[i], ys[i] = xs[j], ys[j] // exact duplicates
				}
			}
			out := make([]float64, n)
			rep.BatchPoints(xs, ys, out)
			for i := range xs {
				if want := rep.PointEstimate(xs[i], ys[i]); !bitEq(out[i], want) {
					t.Fatalf("u=%d k=%d: BatchPoints[%d] (%d, %d) = %x, scalar %x",
						u, k, i, xs[i], ys[i], math.Float64bits(out[i]), math.Float64bits(want))
				}
			}
		}
	}
}

// TestBatchScalarFallback pins the hand-rolled-literal path: a
// Representation without an error tree still answers batches (via the
// scalar loop), bit-identical to per-key calls.
func TestBatchScalarFallback(t *testing.T) {
	rep := &Representation{U: 8, Coefs: []Coef{{Index: 0, Value: 4}, {Index: 3, Value: -2}}}
	xs := []int64{-1, 0, 3, 7, 8}
	out := make([]float64, len(xs))
	rep.BatchPoints(xs, out)
	for i, x := range xs {
		if want := rep.PointEstimate(x); !bitEq(out[i], want) {
			t.Fatalf("fallback BatchPoints[%d] = %v, want %v", i, out[i], want)
		}
	}
	los, his := []int64{0, 2, 5}, []int64{7, 3, 1}
	rout := make([]float64, len(los))
	rep.BatchRanges(los, his, rout)
	for i := range los {
		if want := rep.RangeSum(los[i], his[i]); !bitEq(rout[i], want) {
			t.Fatalf("fallback BatchRanges[%d] = %v, want %v", i, rout[i], want)
		}
	}
	rep2 := &Representation2D{U: 4, Coefs: []Coef{{Index: 5, Value: 3}}}
	xs2, ys2 := []int64{0, 1, 3}, []int64{2, 1, 0}
	out2 := make([]float64, len(xs2))
	rep2.BatchPoints(xs2, ys2, out2)
	for i := range xs2 {
		if want := rep2.PointEstimate(xs2[i], ys2[i]); !bitEq(out2[i], want) {
			t.Fatalf("fallback 2D BatchPoints[%d] = %v, want %v", i, out2[i], want)
		}
	}
}

// TestBatchAllocationFree pins the steady-state serving property the
// pooled scratch arena exists for: batch queries allocate nothing once
// the pool is warm.
func TestBatchAllocationFree(t *testing.T) {
	r := zipf.NewRNG(24)
	const u = 1 << 20
	rep := randomRep(r, u, 2048)
	n := 256
	xs := make([]int64, n)
	los := make([]int64, n)
	his := make([]int64, n)
	for i := range xs {
		xs[i] = r.Int63n(u)
		los[i] = r.Int63n(u)
		his[i] = los[i] + r.Int63n(u/4)
	}
	out := make([]float64, n)
	rep.BatchPoints(xs, out) // warm the pool
	if a := testing.AllocsPerRun(100, func() { rep.BatchPoints(xs, out) }); a != 0 {
		t.Errorf("BatchPoints allocates %v per call, want 0", a)
	}
	rep.BatchRanges(los, his, out)
	if a := testing.AllocsPerRun(100, func() { rep.BatchRanges(los, his, out) }); a != 0 {
		t.Errorf("BatchRanges allocates %v per call, want 0", a)
	}
}

// FuzzBatchPoints feeds arbitrary key bytes through the batch executor
// and demands bit-identical agreement with scalar PointEstimate — the
// fuzz half of the tentpole's equivalence contract.
func FuzzBatchPoints(f *testing.F) {
	const u = 1 << 16
	r := zipf.NewRNG(25)
	rep := randomRep(r, u, 512)
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 1})
	f.Add([]byte{255, 255, 255, 255, 255, 255, 255, 255, 0, 0, 0, 0, 0, 0, 255, 255})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		n := len(data) / 8
		if n > 1024 {
			n = 1024
		}
		xs := make([]int64, n)
		for i := 0; i < n; i++ {
			var v uint64
			for b := 0; b < 8; b++ {
				v = v<<8 | uint64(data[i*8+b])
			}
			xs[i] = int64(v)
			if i%3 == 0 {
				xs[i] = int64(v % (3 * u)) // keep some keys near the domain
			}
		}
		out := make([]float64, n)
		rep.BatchPoints(xs, out)
		for i, x := range xs {
			if want := rep.PointEstimate(x); !bitEq(out[i], want) {
				t.Fatalf("BatchPoints[%d] key %d = %x, scalar %x", i, x,
					math.Float64bits(out[i]), math.Float64bits(want))
			}
		}
	})
}

// FuzzBatchRanges is FuzzBatchPoints for the two-walker range sweep.
func FuzzBatchRanges(f *testing.F) {
	const u = 1 << 16
	r := zipf.NewRNG(26)
	rep := randomRep(r, u, 512)
	f.Add([]byte{0, 0, 1, 0, 0, 200, 255, 255})
	f.Add([]byte{9, 9, 9, 9, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		n := len(data) / 8
		if n > 1024 {
			n = 1024
		}
		los := make([]int64, n)
		his := make([]int64, n)
		for i := 0; i < n; i++ {
			var v uint64
			for b := 0; b < 4; b++ {
				v = v<<8 | uint64(data[i*8+b])
			}
			los[i] = int64(v%(3*u)) - u
			v = 0
			for b := 4; b < 8; b++ {
				v = v<<8 | uint64(data[i*8+b])
			}
			his[i] = int64(v%(3*u)) - u
		}
		out := make([]float64, n)
		rep.BatchRanges(los, his, out)
		for i := range los {
			if want := rep.RangeSum(los[i], his[i]); !bitEq(out[i], want) {
				t.Fatalf("BatchRanges[%d] (%d, %d) = %x, scalar %x", i, los[i], his[i],
					math.Float64bits(out[i]), math.Float64bits(want))
			}
		}
	})
}

func BenchmarkBatchPoints(b *testing.B) {
	rep := benchRep(b, 1<<20, 2048)
	r := zipf.NewRNG(27)
	n := 256
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = r.Int63n(1 << 20)
	}
	out := make([]float64, n)
	rep.BatchPoints(xs, out)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep.BatchPoints(xs, out)
	}
}

func BenchmarkBatchPointsScalarLoop(b *testing.B) {
	rep := benchRep(b, 1<<20, 2048)
	r := zipf.NewRNG(27)
	n := 256
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = r.Int63n(1 << 20)
	}
	out := make([]float64, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, x := range xs {
			out[j] = rep.PointEstimate(x)
		}
	}
}

func BenchmarkBatchRanges(b *testing.B) {
	rep := benchRep(b, 1<<20, 2048)
	r := zipf.NewRNG(28)
	n := 256
	los := make([]int64, n)
	his := make([]int64, n)
	for i := range los {
		los[i] = r.Int63n(1 << 20)
		his[i] = los[i] + r.Int63n(1<<18)
	}
	out := make([]float64, n)
	rep.BatchRanges(los, his, out)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep.BatchRanges(los, his, out)
	}
}
