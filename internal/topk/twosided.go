package topk

import (
	"math"
	"sort"

	"wavelethist/internal/heap"
)

// MagnitudeLowerBound is the two-sided threshold τ(x): given the upper
// bound τ⁺ and lower bound τ⁻ on an item's aggregate score, the provable
// lower bound on |score| is 0 when the bounds straddle zero, else the
// smaller magnitude. Shared by the reference protocol here and the
// MapReduce instantiation in internal/core.
func MagnitudeLowerBound(tauPlus, tauMinus float64) float64 {
	if (tauPlus >= 0) != (tauMinus >= 0) {
		return 0
	}
	return math.Min(math.Abs(tauPlus), math.Abs(tauMinus))
}

// MagnitudeUpperBound is the matching upper bound on |score|: the larger
// magnitude of the two bounds. Candidates are pruned when it cannot reach
// the round-2 threshold T2.
func MagnitudeUpperBound(tauPlus, tauMinus float64) float64 {
	return math.Max(math.Abs(tauPlus), math.Abs(tauMinus))
}

// TwoSided runs the paper's three-round modified TPUT (Section 3): exact
// top-k items by aggregate *magnitude* over signed local scores. It can be
// seen as interleaving two TPUT instances (one over the highest, one over
// the lowest scores) with magnitude-aware thresholds.
//
// Scores absent from a node's map are implicitly zero, exactly like a
// split's zero wavelet coefficients: "the k-th highest score a node sends"
// is therefore floored at 0 (and the k-th lowest capped at 0) when a node
// holds fewer than k positive (negative) scores, since conceptual zeros
// pad the ranking. This keeps the τ⁺/τ⁻ bounds sound for sparse nodes.
func TwoSided(nodes []Scores, k int) ([]Item, Stats) {
	var st Stats
	m := len(nodes)
	if m == 0 || k <= 0 {
		return nil, st
	}

	// ---- Round 1: each node sends its k highest and k lowest items. ----
	sent := make([]map[int64]bool, m)     // per node: ids already uploaded
	known := make([]map[int64]float64, m) // coordinator: exact scores per node
	tildeHigh := make([]float64, m)       // w̃⁺_j: k-th highest sent, floored at 0
	tildeLow := make([]float64, m)        // w̃⁻_j: k-th lowest sent, capped at 0
	for j, n := range nodes {
		sent[j] = make(map[int64]bool)
		known[j] = make(map[int64]float64)
		hi := heap.NewTopK(k)
		lo := heap.NewBottomK(k)
		for id, v := range n {
			hi.Push(heap.Item{ID: id, Score: v})
			lo.Push(heap.Item{ID: id, Score: v})
		}
		upload := func(items []heap.Item) {
			for _, it := range items {
				if !sent[j][it.ID] {
					sent[j][it.ID] = true
					known[j][it.ID] = it.Score
					st.Round1Items++
				}
			}
		}
		hiItems, loItems := hi.Sorted(), lo.Sorted()
		upload(hiItems)
		upload(loItems)
		// Thresholds for unsent items at this node (zeros pad the domain).
		if len(hiItems) == k {
			tildeHigh[j] = math.Max(hiItems[k-1].Score, 0)
		}
		if len(loItems) == k {
			tildeLow[j] = math.Min(loItems[k-1].Score, 0)
		}
	}

	// Coordinator: lower bound τ(x) on |r(x)| for every item seen.
	seen := make(map[int64]bool)
	for j := range known {
		for id := range known[j] {
			seen[id] = true
		}
	}
	tau := func(id int64, missHigh, missLow func(j int) float64) (tauPlus, tauMinus float64) {
		for j := 0; j < m; j++ {
			if v, ok := known[j][id]; ok {
				tauPlus += v
				tauMinus += v
				continue
			}
			tauPlus += missHigh(j)
			tauMinus += missLow(j)
		}
		return
	}

	t1Heap := heap.NewTopK(k)
	for id := range seen {
		tp, tm := tau(id,
			func(j int) float64 { return tildeHigh[j] },
			func(j int) float64 { return tildeLow[j] })
		t1Heap.Push(heap.Item{ID: id, Score: MagnitudeLowerBound(tp, tm)})
	}
	var t1 float64
	if t1Heap.Full() {
		it, _ := t1Heap.Min()
		t1 = it.Score
	}
	thresh := t1 / float64(m)

	// ---- Round 2: nodes upload all unsent items with |score| > T1/m. ----
	for j, n := range nodes {
		for id, v := range n {
			if sent[j][id] {
				continue
			}
			if math.Abs(v) > thresh {
				sent[j][id] = true
				known[j][id] = v
				seen[id] = true
				st.Round2Items++
			}
		}
	}

	// Refine bounds with the round-2 guarantee |r_j(x)| <= T1/m for every
	// unsent (j, x); compute T2; prune R.
	type bounds struct{ plus, minus float64 }
	refined := make(map[int64]bounds, len(seen))
	t2Heap := heap.NewTopK(k)
	for id := range seen {
		tp, tm := tau(id,
			func(int) float64 { return thresh },
			func(int) float64 { return -thresh })
		refined[id] = bounds{tp, tm}
		t2Heap.Push(heap.Item{ID: id, Score: MagnitudeLowerBound(tp, tm)})
	}
	var t2 float64
	if t2Heap.Full() {
		it, _ := t2Heap.Min()
		t2 = it.Score
	}
	candidates := make([]int64, 0, len(seen))
	for id, b := range refined {
		if MagnitudeUpperBound(b.plus, b.minus) >= t2 {
			candidates = append(candidates, id)
		}
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })
	st.CandidateSize = len(candidates)

	// ---- Round 3: nodes send unsent scores for the candidate set R. ----
	final := make(map[int64]float64, len(candidates))
	for _, id := range candidates {
		var s float64
		for j, n := range nodes {
			if v, ok := known[j][id]; ok {
				s += v
				continue
			}
			if v, ok := n[id]; ok {
				s += v
				st.Round3Items++
			}
		}
		final[id] = s
	}
	return selectTop(final, k, math.Abs), st
}
