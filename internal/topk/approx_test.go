package topk

import (
	"math"
	"testing"

	"wavelethist/internal/zipf"
)

func zipfNodes(m, itemsPerNode int, u int64, seed uint64) []Scores {
	r := zipf.NewRNG(seed)
	z := zipf.NewZipf(u, 1.2)
	nodes := make([]Scores, m)
	for j := range nodes {
		nodes[j] = Scores{}
		for i := 0; i < itemsPerNode; i++ {
			id := z.Sample(r)
			v := 1.0
			if id%3 == 0 {
				v = -1
			}
			nodes[j][id] += v
		}
	}
	return nodes
}

func TestTwoSidedApproxThetaOneNearExact(t *testing.T) {
	// Even θ=1 skips the exact-score round, so reported scores are
	// approximate — but the returned top-k *set* should be near-exact.
	nodes := zipfNodes(16, 2000, 1<<12, 3)
	const k = 15
	exact, _ := TwoSided(nodes, k)
	approx, _ := TwoSidedApprox(nodes, k, 1.0)
	if r := Recall(approx, exact); r < 0.85 {
		t.Errorf("θ=1 recall = %v, want >= 0.85", r)
	}
}

func TestTwoSidedApproxTradeoff(t *testing.T) {
	nodes := zipfNodes(24, 3000, 1<<12, 7)
	const k = 20
	exact, exactStats := TwoSided(nodes, k)
	prevComm := exactStats.TotalItems() + 1
	for _, theta := range []float64{1.0, 2.0, 4.0} {
		approx, st := TwoSidedApprox(nodes, k, theta)
		if st.TotalItems() > prevComm {
			t.Errorf("θ=%v: communication grew (%d > %d) as the threshold relaxed",
				theta, st.TotalItems(), prevComm)
		}
		prevComm = st.TotalItems()
		if r := Recall(approx, exact); r < 0.5 {
			t.Errorf("θ=%v: recall %v collapsed", theta, r)
		}
		if st.Round3Items != 0 || st.CandidateSize != 0 {
			t.Errorf("θ=%v: approximate protocol must skip round 3", theta)
		}
	}
	// The savings must be real: θ=4 ships less than exact.
	_, relaxed := TwoSidedApprox(nodes, k, 4)
	if relaxed.TotalItems() >= exactStats.TotalItems() {
		t.Errorf("relaxed protocol (%d items) not cheaper than exact (%d)",
			relaxed.TotalItems(), exactStats.TotalItems())
	}
}

func TestTwoSidedApproxPanicsOnBadTheta(t *testing.T) {
	for _, theta := range []float64{0, -1, 0.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("θ=%v accepted", theta)
				}
			}()
			TwoSidedApprox([]Scores{{1: 1}}, 1, theta)
		}()
	}
}

func TestRecall(t *testing.T) {
	exact := []Item{{1, 10}, {2, -8}, {3, 5}}
	if r := Recall(exact, exact); r != 1 {
		t.Errorf("self recall = %v", r)
	}
	partial := []Item{{1, 10}, {9, 3}, {8, 1}}
	if r := Recall(partial, exact); math.Abs(r-1.0/3) > 1e-9 {
		t.Errorf("partial recall = %v, want 1/3", r)
	}
	if r := Recall(nil, nil); r != 1 {
		t.Errorf("empty recall = %v", r)
	}
	// Recall is ID-based: score values are irrelevant.
	rescored := []Item{{1, -99}, {2, 0.5}, {3, 7}}
	if r := Recall(rescored, exact); r != 1 {
		t.Errorf("ID recall = %v, want 1", r)
	}
}

func BenchmarkTwoSidedApprox(b *testing.B) {
	nodes := zipfNodes(32, 4000, 1<<14, 9)
	b.Run("exact", func(b *testing.B) {
		var st Stats
		for i := 0; i < b.N; i++ {
			_, st = TwoSided(nodes, 30)
		}
		b.ReportMetric(float64(st.TotalItems()), "items")
	})
	for _, theta := range []float64{2, 4} {
		b.Run("theta="+formatTheta(theta), func(b *testing.B) {
			var st Stats
			for i := 0; i < b.N; i++ {
				_, st = TwoSidedApprox(nodes, 30, theta)
			}
			b.ReportMetric(float64(st.TotalItems()), "items")
		})
	}
}

func formatTheta(t float64) string {
	if t == 2 {
		return "2"
	}
	return "4"
}
