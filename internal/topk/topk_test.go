package topk

import (
	"math"
	"testing"
	"testing/quick"

	"wavelethist/internal/zipf"
)

func magnitudes(items []Item) []float64 {
	out := make([]float64, len(items))
	for i, it := range items {
		out[i] = math.Abs(it.Score)
	}
	return out
}

// sameTop compares a protocol result against brute force, tolerating ties:
// the sorted magnitude sequences must match exactly, and each returned
// item's exact aggregate must equal its reported score.
func sameTopMagnitude(t *testing.T, nodes []Scores, got []Item, k int) {
	t.Helper()
	want := BruteForceTopMagnitude(nodes, k)
	if len(got) != len(want) {
		t.Fatalf("got %d items, want %d", len(got), len(want))
	}
	gm, wm := magnitudes(got), magnitudes(want)
	for i := range gm {
		if math.Abs(gm[i]-wm[i]) > 1e-9 {
			t.Fatalf("magnitude[%d] = %v, want %v (got %v want %v)", i, gm[i], wm[i], got, want)
		}
	}
	// Verify reported scores are the true aggregates.
	for _, it := range got {
		var s float64
		for _, n := range nodes {
			s += n[it.ID]
		}
		if math.Abs(s-it.Score) > 1e-9 {
			t.Fatalf("item %d reported %v, true aggregate %v", it.ID, it.Score, s)
		}
	}
}

func TestTPUTSimple(t *testing.T) {
	nodes := []Scores{
		{1: 10, 2: 5, 3: 1},
		{1: 10, 2: 1, 4: 8},
		{2: 9, 4: 7, 5: 2},
	}
	got, st := TPUT(nodes, 2)
	want := BruteForceTop(nodes, 2)
	if len(got) != 2 || got[0].ID != want[0].ID || got[1].ID != want[1].ID {
		t.Fatalf("got %v, want %v", got, want)
	}
	if st.Round1Items == 0 {
		t.Error("no round-1 messages recorded")
	}
}

func TestTPUTMatchesBruteForceQuick(t *testing.T) {
	f := func(raw []uint16, mSel, kSel uint8) bool {
		m := int(mSel%5) + 1
		k := int(kSel%6) + 1
		nodes := make([]Scores, m)
		for j := range nodes {
			nodes[j] = Scores{}
		}
		for i, rv := range raw {
			id := int64(rv % 64)
			nodes[i%m][id] += float64(rv%100) / 7
		}
		got, _ := TPUT(nodes, k)
		want := BruteForceTop(nodes, k)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if math.Abs(got[i].Score-want[i].Score) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestTPUTRejectsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on negative score")
		}
	}()
	TPUT([]Scores{{1: -1}}, 1)
}

func TestTwoSidedPaperMotivation(t *testing.T) {
	// The case plain TPUT cannot handle: an item whose large-magnitude
	// aggregate is NEGATIVE, assembled from locally-unremarkable scores.
	nodes := []Scores{
		{1: -40, 2: 50, 3: 1},
		{1: -40, 2: -45, 4: 2},
		{1: -40, 2: 1, 5: 3},
	}
	// Aggregates: item1 = -120 (|.|=120), item2 = 6, others tiny.
	got, _ := TwoSided(nodes, 1)
	if len(got) != 1 || got[0].ID != 1 || got[0].Score != -120 {
		t.Fatalf("got %v, want item 1 with score -120", got)
	}
}

func TestTwoSidedMixedSigns(t *testing.T) {
	nodes := []Scores{
		{1: 100, 2: -90, 3: 10, 4: -5},
		{1: -95, 2: -90, 3: 12, 5: 4},
	}
	// item1 = 5, item2 = -180, item3 = 22.
	got, _ := TwoSided(nodes, 2)
	sameTopMagnitude(t, nodes, got, 2)
	if got[0].ID != 2 {
		t.Errorf("top item = %d, want 2", got[0].ID)
	}
}

func TestTwoSidedSingleNode(t *testing.T) {
	nodes := []Scores{{1: 5, 2: -9, 3: 3}}
	got, _ := TwoSided(nodes, 2)
	sameTopMagnitude(t, nodes, got, 2)
}

func TestTwoSidedFewerItemsThanK(t *testing.T) {
	nodes := []Scores{{1: 5}, {2: -3}}
	got, _ := TwoSided(nodes, 10)
	if len(got) != 2 {
		t.Fatalf("got %d items, want 2", len(got))
	}
	sameTopMagnitude(t, nodes, got, 10)
}

func TestTwoSidedSparseNodes(t *testing.T) {
	// Nodes with fewer than k entries: implicit zeros must not break the
	// τ bounds (the w̃ floor/cap at 0).
	nodes := []Scores{
		{1: 3},
		{2: -4},
		{3: 2, 4: -1},
		{},
	}
	got, _ := TwoSided(nodes, 3)
	sameTopMagnitude(t, nodes, got, 3)
}

func TestTwoSidedCancellation(t *testing.T) {
	// Scores that cancel exactly: aggregate 0 should lose to any non-zero.
	nodes := []Scores{
		{1: 100, 2: 1},
		{1: -100, 2: 1},
	}
	got, _ := TwoSided(nodes, 1)
	if got[0].ID != 2 || got[0].Score != 2 {
		t.Fatalf("got %v, want item 2 (cancelled item 1 must lose)", got)
	}
}

func TestTwoSidedAllNegative(t *testing.T) {
	nodes := []Scores{
		{1: -10, 2: -20, 3: -1},
		{1: -15, 2: -2, 4: -8},
	}
	got, _ := TwoSided(nodes, 2)
	sameTopMagnitude(t, nodes, got, 2)
}

// The central property test: TwoSided is exact on adversarial sign
// patterns across random node counts and k.
func TestTwoSidedMatchesBruteForceQuick(t *testing.T) {
	f := func(raw []int16, mSel, kSel uint8) bool {
		m := int(mSel%6) + 1
		k := int(kSel%8) + 1
		nodes := make([]Scores, m)
		for j := range nodes {
			nodes[j] = Scores{}
		}
		for i, rv := range raw {
			id := int64(uint16(rv) % 48)
			nodes[i%m][id] += float64(rv) / 16
		}
		// Drop exact zeros (absent = zero anyway).
		for _, n := range nodes {
			for id, v := range n {
				if v == 0 {
					delete(n, id)
				}
			}
		}
		got, _ := TwoSided(nodes, k)
		want := BruteForceTopMagnitude(nodes, k)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if math.Abs(math.Abs(got[i].Score)-math.Abs(want[i].Score)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 600}); err != nil {
		t.Fatal(err)
	}
}

// Zipf-like workload: heavy skew, many nodes — also verifies the pruning
// actually prunes (communication much less than shipping everything).
func TestTwoSidedPrunes(t *testing.T) {
	r := zipf.NewRNG(3)
	z := zipf.NewZipf(1<<14, 1.2)
	const m = 32
	nodes := make([]Scores, m)
	totalItems := 0
	for j := range nodes {
		nodes[j] = Scores{}
		for i := 0; i < 3000; i++ {
			id := z.Sample(r)
			sign := 1.0
			if id%3 == 0 {
				sign = -1
			}
			nodes[j][id] += sign
		}
		totalItems += len(nodes[j])
	}
	const k = 20
	got, st := TwoSided(nodes, k)
	sameTopMagnitude(t, nodes, got, k)
	if st.TotalItems() >= totalItems {
		t.Errorf("no pruning: protocol sent %d of %d local scores", st.TotalItems(), totalItems)
	}
	if st.CandidateSize == 0 {
		t.Error("empty candidate set")
	}
}

func TestTwoSidedEmpty(t *testing.T) {
	if got, _ := TwoSided(nil, 5); got != nil {
		t.Errorf("nil nodes -> %v", got)
	}
	if got, _ := TwoSided([]Scores{{}, {}}, 3); len(got) != 0 {
		t.Errorf("empty nodes -> %v", got)
	}
}

func TestStatsTotal(t *testing.T) {
	s := Stats{Round1Items: 1, Round2Items: 2, Round3Items: 3}
	if s.TotalItems() != 6 {
		t.Errorf("TotalItems = %d", s.TotalItems())
	}
}

func BenchmarkTwoSided(b *testing.B) {
	r := zipf.NewRNG(1)
	z := zipf.NewZipf(1<<16, 1.1)
	const m = 64
	nodes := make([]Scores, m)
	for j := range nodes {
		nodes[j] = Scores{}
		for i := 0; i < 5000; i++ {
			id := z.Sample(r)
			v := float64(1)
			if id%2 == 0 {
				v = -1
			}
			nodes[j][id] += v
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TwoSided(nodes, 30)
	}
}
