package topk

import (
	"math"

	"wavelethist/internal/heap"
)

// TwoSidedApprox is the paper's Section-4 "attempt (i)": replace exact
// TPUT with an approximate top-k protocol (KLEE-style [28], adapted to
// signed scores and magnitude ranking the same way TwoSided adapts TPUT).
// Like KLEE, it skips the exact-score phase: after round 1 (local top-k /
// bottom-k) and round 2 with the raised threshold θ·T1/m (θ >= 1, fewer
// uploads), it returns the top-k by |partial sum| over the scores actually
// received — each missing per-node score is below θ·T1/m in magnitude, so
// reported scores are θ-approximate and true top-k items can be missed
// only if their mass hides below the raised bar at many nodes.
//
// A naive alternative — keeping round 3 but relaxing the threshold —
// backfires: the looser τ± bounds prune less, so round 3 fetches a larger
// candidate set and total communication *grows*. (Our first implementation
// did exactly that; the regression test now pins the corrected design.)
//
// The paper chose not to pursue this route because it "resolves issue (1)
// [communication] but not (2) [multiple rounds] and (3) [the full scan]" —
// every split is still scanned and two rounds still paid, so any
// approximation budget is better spent on one-round sampling. The tests
// and benchmarks quantify exactly that trade-off.
func TwoSidedApprox(nodes []Scores, k int, theta float64) ([]Item, Stats) {
	if theta < 1 {
		panic("topk: relaxation factor must be >= 1")
	}
	var st Stats
	m := len(nodes)
	if m == 0 || k <= 0 {
		return nil, st
	}

	// Round 1: identical to the exact protocol.
	sent := make([]map[int64]bool, m)
	known := make([]map[int64]float64, m)
	tildeHigh := make([]float64, m)
	tildeLow := make([]float64, m)
	for j, n := range nodes {
		sent[j] = make(map[int64]bool)
		known[j] = make(map[int64]float64)
		hi := heap.NewTopK(k)
		lo := heap.NewBottomK(k)
		for id, v := range n {
			hi.Push(heap.Item{ID: id, Score: v})
			lo.Push(heap.Item{ID: id, Score: v})
		}
		hiItems, loItems := hi.Sorted(), lo.Sorted()
		for _, it := range hiItems {
			if !sent[j][it.ID] {
				sent[j][it.ID] = true
				known[j][it.ID] = it.Score
				st.Round1Items++
			}
		}
		for _, it := range loItems {
			if !sent[j][it.ID] {
				sent[j][it.ID] = true
				known[j][it.ID] = it.Score
				st.Round1Items++
			}
		}
		if len(hiItems) == k {
			tildeHigh[j] = math.Max(hiItems[k-1].Score, 0)
		}
		if len(loItems) == k {
			tildeLow[j] = math.Min(loItems[k-1].Score, 0)
		}
	}

	seen := make(map[int64]bool)
	for j := range known {
		for id := range known[j] {
			seen[id] = true
		}
	}
	bound := func(id int64) float64 {
		var tauPlus, tauMinus float64
		for j := 0; j < m; j++ {
			if v, ok := known[j][id]; ok {
				tauPlus += v
				tauMinus += v
				continue
			}
			tauPlus += tildeHigh[j]
			tauMinus += tildeLow[j]
		}
		if (tauPlus >= 0) != (tauMinus >= 0) {
			return 0
		}
		return math.Min(math.Abs(tauPlus), math.Abs(tauMinus))
	}
	t1h := heap.NewTopK(k)
	for id := range seen {
		t1h.Push(heap.Item{ID: id, Score: bound(id)})
	}
	var t1 float64
	if t1h.Full() {
		it, _ := t1h.Min()
		t1 = it.Score
	}

	// Round 2 with the RAISED threshold θ·T1/m: fewer uploads, but the
	// guarantee "|r_j(x)| <= T1/m for unsent pairs" weakens to θ·T1/m.
	thresh := theta * t1 / float64(m)
	for j, n := range nodes {
		for id, v := range n {
			if sent[j][id] {
				continue
			}
			if math.Abs(v) > thresh {
				sent[j][id] = true
				known[j][id] = v
				seen[id] = true
				st.Round2Items++
			}
		}
	}

	// No round 3: rank by the partial sums of received scores. Each
	// missing (j, x) score satisfies |r_j(x)| <= θ·T1/m.
	final := make(map[int64]float64, len(seen))
	for id := range seen {
		var s float64
		for j := 0; j < m; j++ {
			if v, ok := known[j][id]; ok {
				s += v
			}
		}
		final[id] = s
	}
	return selectTop(final, k, math.Abs), st
}

// Recall returns the fraction of exact top-k item IDs an approximate
// result recovered.
func Recall(approx, exact []Item) float64 {
	if len(exact) == 0 {
		return 1
	}
	ids := make(map[int64]bool, len(approx))
	for _, a := range approx {
		ids[a.ID] = true
	}
	hit := 0
	for _, e := range exact {
		if ids[e.ID] {
			hit++
		}
	}
	return float64(hit) / float64(len(exact))
}
