// Package topk implements the distributed top-k protocols underlying the
// paper's exact algorithm: classic TPUT (Cao & Wang [7], three rounds,
// non-negative scores) and the paper's two-sided modification (Section 3)
// that handles positive and negative scores and ranks by aggregate
// *magnitude* — the property plain TPUT cannot provide because unseen
// scores may be very negative.
//
// The protocols here are pure (in-memory score lists per node) with exact
// per-round message accounting; internal/core instantiates the same logic
// inside MapReduce rounds. Keeping a reference implementation lets us
// property-test protocol correctness against brute force independently of
// the MapReduce machinery.
package topk

import (
	"math"
	"sort"

	"wavelethist/internal/heap"
)

// Scores holds one node's local item scores (absent = 0).
type Scores map[int64]float64

// Item is an (id, aggregate score) result.
type Item struct {
	ID    int64
	Score float64
}

// Stats records protocol communication: the number of (item, score)
// messages uploaded to the coordinator per round, and the candidate-set
// broadcast size of round 3.
type Stats struct {
	Round1Items   int
	Round2Items   int
	Round3Items   int
	CandidateSize int // |R| after round-2 pruning (broadcast to nodes)
}

// TotalItems is the total uploaded (item, score) messages.
func (s Stats) TotalItems() int { return s.Round1Items + s.Round2Items + s.Round3Items }

// BruteForceTop returns the exact top-k by aggregate score (descending;
// ties by ascending id). Reference for tests and tiny inputs.
func BruteForceTop(nodes []Scores, k int) []Item {
	return bruteForce(nodes, k, func(v float64) float64 { return v })
}

// BruteForceTopMagnitude returns the exact top-k by |aggregate score|.
func BruteForceTopMagnitude(nodes []Scores, k int) []Item {
	return bruteForce(nodes, k, math.Abs)
}

func bruteForce(nodes []Scores, k int, rank func(float64) float64) []Item {
	agg := make(map[int64]float64)
	for _, n := range nodes {
		for id, v := range n {
			agg[id] += v
		}
	}
	items := make([]Item, 0, len(agg))
	for id, v := range agg {
		items = append(items, Item{ID: id, Score: v})
	}
	sort.Slice(items, func(i, j int) bool {
		ri, rj := rank(items[i].Score), rank(items[j].Score)
		if ri != rj {
			return ri > rj
		}
		return items[i].ID < items[j].ID
	})
	if len(items) > k {
		items = items[:k]
	}
	return items
}

// TPUT runs classic three-phase TPUT over non-negative scores and returns
// the exact top-k by aggregate sum. Panics if any score is negative (use
// TwoSided for signed scores).
func TPUT(nodes []Scores, k int) ([]Item, Stats) {
	var st Stats
	m := len(nodes)
	if m == 0 || k <= 0 {
		return nil, st
	}

	// Phase 1: each node sends its local top-k; coordinator forms partial
	// sums.
	psum := make(map[int64]float64)
	sent := make([]map[int64]bool, m)
	for j, n := range nodes {
		sent[j] = make(map[int64]bool)
		h := heap.NewTopK(k)
		for id, v := range n {
			if v < 0 {
				panic("topk: TPUT requires non-negative scores")
			}
			h.Push(heap.Item{ID: id, Score: v})
		}
		for _, it := range h.Sorted() {
			psum[it.ID] += it.Score
			sent[j][it.ID] = true
			st.Round1Items++
		}
	}
	tau1 := kthLargest(psum, k, func(v float64) float64 { return v })
	threshold := tau1 / float64(m)

	// Phase 2: nodes send every unsent item with score >= threshold.
	known := make(map[int64]map[int]float64) // id -> node -> exact score
	record := func(id int64, j int, v float64) {
		inner, ok := known[id]
		if !ok {
			inner = make(map[int]float64, m)
			known[id] = inner
		}
		inner[j] = v
	}
	for j, n := range nodes {
		for id, v := range n {
			if sent[j][id] {
				record(id, j, v)
				continue
			}
			if v >= threshold && threshold > 0 {
				record(id, j, v)
				sent[j][id] = true
				st.Round2Items++
			} else if threshold == 0 && v > 0 {
				// Degenerate threshold: everything positive must flow.
				record(id, j, v)
				sent[j][id] = true
				st.Round2Items++
			}
		}
	}
	// Refine: new threshold from refined partial sums; prune candidates
	// whose upper bound cannot reach it.
	refined := make(map[int64]float64, len(known))
	for id, per := range known {
		var s float64
		for _, v := range per {
			s += v
		}
		refined[id] = s
	}
	tau2 := kthLargest(refined, k, func(v float64) float64 { return v })
	candidates := make([]int64, 0, len(known))
	for id, per := range known {
		ub := refined[id] + float64(m-len(per))*threshold
		if ub >= tau2 {
			candidates = append(candidates, id)
		}
	}
	st.CandidateSize = len(candidates)

	// Phase 3: fetch missing exact scores for candidates.
	final := make(map[int64]float64, len(candidates))
	for _, id := range candidates {
		per := known[id]
		s := 0.0
		for j, n := range nodes {
			if v, ok := per[j]; ok {
				s += v
				continue
			}
			if v, ok := n[id]; ok {
				s += v
				st.Round3Items++
			}
		}
		final[id] = s
	}
	return selectTop(final, k, func(v float64) float64 { return v }), st
}

// kthLargest returns the k-th largest rank(v) over the map's values
// (0 if fewer than k entries).
func kthLargest(m map[int64]float64, k int, rank func(float64) float64) float64 {
	h := heap.NewTopK(k)
	for id, v := range m {
		h.Push(heap.Item{ID: id, Score: rank(v)})
	}
	if h.Len() < k {
		return 0
	}
	it, _ := h.Min()
	return it.Score
}

func selectTop(m map[int64]float64, k int, rank func(float64) float64) []Item {
	items := make([]Item, 0, len(m))
	for id, v := range m {
		items = append(items, Item{ID: id, Score: v})
	}
	sort.Slice(items, func(i, j int) bool {
		ri, rj := rank(items[i].Score), rank(items[j].Score)
		if ri != rj {
			return ri > rj
		}
		return items[i].ID < items[j].ID
	})
	if len(items) > k {
		items = items[:k]
	}
	return items
}
