package zipf

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRNGDistinctSeeds(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams from distinct seeds collide %d/64 times", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestRNGInt63nRange(t *testing.T) {
	r := NewRNG(9)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := r.Int63n(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Int63n(7) = %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 8000 || c > 12000 {
			t.Errorf("bucket %d count %d, want ~10000", i, c)
		}
	}
}

func TestRNGFork(t *testing.T) {
	base := NewRNG(5)
	a := base.Fork(1)
	b := base.Fork(2)
	if a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64() {
		t.Error("forked streams look identical")
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(3)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGBernoulliEdges(t *testing.T) {
	r := NewRNG(11)
	if r.Bernoulli(0) {
		t.Error("Bernoulli(0) = true")
	}
	if !r.Bernoulli(1) {
		t.Error("Bernoulli(1) = false")
	}
	hits := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	got := float64(hits) / trials
	if math.Abs(got-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) rate = %v", got)
	}
}

func TestZipfRange(t *testing.T) {
	for _, alpha := range []float64{0.8, 1.0, 1.1, 1.4} {
		z := NewZipf(1000, alpha)
		r := NewRNG(1)
		for i := 0; i < 20000; i++ {
			x := z.Sample(r)
			if x < 1 || x > 1000 {
				t.Fatalf("alpha=%v sample %d out of [1,1000]", alpha, x)
			}
		}
	}
}

// Empirical frequencies must match the exact PMF for every tested alpha,
// including alpha <= 1 where math/rand's Zipf is unusable.
func TestZipfMatchesPMF(t *testing.T) {
	const n = 64
	const samples = 400000
	for _, alpha := range []float64{0.8, 1.0, 1.1, 1.4, 2.0} {
		z := NewZipf(n, alpha)
		r := NewRNG(99)
		counts := make([]int, n+1)
		for i := 0; i < samples; i++ {
			counts[z.Sample(r)]++
		}
		for x := int64(1); x <= n; x++ {
			want := z.PMF(x)
			got := float64(counts[x]) / samples
			// 5-sigma binomial tolerance plus small absolute slack.
			tol := 5*math.Sqrt(want*(1-want)/samples) + 1e-4
			if math.Abs(got-want) > tol {
				t.Errorf("alpha=%v x=%d: freq %v, pmf %v (tol %v)",
					alpha, x, got, want, tol)
			}
		}
	}
}

func TestZipfSkewOrdering(t *testing.T) {
	// Higher alpha concentrates more mass on rank 1.
	r := NewRNG(4)
	mass := func(alpha float64) float64 {
		z := NewZipf(1<<16, alpha)
		ones := 0
		for i := 0; i < 50000; i++ {
			if z.Sample(r) == 1 {
				ones++
			}
		}
		return float64(ones)
	}
	m08, m11, m14 := mass(0.8), mass(1.1), mass(1.4)
	if !(m08 < m11 && m11 < m14) {
		t.Errorf("rank-1 mass not increasing with alpha: %v %v %v", m08, m11, m14)
	}
}

func TestZipfPMFSumsToOne(t *testing.T) {
	z := NewZipf(500, 1.1)
	var sum float64
	for x := int64(1); x <= 500; x++ {
		sum += z.PMF(x)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("PMF sums to %v", sum)
	}
}

func TestZipfPanics(t *testing.T) {
	mustPanic := func(f func()) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		f()
	}
	mustPanic(func() { NewZipf(0, 1) })
	mustPanic(func() { NewZipf(10, 0) })
	mustPanic(func() { NewRNG(0).Int63n(0) })
}

func TestPermIsBijection(t *testing.T) {
	for _, n := range []int64{1, 2, 3, 100, 1000, 4096, 5000} {
		p := NewPerm(n, 77)
		seen := make(map[int64]bool, n)
		for x := int64(0); x < n; x++ {
			y := p.Apply(x)
			if y < 0 || y >= n {
				t.Fatalf("n=%d Apply(%d)=%d out of range", n, x, y)
			}
			if seen[y] {
				t.Fatalf("n=%d collision at image %d", n, y)
			}
			seen[y] = true
			if back := p.Invert(y); back != x {
				t.Fatalf("n=%d Invert(Apply(%d)) = %d", n, x, back)
			}
		}
	}
}

func TestPermSeedChangesMapping(t *testing.T) {
	p1 := NewPerm(1024, 1)
	p2 := NewPerm(1024, 2)
	same := 0
	for x := int64(0); x < 1024; x++ {
		if p1.Apply(x) == p2.Apply(x) {
			same++
		}
	}
	if same > 30 {
		t.Errorf("different seeds agree on %d/1024 points", same)
	}
}

func TestPermQuickRoundTrip(t *testing.T) {
	p := NewPerm(1<<20, 123)
	f := func(raw uint32) bool {
		x := int64(raw) % (1 << 20)
		return p.Invert(p.Apply(x)) == x
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPermOutOfRangePanics(t *testing.T) {
	p := NewPerm(10, 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range input")
		}
	}()
	p.Apply(10)
}

func BenchmarkZipfSample(b *testing.B) {
	z := NewZipf(1<<29, 1.1)
	r := NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Sample(r)
	}
}

func BenchmarkPermApply(b *testing.B) {
	p := NewPerm(1<<29, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Apply(int64(i) & ((1 << 29) - 1))
	}
}
