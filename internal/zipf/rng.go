// Package zipf provides the random machinery behind the paper's synthetic
// workloads: a fast deterministic RNG, a bounded Zipfian(α, u) sampler that
// supports all skews used in the evaluation (α ∈ {0.8, 1.1, 1.4} — note
// α ≤ 1 is outside math/rand's Zipf domain), and a bijective key-space
// permutation so that frequency rank is decorrelated from key value.
package zipf

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256** seeded via SplitMix64). It is not safe for concurrent use;
// each mapper/task derives its own stream with Fork.
type RNG struct {
	s [4]uint64
}

// NewRNG returns an RNG seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// SplitMix64 seeding, as recommended by the xoshiro authors.
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// Avoid the all-zero state (cannot happen with SplitMix64, but cheap).
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// Fork derives an independent deterministic stream for a sub-task. Streams
// from distinct ids are decorrelated by re-seeding through SplitMix64.
func (r *RNG) Fork(id uint64) *RNG {
	return NewRNG(r.Uint64() ^ (id * 0x9e3779b97f4a7c15) ^ 0x2545f4914f6cdd1d)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Int63n returns a uniform int64 in [0, n). n must be > 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("zipf: Int63n with n <= 0")
	}
	// Lemire's nearly-divisionless bounded generation would be fine, but a
	// simple rejection loop on the top 63 bits is plenty for our workloads.
	maxv := uint64(n)
	for {
		v := r.Uint64() >> 1
		if v < (1<<63)-((1<<63)%maxv) || (1<<63)%maxv == 0 {
			return int64(v % maxv)
		}
	}
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm fills a permutation of [0, n) using Fisher-Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := int(r.Int63n(int64(i + 1)))
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// NormFloat64 returns a standard normal variate (Box–Muller; adequate for
// test assertions, not in any hot path).
func (r *RNG) NormFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		v := r.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}
