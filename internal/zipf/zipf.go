package zipf

import "math"

// Zipf samples from the bounded Zipfian distribution over ranks {1, ..., N}
// with P(rank = x) ∝ x^(-α), for any exponent α > 0 (including α ≤ 1,
// which the paper's α = 0.8 setting requires).
//
// The sampler uses rejection-inversion for monotone discrete distributions
// (Hörmann & Derflinger 1996): O(1) memory and O(1) expected time per
// sample, so a u = 2^29 domain costs nothing to set up. This matters
// because the simulated mappers draw billions of scaled-down samples.
type Zipf struct {
	n        int64
	exponent float64

	hIntegralX1 float64
	hIntegralN  float64
	s           float64

	hCache float64 // memoized generalized harmonic number, for PMF
}

// NewZipf returns a sampler over {1, ..., n} with exponent alpha > 0.
func NewZipf(n int64, alpha float64) *Zipf {
	if n < 1 {
		panic("zipf: domain size must be >= 1")
	}
	if alpha <= 0 {
		panic("zipf: exponent must be > 0")
	}
	z := &Zipf{n: n, exponent: alpha}
	z.hIntegralX1 = z.hIntegral(1.5) - 1
	z.hIntegralN = z.hIntegral(float64(n) + 0.5)
	z.s = 2 - z.hIntegralInverse(z.hIntegral(2.5)-z.h(2))
	return z
}

// N returns the domain size.
func (z *Zipf) N() int64 { return z.n }

// Alpha returns the skew exponent.
func (z *Zipf) Alpha() float64 { return z.exponent }

// Sample draws one rank in [1, N].
func (z *Zipf) Sample(r *RNG) int64 {
	for {
		u := z.hIntegralN + r.Float64()*(z.hIntegralX1-z.hIntegralN)
		// u is uniform in (hIntegral(n+0.5), hIntegral(1.5)-1].
		x := z.hIntegralInverse(u)
		k := int64(x + 0.5)
		if k < 1 {
			k = 1
		} else if k > z.n {
			k = z.n
		}
		// Accept k if it lies in the "hat" region; the first test is the
		// cheap common case for the high-probability small ranks.
		if float64(k)-x <= z.s || u >= z.hIntegral(float64(k)+0.5)-z.h(float64(k)) {
			return k
		}
	}
}

// hIntegral is H(x) = ∫ h, with h(x) = x^(-exponent); continuous in the
// exponent (the α = 1 log case is the limit handled by helper2).
func (z *Zipf) hIntegral(x float64) float64 {
	logX := math.Log(x)
	return helper2((1-z.exponent)*logX) * logX
}

func (z *Zipf) h(x float64) float64 {
	return math.Exp(-z.exponent * math.Log(x))
}

func (z *Zipf) hIntegralInverse(x float64) float64 {
	t := x * (1 - z.exponent)
	if t < -1 {
		// Round-off guard: t could dip just below the mathematical
		// lower bound -1.
		t = -1
	}
	return math.Exp(helper1(t) * x)
}

// helper1 computes log1p(x)/x, continuously extended at 0.
func helper1(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Log1p(x) / x
	}
	return 1 - x/2 + x*x/3 - x*x*x/4
}

// helper2 computes expm1(x)/x, continuously extended at 0.
func helper2(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Expm1(x) / x
	}
	return 1 + x/2 + x*x/6 + x*x*x/24
}

// PMF returns the exact probability of rank x (1-based). O(n) on first call
// because it materializes the normalizing constant; cached afterwards.
// Intended for tests and small-domain verification only.
func (z *Zipf) PMF(x int64) float64 {
	if x < 1 || x > z.n {
		return 0
	}
	return math.Pow(float64(x), -z.exponent) / z.harmonic()
}

func (z *Zipf) harmonic() float64 {
	if z.hCache == 0 {
		var h float64
		for i := int64(1); i <= z.n; i++ {
			h += math.Pow(float64(i), -z.exponent)
		}
		z.hCache = h
	}
	return z.hCache
}
