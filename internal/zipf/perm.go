package zipf

// Perm is a deterministic bijection on [0, n) used to scatter Zipf ranks
// across the key domain. Without it, rank r maps to key r and the frequency
// vector is monotone — an unrealistically easy signal for wavelets. The
// paper permutes its generated data; we additionally decorrelate rank from
// key value, which matches real key spaces (e.g. the WorldCup clientobject
// ids are not sorted by popularity).
//
// Implementation: a 4-round Feistel network over a power-of-two domain with
// cycle-walking for arbitrary n. O(1) memory — no table for u = 2^29.
type Perm struct {
	n      int64
	bits   uint // Feistel works on 2^bits >= n, bits even
	half   uint
	mask   uint64
	keys   [4]uint64
	halfLo uint64
}

// NewPerm returns a bijection on [0, n) derived from seed.
func NewPerm(n int64, seed uint64) *Perm {
	if n < 1 {
		panic("zipf: permutation domain must be >= 1")
	}
	bits := uint(1)
	for int64(1)<<bits < n {
		bits++
	}
	if bits%2 == 1 {
		bits++
	}
	if bits < 2 {
		bits = 2
	}
	p := &Perm{n: n, bits: bits, half: bits / 2}
	p.mask = (1 << p.half) - 1
	p.halfLo = p.mask
	r := NewRNG(seed ^ 0xfeed5eed)
	for i := range p.keys {
		p.keys[i] = r.Uint64()
	}
	return p
}

// N returns the domain size.
func (p *Perm) N() int64 { return p.n }

// Apply maps x in [0, n) to its permuted image in [0, n).
func (p *Perm) Apply(x int64) int64 {
	if x < 0 || x >= p.n {
		panic("zipf: permutation input out of range")
	}
	v := uint64(x)
	for {
		v = p.feistel(v)
		if int64(v) < p.n {
			return int64(v)
		}
		// Cycle-walk: re-encrypt until we land back inside [0, n).
		// Expected < 2 iterations since 2^bits < 4n.
	}
}

// Invert maps an image back to its pre-image.
func (p *Perm) Invert(y int64) int64 {
	if y < 0 || y >= p.n {
		panic("zipf: permutation input out of range")
	}
	v := uint64(y)
	for {
		v = p.feistelInv(v)
		if int64(v) < p.n {
			return int64(v)
		}
	}
}

func (p *Perm) feistel(v uint64) uint64 {
	l := (v >> p.half) & p.mask
	r := v & p.mask
	for _, k := range p.keys {
		l, r = r, l^(round(r, k)&p.mask)
	}
	return (l << p.half) | r
}

func (p *Perm) feistelInv(v uint64) uint64 {
	l := (v >> p.half) & p.mask
	r := v & p.mask
	for i := len(p.keys) - 1; i >= 0; i-- {
		l, r = r^(round(l, p.keys[i])&p.mask), l
	}
	return (l << p.half) | r
}

// round is a cheap keyed mixing function (murmur-style finalizer).
func round(x, key uint64) uint64 {
	h := x*0xff51afd7ed558ccd + key
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 29
	return h
}
