package hdfs

import (
	"encoding/hex"
	"fmt"
	"sort"

	"wavelethist/internal/zipf"
)

// Variable-length records (Appendix B). The paper assumes records "end
// with a 4-byte record length followed by a delimiter character (e.g., a
// new line character)". We realize that as a log-line-like layout where
// the delimiter byte cannot occur inside a record, so forward scanning
// from an arbitrary offset is unambiguous:
//
//	[key: 8 hex chars][payload: bytes != '\n'][length: 8 hex chars]['\n']
//
// length is the total record size in bytes (17 + payload length).

const (
	varDelim     = byte('\n')
	varKeyChars  = 8
	varLenChars  = 8
	varMinRecord = varKeyChars + varLenChars + 1
)

// VarWriter appends variable-length records to a file being created.
type VarWriter struct {
	f      *File
	sealed bool
}

// Append writes one record with the given key and payload length. Payload
// bytes are a deterministic filler. Keys must fit in 32 bits.
func (w *VarWriter) Append(key int64, payloadLen int) {
	if w.sealed {
		panic("hdfs: append after Close")
	}
	if key < 0 || key > 0xFFFFFFFF {
		panic(fmt.Sprintf("hdfs: key %d does not fit in 4 bytes", key))
	}
	if payloadLen < 0 {
		payloadLen = 0
	}
	total := varMinRecord + payloadLen
	rec := make([]byte, total)
	hexPut(rec[0:varKeyChars], uint32(key))
	for i := 0; i < payloadLen; i++ {
		rec[varKeyChars+i] = 'a' + byte(i%26)
	}
	hexPut(rec[varKeyChars+payloadLen:varKeyChars+payloadLen+varLenChars], uint32(total))
	rec[total-1] = varDelim
	w.f.data = append(w.f.data, rec...)
	w.f.NumRecords++
}

// Close seals the file and assigns chunk placement.
func (w *VarWriter) Close() *File {
	if !w.sealed {
		w.f.fs.seal(w.f)
		w.sealed = true
	}
	return w.f
}

func hexPut(dst []byte, v uint32) {
	var b [4]byte
	b[0], b[1], b[2], b[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
	hex.Encode(dst, b[:])
}

func hexGet(src []byte) uint32 {
	var b [4]byte
	if _, err := hex.Decode(b[:], src); err != nil {
		panic(fmt.Sprintf("hdfs: corrupt hex field %q", src))
	}
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// SequentialVarReader scans the variable-length records owned by a split
// (those starting within it), with the usual Hadoop text-input convention:
// a split not starting at offset 0 skips forward past the first delimiter.
type SequentialVarReader struct {
	split Split
	pos   int64
	read  int64
}

// NewSequentialVarReader creates the reader.
func NewSequentialVarReader(split Split) *SequentialVarReader {
	if split.File.RecordSize != 0 {
		panic("hdfs: variable reader on fixed-size file")
	}
	r := &SequentialVarReader{split: split, pos: split.Offset}
	if split.Offset > 0 {
		// Skip the partial record: advance past the first delimiter.
		d := split.File.scanDelim(split.Offset)
		if d < 0 {
			r.pos = split.File.Size() // nothing owned by this split
		} else {
			r.read += d + 1 - split.Offset
			r.pos = d + 1
		}
	}
	return r
}

// Next returns the next record owned by the split.
func (r *SequentialVarReader) Next() (Record, bool) {
	f := r.split.File
	if r.pos >= r.split.Offset+r.split.Length || r.pos >= f.Size() {
		return Record{}, false
	}
	d := f.scanDelim(r.pos)
	if d < 0 {
		return Record{}, false
	}
	total := int64(d - r.pos + 1)
	if total < varMinRecord {
		panic(fmt.Sprintf("hdfs: corrupt variable record at %d", r.pos))
	}
	key := int64(hexGet(f.data[r.pos : r.pos+varKeyChars]))
	rec := Record{Pos: r.pos, Key: key, Size: int(total)}
	r.read += total
	r.pos = d + 1
	return rec, true
}

// BytesRead implements RecordReader.
func (r *SequentialVarReader) BytesRead() int64 { return r.read }

// scanDelim returns the position of the first delimiter at or after pos,
// or -1 if none.
func (f *File) scanDelim(pos int64) int64 {
	for i := pos; i < int64(len(f.data)); i++ {
		if f.data[i] == varDelim {
			return i
		}
	}
	return -1
}

// RandomVarReader implements Appendix B's variable-length
// RandomRecordReader: it draws sampleCount random byte offsets into the
// split (ascending priority queue Q), maps each to the record containing
// it by scanning forward for the delimiter and reading the trailing
// length field, records claimed records as (start, length) intervals
// (heap H), and replaces offsets that fall into already-claimed records
// with fresh offsets outside all claimed intervals.
type RandomVarReader struct {
	split   Split
	records []Record // claimed records sorted by start offset
	next    int
	read    int64
}

// NewRandomVarReader samples sampleCount distinct records.
func NewRandomVarReader(split Split, sampleCount int64, rng *zipf.RNG) *RandomVarReader {
	if split.File.RecordSize != 0 {
		panic("hdfs: variable random reader on fixed-size file")
	}
	r := &RandomVarReader{split: split}
	f := split.File
	if split.Length <= 0 || sampleCount <= 0 {
		return r
	}

	// Q: pending offsets, processed in ascending order (pop smallest).
	q := make([]int64, 0, sampleCount)
	for i := int64(0); i < sampleCount; i++ {
		q = append(q, split.Offset+rng.Int63n(split.Length))
	}
	sort.Slice(q, func(i, j int) bool { return q[i] < q[j] })

	// H: claimed intervals [start, start+len), kept sorted by start.
	type interval struct{ start, end int64 }
	var h []interval
	covered := func(off int64) bool {
		i := sort.Search(len(h), func(i int) bool { return h[i].end > off })
		return i < len(h) && h[i].start <= off
	}
	claim := func(start, end int64) {
		i := sort.Search(len(h), func(i int) bool { return h[i].start >= start })
		h = append(h, interval{})
		copy(h[i+1:], h[i:])
		h[i] = interval{start, end}
	}

	const maxRetries = 64
	for len(q) > 0 {
		off := q[0]
		q = q[1:]
		if covered(off) {
			// Replacement offset avoiding claimed intervals (the paper
			// regenerates o' not covered by any (o, r) pair in H).
			ok := false
			for try := 0; try < maxRetries; try++ {
				cand := split.Offset + rng.Int63n(split.Length)
				if !covered(cand) {
					off = cand
					ok = true
					break
				}
			}
			if !ok {
				continue // split (nearly) exhausted; sample fewer records
			}
			if len(q) > 0 && off > q[0] {
				// Keep Q's ascending processing order.
				i := sort.Search(len(q), func(i int) bool { return q[i] >= off })
				q = append(q, 0)
				copy(q[i+1:], q[i:])
				q[i] = off
				continue
			}
		}
		// Scan forward for the record end; the record containing off ends
		// at the first delimiter at or after off.
		d := f.scanDelim(off)
		if d < 0 {
			continue // offset in trailing garbage (cannot happen in well-formed files)
		}
		total := int64(hexGet(f.data[d-varLenChars : d]))
		start := d + 1 - total
		if start < 0 || total < varMinRecord {
			panic(fmt.Sprintf("hdfs: corrupt variable record near %d", d))
		}
		if covered(start) {
			continue // raced into an already-claimed record via scan-forward
		}
		claim(start, d+1)
		key := int64(hexGet(f.data[start : start+varKeyChars]))
		r.records = append(r.records, Record{Pos: start, Key: key, Size: int(total)})
		r.read += (d - off + 1) + total // scan-forward cost + record read
	}
	sort.Slice(r.records, func(i, j int) bool { return r.records[i].Pos < r.records[j].Pos })
	return r
}

// SampleSize returns the number of sampled records.
func (r *RandomVarReader) SampleSize() int64 { return int64(len(r.records)) }

// Next returns the next sampled record in ascending file order.
func (r *RandomVarReader) Next() (Record, bool) {
	if r.next >= len(r.records) {
		return Record{}, false
	}
	rec := r.records[r.next]
	r.next++
	return rec, true
}

// BytesRead implements RecordReader.
func (r *RandomVarReader) BytesRead() int64 { return r.read }
