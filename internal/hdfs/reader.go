package hdfs

import (
	"sort"

	"wavelethist/internal/zipf"
)

// Record is one input record as seen by a RecordReader.
type Record struct {
	Pos  int64 // byte offset of the record within the file
	Key  int64
	Size int // total record size in bytes (for IO accounting)
}

// RecordReader iterates over a split's records. It mirrors the Hadoop
// RecordReader contract: Next returns false at end of split.
type RecordReader interface {
	Next() (Record, bool)
	// BytesRead reports the bytes this reader has pulled from the split's
	// DataNode so far (IO accounting for the cost model).
	BytesRead() int64
}

// SequentialReader scans every fixed-size record of a split in order — the
// default Hadoop InputFormat behaviour used by the exact algorithms.
type SequentialReader struct {
	split Split
	pos   int64
	read  int64
	buf   []byte
}

// NewSequentialReader creates a reader over the split. The split's file
// must use fixed-size records.
func NewSequentialReader(split Split) *SequentialReader {
	if split.File.RecordSize == 0 {
		panic("hdfs: sequential fixed reader on variable-length file")
	}
	return &SequentialReader{
		split: split,
		pos:   split.Offset,
		buf:   make([]byte, split.File.RecordSize),
	}
}

// Next returns the next record.
func (r *SequentialReader) Next() (Record, bool) {
	rs := int64(r.split.File.RecordSize)
	if r.pos+rs > r.split.Offset+r.split.Length {
		return Record{}, false
	}
	if _, err := r.split.File.ReadAt(r.buf, r.pos); err != nil {
		return Record{}, false
	}
	rec := Record{
		Pos:  r.pos,
		Key:  decodeKey(r.buf, r.split.File.RecordSize),
		Size: r.split.File.RecordSize,
	}
	r.pos += rs
	r.read += rs
	return rec, true
}

// BytesRead implements RecordReader.
func (r *SequentialReader) BytesRead() int64 { return r.read }

// RandomReader is the paper's RandomRecordReader for fixed-size records
// (Appendix B): on initialization it draws the sample's record offsets,
// sorts them ascending in a priority queue, and then seeks monotonically
// forward, so each sampled record costs one seek + one record read instead
// of a full split scan. Sampling is without replacement, which the paper
// notes behaves like coin-flip sampling for these methods.
type RandomReader struct {
	split   Split
	offsets []int64 // ascending record indices within the split
	next    int
	read    int64
	buf     []byte
}

// NewRandomReader samples sampleCount records (capped at the split's record
// count) uniformly without replacement using rng.
func NewRandomReader(split Split, sampleCount int64, rng *zipf.RNG) *RandomReader {
	if split.File.RecordSize == 0 {
		panic("hdfs: fixed random reader on variable-length file")
	}
	nj := split.NumRecords()
	if sampleCount > nj {
		sampleCount = nj
	}
	if sampleCount < 0 {
		sampleCount = 0
	}
	// Floyd's algorithm: uniform sample of sampleCount distinct indices
	// from [0, nj) in O(sampleCount) expected time and space.
	chosen := make(map[int64]bool, sampleCount)
	for j := nj - sampleCount; j < nj; j++ {
		t := rng.Int63n(j + 1)
		if chosen[t] {
			chosen[j] = true
		} else {
			chosen[t] = true
		}
	}
	offsets := make([]int64, 0, len(chosen))
	for idx := range chosen {
		offsets = append(offsets, idx)
	}
	sort.Slice(offsets, func(i, j int) bool { return offsets[i] < offsets[j] })
	return &RandomReader{
		split:   split,
		offsets: offsets,
		buf:     make([]byte, split.File.RecordSize),
	}
}

// SampleSize returns the number of records this reader will deliver.
func (r *RandomReader) SampleSize() int64 { return int64(len(r.offsets)) }

// Next returns the next sampled record (ascending file position).
func (r *RandomReader) Next() (Record, bool) {
	if r.next >= len(r.offsets) {
		return Record{}, false
	}
	rs := int64(r.split.File.RecordSize)
	pos := r.split.Offset + r.offsets[r.next]*rs
	r.next++
	if _, err := r.split.File.ReadAt(r.buf, pos); err != nil {
		return Record{}, false
	}
	r.read += rs
	return Record{
		Pos:  pos,
		Key:  decodeKey(r.buf, r.split.File.RecordSize),
		Size: r.split.File.RecordSize,
	}, true
}

// BytesRead implements RecordReader.
func (r *RandomReader) BytesRead() int64 { return r.read }
