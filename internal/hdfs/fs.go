// Package hdfs simulates the Hadoop Distributed File System at the level of
// detail the paper's algorithms observe: files are split into fixed-size
// chunks placed on DataNodes by a NameNode (replication 1, as in the paper's
// setup), MapReduce splits correspond to chunks, and record readers provide
// sequential scans plus the paper's RandomRecordReader (Appendix B) for the
// sampling algorithms, including the variable-length record scheme.
package hdfs

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// DefaultChunkSize is the default chunk (and split) size. The paper's
// default is 256 MB on ~50 GB inputs (m = 200 splits); our scaled datasets
// keep a comparable split *count* with a smaller chunk size.
const DefaultChunkSize = 64 * 1024

// FileSystem is a simulated HDFS instance: a NameNode's view of chunk
// placement over a set of DataNodes, plus the chunk payloads themselves.
type FileSystem struct {
	numNodes  int
	chunkSize int64
	files     map[string]*File
	nextNode  int // round-robin placement cursor
}

// NewFileSystem creates a file system over numNodes DataNodes with the
// given chunk size in bytes.
func NewFileSystem(numNodes int, chunkSize int64) *FileSystem {
	if numNodes < 1 {
		panic("hdfs: need at least one DataNode")
	}
	if chunkSize < 16 {
		panic("hdfs: chunk size too small")
	}
	return &FileSystem{
		numNodes:  numNodes,
		chunkSize: chunkSize,
		files:     make(map[string]*File),
	}
}

// NumNodes returns the number of DataNodes.
func (fs *FileSystem) NumNodes() int { return fs.numNodes }

// ChunkSize returns the chunk size in bytes.
func (fs *FileSystem) ChunkSize() int64 { return fs.chunkSize }

// File is a simulated HDFS file: a byte payload plus chunk placement and
// record-format metadata.
type File struct {
	Name       string
	RecordSize int // fixed record size in bytes; 0 => variable-length
	NumRecords int64
	data       []byte
	chunks     []Chunk
	fs         *FileSystem
}

// Chunk records the placement of one chunk.
type Chunk struct {
	Index  int
	Offset int64 // byte offset within the file
	Length int64
	Node   int // DataNode holding the (single) replica
}

// Create creates (or truncates) a fixed-record-size file. recordSize must
// be >= 4 (keys are 4-byte little-endian; >= 8 stores 8-byte keys, which
// 2D packed domains need).
func (fs *FileSystem) Create(name string, recordSize int) (*Writer, error) {
	if recordSize < 4 {
		return nil, fmt.Errorf("hdfs: record size %d < 4", recordSize)
	}
	f := &File{Name: name, RecordSize: recordSize, fs: fs}
	fs.files[name] = f
	return &Writer{f: f}, nil
}

// CreateVar creates (or truncates) a variable-length record file
// (Appendix B format: 4-byte key, payload, 4-byte record length, delimiter).
func (fs *FileSystem) CreateVar(name string) (*VarWriter, error) {
	f := &File{Name: name, RecordSize: 0, fs: fs}
	fs.files[name] = f
	return &VarWriter{f: f}, nil
}

// Open returns the named file.
func (fs *FileSystem) Open(name string) (*File, error) {
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("hdfs: file %q not found", name)
	}
	return f, nil
}

// Remove deletes the named file (no error if absent).
func (fs *FileSystem) Remove(name string) { delete(fs.files, name) }

// seal assigns chunk placement after a file is fully written. Chunks go to
// DataNodes round-robin, which matches the balanced placement a healthy
// HDFS converges to and keeps experiments deterministic.
func (fs *FileSystem) seal(f *File) {
	f.chunks = f.chunks[:0]
	size := int64(len(f.data))
	for off := int64(0); off < size; off += fs.chunkSize {
		length := fs.chunkSize
		if off+length > size {
			length = size - off
		}
		f.chunks = append(f.chunks, Chunk{
			Index:  len(f.chunks),
			Offset: off,
			Length: length,
			Node:   fs.nextNode,
		})
		fs.nextNode = (fs.nextNode + 1) % fs.numNodes
	}
	if size == 0 {
		// An empty file still occupies one (empty) chunk for metadata.
		f.chunks = append(f.chunks, Chunk{Node: fs.nextNode})
		fs.nextNode = (fs.nextNode + 1) % fs.numNodes
	}
}

// Size returns the file size in bytes.
func (f *File) Size() int64 { return int64(len(f.data)) }

// Chunks returns the chunk placement.
func (f *File) Chunks() []Chunk { return f.chunks }

// ReadAt copies len(p) bytes at offset off. It is the DataNode read path.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off >= int64(len(f.data)) {
		return 0, fmt.Errorf("hdfs: read at %d beyond EOF %d", off, len(f.data))
	}
	n := copy(p, f.data[off:])
	if n < len(p) {
		return n, fmt.Errorf("hdfs: short read at %d", off)
	}
	return n, nil
}

// Split is a logical input split handed to one Mapper. With DefaultChunk
// placement, splits equal chunks (the common Hadoop case the paper uses).
type Split struct {
	File   *File
	Index  int   // split id; the paper identifies splits by file offset
	Offset int64 // byte offset
	Length int64
	Node   int // DataNode holding the split's data (locality hint)
}

// NumRecords returns the number of fixed-size records in the split.
// Panics for variable-length files (use a reader instead).
func (s Split) NumRecords() int64 {
	if s.File.RecordSize == 0 {
		panic("hdfs: NumRecords on variable-length split")
	}
	return s.Length / int64(s.File.RecordSize)
}

// Splits partitions the file into splits of splitSize bytes, aligned to
// record boundaries for fixed-size records. splitSize <= 0 uses the chunk
// size. Each split inherits the locality of the chunk containing its first
// byte.
func (f *File) Splits(splitSize int64) []Split {
	if splitSize <= 0 {
		splitSize = f.fs.chunkSize
	}
	if f.RecordSize > 0 {
		// Align down to a whole number of records; never below one record.
		rs := int64(f.RecordSize)
		splitSize = splitSize / rs * rs
		if splitSize < rs {
			splitSize = rs
		}
	}
	var splits []Split
	size := int64(len(f.data))
	for off := int64(0); off < size; off += splitSize {
		length := splitSize
		if off+length > size {
			length = size - off
		}
		splits = append(splits, Split{
			File:   f,
			Index:  len(splits),
			Offset: off,
			Length: length,
			Node:   f.nodeAt(off),
		})
	}
	return splits
}

// nodeAt returns the DataNode holding the byte at offset off.
func (f *File) nodeAt(off int64) int {
	i := sort.Search(len(f.chunks), func(i int) bool {
		return f.chunks[i].Offset+f.chunks[i].Length > off
	})
	if i == len(f.chunks) {
		if len(f.chunks) == 0 {
			return 0
		}
		return f.chunks[len(f.chunks)-1].Node
	}
	return f.chunks[i].Node
}

// keyWidth returns the on-disk key width for a fixed-size record.
func keyWidth(recordSize int) int {
	if recordSize >= 8 {
		return 8
	}
	return 4
}

// decodeKey reads a record's key.
func decodeKey(b []byte, recordSize int) int64 {
	if keyWidth(recordSize) == 8 {
		return int64(binary.LittleEndian.Uint64(b))
	}
	return int64(binary.LittleEndian.Uint32(b))
}

// encodeKey writes a record's key into b.
func encodeKey(b []byte, key int64, recordSize int) {
	if keyWidth(recordSize) == 8 {
		binary.LittleEndian.PutUint64(b, uint64(key))
		return
	}
	if key < 0 || key > 0xFFFFFFFF {
		panic(fmt.Sprintf("hdfs: key %d does not fit in a 4-byte record", key))
	}
	binary.LittleEndian.PutUint32(b, uint32(key))
}

// Writer appends fixed-size records to a file being created.
type Writer struct {
	f      *File
	buf    []byte
	sealed bool
}

// Append writes one record with the given key; the rest of the record is
// zero padding (the paper's synthetic records carry only the 4-byte key).
func (w *Writer) Append(key int64) {
	if w.sealed {
		panic("hdfs: append after Close")
	}
	rs := w.f.RecordSize
	if cap(w.buf) < rs {
		w.buf = make([]byte, rs)
	}
	rec := w.buf[:rs]
	for i := range rec {
		rec[i] = 0
	}
	encodeKey(rec, key, rs)
	w.f.data = append(w.f.data, rec...)
	w.f.NumRecords++
}

// Close seals the file and assigns chunk placement.
func (w *Writer) Close() *File {
	if !w.sealed {
		w.f.fs.seal(w.f)
		w.sealed = true
	}
	return w.f
}
