package hdfs

import (
	"testing"
	"testing/quick"

	"wavelethist/internal/zipf"
)

func writeFixed(t *testing.T, fs *FileSystem, name string, recordSize int, keys []int64) *File {
	t.Helper()
	w, err := fs.Create(name, recordSize)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		w.Append(k)
	}
	return w.Close()
}

func TestCreateAndScan(t *testing.T) {
	fs := NewFileSystem(4, 64)
	keys := []int64{7, 0, 42, 1 << 20, 0xFFFFFFFF}
	f := writeFixed(t, fs, "a", 4, keys)
	if f.Size() != int64(4*len(keys)) {
		t.Fatalf("size = %d", f.Size())
	}
	splits := f.Splits(0)
	var got []int64
	for _, s := range splits {
		r := NewSequentialReader(s)
		for {
			rec, ok := r.Next()
			if !ok {
				break
			}
			got = append(got, rec.Key)
		}
	}
	if len(got) != len(keys) {
		t.Fatalf("scanned %d records, want %d", len(got), len(keys))
	}
	for i := range keys {
		if got[i] != keys[i] {
			t.Errorf("record %d = %d, want %d", i, got[i], keys[i])
		}
	}
}

func TestWideKeys(t *testing.T) {
	fs := NewFileSystem(2, 1024)
	keys := []int64{1 << 40, 0, 123456789012345}
	f := writeFixed(t, fs, "wide", 16, keys)
	r := NewSequentialReader(f.Splits(0)[0])
	for i := range keys {
		rec, ok := r.Next()
		if !ok || rec.Key != keys[i] {
			t.Fatalf("record %d: got %v ok=%v, want %d", i, rec.Key, ok, keys[i])
		}
	}
}

func TestKeyTooBigFor4Bytes(t *testing.T) {
	fs := NewFileSystem(1, 64)
	w, _ := fs.Create("x", 4)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on key overflow")
		}
	}()
	w.Append(1 << 33)
}

func TestChunkPlacementRoundRobin(t *testing.T) {
	fs := NewFileSystem(3, 64)
	keys := make([]int64, 64) // 256 bytes = 4 chunks of 64
	f := writeFixed(t, fs, "rr", 4, keys)
	chunks := f.Chunks()
	if len(chunks) != 4 {
		t.Fatalf("chunks = %d, want 4", len(chunks))
	}
	for i, c := range chunks {
		if c.Node != i%3 {
			t.Errorf("chunk %d on node %d, want %d", i, c.Node, i%3)
		}
	}
}

func TestSplitsAlignToRecords(t *testing.T) {
	fs := NewFileSystem(2, 1024)
	keys := make([]int64, 100)
	f := writeFixed(t, fs, "al", 12, keys) // 1200 bytes
	splits := f.Splits(100)                // -> aligned down to 96 bytes = 8 records
	total := int64(0)
	for _, s := range splits {
		if s.Length%12 != 0 && s.Index != len(splits)-1 {
			t.Errorf("split %d length %d not record-aligned", s.Index, s.Length)
		}
		total += s.NumRecords()
	}
	if total != 100 {
		t.Errorf("splits cover %d records, want 100", total)
	}
}

func TestSplitLocalityMatchesChunks(t *testing.T) {
	fs := NewFileSystem(4, 64)
	keys := make([]int64, 64)
	f := writeFixed(t, fs, "loc", 4, keys)
	for _, s := range f.Splits(64) {
		if want := f.nodeAt(s.Offset); s.Node != want {
			t.Errorf("split %d node %d, want %d", s.Index, s.Node, want)
		}
	}
}

func TestOpenMissing(t *testing.T) {
	fs := NewFileSystem(1, 64)
	if _, err := fs.Open("nope"); err == nil {
		t.Error("expected error for missing file")
	}
	writeFixed(t, fs, "yes", 4, []int64{1})
	if _, err := fs.Open("yes"); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
	fs.Remove("yes")
	if _, err := fs.Open("yes"); err == nil {
		t.Error("expected error after Remove")
	}
}

func TestRandomReaderSamplesDistinctAscending(t *testing.T) {
	fs := NewFileSystem(2, 1<<20)
	keys := make([]int64, 1000)
	for i := range keys {
		keys[i] = int64(i)
	}
	f := writeFixed(t, fs, "s", 4, keys)
	split := f.Splits(0)[0]
	r := NewRandomReader(split, 100, zipf.NewRNG(5))
	if r.SampleSize() != 100 {
		t.Fatalf("sample size = %d", r.SampleSize())
	}
	seen := make(map[int64]bool)
	last := int64(-1)
	for {
		rec, ok := r.Next()
		if !ok {
			break
		}
		if rec.Pos <= last {
			t.Error("positions not strictly ascending")
		}
		last = rec.Pos
		if seen[rec.Key] {
			t.Errorf("duplicate record key %d (sampling with replacement?)", rec.Key)
		}
		seen[rec.Key] = true
	}
	if len(seen) != 100 {
		t.Errorf("delivered %d records, want 100", len(seen))
	}
}

func TestRandomReaderCapsAtSplitSize(t *testing.T) {
	fs := NewFileSystem(1, 1<<20)
	f := writeFixed(t, fs, "c", 4, []int64{1, 2, 3})
	r := NewRandomReader(f.Splits(0)[0], 100, zipf.NewRNG(1))
	if r.SampleSize() != 3 {
		t.Fatalf("sample size = %d, want 3", r.SampleSize())
	}
}

// The random reader must be uniform: over many trials, each record is
// sampled at approximately the same rate.
func TestRandomReaderUniformity(t *testing.T) {
	fs := NewFileSystem(1, 1<<20)
	const n = 50
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(i)
	}
	f := writeFixed(t, fs, "u", 4, keys)
	split := f.Splits(0)[0]
	counts := make([]int, n)
	rng := zipf.NewRNG(42)
	const trials = 4000
	for trial := 0; trial < trials; trial++ {
		r := NewRandomReader(split, 10, rng)
		for {
			rec, ok := r.Next()
			if !ok {
				break
			}
			counts[rec.Key]++
		}
	}
	want := float64(trials) * 10 / n
	for i, c := range counts {
		if float64(c) < want*0.8 || float64(c) > want*1.2 {
			t.Errorf("record %d sampled %d times, want ~%.0f", i, c, want)
		}
	}
}

func TestVarWriterSequentialScan(t *testing.T) {
	fs := NewFileSystem(2, 1<<20)
	w, err := fs.CreateVar("v")
	if err != nil {
		t.Fatal(err)
	}
	type rec struct {
		key int64
		pl  int
	}
	recs := []rec{{5, 0}, {7, 10}, {42, 3}, {0xFFFFFFFF, 100}, {1, 1}}
	for _, rc := range recs {
		w.Append(rc.key, rc.pl)
	}
	f := w.Close()
	r := NewSequentialVarReader(f.Splits(0)[0])
	for i, rc := range recs {
		got, ok := r.Next()
		if !ok {
			t.Fatalf("record %d missing", i)
		}
		if got.Key != rc.key {
			t.Errorf("record %d key = %d, want %d", i, got.Key, rc.key)
		}
		if got.Size != varMinRecord+rc.pl {
			t.Errorf("record %d size = %d, want %d", i, got.Size, varMinRecord+rc.pl)
		}
	}
	if _, ok := r.Next(); ok {
		t.Error("unexpected extra record")
	}
}

func TestVarSplitOwnership(t *testing.T) {
	// Records owned by the split they *start* in; each record read exactly
	// once across all splits.
	fs := NewFileSystem(2, 1<<20)
	w, _ := fs.CreateVar("vo")
	const n = 200
	for i := 0; i < n; i++ {
		w.Append(int64(i), i%37)
	}
	f := w.Close()
	seen := make(map[int64]int)
	for _, s := range f.Splits(256) {
		r := NewSequentialVarReader(s)
		for {
			rec, ok := r.Next()
			if !ok {
				break
			}
			seen[rec.Key]++
		}
	}
	if len(seen) != n {
		t.Fatalf("saw %d distinct records, want %d", len(seen), n)
	}
	for k, c := range seen {
		if c != 1 {
			t.Errorf("record %d read %d times", k, c)
		}
	}
}

func TestRandomVarReaderDistinct(t *testing.T) {
	fs := NewFileSystem(1, 1<<20)
	w, _ := fs.CreateVar("vr")
	const n = 300
	for i := 0; i < n; i++ {
		w.Append(int64(i), (i*13)%61)
	}
	f := w.Close()
	split := f.Splits(0)[0]
	r := NewRandomVarReader(split, 50, zipf.NewRNG(3))
	if r.SampleSize() == 0 {
		t.Fatal("no samples")
	}
	seen := make(map[int64]bool)
	last := int64(-1)
	for {
		rec, ok := r.Next()
		if !ok {
			break
		}
		if rec.Pos <= last {
			t.Error("sampled records not ascending by position")
		}
		last = rec.Pos
		if seen[rec.Key] {
			t.Errorf("duplicate sampled record %d", rec.Key)
		}
		seen[rec.Key] = true
	}
}

func TestRandomVarReaderExhaustsSmallSplit(t *testing.T) {
	fs := NewFileSystem(1, 1<<20)
	w, _ := fs.CreateVar("small")
	for i := 0; i < 5; i++ {
		w.Append(int64(i), 2)
	}
	f := w.Close()
	r := NewRandomVarReader(f.Splits(0)[0], 1000, zipf.NewRNG(9))
	// Over-sampling a tiny split: we should get at most 5 distinct records.
	if r.SampleSize() > 5 {
		t.Errorf("sampled %d records from a 5-record split", r.SampleSize())
	}
	if r.SampleSize() < 3 {
		t.Errorf("sampled only %d records; expected near-exhaustion", r.SampleSize())
	}
}

// Property: any mix of payload sizes scans back exactly.
func TestVarRoundTripQuick(t *testing.T) {
	f := func(payloads []uint8, seed uint16) bool {
		if len(payloads) == 0 {
			return true
		}
		fs := NewFileSystem(2, 1<<20)
		w, _ := fs.CreateVar("q")
		for i, p := range payloads {
			w.Append(int64(i), int(p))
		}
		file := w.Close()
		r := NewSequentialVarReader(file.Splits(0)[0])
		for i, p := range payloads {
			rec, ok := r.Next()
			if !ok || rec.Key != int64(i) || rec.Size != varMinRecord+int(p) {
				return false
			}
		}
		_, ok := r.Next()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyFileHasChunk(t *testing.T) {
	fs := NewFileSystem(2, 64)
	w, _ := fs.Create("empty", 4)
	f := w.Close()
	if len(f.Chunks()) != 1 {
		t.Errorf("empty file chunks = %d, want 1", len(f.Chunks()))
	}
	if len(f.Splits(0)) != 0 {
		t.Errorf("empty file splits = %d, want 0", len(f.Splits(0)))
	}
}

func TestBytesReadAccounting(t *testing.T) {
	fs := NewFileSystem(1, 1<<20)
	keys := make([]int64, 10)
	f := writeFixed(t, fs, "io", 8, keys)
	r := NewSequentialReader(f.Splits(0)[0])
	for {
		if _, ok := r.Next(); !ok {
			break
		}
	}
	if r.BytesRead() != 80 {
		t.Errorf("BytesRead = %d, want 80", r.BytesRead())
	}
}
