package mapred

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"wavelethist/internal/hdfs"
)

// countMapper emits (key, 1) per record — word count over keys.
type countMapper struct{}

func (countMapper) Setup(*TaskContext) error { return nil }
func (countMapper) Map(ctx *TaskContext, rec hdfs.Record, out *Emitter) error {
	out.Emit(KV{Key: rec.Key, Val: 1, Src: int32(ctx.SplitID)})
	return nil
}
func (countMapper) Close(*TaskContext, *Emitter) error { return nil }

// sumReducer accumulates per-key totals; safe in streaming mode.
type sumReducer struct {
	mu     sync.Mutex
	totals map[int64]float64
	closed bool
}

func (r *sumReducer) Setup(*TaskContext) error {
	r.totals = make(map[int64]float64)
	return nil
}
func (r *sumReducer) Reduce(_ *TaskContext, key int64, vals []KV) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, v := range vals {
		r.totals[key] += v.Val
	}
	return nil
}
func (r *sumReducer) Close(*TaskContext) error {
	r.closed = true
	return nil
}

// sumCombiner pre-aggregates counts, like Hadoop's word-count combiner.
func sumCombiner(key int64, vals []KV) []KV {
	var s float64
	for _, v := range vals {
		s += v.Val
	}
	return []KV{{Key: key, Val: s}}
}

func makeDataset(t *testing.T, keys []int64, chunk int64) []hdfs.Split {
	t.Helper()
	fs := hdfs.NewFileSystem(4, chunk)
	w, err := fs.Create("in", 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		w.Append(k)
	}
	return w.Close().Splits(0)
}

func repeatKeys(n int, mod int64) []int64 {
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(i*7+3) % mod
	}
	return keys
}

func wordCountJob(t *testing.T, splits []hdfs.Split, streaming bool, combiner Combiner) (*Result, map[int64]float64) {
	t.Helper()
	red := &sumReducer{}
	job := &Job{
		Name:      "wordcount",
		Splits:    splits,
		Input:     SequentialInput{},
		NewMapper: func(hdfs.Split) Mapper { return countMapper{} },
		Combiner:  combiner,
		Reducer:   red,
		Streaming: streaming,
		Seed:      1,
	}
	res, err := Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if !red.closed {
		t.Fatal("reducer Close not called")
	}
	return res, red.totals
}

func TestWordCountCorrect(t *testing.T) {
	keys := repeatKeys(5000, 97)
	want := make(map[int64]float64)
	for _, k := range keys {
		want[k]++
	}
	splits := makeDataset(t, keys, 256)
	if len(splits) < 10 {
		t.Fatalf("want many splits, got %d", len(splits))
	}
	for _, streaming := range []bool{true, false} {
		_, got := wordCountJob(t, splits, streaming, nil)
		if len(got) != len(want) {
			t.Fatalf("streaming=%v: %d keys, want %d", streaming, len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Errorf("streaming=%v key %d = %v, want %v", streaming, k, got[k], v)
			}
		}
	}
}

func TestCombinerReducesShuffle(t *testing.T) {
	keys := repeatKeys(5000, 13) // heavy duplication
	splits := makeDataset(t, keys, 1024)
	resNo, totalsNo := wordCountJob(t, splits, true, nil)
	resYes, totalsYes := wordCountJob(t, splits, true, sumCombiner)
	for k, v := range totalsNo {
		if totalsYes[k] != v {
			t.Errorf("combiner changed result for key %d: %v vs %v", k, totalsYes[k], v)
		}
	}
	if resYes.PairsShuffled >= resNo.PairsShuffled {
		t.Errorf("combiner did not reduce pairs: %d vs %d", resYes.PairsShuffled, resNo.PairsShuffled)
	}
	if resYes.ShuffleBytes >= resNo.ShuffleBytes {
		t.Errorf("combiner did not reduce bytes: %d vs %d", resYes.ShuffleBytes, resNo.ShuffleBytes)
	}
	if resNo.PairsShuffled != int64(len(keys)) {
		t.Errorf("uncombined pairs = %d, want %d", resNo.PairsShuffled, len(keys))
	}
}

func TestDeterministicAcrossParallelism(t *testing.T) {
	keys := repeatKeys(3000, 101)
	splits := makeDataset(t, keys, 256)
	var base *Result
	var baseTotals map[int64]float64
	for _, par := range []int{1, 2, 8} {
		red := &sumReducer{}
		job := &Job{
			Name:        "det",
			Splits:      splits,
			Input:       SequentialInput{},
			NewMapper:   func(hdfs.Split) Mapper { return countMapper{} },
			Reducer:     red,
			Streaming:   true,
			Seed:        7,
			Parallelism: par,
		}
		res, err := Run(job)
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base, baseTotals = res, red.totals
			continue
		}
		if res.ShuffleBytes != base.ShuffleBytes || res.PairsShuffled != base.PairsShuffled {
			t.Errorf("par=%d: shuffle differs", par)
		}
		for k, v := range baseTotals {
			if red.totals[k] != v {
				t.Errorf("par=%d: key %d differs", par, k)
			}
		}
	}
}

func TestPairBytesAccounting(t *testing.T) {
	keys := repeatKeys(100, 1000) // all distinct-ish
	splits := makeDataset(t, keys, 1<<20)
	red := &sumReducer{}
	job := &Job{
		Name:      "bytes",
		Splits:    splits,
		Input:     SequentialInput{},
		NewMapper: func(hdfs.Split) Mapper { return countMapper{} },
		Reducer:   red,
		PairBytes: func(KV) int { return 8 }, // 4-byte key + 4-byte count
		Streaming: true,
		Seed:      1,
	}
	res, err := Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.ShuffleBytes != res.PairsShuffled*8 {
		t.Errorf("bytes = %d, want pairs×8 = %d", res.ShuffleBytes, res.PairsShuffled*8)
	}
}

// stateMapper writes state in round 1 and reads it back in round 2
// (NoInput), like H-WTopk's persistent mappers.
type stateMapper struct{ round int }

func (sm stateMapper) Setup(*TaskContext) error { return nil }
func (sm stateMapper) Map(ctx *TaskContext, rec hdfs.Record, out *Emitter) error {
	return nil
}
func (sm stateMapper) Close(ctx *TaskContext, out *Emitter) error {
	switch sm.round {
	case 1:
		var b []byte
		b = AppendInt64(b, int64(ctx.SplitID)*100)
		ctx.State.Put(ctx.SplitID, b)
	case 2:
		b := ctx.State.Get(ctx.SplitID)
		if b == nil {
			return errors.New("state missing")
		}
		v, _ := ReadInt64(b, 0)
		out.Emit(KV{Key: 0, Val: float64(v)})
	}
	return nil
}

func TestMultiRoundStateAndConf(t *testing.T) {
	splits := makeDataset(t, repeatKeys(64, 50), 64)
	state := NewStateStore()
	cache := NewDistCache()
	red1 := &sumReducer{}
	red2 := &sumReducer{}
	round1 := &Job{
		Name: "r1", Splits: splits, Input: SequentialInput{},
		NewMapper: func(hdfs.Split) Mapper { return stateMapper{round: 1} },
		Reducer:   red1, Streaming: true, State: state, Cache: cache, Seed: 3,
	}
	round2 := &Job{
		Name: "r2", Splits: splits, Input: NoInput{},
		NewMapper: func(hdfs.Split) Mapper { return stateMapper{round: 2} },
		Reducer:   red2, Streaming: true, State: state, Cache: cache, Seed: 3,
	}
	results, err := RunRounds([]*Job{round1, round2}, func(round int, res *Result) error {
		if round == 0 {
			cache.Put("threshold", AppendFloat64(nil, 42.5))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	// Round 2 reads no input records.
	if results[1].Counters.MapRecordsRead != 0 {
		t.Errorf("round 2 read %d records, want 0", results[1].Counters.MapRecordsRead)
	}
	// Sum over splits of splitID*100.
	m := len(splits)
	want := float64(100 * m * (m - 1) / 2)
	if red2.totals[0] != want {
		t.Errorf("round-2 total = %v, want %v", red2.totals[0], want)
	}
	if cache.TotalBytes() != 8 {
		t.Errorf("cache bytes = %d", cache.TotalBytes())
	}
}

func TestRandomSampleInput(t *testing.T) {
	keys := repeatKeys(10000, 1000)
	splits := makeDataset(t, keys, 4096)
	red := &sumReducer{}
	job := &Job{
		Name:      "sample",
		Splits:    splits,
		Input:     RandomSampleInput{P: 0.1},
		NewMapper: func(hdfs.Split) Mapper { return countMapper{} },
		Reducer:   red,
		Streaming: true,
		Seed:      11,
	}
	res, err := Run(job)
	if err != nil {
		t.Fatal(err)
	}
	var sampled float64
	for _, v := range red.totals {
		sampled += v
	}
	if sampled < 800 || sampled > 1200 {
		t.Errorf("sampled %v records, want ~1000", sampled)
	}
	if res.Counters.MapRecordsRead != int64(sampled) {
		t.Errorf("records read %d != sampled %v", res.Counters.MapRecordsRead, sampled)
	}
	// Sampling reads only the sampled records' bytes.
	if res.Counters.MapBytesRead >= int64(len(keys)*4) {
		t.Errorf("sampling read the whole input: %d bytes", res.Counters.MapBytesRead)
	}
}

type failingMapper struct{}

func (failingMapper) Setup(*TaskContext) error { return nil }
func (failingMapper) Map(ctx *TaskContext, rec hdfs.Record, out *Emitter) error {
	if ctx.SplitID == 2 {
		return fmt.Errorf("boom")
	}
	return nil
}
func (failingMapper) Close(*TaskContext, *Emitter) error { return nil }

func TestMapperErrorPropagates(t *testing.T) {
	splits := makeDataset(t, repeatKeys(1000, 10), 256)
	job := &Job{
		Name: "fail", Splits: splits, Input: SequentialInput{},
		NewMapper: func(hdfs.Split) Mapper { return failingMapper{} },
		Reducer:   &sumReducer{}, Streaming: true, Seed: 1,
	}
	if _, err := Run(job); err == nil {
		t.Fatal("expected error")
	}
}

func TestValidation(t *testing.T) {
	splits := makeDataset(t, []int64{1}, 64)
	bad := []*Job{
		{Splits: splits, Input: SequentialInput{}, Reducer: &sumReducer{}},
		{Splits: splits, Input: SequentialInput{}, NewMapper: func(hdfs.Split) Mapper { return countMapper{} }},
		{Splits: splits, NewMapper: func(hdfs.Split) Mapper { return countMapper{} }, Reducer: &sumReducer{}},
		{Input: SequentialInput{}, NewMapper: func(hdfs.Split) Mapper { return countMapper{} }, Reducer: &sumReducer{}},
	}
	for i, j := range bad {
		if _, err := Run(j); err == nil {
			t.Errorf("job %d: expected validation error", i)
		}
	}
}

func TestCountersSanity(t *testing.T) {
	keys := repeatKeys(2000, 100)
	splits := makeDataset(t, keys, 512)
	res, _ := wordCountJob(t, splits, true, nil)
	if res.Counters.MapRecordsRead != int64(len(keys)) {
		t.Errorf("records read = %d, want %d", res.Counters.MapRecordsRead, len(keys))
	}
	if res.Counters.MapBytesRead != int64(len(keys)*4) {
		t.Errorf("bytes read = %d, want %d", res.Counters.MapBytesRead, len(keys)*4)
	}
	if res.Counters.PairsEmitted != int64(len(keys)) {
		t.Errorf("pairs emitted = %d", res.Counters.PairsEmitted)
	}
	if res.Counters.MapCPU() <= 0 || res.ReduceCPU <= 0 {
		t.Error("CPU accounting missing")
	}
	if len(res.MapTasks) != len(splits) {
		t.Errorf("task metrics = %d, want %d", len(res.MapTasks), len(splits))
	}
	for _, tm := range res.MapTasks {
		if tm.InputBytes <= 0 {
			t.Errorf("task %d read nothing", tm.SplitID)
		}
	}
}

func TestGroupedModeGroupsAllValues(t *testing.T) {
	// In grouped mode each key is Reduced exactly once.
	keys := repeatKeys(1000, 7)
	splits := makeDataset(t, keys, 128)
	res, totals := wordCountJob(t, splits, false, nil)
	if res.ReduceCalls != int64(len(totals)) {
		t.Errorf("reduce calls = %d, want one per key = %d", res.ReduceCalls, len(totals))
	}
}
