package mapred

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"wavelethist/internal/zipf"
)

// Engine execution. Mappers run concurrently in a bounded worker pool but
// the run is fully deterministic: every task derives its RNG from
// (job seed, split id), and the reducer consumes mapper outputs in split
// order, so float accumulation order never depends on scheduling.

// mapOutput is one completed map task: its sorted+combined pairs plus its
// work profile.
type mapOutput struct {
	pairs   []KV
	metrics TaskMetrics
	err     error
}

// Run executes one MapReduce round.
func Run(job *Job) (*Result, error) {
	return RunContext(context.Background(), job)
}

// RunContext executes one MapReduce round, aborting early (with ctx.Err())
// when the context is canceled. Cancellation is checked between reducer
// batches and periodically inside map-side record scans.
func RunContext(ctx context.Context, job *Job) (*Result, error) {
	if err := job.validate(); err != nil {
		return nil, err
	}
	job.fillDefaults()
	counters := &Counters{}
	m := len(job.Splits)

	parallelism := job.Parallelism
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > m {
		parallelism = m
	}

	outputs := make([]*mapOutput, m)
	done := make([]chan struct{}, m)
	for i := range done {
		done[i] = make(chan struct{})
	}
	// Memory bound: at most 2×parallelism completed-but-unconsumed map
	// outputs exist at once. Workers take split indices in ascending
	// order, so the index the reducer is waiting for is always in flight.
	tokens := make(chan struct{}, 2*parallelism)
	indices := make(chan int)
	go func() {
		for i := 0; i < m; i++ {
			tokens <- struct{}{}
			indices <- i
		}
		close(indices)
	}()

	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range indices {
				outputs[idx] = runMapTask(ctx, job, idx, counters)
				close(done[idx])
			}
		}()
	}

	// Reduce phase: r reducer tasks, each consuming its partition of the
	// mapper outputs in split order. The paper's jobs use r = 1 (their
	// coordinator is necessarily a single task); the engine supports the
	// general Hadoop configuration.
	r := job.numReducers()
	reducers := make([]Reducer, r)
	rctxs := make([]*TaskContext, r)
	for p := 0; p < r; p++ {
		if r == 1 {
			reducers[p] = job.Reducer
		} else {
			reducers[p] = job.NewReducer(p)
		}
		rctxs[p] = &TaskContext{
			JobName:   job.Name,
			SplitID:   ReducerState - p, // ReducerState, ReducerState-1, ...
			NumSplits: m,
			Conf:      job.Conf,
			Cache:     job.Cache,
			State:     job.State,
			RNG:       taskRNG(job.Seed, ReducerState-p),
			counters:  counters,
		}
		if err := reducers[p].Setup(rctxs[p]); err != nil {
			return nil, fmt.Errorf("mapred: %s: reducer %d setup: %w", job.Name, p, err)
		}
	}

	res := &Result{MapTasks: make([]TaskMetrics, m)}
	var reduceErr error
	grouped := make([][]KV, r) // only in grouped mode
	for i := 0; i < m; i++ {
		<-done[i]
		out := outputs[i]
		outputs[i] = nil
		<-tokens
		if reduceErr == nil && ctx.Err() != nil {
			reduceErr = ctx.Err()
		}
		if out.err != nil {
			reduceErr = out.err
			continue
		}
		res.MapTasks[i] = out.metrics
		if reduceErr != nil {
			continue
		}
		for p := 0; p < r && reduceErr == nil; p++ {
			pairs := out.pairs
			if r > 1 {
				pairs = filterPartition(job, pairs, p, r)
			}
			if job.Streaming {
				reduceErr = feedGroups(rctxs[p], reducers[p], pairs, counters)
			} else {
				grouped[p] = append(grouped[p], pairs...)
			}
		}
	}
	wg.Wait()
	if reduceErr != nil {
		return nil, fmt.Errorf("mapred: %s: %w", job.Name, reduceErr)
	}

	if !job.Streaming {
		// Hadoop semantics: per-partition sort by key (stable keeps split
		// order within a key), then one Reduce call per distinct key.
		for p := 0; p < r; p++ {
			g := grouped[p]
			sort.SliceStable(g, func(a, b int) bool { return g[a].Key < g[b].Key })
			if err := feedGroups(rctxs[p], reducers[p], g, counters); err != nil {
				return nil, fmt.Errorf("mapred: %s: %w", job.Name, err)
			}
		}
	}
	for p := 0; p < r; p++ {
		if err := reducers[p].Close(rctxs[p]); err != nil {
			return nil, fmt.Errorf("mapred: %s: reducer %d close: %w", job.Name, p, err)
		}
	}

	res.Counters = *counters
	res.Counters.MapCPUUnits = atomic.LoadInt64(&counters.MapCPUUnits)
	for p := 0; p < r; p++ {
		res.ReduceCPU += rctxs[p].cpuUnits
	}
	res.ReduceCPU += float64(counters.ReduceCalls)
	res.ReduceCalls = counters.ReduceCalls
	res.ShuffleBytes = counters.ShuffleBytes
	res.PairsShuffled = counters.PairsShuffled
	return res, nil
}

// filterPartition extracts the pairs routed to reducer p, preserving key
// order (a subsequence of a key-sorted list stays key-sorted).
func filterPartition(job *Job, pairs []KV, p, r int) []KV {
	var out []KV
	for _, kv := range pairs {
		if job.partition(kv.Key, r) == p {
			out = append(out, kv)
		}
	}
	return out
}

// feedGroups groups consecutive pairs with equal keys (input is sorted by
// key within each batch) and invokes Reduce per group.
func feedGroups(ctx *TaskContext, red Reducer, pairs []KV, counters *Counters) error {
	for lo := 0; lo < len(pairs); {
		hi := lo + 1
		for hi < len(pairs) && pairs[hi].Key == pairs[lo].Key {
			hi++
		}
		atomic.AddInt64(&counters.ReduceCalls, 1)
		ctx.AddWork(float64(hi - lo)) // one unit per consumed pair
		if err := red.Reduce(ctx, pairs[lo].Key, pairs[lo:hi]); err != nil {
			return err
		}
		lo = hi
	}
	return nil
}

// taskRNG derives a deterministic per-task RNG independent of scheduling.
func taskRNG(seed uint64, splitID int) *zipf.RNG {
	return zipf.NewRNG(seed ^ (uint64(splitID+2) * 0x9e3779b97f4a7c15))
}

// runMapTask executes one mapper over its split: Setup, Map per record,
// Close, then sort + combine + byte accounting.
func runMapTask(ctx context.Context, job *Job, idx int, counters *Counters) *mapOutput {
	if ctx.Err() != nil {
		return &mapOutput{err: ctx.Err()}
	}
	split := job.Splits[idx]
	tctx := &TaskContext{
		JobName:   job.Name,
		Split:     split,
		SplitID:   idx,
		NumSplits: len(job.Splits),
		Conf:      job.Conf,
		Cache:     job.Cache,
		State:     job.State,
		RNG:       taskRNG(job.Seed, idx),
		counters:  counters,
	}
	mapper := job.NewMapper(split)
	out := &Emitter{counters: counters, job: job, ctx: tctx}
	if err := mapper.Setup(tctx); err != nil {
		return &mapOutput{err: fmt.Errorf("split %d setup: %w", idx, err)}
	}

	var bytesRead int64
	var records int64
	if reader := job.Input.Open(split, tctx); reader != nil {
		for {
			rec, ok := reader.Next()
			if !ok {
				break
			}
			records++
			if records&8191 == 0 && ctx.Err() != nil {
				return &mapOutput{err: ctx.Err()}
			}
			if err := mapper.Map(tctx, rec, out); err != nil {
				return &mapOutput{err: fmt.Errorf("split %d map: %w", idx, err)}
			}
		}
		bytesRead = reader.BytesRead()
	}
	if err := mapper.Close(tctx, out); err != nil {
		return &mapOutput{err: fmt.Errorf("split %d close: %w", idx, err)}
	}

	atomic.AddInt64(&counters.MapRecordsRead, records)
	atomic.AddInt64(&counters.MapBytesRead, bytesRead)
	atomic.AddInt64(&counters.PairsEmitted, out.emitted)

	// Merge spilled runs with the in-memory tail and combine once more
	// (combiners must be associative/commutative, as Hadoop requires).
	all := out.pairs
	if len(out.spills) > 0 {
		merged := make([]KV, 0, out.spilledPairs+len(out.pairs))
		for _, sp := range out.spills {
			merged = append(merged, sp...)
		}
		merged = append(merged, all...)
		all = merged
	}
	pairs := sortAndCombine(job, all)

	var shuffleBytes int64
	for i := range pairs {
		shuffleBytes += int64(job.pairBytes(pairs[i]))
	}
	atomic.AddInt64(&counters.PairsShuffled, int64(len(pairs)))
	atomic.AddInt64(&counters.ShuffleBytes, shuffleBytes)

	// Base CPU charges: one unit per record scanned, one per emitted pair
	// (buffer/partition/sort amortized); algorithm-specific work arrives
	// via ctx.AddWork.
	cpu := tctx.cpuUnits + float64(records) + float64(len(out.pairs))
	counters.addMapCPU(cpu)

	return &mapOutput{
		pairs: pairs,
		metrics: TaskMetrics{
			SplitID:    idx,
			Node:       split.Node,
			InputBytes: bytesRead + tctx.ioBytes,
			CPUUnits:   cpu,
		},
	}
}

// sortAndCombine sorts a mapper's emissions by key (stable, preserving
// emission order within a key) and applies the job's Combiner per key.
func sortAndCombine(job *Job, pairs []KV) []KV {
	sort.SliceStable(pairs, func(a, b int) bool { return pairs[a].Key < pairs[b].Key })
	if job.Combiner == nil {
		return pairs
	}
	combined := pairs[:0:len(pairs)]
	for lo := 0; lo < len(pairs); {
		hi := lo + 1
		for hi < len(pairs) && pairs[hi].Key == pairs[lo].Key {
			hi++
		}
		combined = append(combined, job.Combiner(pairs[lo].Key, pairs[lo:hi])...)
		lo = hi
	}
	return combined
}

// RunRounds executes a multi-round job (e.g. H-WTopk's three rounds),
// sharing Conf, Cache and State across rounds, and returns per-round
// results. The between-rounds callback lets the coordinator update the
// job configuration / distributed cache, like the paper's driver does
// between Hadoop job submissions.
func RunRounds(jobs []*Job, between func(round int, res *Result) error) ([]*Result, error) {
	var results []*Result
	for i, j := range jobs {
		res, err := Run(j)
		if err != nil {
			return results, err
		}
		results = append(results, res)
		if between != nil {
			if err := between(i, res); err != nil {
				return results, err
			}
		}
	}
	return results, nil
}
