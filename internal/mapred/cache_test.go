package mapred

import (
	"testing"

	"wavelethist/internal/hdfs"
)

func TestDistCacheBasics(t *testing.T) {
	d := NewDistCache()
	if d.TotalBytes() != 0 {
		t.Fatalf("empty cache bytes = %d", d.TotalBytes())
	}
	d.Put("a", []byte{1, 2, 3})
	d.Put("b", make([]byte, 10))
	if d.TotalBytes() != 13 {
		t.Errorf("bytes = %d, want 13", d.TotalBytes())
	}
	if got := d.Get("a"); len(got) != 3 || got[0] != 1 {
		t.Errorf("Get(a) = %v", got)
	}
	if d.Get("missing") != nil {
		t.Error("missing file returned data")
	}
	d.Delete("a")
	if d.Get("a") != nil || d.TotalBytes() != 10 {
		t.Error("delete did not remove the file")
	}
}

func TestDistCachePutCopies(t *testing.T) {
	d := NewDistCache()
	src := []byte{1, 2, 3}
	d.Put("x", src)
	src[0] = 99
	if d.Get("x")[0] != 1 {
		t.Error("cache aliases caller's slice")
	}
}

func TestStateStoreBasics(t *testing.T) {
	s := NewStateStore()
	if s.Get(0) != nil {
		t.Error("empty store returned data")
	}
	s.Put(3, []byte{7})
	s.Put(ReducerState, []byte{8, 9})
	if got := s.Get(3); len(got) != 1 || got[0] != 7 {
		t.Errorf("Get(3) = %v", got)
	}
	if got := s.Get(ReducerState); len(got) != 2 {
		t.Errorf("reducer state = %v", got)
	}
	s.Clear()
	if s.Get(3) != nil {
		t.Error("Clear did not drop state")
	}
}

func TestStateStorePutCopies(t *testing.T) {
	s := NewStateStore()
	src := []byte{1}
	s.Put(0, src)
	src[0] = 2
	if s.Get(0)[0] != 1 {
		t.Error("state store aliases caller's slice")
	}
}

func TestBinaryHelpers(t *testing.T) {
	var b []byte
	b = AppendUint64(b, 42)
	b = AppendInt64(b, -7)
	b = AppendFloat64(b, 3.5)
	u, off := ReadUint64(b, 0)
	if u != 42 {
		t.Errorf("uint64 = %d", u)
	}
	i, off := ReadInt64(b, off)
	if i != -7 {
		t.Errorf("int64 = %d", i)
	}
	f, off := ReadFloat64(b, off)
	if f != 3.5 || off != 24 {
		t.Errorf("float64 = %v, off = %d", f, off)
	}
}

func TestConfClone(t *testing.T) {
	c := Conf{"a": "1"}
	cp := c.Clone()
	cp["a"] = "2"
	cp["b"] = "3"
	if c["a"] != "1" || c["b"] != "" {
		t.Errorf("clone aliases original: %v", c)
	}
}

func TestRunRoundsBetweenError(t *testing.T) {
	fs := hdfs.NewFileSystem(2, 64)
	w, _ := fs.Create("x", 4)
	w.Append(1)
	splits := w.Close().Splits(0)
	mk := func() *Job {
		return &Job{
			Name: "j", Splits: splits, Input: SequentialInput{},
			NewMapper: func(hdfs.Split) Mapper { return countMapper{} },
			Reducer:   &sumReducer{}, Streaming: true, Seed: 1,
		}
	}
	calls := 0
	_, err := RunRounds([]*Job{mk(), mk()}, func(round int, res *Result) error {
		calls++
		return errTest
	})
	if err == nil {
		t.Fatal("between error not propagated")
	}
	if calls != 1 {
		t.Errorf("between called %d times, want 1 (abort after round 1)", calls)
	}
}

var errTest = errFixed("test failure")

type errFixed string

func (e errFixed) Error() string { return string(e) }

func TestEstimateVarRecords(t *testing.T) {
	fs := hdfs.NewFileSystem(2, 1<<20)
	w, _ := fs.CreateVar("v")
	for i := 0; i < 100; i++ {
		w.Append(int64(i), 10) // uniform 27-byte records
	}
	f := w.Close()
	split := f.Splits(270)[0] // exactly 10 records worth of bytes
	if got := estimateVarRecords(split); got != 10 {
		t.Errorf("estimated %d records, want 10", got)
	}
	// Empty file edge.
	w2, _ := fs.CreateVar("empty")
	f2 := w2.Close()
	if got := estimateVarRecords(hdfs.Split{File: f2}); got != 0 {
		t.Errorf("empty estimate = %d", got)
	}
}
