package mapred

import (
	"context"
	"fmt"
	"sort"
)

// Split-granular execution: the dist subsystem runs a job's map side one
// split at a time on remote worker processes (RunMapSplit) and its reduce
// side once on the coordinator over the collected per-split batches
// (RunReduce). Because every task derives its RNG from (job seed, split
// id) and the reducer consumes batches in split order, the two halves
// reproduce Run's output bit-for-bit regardless of which worker ran which
// split — the property the distributed parity tests assert.

// MapSplitResult is the outcome of one standalone map task: the split's
// sorted, combined intermediate pairs plus its measured work profile.
type MapSplitResult struct {
	Pairs   []KV
	Metrics TaskMetrics
	// RecordsRead / BytesRead are the split's input-scan counters.
	RecordsRead int64
	BytesRead   int64
	// ShuffleBytes is the modeled wire size of Pairs under Job.PairBytes
	// (the paper's communication accounting for this split's shuffle).
	ShuffleBytes int64
}

// RunMapSplit executes only the map side of split idx.
func RunMapSplit(ctx context.Context, job *Job, idx int) (*MapSplitResult, error) {
	if err := job.validate(); err != nil {
		return nil, err
	}
	if idx < 0 || idx >= len(job.Splits) {
		return nil, fmt.Errorf("mapred: %s: split %d out of range [0, %d)", job.Name, idx, len(job.Splits))
	}
	job.fillDefaults()
	counters := &Counters{}
	out := runMapTask(ctx, job, idx, counters)
	if out.err != nil {
		return nil, fmt.Errorf("mapred: %s: %w", job.Name, out.err)
	}
	return &MapSplitResult{
		Pairs:        out.pairs,
		Metrics:      out.metrics,
		RecordsRead:  counters.MapRecordsRead,
		BytesRead:    counters.MapBytesRead,
		ShuffleBytes: counters.ShuffleBytes,
	}, nil
}

// RunReduce executes only the reduce side of a single-reducer job over
// externally supplied per-split pair batches (each sorted by key), fed in
// the order given. The returned Result carries reduce-side and shuffle
// metrics; map-task profiles come from the workers' MapSplitResults.
func RunReduce(ctx context.Context, job *Job, batches [][]KV) (*Result, error) {
	if err := job.validate(); err != nil {
		return nil, err
	}
	if job.numReducers() != 1 {
		return nil, fmt.Errorf("mapred: %s: RunReduce supports single-reducer jobs only", job.Name)
	}
	job.fillDefaults()
	counters := &Counters{}
	rctx := &TaskContext{
		JobName:   job.Name,
		SplitID:   ReducerState,
		NumSplits: len(job.Splits),
		Conf:      job.Conf,
		Cache:     job.Cache,
		State:     job.State,
		RNG:       taskRNG(job.Seed, ReducerState),
		counters:  counters,
	}
	red := job.Reducer
	if err := red.Setup(rctx); err != nil {
		return nil, fmt.Errorf("mapred: %s: reducer setup: %w", job.Name, err)
	}
	res := &Result{}
	feed := batches
	if !job.Streaming {
		// Grouped semantics: one globally key-sorted pass, stable so split
		// order is preserved within a key — exactly what Run produces.
		var all []KV
		for _, b := range batches {
			all = append(all, b...)
		}
		sort.SliceStable(all, func(a, b int) bool { return all[a].Key < all[b].Key })
		feed = [][]KV{all}
	}
	for _, batch := range feed {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("mapred: %s: %w", job.Name, err)
		}
		if err := feedGroups(rctx, red, batch, counters); err != nil {
			return nil, fmt.Errorf("mapred: %s: %w", job.Name, err)
		}
		for i := range batch {
			res.ShuffleBytes += int64(job.pairBytes(batch[i]))
		}
		res.PairsShuffled += int64(len(batch))
	}
	if err := red.Close(rctx); err != nil {
		return nil, fmt.Errorf("mapred: %s: reducer close: %w", job.Name, err)
	}
	res.ReduceCPU = rctx.cpuUnits + float64(counters.ReduceCalls)
	res.ReduceCalls = counters.ReduceCalls
	res.Counters = *counters
	res.Counters.ShuffleBytes = res.ShuffleBytes
	res.Counters.PairsShuffled = res.PairsShuffled
	return res, nil
}
