package mapred

import (
	"fmt"

	"wavelethist/internal/hdfs"
	"wavelethist/internal/zipf"
)

// TaskContext is the per-task environment: job configuration, distributed
// cache, persistent state, a deterministic task-local RNG, and work
// accounting for the cost model.
type TaskContext struct {
	JobName   string
	Split     hdfs.Split // zero value for the reducer
	SplitID   int        // split index, or ReducerState for the reducer
	NumSplits int
	Conf      Conf
	Cache     *DistCache
	State     *StateStore
	RNG       *zipf.RNG

	counters *Counters
	cpuUnits float64 // task-local abstract work
	ioBytes  int64   // task-local input bytes (readers + explicit)
}

// AddWork charges abstract CPU work units to this task (one unit ≈ one
// hash-map update / coefficient operation). The cluster cost model turns
// units into seconds on the task's node.
func (ctx *TaskContext) AddWork(units float64) {
	ctx.cpuUnits += units
}

// AddIOBytes charges extra local-disk input bytes (e.g. state-file reads).
func (ctx *TaskContext) AddIOBytes(n int64) {
	ctx.ioBytes += n
}

// Emitter collects a mapper's intermediate pairs, simulating Hadoop's
// in-memory buffer: when Job.SpillThreshold pairs accumulate, the buffer
// is sorted, combined, and spilled to local disk (charged as task IO).
type Emitter struct {
	pairs    []KV
	counters *Counters
	job      *Job
	ctx      *TaskContext

	emitted      int64
	spills       [][]KV
	spilledPairs int
}

// Emit outputs one intermediate pair.
func (e *Emitter) Emit(kv KV) {
	e.pairs = append(e.pairs, kv)
	e.emitted++
	if t := e.job.SpillThreshold; t > 0 && len(e.pairs) >= t {
		e.spill()
	}
}

// spill sorts + combines the buffer and writes it to (simulated) local
// disk: the spill is read back at merge time, so both directions count as
// task IO.
func (e *Emitter) spill() {
	run := sortAndCombine(e.job, e.pairs)
	var bytes int64
	for i := range run {
		bytes += int64(e.job.pairBytes(run[i]))
	}
	e.ctx.AddIOBytes(2 * bytes) // write + read-back at merge
	e.ctx.AddWork(float64(len(run)))
	e.spills = append(e.spills, run)
	e.spilledPairs += len(run)
	e.pairs = nil
}

// Mapper is the Hadoop mapper contract: Map is invoked per record, Close
// once at the end of the split (where the paper's mappers do their real
// work: building v_j, the local transform, local top-k).
type Mapper interface {
	// Setup runs before the first record.
	Setup(ctx *TaskContext) error
	// Map handles one input record.
	Map(ctx *TaskContext, rec hdfs.Record, out *Emitter) error
	// Close runs after the last record.
	Close(ctx *TaskContext, out *Emitter) error
}

// Reducer is the Hadoop reducer contract. In grouped mode (Job.Streaming
// false) Reduce is called once per distinct key with all its values; in
// streaming mode it may be called many times per key with value batches
// (all our reducers are commutative aggregations, which Hadoop's combiner
// contract already requires). Close runs after all keys.
type Reducer interface {
	Setup(ctx *TaskContext) error
	Reduce(ctx *TaskContext, key int64, vals []KV) error
	Close(ctx *TaskContext) error
}

// Combiner locally aggregates one mapper's pairs sharing a key before they
// are shuffled, like Hadoop's Combine function.
type Combiner func(key int64, vals []KV) []KV

// InputFormat produces a RecordReader for a split, mirroring Hadoop's
// pluggable InputFormat. A nil reader means the mapper sees no records
// (H-WTopk rounds 2-3 define an InputFormat that does not read the split).
type InputFormat interface {
	Open(split hdfs.Split, ctx *TaskContext) hdfs.RecordReader
}

// SequentialInput scans every record (the default InputFormat).
type SequentialInput struct{}

// Open implements InputFormat.
func (SequentialInput) Open(split hdfs.Split, _ *TaskContext) hdfs.RecordReader {
	if split.File.RecordSize == 0 {
		return hdfs.NewSequentialVarReader(split)
	}
	return hdfs.NewSequentialReader(split)
}

// RandomSampleInput is the paper's RandomInputFile format: each split j
// samples p·n_j records without replacement via the RandomRecordReader.
type RandomSampleInput struct {
	// P is the sampling probability p = 1/(ε²n) of level-1 sampling.
	P float64
}

// Open implements InputFormat.
func (f RandomSampleInput) Open(split hdfs.Split, ctx *TaskContext) hdfs.RecordReader {
	if split.File.RecordSize == 0 {
		nj := estimateVarRecords(split)
		return hdfs.NewRandomVarReader(split, int64(f.P*float64(nj)), ctx.RNG)
	}
	nj := split.NumRecords()
	return hdfs.NewRandomReader(split, int64(f.P*float64(nj)), ctx.RNG)
}

// estimateVarRecords estimates n_j for a variable-length split from the
// file's average record size — the paper's suggested statistic when exact
// per-split counts are unavailable (Appendix B).
func estimateVarRecords(split hdfs.Split) int64 {
	f := split.File
	if f.NumRecords == 0 || f.Size() == 0 {
		return 0
	}
	avg := float64(f.Size()) / float64(f.NumRecords)
	return int64(float64(split.Length) / avg)
}

// NoInput reads nothing: mappers run Setup and Close only, restoring their
// state from the StateStore (H-WTopk rounds 2 and 3).
type NoInput struct{}

// Open implements InputFormat.
func (NoInput) Open(hdfs.Split, *TaskContext) hdfs.RecordReader { return nil }

// Job describes one MapReduce round.
type Job struct {
	Name   string
	Splits []hdfs.Split
	Input  InputFormat

	// NewMapper creates the mapper for one split (mappers are stateful
	// and per-split).
	NewMapper func(split hdfs.Split) Mapper
	Combiner  Combiner // optional
	Reducer   Reducer

	// NumReducers is r, the reducer-task count. 0 or 1 runs the single
	// Reducer above (the paper's configuration — its coordinator is
	// necessarily one task). With r > 1, NewReducer must be set and keys
	// are routed by Partitioner.
	NumReducers int
	// NewReducer creates the reducer for one partition (r > 1 only).
	NewReducer func(partition int) Reducer
	// Partitioner routes an intermediate key to a reducer in [0, r);
	// nil uses Hadoop's default hash(k2) mod r.
	Partitioner func(key int64, r int) int

	// SpillThreshold simulates the mapper's in-memory buffer: when more
	// than this many pairs accumulate, they are sorted, combined and
	// spilled to local disk (costed as task IO), as Hadoop does. 0 means
	// unbounded (no spills).
	SpillThreshold int

	// PairBytes gives the wire size of one shuffled pair. Algorithms set
	// it to the paper's encodings (4-byte keys, 4-byte counts, 8-byte
	// doubles). Defaults to 12 bytes (4-byte key + 8-byte double).
	PairBytes func(KV) int

	// Streaming feeds reducer input per-batch without global grouping;
	// reducers must be commutative aggregators (all of ours are). Grouped
	// mode (false) materializes and sorts the full shuffle like Hadoop.
	Streaming bool

	Conf  Conf
	Cache *DistCache
	State *StateStore

	// Seed makes the whole job deterministic; each task derives its own
	// RNG stream from it.
	Seed uint64

	// Parallelism bounds concurrent mappers (0 = GOMAXPROCS).
	Parallelism int
}

// TaskMetrics is the deterministic work profile of one completed map task,
// consumed by the cluster cost model.
type TaskMetrics struct {
	SplitID    int
	Node       int // data-local node of the split
	InputBytes int64
	CPUUnits   float64
}

// Result is the outcome of one round.
type Result struct {
	Counters    Counters
	MapTasks    []TaskMetrics
	ReduceCPU   float64
	ReduceCalls int64
	// ShuffleBytes is the exact communication of this round: encoded
	// size of all pairs crossing mapper→reducer after combining.
	ShuffleBytes int64
	// PairsShuffled counts those pairs.
	PairsShuffled int64
}

func (j *Job) validate() error {
	if j.NewMapper == nil {
		return fmt.Errorf("mapred: job %q has no mapper factory", j.Name)
	}
	if j.numReducers() == 1 {
		if j.Reducer == nil {
			return fmt.Errorf("mapred: job %q has no reducer", j.Name)
		}
	} else if j.NewReducer == nil {
		return fmt.Errorf("mapred: job %q has %d reducers but no reducer factory",
			j.Name, j.numReducers())
	}
	if j.Input == nil {
		return fmt.Errorf("mapred: job %q has no input format", j.Name)
	}
	if len(j.Splits) == 0 {
		return fmt.Errorf("mapred: job %q has no splits", j.Name)
	}
	if j.SpillThreshold < 0 {
		return fmt.Errorf("mapred: job %q has negative spill threshold", j.Name)
	}
	return nil
}

// fillDefaults lazily creates the shared per-job stores.
func (j *Job) fillDefaults() {
	if j.Conf == nil {
		j.Conf = Conf{}
	}
	if j.Cache == nil {
		j.Cache = NewDistCache()
	}
	if j.State == nil {
		j.State = NewStateStore()
	}
}

// Prepare validates the job and materializes its lazily created shared
// stores (Conf, Cache, State). Callers that fan RunMapSplit out across
// goroutines must Prepare the job once up front: the per-call
// fillDefaults would otherwise race on the nil fields.
func (j *Job) Prepare() error {
	if err := j.validate(); err != nil {
		return err
	}
	j.fillDefaults()
	return nil
}

func (j *Job) numReducers() int {
	if j.NumReducers <= 1 {
		return 1
	}
	return j.NumReducers
}

// partition routes a key to its reducer.
func (j *Job) partition(key int64, r int) int {
	if j.Partitioner != nil {
		p := j.Partitioner(key, r)
		if p < 0 || p >= r {
			return 0
		}
		return p
	}
	// Hadoop's default: hash(k2) mod r, with a cheap integer mix so
	// adjacent keys spread.
	h := uint64(key) * 0x9e3779b97f4a7c15
	return int(h % uint64(r))
}

func (j *Job) pairBytes(kv KV) int {
	if j.PairBytes != nil {
		return j.PairBytes(kv)
	}
	return 12
}
