// Package mapred is an in-process MapReduce runtime with Hadoop's
// programming model and the observability the paper's evaluation needs:
// splits processed by per-split Mappers with Close hooks, an optional
// Combiner, sort-and-shuffle with exact byte accounting per intermediate
// pair, a single Reducer with Close, a Job Configuration and Distributed
// Cache for coordinator→mapper communication, and a per-split persistent
// state store that stands in for the paper's "HDFS state files" across
// multi-round jobs (Appendix A).
package mapred

import "sync/atomic"

// KV is an intermediate key-value pair (k2, v2). Key is the intermediate
// key (a key-domain value or a coefficient index); Val its numeric value.
// Src carries the originating split id j for algorithms whose pairs are
// (i, (j, w_ij)); Tag carries algorithm-specific markers (e.g. H-WTopk's
// round-1 "k-th highest/lowest" marks, or TwoLevel-S's NULL pairs).
// The wire size of a pair is algorithm-defined via Job.PairBytes.
type KV struct {
	Key int64
	Val float64
	Src int32
	Tag uint8
}

// Tag values shared by the algorithms in internal/core.
const (
	TagNone     uint8 = iota
	TagMarkHigh       // H-WTopk round 1: this is split Src's k-th highest coefficient
	TagMarkLow        // H-WTopk round 1: this is split Src's k-th lowest coefficient
	TagNull           // TwoLevel-S: second-level sampled (x, NULL) pair
)

// Conf is the Job Configuration: a small set of global variables shipped
// to every task at initialization (the paper uses it for T1/m, n, ε, m).
type Conf map[string]string

// Clone returns a copy so rounds can evolve the conf independently.
func (c Conf) Clone() Conf {
	out := make(Conf, len(c))
	for k, v := range c {
		out[k] = v
	}
	return out
}

// Counters aggregates a job's observable work, in the spirit of Hadoop's
// job counters. All fields are updated atomically by tasks.
type Counters struct {
	MapRecordsRead int64 // records delivered by record readers
	MapBytesRead   int64 // bytes pulled from DataNodes by record readers
	PairsEmitted   int64 // mapper emissions before combine
	PairsShuffled  int64 // pairs crossing the network after combine
	ShuffleBytes   int64 // exact encoded bytes of shuffled pairs
	ReduceCalls    int64
	MapCPUUnits    int64 // abstract work units (scaled by 1e3 for atomic math)
	ReduceCPUUnits int64
}

func (c *Counters) addMapCPU(units float64)    { atomic.AddInt64(&c.MapCPUUnits, int64(units*1e3)) }
func (c *Counters) addReduceCPU(units float64) { atomic.AddInt64(&c.ReduceCPUUnits, int64(units*1e3)) }

// MapCPU returns total map-side abstract work units.
func (c *Counters) MapCPU() float64 { return float64(atomic.LoadInt64(&c.MapCPUUnits)) / 1e3 }

// ReduceCPU returns total reduce-side abstract work units.
func (c *Counters) ReduceCPU() float64 { return float64(atomic.LoadInt64(&c.ReduceCPUUnits)) / 1e3 }
