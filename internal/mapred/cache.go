package mapred

import (
	"encoding/binary"
	"math"
	"sync"
)

// DistCache simulates Hadoop's Distributed Cache: files submitted to the
// master are replicated to all slaves during job initialization. Content
// is read-only for tasks; TotalBytes feeds broadcast-cost accounting
// (bytes × (#slaves − 1) cross the switch).
type DistCache struct {
	mu    sync.RWMutex
	files map[string][]byte
}

// NewDistCache returns an empty cache.
func NewDistCache() *DistCache {
	return &DistCache{files: make(map[string][]byte)}
}

// Put submits a file for replication to all slaves before the next job.
func (d *DistCache) Put(name string, data []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	cp := make([]byte, len(data))
	copy(cp, data)
	d.files[name] = cp
}

// Get returns a cached file's content (nil if absent).
func (d *DistCache) Get(name string) []byte {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.files[name]
}

// Delete removes a file.
func (d *DistCache) Delete(name string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.files, name)
}

// TotalBytes returns the current cache payload size.
func (d *DistCache) TotalBytes() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var n int64
	for _, b := range d.files {
		n += int64(len(b))
	}
	return n
}

// StateStore simulates the paper's persistent per-split state: at the end
// of a Mapper, state is written to an HDFS file named by the split id, and
// restored when the split is reassigned in a later round. Because Hadoop
// writes HDFS files locally when possible, this costs no communication
// (Section 3, "System issues"); we therefore do not account these bytes.
// Key -1 holds the coordinator's (Reducer's) local state.
type StateStore struct {
	mu    sync.RWMutex
	state map[int][]byte
}

// ReducerState is the StateStore key of the coordinator's state.
const ReducerState = -1

// NewStateStore returns an empty store.
func NewStateStore() *StateStore {
	return &StateStore{state: make(map[int][]byte)}
}

// Put saves state for a split id (use ReducerState for the coordinator).
func (s *StateStore) Put(splitID int, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := make([]byte, len(data))
	copy(cp, data)
	s.state[splitID] = cp
}

// Get restores state (nil if none).
func (s *StateStore) Get(splitID int) []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.state[splitID]
}

// Clear drops all state.
func (s *StateStore) Clear() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.state = make(map[int][]byte)
}

// Len reports how many keys hold state.
func (s *StateStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.state)
}

// TotalBytes reports the stored payload size across all keys (worker
// state-lease observability).
func (s *StateStore) TotalBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for _, b := range s.state {
		n += int64(len(b))
	}
	return n
}

// Binary encoding helpers for state files and distributed-cache payloads.
// Layout conventions: little-endian, fixed width.

// AppendUint64 appends v.
func AppendUint64(b []byte, v uint64) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	return append(b, tmp[:]...)
}

// AppendInt64 appends v.
func AppendInt64(b []byte, v int64) []byte { return AppendUint64(b, uint64(v)) }

// AppendFloat64 appends v.
func AppendFloat64(b []byte, v float64) []byte {
	return AppendUint64(b, math.Float64bits(v))
}

// ReadUint64 reads a value at offset off, returning the new offset.
func ReadUint64(b []byte, off int) (uint64, int) {
	return binary.LittleEndian.Uint64(b[off : off+8]), off + 8
}

// ReadInt64 reads a value at offset off.
func ReadInt64(b []byte, off int) (int64, int) {
	v, o := ReadUint64(b, off)
	return int64(v), o
}

// ReadFloat64 reads a value at offset off.
func ReadFloat64(b []byte, off int) (float64, int) {
	v, o := ReadUint64(b, off)
	return math.Float64frombits(v), o
}
