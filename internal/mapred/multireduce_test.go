package mapred

import (
	"sync"
	"testing"

	"wavelethist/internal/hdfs"
)

// shardReducer is a per-partition word-count reducer; results merge into
// a shared map under a mutex for verification.
type shardReducer struct {
	partition int
	shared    *sync.Map
	local     map[int64]float64
}

func (r *shardReducer) Setup(*TaskContext) error {
	r.local = make(map[int64]float64)
	return nil
}

func (r *shardReducer) Reduce(_ *TaskContext, key int64, vals []KV) error {
	for _, v := range vals {
		r.local[key] += v.Val
	}
	return nil
}

func (r *shardReducer) Close(*TaskContext) error {
	for k, v := range r.local {
		r.shared.Store(k, v)
	}
	return nil
}

func TestMultipleReducersCorrect(t *testing.T) {
	keys := repeatKeys(6000, 97)
	want := make(map[int64]float64)
	for _, k := range keys {
		want[k]++
	}
	splits := makeDataset(t, keys, 512)
	for _, r := range []int{2, 4, 7} {
		for _, streaming := range []bool{true, false} {
			var shared sync.Map
			job := &Job{
				Name: "multi", Splits: splits, Input: SequentialInput{},
				NewMapper:   func(hdfs.Split) Mapper { return countMapper{} },
				NumReducers: r,
				NewReducer: func(p int) Reducer {
					return &shardReducer{partition: p, shared: &shared}
				},
				Streaming: streaming,
				Seed:      5,
			}
			if _, err := Run(job); err != nil {
				t.Fatalf("r=%d streaming=%v: %v", r, streaming, err)
			}
			got := 0
			shared.Range(func(k, v any) bool {
				got++
				if want[k.(int64)] != v.(float64) {
					t.Errorf("r=%d key %d = %v, want %v", r, k, v, want[k.(int64)])
				}
				return true
			})
			if got != len(want) {
				t.Errorf("r=%d streaming=%v: %d keys, want %d", r, streaming, got, len(want))
			}
		}
	}
}

func TestPartitionerRoutesDisjointly(t *testing.T) {
	j := &Job{}
	const r = 5
	counts := make([]int, r)
	for key := int64(0); key < 10000; key++ {
		p := j.partition(key, r)
		if p < 0 || p >= r {
			t.Fatalf("partition(%d) = %d", key, p)
		}
		counts[p]++
	}
	for p, c := range counts {
		if c < 1200 || c > 2800 {
			t.Errorf("partition %d received %d/10000 keys; default hash unbalanced", p, c)
		}
	}
}

func TestCustomPartitioner(t *testing.T) {
	keys := repeatKeys(1000, 50)
	splits := makeDataset(t, keys, 512)
	var shared sync.Map
	job := &Job{
		Name: "custom-part", Splits: splits, Input: SequentialInput{},
		NewMapper:   func(hdfs.Split) Mapper { return countMapper{} },
		NumReducers: 2,
		// Range partition: keys < 25 to reducer 0.
		Partitioner: func(key int64, r int) int {
			if key < 25 {
				return 0
			}
			return 1
		},
		NewReducer: func(p int) Reducer { return &rangeCheckReducer{p: p, shared: &shared} },
		Streaming:  true,
		Seed:       1,
	}
	if _, err := Run(job); err != nil {
		t.Fatal(err)
	}
}

type rangeCheckReducer struct {
	p      int
	shared *sync.Map
}

func (r *rangeCheckReducer) Setup(*TaskContext) error { return nil }
func (r *rangeCheckReducer) Reduce(_ *TaskContext, key int64, _ []KV) error {
	if (key < 25) != (r.p == 0) {
		return errFixed("key routed to wrong partition")
	}
	return nil
}
func (r *rangeCheckReducer) Close(*TaskContext) error { return nil }

func TestMultiReducerValidation(t *testing.T) {
	splits := makeDataset(t, []int64{1}, 64)
	job := &Job{
		Name: "bad", Splits: splits, Input: SequentialInput{},
		NewMapper:   func(hdfs.Split) Mapper { return countMapper{} },
		NumReducers: 3, // no NewReducer factory
		Reducer:     &sumReducer{},
	}
	if _, err := Run(job); err == nil {
		t.Error("accepted r > 1 without a reducer factory")
	}
}

func TestSpillsPreserveResults(t *testing.T) {
	keys := repeatKeys(8000, 31)
	splits := makeDataset(t, keys, 2048)
	run := func(threshold int) (*Result, map[int64]float64) {
		red := &sumReducer{}
		job := &Job{
			Name: "spill", Splits: splits, Input: SequentialInput{},
			NewMapper:      func(hdfs.Split) Mapper { return countMapper{} },
			Combiner:       sumCombiner,
			Reducer:        red,
			Streaming:      true,
			Seed:           2,
			SpillThreshold: threshold,
		}
		res, err := Run(job)
		if err != nil {
			t.Fatal(err)
		}
		return res, red.totals
	}
	resNo, totalsNo := run(0)
	resSpill, totalsSpill := run(64)
	for k, v := range totalsNo {
		if totalsSpill[k] != v {
			t.Errorf("spilling changed key %d: %v vs %v", k, totalsSpill[k], v)
		}
	}
	// Spills cost extra local IO but identical shuffle bytes.
	if resSpill.ShuffleBytes != resNo.ShuffleBytes {
		t.Errorf("spilling changed shuffle bytes: %d vs %d",
			resSpill.ShuffleBytes, resNo.ShuffleBytes)
	}
	var ioNo, ioSpill int64
	for i := range resNo.MapTasks {
		ioNo += resNo.MapTasks[i].InputBytes
		ioSpill += resSpill.MapTasks[i].InputBytes
	}
	if ioSpill <= ioNo {
		t.Errorf("spilling should add local IO: %d vs %d", ioSpill, ioNo)
	}
	if _, err := Run(&Job{
		Name: "neg", Splits: splits, Input: SequentialInput{},
		NewMapper: func(hdfs.Split) Mapper { return countMapper{} },
		Reducer:   &sumReducer{}, SpillThreshold: -1,
	}); err == nil {
		t.Error("accepted negative spill threshold")
	}
}
