// Package cluster models the paper's execution environment: a 16-node
// heterogeneous Hadoop cluster on a shared 100 Mbps switch. It converts a
// MapReduce round's deterministic work metrics (bytes scanned, abstract CPU
// units, shuffle bytes, broadcast bytes) into a simulated end-to-end
// running time using list scheduling over map slots, per-node CPU/disk
// rates, and the switch bandwidth — the three terms that dominate the
// paper's measured times (split scans, per-record CPU, shuffle transfer,
// plus fixed per-round MapReduce overhead).
package cluster

import (
	"fmt"
	"sort"
)

// Node describes one cluster machine.
type Node struct {
	Name      string
	CPUFactor float64 // relative CPU speed; 1.0 = the paper's config-(1) Xeon 5120
	DiskMBps  float64 // local sequential scan rate
	MapSlots  int     // concurrent map tasks
}

// Cluster is the simulated cluster plus the cost-model calibration knobs.
type Cluster struct {
	Nodes []Node

	// SwitchMbps is the full network bandwidth of the shared switch
	// (100 Mbps in the paper). BandwidthFrac models a busy data center:
	// the paper's default is 50% (Section 5), varied in Figure 16.
	SwitchMbps    float64
	BandwidthFrac float64

	// RoundOverheadSec is the fixed per-MapReduce-round overhead (job
	// setup, task scheduling, state files). The paper stresses this is why
	// 3-round H-WTopk pays a constant price and sampling's single round
	// wins.
	RoundOverheadSec float64

	// CPUOpsPerSec calibrates abstract work units: the rate at which a
	// CPUFactor-1.0 node retires one unit (roughly one hash-map update or
	// one coefficient operation).
	CPUOpsPerSec float64

	// ReducerNode is the machine the single Reducer is pinned to; the
	// paper customizes the JobTracker to run the coordinator on a
	// designated config-(3) machine.
	ReducerNode int
}

// Paper returns the evaluation cluster of Section 5: 16 machines in four
// configurations — 9× (2 GB, Xeon 5120 1.86 GHz), 4× (4 GB, Xeon E5405
// 2 GHz), 2× (6 GB, Xeon E5506 2.13 GHz), 1× (2 GB, Core 2 6300 1.86 GHz)
// — on a 100 Mbps switch with 50% available bandwidth by default. The
// master runs on a config-(2) machine and the reducer on a config-(3)
// machine; as in the paper we model the 15 slaves that run TaskTrackers
// and DataNodes (the master runs only JobTracker/NameNode).
func Paper() *Cluster {
	c := &Cluster{
		SwitchMbps:       100,
		BandwidthFrac:    0.5,
		RoundOverheadSec: 10,
		CPUOpsPerSec:     5e7,
	}
	add := func(n int, name string, cpu, disk float64) {
		for i := 0; i < n; i++ {
			c.Nodes = append(c.Nodes, Node{
				Name:      fmt.Sprintf("%s-%d", name, i),
				CPUFactor: cpu,
				DiskMBps:  disk,
				MapSlots:  1,
			})
		}
	}
	add(9, "xeon5120", 1.00, 60)  // config (1)
	add(3, "xeonE5405", 1.08, 70) // config (2): one of the 4 hosts the master
	add(2, "xeonE5506", 1.15, 80) // config (3)
	add(1, "core2-6300", 0.95, 55)
	c.ReducerNode = 12 // first config-(3) machine
	return c
}

// NumNodes returns the number of slave nodes.
func (c *Cluster) NumNodes() int { return len(c.Nodes) }

// Validate checks the configuration.
func (c *Cluster) Validate() error {
	if len(c.Nodes) == 0 {
		return fmt.Errorf("cluster: no nodes")
	}
	if c.SwitchMbps <= 0 || c.BandwidthFrac <= 0 || c.BandwidthFrac > 1 {
		return fmt.Errorf("cluster: invalid bandwidth (%v Mbps × %v)", c.SwitchMbps, c.BandwidthFrac)
	}
	if c.CPUOpsPerSec <= 0 {
		return fmt.Errorf("cluster: invalid CPU rate")
	}
	if c.ReducerNode < 0 || c.ReducerNode >= len(c.Nodes) {
		return fmt.Errorf("cluster: reducer node %d out of range", c.ReducerNode)
	}
	for _, n := range c.Nodes {
		if n.CPUFactor <= 0 || n.DiskMBps <= 0 || n.MapSlots < 1 {
			return fmt.Errorf("cluster: invalid node %q", n.Name)
		}
	}
	return nil
}

// TaskCost is the deterministic work profile of one map task.
type TaskCost struct {
	PreferredNode int   // data-local node (split placement)
	InputBytes    int64 // bytes pulled from the local DataNode
	CPUUnits      float64
}

// RoundCost is the work profile of one MapReduce round.
type RoundCost struct {
	MapTasks       []TaskCost
	ShuffleBytes   int64 // intermediate pairs crossing the network
	BroadcastBytes int64 // job-conf / distributed-cache bytes, replicated to every slave
	ReduceCPUUnits float64
}

// netSeconds converts bytes on the shared switch into seconds at the
// currently available bandwidth.
func (c *Cluster) netSeconds(bytes int64) float64 {
	bps := c.SwitchMbps * c.BandwidthFrac * 1e6 / 8
	return float64(bytes) / bps
}

// taskSeconds is the duration of a map task on a given node; remote tasks
// additionally pull their split over the switch.
func (c *Cluster) taskSeconds(t TaskCost, node int) float64 {
	n := c.Nodes[node]
	sec := float64(t.InputBytes)/(n.DiskMBps*1e6) + t.CPUUnits/(c.CPUOpsPerSec*n.CPUFactor)
	if node != t.PreferredNode {
		sec += c.netSeconds(t.InputBytes) // non-data-local mapper
	}
	return sec
}

// MapPhaseTime schedules the map tasks over the cluster's map slots with
// locality-aware greedy list scheduling (Hadoop's default scheduler tries
// data-local first, then steals to idle nodes) and returns the makespan.
func (c *Cluster) MapPhaseTime(tasks []TaskCost) float64 {
	type slot struct {
		node int
		free float64
	}
	var slots []slot
	for i, n := range c.Nodes {
		for s := 0; s < n.MapSlots; s++ {
			slots = append(slots, slot{node: i})
		}
	}
	for _, t := range tasks {
		// Choose the slot with the earliest completion time for this task
		// (locality is captured by the remote-read penalty).
		best, bestEnd := -1, 0.0
		for i := range slots {
			end := slots[i].free + c.taskSeconds(t, slots[i].node)
			if best == -1 || end < bestEnd {
				best, bestEnd = i, end
			}
		}
		slots[best].free = bestEnd
	}
	makespan := 0.0
	for _, s := range slots {
		if s.free > makespan {
			makespan = s.free
		}
	}
	return makespan
}

// RoundTime returns the simulated end-to-end seconds of one round:
// fixed overhead + broadcast + map phase + shuffle + reduce.
// (Hadoop overlaps shuffle with the map phase; the additive model keeps
// the same asymptotic shape and is what the paper's trends depend on.)
func (c *Cluster) RoundTime(rc RoundCost) float64 {
	t := c.RoundOverheadSec
	if rc.BroadcastBytes > 0 {
		t += c.netSeconds(rc.BroadcastBytes * int64(len(c.Nodes)-1))
	}
	t += c.MapPhaseTime(rc.MapTasks)
	t += c.netSeconds(rc.ShuffleBytes)
	t += rc.ReduceCPUUnits / (c.CPUOpsPerSec * c.Nodes[c.ReducerNode].CPUFactor)
	return t
}

// JobTime sums the rounds of a multi-round job.
func (c *Cluster) JobTime(rounds []RoundCost) float64 {
	var t float64
	for _, rc := range rounds {
		t += c.RoundTime(rc)
	}
	return t
}

// SlowestNodes returns node indices sorted by ascending CPU speed; useful
// for tests asserting heterogeneity matters.
func (c *Cluster) SlowestNodes() []int {
	idx := make([]int, len(c.Nodes))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return c.Nodes[idx[a]].CPUFactor < c.Nodes[idx[b]].CPUFactor
	})
	return idx
}
