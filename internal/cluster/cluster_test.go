package cluster

import (
	"math"
	"testing"
)

func TestPaperClusterShape(t *testing.T) {
	c := Paper()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(c.Nodes) != 15 {
		t.Errorf("nodes = %d, want 15 slaves", len(c.Nodes))
	}
	if c.SwitchMbps != 100 || c.BandwidthFrac != 0.5 {
		t.Errorf("bandwidth = %v × %v", c.SwitchMbps, c.BandwidthFrac)
	}
	if c.Nodes[c.ReducerNode].CPUFactor < 1.1 {
		t.Error("reducer should be pinned to a fast config-(3) machine")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []func(*Cluster){
		func(c *Cluster) { c.Nodes = nil },
		func(c *Cluster) { c.SwitchMbps = 0 },
		func(c *Cluster) { c.BandwidthFrac = 0 },
		func(c *Cluster) { c.BandwidthFrac = 1.5 },
		func(c *Cluster) { c.CPUOpsPerSec = -1 },
		func(c *Cluster) { c.ReducerNode = 99 },
		func(c *Cluster) { c.Nodes[0].CPUFactor = 0 },
		func(c *Cluster) { c.Nodes[0].MapSlots = 0 },
	}
	for i, mut := range cases {
		c := Paper()
		mut(c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted a bad config", i)
		}
	}
}

func TestNetSecondsScalesWithBandwidth(t *testing.T) {
	c := Paper()
	full := *c
	full.BandwidthFrac = 1.0
	half := *c
	half.BandwidthFrac = 0.5
	b := int64(10 * 1024 * 1024)
	if got, want := half.netSeconds(b), 2*full.netSeconds(b); math.Abs(got-want) > 1e-9 {
		t.Errorf("half bandwidth = %v, want %v", got, want)
	}
	// 100 Mbps at 100%: 12.5 MB/s, so 10 MiB ~ 0.84s.
	if got := full.netSeconds(b); got < 0.8 || got > 0.9 {
		t.Errorf("10 MiB at 100 Mbps = %vs, want ~0.84", got)
	}
}

func TestMapPhaseLocality(t *testing.T) {
	c := Paper()
	// One task per node, all data-local: makespan ~ single task time.
	var tasks []TaskCost
	for i := range c.Nodes {
		tasks = append(tasks, TaskCost{PreferredNode: i, InputBytes: 64 << 20, CPUUnits: 1e6})
	}
	local := c.MapPhaseTime(tasks)
	// Same tasks all preferring node 0: most run remotely, paying transfer.
	for i := range tasks {
		tasks[i].PreferredNode = 0
	}
	skewed := c.MapPhaseTime(tasks)
	if skewed <= local {
		t.Errorf("remote-heavy schedule (%v) should be slower than local (%v)", skewed, local)
	}
}

func TestMapPhaseWaves(t *testing.T) {
	c := Paper()
	one := []TaskCost{{PreferredNode: 0, InputBytes: 64 << 20, CPUUnits: 0}}
	tasks := make([]TaskCost, 0, 3*len(c.Nodes))
	for w := 0; w < 3; w++ {
		for i := range c.Nodes {
			tasks = append(tasks, TaskCost{PreferredNode: i, InputBytes: 64 << 20, CPUUnits: 0})
		}
	}
	t1 := c.MapPhaseTime(one)
	t3 := c.MapPhaseTime(tasks)
	if t3 < 2.5*t1 {
		t.Errorf("3 waves (%v) should take ~3x one task (%v)", t3, t1)
	}
}

func TestRoundTimeComponents(t *testing.T) {
	c := Paper()
	empty := RoundCost{}
	if got := c.RoundTime(empty); math.Abs(got-c.RoundOverheadSec) > 1e-9 {
		t.Errorf("empty round = %v, want overhead %v", got, c.RoundOverheadSec)
	}
	withShuffle := RoundCost{ShuffleBytes: 100 << 20}
	if c.RoundTime(withShuffle) <= c.RoundTime(empty) {
		t.Error("shuffle bytes must increase round time")
	}
	withBroadcast := RoundCost{BroadcastBytes: 1 << 20}
	if c.RoundTime(withBroadcast) <= c.RoundTime(empty) {
		t.Error("broadcast bytes must increase round time")
	}
	withReduce := RoundCost{ReduceCPUUnits: 1e9}
	if c.RoundTime(withReduce) <= c.RoundTime(empty) {
		t.Error("reduce CPU must increase round time")
	}
}

func TestJobTimeSumsRounds(t *testing.T) {
	c := Paper()
	r := RoundCost{ShuffleBytes: 1 << 20}
	single := c.RoundTime(r)
	if got := c.JobTime([]RoundCost{r, r, r}); math.Abs(got-3*single) > 1e-9 {
		t.Errorf("3 rounds = %v, want %v", got, 3*single)
	}
}

// The paper's core observation: at fixed map cost, a method shipping
// orders of magnitude fewer bytes finishes much faster on a busy switch.
func TestCommunicationDominates(t *testing.T) {
	c := Paper()
	maps := make([]TaskCost, 16)
	for i := range maps {
		maps[i] = TaskCost{PreferredNode: i % len(c.Nodes), InputBytes: 16 << 20, CPUUnits: 1e7}
	}
	sendV := RoundCost{MapTasks: maps, ShuffleBytes: 2 << 30} // ~2 GiB like Send-V
	twoLevel := RoundCost{MapTasks: maps, ShuffleBytes: 1 << 20}
	ratio := c.RoundTime(sendV) / c.RoundTime(twoLevel)
	if ratio < 5 {
		t.Errorf("Send-V-like round only %.1fx slower; expected communication to dominate", ratio)
	}
}

func TestSlowestNodesOrder(t *testing.T) {
	c := Paper()
	order := c.SlowestNodes()
	for i := 1; i < len(order); i++ {
		if c.Nodes[order[i-1]].CPUFactor > c.Nodes[order[i]].CPUFactor {
			t.Fatal("SlowestNodes not ascending by CPU factor")
		}
	}
	if c.Nodes[order[0]].Name[:5] != "core2" {
		t.Errorf("slowest node = %s, want the Core 2 machine", c.Nodes[order[0]].Name)
	}
}

func TestHeterogeneityAffectsMakespan(t *testing.T) {
	c := Paper()
	homog := Paper()
	for i := range homog.Nodes {
		homog.Nodes[i].CPUFactor = 1.0
	}
	tasks := make([]TaskCost, len(c.Nodes))
	for i := range tasks {
		tasks[i] = TaskCost{PreferredNode: i, CPUUnits: 1e9}
	}
	het := c.MapPhaseTime(tasks)
	hom := homog.MapPhaseTime(tasks)
	if het <= hom {
		t.Errorf("heterogeneous makespan (%v) should exceed homogeneous (%v): stragglers", het, hom)
	}
}
