package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Label is one name="value" pair on a metric.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Metric types in the exposition output.
const (
	TypeCounter   = "counter"
	TypeGauge     = "gauge"
	TypeHistogram = "histogram"
)

type metric struct {
	name   string
	help   string
	typ    string
	labels []Label

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry owns a set of named instruments plus collector callbacks for
// metrics derived at scrape time (registry snapshots, fleet state, cache
// stats). Instrument lookup takes the registry mutex; the instruments
// themselves are lock-free, so registration happens at setup time and
// the hot path only touches atomics.
type Registry struct {
	mu         sync.Mutex
	metrics    []*metric
	byKey      map[string]*metric
	collectors []func(*Writer)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: map[string]*metric{}}
}

func metricKey(name string, labels []Label) string {
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte(0)
		b.WriteString(l.Name)
		b.WriteByte(0)
		b.WriteString(l.Value)
	}
	return b.String()
}

func (r *Registry) register(name, help, typ string, labels []Label) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := metricKey(name, labels)
	if m, ok := r.byKey[key]; ok {
		if m.typ != typ {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, typ, m.typ))
		}
		return m
	}
	m := &metric{name: name, help: help, typ: typ, labels: labels}
	switch typ {
	case TypeCounter:
		m.counter = &Counter{}
	case TypeGauge:
		m.gauge = &Gauge{}
	case TypeHistogram:
		m.hist = &Histogram{}
	}
	r.metrics = append(r.metrics, m)
	r.byKey[key] = m
	return m
}

// Counter registers (or returns the existing) counter with the given
// name and label set.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.register(name, help, TypeCounter, labels).counter
}

// Gauge registers (or returns the existing) gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.register(name, help, TypeGauge, labels).gauge
}

// Histogram registers (or returns the existing) histogram.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	return r.register(name, help, TypeHistogram, labels).hist
}

// Collect adds a callback invoked at every scrape; it emits derived
// metrics through the Writer. Collectors run after static instruments,
// and samples for the same family name are grouped in the output.
func (r *Registry) Collect(fn func(*Writer)) {
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// Expose writes the full exposition to w.
func (r *Registry) Expose(w io.Writer) error {
	r.mu.Lock()
	metrics := make([]*metric, len(r.metrics))
	copy(metrics, r.metrics)
	collectors := make([]func(*Writer), len(r.collectors))
	copy(collectors, r.collectors)
	r.mu.Unlock()

	ew := newWriter()
	for _, m := range metrics {
		switch m.typ {
		case TypeCounter:
			ew.Counter(m.name, m.help, float64(m.counter.Value()), m.labels...)
		case TypeGauge:
			ew.Gauge(m.name, m.help, float64(m.gauge.Value()), m.labels...)
		case TypeHistogram:
			v := m.hist.View()
			ew.Histogram(m.name, m.help, v, m.labels...)
		}
	}
	for _, fn := range collectors {
		fn(ew)
	}
	return ew.flush(w)
}

// Handler returns an http.Handler serving GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if req.Method == http.MethodHead {
			return
		}
		bw := bufio.NewWriter(w)
		_ = r.Expose(bw)
		_ = bw.Flush()
	})
}

// family accumulates one metric family's samples so # HELP / # TYPE are
// emitted exactly once even when static metrics and collectors both
// contribute samples to the same name.
type family struct {
	help  string
	typ   string
	lines []string
}

// Writer is handed to Collect callbacks (and used internally for static
// instruments) to build the exposition output family by family.
type Writer struct {
	fams  map[string]*family
	order []string
}

func newWriter() *Writer { return &Writer{fams: map[string]*family{}} }

func (w *Writer) fam(name, help, typ string) *family {
	f, ok := w.fams[name]
	if !ok {
		f = &family{help: help, typ: typ}
		w.fams[name] = f
		w.order = append(w.order, name)
	}
	return f
}

func formatValue(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func renderSample(name string, labels []Label, value string) string {
	var b strings.Builder
	b.WriteString(name)
	if len(labels) > 0 {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.Name)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(l.Value))
			b.WriteString(`"`)
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	return b.String()
}

// Counter emits one counter sample.
func (w *Writer) Counter(name, help string, v float64, labels ...Label) {
	f := w.fam(name, help, TypeCounter)
	f.lines = append(f.lines, renderSample(name, labels, formatValue(v)))
}

// Gauge emits one gauge sample.
func (w *Writer) Gauge(name, help string, v float64, labels ...Label) {
	f := w.fam(name, help, TypeGauge)
	f.lines = append(f.lines, renderSample(name, labels, formatValue(v)))
}

// Histogram emits the full bucket/sum/count series for one histogram.
// Bucket bounds are rendered in seconds (le="0.001" is 2^20 ns ≈ 1.05ms
// … bounds are exact powers of two, printed with full precision).
func (w *Writer) Histogram(name, help string, v HistView, labels ...Label) {
	f := w.fam(name, help, TypeHistogram)
	var cum uint64
	for i := 0; i < NumFiniteBuckets; i++ {
		cum += v.Buckets[i]
		le := strconv.FormatFloat(float64(BucketBoundNanos(i))/1e9, 'g', -1, 64)
		ls := append(append([]Label{}, labels...), Label{Name: "le", Value: le})
		f.lines = append(f.lines, renderSample(name+"_bucket", ls, strconv.FormatUint(cum, 10)))
	}
	cum += v.Buckets[NumFiniteBuckets]
	ls := append(append([]Label{}, labels...), Label{Name: "le", Value: "+Inf"})
	f.lines = append(f.lines, renderSample(name+"_bucket", ls, strconv.FormatUint(cum, 10)))
	f.lines = append(f.lines, renderSample(name+"_sum", labels, strconv.FormatFloat(float64(v.SumNanos)/1e9, 'g', -1, 64)))
	// _count reports the bucket total: under concurrent writes the atomic
	// count can momentarily trail the buckets, and exposition-format
	// linters require _count == the +Inf bucket.
	f.lines = append(f.lines, renderSample(name+"_count", labels, strconv.FormatUint(cum, 10)))
}

func (w *Writer) flush(out io.Writer) error {
	names := make([]string, len(w.order))
	copy(names, w.order)
	sort.Strings(names)
	for _, name := range names {
		f := w.fams[name]
		help := strings.ReplaceAll(strings.ReplaceAll(f.help, `\`, `\\`), "\n", `\n`)
		if _, err := fmt.Fprintf(out, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, f.typ); err != nil {
			return err
		}
		for _, line := range f.lines {
			if _, err := io.WriteString(out, line+"\n"); err != nil {
				return err
			}
		}
	}
	return nil
}
