package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketIndexBoundaries(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{0, 0},          // 0ns lands in the first bucket
		{1, 0},          // le=1ns exactly
		{2, 1},          // le=2ns exactly on boundary
		{3, 2},          // just past a boundary rounds up
		{1024, 10},      // exactly 2^10
		{1025, 11},      // one past 2^10
		{1 << 39, 39},   // last finite bound, inclusive
		{1<<39 + 1, 40}, // overflow
		{1 << 62, 40},   // deep overflow
	}
	for _, c := range cases {
		if got := bucketIndex(c.ns); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	var h Histogram
	h.ObserveNanos(0)
	h.ObserveNanos(1024) // exactly on the 2^10 boundary
	h.Observe(-time.Second)
	v := h.View()
	if v.Count != 3 {
		t.Fatalf("count = %d, want 3", v.Count)
	}
	if v.Buckets[0] != 2 || v.Buckets[10] != 1 {
		t.Fatalf("buckets: %v", v.Buckets[:12])
	}
	if v.SumNanos != 1024 {
		t.Fatalf("sum = %d, want 1024", v.SumNanos)
	}
	// p=1 must land in the highest occupied bucket (512, 1024].
	q := v.Quantile(1)
	if q <= 512 || q > 1024 {
		t.Fatalf("Quantile(1) = %v, want in (512, 1024]", q)
	}
	if got := v.Quantile(0); got != 0 {
		t.Fatalf("Quantile(0) = %v, want 0", got)
	}
}

func TestQuantileEmptyAndOverflow(t *testing.T) {
	var empty HistView
	if q := empty.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
	var h Histogram
	h.ObserveNanos(1<<39 + 5) // overflow bucket
	v := h.View()
	if v.Buckets[NumFiniteBuckets] != 1 {
		t.Fatalf("overflow bucket = %d", v.Buckets[NumFiniteBuckets])
	}
	// Quantiles saturate at the largest finite bound rather than inventing
	// a value inside +Inf.
	want := float64(BucketBoundNanos(NumFiniteBuckets - 1))
	if q := v.Quantile(0.99); q != want {
		t.Fatalf("overflow quantile = %v, want %v", q, want)
	}
	if m := v.MeanNanos(); m != float64(1<<39+5) {
		t.Fatalf("mean = %v", m)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.ObserveNanos(1000) // all in bucket (512, 1024]
	}
	v := h.View()
	q50, q99 := v.Quantile(0.50), v.Quantile(0.99)
	if q50 < 512 || q50 > 1024 || q99 < 512 || q99 > 1024 {
		t.Fatalf("quantiles escaped the occupied bucket: p50=%v p99=%v", q50, q99)
	}
	if q99 < q50 {
		t.Fatalf("p99 %v < p50 %v", q99, q50)
	}
}

func TestObserveBatch(t *testing.T) {
	var h Histogram
	h.ObserveBatch(10, 10*time.Microsecond) // 1µs each
	h.ObserveBatch(0, time.Second)          // no-op
	h.ObserveBatch(-3, time.Second)         // no-op
	v := h.View()
	if v.Count != 10 {
		t.Fatalf("count = %d, want 10", v.Count)
	}
	if v.SumNanos != 10000 {
		t.Fatalf("sum = %d, want 10000", v.SumNanos)
	}
	if got := bucketIndex(1000); v.Buckets[got] != 10 {
		t.Fatalf("per-item bucket %d = %d, want 10", got, v.Buckets[got])
	}
}

// TestMergeAssociativity checks (a+b)+c == a+(b+c) == c+(b+a) across
// buckets, count, and sum.
func TestMergeAssociativity(t *testing.T) {
	mk := func(vals ...int64) HistView {
		var h Histogram
		for _, v := range vals {
			h.ObserveNanos(v)
		}
		return h.View()
	}
	a := mk(1, 5, 1<<20)
	b := mk(0, 1<<39+1, 700)
	c := mk(42, 42, 42, 9999999)

	ab := a
	ab.Merge(b)
	abc1 := ab
	abc1.Merge(c)

	bc := b
	bc.Merge(c)
	abc2 := a
	abc2.Merge(bc)

	ba := b
	ba.Merge(a)
	abc3 := c
	abc3.Merge(ba)

	for _, o := range []HistView{abc2, abc3} {
		if o != abc1 {
			t.Fatalf("merge not associative/commutative:\n%+v\n%+v", abc1, o)
		}
	}
	if abc1.Count != 10 {
		t.Fatalf("merged count = %d, want 10", abc1.Count)
	}
}

// TestConcurrentObserveDeterministic hammers one histogram from many
// goroutines and checks the final totals are exact — lock-free must not
// mean lossy. Run under -race this also proves the atomics are clean.
func TestConcurrentObserveDeterministic(t *testing.T) {
	const workers, perWorker = 8, 5000
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.ObserveNanos(seed) // every op in one known bucket per worker
			}
		}(int64(1) << uint(w))
	}
	// Concurrent readers: every snapshot must satisfy sum >= count (all
	// observations are >= 1ns) — the write-ordering guarantee.
	stop := make(chan struct{})
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			v := h.View()
			if v.SumNanos < int64(v.Count) {
				t.Errorf("torn snapshot: sum %d < count %d", v.SumNanos, v.Count)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	rg.Wait()

	v := h.View()
	if v.Count != workers*perWorker {
		t.Fatalf("count = %d, want %d", v.Count, workers*perWorker)
	}
	for w := 0; w < workers; w++ {
		b := bucketIndex(int64(1) << uint(w))
		if v.Buckets[b] != perWorker {
			t.Fatalf("bucket %d = %d, want %d", b, v.Buckets[b], perWorker)
		}
	}
}

func TestRegistryExposeAndLint(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops served", L("op", "point"))
	c.Add(7)
	r.Counter("test_ops_total", "ops served", L("op", "range")).Inc()
	g := r.Gauge("test_queue_depth", "pending items")
	g.Set(3)
	g.Add(-1)
	h := r.Histogram("test_latency_seconds", "latency", L("op", "point"))
	h.Observe(100 * time.Microsecond)
	h.Observe(2 * time.Millisecond)
	r.Collect(func(w *Writer) {
		w.Gauge("test_dynamic", "scrape-time value", 1.5)
		w.Counter("test_ops_total", "ops served", 9, L("op", "batch"))
		var v HistView
		v.Buckets[5] = 2
		v.Count = 2
		v.SumNanos = 60
		w.Histogram("test_latency_seconds", "latency", v, L("op", "merged"))
	})

	var b strings.Builder
	if err := r.Expose(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	fams, err := Lint(out)
	if err != nil {
		t.Fatalf("lint rejected own output:\n%s\nerr: %v", out, err)
	}
	if err := RequireFamilies(fams, "test_ops_total", "test_queue_depth", "test_latency_seconds", "test_dynamic"); err != nil {
		t.Fatal(err)
	}
	if got := len(fams["test_ops_total"].Samples); got != 3 {
		t.Fatalf("test_ops_total samples = %d, want 3", got)
	}
	// The two histogram label sets both carry full bucket series.
	if got := len(fams["test_latency_seconds"].Samples); got != 2*(NumBuckets+2) {
		t.Fatalf("histogram samples = %d, want %d", got, 2*(NumBuckets+2))
	}
	// Same (name, labels) re-registration returns the same instrument.
	if c2 := r.Counter("test_ops_total", "ops served", L("op", "point")); c2 != c {
		t.Fatal("re-registration returned a new counter")
	}
}

func TestRegistryHandlerAndTypeConflict(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on type conflict")
		}
	}()
	r.Gauge("x_total", "x as gauge")
}

func TestLintRejectsBroken(t *testing.T) {
	bad := []string{
		// sample without TYPE
		"foo 1\n",
		// non-cumulative buckets
		"# HELP h h\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		// missing +Inf
		"# HELP h h\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n",
		// count mismatch
		"# HELP h h\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 4\n",
		// duplicate sample
		"# HELP g g\n# TYPE g gauge\ng{a=\"1\"} 1\ng{a=\"1\"} 2\n",
		// unparsable value
		"# HELP g g\n# TYPE g gauge\ng one\n",
		// bad label syntax
		"# HELP g g\n# TYPE g gauge\ng{a=1} 1\n",
	}
	for i, text := range bad {
		if _, err := Lint(text); err == nil {
			t.Errorf("case %d: lint accepted broken exposition:\n%s", i, text)
		}
	}
}

func TestLintAcceptsLabelEscapes(t *testing.T) {
	text := "# HELP g g\n# TYPE g gauge\ng{path=\"a\\\\b\\\"c\\nd\"} 1\n"
	fams, err := Lint(text)
	if err != nil {
		t.Fatal(err)
	}
	got := fams["g"].Samples[0].Labels["path"]
	if got != "a\\b\"c\nd" {
		t.Fatalf("unescaped label = %q", got)
	}
}

func TestQuantileMicrosFinite(t *testing.T) {
	var v HistView
	if q := v.QuantileMicros(0.5); q != 0 || math.IsNaN(q) {
		t.Fatalf("empty QuantileMicros = %v", q)
	}
}
