package obs

import (
	"net/http"
	"net/http/pprof"
)

// DebugHandler returns the net/http/pprof surface on a private mux, so
// daemons can serve profiling on a separate -debug-addr listener without
// registering anything on http.DefaultServeMux (and without exposing
// pprof on the public API port).
func DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug serves DebugHandler on addr in a goroutine (no-op when addr
// is empty). Errors are reported through logf; the debug listener is
// best-effort and never takes the daemon down.
func ServeDebug(addr string, logf func(format string, args ...any)) {
	if addr == "" {
		return
	}
	go func() {
		logf("debug server (pprof) on %s", addr)
		if err := http.ListenAndServe(addr, DebugHandler()); err != nil {
			logf("debug server: %v", err)
		}
	}()
}
