// Package obs is the shared observability plane: lock-free counters,
// gauges, and fixed-boundary log₂-bucket latency histograms, plus a
// registry that renders them in the Prometheus text exposition format
// (version 0.0.4). Every daemon (wavehistd, waveworker, waverouter)
// mounts a Registry at GET /metrics; serve's per-op query stats are
// built on Histogram so p50/p99 come from the same buckets a scraper
// would derive them from.
//
// All instruments are safe for concurrent use without locks on the hot
// path: counters and gauges are single atomics, histograms are an array
// of atomic buckets. Reads (View, Value) never block writers.
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram buckets are powers of two in nanoseconds: bucket i counts
// observations with d <= 2^i ns for i in [0, NumFiniteBuckets), and the
// last bucket is the +Inf overflow. 2^39 ns ≈ 9.2 minutes, far beyond
// any RPC or query this system serves, so the overflow bucket is only
// reachable by pathological stalls.
const (
	// NumFiniteBuckets is the number of finite le bounds (2^0 .. 2^39 ns).
	NumFiniteBuckets = 40
	// NumBuckets includes the +Inf overflow bucket.
	NumBuckets = NumFiniteBuckets + 1
)

// BucketBoundNanos returns the inclusive upper bound of finite bucket i
// in nanoseconds. i must be in [0, NumFiniteBuckets).
func BucketBoundNanos(i int) int64 { return int64(1) << uint(i) }

// bucketIndex maps a non-negative duration in nanoseconds to its bucket.
func bucketIndex(ns int64) int {
	if ns <= 1 {
		return 0 // 0ns and 1ns both land in the le=1ns bucket
	}
	i := bits.Len64(uint64(ns - 1)) // smallest i with 2^i >= ns
	if i >= NumFiniteBuckets {
		return NumFiniteBuckets // +Inf
	}
	return i
}

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative n is ignored — counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a lock-free latency histogram with fixed log₂ bucket
// boundaries. The zero value is ready to use.
//
// Write ordering: Observe updates buckets, then sum, then count. View
// loads count, then sum, then buckets. With Go's sequentially consistent
// atomics this guarantees that any snapshot's sum covers at least every
// observation included in its count — a mean computed as sum/count can
// overshoot slightly under concurrent writes but never undershoot, and
// never pairs a count with a sum from fewer observations (the torn-read
// bug the old serve.OpStats had).
type Histogram struct {
	buckets [NumBuckets]atomic.Uint64
	sum     atomic.Int64 // total observed nanoseconds
	count   atomic.Uint64
}

// Observe records one duration. Negative durations are clamped to 0.
func (h *Histogram) Observe(d time.Duration) { h.ObserveNanos(int64(d)) }

// ObserveNanos records one duration given in nanoseconds.
func (h *Histogram) ObserveNanos(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketIndex(ns)].Add(1)
	h.sum.Add(ns)
	h.count.Add(1)
}

// ObserveBatch records n observations that together took total: each is
// credited as total/n so batch endpoints can feed per-item latencies
// without timing every item. No-op when n <= 0; total < 0 is clamped.
func (h *Histogram) ObserveBatch(n int64, total time.Duration) {
	if n <= 0 {
		return
	}
	ns := int64(total)
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketIndex(ns/n)].Add(uint64(n))
	h.sum.Add(ns)
	h.count.Add(uint64(n))
}

// View returns a consistent-enough snapshot (see type comment for the
// ordering guarantee).
func (h *Histogram) View() HistView {
	var v HistView
	v.Count = h.count.Load()
	v.SumNanos = h.sum.Load()
	for i := range h.buckets {
		v.Buckets[i] = h.buckets[i].Load()
	}
	return v
}

// HistView is a point-in-time copy of a Histogram, mergeable across
// instances (e.g. per-registry-entry stats folded into one per-op-class
// family at /metrics time).
type HistView struct {
	Buckets  [NumBuckets]uint64
	Count    uint64
	SumNanos int64
}

// Merge adds o into v.
func (v *HistView) Merge(o HistView) {
	for i := range v.Buckets {
		v.Buckets[i] += o.Buckets[i]
	}
	v.Count += o.Count
	v.SumNanos += o.SumNanos
}

// MeanNanos returns the mean observation, or 0 when empty.
func (v *HistView) MeanNanos() float64 {
	if v.Count == 0 {
		return 0
	}
	return float64(v.SumNanos) / float64(v.Count)
}

// total returns the bucket total, which can briefly exceed Count under
// concurrent writes (buckets are updated before count).
func (v *HistView) total() uint64 {
	var t uint64
	for i := range v.Buckets {
		t += v.Buckets[i]
	}
	return t
}

// Quantile returns an estimate of the p-quantile (p in [0,1]) in
// nanoseconds, linearly interpolated within the winning bucket. Returns
// 0 for an empty view. Observations in the overflow bucket report the
// largest finite bound — quantiles saturate rather than invent values.
func (v *HistView) Quantile(p float64) float64 {
	total := v.total()
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(total)
	var cum uint64
	for i := 0; i < NumBuckets; i++ {
		n := v.Buckets[i]
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			if i >= NumFiniteBuckets {
				return float64(BucketBoundNanos(NumFiniteBuckets - 1))
			}
			hi := float64(BucketBoundNanos(i))
			lo := 0.0
			if i > 0 {
				lo = float64(BucketBoundNanos(i - 1))
			}
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return float64(BucketBoundNanos(NumFiniteBuckets - 1))
}

// QuantileMicros is Quantile scaled to microseconds — the unit the JSON
// surfaces report.
func (v *HistView) QuantileMicros(p float64) float64 {
	q := v.Quantile(p) / 1e3
	if math.IsNaN(q) || math.IsInf(q, 0) {
		return 0
	}
	return q
}
