package obs

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// A tiny exposition-format parser + linter. CI smoke tests curl
// GET /metrics on each daemon and run the payload through Lint so a
// renamed, dropped, or structurally broken metric fails the build
// without needing a real Prometheus binary in the container.

// Sample is one parsed exposition line.
type Sample struct {
	Name   string            // full sample name, e.g. "foo_bucket"
	Labels map[string]string // nil when unlabeled
	Value  float64
}

// Family is one declared metric family and its samples.
type Family struct {
	Name    string
	Type    string
	Help    string
	Samples []Sample
}

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// ParseExposition parses Prometheus text format 0.0.4 into families
// keyed by family name. Samples named <fam>_bucket/_sum/_count attach to
// a histogram family <fam>.
func ParseExposition(text string) (map[string]*Family, error) {
	fams := map[string]*Family{}
	for ln, raw := range strings.Split(text, "\n") {
		line := strings.TrimRight(raw, "\r")
		if line == "" {
			continue
		}
		lineNo := ln + 1
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 {
				return nil, fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			switch fields[1] {
			case "HELP":
				f := getFam(fams, fields[2])
				if len(fields) == 4 {
					f.Help = fields[3]
				}
			case "TYPE":
				if len(fields) != 4 {
					return nil, fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
				}
				typ := fields[3]
				if typ != TypeCounter && typ != TypeGauge && typ != TypeHistogram && typ != "summary" && typ != "untyped" {
					return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
				}
				f := getFam(fams, fields[2])
				if f.Type != "" && f.Type != typ {
					return nil, fmt.Errorf("line %d: family %s re-typed %s -> %s", lineNo, f.Name, f.Type, typ)
				}
				f.Type = typ
			default:
				// other comments are legal and ignored
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		fam := familyOf(fams, s.Name)
		if fam == nil {
			return nil, fmt.Errorf("line %d: sample %s has no preceding # TYPE declaration", lineNo, s.Name)
		}
		fam.Samples = append(fam.Samples, s)
	}
	return fams, nil
}

func getFam(fams map[string]*Family, name string) *Family {
	f, ok := fams[name]
	if !ok {
		f = &Family{Name: name}
		fams[name] = f
	}
	return f
}

// familyOf resolves a sample name to its declared family, honoring the
// histogram _bucket/_sum/_count suffixes.
func familyOf(fams map[string]*Family, sample string) *Family {
	if f, ok := fams[sample]; ok && f.Type != "" {
		return f
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(sample, suf)
		if base == sample {
			continue
		}
		if f, ok := fams[base]; ok && f.Type == TypeHistogram {
			return f
		}
	}
	return nil
}

func parseSample(line string) (Sample, error) {
	s := Sample{}
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = line[:i]
	if !nameRe.MatchString(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		end, labels, err := parseLabels(rest)
		if err != nil {
			return s, fmt.Errorf("sample %s: %v", s.Name, err)
		}
		s.Labels = labels
		rest = rest[end:]
	}
	rest = strings.TrimSpace(rest)
	// drop an optional timestamp
	if j := strings.IndexByte(rest, ' '); j >= 0 {
		rest = rest[:j]
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("sample %s: bad value %q", s.Name, rest)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses a {k="v",...} block starting at in[0] == '{' and
// returns the index one past the closing brace.
func parseLabels(in string) (int, map[string]string, error) {
	labels := map[string]string{}
	i := 1
	for {
		for i < len(in) && (in[i] == ',' || in[i] == ' ') {
			i++
		}
		if i < len(in) && in[i] == '}' {
			return i + 1, labels, nil
		}
		eq := strings.IndexByte(in[i:], '=')
		if eq < 0 {
			return 0, nil, fmt.Errorf("unterminated label block")
		}
		name := in[i : i+eq]
		if !labelRe.MatchString(name) {
			return 0, nil, fmt.Errorf("invalid label name %q", name)
		}
		i += eq + 1
		if i >= len(in) || in[i] != '"' {
			return 0, nil, fmt.Errorf("label %s: value not quoted", name)
		}
		i++
		var b strings.Builder
		for {
			if i >= len(in) {
				return 0, nil, fmt.Errorf("label %s: unterminated value", name)
			}
			c := in[i]
			if c == '\\' {
				if i+1 >= len(in) {
					return 0, nil, fmt.Errorf("label %s: dangling escape", name)
				}
				switch in[i+1] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					return 0, nil, fmt.Errorf("label %s: bad escape \\%c", name, in[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			b.WriteByte(c)
			i++
		}
		if _, dup := labels[name]; dup {
			return 0, nil, fmt.Errorf("duplicate label %q", name)
		}
		labels[name] = b.String()
	}
}

// Lint parses text and applies structural checks: every sample belongs
// to a declared family, no duplicate (name, labels) samples, and every
// histogram has cumulative non-decreasing buckets ending in le="+Inf"
// whose value matches _count, plus a _sum. Returns the parsed families
// on success so callers can additionally assert required names.
func Lint(text string) (map[string]*Family, error) {
	fams, err := ParseExposition(text)
	if err != nil {
		return nil, err
	}
	for _, f := range fams {
		if f.Type == "" {
			if len(f.Samples) > 0 {
				return nil, fmt.Errorf("family %s: samples without # TYPE", f.Name)
			}
			continue
		}
		seen := map[string]bool{}
		for _, s := range f.Samples {
			key := sampleKey(s)
			if seen[key] {
				return nil, fmt.Errorf("family %s: duplicate sample %s", f.Name, key)
			}
			seen[key] = true
		}
		if f.Type == TypeHistogram {
			if err := lintHistogram(f); err != nil {
				return nil, err
			}
		}
	}
	return fams, nil
}

func sampleKey(s Sample) string {
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	for _, k := range keys {
		b.WriteString("|")
		b.WriteString(k)
		b.WriteString("=")
		b.WriteString(s.Labels[k])
	}
	return b.String()
}

// lintHistogram groups bucket/sum/count samples by their non-le label
// set and checks each series' shape.
func lintHistogram(f *Family) error {
	type series struct {
		bounds  []float64
		cums    []float64
		sum     bool
		count   float64
		hasCnt  bool
		infSeen bool
		inf     float64
	}
	groups := map[string]*series{}
	group := func(s Sample) *series {
		cp := Sample{Name: f.Name, Labels: map[string]string{}}
		for k, v := range s.Labels {
			if k != "le" {
				cp.Labels[k] = v
			}
		}
		key := sampleKey(cp)
		g, ok := groups[key]
		if !ok {
			g = &series{}
			groups[key] = g
		}
		return g
	}
	for _, s := range f.Samples {
		switch s.Name {
		case f.Name + "_bucket":
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("family %s: _bucket sample missing le label", f.Name)
			}
			g := group(s)
			if le == "+Inf" {
				g.infSeen = true
				g.inf = s.Value
				g.bounds = append(g.bounds, math.Inf(1))
			} else {
				b, err := strconv.ParseFloat(le, 64)
				if err != nil {
					return fmt.Errorf("family %s: bad le %q", f.Name, le)
				}
				g.bounds = append(g.bounds, b)
			}
			g.cums = append(g.cums, s.Value)
		case f.Name + "_sum":
			group(s).sum = true
		case f.Name + "_count":
			g := group(s)
			g.hasCnt = true
			g.count = s.Value
		default:
			return fmt.Errorf("family %s: unexpected histogram sample %s", f.Name, s.Name)
		}
	}
	for key, g := range groups {
		if !g.infSeen {
			return fmt.Errorf("family %s (%s): no le=\"+Inf\" bucket", f.Name, key)
		}
		if !g.sum {
			return fmt.Errorf("family %s (%s): missing _sum", f.Name, key)
		}
		if !g.hasCnt {
			return fmt.Errorf("family %s (%s): missing _count", f.Name, key)
		}
		if g.count != g.inf {
			return fmt.Errorf("family %s (%s): _count %v != +Inf bucket %v", f.Name, key, g.count, g.inf)
		}
		for i := 1; i < len(g.bounds); i++ {
			if g.bounds[i] <= g.bounds[i-1] {
				return fmt.Errorf("family %s (%s): le bounds not increasing", f.Name, key)
			}
			if g.cums[i] < g.cums[i-1] {
				return fmt.Errorf("family %s (%s): bucket counts not cumulative", f.Name, key)
			}
		}
	}
	return nil
}

// RequireFamilies asserts each named family exists with at least one
// sample; returns an error naming the first miss. A smoke-test helper.
func RequireFamilies(fams map[string]*Family, names ...string) error {
	for _, n := range names {
		f, ok := fams[n]
		if !ok || f.Type == "" {
			return fmt.Errorf("required metric family %s missing", n)
		}
		if len(f.Samples) == 0 {
			return fmt.Errorf("required metric family %s has no samples", n)
		}
	}
	return nil
}
