package obs

import (
	"fmt"
	"io"
	"sort"
)

// Re-rendering parsed expositions: the fan-in half of the scrape plane.
// A router that aggregates its shards' /metrics pages parses each one
// (ParseExposition), injects a per-shard label (MergeFamilies), and
// serializes the union back to valid text format (RenderFamilies) — so
// one scrape of the router covers the whole fleet without a Prometheus
// federation layer.

// MergeFamilies folds src's families into dst, adding extra labels to
// every sample (e.g. shard="s0"). A family already in dst keeps its
// Help/Type; src samples are appended in order. Samples whose label set
// already contains one of the extra names are skipped rather than
// silently double-labeled.
func MergeFamilies(dst, src map[string]*Family, extra ...Label) {
	names := make([]string, 0, len(src))
	for n := range src {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		sf := src[n]
		if sf.Type == "" && len(sf.Samples) == 0 {
			continue
		}
		df, ok := dst[n]
		if !ok {
			df = &Family{Name: n, Type: sf.Type, Help: sf.Help}
			dst[n] = df
		}
	samples:
		for _, s := range sf.Samples {
			labels := make(map[string]string, len(s.Labels)+len(extra))
			for k, v := range s.Labels {
				labels[k] = v
			}
			for _, l := range extra {
				if _, clash := labels[l.Name]; clash {
					continue samples
				}
				labels[l.Name] = l.Value
			}
			df.Samples = append(df.Samples, Sample{Name: s.Name, Labels: labels, Value: s.Value})
		}
	}
}

// RenderFamilies writes fams back out in text format 0.0.4: families
// sorted by name with one # HELP / # TYPE pair each, samples in stored
// order with deterministically sorted label sets.
func RenderFamilies(w io.Writer, fams map[string]*Family) error {
	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := fams[n]
		if f.Type == "" {
			continue
		}
		help := f.Help
		if help == "" {
			help = n
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", n, help, n, f.Type); err != nil {
			return err
		}
		for _, s := range f.Samples {
			keys := make([]string, 0, len(s.Labels))
			for k := range s.Labels {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			labels := make([]Label, len(keys))
			for i, k := range keys {
				labels[i] = Label{Name: k, Value: s.Labels[k]}
			}
			if _, err := io.WriteString(w, renderSample(s.Name, labels, formatValue(s.Value))+"\n"); err != nil {
				return err
			}
		}
	}
	return nil
}
