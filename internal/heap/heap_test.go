package heap

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTopKBasic(t *testing.T) {
	h := NewTopK(3)
	for _, s := range []float64{5, 1, 9, 3, 7, 2} {
		h.Push(Item{ID: int64(s), Score: s})
	}
	got := h.Sorted()
	want := []float64{9, 7, 5}
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	for i, it := range got {
		if it.Score != want[i] {
			t.Errorf("got[%d].Score = %v, want %v", i, it.Score, want[i])
		}
	}
}

func TestTopKFewerThanK(t *testing.T) {
	h := NewTopK(10)
	h.Push(Item{ID: 1, Score: 2})
	h.Push(Item{ID: 2, Score: 1})
	if h.Len() != 2 {
		t.Fatalf("Len = %d, want 2", h.Len())
	}
	if h.Full() {
		t.Error("Full() = true, want false")
	}
	got := h.Sorted()
	if got[0].Score != 2 || got[1].Score != 1 {
		t.Errorf("Sorted = %v", got)
	}
}

func TestTopKZero(t *testing.T) {
	h := NewTopK(0)
	h.Push(Item{ID: 1, Score: 100})
	if h.Len() != 0 {
		t.Fatalf("Len = %d, want 0", h.Len())
	}
	if _, ok := h.Min(); ok {
		t.Error("Min ok = true, want false")
	}
}

func TestTopKMinIsThreshold(t *testing.T) {
	h := NewTopK(2)
	h.Push(Item{ID: 1, Score: 10})
	h.Push(Item{ID: 2, Score: 20})
	h.Push(Item{ID: 3, Score: 30})
	m, ok := h.Min()
	if !ok || m.Score != 20 {
		t.Fatalf("Min = %v ok=%v, want 20", m, ok)
	}
}

func TestTopKDuplicateScores(t *testing.T) {
	h := NewTopK(3)
	for i := int64(0); i < 6; i++ {
		h.Push(Item{ID: i, Score: 5})
	}
	if h.Len() != 3 {
		t.Fatalf("Len = %d, want 3", h.Len())
	}
	for _, it := range h.Items() {
		if it.Score != 5 {
			t.Errorf("Score = %v, want 5", it.Score)
		}
	}
}

func TestBottomKBasic(t *testing.T) {
	h := NewBottomK(3)
	for _, s := range []float64{5, 1, 9, 3, 7, 2} {
		h.Push(Item{ID: int64(s), Score: s})
	}
	got := h.Sorted()
	want := []float64{1, 2, 3}
	for i, it := range got {
		if it.Score != want[i] {
			t.Errorf("got[%d].Score = %v, want %v", i, it.Score, want[i])
		}
	}
}

func TestBottomKNegativeScores(t *testing.T) {
	h := NewBottomK(2)
	for _, s := range []float64{-5, 3, -9, 0} {
		h.Push(Item{ID: int64(s), Score: s})
	}
	got := h.Sorted()
	if got[0].Score != -9 || got[1].Score != -5 {
		t.Errorf("Sorted = %v, want [-9 -5]", got)
	}
	m, ok := h.Max()
	if !ok || m.Score != -5 {
		t.Errorf("Max = %v ok=%v, want -5", m, ok)
	}
}

// Property: TopK(k) retains exactly the k largest values of any input.
func TestTopKMatchesSortQuick(t *testing.T) {
	f := func(scores []float64, kRaw uint8) bool {
		k := int(kRaw%16) + 1
		h := NewTopK(k)
		for i, s := range scores {
			h.Push(Item{ID: int64(i), Score: s})
		}
		ref := append([]float64(nil), scores...)
		sort.Sort(sort.Reverse(sort.Float64Slice(ref)))
		if len(ref) > k {
			ref = ref[:k]
		}
		got := h.Sorted()
		if len(got) != len(ref) {
			return false
		}
		for i := range got {
			if got[i].Score != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: BottomK(k) retains exactly the k smallest values of any input.
func TestBottomKMatchesSortQuick(t *testing.T) {
	f := func(scores []float64, kRaw uint8) bool {
		k := int(kRaw%16) + 1
		h := NewBottomK(k)
		for i, s := range scores {
			h.Push(Item{ID: int64(i), Score: s})
		}
		ref := append([]float64(nil), scores...)
		sort.Float64s(ref)
		if len(ref) > k {
			ref = ref[:k]
		}
		got := h.Sorted()
		if len(got) != len(ref) {
			return false
		}
		for i := range got {
			if got[i].Score != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSortedDeterministicTieBreak(t *testing.T) {
	h := NewTopK(4)
	h.Push(Item{ID: 9, Score: 1})
	h.Push(Item{ID: 3, Score: 1})
	h.Push(Item{ID: 7, Score: 1})
	got := h.Sorted()
	if got[0].ID != 3 || got[1].ID != 7 || got[2].ID != 9 {
		t.Errorf("tie break order = %v, want IDs ascending", got)
	}
}

func BenchmarkTopKPush(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	scores := make([]float64, 4096)
	for i := range scores {
		scores[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := NewTopK(30)
		for j, s := range scores {
			h.Push(Item{ID: int64(j), Score: s})
		}
	}
}
