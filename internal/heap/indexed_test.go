package heap

import (
	"math/rand"
	"sort"
	"testing"
)

func indexedLess(a, b Item) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.ID > b.ID
}

// TestIndexedAgainstReference drives an Indexed heap with a random
// push/fix/remove/pop workload and checks the root and membership against
// a plain sorted reference after every operation.
func TestIndexedAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h := NewIndexed(indexedLess)
	ref := map[int64]float64{}
	check := func(op string) {
		t.Helper()
		if h.Len() != len(ref) {
			t.Fatalf("%s: Len() = %d, reference %d", op, h.Len(), len(ref))
		}
		if len(ref) == 0 {
			if _, ok := h.Root(); ok {
				t.Fatalf("%s: Root() on empty heap", op)
			}
			return
		}
		items := make([]Item, 0, len(ref))
		for id, sc := range ref {
			items = append(items, Item{ID: id, Score: sc})
		}
		sort.Slice(items, func(i, j int) bool { return indexedLess(items[i], items[j]) })
		root, _ := h.Root()
		if root != items[0] {
			t.Fatalf("%s: Root() = %+v, reference %+v", op, root, items[0])
		}
	}
	for step := 0; step < 20000; step++ {
		id := rng.Int63n(64)
		switch rng.Intn(4) {
		case 0: // push or fix
			sc := float64(rng.Intn(16))
			if h.Has(id) {
				h.Fix(id, sc)
				ref[id] = sc
			} else {
				h.Push(Item{ID: id, Score: sc})
				ref[id] = sc
			}
			check("push/fix")
		case 1:
			if it, ok := h.Remove(id); ok {
				if ref[id] != it.Score {
					t.Fatalf("Remove(%d) returned score %v, reference %v", id, it.Score, ref[id])
				}
				delete(ref, id)
			}
			check("remove")
		case 2:
			if it, ok := h.PopRoot(); ok {
				delete(ref, it.ID)
			}
			check("pop")
		default:
			if sc, ok := h.Score(id); ok && sc != ref[id] {
				t.Fatalf("Score(%d) = %v, reference %v", id, sc, ref[id])
			}
		}
	}
	if h.Moves() == 0 {
		t.Error("Moves() telemetry never advanced")
	}
}

func TestIndexedDuplicatePushPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate push")
		}
	}()
	h := NewIndexed(indexedLess)
	h.Push(Item{ID: 1, Score: 1})
	h.Push(Item{ID: 1, Score: 2})
}
