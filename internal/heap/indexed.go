package heap

// Indexed is a binary heap over scored items that additionally tracks each
// item's position by ID, so membership queries, score adjustments and
// removals of arbitrary items run in O(log n) — the repair operations an
// incrementally maintained top-k partition needs (the retained set as a
// weakest-at-root heap, the shadow set as a strongest-at-root heap, with
// boundary swaps when an update reorders them).
//
// The ordering is supplied as a less function; less(a, b) reports whether
// a sorts toward the root. Callers must use a strict total order (break
// score ties on ID) if they need deterministic selection.
type Indexed struct {
	less  func(a, b Item) bool
	data  []Item
	pos   map[int64]int
	moves int64
}

// NewIndexed returns an empty indexed heap with the given root-ward order.
func NewIndexed(less func(a, b Item) bool) *Indexed {
	return &Indexed{less: less, pos: make(map[int64]int)}
}

// Len returns the number of items.
func (h *Indexed) Len() int { return len(h.data) }

// Has reports whether an item with the given ID is present.
func (h *Indexed) Has(id int64) bool {
	_, ok := h.pos[id]
	return ok
}

// Score returns the item's current score.
func (h *Indexed) Score(id int64) (float64, bool) {
	i, ok := h.pos[id]
	if !ok {
		return 0, false
	}
	return h.data[i].Score, true
}

// Root returns the root item (the one that sorts first) without removing it.
func (h *Indexed) Root() (Item, bool) {
	if len(h.data) == 0 {
		return Item{}, false
	}
	return h.data[0], true
}

// Push inserts an item. The ID must not already be present.
func (h *Indexed) Push(it Item) {
	if _, ok := h.pos[it.ID]; ok {
		panic("heap: duplicate ID pushed into Indexed")
	}
	h.data = append(h.data, it)
	h.pos[it.ID] = len(h.data) - 1
	h.moves++
	h.siftUp(len(h.data) - 1)
}

// PopRoot removes and returns the root item.
func (h *Indexed) PopRoot() (Item, bool) {
	if len(h.data) == 0 {
		return Item{}, false
	}
	return h.removeAt(0), true
}

// Fix updates the score of an existing item and restores heap order.
// It reports whether the ID was present.
func (h *Indexed) Fix(id int64, score float64) bool {
	i, ok := h.pos[id]
	if !ok {
		return false
	}
	h.data[i].Score = score
	h.moves++
	if !h.siftDown(i) {
		h.siftUp(i)
	}
	return true
}

// Remove deletes the item with the given ID.
func (h *Indexed) Remove(id int64) (Item, bool) {
	i, ok := h.pos[id]
	if !ok {
		return Item{}, false
	}
	return h.removeAt(i), true
}

// Items returns a copy of the retained items in unspecified order.
func (h *Indexed) Items() []Item {
	out := make([]Item, len(h.data))
	copy(out, h.data)
	return out
}

// Moves returns the cumulative number of item moves performed by heap
// repairs — the telemetry incremental-maintenance tests bound to prove
// per-update work stays O(log u · log n) rather than O(n).
func (h *Indexed) Moves() int64 { return h.moves }

func (h *Indexed) removeAt(i int) Item {
	it := h.data[i]
	last := len(h.data) - 1
	h.moves++
	if i != last {
		h.data[i] = h.data[last]
		h.pos[h.data[i].ID] = i
	}
	h.data = h.data[:last]
	delete(h.pos, it.ID)
	if i < last {
		if !h.siftDown(i) {
			h.siftUp(i)
		}
	}
	return it
}

func (h *Indexed) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.data[i], h.data[parent]) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

// siftDown restores order below i, reporting whether anything moved.
func (h *Indexed) siftDown(i int) bool {
	moved := false
	n := len(h.data)
	for {
		c := 2*i + 1
		if c >= n {
			return moved
		}
		if r := c + 1; r < n && h.less(h.data[r], h.data[c]) {
			c = r
		}
		if !h.less(h.data[c], h.data[i]) {
			return moved
		}
		h.swap(i, c)
		i = c
		moved = true
	}
}

func (h *Indexed) swap(i, j int) {
	h.data[i], h.data[j] = h.data[j], h.data[i]
	h.pos[h.data[i].ID] = i
	h.pos[h.data[j].ID] = j
	h.moves++
}
