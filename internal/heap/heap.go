// Package heap provides small bounded heaps used throughout the library to
// maintain top-k / bottom-k sets of scored items in one pass.
//
// The paper's mappers keep "two priority queues to store the top-k and
// bottom-k wavelet coefficients" (Appendix A); the reducers select the k
// coefficients of largest magnitude with a size-k priority queue (Section
// 2.1). This package implements exactly those bounded selections without
// pulling in container/heap interface boilerplate at every call site.
package heap

// Item is a scored item with an integer identity. Score semantics (signed
// value, magnitude, count) are chosen by the caller.
type Item struct {
	ID    int64
	Score float64
}

// TopK maintains the k items with the largest Score seen so far, under
// the strict total order "larger Score first, ties by ascending ID" — so
// the retained set (not just its sorted presentation) is deterministic
// even when equal scores straddle the admission boundary. Incremental
// maintainers that repair a top-k partition in place rely on agreeing
// with this selection exactly.
// The zero value is not usable; construct with NewTopK.
type TopK struct {
	k    int
	data []Item // min-heap: data[0] is the weakest retained item
}

// NewTopK returns a TopK retaining the k largest-scored items.
// k must be >= 0; k == 0 retains nothing.
func NewTopK(k int) *TopK {
	return &TopK{k: k, data: make([]Item, 0, max(k, 0))}
}

// K returns the bound k.
func (h *TopK) K() int { return h.k }

// Len returns the number of retained items (<= k).
func (h *TopK) Len() int { return len(h.data) }

// Push offers an item. It is retained iff it is among the k largest seen.
func (h *TopK) Push(it Item) {
	if h.k == 0 {
		return
	}
	if len(h.data) < h.k {
		h.data = append(h.data, it)
		h.siftUp(len(h.data) - 1)
		return
	}
	if !weakerItem(h.data[0], it) {
		return
	}
	h.data[0] = it
	h.siftDown(0)
}

// weakerItem reports whether a sorts strictly after b under the total
// order (Score desc, ID asc) — i.e. a loses the retention tie-break.
func weakerItem(a, b Item) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.ID > b.ID
}

// Min returns the smallest retained score and whether the heap is non-empty.
// When Len() == k this is the admission threshold.
func (h *TopK) Min() (Item, bool) {
	if len(h.data) == 0 {
		return Item{}, false
	}
	return h.data[0], true
}

// Full reports whether k items are retained.
func (h *TopK) Full() bool { return len(h.data) >= h.k && h.k > 0 }

// Items returns the retained items in unspecified order. The returned slice
// is a copy.
func (h *TopK) Items() []Item {
	out := make([]Item, len(h.data))
	copy(out, h.data)
	return out
}

// Sorted returns the retained items sorted by decreasing Score.
func (h *TopK) Sorted() []Item {
	out := h.Items()
	// Simple insertion-friendly selection: heaps are tiny (k <= ~100).
	sortByScoreDesc(out)
	return out
}

func (h *TopK) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !weakerItem(h.data[i], h.data[parent]) {
			return
		}
		h.data[parent], h.data[i] = h.data[i], h.data[parent]
		i = parent
	}
}

func (h *TopK) siftDown(i int) {
	n := len(h.data)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && weakerItem(h.data[l], h.data[small]) {
			small = l
		}
		if r < n && weakerItem(h.data[r], h.data[small]) {
			small = r
		}
		if small == i {
			return
		}
		h.data[i], h.data[small] = h.data[small], h.data[i]
		i = small
	}
}

// BottomK maintains the k items with the smallest Score seen so far.
// It is implemented as a TopK over negated scores.
type BottomK struct {
	inner TopK
}

// NewBottomK returns a BottomK retaining the k smallest-scored items.
func NewBottomK(k int) *BottomK {
	return &BottomK{inner: TopK{k: k, data: make([]Item, 0, max(k, 0))}}
}

// K returns the bound k.
func (h *BottomK) K() int { return h.inner.k }

// Len returns the number of retained items.
func (h *BottomK) Len() int { return h.inner.Len() }

// Full reports whether k items are retained.
func (h *BottomK) Full() bool { return h.inner.Full() }

// Push offers an item; retained iff among the k smallest seen.
func (h *BottomK) Push(it Item) {
	h.inner.Push(Item{ID: it.ID, Score: -it.Score})
}

// Max returns the largest retained score (the admission threshold when full).
func (h *BottomK) Max() (Item, bool) {
	it, ok := h.inner.Min()
	if !ok {
		return Item{}, false
	}
	return Item{ID: it.ID, Score: -it.Score}, true
}

// Items returns the retained items (original scores) in unspecified order.
func (h *BottomK) Items() []Item {
	out := h.inner.Items()
	for i := range out {
		out[i].Score = -out[i].Score
	}
	return out
}

// Sorted returns the retained items sorted by increasing Score.
func (h *BottomK) Sorted() []Item {
	out := h.Items()
	sortByScoreDesc(out)
	// reverse: ascending
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// sortByScoreDesc sorts items by decreasing score with ties broken by
// ascending ID so that results are deterministic across runs.
func sortByScoreDesc(items []Item) {
	// Heaps here are small (k on the order of tens); insertion sort keeps
	// this allocation-free and deterministic.
	for i := 1; i < len(items); i++ {
		it := items[i]
		j := i - 1
		for j >= 0 && less(it, items[j]) {
			items[j+1] = items[j]
			j--
		}
		items[j+1] = it
	}
}

func less(a, b Item) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.ID < b.ID
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
