package core

import (
	"context"

	"wavelethist/internal/hdfs"
	"wavelethist/internal/mapred"
	"wavelethist/internal/sketch"
	"wavelethist/internal/wavelet"
)

// SendSketch is the sketch-based approximation (Section 4, "System
// issues"): one mapper per split builds a local GCS of the split's wavelet
// coefficients and emits the sketch's non-zero entries; the reducer merges
// the m sketches (linearity) and recovers the top-k coefficients by the
// GCS hierarchical search. Following the paper's setup we use the
// recommended 20KB·log2(u) sketch space, degree 8 ("GCS-8"), and the two
// optimizations of Section 5: aggregate the local frequency vector first
// so each distinct key updates the sketch once, and ship only non-zero
// entries.
//
// The dominant cost — and the reason Send-Sketch is the slowest method in
// the paper (≈10 hours on 50 GB) — is the per-item update cost: every
// distinct key touches log2(u)+1 coefficients, each updating
// levels×depth sketch cells.
type SendSketch struct{}

// NewSendSketch returns the Send-Sketch algorithm.
func NewSendSketch() *SendSketch { return &SendSketch{} }

// Name implements Algorithm.
func (*SendSketch) Name() string { return "Send-Sketch" }

// sketchBudget returns the per-split sketch bytes: the paper's
// 20KB·log2(u) unless overridden.
func sketchBudget(p Params) int64 {
	if p.SketchBytes > 0 {
		return p.SketchBytes
	}
	return 20 * 1024 * int64(wavelet.Log2(p.U))
}

// sketchSeed must be shared by all splits so local sketches merge.
func sketchSeed(p Params) uint64 { return p.Seed ^ 0x5ce7c4b5ce7c4b13 }

// denseFreqMax gates the mapper's dense frequency accumulator: domains at
// or under it use a flat []float64 (one add per record, naturally sorted
// iteration, no per-record map hashing); larger domains keep the map.
const denseFreqMax = 1 << 20

type sendSketchMapper struct {
	p     Params
	freq  map[int64]float64
	dense []float64 // non-nil iff p.U <= denseFreqMax
}

func (m *sendSketchMapper) Setup(*mapred.TaskContext) error {
	if m.p.U <= denseFreqMax {
		m.dense = make([]float64, m.p.U)
	} else {
		m.freq = make(map[int64]float64)
	}
	return nil
}

func (m *sendSketchMapper) Map(ctx *mapred.TaskContext, rec hdfs.Record, _ *mapred.Emitter) error {
	if err := checkDomain(rec.Key, m.p.U); err != nil {
		return err
	}
	if m.dense != nil {
		m.dense[rec.Key]++
	} else {
		m.freq[rec.Key]++
	}
	return nil
}

func (m *sendSketchMapper) Close(ctx *mapred.TaskContext, out *mapred.Emitter) error {
	g := sketch.NewGCSWithBudget(m.p.U, m.p.SketchDegree, sketchBudget(m.p), sketchSeed(m.p))
	u := m.p.U
	// Aggregate the split's sparse coefficient vector first (the same
	// O(|v_j| log u) streaming transform the exact methods use), then
	// sketch each distinct non-zero coefficient once. The sketch is linear,
	// so this is Section 5's "aggregate before updating" optimization
	// carried from keys to coefficients: per-key root-to-leaf streaming
	// touched levels×depth cells for every (key, level) pair, while the
	// union of the paths has at most min(|v_j|·(log u+1), 2u) distinct
	// nodes — far fewer under skew, where paths share prefixes.
	// Sorted feeding keeps coefficient accumulation order, and therefore
	// the shipped float bits, deterministic.
	var (
		keys   []int64
		counts []float64
		nk     int
	)
	buf := wavelet.GetFreqBuffers()
	defer wavelet.PutFreqBuffers(buf)
	if m.dense != nil {
		for x, c := range m.dense {
			if c != 0 {
				buf.Keys = append(buf.Keys, int64(x))
				buf.Counts = append(buf.Counts, c)
			}
		}
		keys, counts = buf.Keys, buf.Counts
	} else {
		keys, counts = buf.Load(m.freq)
	}
	nk = len(keys)
	coefs := wavelet.SparseTransformSorted(keys, counts, u)
	ctx.AddWork(transformWork(nk, u))
	for _, c := range coefs {
		g.Update(c.Index, c.Value)
	}
	ctx.AddWork(float64(len(coefs) * g.UpdateCost()))
	n := 0
	g.NonZeroEntries(func(idx int64, v float64) {
		out.Emit(mapred.KV{Key: idx, Val: v, Src: int32(ctx.SplitID)})
		n++
	})
	ctx.AddWork(float64(n))
	return nil
}

type sendSketchReducer struct {
	p   Params
	g   *sketch.GCS
	rep *wavelet.Representation
}

func (r *sendSketchReducer) Setup(*mapred.TaskContext) error {
	r.g = sketch.NewGCSWithBudget(r.p.U, r.p.SketchDegree, sketchBudget(r.p), sketchSeed(r.p))
	return nil
}

func (r *sendSketchReducer) Reduce(_ *mapred.TaskContext, key int64, vals []mapred.KV) error {
	for _, kv := range vals {
		r.g.AddEntry(key, kv.Val)
	}
	return nil
}

func (r *sendSketchReducer) representation() *wavelet.Representation { return r.rep }

func (r *sendSketchReducer) Close(ctx *mapred.TaskContext) error {
	top := r.g.TopK(r.p.K, 0)
	// Charge the hierarchical search: beam × levels × group-energy cost.
	ctx.AddWork(float64(r.g.Levels() * 64 * r.p.K))
	coefs := make([]wavelet.Coef, len(top))
	for i, c := range top {
		coefs[i] = wavelet.Coef{Index: c.Index, Value: c.Value}
	}
	r.rep = wavelet.NewRepresentation(r.p.U, coefs)
	return nil
}

// Run implements Algorithm.
func (a *SendSketch) Run(ctx context.Context, file *hdfs.File, p Params) (*Output, error) {
	return runOneRound(ctx, a, file, p)
}

// makeJob implements oneRounder.
func (a *SendSketch) makeJob(file *hdfs.File, p Params) (*mapred.Job, repReducer) {
	red := &sendSketchReducer{p: p}
	job := &mapred.Job{
		Name:      "send-sketch",
		Splits:    file.Splits(p.SplitSize),
		Input:     mapred.SequentialInput{},
		NewMapper: func(hdfs.Split) mapred.Mapper { return &sendSketchMapper{p: p} },
		Reducer:   red,
		// Sketch entries: 4-byte cell index + 8-byte double (Section 5's
		// stated widths).
		PairBytes:   func(mapred.KV) int { return 12 },
		Streaming:   true,
		Seed:        p.Seed,
		Parallelism: p.Parallelism,
	}
	return job, red
}
