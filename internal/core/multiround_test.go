package core

import (
	"context"
	"errors"
	"testing"

	"wavelethist/internal/wavelet"
)

// TestMultiRoundParity1D: H-WTopk through MapRoundSplits + RoundPlan over
// several worker leases is bit-identical to the simulated three-round run,
// including the modeled metrics.
func TestMultiRoundParity1D(t *testing.T) {
	f := partialTestFile(t)
	p := Params{U: 1 << 10, K: 15, Seed: 5}
	ctx := context.Background()
	want, err := NewHWTopk().Run(ctx, f, p)
	if err != nil {
		t.Fatal(err)
	}

	plan, err := NewRoundPlan(f, "H-WTopk", p)
	if err != nil {
		t.Fatal(err)
	}
	m := plan.NumSplits()
	leases := []*WorkerState{NewWorkerState(), NewWorkerState(), NewWorkerState()}
	for r := 1; r <= plan.NumRounds(); r++ {
		bcast := plan.Broadcast(r)
		var parts []SplitPartial
		for id := 0; id < m; id++ {
			ps, replayed, err := MapRoundSplits(ctx, f, "H-WTopk", p, r, bcast, []int{id}, leases[id%3])
			if err != nil {
				t.Fatalf("round %d split %d: %v", r, id, err)
			}
			if len(replayed) != 0 {
				t.Fatalf("round %d split %d: unexpected replay %v", r, id, replayed)
			}
			parts = append(parts, ps...)
		}
		if err := plan.ReduceRound(ctx, r, parts); err != nil {
			t.Fatalf("reduce round %d: %v", r, err)
		}
	}
	got, err := plan.Output()
	if err != nil {
		t.Fatal(err)
	}
	compareCoefs(t, got.Rep.Coefs, want.Rep.Coefs)
	if got.Metrics.TotalCommBytes() != want.Metrics.TotalCommBytes() {
		t.Errorf("modeled comm: got %d, want %d", got.Metrics.TotalCommBytes(), want.Metrics.TotalCommBytes())
	}
	if got.Metrics.Rounds != 3 || want.Metrics.Rounds != 3 {
		t.Errorf("rounds: got %d, want 3", got.Metrics.Rounds)
	}
	if plan.Candidates() <= 0 {
		t.Errorf("candidate set size not recorded: %d", plan.Candidates())
	}
}

// TestMultiRoundReplayParity: losing a worker's state mid-protocol (splits
// handed to a lease that never ran their earlier rounds) triggers replay
// and still yields the exact simulated result.
func TestMultiRoundReplayParity(t *testing.T) {
	f := partialTestFile(t)
	p := Params{U: 1 << 10, K: 15, Seed: 5}
	ctx := context.Background()
	want, err := NewHWTopk().Run(ctx, f, p)
	if err != nil {
		t.Fatal(err)
	}
	for name, from := range map[string]int{"mid-round-2": 2, "mid-round-3": 3} {
		from := from
		t.Run(name, func(t *testing.T) {
			plan, err := NewRoundPlan(f, "H-WTopk", p)
			if err != nil {
				t.Fatal(err)
			}
			m := plan.NumSplits()
			leases := []*WorkerState{NewWorkerState(), NewWorkerState(), NewWorkerState()}
			replayedTotal := 0
			for r := 1; r <= plan.NumRounds(); r++ {
				bcast := plan.Broadcast(r)
				var parts []SplitPartial
				for id := 0; id < m; id++ {
					w := id % 3
					if id < 4 && r >= from {
						w = (w + 1) % 3 // splits 0-3 orphaned from round `from` on
					}
					ps, replayed, err := MapRoundSplits(ctx, f, "H-WTopk", p, r, bcast, []int{id}, leases[w])
					if err != nil {
						t.Fatalf("round %d split %d: %v", r, id, err)
					}
					replayedTotal += len(replayed)
					parts = append(parts, ps...)
				}
				if err := plan.ReduceRound(ctx, r, parts); err != nil {
					t.Fatalf("reduce round %d: %v", r, err)
				}
			}
			if replayedTotal == 0 {
				t.Fatal("expected replays after state loss")
			}
			got, err := plan.Output()
			if err != nil {
				t.Fatal(err)
			}
			compareCoefs(t, got.Rep.Coefs, want.Rep.Coefs)
		})
	}
}

// TestMultiRoundParity2D: the packed-domain H-WTopk-2D flows through the
// same engine and matches the simulated 2D run.
func TestMultiRoundParity2D(t *testing.T) {
	f, _ := make2DDataset(t, 1<<12, 1<<5, 4<<10, 9)
	p := Params{U: 1 << 5, K: 12, Seed: 9}
	ctx := context.Background()
	want, err := NewHWTopk2D().Run(ctx, f, p)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewRoundPlan(f, "H-WTopk-2D", p)
	if err != nil {
		t.Fatal(err)
	}
	m := plan.NumSplits()
	leases := []*WorkerState{NewWorkerState(), NewWorkerState()}
	for r := 1; r <= plan.NumRounds(); r++ {
		bcast := plan.Broadcast(r)
		var parts []SplitPartial
		for id := 0; id < m; id++ {
			ps, _, err := MapRoundSplits(ctx, f, "H-WTopk-2D", p, r, bcast, []int{id}, leases[id%2])
			if err != nil {
				t.Fatalf("round %d split %d: %v", r, id, err)
			}
			parts = append(parts, ps...)
		}
		if err := plan.ReduceRound(ctx, r, parts); err != nil {
			t.Fatalf("reduce round %d: %v", r, err)
		}
	}
	got, err := plan.Output2D()
	if err != nil {
		t.Fatal(err)
	}
	compareCoefs(t, got.Rep.Coefs, want.Rep.Coefs)
}

// TestRoundsAndUnsupported: round counts and the typed unsupported error.
func TestRoundsAndUnsupported(t *testing.T) {
	if got := Rounds("H-WTopk"); got != 3 {
		t.Errorf("Rounds(H-WTopk) = %d, want 3", got)
	}
	if got := Rounds("H-WTopk-2D"); got != 3 {
		t.Errorf("Rounds(H-WTopk-2D) = %d, want 3", got)
	}
	if got := Rounds("Send-V"); got != 1 {
		t.Errorf("Rounds(Send-V) = %d, want 1", got)
	}
	if got := Rounds("nope"); got != 0 {
		t.Errorf("Rounds(nope) = %d, want 0", got)
	}
	if !Distributable("H-WTopk") {
		t.Error("H-WTopk must be distributable")
	}
	if _, err := NewRoundPlan(partialTestFile(t), "Send-V", Params{U: 1 << 10}); !errors.Is(err, ErrUnsupportedMethod) {
		t.Errorf("want ErrUnsupportedMethod, got %v", err)
	}
}

func compareCoefs(t *testing.T, got, want []wavelet.Coef) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("coef count: got %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("coef %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}
