package core

import (
	"context"
	"errors"
	"testing"
)

// MapSplits fans splits across goroutines; the partials must be
// bit-identical to a serial (Parallelism=1) pass, in the same order, for
// every method family. This is the race-enabled smoke CI runs.
func TestMapSplitsParallelDeterminism(t *testing.T) {
	f, _ := testDataset(t, 30000, 1<<10, 1.1, 1024, 7)
	p := Params{U: 1 << 10, K: 10, Epsilon: 0.01, Seed: 44, SplitSize: 2048}
	m := NumSplits(f, p)
	if m < 8 {
		t.Fatalf("want >= 8 splits, have %d", m)
	}
	ids := make([]int, m)
	for i := range ids {
		ids[i] = i
	}
	for _, method := range []string{"Send-V", "TwoLevel-S", "Send-Sketch"} {
		serial := p
		serial.Parallelism = 1
		want, err := MapSplits(context.Background(), f, method, serial, ids)
		if err != nil {
			t.Fatal(err)
		}
		par := p
		par.Parallelism = 4
		got, err := MapSplits(context.Background(), f, method, par, ids)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d partials, want %d", method, len(got), len(want))
		}
		for i := range want {
			if got[i].SplitID != want[i].SplitID || len(got[i].Pairs) != len(want[i].Pairs) {
				t.Fatalf("%s: partial %d shape differs", method, i)
			}
			for j := range want[i].Pairs {
				if got[i].Pairs[j] != want[i].Pairs[j] {
					t.Fatalf("%s: partial %d pair %d: got %+v, want %+v",
						method, i, j, got[i].Pairs[j], want[i].Pairs[j])
				}
			}
		}
	}
}

// MapRoundSplits must stay deterministic under the same fan-out,
// including the state files later rounds read.
func TestMapRoundSplitsParallelDeterminism(t *testing.T) {
	f, _ := testDataset(t, 30000, 1<<10, 1.1, 1024, 7)
	p := Params{U: 1 << 10, K: 10, Seed: 44, SplitSize: 2048}
	m := NumSplits(f, p)
	ids := make([]int, m)
	for i := range ids {
		ids[i] = i
	}
	run := func(parallelism int) ([]SplitPartial, *WorkerState) {
		t.Helper()
		pp := p
		pp.Parallelism = parallelism
		ws := NewWorkerState()
		parts, replayed, err := MapRoundSplits(context.Background(), f, MethodHWTopk, pp, 1, nil, ids, ws)
		if err != nil {
			t.Fatal(err)
		}
		if len(replayed) != 0 {
			t.Fatalf("round 1 replayed %v", replayed)
		}
		return parts, ws
	}
	want, wantWS := run(1)
	got, gotWS := run(4)
	for i := range want {
		if len(got[i].Pairs) != len(want[i].Pairs) {
			t.Fatalf("partial %d shape differs", i)
		}
		for j := range want[i].Pairs {
			if got[i].Pairs[j] != want[i].Pairs[j] {
				t.Fatalf("partial %d pair %d differs", i, j)
			}
		}
	}
	if gotWS.Entries() != wantWS.Entries() || gotWS.Bytes() != wantWS.Bytes() {
		t.Fatalf("worker state differs: %d/%d entries, %d/%d bytes",
			gotWS.Entries(), wantWS.Entries(), gotWS.Bytes(), wantWS.Bytes())
	}
}

// A failing split must cancel the fan-out and surface the error, not hang
// or return partial results.
func TestMapSplitsParallelError(t *testing.T) {
	f, _ := testDataset(t, 30000, 1<<10, 1.1, 1024, 7)
	p := Params{U: 1 << 10, K: 10, Seed: 44, SplitSize: 2048, Parallelism: 4}
	if _, err := MapSplits(context.Background(), f, "Send-V", p, []int{0, 1, 99999}); err == nil {
		t.Fatal("out-of-range split accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := MapSplits(ctx, f, "Send-V", p, []int{0, 1, 2, 3})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled fan-out returned %v", err)
	}
}
