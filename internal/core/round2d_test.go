package core

import (
	"context"
	"testing"

	"wavelethist/internal/hdfs"
	"wavelethist/internal/wavelet"
)

func twoDTestFile(t testing.TB, side int64) *hdfs.File {
	t.Helper()
	fs := hdfs.NewFileSystem(4, 2<<10)
	w, err := fs.Create("grid", 8) // packed keys need 8-byte records
	if err != nil {
		t.Fatal(err)
	}
	// A skewed synthetic grid: key (x, y) = (i % side, i² % side).
	for i := int64(0); i < 6000; i++ {
		w.Append(wavelet.Key2D(i%side, (i*i)%side, side))
	}
	return w.Close()
}

// TestMapMerge2DMatchesRun: MapSplits + MergePartials2D reproduces the
// one-round 2D methods' Run bit-for-bit, in any partial arrival order.
func TestMapMerge2DMatchesRun(t *testing.T) {
	const side = 1 << 5
	f := twoDTestFile(t, side)
	ctx := context.Background()
	for _, name := range []string{MethodSendV2D, MethodTwoLevelS2D} {
		t.Run(name, func(t *testing.T) {
			if Rounds(name) != 1 || !OneRound2D(name) {
				t.Fatalf("%s should be a one-round 2D method (rounds=%d)", name, Rounds(name))
			}
			p := Params{U: side, K: 12, Epsilon: 0.05, Seed: 7}
			or, err := oneRound2DByName(name)
			if err != nil {
				t.Fatal(err)
			}
			want, err := runOneRound2D(ctx, or, f, p)
			if err != nil {
				t.Fatal(err)
			}
			m := NumSplits(f, p)
			if m < 2 {
				t.Fatalf("need multiple splits, have %d", m)
			}
			var parts []SplitPartial
			for _, ids := range [][]int{evens(m), odds(m)} {
				ps, err := MapSplits(ctx, f, name, p, ids)
				if err != nil {
					t.Fatal(err)
				}
				parts = append(parts, ps...)
			}
			for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
				parts[i], parts[j] = parts[j], parts[i]
			}
			got, err := MergePartials2D(ctx, f, name, p, parts)
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Rep.Coefs) != len(want.Rep.Coefs) {
				t.Fatalf("coef count: got %d, want %d", len(got.Rep.Coefs), len(want.Rep.Coefs))
			}
			for i := range want.Rep.Coefs {
				if got.Rep.Coefs[i] != want.Rep.Coefs[i] {
					t.Fatalf("coef %d: got %+v, want %+v", i, got.Rep.Coefs[i], want.Rep.Coefs[i])
				}
			}
			if got.Metrics.TotalCommBytes() != want.Metrics.TotalCommBytes() {
				t.Errorf("modeled comm: got %d, want %d",
					got.Metrics.TotalCommBytes(), want.Metrics.TotalCommBytes())
			}
		})
	}
}

// TestDistributable2DOneRound: the 2D baselines advertise distributed
// support and MergePartials2D rejects a 1D or multi-round method name.
func TestDistributable2DOneRound(t *testing.T) {
	for _, name := range []string{MethodSendV2D, MethodTwoLevelS2D} {
		if !Distributable(name) {
			t.Errorf("%s should be distributable", name)
		}
	}
	f := twoDTestFile(t, 1<<4)
	if _, err := MergePartials2D(context.Background(), f, MethodHWTopk2D, Params{U: 1 << 4, K: 4}, nil); err == nil {
		t.Error("MergePartials2D accepted the multi-round H-WTopk-2D")
	}
	if _, err := MergePartials2D(context.Background(), f, "Send-V", Params{U: 1 << 4, K: 4}, nil); err == nil {
		t.Error("MergePartials2D accepted a 1D method")
	}
}
