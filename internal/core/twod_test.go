package core

import (
	"context"
	"math"
	"testing"

	"wavelethist/internal/hdfs"
	"wavelethist/internal/wavelet"
	"wavelethist/internal/zipf"
)

// make2DDataset generates records with packed (x, y) keys: x and y drawn
// from correlated Zipf marginals, like a (src, dst) traffic matrix.
func make2DDataset(t testing.TB, n, u int64, chunk int64, seed uint64) (*hdfs.File, [][]float64) {
	t.Helper()
	fs := hdfs.NewFileSystem(4, chunk)
	w, err := fs.Create("grid", 8) // packed keys need 8-byte records
	if err != nil {
		t.Fatal(err)
	}
	rng := zipf.NewRNG(seed)
	zx := zipf.NewZipf(u, 1.1)
	zy := zipf.NewZipf(u, 0.9)
	dense := make([][]float64, u)
	for i := range dense {
		dense[i] = make([]float64, u)
	}
	for i := int64(0); i < n; i++ {
		x := zx.Sample(rng) - 1
		y := zy.Sample(rng) - 1
		if rng.Bernoulli(0.3) {
			y = x // diagonal correlation hotspot
		}
		w.Append(wavelet.Key2D(x, y, u))
		dense[x][y]++
	}
	return w.Close(), dense
}

func true2DTopK(dense [][]float64, u int64, k int) []wavelet.Coef {
	w := wavelet.Transform2D(dense)
	coefs := make([]wavelet.Coef, 0)
	for i := int64(0); i < u; i++ {
		for j := int64(0); j < u; j++ {
			if w[i][j] != 0 {
				coefs = append(coefs, wavelet.Coef{Index: wavelet.Key2D(i, j, u), Value: w[i][j]})
			}
		}
	}
	return wavelet.SelectTopK(coefs, k)
}

func assert2DExact(t *testing.T, name string, got *wavelet.Representation2D, dense [][]float64, u int64, k int) {
	t.Helper()
	want := true2DTopK(dense, u, k)
	if len(got.Coefs) != len(want) {
		t.Fatalf("%s: %d coefficients, want %d", name, len(got.Coefs), len(want))
	}
	w := wavelet.Transform2D(dense)
	for i := range want {
		gm, wm := math.Abs(got.Coefs[i].Value), math.Abs(want[i].Value)
		if math.Abs(gm-wm) > 1e-6*(1+wm) {
			t.Errorf("%s: |coef[%d]| = %v, want %v", name, i, gm, wm)
		}
	}
	for _, c := range got.Coefs {
		ci, cj := wavelet.SplitKey2D(c.Index, u)
		if math.Abs(c.Value-w[ci][cj]) > 1e-6*(1+math.Abs(w[ci][cj])) {
			t.Errorf("%s: coef (%d,%d) = %v, true %v", name, ci, cj, c.Value, w[ci][cj])
		}
	}
}

func TestSendV2DExact(t *testing.T) {
	const u = 32
	f, dense := make2DDataset(t, 20000, u, 2048, 3)
	out, err := NewSendV2D().Run(context.Background(), f, Params{U: u, K: 15, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	assert2DExact(t, "Send-V-2D", out.Rep, dense, u, 15)
}

func TestHWTopk2DExact(t *testing.T) {
	const u = 32
	f, dense := make2DDataset(t, 20000, u, 2048, 5)
	out, err := NewHWTopk2D().Run(context.Background(), f, Params{U: u, K: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	assert2DExact(t, "H-WTopk-2D", out.Rep, dense, u, 10)
	if out.Metrics.Rounds != 3 {
		t.Errorf("rounds = %d", out.Metrics.Rounds)
	}
}

func TestHWTopk2DMatchesSendV2D(t *testing.T) {
	const u = 16
	f, _ := make2DDataset(t, 8000, u, 1024, 7)
	p := Params{U: u, K: 12, Seed: 3}
	sv, err := NewSendV2D().Run(context.Background(), f, p)
	if err != nil {
		t.Fatal(err)
	}
	hw, err := NewHWTopk2D().Run(context.Background(), f, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sv.Rep.Coefs {
		if math.Abs(math.Abs(sv.Rep.Coefs[i].Value)-math.Abs(hw.Rep.Coefs[i].Value)) > 1e-9 {
			t.Errorf("coef %d magnitude differs between Send-V-2D and H-WTopk-2D", i)
		}
	}
	// (No communication comparison here: a 16×16 grid has only 256
	// distinct keys, far below the paper's split-size regime; the 1D
	// test asserts the comm ordering at realistic scale.)
}

func TestTwoLevelS2DApproximates(t *testing.T) {
	const u = 32
	f, dense := make2DDataset(t, 60000, u, 2048, 9)
	out, err := NewTwoLevelS2D().Run(context.Background(), f, Params{U: u, K: 20, Epsilon: 0.01, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if out.Rep.Coefs == nil {
		t.Fatal("empty representation")
	}
	recon := out.Rep.Reconstruct()
	sse := wavelet.SSE2D(dense, recon)
	var energy float64
	for i := range dense {
		energy += wavelet.Energy(dense[i])
	}
	if sse >= energy {
		t.Errorf("2D SSE %v >= energy %v", sse, energy)
	}
	// Sampling must not read the whole file.
	if out.Metrics.MapBytesRead >= f.Size() {
		t.Errorf("TwoLevel-S-2D read %d of %d bytes", out.Metrics.MapBytesRead, f.Size())
	}
}

func Test2DValidation(t *testing.T) {
	fs := hdfs.NewFileSystem(2, 1024)
	w, _ := fs.Create("x", 8)
	w.Append(0)
	f := w.Close()
	if _, err := NewSendV2D().Run(context.Background(), f, Params{U: 3, K: 5}); err == nil {
		t.Error("accepted non-power-of-two 2D side")
	}
	if _, err := NewTwoLevelS2D().Run(context.Background(), f, Params{U: 3, K: 5, Epsilon: 0.1}); err == nil {
		t.Error("accepted non-power-of-two 2D side")
	}
}

func TestIndexSetWideIndices(t *testing.T) {
	ids := []int64{1, 0xFFFFFFFF + 5, 42}
	got, err := decodeIndexSet(encodeIndexSet(ids))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if !got[id] {
			t.Errorf("index %d lost in round trip", id)
		}
	}
	if indexSetBytes(ids) != 24 {
		t.Errorf("wide index set bytes = %d, want 24", indexSetBytes(ids))
	}
	if indexSetBytes([]int64{1, 2}) != 8 {
		t.Errorf("narrow index set bytes = %d, want 8", indexSetBytes([]int64{1, 2}))
	}
}
