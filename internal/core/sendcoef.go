package core

import (
	"context"

	"wavelethist/internal/hdfs"
	"wavelethist/internal/mapred"
	"wavelethist/internal/wavelet"
)

// SendCoef is the second exact baseline (Section 3): each split computes
// its local wavelet coefficients w_{i,j} = <v_j, ψ_i> and emits every
// non-zero one; by linearity w_i = Σ_j w_{i,j}, so the reducer sums per
// index and selects the top-k. The paper shows it performs strictly worse
// than Send-V because each split's non-zero coefficient count
// (≈ |v_j|·log u, capped at u) exceeds its distinct-key count and grows
// with the domain size (Figure 12).
type SendCoef struct{}

// NewSendCoef returns the Send-Coef algorithm.
func NewSendCoef() *SendCoef { return &SendCoef{} }

// Name implements Algorithm.
func (*SendCoef) Name() string { return "Send-Coef" }

type sendCoefMapper struct {
	u    int64
	freq map[int64]float64
}

func (m *sendCoefMapper) Setup(*mapred.TaskContext) error {
	m.freq = make(map[int64]float64)
	return nil
}

func (m *sendCoefMapper) Map(ctx *mapred.TaskContext, rec hdfs.Record, _ *mapred.Emitter) error {
	if err := checkDomain(rec.Key, m.u); err != nil {
		return err
	}
	m.freq[rec.Key]++
	return nil
}

func (m *sendCoefMapper) Close(ctx *mapred.TaskContext, out *mapred.Emitter) error {
	for _, c := range localCoefficients(ctx, m.freq, m.u) {
		out.Emit(mapred.KV{Key: c.Index, Val: c.Value, Src: int32(ctx.SplitID)})
	}
	return nil
}

type sendCoefReducer struct {
	u     int64
	k     int
	coefs map[int64]float64
	rep   *wavelet.Representation
}

func (r *sendCoefReducer) Setup(*mapred.TaskContext) error {
	r.coefs = make(map[int64]float64)
	return nil
}

func (r *sendCoefReducer) Reduce(_ *mapred.TaskContext, key int64, vals []mapred.KV) error {
	for _, kv := range vals {
		r.coefs[key] += kv.Val
	}
	return nil
}

func (r *sendCoefReducer) Close(ctx *mapred.TaskContext) error {
	ctx.AddWork(float64(len(r.coefs)))
	r.rep = wavelet.NewRepresentation(r.u, wavelet.SelectTopKMap(r.coefs, r.k))
	return nil
}

func (r *sendCoefReducer) representation() *wavelet.Representation { return r.rep }

// Run implements Algorithm.
func (a *SendCoef) Run(ctx context.Context, file *hdfs.File, p Params) (*Output, error) {
	return runOneRound(ctx, a, file, p)
}

// makeJob implements oneRounder.
func (a *SendCoef) makeJob(file *hdfs.File, p Params) (*mapred.Job, repReducer) {
	red := &sendCoefReducer{u: p.U, k: p.K}
	job := &mapred.Job{
		Name:      "send-coef",
		Splits:    file.Splits(p.SplitSize),
		Input:     mapred.SequentialInput{},
		NewMapper: func(hdfs.Split) mapred.Mapper { return &sendCoefMapper{u: p.U} },
		Reducer:   red,
		// Wire format: 4-byte coefficient index + 8-byte double.
		PairBytes:   func(mapred.KV) int { return 12 },
		Streaming:   true,
		Seed:        p.Seed,
		Parallelism: p.Parallelism,
	}
	return job, red
}
