package core

import (
	"math"
	"testing"

	"wavelethist/internal/datagen"
	"wavelethist/internal/hdfs"
	"wavelethist/internal/wavelet"
)

// Variable-length record datasets exercise the Appendix-B readers end to
// end: the exact methods scan with SequentialVarReader (skipping partial
// records at split starts) and the sampling methods use RandomVarReader
// (random offsets -> delimiter scan -> record-length trailer).

func varDataset(t *testing.T, n, u int64, maxPayload int) (*hdfs.File, []float64) {
	t.Helper()
	fs := hdfs.NewFileSystem(8, 4096)
	spec := datagen.NewZipfSpec(n, u, 1.1, 21)
	f, err := datagen.GenerateZipfVar(fs, "var", spec, maxPayload)
	if err != nil {
		t.Fatal(err)
	}
	freq := datagen.ExactFrequencies(f)
	return f, datagen.DenseFrequencies(freq, u)
}

func TestExactMethodsOnVariableRecords(t *testing.T) {
	f, v := varDataset(t, 20000, 1<<10, 40)
	p := Params{U: 1 << 10, K: 15, Seed: 2}
	for _, a := range []Algorithm{NewSendV(), NewHWTopk()} {
		out := run(t, a, f, p)
		assertExactMatch(t, a.Name()+"(var)", out.Rep, v, 15)
	}
}

func TestSamplingOnVariableRecords(t *testing.T) {
	f, v := varDataset(t, 60000, 1<<10, 30)
	energy := wavelet.Energy(v)
	for _, a := range []Algorithm{NewBasicS(), NewImprovedS(), NewTwoLevelS()} {
		p := Params{U: 1 << 10, K: 20, Epsilon: 8e-3, Seed: 5, CombineEnabled: true}
		out := run(t, a, f, p)
		if out.Rep.K() == 0 {
			t.Fatalf("%s: empty histogram on variable records", a.Name())
		}
		if sse := out.Rep.SSEAgainst(v); sse >= energy {
			t.Errorf("%s: SSE %v >= energy %v", a.Name(), sse, energy)
		}
		// Sampling must not read the whole variable-length file either.
		if out.Metrics.MapBytesRead >= f.Size() {
			t.Errorf("%s: read %d of %d bytes", a.Name(), out.Metrics.MapBytesRead, f.Size())
		}
	}
}

func TestVariableRecordSampleSizeTracksEpsilon(t *testing.T) {
	f, _ := varDataset(t, 60000, 1<<10, 30)
	records := func(eps float64) int64 {
		p := Params{U: 1 << 10, K: 10, Epsilon: eps, Seed: 7, CombineEnabled: true}
		out := run(t, NewBasicS(), f, p)
		return out.Metrics.MapRecordsRead
	}
	loose, tight := records(2e-2), records(5e-3)
	if tight <= loose {
		t.Errorf("smaller ε must sample more: ε=5e-3 read %d, ε=2e-2 read %d", tight, loose)
	}
	// Expected sample ≈ 1/ε² (estimated n_j from average record size);
	// allow a 2x band.
	want := 1 / (5e-3 * 5e-3)
	if math.Abs(float64(tight)-want) > want {
		t.Errorf("sample size %d far from 1/ε² = %v", tight, want)
	}
}
