package core

import (
	"context"

	"wavelethist/internal/hdfs"
	"wavelethist/internal/mapred"
	"wavelethist/internal/wavelet"
)

// SendV is the first exact baseline (Section 3): each split emits its
// entire local frequency vector v_j as (x, v_j(x)) pairs; the single
// reducer aggregates v = Σ v_j and runs the centralized best-k-term
// selection. Communication is O(m·u) in the worst case — the paper's
// motivation for everything that follows.
type SendV struct{}

// NewSendV returns the Send-V algorithm.
func NewSendV() *SendV { return &SendV{} }

// Name implements Algorithm.
func (*SendV) Name() string { return "Send-V" }

// sendVMapper aggregates its split's frequency vector in memory (the
// hashmap of Appendix A) and emits one (x, count) pair per distinct key.
type sendVMapper struct {
	u    int64
	freq map[int64]float64
}

func (m *sendVMapper) Setup(*mapred.TaskContext) error {
	m.freq = make(map[int64]float64)
	return nil
}

func (m *sendVMapper) Map(ctx *mapred.TaskContext, rec hdfs.Record, _ *mapred.Emitter) error {
	if err := checkDomain(rec.Key, m.u); err != nil {
		return err
	}
	m.freq[rec.Key]++
	return nil
}

func (m *sendVMapper) Close(ctx *mapred.TaskContext, out *mapred.Emitter) error {
	for x, c := range m.freq {
		out.Emit(mapred.KV{Key: x, Val: c, Src: int32(ctx.SplitID)})
	}
	return nil
}

// sendVReducer aggregates the global frequency vector and selects the
// best k-term representation at Close.
type sendVReducer struct {
	u    int64
	k    int
	freq map[int64]float64
	rep  *wavelet.Representation
}

func (r *sendVReducer) Setup(*mapred.TaskContext) error {
	r.freq = make(map[int64]float64)
	return nil
}

func (r *sendVReducer) Reduce(_ *mapred.TaskContext, key int64, vals []mapred.KV) error {
	for _, kv := range vals {
		r.freq[key] += kv.Val
	}
	return nil
}

func (r *sendVReducer) Close(ctx *mapred.TaskContext) error {
	coefs := localCoefficients(ctx, r.freq, r.u)
	ctx.AddWork(float64(len(coefs))) // top-k heap pass
	r.rep = wavelet.NewRepresentation(r.u, wavelet.SelectTopK(coefs, r.k))
	return nil
}

func (r *sendVReducer) representation() *wavelet.Representation { return r.rep }

// Run implements Algorithm.
func (a *SendV) Run(ctx context.Context, file *hdfs.File, p Params) (*Output, error) {
	return runOneRound(ctx, a, file, p)
}

// makeJob implements oneRounder.
func (a *SendV) makeJob(file *hdfs.File, p Params) (*mapred.Job, repReducer) {
	red := &sendVReducer{u: p.U, k: p.K}
	job := &mapred.Job{
		Name:      "send-v",
		Splits:    file.Splits(p.SplitSize),
		Input:     mapred.SequentialInput{},
		NewMapper: func(hdfs.Split) mapred.Mapper { return &sendVMapper{u: p.U} },
		Reducer:   red,
		// Wire format: 4-byte key + 4-byte count ("we use 4-byte integers
		// to represent v(x) in a Mapper", Section 5).
		PairBytes:   func(mapred.KV) int { return 8 },
		Streaming:   true,
		Seed:        p.Seed,
		Parallelism: p.Parallelism,
	}
	return job, red
}
