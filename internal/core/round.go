package core

import (
	"context"
	"time"

	"wavelethist/internal/hdfs"
	"wavelethist/internal/mapred"
	"wavelethist/internal/wavelet"
)

// The six one-round methods share a single map/reduce decomposition: each
// exposes its configured mapred.Job via makeJob, and the final
// representation via its reducer. That decomposition is what both the
// simulated runner (runOneRound) and the distributed subsystem (MapSplits
// / MergePartials in partial.go) execute — the same mapper and reducer
// code runs in-process or across a waveworker fleet.

// repReducer is a Reducer that yields the final k-term representation.
type repReducer interface {
	mapred.Reducer
	representation() *wavelet.Representation
}

// oneRounder is implemented by the single-round methods (all but the
// three-round H-WTopk). makeJob expects p to already be defaulted and
// validated.
type oneRounder interface {
	Algorithm
	makeJob(file *hdfs.File, p Params) (*mapred.Job, repReducer)
}

// runOneRound is the shared simulated Run of a one-round method.
func runOneRound(ctx context.Context, a oneRounder, file *hdfs.File, p Params) (*Output, error) {
	p = p.Defaults()
	if err := p.validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	job, red := a.makeJob(file, p)
	res, err := mapred.RunContext(ctx, job)
	if err != nil {
		return nil, err
	}
	out := &Output{Rep: red.representation()}
	out.Metrics.addRound(res, 0)
	out.Metrics.WallTime = time.Since(start)
	return out, nil
}
