package core

import (
	"context"
	"sync"
	"testing"
)

// Builds must be safe to run concurrently over the same HDFS file: the
// file is read-only and every job owns its conf/cache/state. This guards
// against accidental shared mutable state in the algorithms or runtime.
func TestConcurrentBuildsSameFile(t *testing.T) {
	f, v := testDataset(t, 20000, 1<<10, 1.1, 1024, 33)
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	results := make([]*Output, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var a Algorithm
			switch w % 4 {
			case 0:
				a = NewSendV()
			case 1:
				a = NewHWTopk()
			case 2:
				a = NewTwoLevelS()
			default:
				a = NewSendSketch()
			}
			out, err := a.Run(context.Background(), f, Params{U: 1 << 10, K: 10, Epsilon: 0.01, Seed: 44})
			if err != nil {
				errs <- err
				return
			}
			results[w] = out
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// The exact runs must agree with ground truth despite concurrency.
	for w, out := range results {
		if out == nil {
			continue
		}
		if w%4 == 0 || w%4 == 1 {
			assertExactMatch(t, "concurrent", out.Rep, v, 10)
		}
	}
	// Identical concurrent runs must be bit-identical (determinism is not
	// schedule-dependent).
	if results[0] != nil && results[4] != nil {
		a, b := results[0].Rep.Coefs, results[4].Rep.Coefs
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("concurrent identical runs diverge at coefficient %d", i)
			}
		}
	}
}
