package core

import (
	"context"
	"math"
	"testing"

	"wavelethist/internal/datagen"
	"wavelethist/internal/hdfs"
	"wavelethist/internal/wavelet"
)

// testDataset builds a small Zipf dataset with many splits.
func testDataset(t testing.TB, n, u int64, alpha float64, chunk int64, seed uint64) (*hdfs.File, []float64) {
	t.Helper()
	fs := hdfs.NewFileSystem(8, chunk)
	f, err := datagen.GenerateZipf(fs, "data", datagen.NewZipfSpec(n, u, alpha, seed))
	if err != nil {
		t.Fatal(err)
	}
	freq := datagen.ExactFrequencies(f)
	return f, datagen.DenseFrequencies(freq, u)
}

// exactTopK computes the ground-truth best k-term representation.
func exactTopK(v []float64, k int) []wavelet.Coef {
	return wavelet.SelectTopKDense(wavelet.Transform(v), k)
}

// assertExactMatch verifies an algorithm's representation has exactly the
// true top-k coefficient magnitudes and values (ties allowed to swap).
func assertExactMatch(t *testing.T, name string, got *wavelet.Representation, v []float64, k int) {
	t.Helper()
	want := exactTopK(v, k)
	if got == nil {
		t.Fatalf("%s: nil representation", name)
	}
	if len(got.Coefs) != len(want) {
		t.Fatalf("%s: %d coefficients, want %d", name, len(got.Coefs), len(want))
	}
	for i := range want {
		gm, wm := math.Abs(got.Coefs[i].Value), math.Abs(want[i].Value)
		if math.Abs(gm-wm) > 1e-6*(1+wm) {
			t.Errorf("%s: |coef[%d]| = %v, want %v", name, i, gm, wm)
		}
	}
	// Every reported value must equal the true coefficient at its index.
	w := wavelet.Transform(v)
	for _, c := range got.Coefs {
		if math.Abs(c.Value-w[c.Index]) > 1e-6*(1+math.Abs(w[c.Index])) {
			t.Errorf("%s: coef %d = %v, true %v", name, c.Index, c.Value, w[c.Index])
		}
	}
}

func run(t testing.TB, a Algorithm, f *hdfs.File, p Params) *Output {
	t.Helper()
	out, err := a.Run(context.Background(), f, p)
	if err != nil {
		t.Fatalf("%s: %v", a.Name(), err)
	}
	return out
}

func TestSendVExact(t *testing.T) {
	f, v := testDataset(t, 20000, 1<<10, 1.1, 1024, 7)
	p := Params{U: 1 << 10, K: 20, Seed: 1}
	out := run(t, NewSendV(), f, p)
	assertExactMatch(t, "Send-V", out.Rep, v, 20)
	if out.Metrics.Rounds != 1 {
		t.Errorf("rounds = %d", out.Metrics.Rounds)
	}
}

func TestSendCoefExact(t *testing.T) {
	f, v := testDataset(t, 20000, 1<<10, 1.1, 1024, 7)
	p := Params{U: 1 << 10, K: 20, Seed: 1}
	out := run(t, NewSendCoef(), f, p)
	assertExactMatch(t, "Send-Coef", out.Rep, v, 20)
}

func TestHWTopkExact(t *testing.T) {
	for _, cfg := range []struct {
		n, u  int64
		alpha float64
		chunk int64
		k     int
	}{
		{20000, 1 << 10, 1.1, 1024, 20},
		{20000, 1 << 10, 0.8, 1024, 10},
		{5000, 1 << 8, 1.4, 256, 5},
		{30000, 1 << 12, 1.1, 2048, 30},
	} {
		f, v := testDataset(t, cfg.n, cfg.u, cfg.alpha, cfg.chunk, 5)
		p := Params{U: cfg.u, K: cfg.k, Seed: 2}
		out := run(t, NewHWTopk(), f, p)
		assertExactMatch(t, "H-WTopk", out.Rep, v, cfg.k)
		if out.Metrics.Rounds != 3 {
			t.Errorf("H-WTopk rounds = %d, want 3", out.Metrics.Rounds)
		}
	}
}

func TestHWTopkSingleSplit(t *testing.T) {
	f, v := testDataset(t, 3000, 1<<8, 1.1, 1<<20, 9) // one split
	p := Params{U: 1 << 8, K: 10, Seed: 3}
	out := run(t, NewHWTopk(), f, p)
	assertExactMatch(t, "H-WTopk(m=1)", out.Rep, v, 10)
}

func TestHWTopkKLargerThanCoefficients(t *testing.T) {
	// Tiny domain: fewer non-zero coefficients than k.
	f, v := testDataset(t, 500, 1<<4, 1.1, 128, 11)
	p := Params{U: 1 << 4, K: 50, Seed: 4}
	out := run(t, NewHWTopk(), f, p)
	want := exactTopK(v, 50)
	if len(out.Rep.Coefs) != len(want) {
		t.Fatalf("got %d coefs, want %d", len(out.Rep.Coefs), len(want))
	}
	assertExactMatch(t, "H-WTopk(k>u)", out.Rep, v, 50)
}

func TestHWTopkCommunicationBeatsSendV(t *testing.T) {
	// Paper regime: splits much larger than k (the default is 256 MB
	// splits, k = 30), so Send-V's per-split frequency vectors dwarf
	// H-WTopk's 2km round-1 pairs.
	f, _ := testDataset(t, 200000, 1<<14, 1.1, 16384, 13)
	p := Params{U: 1 << 14, K: 10, Seed: 5}
	sendV := run(t, NewSendV(), f, p)
	hw := run(t, NewHWTopk(), f, p)
	if hw.Metrics.TotalCommBytes() >= sendV.Metrics.TotalCommBytes() {
		t.Errorf("H-WTopk comm %d >= Send-V comm %d",
			hw.Metrics.TotalCommBytes(), sendV.Metrics.TotalCommBytes())
	}
	// The paper reports orders of magnitude; at this scale demand >= 4x.
	if hw.Metrics.TotalCommBytes()*4 > sendV.Metrics.TotalCommBytes() {
		t.Errorf("H-WTopk comm %d not ≪ Send-V comm %d",
			hw.Metrics.TotalCommBytes(), sendV.Metrics.TotalCommBytes())
	}
}

func TestSendCoefWorseThanSendV(t *testing.T) {
	// Figure 12's observation: non-zero local coefficients outnumber
	// distinct keys, so Send-Coef ships more.
	f, _ := testDataset(t, 40000, 1<<14, 1.1, 1024, 17)
	p := Params{U: 1 << 14, K: 20, Seed: 6}
	sendV := run(t, NewSendV(), f, p)
	sendCoef := run(t, NewSendCoef(), f, p)
	if sendCoef.Metrics.ShuffleBytes <= sendV.Metrics.ShuffleBytes {
		t.Errorf("Send-Coef comm %d <= Send-V comm %d",
			sendCoef.Metrics.ShuffleBytes, sendV.Metrics.ShuffleBytes)
	}
}

func TestSamplingAlgorithmsApproximate(t *testing.T) {
	const u = 1 << 12
	const k = 20
	f, v := testDataset(t, 100000, u, 1.1, 2048, 21)
	energy := wavelet.Energy(v)
	ideal := wavelet.IdealSSE(wavelet.Transform(v), k)
	for _, a := range []Algorithm{NewBasicS(), NewImprovedS(), NewTwoLevelS()} {
		p := Params{U: u, K: k, Epsilon: 0.004, Seed: 31, CombineEnabled: true}
		out := run(t, a, f, p)
		if out.Rep == nil || out.Rep.K() == 0 {
			t.Fatalf("%s: empty representation", a.Name())
		}
		sse := out.Rep.SSEAgainst(v)
		if sse >= energy {
			t.Errorf("%s: SSE %v >= signal energy %v (useless histogram)",
				a.Name(), sse, energy)
		}
		if sse > 20*ideal+0.05*energy {
			t.Errorf("%s: SSE %v far above ideal %v", a.Name(), sse, ideal)
		}
	}
}

func TestTwoLevelSBeatsImprovedSCommunication(t *testing.T) {
	const u = 1 << 12
	f, _ := testDataset(t, 200000, u, 1.1, 512, 23) // many splits
	p := Params{U: u, K: 20, Epsilon: 0.003, Seed: 41, CombineEnabled: true}
	imp := run(t, NewImprovedS(), f, p)
	two := run(t, NewTwoLevelS(), f, p)
	if two.Metrics.ShuffleBytes >= imp.Metrics.ShuffleBytes {
		t.Errorf("TwoLevel-S comm %d >= Improved-S comm %d",
			two.Metrics.ShuffleBytes, imp.Metrics.ShuffleBytes)
	}
}

// Unbiasedness (Theorem 1/Corollary 1): averaged over many independent
// runs, TwoLevel-S's estimated frequency of a heavy key converges to the
// truth, while Improved-S stays biased low for light keys.
func TestTwoLevelSUnbiased(t *testing.T) {
	const u = 1 << 8
	const n = 40000
	f, v := testDataset(t, n, u, 1.1, 512, 51)
	// Pick a key with a middling frequency (heavy enough to measure,
	// light enough that second-level sampling kicks in on some splits).
	var probe int64 = -1
	var probeFreq float64
	for x := int64(0); x < u; x++ {
		if v[x] > 20 && v[x] < 200 {
			probe, probeFreq = x, v[x]
			break
		}
	}
	if probe < 0 {
		t.Skip("no suitable probe key in dataset")
	}
	const trials = 40
	var sum float64
	for trial := 0; trial < trials; trial++ {
		p := Params{U: u, K: 20, Epsilon: 0.01, Seed: uint64(1000 + trial)}
		out := run(t, NewTwoLevelS(), f, p)
		// Reconstruct the estimated frequency from the full representation
		// is lossy; instead rebuild v-hat through a full-k run.
		p.K = int(u) // keep all coefficients: reconstruction == v-hat
		out = run(t, NewTwoLevelS(), f, p)
		sum += out.Rep.PointEstimate(probe)
	}
	mean := sum / trials
	// Standard deviation of the estimator is ~εn/√trials ≈ 63; allow 4σ.
	tol := 4 * (0.01 * n) / math.Sqrt(trials)
	if math.Abs(mean-probeFreq) > tol {
		t.Errorf("TwoLevel-S mean estimate %v, truth %v (tol %v): biased?",
			mean, probeFreq, tol)
	}
}

func TestSendSketchRecoversTopCoefficients(t *testing.T) {
	const u = 1 << 12
	const k = 10
	f, v := testDataset(t, 100000, u, 1.3, 2048, 61)
	p := Params{U: u, K: k, Seed: 71}
	out := run(t, NewSendSketch(), f, p)
	if out.Rep.K() != k {
		t.Fatalf("got %d coefficients", out.Rep.K())
	}
	// Most recovered indices should be in the true top-2k (sketch noise
	// allows some slippage).
	trueSet := make(map[int64]bool)
	for _, c := range exactTopK(v, 2*k) {
		trueSet[c.Index] = true
	}
	hits := 0
	for _, c := range out.Rep.Coefs {
		if trueSet[c.Index] {
			hits++
		}
	}
	if hits < k*6/10 {
		t.Errorf("Send-Sketch recovered %d/%d of the true top coefficients", hits, k)
	}
	// SSE sanity: better than the empty histogram.
	if sse := out.Rep.SSEAgainst(v); sse >= wavelet.Energy(v) {
		t.Errorf("Send-Sketch SSE %v >= energy", sse)
	}
}

func TestCombinerAblation(t *testing.T) {
	const u = 1 << 10
	f, _ := testDataset(t, 100000, u, 1.3, 1024, 81) // skewed: combine helps
	pOn := Params{U: u, K: 10, Epsilon: 0.005, Seed: 9, CombineEnabled: true}
	pOff := pOn
	pOff.CombineEnabled = false
	on := run(t, NewBasicS(), f, pOn)
	off := run(t, NewBasicS(), f, pOff)
	if on.Metrics.PairsShuffled >= off.Metrics.PairsShuffled {
		t.Errorf("combine on shuffled %d pairs, off %d",
			on.Metrics.PairsShuffled, off.Metrics.PairsShuffled)
	}
}

func TestDeterministicRuns(t *testing.T) {
	f, _ := testDataset(t, 30000, 1<<10, 1.1, 512, 91)
	for _, a := range Algorithms() {
		p := Params{U: 1 << 10, K: 10, Epsilon: 0.01, Seed: 77, CombineEnabled: true}
		o1 := run(t, a, f, p)
		o2 := run(t, a, f, p)
		if o1.Metrics.ShuffleBytes != o2.Metrics.ShuffleBytes {
			t.Errorf("%s: shuffle bytes differ across identical runs", a.Name())
		}
		if len(o1.Rep.Coefs) != len(o2.Rep.Coefs) {
			t.Fatalf("%s: representation size differs", a.Name())
		}
		for i := range o1.Rep.Coefs {
			if o1.Rep.Coefs[i] != o2.Rep.Coefs[i] {
				t.Errorf("%s: coef %d differs across identical runs", a.Name(), i)
			}
		}
	}
}

func TestParamValidation(t *testing.T) {
	f, _ := testDataset(t, 100, 1<<6, 1.1, 128, 3)
	bad := []Params{
		{U: 100, K: 5},              // not a power of two
		{U: 64, K: 0, Epsilon: 0.1}, // K defaulted... needs explicit bad K
	}
	if _, err := NewSendV().Run(context.Background(), f, bad[0]); err == nil {
		t.Error("accepted non-power-of-two domain")
	}
	if _, err := NewSendV().Run(context.Background(), f, Params{U: 64, K: -1}); err == nil {
		t.Error("accepted negative k")
	}
	if _, err := NewBasicS().Run(context.Background(), f, Params{U: 64, K: 5, Epsilon: 2}); err == nil {
		t.Error("accepted epsilon >= 1")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"Send-V", "Send-Coef", "H-WTopk", "Basic-S", "Improved-S", "TwoLevel-S", "Send-Sketch"} {
		a, err := ByName(name)
		if err != nil || a.Name() != name {
			t.Errorf("ByName(%q) = %v, %v", name, a, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName accepted unknown name")
	}
}

func TestOutOfDomainKeyFails(t *testing.T) {
	f, _ := testDataset(t, 1000, 1<<10, 1.1, 512, 3)
	p := Params{U: 1 << 4, K: 5} // domain smaller than the data's keys
	if _, err := NewSendV().Run(context.Background(), f, p); err == nil {
		t.Error("Send-V accepted out-of-domain keys")
	}
	if _, err := NewHWTopk().Run(context.Background(), f, p); err == nil {
		t.Error("H-WTopk accepted out-of-domain keys")
	}
}

func TestMetricsRoundCosts(t *testing.T) {
	f, _ := testDataset(t, 10000, 1<<10, 1.1, 512, 3)
	p := Params{U: 1 << 10, K: 10, Seed: 1}
	out := run(t, NewHWTopk(), f, p)
	if len(out.Metrics.RoundCosts) != 3 {
		t.Fatalf("round costs = %d", len(out.Metrics.RoundCosts))
	}
	// Round 1 scans the input; rounds 2-3 must not.
	if len(out.Metrics.RoundCosts[0].MapTasks) == 0 {
		t.Fatal("no map tasks recorded")
	}
	var r1Bytes int64
	for _, mt := range out.Metrics.RoundCosts[0].MapTasks {
		r1Bytes += mt.InputBytes
	}
	if r1Bytes < f.Size() {
		t.Errorf("round 1 scanned %d bytes, want >= file size %d", r1Bytes, f.Size())
	}
	// Rounds 2-3 must not re-scan input records: the only records read
	// across all three rounds are round 1's full scan. (Their map tasks
	// still do local IO — the state files — which is counted, but no
	// record reader runs.)
	if out.Metrics.MapRecordsRead != f.NumRecords {
		t.Errorf("read %d records across 3 rounds, want exactly n = %d",
			out.Metrics.MapRecordsRead, f.NumRecords)
	}
	// Round 3 carries the R broadcast.
	if out.Metrics.RoundCosts[2].BroadcastBytes == 0 {
		t.Error("round 3 missing the R distributed-cache broadcast")
	}
}

func TestSamplingReadsLessThanExact(t *testing.T) {
	f, _ := testDataset(t, 100000, 1<<12, 1.1, 1024, 3)
	p := Params{U: 1 << 12, K: 10, Epsilon: 0.01, Seed: 2}
	two := run(t, NewTwoLevelS(), f, p)
	if two.Metrics.MapBytesRead >= f.Size() {
		t.Errorf("TwoLevel-S read %d bytes of a %d-byte file: sampling must not scan",
			two.Metrics.MapBytesRead, f.Size())
	}
}
