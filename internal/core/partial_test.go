package core

import (
	"context"
	"testing"

	"wavelethist/internal/datagen"
	"wavelethist/internal/hdfs"
	"wavelethist/internal/mapred"
)

func partialTestFile(t testing.TB) *hdfs.File {
	t.Helper()
	fs := hdfs.NewFileSystem(4, 4<<10)
	f, err := datagen.GenerateZipf(fs, "z", datagen.NewZipfSpec(1<<13, 1<<10, 1.1, 5))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestMapMergeMatchesRun: splitting a build into MapSplits + MergePartials
// reproduces Run bit-for-bit for every one-round method, in any partial
// arrival order.
func TestMapMergeMatchesRun(t *testing.T) {
	f := partialTestFile(t)
	ctx := context.Background()
	for _, name := range DistributableMethods() {
		if Rounds(name) != 1 || OneRound2D(name) {
			continue // multi-round: multiround_test.go; 2D: round2d_test.go
		}
		t.Run(name, func(t *testing.T) {
			p := Params{U: 1 << 10, K: 15, Epsilon: 0.01, Seed: 5}
			alg, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			want, err := alg.Run(ctx, f, p)
			if err != nil {
				t.Fatal(err)
			}
			m := NumSplits(f, p)
			if m < 2 {
				t.Fatalf("need multiple splits, have %d", m)
			}
			// Map the splits in two interleaved passes, merging in
			// reversed order: coverage, not arrival order, must matter.
			var parts []SplitPartial
			for _, ids := range [][]int{evens(m), odds(m)} {
				ps, err := MapSplits(ctx, f, name, p, ids)
				if err != nil {
					t.Fatal(err)
				}
				parts = append(parts, ps...)
			}
			for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
				parts[i], parts[j] = parts[j], parts[i]
			}
			got, err := MergePartials(ctx, f, name, p, parts)
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Rep.Coefs) != len(want.Rep.Coefs) {
				t.Fatalf("coef count: got %d, want %d", len(got.Rep.Coefs), len(want.Rep.Coefs))
			}
			for i := range want.Rep.Coefs {
				if got.Rep.Coefs[i] != want.Rep.Coefs[i] {
					t.Fatalf("coef %d: got %+v, want %+v", i, got.Rep.Coefs[i], want.Rep.Coefs[i])
				}
			}
			if got.Metrics.TotalCommBytes() != want.Metrics.TotalCommBytes() {
				t.Errorf("modeled comm: got %d, want %d",
					got.Metrics.TotalCommBytes(), want.Metrics.TotalCommBytes())
			}
			if got.Metrics.MapRecordsRead != want.Metrics.MapRecordsRead {
				t.Errorf("records read: got %d, want %d",
					got.Metrics.MapRecordsRead, want.Metrics.MapRecordsRead)
			}
		})
	}
}

func evens(m int) []int {
	var out []int
	for i := 0; i < m; i += 2 {
		out = append(out, i)
	}
	return out
}

func odds(m int) []int {
	var out []int
	for i := 1; i < m; i += 2 {
		out = append(out, i)
	}
	return out
}

// TestMergePartialsCoverage rejects missing, duplicate, and out-of-range
// split sets.
func TestMergePartialsCoverage(t *testing.T) {
	f := partialTestFile(t)
	ctx := context.Background()
	p := Params{U: 1 << 10, K: 10, Seed: 5}
	m := NumSplits(f, p)
	all := make([]int, m)
	for i := range all {
		all[i] = i
	}
	parts, err := MapSplits(ctx, f, "Send-V", p, all)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergePartials(ctx, f, "Send-V", p, parts[:m-1]); err == nil {
		t.Error("accepted missing split")
	}
	dup := append(append([]SplitPartial{}, parts[:m-1]...), parts[0])
	if _, err := MergePartials(ctx, f, "Send-V", p, dup); err == nil {
		t.Error("accepted duplicate split")
	}
	if _, err := MapSplits(ctx, f, "Send-V", p, []int{m}); err == nil {
		t.Error("accepted out-of-range split")
	}
	if _, err := MapSplits(ctx, f, "H-WTopk", p, []int{0}); err == nil {
		t.Error("accepted multi-round method")
	}
}

// TestEncodeDecodePartials round-trips the wire encoding and rejects
// corrupt payloads.
func TestEncodeDecodePartials(t *testing.T) {
	in := []SplitPartial{
		{
			SplitID: 3, Node: 2, RecordsRead: 100, BytesRead: 400,
			InputBytes: 400, CPUUnits: 12.5,
			Pairs: []mapred.KV{
				{Key: 7, Val: 2, Src: 3},
				{Key: 9, Val: -1.25, Src: 3, Tag: mapred.TagNull},
			},
		},
		{SplitID: 0, Node: 0, Pairs: nil},
	}
	b := EncodePartials(in)
	out, err := DecodePartials(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("count: got %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].SplitID != in[i].SplitID || out[i].CPUUnits != in[i].CPUUnits ||
			len(out[i].Pairs) != len(in[i].Pairs) {
			t.Fatalf("partial %d mismatch: %+v vs %+v", i, out[i], in[i])
		}
		for j := range in[i].Pairs {
			if out[i].Pairs[j] != in[i].Pairs[j] {
				t.Fatalf("pair %d/%d mismatch", i, j)
			}
		}
	}
	for _, bad := range [][]byte{nil, b[:4], b[:len(b)-3], append([]byte{255, 255, 255, 255, 255, 255, 255, 127}, b[8:]...)} {
		if _, err := DecodePartials(bad); err == nil {
			t.Errorf("decoded corrupt payload of %d bytes", len(bad))
		}
	}
}

// TestRunContextCancel: a canceled context aborts a simulated run.
func TestRunContextCancel(t *testing.T) {
	f := partialTestFile(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewSendV().Run(ctx, f, Params{U: 1 << 10, K: 10, Seed: 1}); err == nil {
		t.Fatal("expected cancellation error")
	}
	if _, err := NewHWTopk().Run(ctx, f, Params{U: 1 << 10, K: 10, Seed: 1}); err == nil {
		t.Fatal("expected cancellation error (multi-round)")
	}
}
