package core

import (
	"context"
	"testing"
)

// Regression: when k exceeds the number of non-zero coefficients, H-WTopk
// must not pad the top-k with exact-zero candidate coefficients — Send-V's
// sparse transform never emits zeros, and the two exact methods must agree
// (TestHWTopkEquivalenceQuick flaked on exactly such inputs).
func TestHWTopkNoZeroPadding(t *testing.T) {
	rawKeys := []uint16{0x4792, 0x4a87, 0xc23c, 0xe766, 0xabe4, 0xd473, 0x2645, 0x16e5, 0x9010, 0x8757, 0x5a75, 0x99be, 0x3a26, 0x3ea0, 0xe0ad, 0xca70, 0xa6a3, 0x1926, 0xbb20, 0xaa4b, 0x1952, 0x7777, 0xe25a, 0x7c3f, 0x24f9}
	const u, k = 16, 10 // the domain has only 9 non-zero coefficients
	fs := newTestFS(64)
	w, err := fs.Create("d", 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, rk := range rawKeys {
		w.Append(int64(rk) % u)
	}
	f := w.Close()
	p := Params{U: u, K: k, Seed: 9}
	sv, err := NewSendV().Run(context.Background(), f, p)
	if err != nil {
		t.Fatal(err)
	}
	hw, err := NewHWTopk().Run(context.Background(), f, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(sv.Rep.Coefs) != len(hw.Rep.Coefs) {
		t.Fatalf("Send-V kept %d coefficients, H-WTopk %d", len(sv.Rep.Coefs), len(hw.Rep.Coefs))
	}
	for _, c := range hw.Rep.Coefs {
		if c.Value == 0 {
			t.Fatalf("H-WTopk kept zero coefficient at index %d", c.Index)
		}
	}
}
