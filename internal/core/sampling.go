package core

import (
	"context"
	"math"

	"wavelethist/internal/hdfs"
	"wavelethist/internal/mapred"
	"wavelethist/internal/wavelet"
)

// The three sampling algorithms of Section 4. All use the paper's
// RandomInputFile format: split j samples p·n_j records without
// replacement (p = 1/(ε²n), capped at 1), so no algorithm scans its whole
// split — the property that makes sampling the only one-round strategy
// that also avoids reading the entire dataset.

// sampleProb returns p = min(1, 1/(ε²n)).
func sampleProb(eps float64, n int64) float64 {
	p := 1 / (eps * eps * float64(n))
	if p > 1 {
		return 1
	}
	return p
}

// ---------- Basic-S ----------

// BasicS emits every sampled key: (x, 1) pairs aggregated by the Combine
// function when enabled (the paper's "straightforward improvement", whose
// effectiveness depends entirely on the data distribution).
type BasicS struct{}

// NewBasicS returns the Basic-S algorithm.
func NewBasicS() *BasicS { return &BasicS{} }

// Name implements Algorithm.
func (*BasicS) Name() string { return "Basic-S" }

type basicSMapper struct {
	u int64
}

func (m basicSMapper) Setup(*mapred.TaskContext) error { return nil }

func (m basicSMapper) Map(ctx *mapred.TaskContext, rec hdfs.Record, out *mapred.Emitter) error {
	if err := checkDomain(rec.Key, m.u); err != nil {
		return err
	}
	out.Emit(mapred.KV{Key: rec.Key, Val: 1, Src: int32(ctx.SplitID)})
	return nil
}

func (basicSMapper) Close(*mapred.TaskContext, *mapred.Emitter) error { return nil }

// scaleReducer accumulates sampled counts ŝ(x) and, at Close, rescales to
// v̂ = ŝ/p, transforms, and selects the top-k. Shared by Basic-S and
// Improved-S.
type scaleReducer struct {
	u    int64
	k    int
	p    float64
	sHat map[int64]float64
	rep  *wavelet.Representation
}

func (r *scaleReducer) Setup(*mapred.TaskContext) error {
	r.sHat = make(map[int64]float64)
	return nil
}

func (r *scaleReducer) Reduce(_ *mapred.TaskContext, key int64, vals []mapred.KV) error {
	for _, kv := range vals {
		r.sHat[key] += kv.Val
	}
	return nil
}

func (r *scaleReducer) Close(ctx *mapred.TaskContext) error {
	vHat := make(map[int64]float64, len(r.sHat))
	for x, s := range r.sHat {
		vHat[x] = s / r.p
	}
	coefs := localCoefficients(ctx, vHat, r.u)
	ctx.AddWork(float64(len(coefs)))
	r.rep = wavelet.NewRepresentation(r.u, wavelet.SelectTopK(coefs, r.k))
	return nil
}

func (r *scaleReducer) representation() *wavelet.Representation { return r.rep }

func sumCombiner(key int64, vals []mapred.KV) []mapred.KV {
	var s float64
	for _, kv := range vals {
		s += kv.Val
	}
	return []mapred.KV{{Key: key, Val: s, Src: vals[0].Src}}
}

// Run implements Algorithm.
func (a *BasicS) Run(ctx context.Context, file *hdfs.File, p Params) (*Output, error) {
	return runOneRound(ctx, a, file, p)
}

// makeJob implements oneRounder.
func (a *BasicS) makeJob(file *hdfs.File, p Params) (*mapred.Job, repReducer) {
	prob := sampleProb(p.Epsilon, file.NumRecords)
	red := &scaleReducer{u: p.U, k: p.K, p: prob}
	var comb mapred.Combiner
	if p.CombineEnabled {
		comb = sumCombiner
	}
	job := &mapred.Job{
		Name:      "basic-s",
		Splits:    file.Splits(p.SplitSize),
		Input:     mapred.RandomSampleInput{P: prob},
		NewMapper: func(hdfs.Split) mapred.Mapper { return basicSMapper{u: p.U} },
		Combiner:  comb,
		Reducer:   red,
		// (x, count): 4-byte key + 4-byte count.
		PairBytes:   func(mapred.KV) int { return 8 },
		Streaming:   true,
		Seed:        p.Seed,
		Parallelism: p.Parallelism,
	}
	return job, red
}

// ---------- Improved-S ----------

// ImprovedS drops sampled keys with small local counts: split j emits
// (x, s_j(x)) only when s_j(x) >= ε·t_j, capping per-split communication
// at 1/ε pairs — but biasing the estimator by up to εn (Section 4).
type ImprovedS struct{}

// NewImprovedS returns the Improved-S algorithm.
func NewImprovedS() *ImprovedS { return &ImprovedS{} }

// Name implements Algorithm.
func (*ImprovedS) Name() string { return "Improved-S" }

type improvedSMapper struct {
	u       int64
	eps     float64
	sampled int64
	counts  map[int64]float64
}

func (m *improvedSMapper) Setup(*mapred.TaskContext) error {
	m.counts = make(map[int64]float64)
	return nil
}

func (m *improvedSMapper) Map(ctx *mapred.TaskContext, rec hdfs.Record, _ *mapred.Emitter) error {
	if err := checkDomain(rec.Key, m.u); err != nil {
		return err
	}
	m.sampled++
	m.counts[rec.Key]++
	return nil
}

func (m *improvedSMapper) Close(ctx *mapred.TaskContext, out *mapred.Emitter) error {
	threshold := m.eps * float64(m.sampled) // ε·t_j
	for x, s := range m.counts {
		if s >= threshold {
			out.Emit(mapred.KV{Key: x, Val: s, Src: int32(ctx.SplitID)})
		}
	}
	ctx.AddWork(float64(len(m.counts)))
	return nil
}

// Run implements Algorithm.
func (a *ImprovedS) Run(ctx context.Context, file *hdfs.File, p Params) (*Output, error) {
	return runOneRound(ctx, a, file, p)
}

// makeJob implements oneRounder.
func (a *ImprovedS) makeJob(file *hdfs.File, p Params) (*mapred.Job, repReducer) {
	prob := sampleProb(p.Epsilon, file.NumRecords)
	red := &scaleReducer{u: p.U, k: p.K, p: prob}
	job := &mapred.Job{
		Name:   "improved-s",
		Splits: file.Splits(p.SplitSize),
		Input:  mapred.RandomSampleInput{P: prob},
		NewMapper: func(hdfs.Split) mapred.Mapper {
			return &improvedSMapper{u: p.U, eps: p.Epsilon}
		},
		Reducer:     red,
		PairBytes:   func(mapred.KV) int { return 8 },
		Streaming:   true,
		Seed:        p.Seed,
		Parallelism: p.Parallelism,
	}
	return job, red
}

// ---------- TwoLevel-S ----------

// TwoLevelS is the paper's new two-level sampling algorithm (Section 4,
// Figures 3-4): after level-1 sampling, split j emits (x, s_j(x)) when
// s_j(x) >= 1/(ε√m) and otherwise emits (x, NULL) with probability
// ε√m·s_j(x) — importance sampling proportional to frequency. The reducer
// reconstructs the unbiased estimator ŝ(x) = ρ(x) + M(x)/(ε√m) with
// standard deviation <= 1/ε (Theorem 1), for O(√m/ε) expected
// communication (Theorem 3).
type TwoLevelS struct{}

// NewTwoLevelS returns the TwoLevel-S algorithm.
func NewTwoLevelS() *TwoLevelS { return &TwoLevelS{} }

// Name implements Algorithm.
func (*TwoLevelS) Name() string { return "TwoLevel-S" }

type twoLevelSMapper struct {
	u      int64
	eps    float64
	m      int
	counts map[int64]float64
}

func (t *twoLevelSMapper) Setup(*mapred.TaskContext) error {
	t.counts = make(map[int64]float64)
	return nil
}

func (t *twoLevelSMapper) Map(ctx *mapred.TaskContext, rec hdfs.Record, _ *mapred.Emitter) error {
	if err := checkDomain(rec.Key, t.u); err != nil {
		return err
	}
	t.counts[rec.Key]++
	return nil
}

func (t *twoLevelSMapper) Close(ctx *mapred.TaskContext, out *mapred.Emitter) error {
	epsSqrtM := t.eps * math.Sqrt(float64(t.m))
	threshold := 1 / epsSqrtM
	// Iterate keys in sorted order: the Bernoulli draws consume the
	// task's RNG stream, so the iteration order must be deterministic.
	keys, counts := wavelet.SortFreq(t.counts)
	for i, x := range keys {
		s := counts[i]
		if s >= threshold {
			out.Emit(mapred.KV{Key: x, Val: s, Src: int32(ctx.SplitID)})
		} else if ctx.RNG.Bernoulli(epsSqrtM * s) {
			out.Emit(mapred.KV{Key: x, Src: int32(ctx.SplitID), Tag: mapred.TagNull})
		}
	}
	ctx.AddWork(float64(len(t.counts)))
	return nil
}

// twoLevelSReducer reconstructs ŝ(x) = ρ(x) + M(x)/(ε√m) (Figure 4).
type twoLevelSReducer struct {
	u        int64
	k        int
	p        float64
	epsSqrtM float64
	rho      map[int64]float64
	nulls    map[int64]int64
	rep      *wavelet.Representation
}

func (r *twoLevelSReducer) Setup(*mapred.TaskContext) error {
	r.rho = make(map[int64]float64)
	r.nulls = make(map[int64]int64)
	return nil
}

func (r *twoLevelSReducer) Reduce(_ *mapred.TaskContext, key int64, vals []mapred.KV) error {
	for _, kv := range vals {
		if kv.Tag == mapred.TagNull {
			r.nulls[key]++
		} else {
			r.rho[key] += kv.Val
		}
	}
	return nil
}

func (r *twoLevelSReducer) Close(ctx *mapred.TaskContext) error {
	vHat := make(map[int64]float64, len(r.rho)+len(r.nulls))
	for x, rho := range r.rho {
		vHat[x] += rho
	}
	for x, m := range r.nulls {
		vHat[x] += float64(m) / r.epsSqrtM
	}
	for x := range vHat {
		vHat[x] /= r.p
	}
	coefs := localCoefficients(ctx, vHat, r.u)
	ctx.AddWork(float64(len(coefs)))
	r.rep = wavelet.NewRepresentation(r.u, wavelet.SelectTopK(coefs, r.k))
	return nil
}

func (r *twoLevelSReducer) representation() *wavelet.Representation { return r.rep }

// Run implements Algorithm.
func (a *TwoLevelS) Run(ctx context.Context, file *hdfs.File, p Params) (*Output, error) {
	return runOneRound(ctx, a, file, p)
}

// makeJob implements oneRounder.
func (a *TwoLevelS) makeJob(file *hdfs.File, p Params) (*mapred.Job, repReducer) {
	splits := file.Splits(p.SplitSize)
	m := len(splits)
	prob := sampleProb(p.Epsilon, file.NumRecords)
	red := &twoLevelSReducer{
		u: p.U, k: p.K, p: prob,
		epsSqrtM: p.Epsilon * math.Sqrt(float64(m)),
	}
	job := &mapred.Job{
		Name:   "twolevel-s",
		Splits: splits,
		Input:  mapred.RandomSampleInput{P: prob},
		NewMapper: func(hdfs.Split) mapred.Mapper {
			return &twoLevelSMapper{u: p.U, eps: p.Epsilon, m: m}
		},
		Reducer: red,
		// (x, s_j(x)) ships 4+4 bytes; (x, NULL) ships the 4-byte key
		// only (the paper's communication analysis counts keys).
		PairBytes: func(kv mapred.KV) int {
			if kv.Tag == mapred.TagNull {
				return 4
			}
			return 8
		},
		Streaming:   true,
		Seed:        p.Seed,
		Parallelism: p.Parallelism,
	}
	return job, red
}
