package core

import (
	"context"
	"testing"
	"testing/quick"

	"wavelethist/internal/hdfs"
	"wavelethist/internal/wavelet"
)

func newTestFS(chunk int64) *hdfs.FileSystem {
	return hdfs.NewFileSystem(4, chunk)
}

func TestCoefsRoundTrip(t *testing.T) {
	coefs := []wavelet.Coef{{Index: 0, Value: 1.5}, {Index: 1 << 30, Value: -2.25}, {Index: 7, Value: 0}}
	got, err := decodeCoefs(encodeCoefs(coefs))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(coefs) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range coefs {
		if got[i] != coefs[i] {
			t.Errorf("coef %d: %+v != %+v", i, got[i], coefs[i])
		}
	}
}

func TestCoefsRoundTripEmpty(t *testing.T) {
	got, err := decodeCoefs(encodeCoefs(nil))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty round trip: %v, %v", got, err)
	}
}

// Failure injection: corrupted or truncated state files must error, not
// panic or silently misdecode.
func TestDecodeCoefsCorrupt(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		encodeCoefs([]wavelet.Coef{{Index: 1, Value: 2}})[:12], // truncated body
	}
	// Length field claiming more entries than present.
	big := encodeCoefs(nil)
	big[0] = 200
	cases = append(cases, big)
	for i, b := range cases {
		if _, err := decodeCoefs(b); err == nil {
			t.Errorf("case %d: corrupt state accepted", i)
		}
	}
}

func TestDecodersQuickNeverPanic(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = decodeCoefs(b)      // must not panic
		_, _ = decodeCoordState(b) // must not panic
		_, _ = decodeIndexSet(b)   // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestCoordStateRoundTrip(t *testing.T) {
	cs := &coordState{m: 70, t1: 3.25, entries: map[int64]*coordEntry{}}
	e1 := &coordEntry{wHat: -5.5, recv: newBitset(70)}
	e1.recv.Set(0)
	e1.recv.Set(63)
	e1.recv.Set(69)
	cs.entries[42] = e1
	e2 := &coordEntry{wHat: 9, recv: newBitset(70)}
	cs.entries[7] = e2

	got, err := decodeCoordState(cs.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.m != 70 || got.t1 != 3.25 || len(got.entries) != 2 {
		t.Fatalf("header mismatch: %+v", got)
	}
	g1 := got.entries[42]
	if g1 == nil || g1.wHat != -5.5 {
		t.Fatalf("entry 42 = %+v", g1)
	}
	for _, bit := range []int{0, 63, 69} {
		if !g1.recv.Get(bit) {
			t.Errorf("bit %d lost", bit)
		}
	}
	if g1.recv.Count() != 3 {
		t.Errorf("count = %d", g1.recv.Count())
	}
	if got.entries[7].recv.Count() != 0 {
		t.Error("entry 7 should have no received bits")
	}
}

func TestDecodeCoordStateCorrupt(t *testing.T) {
	cases := [][]byte{nil, {1}, make([]byte, 23)}
	cs := &coordState{m: 4, t1: 1, entries: map[int64]*coordEntry{
		1: {wHat: 2, recv: newBitset(4)},
	}}
	enc := cs.encode()
	cases = append(cases, enc[:len(enc)-4]) // truncated entry
	for i, b := range cases {
		if _, err := decodeCoordState(b); err == nil {
			t.Errorf("case %d: corrupt coordinator state accepted", i)
		}
	}
}

func TestIndexSetRoundTrip(t *testing.T) {
	ids := []int64{0, 1, 42, 1<<32 - 1}
	got, err := decodeIndexSet(encodeIndexSet(ids))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ids) {
		t.Fatalf("len = %d", len(got))
	}
	for _, id := range ids {
		if !got[id] {
			t.Errorf("id %d lost", id)
		}
	}
}

func TestDecodeIndexSetCorrupt(t *testing.T) {
	enc := encodeIndexSet([]int64{1, 2, 3})
	cases := [][]byte{nil, {9}, enc[:10]}
	bad := append([]byte(nil), enc...)
	bad[8] = 7 // invalid width byte
	cases = append(cases, bad)
	for i, b := range cases {
		if _, err := decodeIndexSet(b); err == nil {
			t.Errorf("case %d: corrupt index set accepted", i)
		}
	}
}

func TestBitsetForEachSet(t *testing.T) {
	b := newBitset(130)
	want := []int{0, 1, 64, 65, 127, 129}
	for _, i := range want {
		b.Set(i)
	}
	var got []int
	b.ForEachSet(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("got[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestBitsetQuick(t *testing.T) {
	f := func(raw []uint16, sizeSel uint8) bool {
		n := int(sizeSel)%200 + 1
		b := newBitset(n)
		ref := make(map[int]bool)
		for _, r := range raw {
			i := int(r) % n
			b.Set(i)
			ref[i] = true
		}
		if b.Count() != len(ref) {
			return false
		}
		for i := 0; i < n; i++ {
			if b.Get(i) != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// End-to-end property: H-WTopk returns exactly Send-V's coefficient
// magnitudes on arbitrary random datasets (domains, skews, split sizes).
func TestHWTopkEquivalenceQuick(t *testing.T) {
	f := func(rawKeys []uint16, uSel, kSel, chunkSel uint8) bool {
		if len(rawKeys) == 0 {
			return true
		}
		u := int64(1) << (4 + uSel%6) // 16..512
		k := int(kSel%12) + 1
		chunk := int64(64) << (chunkSel % 4) // 64..512 bytes
		fs := newTestFS(chunk)
		w, err := fs.Create("d", 4)
		if err != nil {
			return false
		}
		for _, rk := range rawKeys {
			w.Append(int64(rk) % u)
		}
		f := w.Close()
		p := Params{U: u, K: k, Seed: 9}
		sv, err := NewSendV().Run(context.Background(), f, p)
		if err != nil {
			return false
		}
		hw, err := NewHWTopk().Run(context.Background(), f, p)
		if err != nil {
			return false
		}
		if len(sv.Rep.Coefs) != len(hw.Rep.Coefs) {
			return false
		}
		for i := range sv.Rep.Coefs {
			a, b := sv.Rep.Coefs[i].Value, hw.Rep.Coefs[i].Value
			if abs(abs(a)-abs(b)) > 1e-9*(1+abs(a)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
