package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"wavelethist/internal/hdfs"
	"wavelethist/internal/mapred"
	"wavelethist/internal/wavelet"
)

// Multi-round distributed execution. The one-round methods decompose into
// stateless mergeable partials (partial.go); H-WTopk is a three-round
// protocol with coordinator feedback between rounds:
//
//	round 1  workers scan their splits, ship top/bottom-k pairs, and
//	         persist unsent coefficients as per-job state
//	round 2  the coordinator broadcasts T1/m; workers ship every held
//	         coefficient above it and persist the remainder
//	round 3  the coordinator broadcasts the candidate set R; workers ship
//	         held coefficients for candidates; the coordinator finalizes
//
// The split between the two halves mirrors partial.go: MapRoundSplits is
// the worker half (map side of one round over a per-job state lease),
// RoundPlan is the coordinator half (reduce side, threshold math between
// rounds, broadcast blobs). Because per-split state is round-versioned
// (hwtopk.go) and the mappers are deterministic, any worker can recover a
// split it never ran by replaying the earlier rounds' map side locally —
// the coordinator re-runs only work, never loses it.

// Multi-round method names (the 1D and packed-2D instantiations share the
// protocol; only the transform and the final representation differ).
const (
	MethodHWTopk   = "H-WTopk"
	MethodHWTopk2D = "H-WTopk-2D"
)

// ErrUnsupportedMethod reports a method that cannot run on the distributed
// fleet. Match with errors.Is.
var ErrUnsupportedMethod = errors.New("method does not support distributed execution")

// UnsupportedMethodError builds the user-facing form of
// ErrUnsupportedMethod, listing every supported method.
func UnsupportedMethodError(name string) error {
	return fmt.Errorf("%w: %q (supported: %s)",
		ErrUnsupportedMethod, name, strings.Join(DistributableMethods(), ", "))
}

// Rounds reports how many distributed rounds a method needs: 1 for the
// mergeable one-round methods (1D and 2D), 3 for H-WTopk (1D and 2D), 0
// when the method is unknown or not distributable.
func Rounds(method string) int {
	switch method {
	case MethodHWTopk, MethodHWTopk2D:
		return 3
	}
	if a, err := ByName(method); err == nil {
		if _, ok := a.(oneRounder); ok {
			return 1
		}
	}
	if OneRound2D(method) {
		return 1
	}
	return 0
}

// hwSetup resolves a multi-round method to its defaulted params, key
// domain and coefficient transform.
func hwSetup(method string, p Params) (Params, int64, coefTransform, error) {
	p = p.Defaults()
	switch method {
	case MethodHWTopk:
		if err := p.validate(); err != nil {
			return p, 0, nil, err
		}
		return p, p.U, transform1D(p.U), nil
	case MethodHWTopk2D:
		packed, err := check2DDomain(p.U)
		if err != nil {
			return p, 0, nil, err
		}
		// Validate k/epsilon independently of U (which is the grid side
		// here, not the packed domain).
		if err := (Params{U: 2, K: p.K, Epsilon: p.Epsilon}).Defaults().validate(); err != nil {
			return p, 0, nil, err
		}
		return p, packed, transform2D(p.U), nil
	default:
		return p, 0, nil, UnsupportedMethodError(method)
	}
}

// ---------- broadcast codec ----------

// Round broadcasts are binary blobs shipped inside map RPCs: round 2
// carries T1/m, round 3 carries T1/m plus the candidate set R. T1/m rides
// along in round 3 (though the paper's drivers only ship it once) so a
// fresh worker can replay round 2 for an orphaned split without any other
// context — recovery is self-contained in the request.
func encodeHWBroadcast(round int, t1OverM float64, r []int64) []byte {
	b := mapred.AppendInt64(nil, int64(round))
	b = mapred.AppendFloat64(b, t1OverM)
	if round >= 3 {
		b = append(b, encodeIndexSet(r)...)
	}
	return b
}

func decodeHWBroadcast(round int, b []byte) (t1OverM float64, rSet []byte, err error) {
	if len(b) < 16 {
		return 0, nil, fmt.Errorf("core: truncated round-%d broadcast", round)
	}
	tag, off := mapred.ReadInt64(b, 0)
	if int(tag) != round {
		return 0, nil, fmt.Errorf("core: broadcast is for round %d, want %d", tag, round)
	}
	t1OverM, off = mapred.ReadFloat64(b, off)
	if round >= 3 {
		if len(b) <= off {
			return 0, nil, fmt.Errorf("core: round-3 broadcast missing candidate set")
		}
		rSet = b[off:]
	}
	return t1OverM, rSet, nil
}

// ---------- worker half ----------

// WorkerState is a worker's per-job state lease: the round-versioned
// per-split state files a multi-round method persists between rounds.
// Safe for concurrent use (assignments for one job may run in parallel on
// disjoint splits).
type WorkerState struct {
	store *mapred.StateStore
}

// NewWorkerState returns an empty lease store.
func NewWorkerState() *WorkerState {
	return &WorkerState{store: mapred.NewStateStore()}
}

// Entries reports how many state files the lease holds.
func (ws *WorkerState) Entries() int { return ws.store.Len() }

// Bytes reports the lease's total payload size.
func (ws *WorkerState) Bytes() int64 { return ws.store.TotalBytes() }

// MapRoundSplits runs one round's map side over the given splits — the
// worker half of a multi-round distributed build. State produced by
// earlier rounds is read from (and new state written to) ws. Splits whose
// earlier-round state is missing — the worker never ran them, or its
// lease expired — are recovered by replaying the earlier rounds' map side
// locally (pairs discarded; determinism makes the replayed state
// byte-identical to the lost original); their ids are returned in
// replayed. bcast is the coordinator's broadcast blob for this round (nil
// for round 1).
func MapRoundSplits(ctx context.Context, file *hdfs.File, method string, p Params, round int, bcast []byte, splitIDs []int, ws *WorkerState) (parts []SplitPartial, replayed []int, err error) {
	if Rounds(method) == 1 && round <= 1 {
		parts, err = MapSplits(ctx, file, method, p, splitIDs)
		return parts, nil, err
	}
	p, domain, tf, err := hwSetup(method, p)
	if err != nil {
		return nil, nil, err
	}
	if ws == nil {
		return nil, nil, fmt.Errorf("core: %s round %d needs a worker state lease", method, round)
	}
	pl := newHWPlan(file, p, domain, tf, ws.store)
	if round < 1 || round > 3 {
		return nil, nil, fmt.Errorf("core: %s has no round %d", method, round)
	}
	if round >= 2 {
		t1OverM, rSet, derr := decodeHWBroadcast(round, bcast)
		if derr != nil {
			return nil, nil, derr
		}
		pl.setThreshold(t1OverM)
		if round == 3 {
			pl.cache.Put(cacheRName, rSet)
		}
	}
	m := len(pl.splits)
	for _, id := range splitIDs {
		if id < 0 || id >= m {
			return nil, nil, fmt.Errorf("core: %s: split %d out of range [0, %d)", method, id, m)
		}
	}
	// Fan the assigned splits out across GOMAXPROCS goroutines, like
	// MapSplits: each goroutine builds its own round Job (they share the
	// plan's mutex-guarded Conf/Cache/State triple), results land in
	// position-indexed slots, and per-split state writes are disjoint, so
	// the output is bit-identical to a serial pass.
	parts = make([]SplitPartial, len(splitIDs))
	rep := make([]bool, len(splitIDs))
	err = forEachSplit(ctx, p, len(splitIDs), func(ctx context.Context, i int) error {
		id := splitIDs[i]
		replay, rerr := pl.ensureSplitState(ctx, round, id)
		if rerr != nil {
			return rerr
		}
		rep[i] = replay
		r, rerr := mapred.RunMapSplit(ctx, pl.job(round), id)
		if rerr != nil {
			return rerr
		}
		parts[i] = SplitPartial{
			SplitID:     id,
			Node:        r.Metrics.Node,
			Pairs:       r.Pairs,
			RecordsRead: r.RecordsRead,
			BytesRead:   r.BytesRead,
			InputBytes:  r.Metrics.InputBytes,
			CPUUnits:    r.Metrics.CPUUnits,
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	for i, id := range splitIDs {
		if rep[i] {
			replayed = append(replayed, id)
		}
	}
	return parts, replayed, nil
}

// ensureSplitState replays earlier rounds' map side for a split whose
// state this worker does not hold. Replay emissions are discarded — the
// coordinator already received them from the split's original owner (the
// round barrier guarantees every earlier round completed over all splits).
func (pl *hwPlan) ensureSplitState(ctx context.Context, round, id int) (replayed bool, err error) {
	if round >= 2 && pl.state.Get(hwStateR1(id)) == nil {
		if round == 3 && pl.state.Get(hwStateR2(id)) != nil {
			return false, nil // round-2 state survived; round 1's is not needed
		}
		if _, err := mapred.RunMapSplit(ctx, pl.job(1), id); err != nil {
			return false, fmt.Errorf("replaying round 1 for split %d: %w", id, err)
		}
		replayed = true
	}
	if round == 3 && pl.state.Get(hwStateR2(id)) == nil {
		if _, err := mapred.RunMapSplit(ctx, pl.job(2), id); err != nil {
			return replayed, fmt.Errorf("replaying round 2 for split %d: %w", id, err)
		}
		replayed = true
	}
	return replayed, nil
}

// ---------- coordinator half ----------

// RoundPlan drives a multi-round method from the coordinator: it owns the
// reducer state across rounds, produces each round's broadcast blob, and
// merges the workers' per-round partials. Usage, per round r = 1..NumRounds:
//
//	blob := plan.Broadcast(r)            // nil for round 1
//	parts := <fan r out to the fleet with blob>
//	plan.ReduceRound(ctx, r, parts)
//
// then Output (1D) or Output2D. Not safe for concurrent use.
type RoundPlan struct {
	method string
	p      Params
	pl     *hwPlan
	m      int

	start            time.Time
	round            int // last reduced round
	metrics          Metrics
	pendingBroadcast int64 // modeled bytes charged to the next round
	candidates       int
	top              []wavelet.Coef
}

// NewRoundPlan prepares a multi-round distributed build of method over
// file. Returns ErrUnsupportedMethod (wrapped) for non-multi-round
// methods.
func NewRoundPlan(file *hdfs.File, method string, p Params) (*RoundPlan, error) {
	p, domain, tf, err := hwSetup(method, p)
	if err != nil {
		return nil, err
	}
	pl := newHWPlan(file, p, domain, tf, mapred.NewStateStore())
	return &RoundPlan{
		method: method,
		p:      p,
		pl:     pl,
		m:      len(pl.splits),
		start:  time.Now(),
	}, nil
}

// NumRounds reports the protocol's round count.
func (rp *RoundPlan) NumRounds() int { return 3 }

// NumSplits reports the per-round assignment unit count.
func (rp *RoundPlan) NumSplits() int { return rp.m }

// Candidates reports |R| — the candidate-set size broadcast before round 3
// (0 until round 2 has been reduced).
func (rp *RoundPlan) Candidates() int { return rp.candidates }

// Metrics returns the accumulated modeled metrics (valid after the final
// ReduceRound).
func (rp *RoundPlan) Metrics() Metrics { return rp.metrics }

// Broadcast returns the blob workers need for round r (nil for round 1)
// and records its modeled broadcast cost against that round. Call after
// ReduceRound(r-1).
func (rp *RoundPlan) Broadcast(round int) []byte {
	switch round {
	case 2:
		t1OverM := rp.pl.red1.T1 / float64(rp.m)
		rp.pl.setThreshold(t1OverM)
		rp.pendingBroadcast = 8 // the T1/m conf value
		return encodeHWBroadcast(2, t1OverM, nil)
	case 3:
		t1OverM, _ := rp.pl.threshold()
		r := rp.pl.red2.R
		rp.candidates = len(r)
		rp.metrics.CandidateSetSize = len(r)
		rp.pendingBroadcast = rp.pl.publishR(r)
		return encodeHWBroadcast(3, t1OverM, r)
	default:
		return nil
	}
}

// ReduceRound merges one round's partials — which must cover every split
// exactly once — through the round's reducer, exactly as the simulated
// runtime would (batches consumed in split order, so float accumulation is
// bit-identical).
func (rp *RoundPlan) ReduceRound(ctx context.Context, round int, parts []SplitPartial) error {
	if round != rp.round+1 {
		return fmt.Errorf("core: %s: reduce of round %d after round %d", rp.method, round, rp.round)
	}
	if len(parts) != rp.m {
		return fmt.Errorf("core: %s round %d: have %d partials, want one per split (%d)",
			rp.method, round, len(parts), rp.m)
	}
	ordered := make([]SplitPartial, len(parts))
	copy(ordered, parts)
	sort.Slice(ordered, func(a, b int) bool { return ordered[a].SplitID < ordered[b].SplitID })

	batches := make([][]mapred.KV, rp.m)
	res := &mapred.Result{MapTasks: make([]mapred.TaskMetrics, rp.m)}
	for i, part := range ordered {
		if part.SplitID != i {
			return fmt.Errorf("core: %s round %d: partials do not cover split %d exactly once",
				rp.method, round, i)
		}
		batches[i] = part.Pairs
		res.MapTasks[i] = mapred.TaskMetrics{
			SplitID:    part.SplitID,
			Node:       part.Node,
			InputBytes: part.InputBytes,
			CPUUnits:   part.CPUUnits,
		}
		res.Counters.MapRecordsRead += part.RecordsRead
		res.Counters.MapBytesRead += part.BytesRead
	}
	rres, err := mapred.RunReduce(ctx, rp.pl.job(round), batches)
	if err != nil {
		return err
	}
	res.ShuffleBytes = rres.ShuffleBytes
	res.PairsShuffled = rres.PairsShuffled
	res.ReduceCPU = rres.ReduceCPU
	res.ReduceCalls = rres.ReduceCalls
	rp.metrics.addRound(res, rp.pendingBroadcast)
	rp.pendingBroadcast = 0
	rp.round = round
	if round == rp.NumRounds() {
		rp.top = rp.pl.red3.top
		rp.metrics.WallTime = time.Since(rp.start)
	}
	return nil
}

// Output wraps the finished 1D build.
func (rp *RoundPlan) Output() (*Output, error) {
	if err := rp.finished(); err != nil {
		return nil, err
	}
	if rp.method != MethodHWTopk {
		return nil, fmt.Errorf("core: %s is not a 1D method (use Output2D)", rp.method)
	}
	return &Output{Rep: wavelet.NewRepresentation(rp.p.U, rp.top), Metrics: rp.metrics}, nil
}

// Output2D wraps the finished 2D build.
func (rp *RoundPlan) Output2D() (*Output2D, error) {
	if err := rp.finished(); err != nil {
		return nil, err
	}
	if rp.method != MethodHWTopk2D {
		return nil, fmt.Errorf("core: %s is not a 2D method (use Output)", rp.method)
	}
	return &Output2D{Rep: wavelet.NewRepresentation2D(rp.p.U, rp.top), Metrics: rp.metrics}, nil
}

func (rp *RoundPlan) finished() error {
	if rp.round != rp.NumRounds() {
		return fmt.Errorf("core: %s: only %d of %d rounds reduced", rp.method, rp.round, rp.NumRounds())
	}
	return nil
}
