// Package core implements the paper's algorithms as MapReduce jobs over
// the simulated Hadoop runtime:
//
//	Exact:        Send-V, Send-Coef (baselines, Section 3) and H-WTopk
//	              (the new three-round modified-TPUT algorithm).
//	Approximate:  Basic-S, Improved-S (Section 4 baselines), TwoLevel-S
//	              (the new two-level sampling algorithm), and Send-Sketch
//	              (GCS wavelet sketches).
//
// Every algorithm consumes an HDFS file of keyed records and produces the
// (best or approximate) k-term wavelet representation of the global
// key-frequency vector, along with exact communication accounting and the
// per-round work profiles the cluster cost model turns into running time.
package core

import (
	"context"
	"fmt"
	"time"

	"wavelethist/internal/cluster"
	"wavelethist/internal/hdfs"
	"wavelethist/internal/mapred"
	"wavelethist/internal/wavelet"
)

// Params configures an algorithm run.
type Params struct {
	// U is the key domain size (power of two). Keys outside [0, U) are
	// rejected at transform time.
	U int64
	// K is the number of retained wavelet coefficients (default 30, the
	// paper's default).
	K int
	// Epsilon is the sampling error parameter ε (sampling algorithms).
	Epsilon float64
	// SplitSize is the MapReduce split size β in bytes (0 = chunk size).
	SplitSize int64
	// Seed drives all randomized choices deterministically.
	Seed uint64
	// Parallelism bounds concurrent simulated mappers (0 = GOMAXPROCS).
	Parallelism int

	// CombineEnabled toggles the Combine function for Basic-S (the
	// paper's "straightforward improvement"); default true via Defaults.
	CombineEnabled bool

	// SketchBytes is the per-split GCS budget for Send-Sketch
	// (0 = the paper's 20KB·log2(u) recommendation).
	SketchBytes int64
	// SketchDegree is the GCS search-tree degree (0 = 8, "GCS-8").
	SketchDegree int
}

// Defaults fills unset fields with the paper's defaults.
func (p Params) Defaults() Params {
	if p.K == 0 {
		p.K = 30
	}
	if p.Epsilon == 0 {
		p.Epsilon = 1e-3
	}
	if p.SketchDegree == 0 {
		p.SketchDegree = 8
	}
	return p
}

func (p Params) validate() error {
	if !wavelet.IsPowerOfTwo(p.U) {
		return fmt.Errorf("core: domain %d is not a power of two", p.U)
	}
	if p.K < 1 {
		return fmt.Errorf("core: k must be >= 1")
	}
	if p.Epsilon <= 0 || p.Epsilon >= 1 {
		return fmt.Errorf("core: epsilon %v out of (0,1)", p.Epsilon)
	}
	return nil
}

// Metrics reports a run's costs.
type Metrics struct {
	Rounds         int
	ShuffleBytes   int64 // intermediate pairs crossing the network
	BroadcastBytes int64 // job-conf / distributed-cache payloads
	PairsShuffled  int64
	MapRecordsRead int64
	MapBytesRead   int64
	RoundCosts     []cluster.RoundCost // feed to cluster.JobTime
	WallTime       time.Duration       // real CPU time of the simulation
	// CandidateSetSize is |R| — the candidate set H-WTopk broadcasts
	// before round 3 (0 for one-round methods).
	CandidateSetSize int
}

// TotalCommBytes is the paper's "communication" metric: all bytes that
// cross the switch (shuffle plus coordinator broadcasts).
func (m Metrics) TotalCommBytes() int64 { return m.ShuffleBytes + m.BroadcastBytes }

// SimulatedSeconds runs the cluster cost model over the recorded rounds.
func (m Metrics) SimulatedSeconds(c *cluster.Cluster) float64 {
	return c.JobTime(m.RoundCosts)
}

// Output is an algorithm's result.
type Output struct {
	Rep     *wavelet.Representation
	Metrics Metrics
}

// Algorithm is a wavelet-histogram construction method.
type Algorithm interface {
	// Name returns the paper's name for the method (e.g. "TwoLevel-S").
	Name() string
	// Run builds the k-term representation of file's key frequencies.
	// Cancellation of ctx aborts the build with ctx.Err().
	Run(ctx context.Context, file *hdfs.File, p Params) (*Output, error)
}

// addRound folds one MapReduce round's result into the metrics.
// broadcastBytes covers conf/cache payloads shipped to slaves this round.
func (m *Metrics) addRound(res *mapred.Result, broadcastBytes int64) {
	m.Rounds++
	m.ShuffleBytes += res.ShuffleBytes
	m.BroadcastBytes += broadcastBytes
	m.PairsShuffled += res.PairsShuffled
	m.MapRecordsRead += res.Counters.MapRecordsRead
	m.MapBytesRead += res.Counters.MapBytesRead
	rc := cluster.RoundCost{
		ShuffleBytes:   res.ShuffleBytes,
		BroadcastBytes: broadcastBytes,
		ReduceCPUUnits: res.ReduceCPU,
	}
	for _, t := range res.MapTasks {
		rc.MapTasks = append(rc.MapTasks, cluster.TaskCost{
			PreferredNode: t.Node,
			InputBytes:    t.InputBytes,
			CPUUnits:      t.CPUUnits,
		})
	}
	m.RoundCosts = append(m.RoundCosts, rc)
}

// transformWork is the abstract CPU charge of a sparse wavelet transform
// over nk distinct keys: O(|v|·(log u + 1)).
func transformWork(nk int, u int64) float64 {
	return float64(nk) * float64(wavelet.Log2(u)+1)
}

// coefTransform turns a split's (or the reducer's) aggregated frequency
// map into non-zero wavelet coefficients, charging work to the task. It
// abstracts over dimensionality: by linearity, everything downstream
// (partial sums, thresholds, sampling estimators) is dimension-agnostic.
type coefTransform func(ctx *mapred.TaskContext, freq map[int64]float64) []wavelet.Coef

// transform1D is the O(|v_j| log u) sorted-streaming transform of
// Appendix A. The sorted (keys, counts) scratch is pooled: with many
// mapper goroutines transforming splits concurrently, per-call slices
// were a dominant allocation.
func transform1D(u int64) coefTransform {
	return func(ctx *mapred.TaskContext, freq map[int64]float64) []wavelet.Coef {
		buf := wavelet.GetFreqBuffers()
		defer wavelet.PutFreqBuffers(buf)
		keys, counts := buf.Load(freq)
		ctx.AddWork(transformWork(len(freq), u))
		return wavelet.SparseTransformSorted(keys, counts, u)
	}
}

// transform2D computes packed 2D coefficients over [0,u)²; each cell
// contributes to (log2(u)+1)² tensor-path coefficients.
func transform2D(u int64) coefTransform {
	return func(ctx *mapred.TaskContext, freq map[int64]float64) []wavelet.Coef {
		logu := float64(wavelet.Log2(u) + 1)
		ctx.AddWork(float64(len(freq)) * logu * logu)
		w := wavelet.SparseTransform2D(freq, u)
		buf := wavelet.GetFreqBuffers()
		defer wavelet.PutFreqBuffers(buf)
		keys, vals := buf.Load(w)
		coefs := make([]wavelet.Coef, len(keys))
		for i := range keys {
			coefs[i] = wavelet.Coef{Index: keys[i], Value: vals[i]}
		}
		return coefs
	}
}

// localCoefficients computes a split's non-zero 1D wavelet coefficients.
func localCoefficients(ctx *mapred.TaskContext, freq map[int64]float64, u int64) []wavelet.Coef {
	return transform1D(u)(ctx, freq)
}

// checkDomain validates a record key against [0, U).
func checkDomain(key, u int64) error {
	if key < 0 || key >= u {
		return fmt.Errorf("core: key %d outside domain [0, %d)", key, u)
	}
	return nil
}

// All seven algorithms, in the paper's naming.
func Algorithms() []Algorithm {
	return []Algorithm{
		NewSendV(),
		NewSendCoef(),
		NewHWTopk(),
		NewBasicS(),
		NewImprovedS(),
		NewTwoLevelS(),
		NewSendSketch(),
	}
}

// ByName returns the algorithm with the given paper name.
func ByName(name string) (Algorithm, error) {
	for _, a := range Algorithms() {
		if a.Name() == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("core: unknown algorithm %q", name)
}
