package core

import (
	"fmt"

	"wavelethist/internal/mapred"
	"wavelethist/internal/wavelet"
)

// Binary encodings for H-WTopk's persistent state (the paper's per-split
// HDFS state files and the coordinator's local file) and for the
// candidate-set R payload placed in the Distributed Cache.

// encodeCoefs serializes a coefficient list: [count][idx f64][val f64]...
func encodeCoefs(coefs []wavelet.Coef) []byte {
	b := mapred.AppendInt64(nil, int64(len(coefs)))
	for _, c := range coefs {
		b = mapred.AppendInt64(b, c.Index)
		b = mapred.AppendFloat64(b, c.Value)
	}
	return b
}

func decodeCoefs(b []byte) ([]wavelet.Coef, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("core: truncated coefficient state")
	}
	n, off := mapred.ReadInt64(b, 0)
	// Overflow-safe bound: compare against the entry capacity of the
	// buffer instead of multiplying the untrusted count.
	if n < 0 || n > int64(len(b)-8)/16 {
		return nil, fmt.Errorf("core: corrupt coefficient state (n=%d, len=%d)", n, len(b))
	}
	coefs := make([]wavelet.Coef, n)
	for i := range coefs {
		coefs[i].Index, off = mapred.ReadInt64(b, off)
		coefs[i].Value, off = mapred.ReadFloat64(b, off)
	}
	return coefs, nil
}

// bitset is a fixed-size bitset over split ids (the paper's F_i vectors,
// stored as received-bits: bit j set means split j's score is known).
type bitset struct {
	words []uint64
	n     int
}

func newBitset(n int) *bitset {
	return &bitset{words: make([]uint64, (n+63)/64), n: n}
}

func (b *bitset) Set(i int)      { b.words[i/64] |= 1 << (uint(i) % 64) }
func (b *bitset) Get(i int) bool { return b.words[i/64]&(1<<(uint(i)%64)) != 0 }
func (b *bitset) Count() int {
	c := 0
	for _, w := range b.words {
		for ; w != 0; w &= w - 1 {
			c++
		}
	}
	return c
}

// ForEachSet calls f for every set bit.
func (b *bitset) ForEachSet(f func(i int)) {
	for wi, w := range b.words {
		for w != 0 {
			bit := w & (-w)
			idx := wi * 64
			for t := bit >> 1; t != 0; t >>= 1 {
				idx++
			}
			f(idx)
			w &= w - 1
		}
	}
}

// coordEntry is one candidate item at the coordinator: its partial sum ŵ_i
// and the set of splits whose exact score is known.
type coordEntry struct {
	wHat float64
	recv *bitset
}

// coordState is the coordinator's persistent state between rounds.
type coordState struct {
	m       int
	t1      float64
	entries map[int64]*coordEntry
}

// encode serializes the coordinator state (t1 + entries with bitsets).
func (cs *coordState) encode() []byte {
	b := mapred.AppendInt64(nil, int64(cs.m))
	b = mapred.AppendFloat64(b, cs.t1)
	b = mapred.AppendInt64(b, int64(len(cs.entries)))
	words := (cs.m + 63) / 64
	for i, e := range cs.entries {
		b = mapred.AppendInt64(b, i)
		b = mapred.AppendFloat64(b, e.wHat)
		for w := 0; w < words; w++ {
			b = mapred.AppendUint64(b, e.recv.words[w])
		}
	}
	return b
}

func decodeCoordState(b []byte) (*coordState, error) {
	if len(b) < 24 {
		return nil, fmt.Errorf("core: truncated coordinator state")
	}
	var cs coordState
	var m64, cnt int64
	off := 0
	m64, off = mapred.ReadInt64(b, off)
	cs.m = int(m64)
	cs.t1, off = mapred.ReadFloat64(b, off)
	cnt, off = mapred.ReadInt64(b, off)
	if cs.m < 0 || cs.m > len(b)*8 {
		return nil, fmt.Errorf("core: corrupt coordinator state (m=%d)", cs.m)
	}
	words := (cs.m + 63) / 64
	entryBytes := int64(16 + 8*words)
	if cnt < 0 || cnt > int64(len(b)-off)/entryBytes {
		return nil, fmt.Errorf("core: corrupt coordinator state")
	}
	cs.entries = make(map[int64]*coordEntry, cnt)
	for c := int64(0); c < cnt; c++ {
		var idx int64
		var wh float64
		idx, off = mapred.ReadInt64(b, off)
		wh, off = mapred.ReadFloat64(b, off)
		e := &coordEntry{wHat: wh, recv: newBitset(cs.m)}
		for w := 0; w < words; w++ {
			e.recv.words[w], off = mapred.ReadUint64(b, off)
		}
		cs.entries[idx] = e
	}
	return &cs, nil
}

// encodeIndexSet serializes the candidate set R for the Distributed Cache.
// Indices use 4 bytes (the paper's ids) unless any exceeds 32 bits — 2D
// packed indices over large domains — in which case 8-byte ids are used.
// indexSetBytes reports the same width for wire-cost accounting.
func encodeIndexSet(ids []int64) []byte {
	width := byte(4)
	for _, id := range ids {
		if id > 0xFFFFFFFF {
			width = 8
			break
		}
	}
	b := mapred.AppendInt64(nil, int64(len(ids)))
	b = append(b, width)
	for _, id := range ids {
		if width == 4 {
			b = append(b, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
		} else {
			b = mapred.AppendInt64(b, id)
		}
	}
	return b
}

// indexSetBytes is the network payload charged for shipping R.
func indexSetBytes(ids []int64) int64 {
	width := int64(4)
	for _, id := range ids {
		if id > 0xFFFFFFFF {
			width = 8
			break
		}
	}
	return width * int64(len(ids))
}

func decodeIndexSet(b []byte) (map[int64]bool, error) {
	if len(b) < 9 {
		return nil, fmt.Errorf("core: truncated index set")
	}
	n, off := mapred.ReadInt64(b, 0)
	width := int(b[off])
	off++
	if n < 0 || (width != 4 && width != 8) || n > int64(len(b)-off)/int64(width) {
		return nil, fmt.Errorf("core: corrupt index set")
	}
	out := make(map[int64]bool, n)
	for i := int64(0); i < n; i++ {
		if width == 4 {
			v := uint32(b[off]) | uint32(b[off+1])<<8 | uint32(b[off+2])<<16 | uint32(b[off+3])<<24
			out[int64(v)] = true
			off += 4
		} else {
			var v int64
			v, off = mapred.ReadInt64(b, off)
			out[v] = true
		}
	}
	return out, nil
}
