package core

import (
	"math"
	"testing"

	"wavelethist/internal/zipf"
)

// Direct statistical verification of the paper's Theorems 1 and 3 on the
// two-level sampling scheme, isolated from the MapReduce machinery: given
// per-split sample counts s_j(x), the emitted-pair protocol must yield an
// unbiased estimator ŝ(x) = ρ(x) + M/(ε√m) with Var ≤ 1/ε², and expected
// communication O(√m/ε).

// simulateTwoLevel runs one round of second-level sampling over the given
// per-split counts and returns (estimate, emittedPairs).
func simulateTwoLevel(sj []float64, eps float64, rng *zipf.RNG) (float64, int) {
	m := len(sj)
	epsSqrtM := eps * math.Sqrt(float64(m))
	threshold := 1 / epsSqrtM
	var rho float64
	var M int
	pairs := 0
	for _, s := range sj {
		if s <= 0 {
			continue
		}
		if s >= threshold {
			rho += s
			pairs++
		} else if rng.Bernoulli(epsSqrtM * s) {
			M++
			pairs++
		}
	}
	return rho + float64(M)/epsSqrtM, pairs
}

func TestTheorem1UnbiasedAndVarianceBound(t *testing.T) {
	rng := zipf.NewRNG(17)
	const m = 64
	const eps = 0.05
	// Several count profiles: all below threshold, mixed, heavy-tailed.
	threshold := 1 / (eps * math.Sqrt(m))
	profiles := map[string][]float64{
		"allSmall":   repeatF(threshold*0.3, m),
		"mixed":      append(repeatF(threshold*0.9, m/2), repeatF(threshold*4, m/2)...),
		"heavyTail":  append(repeatF(threshold*0.1, m-2), threshold*50, threshold*20),
		"singleTiny": append(repeatF(0, m-1), threshold*0.05),
	}
	for name, sj := range profiles {
		var truth float64
		for _, s := range sj {
			truth += s
		}
		const trials = 20000
		var sum, sumSq float64
		for i := 0; i < trials; i++ {
			est, _ := simulateTwoLevel(sj, eps, rng)
			sum += est
			sumSq += est * est
		}
		mean := sum / trials
		variance := sumSq/trials - mean*mean
		// Unbiased: |mean - truth| within 5 standard errors.
		se := math.Sqrt(variance / trials)
		if math.Abs(mean-truth) > 5*se+1e-9 {
			t.Errorf("%s: mean %v, truth %v (se %v): biased", name, mean, truth, se)
		}
		// Theorem 1: Var[ŝ] <= 1/ε² (generous slack for estimation noise).
		bound := 1 / (eps * eps)
		if variance > bound*1.15 {
			t.Errorf("%s: variance %v exceeds 1/ε² = %v", name, variance, bound)
		}
	}
}

func TestTheorem3CommunicationBound(t *testing.T) {
	// Expected pairs across all splits and keys is O(√m/ε): check the
	// constant is small for a Zipf-like sample of total size 1/ε².
	rng := zipf.NewRNG(23)
	const m = 100
	const eps = 0.02
	// Build per-split sample count vectors with total mass ~1/ε².
	total := 1 / (eps * eps) // 2500
	z := zipf.NewZipf(1<<12, 1.1)
	counts := make([]map[int64]float64, m)
	for j := range counts {
		counts[j] = make(map[int64]float64)
		for i := 0; i < int(total)/m; i++ {
			counts[j][z.Sample(rng)]++
		}
	}
	// Count expected emissions over repeated trials.
	const trials = 50
	var pairSum float64
	for trial := 0; trial < trials; trial++ {
		for j := range counts {
			sj := make([]float64, 0, len(counts[j]))
			for _, c := range counts[j] {
				sj = append(sj, c)
			}
			// Each key independently: reuse the single-key simulator
			// by treating each count as its own key at split j.
			epsSqrtM := eps * math.Sqrt(float64(m))
			threshold := 1 / epsSqrtM
			for _, s := range sj {
				if s >= threshold {
					pairSum++
				} else if rng.Bernoulli(epsSqrtM * s) {
					pairSum++
				}
			}
		}
	}
	avgPairs := pairSum / trials
	bound := 2 * math.Sqrt(m) / eps // Theorem 3 with constant 2
	if avgPairs > bound {
		t.Errorf("expected pairs %v exceed 2√m/ε = %v", avgPairs, bound)
	}
}

// Improved-S's estimator is biased: its expected estimate undershoots the
// truth when small per-split counts are dropped (the paper's criticism).
func TestImprovedSamplingBias(t *testing.T) {
	rng := zipf.NewRNG(29)
	const m = 64
	const eps = 0.05
	tj := 400.0 // sampled records per split
	// A key with s_j(x) just below ε·t_j = 20 at every split: Improved-S
	// drops all of them; truth is m·15 = 960.
	sj := repeatF(15, m)
	var truth float64
	for _, s := range sj {
		truth += s
	}
	var improved float64
	for _, s := range sj {
		if s >= eps*tj {
			improved += s
		}
	}
	if improved != 0 {
		t.Fatalf("threshold should drop everything, kept %v", improved)
	}
	// TwoLevel-S on the same input is unbiased (averaged).
	const trials = 20000
	var sum float64
	for i := 0; i < trials; i++ {
		est, _ := simulateTwoLevel(sj, eps, rng)
		sum += est
	}
	mean := sum / trials
	if math.Abs(mean-truth) > 0.05*truth {
		t.Errorf("TwoLevel-S mean %v, truth %v", mean, truth)
	}
}

func repeatF(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}
