package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"wavelethist/internal/cluster"
	"wavelethist/internal/hdfs"
	"wavelethist/internal/mapred"
)

// Mergeable partial state for distributed builds. A SplitPartial is the
// map side's summary of one input split — exactly the pairs that split
// would shuffle in the simulated cluster, which per method family is:
//
//	Send-V:       the split's local frequency vector (x, v_j(x))
//	Send-Coef:    the split's non-zero local wavelet coefficients
//	Basic-S /
//	Improved-S /
//	TwoLevel-S:   the split's (filtered / importance-sampled) samples
//	Send-Sketch:  the split's non-zero GCS sketch entries
//
// Partials are produced on workers by MapSplits, shipped over the wire
// with EncodePartials / DecodePartials, and merged on the coordinator by
// MergePartials, which reproduces the single-process result bit-for-bit
// when every split is covered exactly once (per-split RNGs are derived
// from (seed, split id), and merging consumes partials in split order).
//
// H-WTopk is a three-round protocol with coordinator feedback between
// rounds and is not expressible as one-shot mergeable partials; it runs
// distributed through the multi-round engine instead (multiround.go:
// MapRoundSplits + RoundPlan), which reuses SplitPartial as the per-round
// wire unit.

// SplitPartial is one split's mergeable map-side summary.
type SplitPartial struct {
	SplitID int
	// Node is the DataNode holding the split (locality for the cost model).
	Node int
	// Pairs are the split's sorted, combined intermediate pairs.
	Pairs []mapred.KV
	// RecordsRead / BytesRead are the split's input-scan counters.
	RecordsRead int64
	BytesRead   int64
	// InputBytes / CPUUnits feed the cluster cost model.
	InputBytes int64
	CPUUnits   float64
}

// DistributableMethods lists every method supporting distributed
// execution: the six one-round 1D methods, the one-round 2D baselines,
// and the multi-round H-WTopk (1D via Build, 2D via the packed-domain
// variant).
func DistributableMethods() []string {
	var out []string
	for _, a := range Algorithms() {
		if _, ok := a.(oneRounder); ok {
			out = append(out, a.Name())
		}
	}
	return append(out, MethodHWTopk, MethodSendV2D, MethodTwoLevelS2D, MethodHWTopk2D)
}

// Distributable reports whether the named method supports distributed
// execution.
func Distributable(name string) bool { return Rounds(name) >= 1 }

// oneRoundByName resolves a method to its one-round decomposition.
func oneRoundByName(name string) (oneRounder, error) {
	a, err := ByName(name)
	if err != nil {
		return nil, err
	}
	or, ok := a.(oneRounder)
	if !ok {
		return nil, fmt.Errorf("core: %s is multi-round; use MapRoundSplits/RoundPlan, not one-shot partials", name)
	}
	return or, nil
}

// MapSplits runs method's map side over the given split indices of file,
// returning one mergeable partial per split. This is the worker half of a
// distributed build. Splits are mapped concurrently across up to
// p.Parallelism goroutines (0 = GOMAXPROCS); the result order matches
// splitIDs and every per-split output is bit-identical to a serial run
// (per-split RNG derivation makes tasks independent of scheduling).
func MapSplits(ctx context.Context, file *hdfs.File, method string, p Params, splitIDs []int) ([]SplitPartial, error) {
	if or2, err := oneRound2DByName(method); err == nil {
		return mapSplits2D(ctx, file, or2, p, splitIDs)
	}
	or, err := oneRoundByName(method)
	if err != nil {
		return nil, err
	}
	p = p.Defaults()
	if err := p.validate(); err != nil {
		return nil, err
	}
	job, _ := or.makeJob(file, p)
	return mapJobSplits(ctx, job, method, p, splitIDs)
}

// mapJobSplits runs a prepared-one-round job's map side over splitIDs —
// the shared body of the 1D and 2D worker halves.
func mapJobSplits(ctx context.Context, job *mapred.Job, method string, p Params, splitIDs []int) ([]SplitPartial, error) {
	if err := job.Prepare(); err != nil {
		return nil, err
	}
	m := len(job.Splits)
	for _, id := range splitIDs {
		if id < 0 || id >= m {
			return nil, fmt.Errorf("core: %s: split %d out of range [0, %d)", method, id, m)
		}
	}
	parts := make([]SplitPartial, len(splitIDs))
	err := forEachSplit(ctx, p, len(splitIDs), func(ctx context.Context, i int) error {
		r, err := mapred.RunMapSplit(ctx, job, splitIDs[i])
		if err != nil {
			return err
		}
		parts[i] = SplitPartial{
			SplitID:     splitIDs[i],
			Node:        r.Metrics.Node,
			Pairs:       r.Pairs,
			RecordsRead: r.RecordsRead,
			BytesRead:   r.BytesRead,
			InputBytes:  r.Metrics.InputBytes,
			CPUUnits:    r.Metrics.CPUUnits,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return parts, nil
}

// forEachSplit fans fn(i) for i in [0, n) out across a bounded goroutine
// pool: p.Parallelism workers (0 = GOMAXPROCS), context-cancellable, first
// error wins and cancels the siblings. Callers write results into
// position-indexed slots, so merge order is deterministic regardless of
// scheduling.
func forEachSplit(ctx context.Context, p Params, n int, fn func(ctx context.Context, i int) error) error {
	workers := p.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}
	fctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		errOnce sync.Once
		firstEr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || fctx.Err() != nil {
					return
				}
				if err := fn(fctx, i); err != nil {
					errOnce.Do(func() { firstEr = err })
					cancel()
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstEr != nil {
		return firstEr
	}
	return ctx.Err()
}

// MergePartials runs method's reduce side over partials covering every
// split of file exactly once, producing the same Output a single-process
// run with the same seed would. This is the coordinator half of a
// distributed build.
func MergePartials(ctx context.Context, file *hdfs.File, method string, p Params, parts []SplitPartial) (*Output, error) {
	or, err := oneRoundByName(method)
	if err != nil {
		return nil, err
	}
	p = p.Defaults()
	if err := p.validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	job, red := or.makeJob(file, p)
	res, err := reducePartials(ctx, job, method, parts)
	if err != nil {
		return nil, err
	}
	out := &Output{Rep: red.representation()}
	out.Metrics.addRound(res, 0)
	out.Metrics.WallTime = time.Since(start)
	return out, nil
}

// reducePartials checks one-per-split coverage and runs a one-round job's
// reduce side over the partials in split order — the shared body of
// MergePartials and MergePartials2D.
func reducePartials(ctx context.Context, job *mapred.Job, method string, parts []SplitPartial) (*mapred.Result, error) {
	m := len(job.Splits)
	if len(parts) != m {
		return nil, fmt.Errorf("core: %s: have %d partials, want one per split (%d)", method, len(parts), m)
	}
	ordered := make([]SplitPartial, len(parts))
	copy(ordered, parts)
	sort.Slice(ordered, func(a, b int) bool { return ordered[a].SplitID < ordered[b].SplitID })
	for i, part := range ordered {
		if part.SplitID != i {
			return nil, fmt.Errorf("core: %s: partials do not cover split %d exactly once", method, i)
		}
	}

	batches := make([][]mapred.KV, m)
	res := &mapred.Result{MapTasks: make([]mapred.TaskMetrics, m)}
	for i, part := range ordered {
		batches[i] = part.Pairs
		res.MapTasks[i] = mapred.TaskMetrics{
			SplitID:    part.SplitID,
			Node:       part.Node,
			InputBytes: part.InputBytes,
			CPUUnits:   part.CPUUnits,
		}
		res.Counters.MapRecordsRead += part.RecordsRead
		res.Counters.MapBytesRead += part.BytesRead
	}
	rres, err := mapred.RunReduce(ctx, job, batches)
	if err != nil {
		return nil, err
	}
	res.ShuffleBytes = rres.ShuffleBytes
	res.PairsShuffled = rres.PairsShuffled
	res.ReduceCPU = rres.ReduceCPU
	res.ReduceCalls = rres.ReduceCalls
	return res, nil
}

// NumSplits reports how many splits a build of file at the given params
// would process — the unit of distributed assignment.
func NumSplits(file *hdfs.File, p Params) int {
	return len(file.Splits(p.Defaults().SplitSize))
}

// SimulatedSecondsOn exposes the cluster cost model for a merged output
// (used by serve's uniform job metrics).
func SimulatedSecondsOn(m Metrics, c *cluster.Cluster) float64 { return m.SimulatedSeconds(c) }

// ---------- wire encoding ----------

// EncodePartials serializes partials for the dist wire protocol:
// [count] then per partial [splitID][node][recordsRead][bytesRead]
// [inputBytes][cpuUnits][npairs] and per pair [key][val][src:4][tag:1].
// The output buffer is allocated once at its exact final size (the layout
// is fixed-width), so encoding never re-grows or over-allocates — the hot
// path of every map RPC response.
func EncodePartials(parts []SplitPartial) []byte {
	b := make([]byte, 0, PartialsWireBytes(parts))
	b = mapred.AppendInt64(b, int64(len(parts)))
	for i := range parts {
		b = appendPartial(b, &parts[i])
	}
	return b
}

// PartialsWireBytes returns the exact encoded size of EncodePartials'
// output without encoding.
func PartialsWireBytes(parts []SplitPartial) int {
	n := 8
	for i := range parts {
		n += partialHeaderBytes + len(parts[i].Pairs)*pairWireBytes
	}
	return n
}

const partialHeaderBytes = 56 // 5 int64 + 1 float64 + npairs

func appendPartial(b []byte, part *SplitPartial) []byte {
	b = mapred.AppendInt64(b, int64(part.SplitID))
	b = mapred.AppendInt64(b, int64(part.Node))
	b = mapred.AppendInt64(b, part.RecordsRead)
	b = mapred.AppendInt64(b, part.BytesRead)
	b = mapred.AppendInt64(b, part.InputBytes)
	b = mapred.AppendFloat64(b, part.CPUUnits)
	b = mapred.AppendInt64(b, int64(len(part.Pairs)))
	for _, kv := range part.Pairs {
		b = mapred.AppendInt64(b, kv.Key)
		b = mapred.AppendFloat64(b, kv.Val)
		b = append(b, byte(kv.Src), byte(kv.Src>>8), byte(kv.Src>>16), byte(kv.Src>>24), kv.Tag)
	}
	return b
}

const pairWireBytes = 21 // 8 key + 8 val + 4 src + 1 tag

// DecodePartials is the inverse of EncodePartials, with bounds checks
// against truncated or corrupt payloads.
func DecodePartials(b []byte) ([]SplitPartial, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("core: truncated partials payload")
	}
	n, off := mapred.ReadInt64(b, 0)
	if n < 0 || n > int64(len(b))/8 {
		return nil, fmt.Errorf("core: corrupt partials payload (n=%d)", n)
	}
	parts := make([]SplitPartial, 0, n)
	for i := int64(0); i < n; i++ {
		if len(b)-off < 56 {
			return nil, fmt.Errorf("core: truncated partial %d", i)
		}
		var part SplitPartial
		var v int64
		v, off = mapred.ReadInt64(b, off)
		part.SplitID = int(v)
		v, off = mapred.ReadInt64(b, off)
		part.Node = int(v)
		part.RecordsRead, off = mapred.ReadInt64(b, off)
		part.BytesRead, off = mapred.ReadInt64(b, off)
		part.InputBytes, off = mapred.ReadInt64(b, off)
		part.CPUUnits, off = mapred.ReadFloat64(b, off)
		var np int64
		np, off = mapred.ReadInt64(b, off)
		if np < 0 || np > int64(len(b)-off)/pairWireBytes {
			return nil, fmt.Errorf("core: corrupt partial %d (pairs=%d)", i, np)
		}
		part.Pairs = make([]mapred.KV, np)
		for j := range part.Pairs {
			part.Pairs[j].Key, off = mapred.ReadInt64(b, off)
			part.Pairs[j].Val, off = mapred.ReadFloat64(b, off)
			src := uint32(b[off]) | uint32(b[off+1])<<8 | uint32(b[off+2])<<16 | uint32(b[off+3])<<24
			part.Pairs[j].Src = int32(src)
			part.Pairs[j].Tag = b[off+4]
			off += 5
		}
		parts = append(parts, part)
	}
	return parts, nil
}
