package core

import (
	"context"
	"fmt"
	"time"

	"wavelethist/internal/hdfs"
	"wavelethist/internal/mapred"
	"wavelethist/internal/wavelet"
)

// One-round 2D decompositions. Send-V-2D and TwoLevel-S-2D are, like their
// 1D twins, single map/reduce passes over mergeable partials — only the
// key packing and the final transform differ — so they distribute through
// exactly the same worker/coordinator halves (MapSplits / MergePartials2D)
// as the 1D one-round methods. H-WTopk-2D stays on the multi-round engine.

// One-round 2D method names.
const (
	MethodSendV2D     = "Send-V-2D"
	MethodTwoLevelS2D = "TwoLevel-S-2D"
)

// repReducer2D is a Reducer that yields the final k-term 2D representation.
type repReducer2D interface {
	mapred.Reducer
	representation2D() *wavelet.Representation2D
}

// oneRounder2D is implemented by the single-round 2D methods. makeJob2D
// expects p to already be defaulted; it validates the 2D domain itself
// (the grid side is p.U, the packed key domain p.U²).
type oneRounder2D interface {
	Name() string
	makeJob2D(file *hdfs.File, p Params) (*mapred.Job, repReducer2D, error)
}

// oneRound2DByName resolves a 2D method to its one-round decomposition.
func oneRound2DByName(name string) (oneRounder2D, error) {
	switch name {
	case MethodSendV2D:
		return NewSendV2D(), nil
	case MethodTwoLevelS2D:
		return NewTwoLevelS2D(), nil
	}
	return nil, fmt.Errorf("core: %q has no one-round 2D decomposition", name)
}

// OneRound2D reports whether method is a one-round 2D method (routes
// through Build2D's single fan-out, not Build or the multi-round engine).
func OneRound2D(method string) bool {
	_, err := oneRound2DByName(method)
	return err == nil
}

// runOneRound2D is the shared simulated Run of a one-round 2D method.
func runOneRound2D(ctx context.Context, a oneRounder2D, file *hdfs.File, p Params) (*Output2D, error) {
	p = p.Defaults()
	start := time.Now()
	job, red, err := a.makeJob2D(file, p)
	if err != nil {
		return nil, err
	}
	res, err := mapred.RunContext(ctx, job)
	if err != nil {
		return nil, err
	}
	out := &Output2D{Rep: red.representation2D()}
	out.Metrics.addRound(res, 0)
	out.Metrics.WallTime = time.Since(start)
	return out, nil
}

// mapSplits2D is the worker half of a one-round 2D distributed build
// (MapSplits routes 2D method names here).
func mapSplits2D(ctx context.Context, file *hdfs.File, or oneRounder2D, p Params, splitIDs []int) ([]SplitPartial, error) {
	p = p.Defaults()
	job, _, err := or.makeJob2D(file, p)
	if err != nil {
		return nil, err
	}
	return mapJobSplits(ctx, job, or.Name(), p, splitIDs)
}

// MergePartials2D runs a 2D method's reduce side over partials covering
// every split of file exactly once, producing the same Output2D a
// single-process run with the same seed would — the coordinator half of a
// one-round 2D distributed build.
func MergePartials2D(ctx context.Context, file *hdfs.File, method string, p Params, parts []SplitPartial) (*Output2D, error) {
	or, err := oneRound2DByName(method)
	if err != nil {
		return nil, err
	}
	p = p.Defaults()
	start := time.Now()
	job, red, err := or.makeJob2D(file, p)
	if err != nil {
		return nil, err
	}
	res, err := reducePartials(ctx, job, method, parts)
	if err != nil {
		return nil, err
	}
	out := &Output2D{Rep: red.representation2D()}
	out.Metrics.addRound(res, 0)
	out.Metrics.WallTime = time.Since(start)
	return out, nil
}
