package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"
	"time"

	"wavelethist/internal/hdfs"
	"wavelethist/internal/heap"
	"wavelethist/internal/mapred"
	"wavelethist/internal/topk"
	"wavelethist/internal/wavelet"
)

// HWTopk ("Hadoop wavelet top-k") is the paper's exact algorithm
// (Section 3 + Appendix A): the two-sided modified TPUT instantiated as
// three MapReduce rounds.
//
//	Round 1: every split aggregates v_j, computes local coefficients with
//	         the O(|v_j| log u) transform, emits its k highest and k
//	         lowest (i, (j, w_ij)) pairs with the k-th ones marked, and
//	         persists unsent coefficients to its state file. The reducer
//	         forms partial sums ŵ_i with received-bit vectors F_i,
//	         derives the magnitude threshold T1, and persists its state.
//	Round 2: mappers read no input; they restore state and emit every
//	         unsent coefficient with |w_ij| > T1/m (shipped via the Job
//	         Configuration). The reducer refines τ± bounds with the
//	         T1/m guarantee, derives T2, prunes the candidate set R, and
//	         the driver places R in the Distributed Cache.
//	Round 3: mappers emit unsent scores for items in R; the reducer
//	         finalizes exact sums and selects the top-k by magnitude.
type HWTopk struct{}

// NewHWTopk returns the H-WTopk algorithm.
func NewHWTopk() *HWTopk { return &HWTopk{} }

// Name implements Algorithm.
func (*HWTopk) Name() string { return "H-WTopk" }

const (
	confT1OverM = "hwtopk.t1.over.m"
	cacheRName  = "hwtopk.candidates"
)

// Per-split state is round-versioned: round 1 writes its unsent
// coefficients under hwStateR1, round 2 writes the post-filter remainder
// under hwStateR2 and leaves the round-1 file intact. Re-running any
// round's mapper is therefore idempotent — the property the distributed
// engine relies on when an RPC fails after a worker already processed it,
// and what lets a fresh worker replay earlier rounds for a split whose
// original owner died. (Split ids are >= 0, so the keys 2i and 2i+1 never
// collide with the reducer's mapred.ReducerState key.)
func hwStateR1(split int) int { return 2 * split }
func hwStateR2(split int) int { return 2*split + 1 }

// ---------- Round 1 ----------

type hwRound1Mapper struct {
	domain    int64 // key-domain bound (u in 1D, u² packed in 2D)
	k         int
	transform coefTransform
	freq      map[int64]float64
}

func (m *hwRound1Mapper) Setup(*mapred.TaskContext) error {
	m.freq = make(map[int64]float64)
	return nil
}

func (m *hwRound1Mapper) Map(ctx *mapred.TaskContext, rec hdfs.Record, _ *mapred.Emitter) error {
	if err := checkDomain(rec.Key, m.domain); err != nil {
		return err
	}
	m.freq[rec.Key]++
	return nil
}

func (m *hwRound1Mapper) Close(ctx *mapred.TaskContext, out *mapred.Emitter) error {
	coefs := m.transform(ctx, m.freq)
	j := int32(ctx.SplitID)

	hi := heap.NewTopK(m.k)
	lo := heap.NewBottomK(m.k)
	for _, c := range coefs {
		hi.Push(heap.Item{ID: c.Index, Score: c.Value})
		lo.Push(heap.Item{ID: c.Index, Score: c.Value})
	}
	ctx.AddWork(float64(len(coefs)) * 2)

	sent := make(map[int64]bool, 2*m.k)
	hiItems := hi.Sorted()
	for rank, it := range hiItems {
		tag := mapred.TagNone
		if rank == m.k-1 {
			tag = mapred.TagMarkHigh // the k-th highest coefficient
		}
		out.Emit(mapred.KV{Key: it.ID, Val: it.Score, Src: j, Tag: tag})
		sent[it.ID] = true
	}
	loItems := lo.Sorted()
	for rank, it := range loItems {
		tag := mapred.TagNone
		if rank == m.k-1 {
			tag = mapred.TagMarkLow // the k-th lowest coefficient
		}
		// The paper emits top-k and bottom-k as separate pair sets; an
		// item in both is emitted twice (the reducer's F_i bits dedupe
		// the partial-sum contribution).
		out.Emit(mapred.KV{Key: it.ID, Val: it.Score, Src: j, Tag: tag})
		sent[it.ID] = true
	}

	// Persist unsent coefficients as the split's state file.
	unsent := make([]wavelet.Coef, 0, len(coefs))
	for _, c := range coefs {
		if !sent[c.Index] {
			unsent = append(unsent, c)
		}
	}
	state := encodeCoefs(unsent)
	ctx.State.Put(hwStateR1(ctx.SplitID), state)
	ctx.AddIOBytes(int64(len(state))) // local HDFS write (no network)
	return nil
}

// hwRound1Reducer builds ŵ_i and F_i, computes T1, persists state.
type hwRound1Reducer struct {
	k         int
	m         int
	entries   map[int64]*coordEntry
	tildeHigh []float64 // w̃⁺_j floored at 0 (zeros pad sparse splits)
	tildeLow  []float64 // w̃⁻_j capped at 0
	T1        float64
}

func (r *hwRound1Reducer) Setup(ctx *mapred.TaskContext) error {
	r.m = ctx.NumSplits
	r.entries = make(map[int64]*coordEntry)
	r.tildeHigh = make([]float64, r.m)
	r.tildeLow = make([]float64, r.m)
	return nil
}

func (r *hwRound1Reducer) Reduce(_ *mapred.TaskContext, key int64, vals []mapred.KV) error {
	e := r.entries[key]
	if e == nil {
		e = &coordEntry{recv: newBitset(r.m)}
		r.entries[key] = e
	}
	for _, kv := range vals {
		j := int(kv.Src)
		switch kv.Tag {
		case mapred.TagMarkHigh:
			r.tildeHigh[j] = math.Max(kv.Val, 0)
		case mapred.TagMarkLow:
			r.tildeLow[j] = math.Min(kv.Val, 0)
		}
		if e.recv.Get(j) {
			continue // duplicate: item was in both the top-k and bottom-k sets
		}
		e.recv.Set(j)
		e.wHat += kv.Val
	}
	return nil
}

func (r *hwRound1Reducer) Close(ctx *mapred.TaskContext) error {
	// τ⁺(x) = ŵ_x + Σ_{j not received} w̃⁺_j (and symmetrically τ⁻);
	// computed as total minus the received splits' contributions.
	var totalHigh, totalLow float64
	for j := 0; j < r.m; j++ {
		totalHigh += r.tildeHigh[j]
		totalLow += r.tildeLow[j]
	}
	t1h := heap.NewTopK(r.k)
	for id, e := range r.entries {
		hiMiss, loMiss := totalHigh, totalLow
		e.recv.ForEachSet(func(j int) {
			hiMiss -= r.tildeHigh[j]
			loMiss -= r.tildeLow[j]
		})
		tauPlus := e.wHat + hiMiss
		tauMinus := e.wHat + loMiss
		t1h.Push(heap.Item{ID: id, Score: topk.MagnitudeLowerBound(tauPlus, tauMinus)})
		ctx.AddWork(float64(r.m) / 8)
	}
	if t1h.Full() {
		it, _ := t1h.Min()
		r.T1 = it.Score
	}
	cs := &coordState{m: r.m, t1: r.T1, entries: r.entries}
	ctx.State.Put(mapred.ReducerState, cs.encode())
	return nil
}

// ---------- Round 2 ----------

// hwRound2Mapper reads no input; it emits round-1 state coefficients above
// T1/m and writes the remainder as its round-2 state.
type hwRound2Mapper struct{}

func (hwRound2Mapper) Setup(*mapred.TaskContext) error { return nil }
func (hwRound2Mapper) Map(*mapred.TaskContext, hdfs.Record, *mapred.Emitter) error {
	return nil
}

func (hwRound2Mapper) Close(ctx *mapred.TaskContext, out *mapred.Emitter) error {
	thresh, err := strconv.ParseFloat(ctx.Conf[confT1OverM], 64)
	if err != nil {
		return fmt.Errorf("hwtopk: missing %s: %w", confT1OverM, err)
	}
	state := ctx.State.Get(hwStateR1(ctx.SplitID))
	coefs, err := decodeCoefs(state)
	if err != nil {
		return err
	}
	ctx.AddIOBytes(int64(len(state))) // local state-file read
	keep := make([]wavelet.Coef, 0, len(coefs))
	for _, c := range coefs {
		if math.Abs(c.Value) > thresh {
			out.Emit(mapred.KV{Key: c.Index, Val: c.Value, Src: int32(ctx.SplitID)})
		} else {
			keep = append(keep, c)
		}
	}
	ctx.AddWork(float64(len(coefs)))
	ctx.State.Put(hwStateR2(ctx.SplitID), encodeCoefs(keep))
	return nil
}

// hwRound2Reducer refines bounds, computes T2, prunes R.
type hwRound2Reducer struct {
	k  int
	cs *coordState
	// R is the surviving candidate set (read by the driver after the
	// round to populate the Distributed Cache).
	R []int64
}

func (r *hwRound2Reducer) Setup(ctx *mapred.TaskContext) error {
	cs, err := decodeCoordState(ctx.State.Get(mapred.ReducerState))
	if err != nil {
		return err
	}
	r.cs = cs
	return nil
}

func (r *hwRound2Reducer) Reduce(_ *mapred.TaskContext, key int64, vals []mapred.KV) error {
	e := r.cs.entries[key]
	if e == nil {
		e = &coordEntry{recv: newBitset(r.cs.m)}
		r.cs.entries[key] = e
	}
	for _, kv := range vals {
		j := int(kv.Src)
		if e.recv.Get(j) {
			continue
		}
		e.recv.Set(j)
		e.wHat += kv.Val
	}
	return nil
}

func (r *hwRound2Reducer) Close(ctx *mapred.TaskContext) error {
	m := float64(r.cs.m)
	thresh := r.cs.t1 / m
	// Refined bounds: unsent (j, x) now guarantees |w_xj| <= T1/m, so
	// τ± = ŵ_x ± ‖F_x‖·T1/m (Appendix A).
	type refined struct {
		plus, minus float64
	}
	bounds := make(map[int64]refined, len(r.cs.entries))
	t2h := heap.NewTopK(r.k)
	for id, e := range r.cs.entries {
		missing := float64(r.cs.m - e.recv.Count())
		tp := e.wHat + missing*thresh
		tm := e.wHat - missing*thresh
		bounds[id] = refined{tp, tm}
		t2h.Push(heap.Item{ID: id, Score: topk.MagnitudeLowerBound(tp, tm)})
		ctx.AddWork(1)
	}
	var t2 float64
	if t2h.Full() {
		it, _ := t2h.Min()
		t2 = it.Score
	}
	// Prune: drop x when even max(|τ⁺|, |τ⁻|) cannot reach T2.
	for id, b := range bounds {
		if topk.MagnitudeUpperBound(b.plus, b.minus) < t2 {
			delete(r.cs.entries, id)
		} else {
			r.R = append(r.R, id)
		}
	}
	// Canonical order: bounds is a map, and an iteration-ordered R would
	// make the round-3 broadcast bytes vary run to run — breaking both
	// broadcast-size determinism and the workers' broadcast-hashed
	// partial-cache keys.
	sort.Slice(r.R, func(a, b int) bool { return r.R[a] < r.R[b] })
	ctx.State.Put(mapred.ReducerState, r.cs.encode())
	return nil
}

// ---------- Round 3 ----------

// hwRound3Mapper emits unsent coefficients for candidate indices in R
// (read from the Distributed Cache).
type hwRound3Mapper struct{}

func (hwRound3Mapper) Setup(*mapred.TaskContext) error { return nil }
func (hwRound3Mapper) Map(*mapred.TaskContext, hdfs.Record, *mapred.Emitter) error {
	return nil
}

func (hwRound3Mapper) Close(ctx *mapred.TaskContext, out *mapred.Emitter) error {
	rSet, err := decodeIndexSet(ctx.Cache.Get(cacheRName))
	if err != nil {
		return err
	}
	state := ctx.State.Get(hwStateR2(ctx.SplitID))
	coefs, err := decodeCoefs(state)
	if err != nil {
		return err
	}
	ctx.AddIOBytes(int64(len(state)))
	for _, c := range coefs {
		// Everything left in state was never communicated (rounds 1-2
		// removed sent coefficients), so emit iff it is a candidate.
		if rSet[c.Index] {
			out.Emit(mapred.KV{Key: c.Index, Val: c.Value, Src: int32(ctx.SplitID)})
		}
	}
	ctx.AddWork(float64(len(coefs)))
	return nil
}

// hwRound3Reducer finalizes exact sums over R and selects the top-k
// (dimension-agnostic: it yields raw coefficients; the driver wraps them
// into a 1D or 2D representation).
type hwRound3Reducer struct {
	k   int
	cs  *coordState
	top []wavelet.Coef
}

func (r *hwRound3Reducer) Setup(ctx *mapred.TaskContext) error {
	cs, err := decodeCoordState(ctx.State.Get(mapred.ReducerState))
	if err != nil {
		return err
	}
	r.cs = cs
	return nil
}

func (r *hwRound3Reducer) Reduce(_ *mapred.TaskContext, key int64, vals []mapred.KV) error {
	e := r.cs.entries[key]
	if e == nil {
		// Cannot happen: round-3 mappers only emit candidates.
		return fmt.Errorf("hwtopk: round-3 pair for non-candidate %d", key)
	}
	for _, kv := range vals {
		j := int(kv.Src)
		if e.recv.Get(j) {
			continue
		}
		e.recv.Set(j)
		e.wHat += kv.Val
	}
	return nil
}

func (r *hwRound3Reducer) Close(ctx *mapred.TaskContext) error {
	coefs := make([]wavelet.Coef, 0, len(r.cs.entries))
	for id, e := range r.cs.entries {
		// Round 3 made candidate sums exact (every split's score was
		// either shipped in rounds 1-3 or is zero), so ŵ = 0 is a true
		// zero coefficient. Drop it: Send-V's sparse transform never
		// emits zeros, and padding the top-k with one would otherwise
		// make the two exact methods disagree when k exceeds the number
		// of non-zero coefficients.
		if e.wHat == 0 {
			continue
		}
		coefs = append(coefs, wavelet.Coef{Index: id, Value: e.wHat})
	}
	ctx.AddWork(float64(len(coefs)))
	r.top = wavelet.SelectTopK(coefs, r.k)
	return nil
}

// ---------- Plan ----------

// hwPlan holds the shared machinery of one H-WTopk execution: the three
// round jobs over one Conf/Cache/State triple. Both the simulated driver
// (runHWTopkRounds) and the distributed engine (RoundPlan / MapRoundSplits
// in multiround.go) are built on it, so the in-process and fleet code
// paths run the exact same mappers and reducers.
type hwPlan struct {
	splits []hdfs.Split
	p      Params
	domain int64
	tf     coefTransform

	conf  mapred.Conf
	cache *mapred.DistCache
	state *mapred.StateStore

	red1 *hwRound1Reducer
	red2 *hwRound2Reducer
	red3 *hwRound3Reducer
}

// newHWPlan wires the plan. state is the split-state store: the simulated
// runtime and the coordinator pass a fresh one; workers pass their per-job
// lease store.
func newHWPlan(file *hdfs.File, p Params, domain int64, tf coefTransform, state *mapred.StateStore) *hwPlan {
	return &hwPlan{
		splits: file.Splits(p.SplitSize),
		p:      p,
		domain: domain,
		tf:     tf,
		conf:   mapred.Conf{},
		cache:  mapred.NewDistCache(),
		state:  state,
		red1:   &hwRound1Reducer{k: p.K},
		red2:   &hwRound2Reducer{k: p.K},
		red3:   &hwRound3Reducer{k: p.K},
	}
}

// job builds round r's (1-based) mapred job.
func (pl *hwPlan) job(r int) *mapred.Job {
	j := &mapred.Job{
		Name:      fmt.Sprintf("hwtopk-round%d", r),
		Splits:    pl.splits,
		PairBytes: func(mapred.KV) int { return 16 }, // (i, (j, w)): 4+4+8
		Streaming: true,
		Conf:      pl.conf, Cache: pl.cache, State: pl.state,
		Seed:        pl.p.Seed,
		Parallelism: pl.p.Parallelism,
	}
	switch r {
	case 1:
		j.Input = mapred.SequentialInput{}
		j.NewMapper = func(hdfs.Split) mapred.Mapper {
			return &hwRound1Mapper{domain: pl.domain, k: pl.p.K, transform: pl.tf}
		}
		j.Reducer = pl.red1
	case 2:
		j.Input = mapred.NoInput{}
		j.NewMapper = func(hdfs.Split) mapred.Mapper { return hwRound2Mapper{} }
		j.Reducer = pl.red2
	case 3:
		j.Input = mapred.NoInput{}
		j.NewMapper = func(hdfs.Split) mapred.Mapper { return hwRound3Mapper{} }
		j.Reducer = pl.red3
	default:
		panic(fmt.Sprintf("hwtopk: no round %d", r))
	}
	return j
}

// setThreshold installs T1/m into the Job Configuration (what the paper's
// driver broadcasts before round 2; 8 modeled bytes).
func (pl *hwPlan) setThreshold(t1OverM float64) {
	pl.conf[confT1OverM] = strconv.FormatFloat(t1OverM, 'g', -1, 64)
}

// threshold reads T1/m back from the Job Configuration.
func (pl *hwPlan) threshold() (float64, error) {
	v, err := strconv.ParseFloat(pl.conf[confT1OverM], 64)
	if err != nil {
		return 0, fmt.Errorf("hwtopk: missing %s: %w", confT1OverM, err)
	}
	return v, nil
}

// publishR places the candidate set in the Distributed Cache and returns
// its modeled broadcast byte count.
func (pl *hwPlan) publishR(r []int64) int64 {
	pl.cache.Put(cacheRName, encodeIndexSet(r))
	return indexSetBytes(r)
}

// ---------- Driver ----------

// Run implements Algorithm: three MapReduce rounds sharing Conf, Cache and
// State, with the coordinator's T1/m shipped via the Job Configuration and
// R via the Distributed Cache (both accounted as broadcast bytes).
func (a *HWTopk) Run(ctx context.Context, file *hdfs.File, p Params) (*Output, error) {
	p = p.Defaults()
	if err := p.validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	top, metrics, err := runHWTopkRounds(ctx, file, p, p.U, transform1D(p.U))
	if err != nil {
		return nil, err
	}
	metrics.WallTime = time.Since(start)
	return &Output{
		Rep:     wavelet.NewRepresentation(p.U, top),
		Metrics: metrics,
	}, nil
}

// runHWTopkRounds executes the three rounds for any dimensionality.
func runHWTopkRounds(ctx context.Context, file *hdfs.File, p Params, domain int64, tf coefTransform) ([]wavelet.Coef, Metrics, error) {
	var metrics Metrics
	pl := newHWPlan(file, p, domain, tf, mapred.NewStateStore())
	m := len(pl.splits)

	// Round 1.
	res1, err := mapred.RunContext(ctx, pl.job(1))
	if err != nil {
		return nil, metrics, err
	}
	metrics.addRound(res1, 0)

	// Coordinator -> mappers: T1/m via the Job Configuration (8 bytes).
	pl.setThreshold(pl.red1.T1 / float64(m))

	// Round 2.
	res2, err := mapred.RunContext(ctx, pl.job(2))
	if err != nil {
		return nil, metrics, err
	}
	metrics.addRound(res2, 8) // the T1/m conf value

	// Coordinator -> mappers: R via the Distributed Cache.
	rBytes := pl.publishR(pl.red2.R)
	metrics.CandidateSetSize = len(pl.red2.R)

	// Round 3.
	res3, err := mapred.RunContext(ctx, pl.job(3))
	if err != nil {
		return nil, metrics, err
	}
	metrics.addRound(res3, rBytes)
	return pl.red3.top, metrics, nil
}
