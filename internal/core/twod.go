package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"wavelethist/internal/hdfs"
	"wavelethist/internal/mapred"
	"wavelethist/internal/wavelet"
)

// Multi-dimensional variants (Sections 3 and 4, "Multi-dimensional
// wavelets"). A 2D wavelet transform is still a linear transformation of
// the frequency array, so:
//
//   - any 2D coefficient is the sum of the corresponding 2D coefficients
//     of all splits — H-WTopk's modified TPUT runs unchanged over packed
//     2D coefficient indices;
//   - the frequency array of a random sample still approximates v — the
//     sampling algorithms run unchanged over packed 2D keys (with the
//     caveat the paper notes about sparsity hurting relative error).
//
// Records carry packed keys x·u + y over the domain [0, u)².

// Output2D is the result of a 2D algorithm.
type Output2D struct {
	Rep     *wavelet.Representation2D
	Metrics Metrics
}

// check2DDomain validates u and returns the packed-domain bound u².
func check2DDomain(u int64) (int64, error) {
	if !wavelet.IsPowerOfTwo(u) {
		return 0, fmt.Errorf("core: 2D side %d is not a power of two", u)
	}
	return u * u, nil
}

// SendV2D is Send-V over the 2D frequency array.
type SendV2D struct{}

// NewSendV2D returns the 2D Send-V baseline.
func NewSendV2D() *SendV2D { return &SendV2D{} }

// Name implements the naming convention.
func (*SendV2D) Name() string { return "Send-V-2D" }

// makeJob2D exposes Send-V-2D's one-round decomposition — the packed-key
// twin of sendv.go's makeJob — shared by Run and the distributed
// subsystem (MapSplits / MergePartials2D). p must already be defaulted.
func (a *SendV2D) makeJob2D(file *hdfs.File, p Params) (*mapred.Job, repReducer2D, error) {
	packed, err := check2DDomain(p.U)
	if err != nil {
		return nil, nil, err
	}
	red := &coefAggReducer{u: p.U, k: p.K, transform: transform2D(p.U)}
	job := &mapred.Job{
		Name:      "send-v-2d",
		Splits:    file.Splits(p.SplitSize),
		Input:     mapred.SequentialInput{},
		NewMapper: func(hdfs.Split) mapred.Mapper { return &sendVMapper{u: packed} },
		Reducer:   red,
		// Packed 2D keys need 8 bytes; counts stay 4.
		PairBytes:   func(mapred.KV) int { return 12 },
		Streaming:   true,
		Seed:        p.Seed,
		Parallelism: p.Parallelism,
	}
	return job, red, nil
}

// Run builds the best k-term 2D representation exactly.
func (a *SendV2D) Run(ctx context.Context, file *hdfs.File, p Params) (*Output2D, error) {
	return runOneRound2D(ctx, a, file, p)
}

// coefAggReducer aggregates a frequency map and, at Close, applies a
// transform and selects the top-k (shared by 2D Send-V and TwoLevel-S-2D
// after estimator scaling).
type coefAggReducer struct {
	u         int64 // grid side, for the final representation
	k         int
	transform coefTransform
	freq      map[int64]float64
	top       []wavelet.Coef
}

func (r *coefAggReducer) representation2D() *wavelet.Representation2D {
	return wavelet.NewRepresentation2D(r.u, r.top)
}

func (r *coefAggReducer) Setup(*mapred.TaskContext) error {
	r.freq = make(map[int64]float64)
	return nil
}

func (r *coefAggReducer) Reduce(_ *mapred.TaskContext, key int64, vals []mapred.KV) error {
	for _, kv := range vals {
		r.freq[key] += kv.Val
	}
	return nil
}

func (r *coefAggReducer) Close(ctx *mapred.TaskContext) error {
	coefs := r.transform(ctx, r.freq)
	ctx.AddWork(float64(len(coefs)))
	r.top = wavelet.SelectTopK(coefs, r.k)
	return nil
}

// HWTopk2D is H-WTopk over 2D coefficients: identical three-round protocol
// with packed coefficient indices.
type HWTopk2D struct{}

// NewHWTopk2D returns the 2D H-WTopk algorithm.
func NewHWTopk2D() *HWTopk2D { return &HWTopk2D{} }

// Name implements the naming convention.
func (*HWTopk2D) Name() string { return "H-WTopk-2D" }

// Run computes the exact 2D top-k.
func (a *HWTopk2D) Run(ctx context.Context, file *hdfs.File, p Params) (*Output2D, error) {
	p = p.Defaults()
	packed, err := check2DDomain(p.U)
	if err != nil {
		return nil, err
	}
	if err := (Params{U: 2, K: p.K, Epsilon: p.Epsilon}).Defaults().validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	top, metrics, err := runHWTopkRounds(ctx, file, p, packed, transform2D(p.U))
	if err != nil {
		return nil, err
	}
	metrics.WallTime = time.Since(start)
	return &Output2D{
		Rep:     wavelet.NewRepresentation2D(p.U, top),
		Metrics: metrics,
	}, nil
}

// TwoLevelS2D is TwoLevel-S over packed 2D keys: the two-level sampling
// estimator is orthogonal to dimensionality; only the final transform
// changes.
type TwoLevelS2D struct{}

// NewTwoLevelS2D returns the 2D TwoLevel-S algorithm.
func NewTwoLevelS2D() *TwoLevelS2D { return &TwoLevelS2D{} }

// Name implements the naming convention.
func (*TwoLevelS2D) Name() string { return "TwoLevel-S-2D" }

// twoLevel2DReducer reconstructs ŝ, rescales to v̂, 2D-transforms.
type twoLevel2DReducer struct {
	u        int64
	k        int
	p        float64
	epsSqrtM float64
	rho      map[int64]float64
	nulls    map[int64]int64
	top      []wavelet.Coef
}

func (r *twoLevel2DReducer) representation2D() *wavelet.Representation2D {
	return wavelet.NewRepresentation2D(r.u, r.top)
}

func (r *twoLevel2DReducer) Setup(*mapred.TaskContext) error {
	r.rho = make(map[int64]float64)
	r.nulls = make(map[int64]int64)
	return nil
}

func (r *twoLevel2DReducer) Reduce(_ *mapred.TaskContext, key int64, vals []mapred.KV) error {
	for _, kv := range vals {
		if kv.Tag == mapred.TagNull {
			r.nulls[key]++
		} else {
			r.rho[key] += kv.Val
		}
	}
	return nil
}

func (r *twoLevel2DReducer) Close(ctx *mapred.TaskContext) error {
	vHat := make(map[int64]float64, len(r.rho)+len(r.nulls))
	for x, rho := range r.rho {
		vHat[x] += rho
	}
	for x, m := range r.nulls {
		vHat[x] += float64(m) / r.epsSqrtM
	}
	for x := range vHat {
		vHat[x] /= r.p
	}
	coefs := transform2D(r.u)(ctx, vHat)
	ctx.AddWork(float64(len(coefs)))
	r.top = wavelet.SelectTopK(coefs, r.k)
	return nil
}

// makeJob2D exposes TwoLevel-S-2D's one-round decomposition, shared by
// Run and the distributed subsystem. p must already be defaulted.
func (a *TwoLevelS2D) makeJob2D(file *hdfs.File, p Params) (*mapred.Job, repReducer2D, error) {
	packed, err := check2DDomain(p.U)
	if err != nil {
		return nil, nil, err
	}
	if p.Epsilon <= 0 || p.Epsilon >= 1 {
		return nil, nil, fmt.Errorf("core: epsilon %v out of (0,1)", p.Epsilon)
	}
	splits := file.Splits(p.SplitSize)
	m := len(splits)
	prob := sampleProb(p.Epsilon, file.NumRecords)
	red := &twoLevel2DReducer{
		u: p.U, k: p.K, p: prob,
		epsSqrtM: p.Epsilon * math.Sqrt(float64(m)),
	}
	job := &mapred.Job{
		Name:   "twolevel-s-2d",
		Splits: splits,
		Input:  mapred.RandomSampleInput{P: prob},
		NewMapper: func(hdfs.Split) mapred.Mapper {
			return &twoLevelSMapper{u: packed, eps: p.Epsilon, m: m}
		},
		Reducer: red,
		// Packed keys: 8 bytes; counts 4; NULL pairs key-only.
		PairBytes: func(kv mapred.KV) int {
			if kv.Tag == mapred.TagNull {
				return 8
			}
			return 12
		},
		Streaming:   true,
		Seed:        p.Seed,
		Parallelism: p.Parallelism,
	}
	return job, red, nil
}

// Run computes the approximate 2D top-k by two-level sampling.
func (a *TwoLevelS2D) Run(ctx context.Context, file *hdfs.File, p Params) (*Output2D, error) {
	return runOneRound2D(ctx, a, file, p)
}
