// Package exper reproduces the paper's evaluation (Section 5): one driver
// per figure, each running the relevant methods over scaled-down datasets
// and reporting the same series the paper plots — communication bytes,
// end-to-end running time (via the heterogeneous-cluster cost model), and
// SSE. EXPERIMENTS.md records the paper-vs-measured comparison.
package exper

import (
	"fmt"

	"wavelethist/internal/cluster"
	"wavelethist/internal/core"
	"wavelethist/internal/datagen"
	"wavelethist/internal/hdfs"
)

// Config is the scaled analogue of the paper's default setup. The paper's
// defaults: 50 GB (n = 13.4·10⁹ 4-byte records), u = 2²⁹, α = 1.1,
// k = 30, ε = 10⁻⁴, β = 256 MB (m = 200 splits), B = 50% of 100 Mbps.
// The scaled defaults keep the dimensionless knobs comparable: m = 256
// splits, k = 30, sampling probability p = 1/(ε²n) ≈ 0.06 (the paper's is
// ≈ 0.0075), 15 DataNodes.
type Config struct {
	N          int64   // records (default 2^22)
	U          int64   // domain (default 2^18)
	Alpha      float64 // skew (default 1.1)
	K          int     // coefficients (default 30)
	Epsilon    float64 // sampling error (default 2e-3)
	ChunkSize  int64   // split size β (default 64 KiB -> m = 256, paper: m = 200)
	RecordSize int     // bytes (default 4)
	Nodes      int     // DataNodes (default 15)
	Seed       uint64
	Bandwidth  float64 // fraction of the 100 Mbps switch (default 0.5)

	// Scale divides the simulated hardware rates (CPU ops/s, disk MB/s,
	// switch Mbps) to compensate for datasets ~2000× smaller than the
	// paper's: with paper-rate hardware on scaled data, the fixed
	// per-round overhead would swamp every network and CPU effect and
	// all running-time figures would go flat. Scaling the rates by the
	// data-size ratio preserves the paper's time balance (communication
	// dominates Send-V, sketch updates dominate Send-Sketch, overhead
	// taxes H-WTopk's three rounds). Default 2000. The fixed round
	// overhead itself deliberately does NOT scale — that is physical.
	Scale float64

	// SketchKBPerLogU is Send-Sketch's per-split budget in KiB per
	// log2(u). The paper recommends 20; at our split sizes (per-split
	// frequency vectors ~2000× smaller, domain only ~2000× smaller)
	// 20 would make every sketch larger than the data it summarizes, so
	// the scaled default is 2. Figure 9 sweeps this.
	SketchKBPerLogU int64

	// Quick shrinks every dataset for unit tests and smoke benches.
	Quick bool
}

// Default returns the scaled default configuration.
func Default() Config {
	return Config{
		N:               1 << 22,
		U:               1 << 18,
		Alpha:           1.1,
		K:               30,
		Epsilon:         2e-3,
		ChunkSize:       64 << 10,
		RecordSize:      4,
		Nodes:           15,
		Seed:            20111030, // the paper's arXiv date
		Bandwidth:       0.5,
		Scale:           2000,
		SketchKBPerLogU: 2,
	}
}

// Quick returns a fast configuration for tests and smoke runs.
func Quick() Config {
	c := Default()
	c.N = 1 << 16
	c.U = 1 << 12
	c.ChunkSize = 4 << 10 // m = 64
	c.Epsilon = 1.5e-2
	c.Quick = true
	return c
}

// Cluster returns the simulated cluster at the configured bandwidth and
// hardware scale.
func (c Config) Cluster() *cluster.Cluster {
	cl := cluster.Paper()
	cl.BandwidthFrac = c.Bandwidth
	scale := c.Scale
	if scale <= 0 {
		scale = 1
	}
	cl.CPUOpsPerSec /= scale
	cl.SwitchMbps /= scale
	for i := range cl.Nodes {
		cl.Nodes[i].DiskMBps /= scale
	}
	return cl
}

// Params returns core parameters derived from the config.
func (c Config) Params() core.Params {
	kb := c.SketchKBPerLogU
	if kb <= 0 {
		kb = 2
	}
	return core.Params{
		U:              c.U,
		K:              c.K,
		Epsilon:        c.Epsilon,
		Seed:           c.Seed,
		SketchBytes:    kb << 10 * int64(log2(c.U)),
		CombineEnabled: true,
	}.Defaults()
}

// dataset materializes the Zipf dataset for this config.
func (c Config) dataset() (*hdfs.File, error) {
	fs := hdfs.NewFileSystem(c.Nodes, c.ChunkSize)
	spec := datagen.NewZipfSpec(c.N, c.U, c.Alpha, c.Seed)
	spec.RecordSize = c.RecordSize
	return datagen.GenerateZipf(fs, "zipf", spec)
}

// worldcup materializes the WorldCup-like dataset (Figures 17-19). The
// domain matches the Zipf default, as in the paper (both u ≈ 2^29 there).
func (c Config) worldcup() (*hdfs.File, error) {
	fs := hdfs.NewFileSystem(c.Nodes, c.ChunkSize)
	spec := datagen.NewWorldCupSpec(c.N, c.Seed)
	if c.Quick {
		spec.ClientBits, spec.ObjectBits = 6, 6
	} else {
		spec.ClientBits, spec.ObjectBits = 8, 8
	}
	return datagen.GenerateWorldCup(fs, "worldcup", spec)
}

func (c Config) String() string {
	return fmt.Sprintf("n=%d u=2^%d α=%.1f k=%d ε=%.0e β=%dKiB m≈%d B=%.0f%%",
		c.N, log2(c.U), c.Alpha, c.K, c.Epsilon, c.ChunkSize>>10,
		c.N*int64(c.RecordSize)/c.ChunkSize, c.Bandwidth*100)
}

func log2(u int64) int {
	l := 0
	for int64(1)<<uint(l+1) <= u {
		l++
	}
	return l
}
