package exper

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Figure is one reproduced panel: rows are x-axis ticks, columns are
// methods (or measures), cells are the plotted values.
type Figure struct {
	ID      string // e.g. "fig5a"
	Title   string
	XLabel  string
	Unit    string // "bytes", "seconds", "SSE"
	XTicks  []string
	Columns []string
	Cells   [][]float64 // [len(XTicks)][len(Columns)]
}

// Print renders the figure as an aligned table.
func (f *Figure) Print(w io.Writer) {
	fmt.Fprintf(w, "%s — %s (%s)\n", f.ID, f.Title, f.Unit)
	widths := make([]int, len(f.Columns)+1)
	widths[0] = len(f.XLabel)
	for _, t := range f.XTicks {
		if len(t) > widths[0] {
			widths[0] = len(t)
		}
	}
	rendered := make([][]string, len(f.Cells))
	for i, row := range f.Cells {
		rendered[i] = make([]string, len(row))
		for j, v := range row {
			rendered[i][j] = formatCell(v, f.Unit)
			if len(rendered[i][j]) > widths[j+1] {
				widths[j+1] = len(rendered[i][j])
			}
		}
	}
	for j, c := range f.Columns {
		if len(c) > widths[j+1] {
			widths[j+1] = len(c)
		}
	}
	// Header.
	fmt.Fprintf(w, "  %-*s", widths[0], f.XLabel)
	for j, c := range f.Columns {
		fmt.Fprintf(w, "  %*s", widths[j+1], c)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  %s\n", strings.Repeat("-", sum(widths)+2*len(widths)))
	// Rows.
	for i, tick := range f.XTicks {
		fmt.Fprintf(w, "  %-*s", widths[0], tick)
		for j := range f.Columns {
			fmt.Fprintf(w, "  %*s", widths[j+1], rendered[i][j])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

func sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// formatCell renders a value in a compact engineering format.
func formatCell(v float64, unit string) string {
	if math.IsNaN(v) {
		return "-"
	}
	switch unit {
	case "bytes":
		return formatBytes(v)
	case "seconds":
		if v >= 1000 {
			return fmt.Sprintf("%.0fs", v)
		}
		return fmt.Sprintf("%.1fs", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

func formatBytes(v float64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.2fGiB", v/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.2fMiB", v/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.1fKiB", v/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", v)
	}
}

// newFigure allocates an empty figure grid.
func newFigure(id, title, xlabel, unit string, ticks, cols []string) *Figure {
	cells := make([][]float64, len(ticks))
	for i := range cells {
		cells[i] = make([]float64, len(cols))
		for j := range cells[i] {
			cells[i][j] = math.NaN()
		}
	}
	return &Figure{
		ID: id, Title: title, XLabel: xlabel, Unit: unit,
		XTicks: ticks, Columns: cols, Cells: cells,
	}
}

// CSV writes the figure as a CSV table (x tick label first, then one
// column per series) for plotting pipelines.
func (f *Figure) CSV(w io.Writer) error {
	row := make([]string, 0, len(f.Columns)+1)
	row = append(row, f.XLabel)
	row = append(row, f.Columns...)
	if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
		return err
	}
	for i, tick := range f.XTicks {
		row = row[:0]
		row = append(row, tick)
		for _, v := range f.Cells[i] {
			if math.IsNaN(v) {
				row = append(row, "")
			} else {
				row = append(row, fmt.Sprintf("%g", v))
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Column returns the series of one column (for assertions in tests).
func (f *Figure) Column(name string) []float64 {
	for j, c := range f.Columns {
		if c == name {
			out := make([]float64, len(f.Cells))
			for i := range f.Cells {
				out[i] = f.Cells[i][j]
			}
			return out
		}
	}
	return nil
}
