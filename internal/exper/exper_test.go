package exper

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// The exper tests run every driver in Quick mode and assert the paper's
// qualitative claims (who wins, by roughly what factor) hold in the
// reproduction — the "shape" contract of the benchmark harness.

func runDriver(t *testing.T, d Driver) []*Figure {
	t.Helper()
	figs, err := d(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) == 0 {
		t.Fatal("driver produced no figures")
	}
	return figs
}

func geoMean(xs []float64) float64 {
	var s float64
	n := 0
	for _, x := range xs {
		if !math.IsNaN(x) && x > 0 {
			s += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return math.Exp(s / float64(n))
}

func TestFig5Shape(t *testing.T) {
	figs := runDriver(t, Fig5)
	comm := figs[0]
	// H-WTopk communicates far less than Send-V at every k.
	sv, hw := comm.Column("Send-V"), comm.Column("H-WTopk")
	for i := range sv {
		if hw[i] >= sv[i] {
			t.Errorf("k-tick %d: H-WTopk comm %v >= Send-V %v", i, hw[i], sv[i])
		}
	}
	// TwoLevel-S ships the least of all methods (paper: overall winner).
	tl := comm.Column("TwoLevel-S")
	for _, col := range []string{"Send-V", "H-WTopk", "Send-Sketch"} {
		other := comm.Column(col)
		for i := range tl {
			if tl[i] >= other[i] {
				t.Errorf("TwoLevel-S comm %v >= %s %v at tick %d", tl[i], col, other[i], i)
			}
		}
	}
	// Send-V's communication is insensitive to k; H-WTopk's varies.
	svSpread := maxOf(sv) / minOf(sv)
	if svSpread > 1.01 {
		t.Errorf("Send-V comm varies with k by %vx; should be flat", svSpread)
	}
}

func TestFig5TimeShape(t *testing.T) {
	figs := runDriver(t, Fig5)
	tim := figs[1]
	// Send-Sketch is the slowest method (sketch updates dominate);
	// TwoLevel-S is the fastest.
	sk, tl, sv := tim.Column("Send-Sketch"), tim.Column("TwoLevel-S"), tim.Column("Send-V")
	if geoMean(sk) <= geoMean(sv) {
		t.Errorf("Send-Sketch time %v <= Send-V %v; paper has sketch slowest",
			geoMean(sk), geoMean(sv))
	}
	if geoMean(tl) >= geoMean(sv) {
		t.Errorf("TwoLevel-S time %v >= Send-V %v", geoMean(tl), geoMean(sv))
	}
}

func TestFig6Shape(t *testing.T) {
	figs := runDriver(t, Fig6)
	fig := figs[0]
	// Exact methods track the ideal SSE exactly.
	ideal, sv, hw := fig.Column("Ideal"), fig.Column("Send-V"), fig.Column("H-WTopk")
	for i := range ideal {
		if math.Abs(sv[i]-ideal[i]) > 1e-6*(1+ideal[i]) {
			t.Errorf("Send-V SSE %v != ideal %v", sv[i], ideal[i])
		}
		if math.Abs(hw[i]-ideal[i]) > 1e-6*(1+ideal[i]) {
			t.Errorf("H-WTopk SSE %v != ideal %v", hw[i], ideal[i])
		}
	}
	// SSE decreases with k for the exact methods.
	for i := 1; i < len(ideal); i++ {
		if ideal[i] > ideal[i-1]+1e-9 {
			t.Errorf("ideal SSE increased with k at tick %d", i)
		}
	}
	// Approximations are no better than ideal (up to tiny numerical slack).
	for _, col := range []string{"Improved-S", "TwoLevel-S", "Send-Sketch"} {
		vals := fig.Column(col)
		for i := range vals {
			if vals[i] < ideal[i]*(1-1e-9)-1e-9 {
				t.Errorf("%s SSE %v below ideal %v — impossible", col, vals[i], ideal[i])
			}
		}
	}
	// TwoLevel-S achieves SSE no worse than Improved-S on average
	// (unbiased vs biased estimator).
	if geoMean(fig.Column("TwoLevel-S")) > geoMean(fig.Column("Improved-S"))*1.5 {
		t.Errorf("TwoLevel-S mean SSE %v ≫ Improved-S %v",
			geoMean(fig.Column("TwoLevel-S")), geoMean(fig.Column("Improved-S")))
	}
}

func TestFig7Shape(t *testing.T) {
	figs := runDriver(t, Fig7)
	fig := figs[0]
	// Sampling SSE grows as ε grows (left-to-right in our sweep).
	tl := fig.Column("TwoLevel-S")
	if tl[len(tl)-1] <= tl[0] {
		t.Errorf("TwoLevel-S SSE did not grow with ε: %v", tl)
	}
	// H-WTopk is exact: constant, equal to ideal.
	hw, ideal := fig.Column("H-WTopk"), fig.Column("Ideal")
	for i := range hw {
		if math.Abs(hw[i]-ideal[i]) > 1e-6*(1+ideal[i]) {
			t.Errorf("H-WTopk SSE %v != ideal %v at tick %d", hw[i], ideal[i], i)
		}
	}
}

func TestFig8Shape(t *testing.T) {
	figs := runDriver(t, Fig8)
	comm := figs[0]
	// Communication decreases as ε increases, and TwoLevel-S < Improved-S
	// throughout.
	imp, tl := comm.Column("Improved-S"), comm.Column("TwoLevel-S")
	for i := range imp {
		if tl[i] >= imp[i] {
			t.Errorf("tick %d: TwoLevel-S comm %v >= Improved-S %v", i, tl[i], imp[i])
		}
	}
	if tl[0] <= tl[len(tl)-1] {
		t.Errorf("TwoLevel-S comm should shrink as ε grows: %v", tl)
	}
}

func TestFig9Shape(t *testing.T) {
	figs := runDriver(t, Fig9)
	if len(figs) != 3 {
		t.Fatalf("fig9 produced %d tables, want 3", len(figs))
	}
	for _, fig := range figs {
		// Within each method, lower SSE must cost more communication.
		sse, comm := fig.Column("SSE"), fig.Column("Comm(bytes)")
		for i := 1; i < len(sse); i++ {
			if sse[i] < sse[i-1] && comm[i] < comm[i-1]*0.5 {
				t.Errorf("%s: SSE fell but comm dropped sharply: %v -> %v", fig.ID, comm[i-1], comm[i])
			}
		}
	}
}

func TestFig10Shape(t *testing.T) {
	figs := runDriver(t, Fig10)
	comm := figs[0]
	// Send-V's communication grows with n; TwoLevel-S stays tiny and
	// beats Improved-S by a growing margin.
	sv := comm.Column("Send-V")
	if sv[len(sv)-1] <= sv[0] {
		t.Errorf("Send-V comm did not grow with n: %v", sv)
	}
	imp, tl := comm.Column("Improved-S"), comm.Column("TwoLevel-S")
	firstRatio := imp[0] / tl[0]
	lastRatio := imp[len(imp)-1] / tl[len(tl)-1]
	if lastRatio < firstRatio*0.8 {
		t.Errorf("TwoLevel-S advantage should widen with n (m): %v -> %v", firstRatio, lastRatio)
	}
}

func TestFig12Shape(t *testing.T) {
	figs := runDriver(t, Fig12)
	comm := figs[0]
	// Send-Coef ships more than Send-V at every domain, and degrades as
	// u grows.
	sv, sc := comm.Column("Send-V"), comm.Column("Send-Coef")
	for i := range sv {
		if sc[i] <= sv[i] {
			t.Errorf("u-tick %d: Send-Coef comm %v <= Send-V %v", i, sc[i], sv[i])
		}
	}
	if sc[len(sc)-1] <= sc[0] {
		t.Errorf("Send-Coef comm should grow with u: %v", sc)
	}
	// Sampling methods are insensitive to u.
	tl := comm.Column("TwoLevel-S")
	if maxOf(tl)/minOf(tl) > 3 {
		t.Errorf("TwoLevel-S comm should be u-insensitive: %v", tl)
	}
}

func TestFig13Shape(t *testing.T) {
	figs := runDriver(t, Fig13)
	comm := figs[0]
	// Larger splits (smaller m) mean less communication for every method.
	for _, col := range comm.Columns {
		vals := comm.Column(col)
		if vals[len(vals)-1] > vals[0]*1.1 {
			t.Errorf("%s comm grew with split size: %v", col, vals)
		}
	}
}

func TestFig14Shape(t *testing.T) {
	figs := runDriver(t, Fig14)
	comm := figs[0]
	// Less skew (α = 0.8, first tick) means more distinct keys per split,
	// so Send-V ships more than at α = 1.4 (last tick).
	sv := comm.Column("Send-V")
	if sv[0] <= sv[len(sv)-1] {
		t.Errorf("Send-V comm should fall as skew rises: %v", sv)
	}
}

func TestFig16Shape(t *testing.T) {
	// Bandwidth only matters when a method actually ships data; the
	// default Quick dataset is too small for the network to dominate the
	// fixed round overhead, so use a larger, less skewed dataset here
	// (more distinct keys per split -> Send-V ships megabytes).
	cfg := Quick()
	cfg.N = 1 << 19
	cfg.U = 1 << 14
	cfg.Alpha = 0.8
	figs, err := Fig16(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fig := figs[0]
	// Send-V's time falls (near-linearly) as bandwidth grows; every
	// method is non-increasing in B.
	for _, col := range fig.Columns {
		vals := fig.Column(col)
		for i := 1; i < len(vals); i++ {
			if vals[i] > vals[i-1]*1.001 {
				t.Errorf("%s time grew with bandwidth: %v", col, vals)
			}
		}
	}
	sv := fig.Column("Send-V")
	if sv[0] < 2*sv[len(sv)-1] {
		t.Errorf("Send-V at 10%% B (%v) should be ≫ at 100%% (%v)", sv[0], sv[len(sv)-1])
	}
}

func TestFig17Shape(t *testing.T) {
	figs := runDriver(t, Fig17)
	comm := figs[0]
	// Same ordering as the synthetic data: TwoLevel-S ≪ H-WTopk ≪ Send-V.
	sv := comm.Cells[0][indexOf(comm.Columns, "Send-V")]
	hw := comm.Cells[0][indexOf(comm.Columns, "H-WTopk")]
	tl := comm.Cells[0][indexOf(comm.Columns, "TwoLevel-S")]
	if !(tl < hw && hw < sv) {
		t.Errorf("WorldCup comm ordering violated: TwoLevel-S=%v H-WTopk=%v Send-V=%v", tl, hw, sv)
	}
}

func TestFig18Shape(t *testing.T) {
	figs := runDriver(t, Fig18)
	fig := figs[0]
	ideal := fig.Cells[0][indexOf(fig.Columns, "Ideal")]
	sv := fig.Cells[0][indexOf(fig.Columns, "Send-V")]
	if math.Abs(sv-ideal) > 1e-6*(1+ideal) {
		t.Errorf("WorldCup Send-V SSE %v != ideal %v", sv, ideal)
	}
}

func TestRemainingDriversRun(t *testing.T) {
	// Fig11, Fig15 and Fig19 are heavier; assert they run and produce
	// complete tables in Quick mode.
	for _, d := range []Driver{Fig11, Fig15, Fig19} {
		figs := runDriver(t, d)
		for _, fig := range figs {
			for i := range fig.Cells {
				for j := range fig.Cells[i] {
					if math.IsNaN(fig.Cells[i][j]) && fig.Unit != "mixed" {
						t.Errorf("%s: cell (%d,%d) not filled", fig.ID, i, j)
					}
				}
			}
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	if len(reg) != 15 {
		t.Fatalf("registry has %d drivers, want 15 (figures 5-19)", len(reg))
	}
	seen := map[string]bool{}
	for _, e := range reg {
		if seen[e.ID] {
			t.Errorf("duplicate driver id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Driver == nil {
			t.Errorf("nil driver for %s", e.ID)
		}
	}
}

func TestFigurePrint(t *testing.T) {
	fig := newFigure("figX", "Demo", "k", "bytes", []string{"k=10", "k=20"}, []string{"A", "B"})
	fig.Cells[0][0] = 1024
	fig.Cells[0][1] = 2 << 20
	fig.Cells[1][0] = 5
	fig.Cells[1][1] = math.NaN()
	var buf bytes.Buffer
	fig.Print(&buf)
	out := buf.String()
	for _, want := range []string{"figX", "k=10", "1.0KiB", "2.00MiB", "5B", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("printed table missing %q:\n%s", want, out)
		}
	}
}

func TestFigureCSV(t *testing.T) {
	fig := newFigure("figY", "Demo", "k", "bytes", []string{"k=1", "k=2"}, []string{"A", "B"})
	fig.Cells[0][0] = 10
	fig.Cells[0][1] = 20.5
	fig.Cells[1][0] = math.NaN()
	fig.Cells[1][1] = 3
	var buf bytes.Buffer
	if err := fig.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "k,A,B\nk=1,10,20.5\nk=2,,3\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestConfigString(t *testing.T) {
	s := Default().String()
	for _, want := range []string{"n=4194304", "u=2^18", "k=30"} {
		if !strings.Contains(s, want) {
			t.Errorf("config string %q missing %q", s, want)
		}
	}
}

func maxOf(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func minOf(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

func indexOf(cols []string, name string) int {
	for i, c := range cols {
		if c == name {
			return i
		}
	}
	return -1
}
