package exper

import (
	"context"
	"fmt"
	"sort"

	"wavelethist/internal/core"
	"wavelethist/internal/datagen"
	"wavelethist/internal/hdfs"
)

// Driver is one figure-reproduction function.
type Driver func(cfg Config) ([]*Figure, error)

// Registry maps experiment ids to drivers, in the paper's figure order.
func Registry() []struct {
	ID     string
	Driver Driver
} {
	return []struct {
		ID     string
		Driver Driver
	}{
		{"fig5", Fig5}, {"fig6", Fig6}, {"fig7", Fig7}, {"fig8", Fig8},
		{"fig9", Fig9}, {"fig10", Fig10}, {"fig11", Fig11}, {"fig12", Fig12},
		{"fig13", Fig13}, {"fig14", Fig14}, {"fig15", Fig15}, {"fig16", Fig16},
		{"fig17", Fig17}, {"fig18", Fig18}, {"fig19", Fig19},
	}
}

// names extracts algorithm display names.
func names(algs []core.Algorithm) []string {
	out := make([]string, len(algs))
	for i, a := range algs {
		out[i] = a.Name()
	}
	return out
}

// sweepKs returns the k sweep (paper: 10..50).
func sweepKs() []int { return []int{10, 20, 30, 40, 50} }

// sweepEps returns the scaled ε sweep (paper: 1e-5..1e-1; scaled so the
// level-1 sampling probability p = 1/(ε²n) stays in (0, 1)).
func (c Config) sweepEps() []float64 {
	base := c.Epsilon
	return []float64{base / 2, base, 2 * base, 4 * base, 8 * base}
}

// Fig5 — communication (a) and running time (b) vs k, five methods.
func Fig5(cfg Config) ([]*Figure, error) {
	file, err := cfg.dataset()
	if err != nil {
		return nil, err
	}
	algs := fiveMethods()
	ks := sweepKs()
	ticks := make([]string, len(ks))
	for i, k := range ks {
		ticks[i] = fmt.Sprintf("k=%d", k)
	}
	comm := newFigure("fig5a", "Cost analysis: vary k", "k", "bytes", ticks, names(algs))
	tim := newFigure("fig5b", "Cost analysis: vary k", "k", "seconds", ticks, names(algs))
	for i, k := range ks {
		p := cfg.Params()
		p.K = k
		for j, alg := range algs {
			mr, err := runOne(alg, file, p, cfg, nil)
			if err != nil {
				return nil, err
			}
			comm.Cells[i][j] = float64(mr.CommBytes)
			tim.Cells[i][j] = mr.TimeSec
		}
	}
	return []*Figure{comm, tim}, nil
}

// Fig6 — SSE vs k, five methods plus the ideal (= exact) SSE.
func Fig6(cfg Config) ([]*Figure, error) {
	file, err := cfg.dataset()
	if err != nil {
		return nil, err
	}
	dense := denseFreq(file, cfg.U)
	algs := fiveMethods()
	ks := sweepKs()
	ticks := make([]string, len(ks))
	for i, k := range ks {
		ticks[i] = fmt.Sprintf("k=%d", k)
	}
	fig := newFigure("fig6", "SSE: vary k", "k", "SSE", ticks, append(names(algs), "Ideal"))
	for i, k := range ks {
		p := cfg.Params()
		p.K = k
		for j, alg := range algs {
			mr, err := runOne(alg, file, p, cfg, dense)
			if err != nil {
				return nil, err
			}
			fig.Cells[i][j] = mr.SSE
		}
		fig.Cells[i][len(algs)] = idealSSE(dense, k)
	}
	return []*Figure{fig}, nil
}

// Fig7 — SSE vs ε: H-WTopk (exact, constant), Improved-S, TwoLevel-S,
// ideal.
func Fig7(cfg Config) ([]*Figure, error) {
	file, err := cfg.dataset()
	if err != nil {
		return nil, err
	}
	dense := denseFreq(file, cfg.U)
	algs := []core.Algorithm{core.NewHWTopk(), core.NewImprovedS(), core.NewTwoLevelS()}
	eps := cfg.sweepEps()
	ticks := make([]string, len(eps))
	for i, e := range eps {
		ticks[i] = fmt.Sprintf("ε=%.1e", e)
	}
	fig := newFigure("fig7", "SSE: vary ε", "ε", "SSE", ticks, append(names(algs), "Ideal"))
	for i, e := range eps {
		p := cfg.Params()
		p.Epsilon = e
		for j, alg := range algs {
			mr, err := runOne(alg, file, p, cfg, dense)
			if err != nil {
				return nil, err
			}
			fig.Cells[i][j] = mr.SSE
		}
		fig.Cells[i][len(algs)] = idealSSE(dense, cfg.K)
	}
	return []*Figure{fig}, nil
}

// Fig8 — communication (a) and running time (b) vs ε for the two sampling
// methods.
func Fig8(cfg Config) ([]*Figure, error) {
	file, err := cfg.dataset()
	if err != nil {
		return nil, err
	}
	algs := []core.Algorithm{core.NewImprovedS(), core.NewTwoLevelS()}
	eps := cfg.sweepEps()
	ticks := make([]string, len(eps))
	for i, e := range eps {
		ticks[i] = fmt.Sprintf("ε=%.1e", e)
	}
	comm := newFigure("fig8a", "Cost analysis: vary ε", "ε", "bytes", ticks, names(algs))
	tim := newFigure("fig8b", "Cost analysis: vary ε", "ε", "seconds", ticks, names(algs))
	for i, e := range eps {
		p := cfg.Params()
		p.Epsilon = e
		for j, alg := range algs {
			mr, err := runOne(alg, file, p, cfg, nil)
			if err != nil {
				return nil, err
			}
			comm.Cells[i][j] = float64(mr.CommBytes)
			tim.Cells[i][j] = mr.TimeSec
		}
	}
	return []*Figure{comm, tim}, nil
}

// Fig9 — communication (a) and running time (b) versus achieved SSE for
// the approximation methods: ε sweeps for the sampling algorithms, sketch-
// budget sweep for Send-Sketch. One table per method with columns
// (SSE, comm, time), sorted by decreasing SSE like the paper's x-axis.
func Fig9(cfg Config) ([]*Figure, error) {
	file, err := cfg.dataset()
	if err != nil {
		return nil, err
	}
	dense := denseFreq(file, cfg.U)
	return costVsSSE(cfg, file, dense, "fig9")
}

func costVsSSE(cfg Config, file *hdfs.File, dense []float64, id string) ([]*Figure, error) {
	type point struct {
		label string
		mr    MethodResult
	}
	var figures []*Figure
	emit := func(name string, pts []point) {
		sort.Slice(pts, func(a, b int) bool { return pts[a].mr.SSE > pts[b].mr.SSE })
		ticks := make([]string, len(pts))
		for i, pt := range pts {
			ticks[i] = pt.label
		}
		fig := newFigure(fmt.Sprintf("%s-%s", id, name), "Cost vs SSE: "+name,
			"setting", "mixed", ticks, []string{"SSE", "Comm(bytes)", "Time(s)"})
		for i, pt := range pts {
			fig.Cells[i][0] = pt.mr.SSE
			fig.Cells[i][1] = float64(pt.mr.CommBytes)
			fig.Cells[i][2] = pt.mr.TimeSec
		}
		figures = append(figures, fig)
	}

	for _, alg := range []core.Algorithm{core.NewImprovedS(), core.NewTwoLevelS()} {
		var pts []point
		for _, e := range cfg.sweepEps() {
			p := cfg.Params()
			p.Epsilon = e
			mr, err := runOne(alg, file, p, cfg, dense)
			if err != nil {
				return nil, err
			}
			pts = append(pts, point{fmt.Sprintf("ε=%.1e", e), mr})
		}
		emit(alg.Name(), pts)
	}
	// Send-Sketch: sweep the per-split sketch budget around the config's
	// scaled default (the paper sweeps around 20KB·log2(u)).
	base := cfg.Params().SketchBytes
	var pts []point
	for _, mult := range []int64{1, 2, 4} {
		budget := base * mult
		p := cfg.Params()
		p.SketchBytes = budget
		mr, err := runOne(core.NewSendSketch(), file, p, cfg, dense)
		if err != nil {
			return nil, err
		}
		pts = append(pts, point{formatBytes(float64(budget)), mr})
	}
	emit("Send-Sketch", pts)
	return figures, nil
}

// Fig10 — communication (a) and running time (b) vs dataset size n. As n
// grows so does m (fixed split size), the regime where TwoLevel-S's
// O(√m/ε) advantage over Improved-S's O(m/ε) widens.
func Fig10(cfg Config) ([]*Figure, error) {
	ns := []int64{cfg.N / 8, cfg.N / 4, cfg.N / 2, cfg.N, cfg.N * 2}
	algs := fiveMethods()
	ticks := make([]string, len(ns))
	for i, n := range ns {
		ticks[i] = fmt.Sprintf("n=%d", n)
	}
	comm := newFigure("fig10a", "Cost analysis: vary n", "n", "bytes", ticks, names(algs))
	tim := newFigure("fig10b", "Cost analysis: vary n", "n", "seconds", ticks, names(algs))
	for i, n := range ns {
		c := cfg
		c.N = n
		file, err := c.dataset()
		if err != nil {
			return nil, err
		}
		for j, alg := range algs {
			mr, err := runOne(alg, file, c.Params(), c, nil)
			if err != nil {
				return nil, err
			}
			comm.Cells[i][j] = float64(mr.CommBytes)
			tim.Cells[i][j] = mr.TimeSec
		}
	}
	return []*Figure{comm, tim}, nil
}

// Fig11 — communication (a) and running time (b) vs record size, with the
// number of records fixed (the paper fixes 4,194,304 records and pads
// each to 4B..100kB).
func Fig11(cfg Config) ([]*Figure, error) {
	recs := cfg.N / 32
	sizes := []int{4, 16, 64, 256, 1024}
	if cfg.Quick {
		sizes = []int{4, 64, 512}
	}
	algs := fiveMethods()
	ticks := make([]string, len(sizes))
	for i, s := range sizes {
		ticks[i] = fmt.Sprintf("%dB", s)
	}
	comm := newFigure("fig11a", "Cost analysis: vary record size", "record", "bytes", ticks, names(algs))
	tim := newFigure("fig11b", "Cost analysis: vary record size", "record", "seconds", ticks, names(algs))
	for i, s := range sizes {
		c := cfg
		c.N = recs
		c.RecordSize = s
		file, err := c.dataset()
		if err != nil {
			return nil, err
		}
		for j, alg := range algs {
			mr, err := runOne(alg, file, c.Params(), c, nil)
			if err != nil {
				return nil, err
			}
			comm.Cells[i][j] = float64(mr.CommBytes)
			tim.Cells[i][j] = mr.TimeSec
		}
	}
	return []*Figure{comm, tim}, nil
}

// Fig12 — communication (a) and running time (b) vs domain size u,
// including Send-Coef (the figure the paper uses to retire it).
func Fig12(cfg Config) ([]*Figure, error) {
	var us []int64
	for _, shift := range []uint{8, 6, 4, 2, 0} {
		u := cfg.U >> shift
		if u < 1<<6 {
			u = 1 << 6
		}
		if len(us) == 0 || us[len(us)-1] != u {
			us = append(us, u)
		}
	}
	algs := append(fiveMethods(), core.NewSendCoef())
	ticks := make([]string, len(us))
	for i, u := range us {
		ticks[i] = fmt.Sprintf("u=2^%d", log2(u))
	}
	comm := newFigure("fig12a", "Cost analysis: vary u", "u", "bytes", ticks, names(algs))
	tim := newFigure("fig12b", "Cost analysis: vary u", "u", "seconds", ticks, names(algs))
	for i, u := range us {
		c := cfg
		c.U = u
		file, err := c.dataset()
		if err != nil {
			return nil, err
		}
		for j, alg := range algs {
			mr, err := runOne(alg, file, c.Params(), c, nil)
			if err != nil {
				return nil, err
			}
			comm.Cells[i][j] = float64(mr.CommBytes)
			tim.Cells[i][j] = mr.TimeSec
		}
	}
	return []*Figure{comm, tim}, nil
}

// Fig13 — communication (a) and running time (b) vs split size β (n
// fixed, so m shrinks as β grows).
func Fig13(cfg Config) ([]*Figure, error) {
	file, err := cfg.dataset()
	if err != nil {
		return nil, err
	}
	betas := []int64{cfg.ChunkSize / 4, cfg.ChunkSize / 2, cfg.ChunkSize,
		cfg.ChunkSize * 2, cfg.ChunkSize * 4}
	algs := fiveMethods()
	ticks := make([]string, len(betas))
	for i, b := range betas {
		ticks[i] = fmt.Sprintf("β=%dKiB", b>>10)
	}
	comm := newFigure("fig13a", "Cost analysis: vary split size β", "β", "bytes", ticks, names(algs))
	tim := newFigure("fig13b", "Cost analysis: vary split size β", "β", "seconds", ticks, names(algs))
	for i, b := range betas {
		p := cfg.Params()
		p.SplitSize = b
		for j, alg := range algs {
			mr, err := runOne(alg, file, p, cfg, nil)
			if err != nil {
				return nil, err
			}
			comm.Cells[i][j] = float64(mr.CommBytes)
			tim.Cells[i][j] = mr.TimeSec
		}
	}
	return []*Figure{comm, tim}, nil
}

// Fig14 — communication (a) and running time (b) vs skew α.
func Fig14(cfg Config) ([]*Figure, error) {
	alphas := []float64{0.8, 1.1, 1.4}
	algs := fiveMethods()
	ticks := make([]string, len(alphas))
	for i, a := range alphas {
		ticks[i] = fmt.Sprintf("α=%.1f", a)
	}
	comm := newFigure("fig14a", "Cost analysis: vary skewness α", "α", "bytes", ticks, names(algs))
	tim := newFigure("fig14b", "Cost analysis: vary skewness α", "α", "seconds", ticks, names(algs))
	for i, a := range alphas {
		c := cfg
		c.Alpha = a
		file, err := c.dataset()
		if err != nil {
			return nil, err
		}
		for j, alg := range algs {
			mr, err := runOne(alg, file, c.Params(), c, nil)
			if err != nil {
				return nil, err
			}
			comm.Cells[i][j] = float64(mr.CommBytes)
			tim.Cells[i][j] = mr.TimeSec
		}
	}
	return []*Figure{comm, tim}, nil
}

// Fig15 — SSE vs skew α.
func Fig15(cfg Config) ([]*Figure, error) {
	alphas := []float64{0.8, 1.1, 1.4}
	algs := fiveMethods()
	ticks := make([]string, len(alphas))
	for i, a := range alphas {
		ticks[i] = fmt.Sprintf("α=%.1f", a)
	}
	fig := newFigure("fig15", "SSE: vary α", "α", "SSE", ticks, append(names(algs), "Ideal"))
	for i, a := range alphas {
		c := cfg
		c.Alpha = a
		file, err := c.dataset()
		if err != nil {
			return nil, err
		}
		dense := denseFreq(file, c.U)
		for j, alg := range algs {
			mr, err := runOne(alg, file, c.Params(), c, dense)
			if err != nil {
				return nil, err
			}
			fig.Cells[i][j] = mr.SSE
		}
		fig.Cells[i][len(algs)] = idealSSE(dense, c.K)
	}
	return []*Figure{fig}, nil
}

// Fig16 — running time vs available bandwidth B. Each method runs once;
// the cost model re-evaluates the same work profile per bandwidth (the
// communication is unaffected by B, as the paper notes).
func Fig16(cfg Config) ([]*Figure, error) {
	file, err := cfg.dataset()
	if err != nil {
		return nil, err
	}
	algs := fiveMethods()
	fracs := []float64{0.1, 0.25, 0.5, 0.75, 1.0}
	ticks := make([]string, len(fracs))
	for i, f := range fracs {
		ticks[i] = fmt.Sprintf("B=%.0f%%", f*100)
	}
	fig := newFigure("fig16", "Running time: vary bandwidth B", "B", "seconds", ticks, names(algs))
	for j, alg := range algs {
		out, err := alg.Run(context.Background(), file, cfg.Params())
		if err != nil {
			return nil, err
		}
		for i, f := range fracs {
			c := cfg.Cluster()
			c.BandwidthFrac = f
			fig.Cells[i][j] = out.Metrics.SimulatedSeconds(c)
		}
	}
	return []*Figure{fig}, nil
}

// Fig17 — communication (a) and running time (b) on the WorldCup-like
// dataset at the default parameters.
func Fig17(cfg Config) ([]*Figure, error) {
	file, err := cfg.worldcup()
	if err != nil {
		return nil, err
	}
	u := worldcupU(cfg)
	algs := fiveMethods()
	comm := newFigure("fig17a", "WorldCup dataset", "dataset", "bytes",
		[]string{"WorldCup"}, names(algs))
	tim := newFigure("fig17b", "WorldCup dataset", "dataset", "seconds",
		[]string{"WorldCup"}, names(algs))
	c := cfg
	c.U = u
	p := c.Params()
	for j, alg := range algs {
		mr, err := runOne(alg, file, p, c, nil)
		if err != nil {
			return nil, err
		}
		comm.Cells[0][j] = float64(mr.CommBytes)
		tim.Cells[0][j] = mr.TimeSec
	}
	return []*Figure{comm, tim}, nil
}

// worldcupU returns the clientobject domain of the scaled generator.
func worldcupU(cfg Config) int64 {
	if cfg.Quick {
		return 1 << 12
	}
	return 1 << 16
}

// Fig18 — SSE on the WorldCup-like dataset.
func Fig18(cfg Config) ([]*Figure, error) {
	file, err := cfg.worldcup()
	if err != nil {
		return nil, err
	}
	u := worldcupU(cfg)
	dense := datagen.DenseFrequencies(datagen.ExactFrequencies(file), u)
	algs := fiveMethods()
	fig := newFigure("fig18", "SSE on WorldCup", "dataset", "SSE",
		[]string{"WorldCup"}, append(names(algs), "Ideal"))
	c := cfg
	c.U = u
	p := c.Params()
	for j, alg := range algs {
		mr, err := runOne(alg, file, p, c, dense)
		if err != nil {
			return nil, err
		}
		fig.Cells[0][j] = mr.SSE
	}
	fig.Cells[0][len(algs)] = idealSSE(dense, cfg.K)
	return []*Figure{fig}, nil
}

// Fig19 — communication and running time vs SSE on WorldCup.
func Fig19(cfg Config) ([]*Figure, error) {
	file, err := cfg.worldcup()
	if err != nil {
		return nil, err
	}
	u := worldcupU(cfg)
	dense := datagen.DenseFrequencies(datagen.ExactFrequencies(file), u)
	c := cfg
	c.U = u
	return costVsSSE(c, file, dense, "fig19")
}
