package exper

import (
	"context"
	"fmt"
	"math"

	"wavelethist/internal/core"
	"wavelethist/internal/datagen"
	"wavelethist/internal/hdfs"
	"wavelethist/internal/wavelet"
)

// MethodResult is one (method, x-value) measurement.
type MethodResult struct {
	CommBytes int64
	TimeSec   float64 // simulated end-to-end seconds
	SSE       float64 // NaN when not evaluated
}

// runOne executes one method over a dataset. When dense is non-nil the
// SSE against it is computed.
func runOne(alg core.Algorithm, file *hdfs.File, p core.Params, cfg Config, dense []float64) (MethodResult, error) {
	out, err := alg.Run(context.Background(), file, p)
	if err != nil {
		return MethodResult{}, fmt.Errorf("%s: %w", alg.Name(), err)
	}
	mr := MethodResult{
		CommBytes: out.Metrics.TotalCommBytes(),
		TimeSec:   out.Metrics.SimulatedSeconds(cfg.Cluster()),
		SSE:       math.NaN(),
	}
	if dense != nil {
		mr.SSE = out.Rep.SSEAgainst(dense)
	}
	return mr, nil
}

// denseFreq scans the file's exact frequencies into a dense vector.
func denseFreq(file *hdfs.File, u int64) []float64 {
	return datagen.DenseFrequencies(datagen.ExactFrequencies(file), u)
}

// idealSSE is the best possible k-term SSE (achieved by the exact
// methods), the "Ideal SSE" line of Figures 6-7.
func idealSSE(dense []float64, k int) float64 {
	return wavelet.IdealSSE(wavelet.Transform(dense), k)
}

// fiveMethods is the method set of most figures (Send-Coef joins only in
// Figure 12, where the paper retires it).
func fiveMethods() []core.Algorithm {
	return []core.Algorithm{
		core.NewSendV(), core.NewHWTopk(), core.NewSendSketch(),
		core.NewImprovedS(), core.NewTwoLevelS(),
	}
}
