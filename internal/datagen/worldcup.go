package datagen

import (
	"fmt"

	"wavelethist/internal/hdfs"
	"wavelethist/internal/wavelet"
	"wavelethist/internal/zipf"
)

// WorldCupSpec describes the WorldCup-like access-log generator. The real
// dataset [6] is 92 days of web-server logs; the paper keys records by
// "clientobject", the pairing of client id and object id (u ≈ 2^29, ~4·10^8
// distinct pairs over 1.35·10^9 records). We reproduce the *distributional*
// features the algorithms observe:
//
//   - client activity is heavily skewed (a few crawlers/proxies dominate);
//   - object popularity is skewed with a rotating daily "hot set"
//     (match-day pages and images);
//   - the clientobject key is the pair (client, object) packed into a
//     power-of-two domain, so distinct-pair count ≪ domain size.
type WorldCupSpec struct {
	N          int64 // records (requests)
	ClientBits uint  // domain of clients = 2^ClientBits
	ObjectBits uint  // domain of objects = 2^ObjectBits
	Days       int   // temporal structure; 92 in the real trace
	RecordSize int   // bytes per record (>= 4 when ClientBits+ObjectBits <= 32)
	Seed       uint64
}

// NewWorldCupSpec returns the scaled default: 2^10 clients × 2^10 objects
// (u = 2^20, matching the scaled Zipf default), 92 days, 4-byte records.
func NewWorldCupSpec(n int64, seed uint64) WorldCupSpec {
	return WorldCupSpec{
		N:          n,
		ClientBits: 10,
		ObjectBits: 10,
		Days:       92,
		RecordSize: 4,
		Seed:       seed,
	}
}

// U returns the clientobject key domain size.
func (s WorldCupSpec) U() int64 { return int64(1) << (s.ClientBits + s.ObjectBits) }

// GenerateWorldCup writes the access-log dataset. Keys are packed
// clientobject ids: client·2^ObjectBits + object.
func GenerateWorldCup(fs *hdfs.FileSystem, name string, spec WorldCupSpec) (*hdfs.File, error) {
	if spec.N < 1 {
		return nil, fmt.Errorf("datagen: need at least one record")
	}
	if spec.Days < 1 {
		spec.Days = 1
	}
	if spec.RecordSize < 4 {
		spec.RecordSize = 4
	}
	u := spec.U()
	if !wavelet.IsPowerOfTwo(u) {
		return nil, fmt.Errorf("datagen: worldcup domain must be a power of two")
	}
	if spec.ClientBits+spec.ObjectBits > 32 && spec.RecordSize < 8 {
		return nil, fmt.Errorf("datagen: domain needs 8-byte records")
	}
	w, err := fs.Create(name, spec.RecordSize)
	if err != nil {
		return nil, err
	}

	rng := zipf.NewRNG(spec.Seed)
	numClients := int64(1) << spec.ClientBits
	numObjects := int64(1) << spec.ObjectBits
	// Client skew ~1.2: proxies and crawlers dominate request volume.
	clients := zipf.NewZipf(numClients, 1.2)
	// Object skew ~1.1 globally: site-wide assets (index pages, logos,
	// shared images) dominate every day of the trace, which is what keeps
	// heavy clientobject pairs stable across splits.
	objects := zipf.NewZipf(numObjects, 1.1)
	// Scatter rank->id so popular clients/objects are not clustered.
	clientPerm := zipf.NewPerm(numClients, spec.Seed^0x11)
	objectPerm := zipf.NewPerm(numObjects, spec.Seed^0x22)

	// Per-day hot-set: a day's matches concentrate accesses on a small
	// rotating subset of objects.
	hotSize := numObjects / 64
	if hotSize < 1 {
		hotSize = 1
	}
	hot := zipf.NewZipf(hotSize, 1.1)

	perDay := spec.N / int64(spec.Days)
	if perDay < 1 {
		perDay = 1
	}
	for i := int64(0); i < spec.N; i++ {
		day := i / perDay
		if day >= int64(spec.Days) {
			day = int64(spec.Days) - 1
		}
		client := clientPerm.Apply(clients.Sample(rng) - 1)
		var object int64
		if rng.Bernoulli(0.35) {
			// Hot-set access (match-day pages): the hot window drifts a
			// quarter of its width per day, so consecutive days overlap
			// 75% — popular content decays over a few days rather than
			// vanishing overnight.
			off := hot.Sample(rng) - 1
			object = objectPerm.Apply((day*hotSize/4 + off) % numObjects)
		} else {
			object = objectPerm.Apply(objects.Sample(rng) - 1)
		}
		w.Append(client<<spec.ObjectBits | object)
	}
	return w.Close(), nil
}
