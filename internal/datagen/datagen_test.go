package datagen

import (
	"math"
	"sort"
	"testing"

	"wavelethist/internal/hdfs"
)

func TestGenerateZipfBasics(t *testing.T) {
	fs := hdfs.NewFileSystem(4, 4096)
	spec := NewZipfSpec(10000, 1<<12, 1.1, 7)
	f, err := GenerateZipf(fs, "z", spec)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumRecords != 10000 {
		t.Fatalf("records = %d", f.NumRecords)
	}
	freq := ExactFrequencies(f)
	var total float64
	maxKey := int64(-1)
	for x, c := range freq {
		if x < 0 || x >= 1<<12 {
			t.Fatalf("key %d out of domain", x)
		}
		if x > maxKey {
			maxKey = x
		}
		total += c
	}
	if total != 10000 {
		t.Fatalf("frequency mass = %v", total)
	}
	// Zipf(1.1) over 4096 keys: far fewer distinct keys than records.
	if len(freq) >= 5000 {
		t.Errorf("distinct keys = %d; expected heavy skew", len(freq))
	}
}

func TestGenerateZipfSkewOrdering(t *testing.T) {
	fs := hdfs.NewFileSystem(2, 1<<20)
	topShare := func(alpha float64) float64 {
		spec := NewZipfSpec(20000, 1<<14, alpha, 3)
		f, err := GenerateZipf(fs, "s", spec)
		if err != nil {
			t.Fatal(err)
		}
		freq := ExactFrequencies(f)
		counts := make([]float64, 0, len(freq))
		for _, c := range freq {
			counts = append(counts, c)
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(counts)))
		var top float64
		for i := 0; i < 10 && i < len(counts); i++ {
			top += counts[i]
		}
		return top / 20000
	}
	s08, s14 := topShare(0.8), topShare(1.4)
	if s08 >= s14 {
		t.Errorf("top-10 share alpha=0.8 (%v) >= alpha=1.4 (%v)", s08, s14)
	}
}

func TestGenerateZipfDeterministic(t *testing.T) {
	fs := hdfs.NewFileSystem(2, 1<<20)
	spec := NewZipfSpec(5000, 1<<10, 1.1, 42)
	f1, _ := GenerateZipf(fs, "a", spec)
	f2, _ := GenerateZipf(fs, "b", spec)
	fr1, fr2 := ExactFrequencies(f1), ExactFrequencies(f2)
	if len(fr1) != len(fr2) {
		t.Fatal("same seed produced different datasets")
	}
	for x, c := range fr1 {
		if fr2[x] != c {
			t.Fatalf("same seed differs at key %d", x)
		}
	}
}

func TestGenerateZipfPermutationScatters(t *testing.T) {
	fs := hdfs.NewFileSystem(2, 1<<20)
	spec := NewZipfSpec(30000, 1<<12, 1.1, 5)
	spec.PermuteKeys = false
	fNo, _ := GenerateZipf(fs, "no", spec)
	spec.PermuteKeys = true
	fYes, _ := GenerateZipf(fs, "yes", spec)
	// Without permutation, mass concentrates on the lowest keys.
	lowMass := func(f *hdfs.File) float64 {
		freq := ExactFrequencies(f)
		var low, total float64
		for x, c := range freq {
			if x < 64 {
				low += c
			}
			total += c
		}
		return low / total
	}
	if lowMass(fNo) < 0.5 {
		t.Errorf("unpermuted low-key mass = %v, expected concentration", lowMass(fNo))
	}
	if lowMass(fYes) > 0.3 {
		t.Errorf("permuted low-key mass = %v, expected scattering", lowMass(fYes))
	}
}

func TestGenerateZipfValidation(t *testing.T) {
	fs := hdfs.NewFileSystem(2, 1<<20)
	bad := []ZipfSpec{
		{N: 0, U: 16, Alpha: 1, RecordSize: 4},
		{N: 10, U: 15, Alpha: 1, RecordSize: 4},
		{N: 10, U: 16, Alpha: 0, RecordSize: 4},
		{N: 10, U: 16, Alpha: 1, RecordSize: 2},
	}
	for i, s := range bad {
		if _, err := GenerateZipf(fs, "bad", s); err == nil {
			t.Errorf("spec %d accepted", i)
		}
	}
}

func TestGenerateZipfRecordSize(t *testing.T) {
	fs := hdfs.NewFileSystem(2, 1<<20)
	spec := NewZipfSpec(100, 1<<10, 1.1, 1)
	spec.RecordSize = 64
	f, err := GenerateZipf(fs, "r", spec)
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 6400 {
		t.Errorf("size = %d, want 6400", f.Size())
	}
}

func TestGenerateZipfVar(t *testing.T) {
	fs := hdfs.NewFileSystem(2, 1<<20)
	spec := NewZipfSpec(500, 1<<10, 1.1, 9)
	f, err := GenerateZipfVar(fs, "v", spec, 40)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumRecords != 500 {
		t.Fatalf("records = %d", f.NumRecords)
	}
	freq := ExactFrequencies(f)
	var total float64
	for _, c := range freq {
		total += c
	}
	if total != 500 {
		t.Errorf("mass = %v", total)
	}
}

func TestDenseFrequencies(t *testing.T) {
	freq := map[int64]float64{0: 2, 5: 1, 100: 3}
	v := DenseFrequencies(freq, 8)
	if v[0] != 2 || v[5] != 1 {
		t.Errorf("dense = %v", v)
	}
	// Out-of-range keys are dropped, not panicking.
	var sum float64
	for _, x := range v {
		sum += x
	}
	if sum != 3 {
		t.Errorf("in-domain mass = %v, want 3", sum)
	}
}

func TestWorldCupGenerator(t *testing.T) {
	fs := hdfs.NewFileSystem(4, 1<<20)
	spec := NewWorldCupSpec(50000, 11)
	f, err := GenerateWorldCup(fs, "wc", spec)
	if err != nil {
		t.Fatal(err)
	}
	freq := ExactFrequencies(f)
	u := spec.U()
	var total float64
	for x, c := range freq {
		if x < 0 || x >= u {
			t.Fatalf("key %d out of domain %d", x, u)
		}
		total += c
	}
	if total != 50000 {
		t.Fatalf("mass = %v", total)
	}
	// Skewed: distinct pairs well below record count but substantial.
	if len(freq) < 1000 || len(freq) > 45000 {
		t.Errorf("distinct clientobject pairs = %d; unexpected shape", len(freq))
	}
	// Heavy hitters exist (crawler-like clients on hot objects).
	var maxC float64
	for _, c := range freq {
		if c > maxC {
			maxC = c
		}
	}
	if maxC < 20 {
		t.Errorf("max pair frequency = %v; expected heavy hitters", maxC)
	}
}

func TestWorldCupSkewResemblesZipf(t *testing.T) {
	// The paper observes Zipf(1.1) data approximates WorldCup well: check
	// the rank-frequency curve is roughly linear in log-log (skewness),
	// i.e. top-1% of keys carries a large fraction of mass.
	fs := hdfs.NewFileSystem(4, 1<<20)
	f, err := GenerateWorldCup(fs, "wc2", NewWorldCupSpec(100000, 3))
	if err != nil {
		t.Fatal(err)
	}
	freq := ExactFrequencies(f)
	counts := make([]float64, 0, len(freq))
	var total float64
	for _, c := range freq {
		counts = append(counts, c)
		total += c
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(counts)))
	onePct := len(counts) / 100
	if onePct < 1 {
		onePct = 1
	}
	var topMass float64
	for i := 0; i < onePct; i++ {
		topMass += counts[i]
	}
	share := topMass / total
	if share < 0.15 {
		t.Errorf("top-1%% share = %v; expected skewed access pattern", share)
	}
	if math.IsNaN(share) {
		t.Fatal("NaN share")
	}
}

func TestWorldCupValidation(t *testing.T) {
	fs := hdfs.NewFileSystem(2, 1<<20)
	if _, err := GenerateWorldCup(fs, "bad", WorldCupSpec{N: 0}); err == nil {
		t.Error("accepted zero records")
	}
	spec := WorldCupSpec{N: 10, ClientBits: 20, ObjectBits: 20, RecordSize: 4, Days: 1}
	if _, err := GenerateWorldCup(fs, "bad", spec); err == nil {
		t.Error("accepted 2^40 domain with 4-byte records")
	}
}

func TestWorldCupWideDomain(t *testing.T) {
	fs := hdfs.NewFileSystem(2, 1<<20)
	spec := WorldCupSpec{N: 1000, ClientBits: 18, ObjectBits: 16, Days: 10, RecordSize: 8, Seed: 1}
	f, err := GenerateWorldCup(fs, "wide", spec)
	if err != nil {
		t.Fatal(err)
	}
	for x := range ExactFrequencies(f) {
		if x < 0 || x >= spec.U() {
			t.Fatalf("key %d out of 2^34 domain", x)
		}
	}
}
