// Package datagen generates the paper's evaluation datasets into the
// simulated HDFS: Zipfian key datasets with configurable skew α, domain u,
// record count n and record size (Section 5's synthetic workloads), and a
// WorldCup-like access-log dataset standing in for the 1998 WorldCup trace
// (the paper's real dataset). The substitution is documented in DESIGN.md:
// the algorithms only observe the key-frequency distribution of the
// clientobject attribute, which the paper itself notes is approximated
// "fairly well" by Zipfian data of matching (α, u, n).
package datagen

import (
	"fmt"

	"wavelethist/internal/hdfs"
	"wavelethist/internal/wavelet"
	"wavelethist/internal/zipf"
)

// ZipfSpec describes a synthetic Zipfian dataset.
type ZipfSpec struct {
	N          int64   // number of records
	U          int64   // key domain size (power of two)
	Alpha      float64 // skew
	RecordSize int     // bytes per record (>= 4); key + zero padding
	Seed       uint64
	// PermuteKeys scatters frequency ranks across the key domain with a
	// keyed bijection (real key spaces are not sorted by popularity).
	// Default true via NewZipfSpec.
	PermuteKeys bool
}

// NewZipfSpec returns the scaled-down analogue of the paper's defaults:
// α = 1.1, 4-byte records, permuted keys.
func NewZipfSpec(n, u int64, alpha float64, seed uint64) ZipfSpec {
	return ZipfSpec{N: n, U: u, Alpha: alpha, RecordSize: 4, Seed: seed, PermuteKeys: true}
}

func (s ZipfSpec) validate() error {
	if s.N < 1 {
		return fmt.Errorf("datagen: need at least one record")
	}
	if !wavelet.IsPowerOfTwo(s.U) {
		return fmt.Errorf("datagen: domain %d is not a power of two", s.U)
	}
	if s.RecordSize < 4 {
		return fmt.Errorf("datagen: record size %d < 4", s.RecordSize)
	}
	if s.Alpha <= 0 {
		return fmt.Errorf("datagen: alpha must be positive")
	}
	return nil
}

// GenerateZipf writes a Zipfian dataset to the file system. Records are
// i.i.d. samples (so keys are randomly permuted in file order, as the
// paper requires of its generated data).
func GenerateZipf(fs *hdfs.FileSystem, name string, spec ZipfSpec) (*hdfs.File, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	w, err := fs.Create(name, spec.RecordSize)
	if err != nil {
		return nil, err
	}
	z := zipf.NewZipf(spec.U, spec.Alpha)
	rng := zipf.NewRNG(spec.Seed)
	var perm *zipf.Perm
	if spec.PermuteKeys {
		perm = zipf.NewPerm(spec.U, spec.Seed^0xabcdef)
	}
	for i := int64(0); i < spec.N; i++ {
		rank := z.Sample(rng) - 1 // 0-based
		key := rank
		if perm != nil {
			key = perm.Apply(rank)
		}
		w.Append(key)
	}
	return w.Close(), nil
}

// GenerateZipfVar writes a Zipfian dataset with variable-length records
// whose payload lengths cycle deterministically in [0, maxPayload).
func GenerateZipfVar(fs *hdfs.FileSystem, name string, spec ZipfSpec, maxPayload int) (*hdfs.File, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if maxPayload < 1 {
		maxPayload = 1
	}
	w, err := fs.CreateVar(name)
	if err != nil {
		return nil, err
	}
	z := zipf.NewZipf(spec.U, spec.Alpha)
	rng := zipf.NewRNG(spec.Seed)
	var perm *zipf.Perm
	if spec.PermuteKeys {
		perm = zipf.NewPerm(spec.U, spec.Seed^0xabcdef)
	}
	for i := int64(0); i < spec.N; i++ {
		rank := z.Sample(rng) - 1
		key := rank
		if perm != nil {
			key = perm.Apply(rank)
		}
		w.Append(key, int(rng.Int63n(int64(maxPayload))))
	}
	return w.Close(), nil
}

// ExactFrequencies scans a file and returns its exact key-frequency map —
// the ground truth v for SSE evaluation. (The evaluation harness, not the
// algorithms, uses this.)
func ExactFrequencies(f *hdfs.File) map[int64]float64 {
	freq := make(map[int64]float64)
	for _, split := range f.Splits(0) {
		var r hdfs.RecordReader
		if f.RecordSize == 0 {
			r = hdfs.NewSequentialVarReader(split)
		} else {
			r = hdfs.NewSequentialReader(split)
		}
		for {
			rec, ok := r.Next()
			if !ok {
				break
			}
			freq[rec.Key]++
		}
	}
	return freq
}

// DenseFrequencies materializes a dense frequency vector over [0, u).
// Only for domains small enough to hold in memory (SSE experiments).
func DenseFrequencies(freq map[int64]float64, u int64) []float64 {
	v := make([]float64, u)
	for x, c := range freq {
		if x >= 0 && x < u {
			v[x] += c
		}
	}
	return v
}
