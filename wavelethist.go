// Package wavelethist builds wavelet histograms on large keyed datasets in
// a (simulated) MapReduce cluster, reproducing the algorithms of
//
//	Jestes, Yi, Li: "Building Wavelet Histograms on Large Data in
//	MapReduce", PVLDB 5(2), 2011.
//
// A wavelet histogram is the best k-term Haar wavelet representation of a
// dataset's key-frequency vector v over the domain [0, u): the k wavelet
// coefficients of largest magnitude. It supports point-frequency and
// range-selectivity estimation in O(k) time and is the summary of choice
// for query optimization and approximate analytics on massive data.
//
// The package exposes the paper's seven construction methods — the exact
// Send-V, Send-Coef and H-WTopk, and the approximate Basic-S, Improved-S,
// TwoLevel-S and Send-Sketch — running over an in-process Hadoop-like
// runtime (simulated HDFS, Map/Combine/Shuffle/Reduce with exact
// communication accounting, heterogeneous-cluster cost model).
//
// Quick start:
//
//	ds, _ := wavelethist.NewZipfDataset(wavelethist.ZipfOptions{
//		Records: 1 << 20, Domain: 1 << 16, Alpha: 1.1, Seed: 42,
//	})
//	res, _ := wavelethist.Build(ds, wavelethist.TwoLevelS, wavelethist.Options{K: 30})
//	fmt.Println(res.Histogram.RangeCount(1000, 2000)) // estimated selectivity
//	fmt.Println(res.CommBytes, res.SimulatedSeconds())
package wavelethist

import (
	"context"
	"fmt"
	"time"

	"wavelethist/internal/cluster"
	"wavelethist/internal/core"
	"wavelethist/internal/wavelet"
)

// Method selects a construction algorithm, named as in the paper.
type Method string

// The seven methods of the paper's evaluation (Section 5).
const (
	// SendV ships every split's local frequency vector (exact baseline).
	SendV Method = "Send-V"
	// SendCoef ships every split's non-zero local wavelet coefficients
	// (exact baseline, strictly worse than Send-V).
	SendCoef Method = "Send-Coef"
	// HWTopk is the paper's exact three-round modified-TPUT algorithm.
	HWTopk Method = "H-WTopk"
	// BasicS is level-1 random sampling with combine.
	BasicS Method = "Basic-S"
	// ImprovedS drops low-frequency sampled keys (biased, ≤ m/ε pairs).
	ImprovedS Method = "Improved-S"
	// TwoLevelS is the paper's unbiased two-level importance-sampling
	// algorithm with O(√m/ε) communication.
	TwoLevelS Method = "TwoLevel-S"
	// SendSketch merges per-split GCS wavelet sketches.
	SendSketch Method = "Send-Sketch"
)

// Methods lists all supported methods.
func Methods() []Method {
	return []Method{SendV, SendCoef, HWTopk, BasicS, ImprovedS, TwoLevelS, SendSketch}
}

// Exact reports whether the method returns the exact best k-term
// representation.
func (m Method) Exact() bool { return m == SendV || m == SendCoef || m == HWTopk }

// Options configures a build.
type Options struct {
	// K is the number of retained coefficients (default 30).
	K int
	// Epsilon is the sampling error parameter for the sampling methods
	// (default 1e-3, the scaled analogue of the paper's 1e-4).
	Epsilon float64
	// SplitSize is the MapReduce split size in bytes (0 = HDFS chunk
	// size, the common Hadoop configuration).
	SplitSize int64
	// Seed makes randomized methods deterministic.
	Seed uint64
	// Parallelism bounds concurrent simulated mappers (0 = GOMAXPROCS).
	Parallelism int
	// SketchBytes overrides Send-Sketch's per-split budget
	// (0 = 20KB·log2(u), the paper's recommendation).
	SketchBytes int64
	// DisableCombine turns off Basic-S's combiner (ablation).
	DisableCombine bool
}

func (o Options) toParams(u int64) core.Params {
	return core.Params{
		U:              u,
		K:              o.K,
		Epsilon:        o.Epsilon,
		SplitSize:      o.SplitSize,
		Seed:           o.Seed,
		Parallelism:    o.Parallelism,
		SketchBytes:    o.SketchBytes,
		CombineEnabled: !o.DisableCombine,
	}.Defaults()
}

// Coefficient is one retained wavelet coefficient.
type Coefficient struct {
	Index int64
	Value float64
}

// Histogram is a k-term wavelet histogram over [0, Domain()).
type Histogram struct {
	rep *wavelet.Representation
}

// Domain returns the key-domain size u.
func (h *Histogram) Domain() int64 { return h.rep.U }

// K returns the number of retained coefficients.
func (h *Histogram) K() int { return h.rep.K() }

// Coefficients returns the retained coefficients, largest magnitude first.
func (h *Histogram) Coefficients() []Coefficient {
	cs := make([]wavelet.Coef, len(h.rep.Coefs))
	copy(cs, h.rep.Coefs)
	// Maintained histograms patch coefficient values in place between
	// snapshots, so re-establish the documented order on the copy.
	wavelet.SortCoefsByMagnitude(cs)
	out := make([]Coefficient, len(cs))
	for i, c := range cs {
		out[i] = Coefficient{Index: c.Index, Value: c.Value}
	}
	return out
}

// PointEstimate returns the estimated frequency of key x in O(log u):
// only the error-tree ancestors of x are touched. Keys outside [0, u)
// estimate 0.
func (h *Histogram) PointEstimate(x int64) float64 { return h.rep.PointEstimate(x) }

// RangeCount estimates the number of records with keys in [lo, hi]
// (inclusive) in O(log u) — range-selectivity estimation, the histogram's
// primary application; only the error-tree ancestors of the two bounds
// contribute.
//
// Bound contract (shared with the serve layer): lo and hi are clamped to
// the domain, and a range with an empty domain intersection — including
// lo > hi — estimates 0. Never an error.
func (h *Histogram) RangeCount(lo, hi int64) float64 { return h.rep.RangeSum(lo, hi) }

// BatchPoints answers n point queries in one shared walk of the error
// tree — the keys are sorted and every tree level swept exactly once, so
// a large batch costs far less than n independent PointEstimate calls.
// out[i] is bit-identical to PointEstimate(xs[i]); len(out) must equal
// len(xs). Steady-state calls are allocation-free.
func (h *Histogram) BatchPoints(xs []int64, out []float64) { h.rep.BatchPoints(xs, out) }

// BatchRanges answers n range queries in one shared walk (see
// BatchPoints): out[i] is bit-identical to RangeCount(los[i], his[i]),
// including the bound-clamp contract. Slice lengths must match.
func (h *Histogram) BatchRanges(los, his []int64, out []float64) { h.rep.BatchRanges(los, his, out) }

// BatchPointsParallel is BatchPoints fanned across a bounded worker pool
// over contiguous key segments of the sorted batch — bit-identical for
// every worker count. workers <= 0 selects GOMAXPROCS capped so each
// worker keeps a useful segment; workers == 1 runs the serial sweep.
func (h *Histogram) BatchPointsParallel(xs []int64, out []float64, workers int) {
	h.rep.BatchPointsParallel(xs, out, workers)
}

// BatchRangesParallel is BatchRanges fanned across a bounded worker pool
// (see BatchPointsParallel); bit-identical for every worker count.
func (h *Histogram) BatchRangesParallel(los, his []int64, out []float64, workers int) {
	h.rep.BatchRangesParallel(los, his, out, workers)
}

// Reconstruct materializes the full estimated frequency vector (O(k·u)).
func (h *Histogram) Reconstruct() []float64 { return h.rep.Reconstruct() }

// SSE computes the sum of squared errors against an exact frequency map —
// the paper's accuracy metric (Figures 6, 7, 15, 18).
func (h *Histogram) SSE(exact map[int64]float64) float64 {
	v := make([]float64, h.rep.U)
	for x, c := range exact {
		if x >= 0 && x < h.rep.U {
			v[x] = c
		}
	}
	return h.rep.SSEAgainst(v)
}

// RoundStat profiles one MapReduce round of a build.
type RoundStat struct {
	// Round is 1-based.
	Round int
	// ModelCommBytes is the round's modeled communication (shuffled pairs
	// plus coordinator broadcast at the paper's wire widths).
	ModelCommBytes int64
	// WireBytes is the round's measured RPC traffic (distributed builds
	// only).
	WireBytes int64
	// RPCs / Retries / ReplayedSplits profile the round's fan-out
	// (distributed builds only). ReplayedSplits counts splits a new owner
	// had to recover by replaying earlier rounds after a worker died or
	// its state lease expired.
	RPCs           int
	Retries        int
	ReplayedSplits int
	// CachedSplits counts splits served from workers' partial caches —
	// re-shipped without recomputation (distributed builds only).
	CachedSplits int
	// Restored marks a round whose partials came from a coordinator
	// checkpoint after a restart — zero RPCs, nothing re-executed.
	Restored bool
}

// Result is a build's outcome: the histogram plus the paper's two
// efficiency metrics (communication and running time).
type Result struct {
	Histogram *Histogram
	// CommBytes is the total intra-cluster communication. For simulated
	// builds it is the modeled metric (shuffled intermediate pairs plus
	// coordinator broadcasts, at the paper's wire widths); for distributed
	// builds it is the real traffic measured on the coordinator↔worker
	// RPCs (request plus response payload bytes).
	CommBytes int64
	// ModelCommBytes is the paper's modeled communication metric, computed
	// with identical accounting in both modes — the field to compare when
	// contrasting a simulated build with a distributed one.
	ModelCommBytes int64
	// WireBytes is the measured on-the-wire communication of a distributed
	// build; zero for simulated builds.
	WireBytes int64
	// Distributed reports whether the build ran on a waveworker fleet
	// (BuildDistributed) rather than the in-process simulated cluster.
	Distributed bool
	// DistJobID is the coordinator-assigned build identifier of a
	// distributed build ("build-…") — the key for its span trace at
	// GET /dist/v1/trace/{id}; empty for simulated builds.
	DistJobID string
	// Rounds is the number of MapReduce rounds (1 or 3).
	Rounds int
	// PerRound profiles each round; always filled for multi-round builds
	// and for all distributed builds.
	PerRound []RoundStat
	// CandidateSetSize is |R| — H-WTopk's candidate set broadcast before
	// round 3 (0 for other methods).
	CandidateSetSize int
	// CachedSplits counts split results served from workers' partial
	// caches instead of recomputed (distributed builds only): a warm
	// repeat of a one-round build has CachedSplits equal to the split
	// count and recomputes nothing.
	CachedSplits int
	// RecordsRead / BytesRead measure the map-side input scan (sampling
	// methods read far less than the file size).
	RecordsRead int64
	BytesRead   int64
	// WallTime is the real end-to-end build time.
	WallTime time.Duration

	metrics core.Metrics
}

// SimulatedSeconds is the modeled end-to-end running time on the paper's
// 16-node heterogeneous cluster at its default 50% available bandwidth.
func (r *Result) SimulatedSeconds() float64 {
	return r.SimulatedSecondsOn(cluster.Paper())
}

// SimulatedSecondsAt models the paper's Figure 16: the same run at a
// different fraction of the 100 Mbps switch.
func (r *Result) SimulatedSecondsAt(bandwidthFrac float64) float64 {
	c := cluster.Paper()
	c.BandwidthFrac = bandwidthFrac
	return r.SimulatedSecondsOn(c)
}

// SimulatedSecondsOn models the run on an arbitrary cluster.
func (r *Result) SimulatedSecondsOn(c *cluster.Cluster) float64 {
	return r.metrics.SimulatedSeconds(c)
}

// Build constructs a wavelet histogram of the dataset's key frequencies
// with the chosen method on the in-process simulated cluster.
func Build(d *Dataset, method Method, opts Options) (*Result, error) {
	return BuildContext(context.Background(), d, method, opts)
}

// BuildContext is Build with cancellation: canceling ctx aborts the run
// (between reducer batches and periodically inside map-side scans) and
// returns ctx.Err().
func BuildContext(ctx context.Context, d *Dataset, method Method, opts Options) (*Result, error) {
	if d == nil || d.file == nil {
		return nil, fmt.Errorf("wavelethist: nil dataset")
	}
	alg, err := core.ByName(string(method))
	if err != nil {
		return nil, err
	}
	out, err := alg.Run(ctx, d.file, opts.toParams(d.Domain()))
	if err != nil {
		return nil, err
	}
	return &Result{
		Histogram:        &Histogram{rep: out.Rep},
		CommBytes:        out.Metrics.TotalCommBytes(),
		ModelCommBytes:   out.Metrics.TotalCommBytes(),
		Rounds:           out.Metrics.Rounds,
		PerRound:         perRoundStats(out.Metrics, nil),
		CandidateSetSize: out.Metrics.CandidateSetSize,
		RecordsRead:      out.Metrics.MapRecordsRead,
		BytesRead:        out.Metrics.MapBytesRead,
		WallTime:         out.Metrics.WallTime,
		metrics:          out.Metrics,
	}, nil
}

// perRoundStats merges the modeled per-round costs with (for distributed
// builds) the measured per-round fan-out profile.
func perRoundStats(m core.Metrics, dist []distRoundStats) []RoundStat {
	if len(m.RoundCosts) <= 1 && dist == nil {
		return nil // single-round simulated builds stay compact
	}
	out := make([]RoundStat, len(m.RoundCosts))
	for i, rc := range m.RoundCosts {
		out[i] = RoundStat{
			Round:          i + 1,
			ModelCommBytes: rc.ShuffleBytes + rc.BroadcastBytes,
		}
	}
	for _, d := range dist {
		if d.Round >= 1 && d.Round <= len(out) {
			r := &out[d.Round-1]
			r.WireBytes = d.WireBytes
			r.RPCs = d.RPCs
			r.Retries = d.Retries
			r.ReplayedSplits = d.ReplayedSplits
			r.CachedSplits = d.CachedSplits
			r.Restored = d.Restored
		}
	}
	return out
}
