// Benchmark harness: one benchmark per paper figure (5-19), each running
// the corresponding exper driver and reporting the headline series values
// as custom metrics, plus method-level build benchmarks and the ablation
// benchmarks called out in DESIGN.md.
//
// Figures use the Quick configuration so `go test -bench=.` finishes in
// minutes; `cmd/experiments` runs the full scaled configuration.
package wavelethist_test

import (
	"context"
	"fmt"
	"testing"

	"wavelethist"
	"wavelethist/dist"
	"wavelethist/internal/core"
	"wavelethist/internal/datagen"
	"wavelethist/internal/exper"
	"wavelethist/internal/hdfs"
	"wavelethist/internal/wavelet"
	"wavelethist/internal/zipf"
)

// benchFigure runs one experiment driver per iteration.
func benchFigure(b *testing.B, d exper.Driver) {
	cfg := exper.Quick()
	var figs []*exper.Figure
	for i := 0; i < b.N; i++ {
		var err error
		figs, err = d(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Surface the last run's headline numbers (first row) as metrics.
	if len(figs) > 0 {
		f := figs[0]
		for j, col := range f.Columns {
			if j < len(f.Cells[0]) {
				b.ReportMetric(f.Cells[0][j], sanitizeMetric(col+"_"+f.Unit))
			}
		}
	}
}

func sanitizeMetric(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch r {
		case ' ', '(', ')':
			out = append(out, '_')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

func BenchmarkFig5_VaryK(b *testing.B)            { benchFigure(b, exper.Fig5) }
func BenchmarkFig6_SSEVaryK(b *testing.B)         { benchFigure(b, exper.Fig6) }
func BenchmarkFig7_SSEVaryEps(b *testing.B)       { benchFigure(b, exper.Fig7) }
func BenchmarkFig8_VaryEps(b *testing.B)          { benchFigure(b, exper.Fig8) }
func BenchmarkFig9_CostVsSSE(b *testing.B)        { benchFigure(b, exper.Fig9) }
func BenchmarkFig10_VaryN(b *testing.B)           { benchFigure(b, exper.Fig10) }
func BenchmarkFig11_VaryRecordSize(b *testing.B)  { benchFigure(b, exper.Fig11) }
func BenchmarkFig12_VaryU(b *testing.B)           { benchFigure(b, exper.Fig12) }
func BenchmarkFig13_VarySplitSize(b *testing.B)   { benchFigure(b, exper.Fig13) }
func BenchmarkFig14_VaryAlpha(b *testing.B)       { benchFigure(b, exper.Fig14) }
func BenchmarkFig15_SSEVaryAlpha(b *testing.B)    { benchFigure(b, exper.Fig15) }
func BenchmarkFig16_VaryBandwidth(b *testing.B)   { benchFigure(b, exper.Fig16) }
func BenchmarkFig17_WorldCup(b *testing.B)        { benchFigure(b, exper.Fig17) }
func BenchmarkFig18_WorldCupSSE(b *testing.B)     { benchFigure(b, exper.Fig18) }
func BenchmarkFig19_WorldCupCostSSE(b *testing.B) { benchFigure(b, exper.Fig19) }

// BenchmarkMethod measures a single build per method on a shared dataset,
// reporting communication and simulated cluster time alongside ns/op.
func BenchmarkMethod(b *testing.B) {
	ds, err := wavelethist.NewZipfDataset(wavelethist.ZipfOptions{
		Records: 1 << 17, Domain: 1 << 13, Alpha: 1.1, ChunkSize: 8 << 10, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range wavelethist.Methods() {
		b.Run(string(m), func(b *testing.B) {
			var res *wavelethist.Result
			for i := 0; i < b.N; i++ {
				res, err = wavelethist.Build(ds, m, wavelethist.Options{
					K: 30, Epsilon: 8e-3, Seed: 2,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.CommBytes), "commBytes")
			b.ReportMetric(res.SimulatedSeconds(), "simSeconds")
		})
	}
}

// BenchmarkDistributedBuild measures distributed loopback builds on a
// 3-worker fleet, reporting the measured wire traffic of the
// coordinator↔worker RPCs alongside ns/op — the real-communication
// analogue of BenchmarkMethod's modeled commBytes.
func BenchmarkDistributedBuild(b *testing.B) {
	ds, err := wavelethist.NewZipfDataset(wavelethist.ZipfOptions{
		Records: 1 << 17, Domain: 1 << 13, Alpha: 1.1, ChunkSize: 8 << 10, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	coord, _ := dist.NewLoopbackCluster(3, 2, dist.Config{})
	for _, m := range []wavelethist.Method{wavelethist.SendV, wavelethist.TwoLevelS, wavelethist.SendSketch} {
		b.Run(string(m), func(b *testing.B) {
			var res *wavelethist.Result
			for i := 0; i < b.N; i++ {
				res, err = wavelethist.BuildDistributed(context.Background(), ds, m, wavelethist.Options{
					K: 30, Epsilon: 8e-3, Seed: 2,
				}, coord)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.WireBytes), "wireBytes")
			b.ReportMetric(float64(res.ModelCommBytes), "modelCommBytes")
		})
	}
}

// --- Ablations (DESIGN.md Section 5) ---

// BenchmarkAblationSparseVsDense compares the O(u) dense transform against
// the O(|v| log u) sparse transform the mappers use (Appendix A). At
// u = 2^20 the dense pass is still time-competitive (it is a cache-friendly
// linear sweep) but allocates the full 8 MB domain per split — the sparse
// path allocates ~14x less here, and the gap scales linearly in u: at the
// paper's u = 2^29 a dense per-split transform would need 4 GB and O(u)
// time regardless of how few keys the split holds.
func BenchmarkAblationSparseVsDense(b *testing.B) {
	const u = 1 << 20
	rng := zipf.NewRNG(3)
	z := zipf.NewZipf(u, 1.1)
	freq := make(map[int64]float64)
	for i := 0; i < 16384; i++ { // one 64 KiB split's worth of records
		freq[z.Sample(rng)-1]++
	}
	b.Run("dense_O(u)", func(b *testing.B) {
		dense := make([]float64, u)
		for x, c := range freq {
			dense[x] = c
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = wavelet.Transform(dense)
		}
	})
	b.Run("sparse_O(v_logu)", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = wavelet.SparseTransform(freq, u)
		}
	})
	b.Run("streaming_O(logu)_mem", func(b *testing.B) {
		keys, counts := wavelet.SortFreq(freq)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = wavelet.SparseTransformSorted(keys, counts, u)
		}
	})
}

// BenchmarkAblationSecondLevel isolates the paper's key approximate-side
// idea: second-level importance sampling (TwoLevel-S) vs threshold
// dropping (Improved-S) vs plain combine (Basic-S). commBytes is the
// metric that matters — the paper's Theorem 3 O(√m/ε) vs O(m/ε) vs
// O(1/ε²).
func BenchmarkAblationSecondLevel(b *testing.B) {
	// Splits must be large enough that Improved-S's threshold ε·t_j
	// exceeds 1 (t_j = p·n_j sampled records per split), otherwise it
	// degenerates into Basic-S — the regime matters, as in the paper.
	fs := hdfs.NewFileSystem(15, 32<<10) // m = 128 splits of 8192 records
	f, err := datagen.GenerateZipf(fs, "d", datagen.NewZipfSpec(1<<20, 1<<13, 1.1, 5))
	if err != nil {
		b.Fatal(err)
	}
	p := core.Params{U: 1 << 13, K: 30, Epsilon: 2e-3, Seed: 6, CombineEnabled: true}.Defaults()
	for _, alg := range []core.Algorithm{core.NewBasicS(), core.NewImprovedS(), core.NewTwoLevelS()} {
		b.Run(alg.Name(), func(b *testing.B) {
			var out *core.Output
			for i := 0; i < b.N; i++ {
				out, err = alg.Run(context.Background(), f, p)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(out.Metrics.TotalCommBytes()), "commBytes")
			b.ReportMetric(float64(out.Metrics.PairsShuffled), "pairs")
		})
	}
}

// BenchmarkAblationCombiner reproduces the paper's remark that Basic-S's
// combine effectiveness is distribution-dependent: on skewed data it
// collapses many (x, 1) pairs; on near-uniform data it barely helps.
func BenchmarkAblationCombiner(b *testing.B) {
	for _, sc := range []struct {
		name  string
		alpha float64
	}{{"skewed_a1.4", 1.4}, {"uniform_a0.3", 0.3}} {
		fs := hdfs.NewFileSystem(15, 4<<10)
		f, err := datagen.GenerateZipf(fs, "d", datagen.NewZipfSpec(1<<17, 1<<13, sc.alpha, 7))
		if err != nil {
			b.Fatal(err)
		}
		for _, combine := range []bool{true, false} {
			name := fmt.Sprintf("%s/combine=%v", sc.name, combine)
			b.Run(name, func(b *testing.B) {
				p := core.Params{U: 1 << 13, K: 30, Epsilon: 5e-3, Seed: 8,
					CombineEnabled: combine}.Defaults()
				var out *core.Output
				for i := 0; i < b.N; i++ {
					out, err = core.NewBasicS().Run(context.Background(), f, p)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(out.Metrics.PairsShuffled), "pairs")
			})
		}
	}
}

// BenchmarkAblationGCSDegree compares GCS search degrees (the paper picks
// GCS-8 for "the overall best per-item update cost").
func BenchmarkAblationGCSDegree(b *testing.B) {
	const u = 1 << 16
	rng := zipf.NewRNG(9)
	z := zipf.NewZipf(u, 1.1)
	freq := make(map[int64]float64)
	for i := 0; i < 8192; i++ {
		freq[z.Sample(rng)-1]++
	}
	fs := hdfs.NewFileSystem(15, 8<<10)
	f, err := datagen.GenerateZipf(fs, "d", datagen.NewZipfSpec(1<<16, u, 1.1, 10))
	if err != nil {
		b.Fatal(err)
	}
	for _, degree := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("GCS-%d", degree), func(b *testing.B) {
			p := core.Params{U: u, K: 30, Epsilon: 5e-3, Seed: 11,
				SketchDegree: degree, SketchBytes: 64 << 10}.Defaults()
			for i := 0; i < b.N; i++ {
				if _, err := core.NewSendSketch().Run(context.Background(), f, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSplitCount shows the communication scaling in m that
// separates TwoLevel-S (√m) from Improved-S (m): same data, varying split
// size.
func BenchmarkAblationSplitCount(b *testing.B) {
	fs := hdfs.NewFileSystem(15, 1<<10)
	f, err := datagen.GenerateZipf(fs, "d", datagen.NewZipfSpec(1<<18, 1<<13, 1.1, 12))
	if err != nil {
		b.Fatal(err)
	}
	for _, splitKB := range []int64{1, 4, 16} {
		m := f.Size() / (splitKB << 10)
		for _, alg := range []core.Algorithm{core.NewImprovedS(), core.NewTwoLevelS()} {
			b.Run(fmt.Sprintf("m=%d/%s", m, alg.Name()), func(b *testing.B) {
				p := core.Params{U: 1 << 13, K: 30, Epsilon: 5e-3, Seed: 13,
					SplitSize: splitKB << 10, CombineEnabled: true}.Defaults()
				var out *core.Output
				for i := 0; i < b.N; i++ {
					out, err = alg.Run(context.Background(), f, p)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(out.Metrics.TotalCommBytes()), "commBytes")
			})
		}
	}
}
