// Selectivity estimation: the motivating application of wavelet histograms
// (Matias, Vitter, Wang 1998; paper Section 1). A query optimizer keeps a
// compact histogram of an attribute's distribution and uses it to estimate
// the selectivity of range predicates (WHERE key BETWEEN lo AND hi) when
// choosing plans.
//
// This example builds histograms of several sizes k over an order-table-
// like attribute and reports estimated vs exact selectivities, showing how
// accuracy scales with the summary size.
package main

import (
	"fmt"
	"log"
	"math"

	"wavelethist"
)

func main() {
	const u = 1 << 16
	// "order_date"-like attribute: skewed with seasonal hot spots.
	ds, err := wavelethist.NewZipfDataset(wavelethist.ZipfOptions{
		Records: 1 << 20,
		Domain:  u,
		Alpha:   0.9, // moderately skewed, long tail
		Seed:    2024,
	})
	if err != nil {
		log.Fatal(err)
	}
	exact := ds.ExactFrequencies()
	n := float64(ds.NumRecords())

	// Range predicates an optimizer might need to cost.
	predicates := [][2]int64{
		{0, u/2 - 1},        // half-domain scan
		{0, u/8 - 1},        // leading eighth
		{u / 4, u/4 + 4095}, // mid-domain window
		{u - 8192, u - 1},   // trailing window
		{1000, 1063},        // narrow point-ish range
	}
	trueSel := func(lo, hi int64) float64 {
		var c float64
		for x, cnt := range exact {
			if x >= lo && x <= hi {
				c += cnt
			}
		}
		return c / n
	}

	fmt.Println("selectivity estimation with exact (H-WTopk) histograms")
	fmt.Println()
	header := fmt.Sprintf("%-22s %10s", "predicate", "true sel")
	ks := []int{16, 64, 256, 1024}
	for _, k := range ks {
		header += fmt.Sprintf(" %9s", fmt.Sprintf("k=%d", k))
	}
	fmt.Println(header)

	hists := make(map[int]*wavelethist.Histogram)
	for _, k := range ks {
		res, err := wavelethist.Build(ds, wavelethist.HWTopk, wavelethist.Options{K: k, Seed: 5})
		if err != nil {
			log.Fatal(err)
		}
		hists[k] = res.Histogram
	}

	for _, p := range predicates {
		ts := trueSel(p[0], p[1])
		row := fmt.Sprintf("key∈[%6d,%6d] %9.4f%%", p[0], p[1], 100*ts)
		for _, k := range ks {
			est := hists[k].RangeCount(p[0], p[1]) / n
			row += fmt.Sprintf(" %8.3f%%", 100*est)
		}
		fmt.Println(row)
	}

	fmt.Println()
	fmt.Println("mean absolute selectivity error by histogram size:")
	for _, k := range ks {
		var mae float64
		for _, p := range predicates {
			ts := trueSel(p[0], p[1])
			est := hists[k].RangeCount(p[0], p[1]) / n
			mae += math.Abs(est - ts)
		}
		mae /= float64(len(predicates))
		fmt.Printf("  k=%4d: %.4f%%  (histogram is %d bytes vs %d bytes of raw data)\n",
			k, 100*mae, k*12, ds.SizeBytes())
	}
}
