// Incremental maintenance: the paper's closing remarks pose "how to
// incrementally maintain the summary when the data stored in the
// MapReduce cluster is being updated" as an open problem. This example
// implements the natural answer — build once with the distributed exact
// algorithm, then maintain the histogram under a live update stream in
// O(log u) per update (shadow-coefficient scheme after Matias, Vitter,
// Wang 2000) — and compares the maintained histogram against periodic
// full rebuilds.
package main

import (
	"fmt"
	"log"

	"wavelethist"
)

func main() {
	const u = 1 << 14
	const k = 25
	ds, err := wavelethist.NewZipfDataset(wavelethist.ZipfOptions{
		Records: 1 << 19, Domain: u, Alpha: 1.1, Seed: 77,
	})
	if err != nil {
		log.Fatal(err)
	}

	// One distributed exact build (H-WTopk, 3 MapReduce rounds) seeds the
	// maintained histogram with k + shadow coefficients.
	mh, err := wavelethist.NewMaintainedHistogram(ds, k, 150, wavelethist.Options{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial build: tracking %d coefficients (k=%d + shadow)\n\n", mh.Tracked(), k)

	// Live workload: the key distribution drifts — a flash-crowd key
	// ramps up while an old hot key is steadily deleted.
	exact := ds.ExactFrequencies()
	var oldHot int64
	var oldC float64
	for x, c := range exact {
		if c > oldC {
			oldHot, oldC = x, c
		}
	}
	const flashKey = 4242

	fmt.Println("updates        flash-crowd key (est/true)    old hot key (est/true)")
	batch := 20000
	for step := 1; step <= 5; step++ {
		for i := 0; i < batch; i++ {
			mh.Update(flashKey, 1)
			exact[flashKey]++
			if exact[oldHot] > 0 {
				mh.Update(oldHot, -1)
				exact[oldHot]--
			}
		}
		h := mh.Histogram()
		fmt.Printf("%7d        %9.0f / %-9.0f         %9.0f / %-9.0f\n",
			step*batch,
			h.PointEstimate(flashKey), exact[flashKey],
			h.PointEstimate(oldHot), exact[oldHot])
	}

	fmt.Println("\nthe flash-crowd key was absent from the initial build; the")
	fmt.Println("maintained histogram adopted its coefficients from the update")
	fmt.Println("stream alone, without re-running any MapReduce job.")
}
