// Multi-dimensional wavelet histograms (paper Sections 3-4, "Multi-
// dimensional wavelets"): summarize a (source, destination) traffic matrix
// with a 2D wavelet histogram built exactly (H-WTopk-2D) and by sampling
// (TwoLevel-S-2D), then locate hotspots from the summary alone.
package main

import (
	"fmt"
	"log"
	"sort"

	"wavelethist"
)

func main() {
	const side = 64 // 64×64 traffic matrix
	// Synthesize flows: a few heavy-hitter (src, dst) pairs on top of
	// skewed background traffic with a diagonal (intra-rack) bias.
	xs, ys := synthesizeFlows(200000, side)
	ds, err := wavelethist.NewDataset2DFromPairs(xs, ys, side, 8<<10, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("traffic matrix: %d flows over a %d×%d grid\n\n", ds.NumRecords(), side, side)

	exactGrid := make([][]float64, side)
	for i := range exactGrid {
		exactGrid[i] = make([]float64, side)
	}
	for i := range xs {
		exactGrid[xs[i]][ys[i]]++
	}

	// Exact 2D histogram via the three-round H-WTopk protocol.
	hw, err := wavelethist.Build2D(ds, wavelethist.HWTopk2D, wavelethist.Options{K: 40, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	// Approximate via 2D two-level sampling.
	tl, err := wavelethist.Build2D(ds, wavelethist.TwoLevelS2D, wavelethist.Options{
		K: 40, Epsilon: 5e-3, Seed: 9,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("H-WTopk-2D:    %d rounds, %8d bytes communicated\n", hw.Rounds, hw.CommBytes)
	fmt.Printf("TwoLevel-S-2D: %d round,  %8d bytes communicated\n\n", tl.Rounds, tl.CommBytes)

	// Locate hotspots from the exact histogram's reconstruction.
	recon := hw.Histogram.Reconstruct()
	type cell struct {
		x, y int64
		est  float64
	}
	var cells []cell
	for x := int64(0); x < side; x++ {
		for y := int64(0); y < side; y++ {
			cells = append(cells, cell{x, y, recon[x][y]})
		}
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i].est > cells[j].est })
	fmt.Println("top flows recovered from the 40-term 2D histogram:")
	fmt.Printf("%8s %8s %10s %10s %12s\n", "src", "dst", "estimated", "exact", "sampled est")
	for i := 0; i < 6; i++ {
		c := cells[i]
		fmt.Printf("%8d %8d %10.0f %10.0f %12.0f\n",
			c.x, c.y, c.est, exactGrid[c.x][c.y], tl.Histogram.PointEstimate(c.x, c.y))
	}
}

// synthesizeFlows builds a skewed traffic matrix with planted hotspots.
func synthesizeFlows(n int, side int64) (xs, ys []int64) {
	// Deterministic little generator (SplitMix64) to stay dependency-free.
	state := uint64(12345)
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	hot := [][2]int64{{3, 47}, {12, 12}, {55, 9}, {30, 31}}
	for i := 0; i < n; i++ {
		r := next()
		switch {
		case r%100 < 25: // planted heavy hitters: 25% of traffic
			h := hot[int(r/100)%len(hot)]
			xs, ys = append(xs, h[0]), append(ys, h[1])
		case r%100 < 55: // intra-rack diagonal bias
			s := int64(next()) & (side - 1)
			xs, ys = append(xs, s), append(ys, s)
		default: // skewed background: low ids talk more
			a := int64(next()) & (side - 1)
			b := int64(next()) & (side - 1)
			xs, ys = append(xs, a&b), append(ys, int64(next())&(side-1))
		}
	}
	return xs, ys
}
