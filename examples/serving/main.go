// Example serving: run the serve subsystem in-process — publish a
// histogram into the versioned registry, query it over the HTTP API,
// stream updates, and watch the registry version advance as the
// maintainer republishes.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"

	"wavelethist"
	"wavelethist/serve"
)

func main() {
	// A query-serving layer in three steps: build, publish, serve.
	ds, err := wavelethist.NewZipfDataset(wavelethist.ZipfOptions{
		Records: 1 << 19, Domain: 1 << 14, Alpha: 1.1, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := wavelethist.Build(ds, wavelethist.TwoLevelS, wavelethist.Options{K: 120, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	s, err := serve.NewServer(serve.Config{RepublishEvery: 128})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := s.Registry().Publish("clicks", res.Histogram); err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	fmt.Printf("registry version %d, serving %v\n",
		s.Registry().Version(), s.Registry().Snapshot().Names())

	// Point and range estimates over HTTP.
	fmt.Println("point key=7:   ", get(ts.URL+"/v1/hist/clicks/point?key=7"))
	fmt.Println("range [0,8191]:", get(ts.URL+"/v1/hist/clicks/range?lo=0&hi=8191"))

	// A batch amortizes HTTP overhead across many estimates.
	batch := map[string]any{"queries": []map[string]any{
		{"op": "point", "key": 7},
		{"op": "range", "lo": 0, "hi": 1023},
		{"op": "range", "lo": 1024, "hi": 2047},
	}}
	fmt.Println("batch:         ", post(ts.URL+"/v1/hist/clicks/query", batch))

	// Stream updates; the maintainer republishes the adapted top-k.
	ups := make([]map[string]any, 200)
	for i := range ups {
		ups[i] = map[string]any{"key": i % 16, "delta": 50}
	}
	fmt.Println("updates:       ", post(ts.URL+"/v1/hist/clicks/updates",
		map[string]any{"updates": ups}))
	fmt.Println("stats:         ", get(ts.URL+"/v1/stats"))
}

func get(url string) string {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return string(bytes.TrimSpace(b))
}

func post(url string, v any) string {
	b, _ := json.Marshal(v)
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return string(bytes.TrimSpace(out))
}
