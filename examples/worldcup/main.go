// WorldCup log analysis: the paper's real-data scenario (Section 5). The
// clientobject attribute — the pairing of client id and object id — is
// summarized to analyze the correlation between clients and resources,
// "under the same motivation as the (src ip, dest ip) pairing in network
// traffic analysis".
//
// This example runs every method on the WorldCup-like dataset and prints
// the comparison the paper's Figures 17-18 make: communication, simulated
// running time, and SSE — then uses the winning histogram to answer an
// analyst's questions.
package main

import (
	"fmt"
	"log"
	"sort"

	"wavelethist"
)

func main() {
	ds, err := wavelethist.NewWorldCupDataset(wavelethist.WorldCupOptions{
		Records:    1 << 20,
		ClientBits: 8,
		ObjectBits: 8,
		Seed:       98, // the year of the cup
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("worldcup-like log: %d requests, clientobject domain %d, %d splits\n\n",
		ds.NumRecords(), ds.Domain(), ds.NumSplits(0))

	exact := ds.ExactFrequencies()
	opts := wavelethist.Options{K: 30, Epsilon: 2e-3, Seed: 3}

	fmt.Printf("%-12s %6s %14s %12s %14s\n", "method", "rounds", "comm (bytes)", "sim time", "SSE")
	var best *wavelethist.Result
	for _, m := range wavelethist.Methods() {
		if m == wavelethist.SendCoef {
			continue // the paper drops it outside Figure 12
		}
		res, err := wavelethist.Build(ds, m, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %6d %14d %11.1fs %14.4g\n",
			m, res.Rounds, res.CommBytes, res.SimulatedSeconds(), res.Histogram.SSE(exact))
		if m == wavelethist.TwoLevelS {
			best = res
		}
	}

	// Analyst queries against the TwoLevel-S histogram.
	fmt.Println("\nanalysis with the TwoLevel-S histogram:")
	type pair struct {
		key int64
		c   float64
	}
	var pairs []pair
	for x, c := range exact {
		pairs = append(pairs, pair{x, c})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].c > pairs[j].c })
	fmt.Println("  heaviest clientobject pairs (estimated vs exact requests):")
	for i := 0; i < 5 && i < len(pairs); i++ {
		client, object := pairs[i].key>>8, pairs[i].key&0xFF
		est := best.Histogram.PointEstimate(pairs[i].key)
		fmt.Printf("    client %3d -> object %3d: est %6.0f, exact %6.0f\n",
			client, object, est, pairs[i].c)
	}

	// How much of the traffic does one hot client account for?
	hotClient := pairs[0].key >> 8
	lo := hotClient << 8
	hi := lo + 255
	est := best.Histogram.RangeCount(lo, hi)
	var truth float64
	for x, c := range exact {
		if x >= lo && x <= hi {
			truth += c
		}
	}
	fmt.Printf("  client %d total requests: est %.0f, exact %.0f (%.1f%% of traffic)\n",
		hotClient, est, truth, 100*truth/float64(ds.NumRecords()))
}
