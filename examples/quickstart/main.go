// Quickstart: generate a skewed dataset, build a wavelet histogram with
// the paper's TwoLevel-S algorithm (one MapReduce round, tiny
// communication, no full scan), and query it.
package main

import (
	"fmt"
	"log"

	"wavelethist"
)

func main() {
	// A Zipf(1.1) dataset: 1M records over a 64K key domain, stored in
	// the simulated HDFS as 64 KiB chunks across 15 DataNodes.
	ds, err := wavelethist.NewZipfDataset(wavelethist.ZipfOptions{
		Records: 1 << 20,
		Domain:  1 << 16,
		Alpha:   1.1,
		Seed:    42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d records, %d bytes, %d splits\n",
		ds.NumRecords(), ds.SizeBytes(), ds.NumSplits(0))

	// Build a 30-term wavelet histogram with two-level sampling.
	res, err := wavelethist.Build(ds, wavelethist.TwoLevelS, wavelethist.Options{
		K:       30,
		Epsilon: 2e-3,
		Seed:    7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %d-term histogram in %d MapReduce round(s)\n",
		res.Histogram.K(), res.Rounds)
	fmt.Printf("communication: %d bytes (vs %d bytes of raw data)\n",
		res.CommBytes, ds.SizeBytes())
	fmt.Printf("records sampled: %d of %d (%.1f%%)\n",
		res.RecordsRead, ds.NumRecords(),
		100*float64(res.RecordsRead)/float64(ds.NumRecords()))
	fmt.Printf("simulated time on the paper's 16-node cluster: %.1fs\n",
		res.SimulatedSeconds())

	// Query it: estimated frequency of the hottest key, and its accuracy.
	exact := ds.ExactFrequencies()
	var hot int64
	var hotCount float64
	for x, c := range exact {
		if c > hotCount {
			hot, hotCount = x, c
		}
	}
	est := res.Histogram.PointEstimate(hot)
	fmt.Printf("hottest key %d: estimated %.0f, exact %.0f\n", hot, est, hotCount)

	// Accuracy summary: SSE vs what an exact method would achieve.
	exactRes, err := wavelethist.Build(ds, wavelethist.HWTopk, wavelethist.Options{K: 30, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SSE: %.3g (sampled) vs %.3g (exact best k-term)\n",
		res.Histogram.SSE(exact), exactRes.Histogram.SSE(exact))
	fmt.Printf("exact method needed %d bytes of communication — %.0fx more\n",
		exactRes.CommBytes, float64(exactRes.CommBytes)/float64(res.CommBytes))
}
