package wavelethist

import (
	"math"
	"testing"
)

func TestMaintainedHistogramTracksUpdates(t *testing.T) {
	ds := zipfDS(t, 50000, 1<<10)
	mh, err := NewMaintainedHistogram(ds, 20, 100, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	exact := ds.ExactFrequencies()

	// A new hot key appears after the build.
	const newHot = 999
	for i := 0; i < 30000; i++ {
		mh.Update(newHot, 1)
	}
	exact[newHot] += 30000

	h := mh.Histogram()
	est := h.PointEstimate(newHot)
	if math.Abs(est-exact[newHot]) > 0.2*exact[newHot] {
		t.Errorf("maintained estimate of new hot key = %v, truth %v", est, exact[newHot])
	}

	// Deletions: remove the original heaviest key entirely.
	var oldHot int64
	var oldC float64
	for x, c := range exact {
		if x != newHot && c > oldC {
			oldHot, oldC = x, c
		}
	}
	mh.Update(oldHot, -oldC)
	exact[oldHot] = 0
	h = mh.Histogram()
	if got := h.PointEstimate(oldHot); math.Abs(got) > 0.1*oldC {
		t.Errorf("deleted key still estimates %v (was %v)", got, oldC)
	}
}

func TestMaintainedHistogramValidation(t *testing.T) {
	if _, err := NewMaintainedHistogram(nil, 5, 0, Options{}); err == nil {
		t.Error("accepted nil dataset")
	}
	ds := zipfDS(t, 1000, 1<<8)
	if _, err := NewMaintainedHistogram(ds, 0, 0, Options{}); err == nil {
		t.Error("accepted k = 0")
	}
}

func TestMaintainedHistogramMatchesRebuild(t *testing.T) {
	// After a burst of updates, the maintained histogram's SSE should be
	// close to a from-scratch exact rebuild.
	ds := zipfDS(t, 40000, 1<<10)
	const k = 15
	mh, err := NewMaintainedHistogram(ds, k, 200, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	exact := ds.ExactFrequencies()
	keys := []int64{5, 100, 512, 900}
	for i := 0; i < 8000; i++ {
		x := keys[i%len(keys)]
		mh.Update(x, 1)
		exact[x]++
	}
	// Rebuild from the updated frequencies.
	allKeys := make([]int64, 0)
	for x, c := range exact {
		for i := float64(0); i < c; i++ {
			allKeys = append(allKeys, x)
		}
	}
	ds2, err := NewDatasetFromKeys(allKeys, KeysOptions{Domain: 1 << 10, ChunkSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := Build(ds2, HWTopk, Options{K: k, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	sseMaintained := mh.Histogram().SSE(exact)
	sseRebuilt := rebuilt.Histogram.SSE(exact)
	if sseMaintained > sseRebuilt*1.25+1e-6 {
		t.Errorf("maintained SSE %v vs rebuilt %v", sseMaintained, sseRebuilt)
	}
}
