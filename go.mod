module wavelethist

go 1.24
