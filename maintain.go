package wavelethist

import (
	"fmt"

	"wavelethist/internal/wavelet"
)

// MaintainedHistogram incrementally maintains a k-term wavelet histogram
// under record insertions and deletions — the paper's closing-remarks
// open problem, implemented with the shadow-coefficient scheme of Matias,
// Vitter, Wang (VLDB 2000, the paper's [27]): the top-k set plus a larger
// shadow set is kept exactly up to date in O(log u) per update, and the
// reported top-k adapts as coefficients grow or shrink.
type MaintainedHistogram struct {
	m *wavelet.Maintainer
}

// NewMaintainedHistogram builds the initial tracked set with an exact
// method (H-WTopk over the dataset) and returns a maintainable histogram.
// shadow <= 0 defaults to 4k. Construction pays one distributed build of
// k+shadow coefficients; every subsequent Update is O(log u) local work.
func NewMaintainedHistogram(d *Dataset, k, shadow int, opts Options) (*MaintainedHistogram, error) {
	if d == nil {
		return nil, fmt.Errorf("wavelethist: nil dataset")
	}
	if k < 1 {
		return nil, fmt.Errorf("wavelethist: k must be >= 1")
	}
	if shadow <= 0 {
		shadow = 4 * k
	}
	opts.K = k + shadow
	res, err := Build(d, HWTopk, opts)
	if err != nil {
		return nil, err
	}
	initial := make([]wavelet.Coef, 0, res.Histogram.K())
	for _, c := range res.Histogram.Coefficients() {
		initial = append(initial, wavelet.Coef{Index: c.Index, Value: c.Value})
	}
	return &MaintainedHistogram{
		m: wavelet.NewMaintainer(d.Domain(), initial, k, shadow),
	}, nil
}

// Update applies delta occurrences of key x (negative = deletions).
// O(log u).
func (h *MaintainedHistogram) Update(x int64, delta float64) {
	h.m.Update(x, delta)
}

// Histogram returns the current k-term histogram.
func (h *MaintainedHistogram) Histogram() *Histogram {
	return &Histogram{rep: h.m.Representation()}
}

// Tracked reports how many coefficients are currently tracked
// (retained + shadow).
func (h *MaintainedHistogram) Tracked() int { return h.m.Tracked() }
