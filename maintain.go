package wavelethist

import (
	"fmt"

	"wavelethist/internal/wavelet"
)

// MaintainedHistogram incrementally maintains a k-term wavelet histogram
// under record insertions and deletions — the paper's closing-remarks
// open problem, implemented with the shadow-coefficient scheme of Matias,
// Vitter, Wang (VLDB 2000, the paper's [27]): the top-k set plus a larger
// shadow set is kept exactly up to date in O(log u) per update, and the
// reported top-k adapts as coefficients grow or shrink.
type MaintainedHistogram struct {
	m *wavelet.Maintainer
}

// NewMaintainedHistogram builds the initial tracked set with an exact
// method (H-WTopk over the dataset) and returns a maintainable histogram.
// shadow <= 0 defaults to 4k. Construction pays one distributed build of
// k+shadow coefficients; every subsequent Update is O(log u) local work.
func NewMaintainedHistogram(d *Dataset, k, shadow int, opts Options) (*MaintainedHistogram, error) {
	if d == nil {
		return nil, fmt.Errorf("wavelethist: nil dataset")
	}
	if k < 1 {
		return nil, fmt.Errorf("wavelethist: k must be >= 1")
	}
	if shadow <= 0 {
		shadow = 4 * k
	}
	opts.K = k + shadow
	res, err := Build(d, HWTopk, opts)
	if err != nil {
		return nil, err
	}
	initial := make([]wavelet.Coef, 0, res.Histogram.K())
	for _, c := range res.Histogram.Coefficients() {
		initial = append(initial, wavelet.Coef{Index: c.Index, Value: c.Value})
	}
	return &MaintainedHistogram{
		m: wavelet.NewMaintainer(d.Domain(), initial, k, shadow),
	}, nil
}

// MaintainHistogram starts incremental maintenance from an already-built
// histogram — one produced by any of the seven construction methods or
// loaded from a serialized snapshot — without paying a fresh distributed
// build. The histogram's k' coefficients seed the tracked set; the shadow
// slots fill in as updates touch new coefficients (the [27] adoption
// rule). k <= 0 defaults to the histogram's own size, shadow <= 0 to 4k.
//
// This is the path a serving layer takes to keep a published histogram
// fresh under a live insert/delete stream.
func MaintainHistogram(h *Histogram, k, shadow int) (*MaintainedHistogram, error) {
	if h == nil || h.rep == nil {
		return nil, fmt.Errorf("wavelethist: nil histogram")
	}
	if k <= 0 {
		k = h.K()
	}
	if k < 1 {
		return nil, fmt.Errorf("wavelethist: cannot maintain an empty histogram")
	}
	if shadow <= 0 {
		shadow = 4 * k
	}
	initial := make([]wavelet.Coef, len(h.rep.Coefs))
	copy(initial, h.rep.Coefs)
	return &MaintainedHistogram{
		m: wavelet.NewMaintainer(h.Domain(), initial, k, shadow),
	}, nil
}

// Update applies delta occurrences of key x (negative = deletions).
// O(log u) path coefficients touched, each repaired in the maintained
// retained/shadow partition with O(log(k+shadow)) heap moves — the
// tracked set is never re-heapified.
func (h *MaintainedHistogram) Update(x int64, delta float64) {
	h.m.Update(x, delta)
}

// Histogram returns the current k-term histogram. The result is an
// immutable snapshot, safe to publish to a serving registry; while
// retained membership is unchanged between calls, successive snapshots
// share one error-tree query index and differ only in patched values, so
// interleaved update/query traffic never pays a top-k re-selection.
func (h *MaintainedHistogram) Histogram() *Histogram {
	return &Histogram{rep: h.m.Representation()}
}

// Domain returns the key-domain size u.
func (h *MaintainedHistogram) Domain() int64 { return h.m.Domain() }

// K returns the maintained representation size.
func (h *MaintainedHistogram) K() int { return h.m.K() }

// Shadow returns the shadow-set size (tracked slots beyond k).
func (h *MaintainedHistogram) Shadow() int { return h.m.Shadow() }

// Tracked reports how many coefficients are currently tracked
// (retained + shadow).
func (h *MaintainedHistogram) Tracked() int { return h.m.Tracked() }
