package wavelethist

import (
	"context"
	"fmt"

	"wavelethist/dist"
	"wavelethist/internal/core"
)

// ErrUnsupportedMethod reports a method that cannot run on the
// distributed worker fleet; the error text lists the supported methods.
// Match with errors.Is.
var ErrUnsupportedMethod = core.ErrUnsupportedMethod

// distRoundStats aliases the coordinator's per-round profile for the
// Result conversion in wavelethist.go.
type distRoundStats = dist.RoundStats

// BuildDistributed constructs the histogram on a real multi-process
// worker fleet instead of the in-process simulated cluster: the
// coordinator ships the dataset's generation recipe plus split
// assignments to waveworker processes (or an in-process loopback fleet),
// collects their mergeable partial summaries, and merges them. Per-split
// seeding makes the result bit-identical to Build with the same seed,
// while Result.CommBytes reports the real measured wire traffic of the
// coordinator↔worker RPCs and Result.ModelCommBytes the paper's modeled
// metric for comparison against simulated builds.
//
// All seven methods are supported. The one-round methods fan out once;
// the three-round H-WTopk runs the full two-sided-TPUT round barrier:
// workers hold per-job state leases with the unsent coefficients, the
// coordinator broadcasts T1/m before round 2 and the candidate set R
// before round 3, and splits whose worker died mid-protocol are replayed
// by their new owner. Result.PerRound carries the per-round profile.
func BuildDistributed(ctx context.Context, d *Dataset, method Method, opts Options, coord *dist.Coordinator) (*Result, error) {
	if d == nil || d.file == nil {
		return nil, fmt.Errorf("wavelethist: nil dataset")
	}
	if coord == nil {
		return nil, fmt.Errorf("wavelethist: nil coordinator")
	}
	if d.spec == nil {
		return nil, fmt.Errorf("wavelethist: dataset has no distributable spec")
	}
	out, stats, err := coord.Build(ctx, *d.spec, d.file, string(method), opts.toParams(d.Domain()))
	if err != nil {
		return nil, err
	}
	return &Result{
		Histogram:        &Histogram{rep: out.Rep},
		DistJobID:        stats.JobID,
		CommBytes:        stats.WireBytes,
		ModelCommBytes:   out.Metrics.TotalCommBytes(),
		WireBytes:        stats.WireBytes,
		Distributed:      true,
		Rounds:           out.Metrics.Rounds,
		PerRound:         perRoundStats(out.Metrics, stats.PerRound),
		CandidateSetSize: stats.CandidateSetSize,
		CachedSplits:     stats.CachedSplits,
		RecordsRead:      out.Metrics.MapRecordsRead,
		BytesRead:        out.Metrics.MapBytesRead,
		WallTime:         out.Metrics.WallTime,
		metrics:          out.Metrics,
	}, nil
}
