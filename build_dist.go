package wavelethist

import (
	"context"
	"fmt"

	"wavelethist/dist"
)

// BuildDistributed constructs the histogram on a real multi-process
// worker fleet instead of the in-process simulated cluster: the
// coordinator ships the dataset's generation recipe plus split
// assignments to waveworker processes (or an in-process loopback fleet),
// collects their mergeable partial summaries, and merges them. Per-split
// seeding makes the result bit-identical to Build with the same seed,
// while Result.CommBytes reports the real measured wire traffic of the
// coordinator↔worker RPCs and Result.ModelCommBytes the paper's modeled
// metric for comparison against simulated builds.
//
// All methods except the three-round H-WTopk are supported.
func BuildDistributed(ctx context.Context, d *Dataset, method Method, opts Options, coord *dist.Coordinator) (*Result, error) {
	if d == nil || d.file == nil {
		return nil, fmt.Errorf("wavelethist: nil dataset")
	}
	if coord == nil {
		return nil, fmt.Errorf("wavelethist: nil coordinator")
	}
	if d.spec == nil {
		return nil, fmt.Errorf("wavelethist: dataset has no distributable spec")
	}
	out, stats, err := coord.Build(ctx, *d.spec, d.file, string(method), opts.toParams(d.Domain()))
	if err != nil {
		return nil, err
	}
	return &Result{
		Histogram:      &Histogram{rep: out.Rep},
		CommBytes:      stats.WireBytes,
		ModelCommBytes: out.Metrics.TotalCommBytes(),
		WireBytes:      stats.WireBytes,
		Distributed:    true,
		Rounds:         out.Metrics.Rounds,
		RecordsRead:    out.Metrics.MapRecordsRead,
		BytesRead:      out.Metrics.MapBytesRead,
		WallTime:       out.Metrics.WallTime,
		metrics:        out.Metrics,
	}, nil
}
