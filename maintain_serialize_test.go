package wavelethist

import (
	"encoding/binary"
	"testing"
)

// TestMaintainedMarshalRoundTrip: a maintainer snapshot restores to a
// state-identical maintainer — same reported histogram now, and same
// histogram after an identical stream of further updates (the partition
// is a pure function of the tracked set, so restore is exact, not
// approximate).
func TestMaintainedMarshalRoundTrip(t *testing.T) {
	ds := zipfDS(t, 20000, 1<<12)
	mh, err := NewMaintainedHistogram(ds, 20, 60, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Drift the tracked set away from the initial build.
	for i := int64(0); i < 500; i++ {
		mh.Update((i*37)%ds.Domain(), float64(1+i%5))
		mh.Update((i*11)%ds.Domain(), -1)
	}
	b, err := mh.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 24+12*mh.Tracked() {
		t.Fatalf("snapshot size %d, want %d", len(b), 24+12*mh.Tracked())
	}
	got, err := UnmarshalMaintainedHistogram(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.K() != mh.K() || got.Shadow() != mh.Shadow() || got.Domain() != mh.Domain() || got.Tracked() != mh.Tracked() {
		t.Fatalf("shape mismatch: got k=%d shadow=%d u=%d tracked=%d", got.K(), got.Shadow(), got.Domain(), got.Tracked())
	}
	same := func(a, b *MaintainedHistogram) {
		t.Helper()
		ca, cb := a.Histogram().Coefficients(), b.Histogram().Coefficients()
		if len(ca) != len(cb) {
			t.Fatalf("coef count: %d vs %d", len(ca), len(cb))
		}
		for i := range ca {
			if ca[i] != cb[i] {
				t.Fatalf("coef %d: %+v vs %+v", i, ca[i], cb[i])
			}
		}
	}
	same(mh, got)
	// Identical future updates must produce identical histograms.
	for i := int64(0); i < 300; i++ {
		k := (i*i + 7) % ds.Domain()
		mh.Update(k, 2)
		got.Update(k, 2)
	}
	same(mh, got)

	// A second marshal of equal state is byte-identical (deterministic
	// index-ordered encoding).
	b2, err := got.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	b1, err := mh.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatal("equal maintainer states serialized differently")
	}
}

func TestUnmarshalMaintainedRejectsCorrupt(t *testing.T) {
	ds := zipfDS(t, 5000, 1<<10)
	mh, err := NewMaintainedHistogram(ds, 10, 20, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	good, err := mh.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalMaintainedHistogram(good); err != nil {
		t.Fatal(err)
	}
	bad := func(name string, mutate func([]byte) []byte) {
		t.Helper()
		b := append([]byte(nil), good...)
		if _, err := UnmarshalMaintainedHistogram(mutate(b)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	bad("truncated", func(b []byte) []byte { return b[:20] })
	bad("wrong magic", func(b []byte) []byte { b[0] ^= 0xff; return b })
	bad("trailing bytes", func(b []byte) []byte { return append(b, 0) })
	bad("k=0", func(b []byte) []byte { binary.LittleEndian.PutUint32(b[4:], 0); return b })
	bad("non-pow2 domain", func(b []byte) []byte { binary.LittleEndian.PutUint64(b[16:], 1000); return b })
	bad("index out of domain", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[24:], uint32(1<<20))
		return b
	})
	bad("unsorted indexes", func(b []byte) []byte {
		if len(b) < 24+24 {
			t.Skip("need two coefs")
		}
		// Swap the first two coefficient records.
		tmp := make([]byte, 12)
		copy(tmp, b[24:36])
		copy(b[24:36], b[36:48])
		copy(b[36:48], tmp)
		return b
	})
}
