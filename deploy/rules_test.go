// Package deploy ships operational config. The only Go code here is this
// test, which keeps deploy/prometheus-rules.yml honest: every metric
// family an alert expression references must exist in a live exposition
// scraped from the components the rules cover — a renamed or dropped
// metric fails CI instead of silently blanking an alert.
package deploy

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"slices"
	"sort"
	"strings"
	"testing"

	"wavelethist/dist"
	"wavelethist/ha"
	"wavelethist/internal/obs"
	"wavelethist/serve"
)

var familyRe = regexp.MustCompile(`\b(?:wavehist|waverouter|waveworker)_[a-z0-9_]+`)

// exprFamilies extracts the metric families referenced by expr blocks in
// the rules file, normalizing histogram series suffixes to their family
// name.
func exprFamilies(t *testing.T, rules string) []string {
	t.Helper()
	set := map[string]bool{}
	lines := strings.Split(rules, "\n")
	inExpr := false
	exprIndent := 0
	indentOf := func(s string) int { return len(s) - len(strings.TrimLeft(s, " ")) }
	for _, line := range lines {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		if strings.HasPrefix(trimmed, "expr:") {
			inExpr = true
			exprIndent = indentOf(line)
		} else if inExpr && indentOf(line) <= exprIndent {
			inExpr = false
		}
		if !inExpr {
			continue
		}
		for _, m := range familyRe.FindAllString(line, -1) {
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if base := strings.TrimSuffix(m, suf); base != m {
					m = base
					break
				}
			}
			set[m] = true
		}
	}
	fams := make([]string, 0, len(set))
	for f := range set {
		fams = append(fams, f)
	}
	sort.Strings(fams)
	return fams
}

func TestPrometheusRulesReferenceLiveFamilies(t *testing.T) {
	raw, err := os.ReadFile("prometheus-rules.yml")
	if err != nil {
		t.Fatal(err)
	}
	referenced := exprFamilies(t, string(raw))
	if len(referenced) < 10 {
		t.Fatalf("extracted only %d families from the rules — extraction broken?\n%v", len(referenced), referenced)
	}

	merged := map[string]*obs.Family{}
	addExposition := func(src, text string) {
		t.Helper()
		fams, err := obs.Lint(text)
		if err != nil {
			t.Fatalf("%s exposition fails lint: %v", src, err)
		}
		obs.MergeFamilies(merged, fams)
	}

	// Daemon families, scraped from a live serve.Server registry.
	s, err := serve.NewServer(serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var daemonBuf bytes.Buffer
	if err := s.Metrics().Expose(&daemonBuf); err != nil {
		t.Fatal(err)
	}
	addExposition("daemon", daemonBuf.String())

	// Router families, including the aggregation-only waverouter_shard_up,
	// via the router's real GET /metrics with a live shard behind it.
	shardSrv := httptest.NewServer(s)
	defer shardSrv.Close()
	rt, err := ha.NewRouter([]ha.Shard{{ID: "s0", Primary: shardSrv.URL}})
	if err != nil {
		t.Fatal(err)
	}
	rtSrv := httptest.NewServer(rt)
	defer rtSrv.Close()
	resp, err := http.Get(rtSrv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	addExposition("router", string(body))

	// Worker families from a live dist.Worker registry.
	var workerBuf bytes.Buffer
	if err := dist.NewWorker("w0", 2).Metrics().Expose(&workerBuf); err != nil {
		t.Fatal(err)
	}
	addExposition("worker", workerBuf.String())

	if err := obs.RequireFamilies(merged, referenced...); err != nil {
		t.Fatalf("prometheus-rules.yml references a family no component exposes: %v", err)
	}
}

// TestFailoverAlertFamiliesCovered pins the self-healing alert surface:
// the epoch-fencing and shard-role families must be referenced by the
// rules file AND present in a live router scrape with the exact label
// shape the expressions select on — role="primary"/"replica" for
// waverouter_shard_state, and the per-shard re-labeled daemon epoch
// families. The generic existence test above would pass even if the
// role label were renamed, which would silently blank both failover
// alerts.
func TestFailoverAlertFamiliesCovered(t *testing.T) {
	raw, err := os.ReadFile("prometheus-rules.yml")
	if err != nil {
		t.Fatal(err)
	}
	referenced := exprFamilies(t, string(raw))
	for _, want := range []string{"wavehist_repl_epoch_resets_total", "waverouter_shard_state"} {
		if !slices.Contains(referenced, want) {
			t.Fatalf("rules file no longer references %s — failover alert deleted?", want)
		}
	}

	s, err := serve.NewServer(serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	shardSrv := httptest.NewServer(s)
	defer shardSrv.Close()
	rt, err := ha.NewRouter([]ha.Shard{{ID: "s0", Primary: shardSrv.URL}})
	if err != nil {
		t.Fatal(err)
	}
	rtSrv := httptest.NewServer(rt)
	defer rtSrv.Close()
	resp, err := http.Get(rtSrv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fams, err := obs.Lint(string(body))
	if err != nil {
		t.Fatalf("router exposition fails lint: %v", err)
	}

	state := fams["waverouter_shard_state"]
	if state == nil {
		t.Fatal("router scrape missing waverouter_shard_state")
	}
	roles := map[string]bool{}
	for _, smp := range state.Samples {
		if smp.Labels["shard"] == "s0" {
			roles[smp.Labels["role"]] = true
		}
	}
	if !roles["primary"] || !roles["replica"] {
		t.Fatalf("waverouter_shard_state roles = %v, want primary and replica samples", roles)
	}

	for _, fam := range []string{"wavehist_epoch", "wavehist_repl_epoch_resets_total"} {
		f := fams[fam]
		if f == nil || len(f.Samples) == 0 {
			t.Fatalf("router scrape missing per-shard family %s", fam)
		}
		if f.Samples[0].Labels["shard"] != "s0" {
			t.Fatalf("%s not re-labeled with shard: %v", fam, f.Samples[0].Labels)
		}
	}
}
