package wavelethist

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"wavelethist/internal/wavelet"
)

// Binary serialization for histograms, so the summary built by an
// expensive distributed job can be persisted, cached by a query
// optimizer, or shipped to other services. The format is tiny by design —
// that is the histogram's raison d'être: 16 bytes of header plus 12 bytes
// per coefficient (4-byte index, 8-byte value) for 1D, 16 bytes per
// coefficient for 2D (8-byte packed index).

const (
	histMagic   = uint32(0x57485354) // "WHST"
	histMagic2D = uint32(0x57483244) // "WH2D"
	maintMagic  = uint32(0x574D4E54) // "WMNT"
)

// MarshalBinary implements encoding.BinaryMarshaler.
func (h *Histogram) MarshalBinary() ([]byte, error) {
	if h.rep.U > math.MaxUint32 {
		return nil, fmt.Errorf("wavelethist: domain %d too large for the 1D wire format", h.rep.U)
	}
	b := make([]byte, 0, 16+12*len(h.rep.Coefs))
	b = binary.LittleEndian.AppendUint32(b, histMagic)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(h.rep.Coefs)))
	b = binary.LittleEndian.AppendUint64(b, uint64(h.rep.U))
	for _, c := range h.rep.Coefs {
		b = binary.LittleEndian.AppendUint32(b, uint32(c.Index))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(c.Value))
	}
	return b, nil
}

// UnmarshalHistogram parses a histogram serialized by MarshalBinary.
func UnmarshalHistogram(b []byte) (*Histogram, error) {
	if len(b) < 16 {
		return nil, fmt.Errorf("wavelethist: truncated histogram (%d bytes)", len(b))
	}
	if binary.LittleEndian.Uint32(b) != histMagic {
		return nil, fmt.Errorf("wavelethist: bad histogram magic")
	}
	k := int(binary.LittleEndian.Uint32(b[4:]))
	u := int64(binary.LittleEndian.Uint64(b[8:]))
	if !wavelet.IsPowerOfTwo(u) || u > math.MaxUint32 {
		return nil, fmt.Errorf("wavelethist: corrupt domain %d", u)
	}
	if k < 0 || k > (len(b)-16)/12 {
		return nil, fmt.Errorf("wavelethist: corrupt coefficient count %d", k)
	}
	if len(b) != 16+12*k {
		return nil, fmt.Errorf("wavelethist: %d trailing bytes after %d coefficients", len(b)-16-12*k, k)
	}
	coefs := make([]wavelet.Coef, k)
	off := 16
	for i := range coefs {
		idx := int64(binary.LittleEndian.Uint32(b[off:]))
		val := math.Float64frombits(binary.LittleEndian.Uint64(b[off+4:]))
		if idx >= u {
			return nil, fmt.Errorf("wavelethist: coefficient index %d outside domain %d", idx, u)
		}
		if math.IsNaN(val) || math.IsInf(val, 0) {
			return nil, fmt.Errorf("wavelethist: non-finite coefficient value at index %d", idx)
		}
		coefs[i] = wavelet.Coef{Index: idx, Value: val}
		off += 12
	}
	return &Histogram{rep: wavelet.NewRepresentation(u, coefs)}, nil
}

// MarshalBinary implements encoding.BinaryMarshaler for 2D histograms.
func (h *Histogram2D) MarshalBinary() ([]byte, error) {
	if h.rep.U > 1<<31 {
		return nil, fmt.Errorf("wavelethist: grid side %d too large for the 2D wire format", h.rep.U)
	}
	b := make([]byte, 0, 16+16*len(h.rep.Coefs))
	b = binary.LittleEndian.AppendUint32(b, histMagic2D)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(h.rep.Coefs)))
	b = binary.LittleEndian.AppendUint64(b, uint64(h.rep.U))
	for _, c := range h.rep.Coefs {
		b = binary.LittleEndian.AppendUint64(b, uint64(c.Index))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(c.Value))
	}
	return b, nil
}

// UnmarshalHistogram2D parses a 2D histogram.
func UnmarshalHistogram2D(b []byte) (*Histogram2D, error) {
	if len(b) < 16 {
		return nil, fmt.Errorf("wavelethist: truncated 2D histogram (%d bytes)", len(b))
	}
	if binary.LittleEndian.Uint32(b) != histMagic2D {
		return nil, fmt.Errorf("wavelethist: bad 2D histogram magic")
	}
	k := int(binary.LittleEndian.Uint32(b[4:]))
	u := int64(binary.LittleEndian.Uint64(b[8:]))
	if !wavelet.IsPowerOfTwo(u) || u > 1<<31 {
		return nil, fmt.Errorf("wavelethist: corrupt grid side %d", u)
	}
	if k < 0 || k > (len(b)-16)/16 {
		return nil, fmt.Errorf("wavelethist: corrupt coefficient count %d", k)
	}
	if len(b) != 16+16*k {
		return nil, fmt.Errorf("wavelethist: %d trailing bytes after %d coefficients", len(b)-16-16*k, k)
	}
	coefs := make([]wavelet.Coef, k)
	off := 16
	for i := range coefs {
		idx := int64(binary.LittleEndian.Uint64(b[off:]))
		val := math.Float64frombits(binary.LittleEndian.Uint64(b[off+8:]))
		if idx >= u*u || idx < 0 {
			return nil, fmt.Errorf("wavelethist: coefficient index %d outside grid %d²", idx, u)
		}
		if math.IsNaN(val) || math.IsInf(val, 0) {
			return nil, fmt.Errorf("wavelethist: non-finite coefficient value at index %d", idx)
		}
		coefs[i] = wavelet.Coef{Index: idx, Value: val}
		off += 16
	}
	return &Histogram2D{rep: wavelet.NewRepresentation2D(u, coefs)}, nil
}

// MarshalBinary implements encoding.BinaryMarshaler for maintained
// histograms: it captures the full tracked set (retained + shadow), so a
// restart resumes maintenance with the exact partition it left off with —
// no rebuild, no accuracy loss. 24-byte header (magic, k, shadow, count,
// u) plus 12 bytes per tracked coefficient, same coefficient layout as the
// 1D histogram format. Coefficients are written in index order so equal
// maintainer states serialize to equal bytes.
func (h *MaintainedHistogram) MarshalBinary() ([]byte, error) {
	u := h.m.Domain()
	if u > math.MaxUint32 {
		return nil, fmt.Errorf("wavelethist: domain %d too large for the maintainer wire format", u)
	}
	coefs := h.m.TrackedCoefs()
	sort.Slice(coefs, func(i, j int) bool { return coefs[i].Index < coefs[j].Index })
	b := make([]byte, 0, 24+12*len(coefs))
	b = binary.LittleEndian.AppendUint32(b, maintMagic)
	b = binary.LittleEndian.AppendUint32(b, uint32(h.m.K()))
	b = binary.LittleEndian.AppendUint32(b, uint32(h.m.Shadow()))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(coefs)))
	b = binary.LittleEndian.AppendUint64(b, uint64(u))
	for _, c := range coefs {
		b = binary.LittleEndian.AppendUint32(b, uint32(c.Index))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(c.Value))
	}
	return b, nil
}

// UnmarshalMaintainedHistogram parses a maintainer snapshot written by
// MarshalBinary and re-seeds a live maintainer from it. Because the
// snapshot holds the complete tracked set and the maintainer's
// retained/shadow partition is a pure function of coefficient strengths,
// the restored maintainer is state-identical to the one that was saved.
func UnmarshalMaintainedHistogram(b []byte) (*MaintainedHistogram, error) {
	if len(b) < 24 {
		return nil, fmt.Errorf("wavelethist: truncated maintainer snapshot (%d bytes)", len(b))
	}
	if binary.LittleEndian.Uint32(b) != maintMagic {
		return nil, fmt.Errorf("wavelethist: bad maintainer magic")
	}
	k := int(binary.LittleEndian.Uint32(b[4:]))
	shadow := int(binary.LittleEndian.Uint32(b[8:]))
	n := int(binary.LittleEndian.Uint32(b[12:]))
	u := int64(binary.LittleEndian.Uint64(b[16:]))
	if !wavelet.IsPowerOfTwo(u) || u > math.MaxUint32 {
		return nil, fmt.Errorf("wavelethist: corrupt domain %d", u)
	}
	if k < 1 || shadow < 0 {
		return nil, fmt.Errorf("wavelethist: corrupt maintainer shape k=%d shadow=%d", k, shadow)
	}
	if n < 0 || n > (len(b)-24)/12 {
		return nil, fmt.Errorf("wavelethist: corrupt tracked count %d", n)
	}
	if len(b) != 24+12*n {
		return nil, fmt.Errorf("wavelethist: %d trailing bytes after %d tracked coefficients", len(b)-24-12*n, n)
	}
	coefs := make([]wavelet.Coef, n)
	off := 24
	prev := int64(-1)
	for i := range coefs {
		idx := int64(binary.LittleEndian.Uint32(b[off:]))
		val := math.Float64frombits(binary.LittleEndian.Uint64(b[off+4:]))
		if idx >= u {
			return nil, fmt.Errorf("wavelethist: tracked index %d outside domain %d", idx, u)
		}
		if idx <= prev {
			return nil, fmt.Errorf("wavelethist: tracked indexes out of order at %d", idx)
		}
		if math.IsNaN(val) || math.IsInf(val, 0) {
			return nil, fmt.Errorf("wavelethist: non-finite tracked value at index %d", idx)
		}
		coefs[i] = wavelet.Coef{Index: idx, Value: val}
		prev = idx
		off += 12
	}
	return &MaintainedHistogram{m: wavelet.RestoreMaintainer(u, coefs, k, shadow)}, nil
}
