package dist

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Distributed-build traces: the coordinator records one Span per
// split-batch RPC (worker, start/end, wire bytes, cached/replayed
// splits, retry and restored flags) into a bounded per-build ring kept
// for the last tracedBuilds builds. serve exposes them at
// GET /v1/jobs/{id}/trace, the coordinator itself at
// GET /dist/v1/trace/{id}; Config.TraceDir additionally dumps each
// finished build as JSONL so a slow or skewed build can be explained
// after the process is gone.

// Span is one unit of traced work: a split-batch map RPC, or a
// checkpoint-restored round (Restored, no RPC issued).
type Span struct {
	Round  int    `json:"round"`
	Worker string `json:"worker,omitempty"`
	Splits []int  `json:"splits,omitempty"`
	// StartUnixMicros/DurMicros bound the RPC on the coordinator's clock.
	StartUnixMicros int64 `json:"start_unix_micros,omitempty"`
	DurMicros       int64 `json:"dur_micros,omitempty"`
	WireBytes       int64 `json:"wire_bytes,omitempty"`
	// Cached/Replayed list the splits the worker served from its partial
	// cache / had to replay from earlier rounds.
	Cached   []int `json:"cached,omitempty"`
	Replayed []int `json:"replayed,omitempty"`
	// Retry marks a batch holding at least one re-dispatched split.
	Retry bool `json:"retry,omitempty"`
	// Restored marks a round replayed from a coordinator checkpoint.
	Restored bool   `json:"restored,omitempty"`
	Error    string `json:"error,omitempty"`
}

// TraceView is the JSON form of one build's trace.
type TraceView struct {
	JobID           string `json:"job_id"`
	Method          string `json:"method"`
	Splits          int    `json:"splits"`
	Rounds          int    `json:"rounds"`
	State           string `json:"state"` // running | done | failed
	Error           string `json:"error,omitempty"`
	StartUnixMicros int64  `json:"start_unix_micros"`
	EndUnixMicros   int64  `json:"end_unix_micros,omitempty"`
	Spans           []Span `json:"spans"`
	// DroppedSpans counts spans discarded once the per-build cap was hit
	// (oldest kept — the cap protects memory, not fidelity).
	DroppedSpans int `json:"dropped_spans,omitempty"`
}

// Trace retention bounds: builds kept and spans kept per build.
const (
	tracedBuilds       = 64
	traceSpansPerBuild = 4096
)

type buildTraceRec struct {
	view TraceView
}

// traceStore is the coordinator's bounded build-trace ring.
type traceStore struct {
	mu    sync.Mutex
	recs  map[string]*buildTraceRec
	order []string // insertion order, oldest first
}

func (ts *traceStore) begin(jobID, method string, splits, rounds int) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if ts.recs == nil {
		ts.recs = map[string]*buildTraceRec{}
	}
	ts.recs[jobID] = &buildTraceRec{view: TraceView{
		JobID:           jobID,
		Method:          method,
		Splits:          splits,
		Rounds:          rounds,
		State:           "running",
		StartUnixMicros: time.Now().UnixMicro(),
	}}
	ts.order = append(ts.order, jobID)
	for len(ts.order) > tracedBuilds {
		delete(ts.recs, ts.order[0])
		ts.order = ts.order[1:]
	}
}

func (ts *traceStore) record(jobID string, sp Span) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	rec, ok := ts.recs[jobID]
	if !ok {
		return
	}
	if len(rec.view.Spans) >= traceSpansPerBuild {
		rec.view.DroppedSpans++
		return
	}
	rec.view.Spans = append(rec.view.Spans, sp)
}

// end closes a build's trace and returns a copy for the TraceDir dump.
func (ts *traceStore) end(jobID string, buildErr error) (TraceView, bool) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	rec, ok := ts.recs[jobID]
	if !ok {
		return TraceView{}, false
	}
	rec.view.EndUnixMicros = time.Now().UnixMicro()
	if buildErr != nil {
		rec.view.State = "failed"
		rec.view.Error = buildErr.Error()
	} else {
		rec.view.State = "done"
	}
	return rec.view, true
}

func (ts *traceStore) get(jobID string) (TraceView, bool) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	rec, ok := ts.recs[jobID]
	if !ok {
		return TraceView{}, false
	}
	// Copy the span slice so callers never alias the live ring.
	v := rec.view
	v.Spans = append([]Span(nil), rec.view.Spans...)
	return v, true
}

// Trace returns the recorded trace for a build job ID ("build-…"), live
// while the build runs and retained for the last tracedBuilds builds.
func (c *Coordinator) Trace(jobID string) (TraceView, bool) {
	return c.traces.get(jobID)
}

func (c *Coordinator) beginTrace(jobID, method string, splits, rounds int) {
	c.traces.begin(jobID, method, splits, rounds)
}

func (c *Coordinator) recordSpan(jobID string, sp Span) {
	c.traces.record(jobID, sp)
}

// endTrace closes the trace and, when Config.TraceDir is set, dumps it
// as JSONL (one summary line, then one line per span). Best-effort: a
// failed write never fails the build.
func (c *Coordinator) endTrace(jobID string, buildErr error) {
	v, ok := c.traces.end(jobID, buildErr)
	if !ok || c.cfg.TraceDir == "" {
		return
	}
	_ = dumpTraceJSONL(c.cfg.TraceDir, v)
}

func dumpTraceJSONL(dir string, v TraceView) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, v.JobID+".jsonl"))
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	summary := v
	summary.Spans = nil
	if err := enc.Encode(summary); err != nil {
		return err
	}
	for _, sp := range v.Spans {
		line := struct {
			JobID string `json:"job_id"`
			Span
		}{JobID: v.JobID, Span: sp}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	return f.Sync()
}

// jobIDSinkKey carries a callback through a build's context so the
// caller (serve's async job runner) learns the coordinator-assigned
// build job ID as soon as it exists — before the build finishes — and
// can serve GET /v1/jobs/{id}/trace for a still-running build.
type jobIDSinkKey struct{}

// WithJobIDSink returns a context that delivers the distributed build's
// job ID ("build-…") to fn when the coordinator allocates it. fn must be
// safe for concurrent use and must not block.
func WithJobIDSink(ctx context.Context, fn func(jobID string)) context.Context {
	return context.WithValue(ctx, jobIDSinkKey{}, fn)
}

func notifyJobID(ctx context.Context, jobID string) {
	if fn, ok := ctx.Value(jobIDSinkKey{}).(func(string)); ok && fn != nil {
		fn(jobID)
	}
}
