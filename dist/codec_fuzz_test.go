package dist

import (
	"testing"

	"wavelethist/internal/core"
	"wavelethist/internal/mapred"
)

// Fuzz targets for the binary wire codec: arbitrary bytes must never
// panic a decoder, and whatever decodes must re-encode to something that
// decodes to the same value (up to the frame's compression choice).

func FuzzDecodeMapRequest(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeMapRequest(&MapRequest{JobID: "j", Method: "Send-V", Splits: []int{0}}))
	f.Add(EncodeMapRequest(&MapRequest{
		JobID: "j2", Method: "H-WTopk", Round: 3, Rounds: 3,
		Broadcast: []byte{9, 9, 9},
		Dataset:   DatasetSpec{Kind: "keys", Domain: 16, Keys: []int64{1, 2, 3}},
		Splits:    []int{5, 6},
	}))
	seed := EncodeMapRequest(&MapRequest{JobID: "t", Method: "Send-V", Splits: []int{1, 2, 3}})
	for i := 0; i < len(seed); i += 7 {
		mut := append([]byte{}, seed...)
		mut[i] ^= 0xff
		f.Add(mut)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		req, err := DecodeMapRequest(b)
		if err != nil {
			return
		}
		again, err := DecodeMapRequest(EncodeMapRequest(req))
		if err != nil {
			t.Fatalf("re-encode of decoded request failed: %v", err)
		}
		if again.JobID != req.JobID || again.Method != req.Method || len(again.Splits) != len(req.Splits) {
			t.Fatalf("re-encode changed request: %+v vs %+v", again, req)
		}
	})
}

func FuzzDecodeMapResponse(f *testing.F) {
	f.Add([]byte{})
	parts := []core.SplitPartial{{SplitID: 1, Pairs: []mapred.KV{{Key: 3, Val: 1.5}}}}
	good := EncodeMapResponse(&MapResponse{
		JobID: "j", Partials: core.EncodePartials(parts), Replayed: []int{1}, Cached: []int{2},
	})
	f.Add(good)
	for i := 0; i < len(good); i += 5 {
		mut := append([]byte{}, good...)
		mut[i] ^= 0x10
		f.Add(mut)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		resp, err := DecodeMapResponse(b)
		if err != nil {
			return
		}
		// The partial payload inside is attacker-controlled too; its
		// decoder must be equally robust.
		_, _ = core.DecodePartials(resp.Partials)
		if _, err := DecodeMapResponse(EncodeMapResponse(resp)); err != nil {
			t.Fatalf("re-encode of decoded response failed: %v", err)
		}
	})
}

func FuzzDecodeFrame(f *testing.F) {
	f.Add(EncodeReleaseRequest(&ReleaseRequest{JobID: "j"}))
	f.Add(EncodeHeartbeatRequest(&HeartbeatRequest{ID: "w"}))
	f.Add(EncodeRegisterRequest(&RegisterRequest{ID: "w", Addr: "http://x", Capacity: 1}))
	f.Fuzz(func(t *testing.T, b []byte) {
		// None of the small-message decoders may panic on arbitrary input.
		_, _ = DecodeRegisterRequest(b)
		_, _ = DecodeRegisterResponse(b)
		_, _ = DecodeHeartbeatRequest(b)
		_, _ = DecodeHeartbeatResponse(b)
		_, _ = DecodeReleaseRequest(b)
		_, _ = DecodeReleaseResponse(b)
	})
}
