package dist

import (
	"context"
	"fmt"
	"testing"

	"wavelethist/internal/core"
	"wavelethist/internal/mapred"
)

func kvPartial(split, npairs int) core.SplitPartial {
	p := core.SplitPartial{SplitID: split}
	for i := 0; i < npairs; i++ {
		p.Pairs = append(p.Pairs, mapred.KV{Key: int64(i), Val: 1})
	}
	return p
}

// TestPartialCacheLRU: the byte bound evicts least-recently-used entries,
// and counters track hits, misses and evictions.
func TestPartialCacheLRU(t *testing.T) {
	// Each 10-pair partial costs 256 + 10*24 = 496 bytes; bound to three.
	const entryBytes = 496
	c := newPartialCache(3 * entryBytes)
	for i := 0; i < 3; i++ {
		c.put("k", i, kvPartial(i, 10))
	}
	if st := c.stats(); st.Entries != 3 || st.Evictions != 0 {
		t.Fatalf("after 3 puts: %v", st)
	}
	// Touch split 0 so split 1 is the LRU, then insert a fourth.
	if _, ok := c.get("k", 0); !ok {
		t.Fatal("split 0 missing")
	}
	c.put("k", 3, kvPartial(3, 10))
	st := c.stats()
	if st.Entries != 3 || st.Evictions != 1 {
		t.Fatalf("after eviction: %v", st)
	}
	if _, ok := c.get("k", 1); ok {
		t.Error("LRU entry survived eviction")
	}
	for _, id := range []int{0, 2, 3} {
		if _, ok := c.get("k", id); !ok {
			t.Errorf("split %d evicted but was not LRU", id)
		}
	}
	st = c.stats()
	if st.Hits != 4 || st.Misses != 1 {
		t.Errorf("counters: %v", st)
	}
	// An entry larger than the whole bound is not stored.
	c.put("k", 9, kvPartial(9, 1000))
	if _, ok := c.get("k", 9); ok {
		t.Error("oversized entry cached")
	}
	// Shrinking the bound evicts down to it.
	c.setMax(entryBytes)
	if st := c.stats(); st.Entries != 1 || st.Bytes > entryBytes {
		t.Errorf("after shrink: %v", st)
	}
	// 0 disables: nothing stored, existing entries dropped.
	c.setMax(0)
	c.put("k", 0, kvPartial(0, 1))
	if st := c.stats(); st.Entries != 0 {
		t.Errorf("disabled cache holds entries: %v", st)
	}
}

// TestPartialCacheKey: the key must separate every result-affecting input
// and nothing else.
func TestPartialCacheKey(t *testing.T) {
	p := core.Params{U: 1 << 10, K: 30, Seed: 7}
	base := partialCacheKey("fp", "Send-V", p, 0, nil)
	same := partialCacheKey("fp", "Send-V", core.Params{U: 1 << 10, K: 30, Seed: 7}, 0, nil)
	if base != same {
		t.Error("equal inputs produced different keys")
	}
	// Parallelism does not affect results and must not affect the key.
	pp := p
	pp.Parallelism = 8
	if partialCacheKey("fp", "Send-V", pp, 0, nil) != base {
		t.Error("parallelism changed the cache key")
	}
	// Defaulted and explicit-default params collide (K: 0 → 30).
	if partialCacheKey("fp", "Send-V", core.Params{U: 1 << 10, Seed: 7}, 0, nil) != base {
		t.Error("defaulted params missed the explicit-default key")
	}
	diffs := []string{
		partialCacheKey("fp2", "Send-V", p, 0, nil),
		partialCacheKey("fp", "Send-Coef", p, 0, nil),
		partialCacheKey("fp", "Send-V", core.Params{U: 1 << 10, K: 31, Seed: 7}, 0, nil),
		partialCacheKey("fp", "Send-V", core.Params{U: 1 << 10, K: 30, Seed: 8}, 0, nil),
		partialCacheKey("fp", "Send-V", core.Params{U: 1 << 11, K: 30, Seed: 7}, 0, nil),
		partialCacheKey("fp", "Send-V", p, 1, nil),
		partialCacheKey("fp", "Send-V", p, 2, []byte{1}),
		partialCacheKey("fp", "Send-V", p, 2, []byte{2}),
	}
	seen := map[string]bool{base: true}
	for i, k := range diffs {
		if seen[k] {
			t.Errorf("variant %d collided with another key", i)
		}
		seen[k] = true
	}
}

// TestWorkerWarmMap: a repeat assignment is served entirely from the
// worker's partial cache (zero recompute), and changing k invalidates it.
func TestWorkerWarmMap(t *testing.T) {
	w := NewWorker("w0", 2)
	spec := DatasetSpec{Kind: "zipf", Records: 1 << 12, Domain: 1 << 8, Seed: 5, ChunkSize: 4 << 10}
	req := &MapRequest{
		JobID: "j1", Method: "Send-V",
		Params:  core.Params{U: 1 << 8, K: 10, Seed: 5},
		Dataset: spec, Splits: []int{0, 1, 2},
	}
	cold, err := w.HandleMap(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(cold.Cached) != 0 {
		t.Fatalf("cold build reported cache hits: %v", cold.Cached)
	}
	req.JobID = "j2"
	warm, err := w.HandleMap(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(warm.Cached) != len(req.Splits) {
		t.Fatalf("warm build cached %v, want all of %v", warm.Cached, req.Splits)
	}
	if string(warm.Partials) != string(cold.Partials) {
		t.Error("cached partials differ from computed ones")
	}
	st := w.CacheStats()
	if st.Hits != 3 || st.Entries != 3 {
		t.Errorf("cache stats after warm build: %v", st)
	}

	// Changing k misses — different key, fresh compute.
	req.JobID = "j3"
	req.Params.K = 20
	inval, err := w.HandleMap(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(inval.Cached) != 0 {
		t.Fatalf("changed params still hit the cache: %v", inval.Cached)
	}

	// A disabled cache never reports hits.
	w.SetPartialCacheBytes(0)
	req.JobID = "j4"
	off, err := w.HandleMap(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(off.Cached) != 0 {
		t.Fatalf("disabled cache reported hits: %v", off.Cached)
	}
}

// TestWorkerCacheEviction: a byte bound smaller than the working set
// forces recomputation of evicted splits while the rest still hit.
func TestWorkerCacheEviction(t *testing.T) {
	w := NewWorker("w0", 2)
	spec := DatasetSpec{Kind: "zipf", Records: 1 << 12, Domain: 1 << 8, Seed: 5, ChunkSize: 4 << 10}
	req := &MapRequest{
		JobID: "j1", Method: "Send-V",
		Params:  core.Params{U: 1 << 8, K: 10, Seed: 5},
		Dataset: spec, Splits: []int{0, 1, 2},
	}
	cold, err := w.HandleMap(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	// Shrink the bound so only part of the working set fits.
	full := w.CacheStats().Bytes
	w.SetPartialCacheBytes(full * 2 / 3)
	st := w.CacheStats()
	if st.Evictions == 0 || st.Bytes > full*2/3 {
		t.Fatalf("shrink did not evict: %v (was %d bytes)", st, full)
	}
	req.JobID = "j2"
	warm, err := w.HandleMap(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(warm.Cached) == 0 || len(warm.Cached) == len(req.Splits) {
		t.Fatalf("bounded cache hits: %v, want partial", warm.Cached)
	}
	// Results identical regardless of which splits were recomputed.
	if string(warm.Partials) != string(cold.Partials) {
		t.Error("partials after eviction differ")
	}
}

// TestAffinityHeals: a build shape's split→worker map is remembered, but
// a seeded repeat build that got zero cache hits proves the owners'
// caches are cold — the entry must be dropped so later builds are free
// to load-balance instead of staying pinned.
func TestAffinityHeals(t *testing.T) {
	c := NewCoordinator(NewLoopback(), Config{})
	owners, seeded := c.affinityOwners("shape", 4)
	if seeded || len(owners) != 4 {
		t.Fatalf("fresh shape: seeded=%v owners=%v", seeded, owners)
	}
	c.storeAffinity("shape", []string{"w0", "w0", "w1", "w1"}, false, 0)
	got, seeded := c.affinityOwners("shape", 4)
	if !seeded || got[0] != "w0" || got[3] != "w1" {
		t.Fatalf("stored shape: seeded=%v owners=%v", seeded, got)
	}
	// Split-count mismatch (different SplitSize shape) is not seeded.
	if _, ok := c.affinityOwners("shape", 8); ok {
		t.Error("mismatched split count reported seeded")
	}
	// A warm build with hits refreshes the entry.
	c.storeAffinity("shape", []string{"w2", "w2", "w2", "w2"}, true, 4)
	if got, _ := c.affinityOwners("shape", 4); got[0] != "w2" {
		t.Fatalf("refresh did not store: %v", got)
	}
	// A seeded build with zero hits drops the entry.
	c.storeAffinity("shape", []string{"w2", "w2", "w2", "w2"}, true, 0)
	if _, ok := c.affinityOwners("shape", 4); ok {
		t.Error("cold-cache affinity entry survived")
	}
	// FIFO bound holds.
	for i := 0; i < 2*affinityKeys; i++ {
		c.storeAffinity(fmt.Sprintf("s%d", i), []string{"w"}, false, 0)
	}
	c.affMu.Lock()
	n := len(c.affinity)
	c.affMu.Unlock()
	if n > affinityKeys {
		t.Errorf("affinity map grew to %d entries (bound %d)", n, affinityKeys)
	}
}
