package dist

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"

	"wavelethist/internal/core"
	"wavelethist/internal/mapred"
)

func testMapRequest() *MapRequest {
	return &MapRequest{
		JobID:  "build-abc-7",
		Method: "H-WTopk",
		Params: core.Params{
			U: 1 << 14, K: 30, Epsilon: 0.001, SplitSize: 4096, Seed: 42,
			Parallelism: 2, CombineEnabled: true, SketchBytes: 12345, SketchDegree: 8,
		},
		Dataset: DatasetSpec{
			Kind: "keys", Records: 9, Domain: 1 << 14, Alpha: 1.1, RecordSize: 4,
			ChunkSize: 1 << 20, Nodes: 15, Seed: 7, ClientBits: 10, ObjectBits: 10,
			Keys: []int64{0, 5, 16383, 77, 77, 1},
		},
		Splits:    []int{3, 0, 17},
		Round:     2,
		Rounds:    3,
		Broadcast: []byte{1, 2, 3, 255, 0, 9},
	}
}

func testMapResponse() *MapResponse {
	parts := []core.SplitPartial{
		{
			SplitID: 4, Node: 2, RecordsRead: 1000, BytesRead: 4000,
			InputBytes: 4096, CPUUnits: 1234.5,
			Pairs: []mapred.KV{
				{Key: 1, Val: 2.5, Src: 4, Tag: 1},
				{Key: 99, Val: -0.25, Src: 4, Tag: 0},
			},
		},
		{SplitID: 5, Node: 0},
	}
	return &MapResponse{
		JobID:    "build-abc-7",
		Partials: core.EncodePartials(parts),
		Replayed: []int{5},
		Cached:   []int{4},
		Error:    "",
	}
}

// TestCodecRoundTrip: every message type survives encode → decode
// unchanged.
func TestCodecRoundTrip(t *testing.T) {
	req := testMapRequest()
	gotReq, err := DecodeMapRequest(EncodeMapRequest(req))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(req, gotReq) {
		t.Errorf("map request round trip:\n got %+v\nwant %+v", gotReq, req)
	}

	resp := testMapResponse()
	gotResp, err := DecodeMapResponse(EncodeMapResponse(resp))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resp, gotResp) {
		t.Errorf("map response round trip:\n got %+v\nwant %+v", gotResp, resp)
	}
	// The partial payload itself must still decode.
	if _, err := core.DecodePartials(gotResp.Partials); err != nil {
		t.Errorf("partials after round trip: %v", err)
	}

	reg := &RegisterRequest{ID: "w0", Addr: "http://h:1", Capacity: 4}
	if got, err := DecodeRegisterRequest(EncodeRegisterRequest(reg)); err != nil || !reflect.DeepEqual(reg, got) {
		t.Errorf("register request round trip: %+v, %v", got, err)
	}
	rr := &RegisterResponse{OK: true, HeartbeatMillis: 3000}
	if got, err := DecodeRegisterResponse(EncodeRegisterResponse(rr)); err != nil || !reflect.DeepEqual(rr, got) {
		t.Errorf("register response round trip: %+v, %v", got, err)
	}
	hb := &HeartbeatRequest{ID: "w0"}
	if got, err := DecodeHeartbeatRequest(EncodeHeartbeatRequest(hb)); err != nil || !reflect.DeepEqual(hb, got) {
		t.Errorf("heartbeat request round trip: %+v, %v", got, err)
	}
	hr := &HeartbeatResponse{OK: true}
	if got, err := DecodeHeartbeatResponse(EncodeHeartbeatResponse(hr)); err != nil || !reflect.DeepEqual(hr, got) {
		t.Errorf("heartbeat response round trip: %+v, %v", got, err)
	}
	rel := &ReleaseRequest{JobID: "j1"}
	if got, err := DecodeReleaseRequest(EncodeReleaseRequest(rel)); err != nil || !reflect.DeepEqual(rel, got) {
		t.Errorf("release request round trip: %+v, %v", got, err)
	}
	rlr := &ReleaseResponse{OK: true, Released: true}
	if got, err := DecodeReleaseResponse(EncodeReleaseResponse(rlr)); err != nil || !reflect.DeepEqual(rlr, got) {
		t.Errorf("release response round trip: %+v, %v", got, err)
	}
}

// TestCodecCompression: a large, repetitive response is framed compressed
// and still round-trips; the frame is smaller than the raw body.
func TestCodecCompression(t *testing.T) {
	var pairs []mapred.KV
	for i := 0; i < 10000; i++ {
		pairs = append(pairs, mapred.KV{Key: int64(i), Val: float64(i % 7), Src: 3})
	}
	resp := &MapResponse{
		JobID:    "big",
		Partials: core.EncodePartials([]core.SplitPartial{{SplitID: 3, Pairs: pairs}}),
	}
	frame := EncodeMapResponse(resp)
	if len(frame) >= len(resp.Partials) {
		t.Errorf("frame %d bytes not smaller than raw partials %d", len(frame), len(resp.Partials))
	}
	if frame[5]&flagDeflate == 0 {
		t.Error("large frame not compressed")
	}
	got, err := DecodeMapResponse(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Partials, resp.Partials) {
		t.Error("compressed round trip corrupted partials")
	}
}

// TestCodecFrameErrors: truncated frames, bad magic/type/flags, and
// length-prefix lies are all rejected with errors, never panics.
func TestCodecFrameErrors(t *testing.T) {
	frame := EncodeMapRequest(testMapRequest())

	// Truncations at every prefix length.
	for n := 0; n < len(frame); n += 1 + n/8 {
		if _, err := DecodeMapRequest(frame[:n]); err == nil {
			t.Errorf("truncated frame (%d of %d bytes) accepted", n, len(frame))
		}
	}
	// Bad magic.
	bad := append([]byte{}, frame...)
	bad[0] = 'X'
	if _, err := DecodeMapRequest(bad); err == nil {
		t.Error("bad magic accepted")
	}
	// Wrong message type.
	if _, err := DecodeMapResponse(frame); err == nil {
		t.Error("map request accepted as map response")
	}
	// Unknown flags.
	bad = append([]byte{}, frame...)
	bad[5] |= 0x80
	if _, err := DecodeMapRequest(bad); err == nil {
		t.Error("unknown flags accepted")
	}
	// Declared payload length too large / too small.
	bad = append([]byte{}, frame...)
	binary.LittleEndian.PutUint32(bad[6:10], uint32(len(frame))) // lies
	if _, err := DecodeMapRequest(bad); err == nil {
		t.Error("wrong payload length accepted")
	}
	// Trailing bytes after the body.
	if _, err := DecodeMapRequest(append(append([]byte{}, frame...), 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

// TestCodecCorruptCompressed: flipping bytes inside a compressed payload
// must fail the decode, and an uncompressed-length lie is caught.
func TestCodecCorruptCompressed(t *testing.T) {
	var pairs []mapred.KV
	for i := 0; i < 5000; i++ {
		pairs = append(pairs, mapred.KV{Key: int64(i), Val: 1})
	}
	frame := EncodeMapResponse(&MapResponse{
		JobID:    "z",
		Partials: core.EncodePartials([]core.SplitPartial{{SplitID: 0, Pairs: pairs}}),
	})
	if frame[5]&flagDeflate == 0 {
		t.Fatal("test frame not compressed")
	}
	// Corrupt the deflate stream.
	bad := append([]byte{}, frame...)
	for i := 20; i < len(bad); i += 37 {
		bad[i] ^= 0xff
	}
	if _, err := DecodeMapResponse(bad); err == nil {
		t.Error("corrupt deflate stream accepted")
	}
	// Lie about the uncompressed size.
	bad = append([]byte{}, frame...)
	binary.LittleEndian.PutUint32(bad[10:14], 7)
	if _, err := DecodeMapResponse(bad); err == nil {
		t.Error("wrong uncompressed length accepted")
	}
}

// TestCodecCorruptBody: plausible frames with corrupt body length
// prefixes fail cleanly.
func TestCodecCorruptBody(t *testing.T) {
	// A body that is one huge uvarint length with nothing behind it.
	body := binary.AppendUvarint(nil, 1<<40)
	frame := encodeFrame(msgMapRequest, body)
	if _, err := DecodeMapRequest(frame); err == nil {
		t.Error("absurd string length accepted")
	}
	// Valid body, then bit-flipped at every offset: must never panic.
	good := EncodeMapRequest(testMapRequest())
	for i := range good {
		bad := append([]byte{}, good...)
		bad[i] ^= 0x01
		_, _ = DecodeMapRequest(bad) // error or not — just no panic
	}
}
