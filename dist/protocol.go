// Package dist executes wavelet-histogram builds across real processes:
// a coordinator partitions a dataset into splits, assigns them to a fleet
// of worker processes over a stdlib-only HTTP/JSON protocol, and merges
// the workers' mergeable partial summaries (internal/core.SplitPartial)
// into the final histogram — the paper's Map/Shuffle/Reduce made
// multi-process, with communication measured on the actual request and
// response payloads instead of modeled.
//
// The fleet is dynamic: workers register with the coordinator and keep a
// heartbeat; splits assigned to a worker that crashes or goes silent are
// re-assigned to the survivors, and per-split RNG derivation makes the
// result identical regardless of which worker ran which split. An
// in-process Loopback transport runs the same coordinator and worker code
// without sockets, for tests and for wavehistd's single-binary -workers
// mode.
package dist

import "wavelethist/internal/core"

// Protocol endpoints. The coordinator serves the register/heartbeat/
// workers endpoints (mounted into wavehistd); each worker serves map and
// ping.
const (
	PathRegister  = "/dist/v1/register"
	PathHeartbeat = "/dist/v1/heartbeat"
	PathWorkers   = "/dist/v1/workers"
	PathMap       = "/dist/v1/map"
	PathPing      = "/dist/v1/ping"
)

// RegisterRequest announces a worker to the coordinator. Addr is the URL
// the coordinator dials back for map RPCs ("http://host:port", or
// "loopback://name" for in-process workers).
type RegisterRequest struct {
	ID       string `json:"id"`
	Addr     string `json:"addr"`
	Capacity int    `json:"capacity"`
}

// RegisterResponse acknowledges registration and tells the worker how
// often to heartbeat.
type RegisterResponse struct {
	OK              bool  `json:"ok"`
	HeartbeatMillis int64 `json:"heartbeat_millis"`
}

// HeartbeatRequest keeps a registered worker alive.
type HeartbeatRequest struct {
	ID string `json:"id"`
}

// HeartbeatResponse reports whether the coordinator still knows the
// worker; on !OK the worker re-registers (coordinator restart).
type HeartbeatResponse struct {
	OK bool `json:"ok"`
}

// MapRequest assigns a batch of splits to a worker: the dataset recipe,
// the method, its parameters, and the split indices to run.
type MapRequest struct {
	JobID   string      `json:"job_id"`
	Method  string      `json:"method"`
	Params  core.Params `json:"params"`
	Dataset DatasetSpec `json:"dataset"`
	Splits  []int       `json:"splits"`
}

// MapResponse returns the batch's mergeable partials
// (core.EncodePartials, base64 in JSON) or an application error.
type MapResponse struct {
	JobID    string `json:"job_id"`
	Partials []byte `json:"partials,omitempty"`
	Error    string `json:"error,omitempty"`
}

// WorkersResponse is the observability payload of GET /dist/v1/workers.
type WorkersResponse struct {
	Workers []WorkerInfo `json:"workers"`
}
