// Package dist executes wavelet-histogram builds across real processes:
// a coordinator partitions a dataset into splits, assigns them to a fleet
// of worker processes over a stdlib-only HTTP protocol — length-prefixed
// binary frames by default (codec.go), with JSON retained as a negotiated
// fallback for old workers — and merges the workers' mergeable partial
// summaries (internal/core.SplitPartial) into the final histogram: the
// paper's Map/Shuffle/Reduce made multi-process, with communication
// measured on the actual request and response payloads instead of
// modeled.
//
// The fleet is dynamic: workers register with the coordinator and keep a
// heartbeat; splits assigned to a worker that crashes or goes silent are
// re-assigned to the survivors, and per-split RNG derivation makes the
// result identical regardless of which worker ran which split. An
// in-process Loopback transport runs the same coordinator and worker code
// without sockets, for tests and for wavehistd's single-binary -workers
// mode.
package dist

import "wavelethist/internal/core"

// Protocol endpoints. The coordinator serves the register/heartbeat/
// workers/fleet endpoints (mounted into wavehistd); each worker serves
// map, release, state and ping.
const (
	PathRegister  = "/dist/v1/register"
	PathHeartbeat = "/dist/v1/heartbeat"
	PathWorkers   = "/dist/v1/workers"
	PathFleet     = "/dist/v1/fleet"
	PathMap       = "/dist/v1/map"
	PathRelease   = "/dist/v1/release"
	PathState     = "/dist/v1/state"
	PathPing      = "/dist/v1/ping"
	// PathTrace prefixes GET /dist/v1/trace/{jobID} on the coordinator.
	PathTrace = "/dist/v1/trace/"
)

// RegisterRequest announces a worker to the coordinator. Addr is the URL
// the coordinator dials back for map RPCs ("http://host:port", or
// "loopback://name" for in-process workers).
type RegisterRequest struct {
	ID       string `json:"id"`
	Addr     string `json:"addr"`
	Capacity int    `json:"capacity"`
}

// RegisterResponse acknowledges registration and tells the worker how
// often to heartbeat.
type RegisterResponse struct {
	OK              bool  `json:"ok"`
	HeartbeatMillis int64 `json:"heartbeat_millis"`
}

// HeartbeatRequest keeps a registered worker alive.
type HeartbeatRequest struct {
	ID string `json:"id"`
}

// HeartbeatResponse reports whether the coordinator still knows the
// worker; on !OK the worker re-registers (coordinator restart).
type HeartbeatResponse struct {
	OK bool `json:"ok"`
}

// MapRequest assigns a batch of splits to a worker: the dataset recipe,
// the method, its parameters, and the split indices to run. For
// multi-round methods it additionally names the round, the job's total
// round count (the worker's cue to open a per-job state lease), and the
// coordinator's broadcast blob for the round — round 2 ships T1/m, round 3
// ships T1/m plus the candidate set R (core's binary codec, base64 in
// JSON). Round 0 means a one-round method (back-compat with the PR-2 wire
// format).
type MapRequest struct {
	JobID   string      `json:"job_id"`
	Method  string      `json:"method"`
	Params  core.Params `json:"params"`
	Dataset DatasetSpec `json:"dataset"`
	Splits  []int       `json:"splits"`

	Round     int    `json:"round,omitempty"`
	Rounds    int    `json:"rounds,omitempty"`
	Broadcast []byte `json:"broadcast,omitempty"`
}

// MapResponse returns the batch's mergeable partials
// (core.EncodePartials, base64 in JSON) or an application error. Replayed
// lists assigned splits whose earlier-round state this worker did not hold
// (lost lease or new owner) and had to rebuild by replaying earlier
// rounds locally. Cached lists assigned splits served from the worker's
// partial cache — re-shipped without recomputation.
type MapResponse struct {
	JobID    string `json:"job_id"`
	Partials []byte `json:"partials,omitempty"`
	Replayed []int  `json:"replayed,omitempty"`
	Cached   []int  `json:"cached,omitempty"`
	Error    string `json:"error,omitempty"`
}

// ReleaseRequest drops a worker's state lease for a finished (or
// canceled/failed) multi-round job.
type ReleaseRequest struct {
	JobID string `json:"job_id"`
}

// ReleaseResponse acknowledges a release; Released reports whether a
// lease actually existed (false is normal: the worker never served the
// job, or its lease already expired).
type ReleaseResponse struct {
	OK       bool `json:"ok"`
	Released bool `json:"released"`
}

// WorkersResponse is the observability payload of GET /dist/v1/workers.
type WorkersResponse struct {
	Workers []WorkerInfo `json:"workers"`
}

// LeaseView describes one per-job state lease held by a worker
// (GET /dist/v1/state on the worker).
type LeaseView struct {
	JobID      string `json:"job_id"`
	Entries    int    `json:"entries"` // state files held (≈ splits × rounds)
	Bytes      int64  `json:"bytes"`
	AgeMillis  int64  `json:"age_millis"`
	IdleMillis int64  `json:"idle_millis"`
}

// WorkerStateResponse is the payload of GET /dist/v1/state: the worker's
// live leases, dataset cache occupancy, and partial-cache effectiveness.
type WorkerStateResponse struct {
	ID       string         `json:"id"`
	Capacity int            `json:"capacity"`
	Leases   []LeaseView    `json:"leases"`
	Datasets int            `json:"datasets"`
	Cache    CacheStatsView `json:"cache"`
}
