package dist

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"

	"wavelethist/internal/core"
)

// Coordinator checkpointing. A multi-round build's only irreplaceable
// state between round barriers is the sequence of per-round partial sets
// the coordinator has already collected: the reducer state (ŵ/F entries,
// T1, the candidate set R) is a deterministic function of those partials,
// recomputed by replaying them through RoundPlan.Broadcast + ReduceRound.
// So a checkpoint is just the completed rounds' partials, encoded with
// the same partial codec the wire uses, wrapped in one WDF1 frame and
// written atomically (tmp + rename) after each barrier. Restore costs
// zero map RPCs and is bit-identical by the same determinism argument
// that makes distributed merges bit-identical.

// checkpoint is the durable state of a partially-completed multi-round
// build.
type checkpoint struct {
	// Key is the build-shape key (dataset fingerprint, method, params) —
	// the same identity the partial cache and affinity map use.
	Key    string
	Method string
	Splits int
	// Rounds holds each completed round's partials in split order.
	Rounds [][]core.SplitPartial
}

// checkpointPath maps a build-shape key to its file. Keys contain
// non-filename characters (method names, param separators), so the name
// is a hash of the key.
func checkpointPath(dir, key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(dir, hex.EncodeToString(sum[:12])+".wckpt")
}

// encodeCheckpoint serializes a checkpoint as one WDF1 frame.
func encodeCheckpoint(ck *checkpoint) []byte {
	b := appendStr(nil, ck.Key)
	b = appendStr(b, ck.Method)
	b = appendUvarint(b, uint64(ck.Splits))
	b = appendUvarint(b, uint64(len(ck.Rounds)))
	for _, parts := range ck.Rounds {
		b = appendBlob(b, core.EncodePartials(parts))
	}
	return encodeFrame(msgCheckpoint, b)
}

// decodeCheckpoint is the inverse of encodeCheckpoint.
func decodeCheckpoint(frame []byte) (*checkpoint, error) {
	body, err := decodeFrame(frame, msgCheckpoint)
	if err != nil {
		return nil, err
	}
	r := &breader{b: body}
	ck := &checkpoint{
		Key:    r.str(),
		Method: r.str(),
		Splits: int(r.uvarint()),
	}
	n := int(r.uvarint())
	for i := 0; i < n && r.err == nil; i++ {
		blob := r.blob()
		if r.err != nil {
			break
		}
		parts, derr := core.DecodePartials(blob)
		if derr != nil {
			return nil, fmt.Errorf("dist: checkpoint round %d: %w", i+1, derr)
		}
		ck.Rounds = append(ck.Rounds, parts)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return ck, nil
}

// saveCheckpoint writes ck atomically. Best-effort durability: an error
// means the next restart re-runs rounds, not that this build fails.
func saveCheckpoint(dir string, ck *checkpoint) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := checkpointPath(dir, ck.Key)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, encodeCheckpoint(ck), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// loadCheckpoint returns the stored checkpoint for a build shape, or nil
// when none exists or the stored one does not match (different key after
// a hash collision, wrong method, wrong split count, corrupt file — all
// treated as "no checkpoint", never as a build failure).
func loadCheckpoint(dir, key, method string, splits, maxRounds int) *checkpoint {
	raw, err := os.ReadFile(checkpointPath(dir, key))
	if err != nil {
		return nil
	}
	ck, err := decodeCheckpoint(raw)
	if err != nil || ck.Key != key || ck.Method != method ||
		ck.Splits != splits || len(ck.Rounds) == 0 || len(ck.Rounds) >= maxRounds {
		return nil
	}
	for _, parts := range ck.Rounds {
		if len(parts) != splits {
			return nil
		}
	}
	return ck
}

// removeCheckpoint deletes a build shape's checkpoint (build completed).
func removeCheckpoint(dir, key string) {
	_ = os.Remove(checkpointPath(dir, key))
}
