package dist

import (
	"bytes"
	"testing"
)

// TestReplCodecEpochRoundTrip: both replication frames carry the epoch
// fencing fields through encode/decode unchanged, including the
// response's effective-cursor echo.
func TestReplCodecEpochRoundTrip(t *testing.T) {
	req := &ReplPullRequest{Since: 42, Epoch: 7}
	gotReq, err := DecodeReplPullRequest(EncodeReplPullRequest(req))
	if err != nil {
		t.Fatal(err)
	}
	if *gotReq != *req {
		t.Fatalf("request round trip: %+v, want %+v", gotReq, req)
	}

	resp := &ReplPullResponse{
		Version: 99,
		Epoch:   1 << 40,
		Since:   42,
		Names:   []string{"a", "b"},
		Entries: []ReplEntry{
			{Name: "a", Kind: ReplKind1D, Version: 98, Blob: []byte{1, 2, 3}},
			{Name: "b", Kind: ReplKind2D, Version: 99, Blob: bytes.Repeat([]byte{9}, 2048)},
		},
	}
	gotResp, err := DecodeReplPullResponse(EncodeReplPullResponse(resp))
	if err != nil {
		t.Fatal(err)
	}
	if gotResp.Version != resp.Version || gotResp.Epoch != resp.Epoch || gotResp.Since != resp.Since {
		t.Fatalf("response header round trip: %+v", gotResp)
	}
	if len(gotResp.Names) != 2 || len(gotResp.Entries) != 2 {
		t.Fatalf("response body round trip: %+v", gotResp)
	}
	if !bytes.Equal(gotResp.Entries[1].Blob, resp.Entries[1].Blob) {
		t.Fatal("entry blob corrupted in round trip")
	}

	// A full snapshot answers Since 0 even when the request cursor was
	// non-zero — the decoder must not confuse "absent" with "zero".
	resp.Since = 0
	gotResp, err = DecodeReplPullResponse(EncodeReplPullResponse(resp))
	if err != nil {
		t.Fatal(err)
	}
	if gotResp.Since != 0 {
		t.Fatalf("full-snapshot since = %d, want 0", gotResp.Since)
	}
}

// TestReplCodecLegacyFramesDecode: frames built by a pre-epoch peer end
// exactly where the original body ended. The decoders must accept them
// and report epoch 0 ("unknown") — upgrading one side of a replication
// pair must not break the wire.
func TestReplCodecLegacyFramesDecode(t *testing.T) {
	// Legacy request: just the uvarint cursor.
	legacyReq := encodeFrame(msgReplPullRequest, appendUvarint(nil, 42))
	req, err := DecodeReplPullRequest(legacyReq)
	if err != nil {
		t.Fatalf("legacy request: %v", err)
	}
	if req.Since != 42 || req.Epoch != 0 {
		t.Fatalf("legacy request decoded as %+v, want since=42 epoch=0", req)
	}

	// Legacy response: version, names, entries — no trailing epoch/since.
	b := appendUvarint(nil, 9)          // version
	b = appendUvarint(b, 1)             // 1 name
	b = appendStr(b, "a")               //
	b = appendUvarint(b, 1)             // 1 entry
	b = appendStr(b, "a")               //
	b = append(b, ReplKind1D)           //
	b = appendUvarint(b, 9)             // entry version
	b = appendBlob(b, []byte{4, 5, 6})  //
	resp, err := DecodeReplPullResponse(encodeFrame(msgReplPullResponse, b))
	if err != nil {
		t.Fatalf("legacy response: %v", err)
	}
	if resp.Version != 9 || resp.Epoch != 0 || resp.Since != 0 {
		t.Fatalf("legacy response decoded as %+v, want version=9 epoch=0 since=0", resp)
	}
	if len(resp.Entries) != 1 || resp.Entries[0].Name != "a" {
		t.Fatalf("legacy response entries: %+v", resp.Entries)
	}
}
