package dist

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"sync"

	"wavelethist/internal/core"
)

// Worker-side partial cache. Map-side results are fully deterministic in
// (dataset fingerprint, method, params, round, broadcast, split) — the
// per-split RNG is derived from (seed, split id) and broadcasts carry all
// coordinator feedback — so a repeat build of the same job shape can
// re-ship cached partials instead of recomputing them. The cache is a
// byte-bounded LRU shared across jobs; hit/miss/eviction counters are
// surfaced through GET /dist/v1/state and, per build, via
// MapResponse.Cached → RoundStats.CachedSplits.

// DefaultPartialCacheBytes bounds a worker's partial cache (Worker
// SetPartialCacheBytes overrides; waveworker exposes -cache-bytes).
const DefaultPartialCacheBytes int64 = 128 << 20

// partialCacheKey canonicalizes the build-shape half of a cache key.
// Params are defaulted first so logically equal requests collide, and the
// broadcast blob (coordinator feedback: T1/m, the candidate set R) is
// content-hashed in for multi-round rounds — a different k or epsilon, or
// a different round-2 threshold, keys a different entry, which is exactly
// the invalidation rule.
func partialCacheKey(fingerprint, method string, p core.Params, round int, bcast []byte) string {
	p = p.Defaults()
	key := fingerprint + "|" + method +
		"|u" + strconv.FormatInt(p.U, 10) +
		"k" + strconv.Itoa(p.K) +
		"e" + strconv.FormatFloat(p.Epsilon, 'g', -1, 64) +
		"ss" + strconv.FormatInt(p.SplitSize, 10) +
		"s" + strconv.FormatUint(p.Seed, 10) +
		"c" + strconv.FormatBool(p.CombineEnabled) +
		"sb" + strconv.FormatInt(p.SketchBytes, 10) +
		"sd" + strconv.Itoa(p.SketchDegree) +
		"|r" + strconv.Itoa(round)
	if len(bcast) > 0 {
		sum := sha256.Sum256(bcast)
		key += "|" + hex.EncodeToString(sum[:12])
	}
	return key
}

type cacheEntry struct {
	key   string
	part  core.SplitPartial
	bytes int64
}

// partialCache is a byte-bounded LRU of per-split map results.
type partialCache struct {
	mu        sync.Mutex
	max       int64
	bytes     int64
	entries   map[string]*list.Element
	lru       *list.List // front = most recently used
	hits      int64
	misses    int64
	evictions int64
}

func newPartialCache(maxBytes int64) *partialCache {
	if maxBytes < 0 {
		maxBytes = 0
	}
	return &partialCache{
		max:     maxBytes,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
	}
}

func splitKey(base string, split int) string {
	return base + "#" + strconv.Itoa(split)
}

// get returns the cached partial for (base, split), counting a hit or
// miss.
func (c *partialCache) get(base string, split int) (core.SplitPartial, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[splitKey(base, split)]
	if !ok {
		c.misses++
		return core.SplitPartial{}, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).part, true
}

// partialMemBytes estimates a cached partial's in-memory footprint: the
// KV slice (24 bytes per pair after alignment) plus per-entry overhead
// (cacheEntry, key string, map bucket, list element). Charging wire bytes
// (21/pair) instead would let a configured bound pin ~1.5× its size in
// actual heap.
func partialMemBytes(part *core.SplitPartial) int64 {
	const perEntryOverhead = 256
	return perEntryOverhead + 24*int64(len(part.Pairs))
}

// put stores a computed partial, evicting least-recently-used entries
// until the byte bound holds. Entries larger than the whole bound are not
// stored.
func (c *partialCache) put(base string, split int, part core.SplitPartial) {
	size := partialMemBytes(&part)
	key := splitKey(base, split)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.max == 0 || size > c.max {
		return
	}
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		c.bytes += size - e.bytes
		e.part, e.bytes = part, size
		c.lru.MoveToFront(el)
	} else {
		el := c.lru.PushFront(&cacheEntry{key: key, part: part, bytes: size})
		c.entries[key] = el
		c.bytes += size
	}
	for c.bytes > c.max {
		back := c.lru.Back()
		if back == nil {
			break
		}
		e := back.Value.(*cacheEntry)
		c.lru.Remove(back)
		delete(c.entries, e.key)
		c.bytes -= e.bytes
		c.evictions++
	}
}

// setMax re-bounds the cache, evicting as needed.
func (c *partialCache) setMax(maxBytes int64) {
	if maxBytes < 0 {
		maxBytes = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.max = maxBytes
	for c.bytes > c.max {
		back := c.lru.Back()
		if back == nil {
			break
		}
		e := back.Value.(*cacheEntry)
		c.lru.Remove(back)
		delete(c.entries, e.key)
		c.bytes -= e.bytes
		c.evictions++
	}
	if c.max == 0 && c.lru.Len() > 0 {
		c.entries = make(map[string]*list.Element)
		c.lru.Init()
		c.bytes = 0
	}
}

// CacheStatsView reports partial-cache occupancy and effectiveness
// (GET /dist/v1/state).
type CacheStatsView struct {
	Entries       int   `json:"entries"`
	Bytes         int64 `json:"bytes"`
	CapacityBytes int64 `json:"capacity_bytes"`
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Evictions     int64 `json:"evictions"`
}

func (c *partialCache) stats() CacheStatsView {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStatsView{
		Entries:       c.lru.Len(),
		Bytes:         c.bytes,
		CapacityBytes: c.max,
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
	}
}

// String implements fmt.Stringer for debugging.
func (v CacheStatsView) String() string {
	return fmt.Sprintf("entries=%d bytes=%d/%d hits=%d misses=%d evictions=%d",
		v.Entries, v.Bytes, v.CapacityBytes, v.Hits, v.Misses, v.Evictions)
}
