package dist

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"wavelethist/internal/core"
	"wavelethist/internal/datagen"
	"wavelethist/internal/hdfs"
	"wavelethist/internal/wavelet"
)

// ErrUnsupportedMethod reports a method that cannot run on the
// distributed fleet; the error text lists the supported methods. Match
// with errors.Is.
var ErrUnsupportedMethod = core.ErrUnsupportedMethod

// DatasetSpec is the wire-shippable recipe for a dataset: everything a
// worker needs to materialize an identical copy of the coordinator's
// input in its own (simulated-HDFS) storage. Generation is fully
// deterministic, so shipping the recipe instead of the data keeps map
// RPCs small — the distributed analogue of HDFS data locality, where the
// records are already on the DataNodes and only summaries cross the
// switch.
type DatasetSpec struct {
	// Kind selects the generator: "zipf", "worldcup" or "keys".
	Kind string `json:"kind"`

	Records    int64   `json:"records,omitempty"`
	Domain     int64   `json:"domain,omitempty"`
	Alpha      float64 `json:"alpha,omitempty"`
	RecordSize int     `json:"record_size,omitempty"`
	ChunkSize  int64   `json:"chunk_size,omitempty"`
	Nodes      int     `json:"nodes,omitempty"`
	Seed       uint64  `json:"seed,omitempty"`

	// worldcup
	ClientBits uint `json:"client_bits,omitempty"`
	ObjectBits uint `json:"object_bits,omitempty"`

	// keys ships the caller-provided records verbatim (once, at dataset
	// registration — not per map RPC).
	Keys []int64 `json:"keys,omitempty"`
}

// Normalize fills unset fields with the library defaults, so that equal
// logical datasets have equal fingerprints.
func (s DatasetSpec) Normalize() DatasetSpec {
	if s.ChunkSize == 0 {
		s.ChunkSize = hdfs.DefaultChunkSize
	}
	if s.Nodes == 0 {
		s.Nodes = 15
	}
	switch s.Kind {
	case "zipf":
		if s.Alpha == 0 {
			s.Alpha = 1.1
		}
		if s.RecordSize == 0 {
			s.RecordSize = 4
		}
	case "worldcup":
		if s.ClientBits == 0 {
			s.ClientBits = 10
		}
		if s.ObjectBits == 0 {
			s.ObjectBits = 10
		}
		if s.RecordSize == 0 {
			s.RecordSize = 4
			if s.ClientBits+s.ObjectBits > 32 {
				s.RecordSize = 8
			}
		}
		s.Domain = int64(1) << (s.ClientBits + s.ObjectBits)
	case "keys":
		if s.RecordSize == 0 {
			s.RecordSize = 4
			if s.Domain > 1<<32 {
				s.RecordSize = 8
			}
		}
	}
	return s
}

// Fingerprint is a stable content hash of the normalized spec, used as
// the workers' dataset-cache key.
func (s DatasetSpec) Fingerprint() string {
	b, _ := json.Marshal(s.Normalize())
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:16])
}

// Materialize deterministically generates the dataset, returning the file
// and its key-domain size u.
func (s DatasetSpec) Materialize() (*hdfs.File, int64, error) {
	s = s.Normalize()
	switch s.Kind {
	case "zipf":
		fs := hdfs.NewFileSystem(s.Nodes, s.ChunkSize)
		spec := datagen.NewZipfSpec(s.Records, s.Domain, s.Alpha, s.Seed)
		spec.RecordSize = s.RecordSize
		f, err := datagen.GenerateZipf(fs, "zipf", spec)
		if err != nil {
			return nil, 0, err
		}
		return f, s.Domain, nil
	case "worldcup":
		spec := datagen.NewWorldCupSpec(s.Records, s.Seed)
		spec.ClientBits = s.ClientBits
		spec.ObjectBits = s.ObjectBits
		spec.RecordSize = s.RecordSize
		fs := hdfs.NewFileSystem(s.Nodes, s.ChunkSize)
		f, err := datagen.GenerateWorldCup(fs, "worldcup", spec)
		if err != nil {
			return nil, 0, err
		}
		return f, spec.U(), nil
	case "keys":
		if len(s.Keys) == 0 {
			return nil, 0, fmt.Errorf("dist: empty key set")
		}
		if !wavelet.IsPowerOfTwo(s.Domain) {
			return nil, 0, fmt.Errorf("dist: domain %d is not a power of two", s.Domain)
		}
		fs := hdfs.NewFileSystem(s.Nodes, s.ChunkSize)
		w, err := fs.Create("user", s.RecordSize)
		if err != nil {
			return nil, 0, err
		}
		for _, k := range s.Keys {
			if k < 0 || k >= s.Domain {
				return nil, 0, fmt.Errorf("dist: key %d outside domain [0, %d)", k, s.Domain)
			}
			w.Append(k)
		}
		return w.Close(), s.Domain, nil
	default:
		return nil, 0, fmt.Errorf("dist: unknown dataset kind %q (want zipf, worldcup or keys)", s.Kind)
	}
}
