package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
)

// Transport delivers coordinator→worker RPCs. MapSplits reports the
// measured request and response payload sizes so the coordinator can
// account real communication, not a model. Release frees a worker's
// per-job state lease when a multi-round build ends.
type Transport interface {
	MapSplits(ctx context.Context, addr string, req *MapRequest) (resp *MapResponse, reqBytes, respBytes int64, err error)
	Release(ctx context.Context, addr string, req *ReleaseRequest) error
	Ping(ctx context.Context, addr string) error
}

// HTTPTransport dials workers over real sockets.
type HTTPTransport struct {
	// Client is the HTTP client (nil = http.DefaultClient); per-RPC
	// deadlines come from the caller's context.
	Client *http.Client
}

// NewHTTPTransport returns a Transport over http.DefaultClient.
func NewHTTPTransport() *HTTPTransport { return &HTTPTransport{} }

func (t *HTTPTransport) client() *http.Client {
	if t.Client != nil {
		return t.Client
	}
	return http.DefaultClient
}

// MapSplits implements Transport.
func (t *HTTPTransport) MapSplits(ctx context.Context, addr string, req *MapRequest) (*MapResponse, int64, int64, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, 0, 0, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+PathMap, bytes.NewReader(body))
	if err != nil {
		return nil, 0, 0, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hres, err := t.client().Do(hreq)
	if err != nil {
		return nil, int64(len(body)), 0, err
	}
	defer hres.Body.Close()
	rb, err := io.ReadAll(hres.Body)
	if err != nil {
		return nil, int64(len(body)), int64(len(rb)), err
	}
	if hres.StatusCode != http.StatusOK {
		return nil, int64(len(body)), int64(len(rb)), fmt.Errorf("dist: worker %s: HTTP %d: %s", addr, hres.StatusCode, truncate(rb))
	}
	var resp MapResponse
	if err := json.Unmarshal(rb, &resp); err != nil {
		return nil, int64(len(body)), int64(len(rb)), fmt.Errorf("dist: worker %s: bad response: %w", addr, err)
	}
	return &resp, int64(len(body)), int64(len(rb)), nil
}

// Release implements Transport.
func (t *HTTPTransport) Release(ctx context.Context, addr string, req *ReleaseRequest) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+PathRelease, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hres, err := t.client().Do(hreq)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, hres.Body)
	hres.Body.Close()
	if hres.StatusCode != http.StatusOK {
		return fmt.Errorf("dist: worker %s: HTTP %d", addr, hres.StatusCode)
	}
	return nil
}

// Ping implements Transport.
func (t *HTTPTransport) Ping(ctx context.Context, addr string) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+PathPing, nil)
	if err != nil {
		return err
	}
	hres, err := t.client().Do(hreq)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, hres.Body)
	hres.Body.Close()
	if hres.StatusCode != http.StatusOK {
		return fmt.Errorf("dist: worker %s: HTTP %d", addr, hres.StatusCode)
	}
	return nil
}

func truncate(b []byte) string {
	const max = 200
	if len(b) > max {
		return string(b[:max]) + "..."
	}
	return string(b)
}

// LoopbackScheme prefixes in-process worker addresses.
const LoopbackScheme = "loopback://"

// Loopback is an in-process Transport: worker handlers are invoked
// directly, with request/response sizes measured on the JSON encodings
// that would cross the wire, so loopback builds report the same
// communication a socketed fleet would. Non-loopback addresses are
// delegated to Fallback, letting one coordinator drive a mixed fleet of
// in-process and remote workers.
type Loopback struct {
	// Fallback handles non-loopback:// addresses (nil = reject them).
	Fallback Transport

	mu      sync.Mutex
	workers map[string]*Worker
	calls   map[string]int
	// killAt < 0 means alive; otherwise calls beyond killAt fail — the
	// test harness for worker crashes mid-build.
	killAt map[string]int
	// crashWhen crashes addr permanently on the first map request the
	// predicate matches — a surgical mid-round crash (e.g. "die on the
	// first round-2 assignment").
	crashWhen map[string]func(*MapRequest) bool
}

// NewLoopback returns an empty loopback transport.
func NewLoopback() *Loopback {
	return &Loopback{
		workers:   make(map[string]*Worker),
		calls:     make(map[string]int),
		killAt:    make(map[string]int),
		crashWhen: make(map[string]func(*MapRequest) bool),
	}
}

// Add attaches an in-process worker at LoopbackScheme+name.
func (l *Loopback) Add(w *Worker) (addr string) {
	addr = LoopbackScheme + w.ID()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.workers[addr] = w
	l.killAt[addr] = -1
	return addr
}

// Kill makes every subsequent call to addr fail, like a dead TCP peer.
func (l *Loopback) Kill(addr string) { l.KillAfter(addr, 0) }

// KillAfter lets addr serve n more successful calls, then fail forever —
// a deterministic mid-build crash.
func (l *Loopback) KillAfter(addr string, n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.killAt[addr] = l.calls[addr] + n
}

// CrashWhen crashes addr — permanently, like a killed process — on the
// first map request matching fn. Deterministic harness for mid-round
// failures of multi-round builds.
func (l *Loopback) CrashWhen(addr string, fn func(*MapRequest) bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.crashWhen[addr] = fn
}

// take resolves the worker for one call, applying crash simulation.
// req is nil for non-map calls (ping/release).
func (l *Loopback) take(addr string, req *MapRequest) (*Worker, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	w, ok := l.workers[addr]
	if !ok {
		return nil, fmt.Errorf("dist: no loopback worker at %s", addr)
	}
	if at := l.killAt[addr]; at >= 0 && l.calls[addr] >= at {
		return nil, fmt.Errorf("dist: worker %s: connection refused (killed)", addr)
	}
	if fn := l.crashWhen[addr]; fn != nil && req != nil && fn(req) {
		l.killAt[addr] = 0 // crash now and stay down
		return nil, fmt.Errorf("dist: worker %s: connection reset (crashed)", addr)
	}
	l.calls[addr]++
	return w, nil
}

// MapSplits implements Transport.
func (l *Loopback) MapSplits(ctx context.Context, addr string, req *MapRequest) (*MapResponse, int64, int64, error) {
	if !strings.HasPrefix(addr, LoopbackScheme) {
		if l.Fallback == nil {
			return nil, 0, 0, fmt.Errorf("dist: no transport for %s", addr)
		}
		return l.Fallback.MapSplits(ctx, addr, req)
	}
	reqBody, err := json.Marshal(req)
	if err != nil {
		return nil, 0, 0, err
	}
	w, err := l.take(addr, req)
	if err != nil {
		return nil, int64(len(reqBody)), 0, err
	}
	resp, err := w.HandleMap(ctx, req)
	if err != nil {
		return nil, int64(len(reqBody)), 0, err
	}
	respBody, err := json.Marshal(resp)
	if err != nil {
		return nil, int64(len(reqBody)), 0, err
	}
	return resp, int64(len(reqBody)), int64(len(respBody)), nil
}

// Release implements Transport.
func (l *Loopback) Release(ctx context.Context, addr string, req *ReleaseRequest) error {
	if !strings.HasPrefix(addr, LoopbackScheme) {
		if l.Fallback == nil {
			return fmt.Errorf("dist: no transport for %s", addr)
		}
		return l.Fallback.Release(ctx, addr, req)
	}
	w, err := l.take(addr, nil)
	if err != nil {
		return err
	}
	w.Release(req.JobID)
	return nil
}

// Ping implements Transport.
func (l *Loopback) Ping(ctx context.Context, addr string) error {
	if !strings.HasPrefix(addr, LoopbackScheme) {
		if l.Fallback == nil {
			return fmt.Errorf("dist: no transport for %s", addr)
		}
		return l.Fallback.Ping(ctx, addr)
	}
	_, err := l.take(addr, nil)
	return err
}
