package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
)

// Transport delivers coordinator→worker RPCs. MapSplits reports the
// measured request and response payload sizes so the coordinator can
// account real communication, not a model. Release frees a worker's
// per-job state lease when a multi-round build ends.
type Transport interface {
	MapSplits(ctx context.Context, addr string, req *MapRequest) (resp *MapResponse, reqBytes, respBytes int64, err error)
	Release(ctx context.Context, addr string, req *ReleaseRequest) error
	Ping(ctx context.Context, addr string) error
}

// HTTPTransport dials workers over real sockets. It speaks the binary
// wire format by default and negotiates per worker: an address that
// rejects a binary body (an old JSON-only worker answering 400/415) is
// stickily downgraded to JSON, so mixed fleets keep working. Map requests
// are deterministic and idempotent, which is what makes the one-time
// downgrade retry safe.
type HTTPTransport struct {
	// Client is the HTTP client (nil = http.DefaultClient); per-RPC
	// deadlines come from the caller's context.
	Client *http.Client
	// ForceJSON disables the binary wire format entirely (legacy mode;
	// also the benchmark's JSON-baseline knob).
	ForceJSON bool

	mu       sync.Mutex
	jsonOnly map[string]bool
}

// NewHTTPTransport returns a Transport over http.DefaultClient.
func NewHTTPTransport() *HTTPTransport { return &HTTPTransport{} }

func (t *HTTPTransport) client() *http.Client {
	if t.Client != nil {
		return t.Client
	}
	return http.DefaultClient
}

func (t *HTTPTransport) useJSON(addr string) bool {
	if t.ForceJSON {
		return true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.jsonOnly[addr]
}

func (t *HTTPTransport) markJSONOnly(addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.jsonOnly == nil {
		t.jsonOnly = make(map[string]bool)
	}
	t.jsonOnly[addr] = true
}

// post sends one body and returns the raw response body.
func (t *HTTPTransport) post(ctx context.Context, url, contentType string, body []byte) (status int, respBody []byte, err error) {
	return postBody(ctx, t.client(), url, contentType, body)
}

func postBody(ctx context.Context, client *http.Client, url, contentType string, body []byte) (status int, respBody []byte, err error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	hreq.Header.Set("Content-Type", contentType)
	hres, err := client.Do(hreq)
	if err != nil {
		return 0, nil, err
	}
	defer hres.Body.Close()
	rb, err := io.ReadAll(hres.Body)
	if err != nil {
		return hres.StatusCode, rb, err
	}
	return hres.StatusCode, rb, nil
}

// NegotiatingClient is the client half of the wire-format negotiation
// for peers outside the coordinator's Transport — waveworker's
// registration/heartbeat loop against a possibly-old coordinator. It
// posts binary frames and downgrades, stickily, to a caller-supplied
// JSON body when the peer is JSON-only, applying the same
// DowngradeToJSON rule as HTTPTransport. (HTTPTransport.MapSplits keeps
// its own inline flow only because it must fold probe and retry bytes
// into the build's wire measurements.)
type NegotiatingClient struct {
	// Client is the HTTP client (nil = http.DefaultClient).
	Client *http.Client

	mu       sync.Mutex
	jsonOnly bool
}

func (n *NegotiatingClient) client() *http.Client {
	if n.Client != nil {
		return n.Client
	}
	return http.DefaultClient
}

// Post sends frame (binary) or jsonBody, per the negotiated encoding,
// and returns the final status and body plus which encoding the
// response is in. decodesBinary reports whether a body parses as the
// expected binary response frame — the guard that keeps a
// binary-speaking peer's framed error from triggering a downgrade.
func (n *NegotiatingClient) Post(ctx context.Context, url string, frame, jsonBody []byte, decodesBinary func([]byte) bool) (status int, body []byte, usedJSON bool, err error) {
	n.mu.Lock()
	jsonOnly := n.jsonOnly
	n.mu.Unlock()
	if !jsonOnly {
		status, body, err = postBody(ctx, n.client(), url, ContentTypeBinary, frame)
		if err != nil {
			return status, body, false, err
		}
		if !DowngradeToJSON(status, body, decodesBinary) {
			return status, body, false, nil
		}
		n.mu.Lock()
		n.jsonOnly = true
		n.mu.Unlock()
	}
	status, body, err = postBody(ctx, n.client(), url, ContentTypeJSON, jsonBody)
	return status, body, true, err
}

// MapSplits implements Transport.
func (t *HTTPTransport) MapSplits(ctx context.Context, addr string, req *MapRequest) (*MapResponse, int64, int64, error) {
	if t.useJSON(addr) {
		return t.mapSplitsJSON(ctx, addr, req, 0)
	}
	body := EncodeMapRequest(req)
	status, rb, err := t.post(ctx, addr+PathMap, ContentTypeBinary, body)
	if err != nil {
		return nil, int64(len(body)), int64(len(rb)), err
	}
	if status != http.StatusOK {
		if DowngradeToJSON(status, rb, mapRespDecodes) {
			// A JSON-only worker can't parse binary frames: downgrade
			// this address and re-send as JSON (the probe's bytes still
			// count — they crossed the wire).
			t.markJSONOnly(addr)
			return t.mapSplitsJSON(ctx, addr, req, int64(len(body)+len(rb)))
		}
		if resp, derr := DecodeMapResponse(rb); derr == nil {
			// A binary-framed error: the peer speaks the protocol and
			// rejected this request for real.
			return nil, int64(len(body)), int64(len(rb)), fmt.Errorf("dist: worker %s: HTTP %d: %s", addr, status, resp.Error)
		}
		return nil, int64(len(body)), int64(len(rb)), fmt.Errorf("dist: worker %s: HTTP %d: %s", addr, status, truncate(rb))
	}
	resp, err := DecodeMapResponse(rb)
	if err != nil {
		return nil, int64(len(body)), int64(len(rb)), fmt.Errorf("dist: worker %s: bad response: %w", addr, err)
	}
	return resp, int64(len(body)), int64(len(rb)), nil
}

func mapRespDecodes(b []byte) bool {
	_, err := DecodeMapResponse(b)
	return err == nil
}

func releaseRespDecodes(b []byte) bool {
	_, err := DecodeReleaseResponse(b)
	return err == nil
}

// mapSplitsJSON is the legacy JSON map RPC; probeBytes carries the wire
// cost of a failed binary negotiation probe so accounting stays honest.
func (t *HTTPTransport) mapSplitsJSON(ctx context.Context, addr string, req *MapRequest, probeBytes int64) (*MapResponse, int64, int64, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, probeBytes, 0, err
	}
	reqB := probeBytes + int64(len(body))
	status, rb, err := t.post(ctx, addr+PathMap, ContentTypeJSON, body)
	if err != nil {
		return nil, reqB, int64(len(rb)), err
	}
	if status != http.StatusOK {
		return nil, reqB, int64(len(rb)), fmt.Errorf("dist: worker %s: HTTP %d: %s", addr, status, truncate(rb))
	}
	var resp MapResponse
	if err := json.Unmarshal(rb, &resp); err != nil {
		return nil, reqB, int64(len(rb)), fmt.Errorf("dist: worker %s: bad response: %w", addr, err)
	}
	return &resp, reqB, int64(len(rb)), nil
}

// Release implements Transport.
func (t *HTTPTransport) Release(ctx context.Context, addr string, req *ReleaseRequest) error {
	if !t.useJSON(addr) {
		status, rb, err := t.post(ctx, addr+PathRelease, ContentTypeBinary, EncodeReleaseRequest(req))
		if err != nil {
			return err
		}
		if status == http.StatusOK {
			return nil
		}
		if !DowngradeToJSON(status, rb, releaseRespDecodes) {
			// Binary-framed error or a non-negotiation status: a real
			// failure from a binary-speaking peer.
			return fmt.Errorf("dist: worker %s: HTTP %d", addr, status)
		}
		t.markJSONOnly(addr)
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	status, _, err := t.post(ctx, addr+PathRelease, ContentTypeJSON, body)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("dist: worker %s: HTTP %d", addr, status)
	}
	return nil
}

// Ping implements Transport.
func (t *HTTPTransport) Ping(ctx context.Context, addr string) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+PathPing, nil)
	if err != nil {
		return err
	}
	hres, err := t.client().Do(hreq)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, hres.Body)
	hres.Body.Close()
	if hres.StatusCode != http.StatusOK {
		return fmt.Errorf("dist: worker %s: HTTP %d", addr, hres.StatusCode)
	}
	return nil
}

func truncate(b []byte) string {
	const max = 200
	if len(b) > max {
		return string(b[:max]) + "..."
	}
	return string(b)
}

// LoopbackScheme prefixes in-process worker addresses.
const LoopbackScheme = "loopback://"

// Loopback is an in-process Transport: worker handlers are invoked
// directly, with request/response sizes measured on the encodings that
// would cross the wire — the binary frames by default, or JSON when
// JSONWire is set — so loopback builds report the same communication a
// socketed fleet would. Non-loopback addresses are delegated to Fallback,
// letting one coordinator drive a mixed fleet of in-process and remote
// workers.
type Loopback struct {
	// Fallback handles non-loopback:// addresses (nil = reject them).
	Fallback Transport
	// JSONWire accounts request/response sizes on the legacy JSON
	// encoding instead of the binary frames (the benchmark's baseline
	// knob; it does not change results, only measured bytes).
	JSONWire bool

	mu      sync.Mutex
	workers map[string]*Worker
	calls   map[string]int
	// killAt < 0 means alive; otherwise calls beyond killAt fail — the
	// test harness for worker crashes mid-build.
	killAt map[string]int
	// crashWhen crashes addr permanently on the first map request the
	// predicate matches — a surgical mid-round crash (e.g. "die on the
	// first round-2 assignment").
	crashWhen map[string]func(*MapRequest) bool
}

// NewLoopback returns an empty loopback transport.
func NewLoopback() *Loopback {
	return &Loopback{
		workers:   make(map[string]*Worker),
		calls:     make(map[string]int),
		killAt:    make(map[string]int),
		crashWhen: make(map[string]func(*MapRequest) bool),
	}
}

// Add attaches an in-process worker at LoopbackScheme+name.
func (l *Loopback) Add(w *Worker) (addr string) {
	addr = LoopbackScheme + w.ID()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.workers[addr] = w
	l.killAt[addr] = -1
	return addr
}

// Kill makes every subsequent call to addr fail, like a dead TCP peer.
func (l *Loopback) Kill(addr string) { l.KillAfter(addr, 0) }

// KillAfter lets addr serve n more successful calls, then fail forever —
// a deterministic mid-build crash.
func (l *Loopback) KillAfter(addr string, n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.killAt[addr] = l.calls[addr] + n
}

// CrashWhen crashes addr — permanently, like a killed process — on the
// first map request matching fn. Deterministic harness for mid-round
// failures of multi-round builds.
func (l *Loopback) CrashWhen(addr string, fn func(*MapRequest) bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.crashWhen[addr] = fn
}

// take resolves the worker for one call, applying crash simulation.
// req is nil for non-map calls (ping/release).
func (l *Loopback) take(addr string, req *MapRequest) (*Worker, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	w, ok := l.workers[addr]
	if !ok {
		return nil, fmt.Errorf("dist: no loopback worker at %s", addr)
	}
	if at := l.killAt[addr]; at >= 0 && l.calls[addr] >= at {
		return nil, fmt.Errorf("dist: worker %s: connection refused (killed)", addr)
	}
	if fn := l.crashWhen[addr]; fn != nil && req != nil && fn(req) {
		l.killAt[addr] = 0 // crash now and stay down
		return nil, fmt.Errorf("dist: worker %s: connection reset (crashed)", addr)
	}
	l.calls[addr]++
	return w, nil
}

// wireSize measures what a value would cost on the wire under the
// configured encoding.
func (l *Loopback) wireSize(binFrame func() []byte, jsonVal any) (int64, error) {
	if l.JSONWire {
		b, err := json.Marshal(jsonVal)
		return int64(len(b)), err
	}
	return int64(len(binFrame())), nil
}

// MapSplits implements Transport.
func (l *Loopback) MapSplits(ctx context.Context, addr string, req *MapRequest) (*MapResponse, int64, int64, error) {
	if !strings.HasPrefix(addr, LoopbackScheme) {
		if l.Fallback == nil {
			return nil, 0, 0, fmt.Errorf("dist: no transport for %s", addr)
		}
		return l.Fallback.MapSplits(ctx, addr, req)
	}
	reqBytes, err := l.wireSize(func() []byte { return EncodeMapRequest(req) }, req)
	if err != nil {
		return nil, 0, 0, err
	}
	w, err := l.take(addr, req)
	if err != nil {
		return nil, reqBytes, 0, err
	}
	resp, err := w.HandleMap(ctx, req)
	if err != nil {
		return nil, reqBytes, 0, err
	}
	respBytes, err := l.wireSize(func() []byte { return EncodeMapResponse(resp) }, resp)
	if err != nil {
		return nil, reqBytes, 0, err
	}
	return resp, reqBytes, respBytes, nil
}

// Release implements Transport.
func (l *Loopback) Release(ctx context.Context, addr string, req *ReleaseRequest) error {
	if !strings.HasPrefix(addr, LoopbackScheme) {
		if l.Fallback == nil {
			return fmt.Errorf("dist: no transport for %s", addr)
		}
		return l.Fallback.Release(ctx, addr, req)
	}
	w, err := l.take(addr, nil)
	if err != nil {
		return err
	}
	w.Release(req.JobID)
	return nil
}

// Ping implements Transport.
func (l *Loopback) Ping(ctx context.Context, addr string) error {
	if !strings.HasPrefix(addr, LoopbackScheme) {
		if l.Fallback == nil {
			return fmt.Errorf("dist: no transport for %s", addr)
		}
		return l.Fallback.Ping(ctx, addr)
	}
	_, err := l.take(addr, nil)
	return err
}
