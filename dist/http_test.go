package dist_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"wavelethist"
	"wavelethist/dist"
)

// postJSON is a minimal client for the coordinator endpoints.
func postJSON(t *testing.T, url string, req, resp any) int {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hres, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer hres.Body.Close()
	if resp != nil {
		if err := json.NewDecoder(hres.Body).Decode(resp); err != nil {
			t.Fatal(err)
		}
	}
	return hres.StatusCode
}

// TestHTTPFleet runs a distributed build over real sockets: two worker
// HTTP servers register with a coordinator HTTP endpoint, heartbeat, and
// serve map RPCs via the HTTP transport.
func TestHTTPFleet(t *testing.T) {
	coord := dist.NewCoordinator(dist.NewHTTPTransport(), dist.Config{SplitsPerCall: 4})
	coordSrv := httptest.NewServer(coord.Handler())
	defer coordSrv.Close()

	for _, id := range []string{"w0", "w1"} {
		w := dist.NewWorker(id, 2)
		wsrv := httptest.NewServer(w.Handler())
		defer wsrv.Close()
		var reg dist.RegisterResponse
		code := postJSON(t, coordSrv.URL+dist.PathRegister,
			dist.RegisterRequest{ID: id, Addr: wsrv.URL, Capacity: 2}, &reg)
		if code != http.StatusOK || !reg.OK || reg.HeartbeatMillis <= 0 {
			t.Fatalf("register %s: code=%d resp=%+v", id, code, reg)
		}
		var hb dist.HeartbeatResponse
		if code := postJSON(t, coordSrv.URL+dist.PathHeartbeat, dist.HeartbeatRequest{ID: id}, &hb); code != http.StatusOK || !hb.OK {
			t.Fatalf("heartbeat %s: code=%d resp=%+v", id, code, hb)
		}
	}
	// Unknown workers are told to re-register.
	var hb dist.HeartbeatResponse
	if code := postJSON(t, coordSrv.URL+dist.PathHeartbeat, dist.HeartbeatRequest{ID: "ghost"}, &hb); code != http.StatusNotFound || hb.OK {
		t.Fatalf("ghost heartbeat: code=%d resp=%+v", code, hb)
	}
	if got := coord.AliveWorkers(); got != 2 {
		t.Fatalf("alive: got %d, want 2", got)
	}

	ds, err := wavelethist.NewZipfDataset(wavelethist.ZipfOptions{
		Records: 1 << 14, Domain: 1 << 10, Alpha: 1.1, Seed: 3, ChunkSize: 8 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := wavelethist.Options{K: 20, Seed: 3}
	want, err := wavelethist.Build(ds, wavelethist.TwoLevelS, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := wavelethist.BuildDistributed(context.Background(), ds, wavelethist.TwoLevelS, opts, coord)
	if err != nil {
		t.Fatal(err)
	}
	sameHistogram(t, want, got)
	if got.WireBytes <= 0 {
		t.Errorf("wire bytes not measured: %d", got.WireBytes)
	}

	// Fleet listing over HTTP.
	hres, err := http.Get(coordSrv.URL + dist.PathWorkers)
	if err != nil {
		t.Fatal(err)
	}
	defer hres.Body.Close()
	var list dist.WorkersResponse
	if err := json.NewDecoder(hres.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Workers) != 2 {
		t.Fatalf("workers listing: got %d, want 2", len(list.Workers))
	}
}

// legacyJSONHandler replicates the PR-3 worker HTTP surface: JSON only,
// with a 400 for anything its JSON decoder cannot parse — which is what a
// binary frame looks like to an old worker. The mixed-fleet test drives
// it next to a current binary worker.
func legacyJSONHandler(w *dist.Worker) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+dist.PathMap, func(rw http.ResponseWriter, r *http.Request) {
		var req dist.MapRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			rw.Header().Set("Content-Type", "application/json")
			rw.WriteHeader(http.StatusBadRequest)
			json.NewEncoder(rw).Encode(&dist.MapResponse{Error: "bad map request"})
			return
		}
		resp, err := w.HandleMap(r.Context(), &req)
		if err != nil {
			resp = &dist.MapResponse{JobID: req.JobID, Error: err.Error()}
		}
		rw.Header().Set("Content-Type", "application/json")
		json.NewEncoder(rw).Encode(resp)
	})
	mux.HandleFunc("POST "+dist.PathRelease, func(rw http.ResponseWriter, r *http.Request) {
		var req dist.ReleaseRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.JobID == "" {
			rw.WriteHeader(http.StatusBadRequest)
			return
		}
		json.NewEncoder(rw).Encode(&dist.ReleaseResponse{OK: true, Released: w.Release(req.JobID)})
	})
	mux.HandleFunc("GET "+dist.PathPing, func(rw http.ResponseWriter, r *http.Request) {
		rw.Write([]byte(`{"ok":true}`))
	})
	return mux
}

// TestHTTPMixedFleet: one JSON-only legacy worker and one binary worker
// serve the same build. The transport probes binary, downgrades the
// legacy address stickily, and the merged result still matches the
// simulated build bit-for-bit.
func TestHTTPMixedFleet(t *testing.T) {
	coord := dist.NewCoordinator(dist.NewHTTPTransport(), dist.Config{SplitsPerCall: 2})
	coordSrv := httptest.NewServer(coord.Handler())
	defer coordSrv.Close()

	modern := dist.NewWorker("modern", 2)
	modernSrv := httptest.NewServer(modern.Handler())
	defer modernSrv.Close()
	legacy := dist.NewWorker("legacy", 2)
	legacySrv := httptest.NewServer(legacyJSONHandler(legacy))
	defer legacySrv.Close()

	coord.Register("modern", modernSrv.URL, 2)
	coord.Register("legacy", legacySrv.URL, 2)

	ds, err := wavelethist.NewZipfDataset(wavelethist.ZipfOptions{
		Records: 1 << 14, Domain: 1 << 10, Alpha: 1.1, Seed: 3, ChunkSize: 4 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := wavelethist.Options{K: 20, Seed: 3}
	want, err := wavelethist.Build(ds, wavelethist.SendV, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := wavelethist.BuildDistributed(context.Background(), ds, wavelethist.SendV, opts, coord)
	if err != nil {
		t.Fatal(err)
	}
	sameHistogram(t, want, got)
	// Multi-round across the mixed fleet too: broadcasts and releases
	// take both encodings.
	wantHW, err := wavelethist.Build(ds, wavelethist.HWTopk, opts)
	if err != nil {
		t.Fatal(err)
	}
	gotHW, err := wavelethist.BuildDistributed(context.Background(), ds, wavelethist.HWTopk, opts, coord)
	if err != nil {
		t.Fatal(err)
	}
	sameHistogram(t, wantHW, gotHW)
	// Both workers must actually have served splits for the downgrade
	// path to have been exercised.
	if modern.CacheStats().Misses == 0 || legacy.CacheStats().Misses == 0 {
		t.Errorf("fleet imbalance: modern=%v legacy=%v", modern.CacheStats(), legacy.CacheStats())
	}
}

// TestHTTPWarmBuild: a repeat build over real sockets is served from the
// workers' partial caches — zero splits recomputed — and the binary wire
// bytes stay within 1.2× of the modeled communication.
func TestHTTPWarmBuild(t *testing.T) {
	coord := dist.NewCoordinator(dist.NewHTTPTransport(), dist.Config{SplitsPerCall: 2})
	coordSrv := httptest.NewServer(coord.Handler())
	defer coordSrv.Close()
	for _, id := range []string{"w0", "w1"} {
		w := dist.NewWorker(id, 2)
		wsrv := httptest.NewServer(w.Handler())
		defer wsrv.Close()
		coord.Register(id, wsrv.URL, 2)
	}
	ds, err := wavelethist.NewZipfDataset(wavelethist.ZipfOptions{
		Records: 1 << 15, Domain: 1 << 10, Alpha: 1.1, Seed: 3, ChunkSize: 8 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := wavelethist.Options{K: 20, Seed: 3}
	cold, err := wavelethist.BuildDistributed(context.Background(), ds, wavelethist.SendV, opts, coord)
	if err != nil {
		t.Fatal(err)
	}
	if cold.CachedSplits != 0 {
		t.Fatalf("cold build cached %d splits", cold.CachedSplits)
	}
	if float64(cold.WireBytes) > 1.2*float64(cold.ModelCommBytes) {
		t.Errorf("binary wire bytes %d exceed 1.2x model %d", cold.WireBytes, cold.ModelCommBytes)
	}
	warm, err := wavelethist.BuildDistributed(context.Background(), ds, wavelethist.SendV, opts, coord)
	if err != nil {
		t.Fatal(err)
	}
	splits := ds.NumSplits(0)
	if warm.CachedSplits != splits {
		t.Errorf("warm build cached %d of %d splits", warm.CachedSplits, splits)
	}
	sameHistogram(t, cold, warm)
}

// TestHTTPFleetMultiRound runs the three-round H-WTopk over real sockets:
// round broadcasts, state leases and the release RPC all cross HTTP, and
// the result matches the simulated build bit-for-bit.
func TestHTTPFleetMultiRound(t *testing.T) {
	coord := dist.NewCoordinator(dist.NewHTTPTransport(), dist.Config{SplitsPerCall: 4})
	coordSrv := httptest.NewServer(coord.Handler())
	defer coordSrv.Close()

	var workerSrvs []*httptest.Server
	for _, id := range []string{"w0", "w1"} {
		w := dist.NewWorker(id, 2)
		wsrv := httptest.NewServer(w.Handler())
		defer wsrv.Close()
		workerSrvs = append(workerSrvs, wsrv)
		var reg dist.RegisterResponse
		if code := postJSON(t, coordSrv.URL+dist.PathRegister,
			dist.RegisterRequest{ID: id, Addr: wsrv.URL, Capacity: 2}, &reg); code != http.StatusOK {
			t.Fatalf("register %s: %d", id, code)
		}
	}

	ds, err := wavelethist.NewZipfDataset(wavelethist.ZipfOptions{
		Records: 1 << 14, Domain: 1 << 10, Alpha: 1.1, Seed: 3, ChunkSize: 8 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := wavelethist.Options{K: 20, Seed: 3}
	want, err := wavelethist.Build(ds, wavelethist.HWTopk, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := wavelethist.BuildDistributed(context.Background(), ds, wavelethist.HWTopk, opts, coord)
	if err != nil {
		t.Fatal(err)
	}
	sameHistogram(t, want, got)
	if got.Rounds != 3 || got.WireBytes <= 0 {
		t.Errorf("rounds=%d wire=%d", got.Rounds, got.WireBytes)
	}

	// The release RPC crossed the wire too: no worker holds a lease.
	for _, wsrv := range workerSrvs {
		hres, err := http.Get(wsrv.URL + dist.PathState)
		if err != nil {
			t.Fatal(err)
		}
		var ws dist.WorkerStateResponse
		if err := json.NewDecoder(hres.Body).Decode(&ws); err != nil {
			t.Fatal(err)
		}
		hres.Body.Close()
		if len(ws.Leases) != 0 {
			t.Errorf("worker %s still holds %d leases", ws.ID, len(ws.Leases))
		}
	}
}
