package dist_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"wavelethist"
	"wavelethist/dist"
)

// zipfDS builds the shared test dataset: 64Ki records over u = 4096 with
// 8 KiB chunks, i.e. 32 splits — enough assignment batches that every
// worker in a 3-worker fleet sees several RPCs.
func zipfDS(t testing.TB) *wavelethist.Dataset {
	t.Helper()
	ds, err := wavelethist.NewZipfDataset(wavelethist.ZipfOptions{
		Records: 1 << 16, Domain: 1 << 12, Alpha: 1.1, Seed: 7, ChunkSize: 8 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// sameHistogram asserts two results carry bit-identical coefficients.
func sameHistogram(t *testing.T, want, got *wavelethist.Result) {
	t.Helper()
	wc, gc := want.Histogram.Coefficients(), got.Histogram.Coefficients()
	if len(wc) != len(gc) {
		t.Fatalf("coefficient count: got %d, want %d", len(gc), len(wc))
	}
	for i := range wc {
		if wc[i] != gc[i] {
			t.Fatalf("coefficient %d: got %+v, want %+v", i, gc[i], wc[i])
		}
	}
}

// TestLoopbackParityAllMethods runs every distributable method on a
// 3-worker loopback fleet and checks the merged histogram is identical
// to the single-process simulated build with the same seed.
func TestLoopbackParityAllMethods(t *testing.T) {
	ds := zipfDS(t)
	methods := []wavelethist.Method{
		wavelethist.SendV, wavelethist.SendCoef, wavelethist.BasicS,
		wavelethist.ImprovedS, wavelethist.TwoLevelS, wavelethist.SendSketch,
	}
	for _, m := range methods {
		t.Run(string(m), func(t *testing.T) {
			opts := wavelethist.Options{K: 25, Seed: 7}
			want, err := wavelethist.Build(ds, m, opts)
			if err != nil {
				t.Fatal(err)
			}
			coord, _ := dist.NewLoopbackCluster(3, 2, dist.Config{})
			got, err := wavelethist.BuildDistributed(context.Background(), ds, m, opts, coord)
			if err != nil {
				t.Fatal(err)
			}
			sameHistogram(t, want, got)
			if !got.Distributed {
				t.Error("result not marked distributed")
			}
			if got.WireBytes <= 0 || got.CommBytes != got.WireBytes {
				t.Errorf("wire bytes not measured: wire=%d comm=%d", got.WireBytes, got.CommBytes)
			}
			// The modeled metric must match the simulated build exactly —
			// that's what makes the two modes comparable.
			if got.ModelCommBytes != want.ModelCommBytes {
				t.Errorf("modeled comm: got %d, want %d", got.ModelCommBytes, want.ModelCommBytes)
			}
			if got.RecordsRead != want.RecordsRead {
				t.Errorf("records read: got %d, want %d", got.RecordsRead, want.RecordsRead)
			}
		})
	}
}

// TestWorkerCrashMidBuild kills one of three workers partway through a
// build; the build must re-assign that worker's splits and still produce
// the single-process result.
func TestWorkerCrashMidBuild(t *testing.T) {
	ds := zipfDS(t)
	for _, m := range []wavelethist.Method{wavelethist.SendV, wavelethist.TwoLevelS} {
		t.Run(string(m), func(t *testing.T) {
			opts := wavelethist.Options{K: 25, Seed: 7}
			want, err := wavelethist.Build(ds, m, opts)
			if err != nil {
				t.Fatal(err)
			}
			coord, lb := dist.NewLoopbackCluster(3, 1, dist.Config{SplitsPerCall: 2, MaxWorkerFailures: 1})
			// First build: every worker serves at least one batch (the
			// initial dispatch hands each idle worker a batch).
			if _, err := wavelethist.BuildDistributed(context.Background(), ds, m, opts, coord); err != nil {
				t.Fatal(err)
			}
			// Kill local-0. The next build still assigns it work first
			// (all workers idle, smallest id wins ties), so its batch
			// fails mid-build, must be re-assigned to the survivors, and
			// the coordinator must mark it dead.
			lb.Kill(dist.LoopbackScheme + "local-0")
			got, err := wavelethist.BuildDistributed(context.Background(), ds, m, opts, coord)
			if err != nil {
				t.Fatal(err)
			}
			sameHistogram(t, want, got)
			if coord.AliveWorkers() != 2 {
				t.Errorf("alive workers after crash: got %d, want 2", coord.AliveWorkers())
			}
		})
	}
}

// TestAllWorkersDead: a fleet whose every worker is dead fails the build
// with a clear error instead of hanging.
func TestAllWorkersDead(t *testing.T) {
	ds := zipfDS(t)
	coord, lb := dist.NewLoopbackCluster(2, 1, dist.Config{})
	lb.Kill(dist.LoopbackScheme + "local-0")
	lb.Kill(dist.LoopbackScheme + "local-1")
	_, err := wavelethist.BuildDistributed(context.Background(), ds, wavelethist.SendV, wavelethist.Options{K: 10, Seed: 1}, coord)
	if err == nil {
		t.Fatal("expected error with all workers dead")
	}
}

// TestNoWorkers: building against an empty fleet fails immediately.
func TestNoWorkers(t *testing.T) {
	ds := zipfDS(t)
	coord := dist.NewCoordinator(dist.NewLoopback(), dist.Config{})
	_, err := wavelethist.BuildDistributed(context.Background(), ds, wavelethist.SendV, wavelethist.Options{K: 10}, coord)
	if err == nil {
		t.Fatal("expected error with no workers")
	}
}

// TestHWTopkRejected: the three-round method cannot run distributed and
// says so.
func TestHWTopkRejected(t *testing.T) {
	ds := zipfDS(t)
	coord, _ := dist.NewLoopbackCluster(2, 1, dist.Config{})
	_, err := wavelethist.BuildDistributed(context.Background(), ds, wavelethist.HWTopk, wavelethist.Options{K: 10}, coord)
	if err == nil {
		t.Fatal("expected H-WTopk rejection")
	}
}

// TestBuildCancel: canceling the context aborts a distributed build with
// ctx.Err(), and the long-lived coordinator comes out unharmed — no
// leaked in-flight slots, no workers blamed for the cancellation.
func TestBuildCancel(t *testing.T) {
	ds := zipfDS(t)
	coord, _ := dist.NewLoopbackCluster(2, 1, dist.Config{MaxWorkerFailures: 1})
	opts := wavelethist.Options{K: 10, Seed: 1}

	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		if i == 0 {
			cancel() // before any dispatch
		} else {
			go func() {
				time.Sleep(time.Duration(i) * 3 * time.Millisecond)
				cancel() // mid-build, with RPCs in flight
			}()
		}
		_, err := wavelethist.BuildDistributed(ctx, ds, wavelethist.SendV, opts, coord)
		cancel()
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("cancel %d: got %v, want context.Canceled (or completion)", i, err)
		}
	}
	if got := coord.AliveWorkers(); got != 2 {
		t.Fatalf("alive after cancellations: got %d, want 2 (cancel must not count as worker failure)", got)
	}
	// The same coordinator must still have its full capacity: a fresh
	// build succeeds and matches the single-process result.
	want, err := wavelethist.Build(ds, wavelethist.SendV, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := wavelethist.BuildDistributed(context.Background(), ds, wavelethist.SendV, opts, coord)
	if err != nil {
		t.Fatalf("build after cancellations: %v (leaked in-flight slots?)", err)
	}
	sameHistogram(t, want, got)
	// Canceled RPCs are drained asynchronously; their slots must come
	// back promptly.
	deadline := time.Now().Add(10 * time.Second)
	for {
		stuck := 0
		for _, w := range coord.Workers() {
			stuck += w.InFlight
		}
		if stuck == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d in-flight slots never released after builds", stuck)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestHeartbeatRevivesDeadWorker: a worker marked dead after failures
// comes back via heartbeat and serves builds again.
func TestHeartbeatRevivesDeadWorker(t *testing.T) {
	lb := dist.NewLoopback()
	w := dist.NewWorker("w0", 1)
	addr := lb.Add(w)
	coord := dist.NewCoordinator(lb, dist.Config{})
	coord.Register(w.ID(), addr, 1)
	lb.Kill(addr)

	ds := zipfDS(t)
	if _, err := wavelethist.BuildDistributed(context.Background(), ds, wavelethist.SendV, wavelethist.Options{K: 10, Seed: 1}, coord); err == nil {
		t.Fatal("expected failure with the only worker dead")
	}
	if coord.AliveWorkers() != 0 {
		t.Fatalf("alive: got %d, want 0", coord.AliveWorkers())
	}
	lb.KillAfter(addr, 1<<30) // worker process restarted
	if !coord.Heartbeat("w0") {
		t.Fatal("heartbeat rejected for known worker")
	}
	if coord.AliveWorkers() != 1 {
		t.Fatalf("alive after heartbeat: got %d, want 1", coord.AliveWorkers())
	}
	if _, err := wavelethist.BuildDistributed(context.Background(), ds, wavelethist.SendV, wavelethist.Options{K: 10, Seed: 1}, coord); err != nil {
		t.Fatalf("build after revival: %v", err)
	}
}

// TestWaitForWorkers observes late registrations.
func TestWaitForWorkers(t *testing.T) {
	lb := dist.NewLoopback()
	coord := dist.NewCoordinator(lb, dist.Config{})
	go func() {
		time.Sleep(30 * time.Millisecond)
		w := dist.NewWorker("late", 1)
		coord.Register(w.ID(), lb.Add(w), 1)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := coord.WaitForWorkers(ctx, 1); err != nil {
		t.Fatal(err)
	}
}
