package dist_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"wavelethist"
	"wavelethist/dist"
	"wavelethist/internal/core"
)

// zipfDS builds the shared test dataset: 64Ki records over u = 4096 with
// 8 KiB chunks, i.e. 32 splits — enough assignment batches that every
// worker in a 3-worker fleet sees several RPCs.
func zipfDS(t testing.TB) *wavelethist.Dataset {
	t.Helper()
	ds, err := wavelethist.NewZipfDataset(wavelethist.ZipfOptions{
		Records: 1 << 16, Domain: 1 << 12, Alpha: 1.1, Seed: 7, ChunkSize: 8 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// sameHistogram asserts two results carry bit-identical coefficients.
func sameHistogram(t *testing.T, want, got *wavelethist.Result) {
	t.Helper()
	wc, gc := want.Histogram.Coefficients(), got.Histogram.Coefficients()
	if len(wc) != len(gc) {
		t.Fatalf("coefficient count: got %d, want %d", len(gc), len(wc))
	}
	for i := range wc {
		if wc[i] != gc[i] {
			t.Fatalf("coefficient %d: got %+v, want %+v", i, gc[i], wc[i])
		}
	}
}

// TestLoopbackParityAllMethods runs every distributable method on a
// 3-worker loopback fleet and checks the merged histogram is identical
// to the single-process simulated build with the same seed.
func TestLoopbackParityAllMethods(t *testing.T) {
	ds := zipfDS(t)
	methods := []wavelethist.Method{
		wavelethist.SendV, wavelethist.SendCoef, wavelethist.BasicS,
		wavelethist.ImprovedS, wavelethist.TwoLevelS, wavelethist.SendSketch,
	}
	for _, m := range methods {
		t.Run(string(m), func(t *testing.T) {
			opts := wavelethist.Options{K: 25, Seed: 7}
			want, err := wavelethist.Build(ds, m, opts)
			if err != nil {
				t.Fatal(err)
			}
			coord, _ := dist.NewLoopbackCluster(3, 2, dist.Config{})
			got, err := wavelethist.BuildDistributed(context.Background(), ds, m, opts, coord)
			if err != nil {
				t.Fatal(err)
			}
			sameHistogram(t, want, got)
			if !got.Distributed {
				t.Error("result not marked distributed")
			}
			if got.WireBytes <= 0 || got.CommBytes != got.WireBytes {
				t.Errorf("wire bytes not measured: wire=%d comm=%d", got.WireBytes, got.CommBytes)
			}
			// The modeled metric must match the simulated build exactly —
			// that's what makes the two modes comparable.
			if got.ModelCommBytes != want.ModelCommBytes {
				t.Errorf("modeled comm: got %d, want %d", got.ModelCommBytes, want.ModelCommBytes)
			}
			if got.RecordsRead != want.RecordsRead {
				t.Errorf("records read: got %d, want %d", got.RecordsRead, want.RecordsRead)
			}
		})
	}
}

// TestWorkerCrashMidBuild kills one of three workers partway through a
// build; the build must re-assign that worker's splits and still produce
// the single-process result.
func TestWorkerCrashMidBuild(t *testing.T) {
	ds := zipfDS(t)
	for _, m := range []wavelethist.Method{wavelethist.SendV, wavelethist.TwoLevelS} {
		t.Run(string(m), func(t *testing.T) {
			opts := wavelethist.Options{K: 25, Seed: 7}
			want, err := wavelethist.Build(ds, m, opts)
			if err != nil {
				t.Fatal(err)
			}
			coord, lb := dist.NewLoopbackCluster(3, 1, dist.Config{SplitsPerCall: 2, MaxWorkerFailures: 1})
			// First build: every worker serves at least one batch (the
			// initial dispatch hands each idle worker a batch).
			if _, err := wavelethist.BuildDistributed(context.Background(), ds, m, opts, coord); err != nil {
				t.Fatal(err)
			}
			// Kill local-0. The next build still assigns it work first
			// (all workers idle, smallest id wins ties), so its batch
			// fails mid-build, must be re-assigned to the survivors, and
			// the coordinator must mark it dead.
			lb.Kill(dist.LoopbackScheme + "local-0")
			got, err := wavelethist.BuildDistributed(context.Background(), ds, m, opts, coord)
			if err != nil {
				t.Fatal(err)
			}
			sameHistogram(t, want, got)
			if coord.AliveWorkers() != 2 {
				t.Errorf("alive workers after crash: got %d, want 2", coord.AliveWorkers())
			}
		})
	}
}

// TestAllWorkersDead: a fleet whose every worker is dead fails the build
// with a clear error instead of hanging.
func TestAllWorkersDead(t *testing.T) {
	ds := zipfDS(t)
	coord, lb := dist.NewLoopbackCluster(2, 1, dist.Config{})
	lb.Kill(dist.LoopbackScheme + "local-0")
	lb.Kill(dist.LoopbackScheme + "local-1")
	_, err := wavelethist.BuildDistributed(context.Background(), ds, wavelethist.SendV, wavelethist.Options{K: 10, Seed: 1}, coord)
	if err == nil {
		t.Fatal("expected error with all workers dead")
	}
}

// TestNoWorkers: building against an empty fleet fails immediately.
func TestNoWorkers(t *testing.T) {
	ds := zipfDS(t)
	coord := dist.NewCoordinator(dist.NewLoopback(), dist.Config{})
	_, err := wavelethist.BuildDistributed(context.Background(), ds, wavelethist.SendV, wavelethist.Options{K: 10}, coord)
	if err == nil {
		t.Fatal("expected error with no workers")
	}
}

// TestHWTopkParity: the three-round H-WTopk on a loopback fleet (the
// multi-round engine: per-job state leases, T1/m and R broadcasts,
// coordinator round barrier) is bit-identical to the single-process
// three-round run, and reports per-round wire metrics.
func TestHWTopkParity(t *testing.T) {
	ds := zipfDS(t)
	opts := wavelethist.Options{K: 25, Seed: 7}
	want, err := wavelethist.Build(ds, wavelethist.HWTopk, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Manual fleet so worker internals (leases) are observable.
	lb := dist.NewLoopback()
	coord := dist.NewCoordinator(lb, dist.Config{})
	workers := make([]*dist.Worker, 3)
	for i := range workers {
		workers[i] = dist.NewWorker(fmt.Sprintf("local-%d", i), 2)
		coord.Register(workers[i].ID(), lb.Add(workers[i]), 2)
	}

	got, err := wavelethist.BuildDistributed(context.Background(), ds, wavelethist.HWTopk, opts, coord)
	if err != nil {
		t.Fatal(err)
	}
	sameHistogram(t, want, got)
	if !got.Distributed || got.Rounds != 3 {
		t.Errorf("distributed=%v rounds=%d, want true/3", got.Distributed, got.Rounds)
	}
	if got.WireBytes <= 0 || got.CommBytes != got.WireBytes {
		t.Errorf("wire bytes not measured: wire=%d comm=%d", got.WireBytes, got.CommBytes)
	}
	// Modeled metrics must match the simulated build exactly.
	if got.ModelCommBytes != want.ModelCommBytes {
		t.Errorf("modeled comm: got %d, want %d", got.ModelCommBytes, want.ModelCommBytes)
	}
	if got.RecordsRead != want.RecordsRead {
		t.Errorf("records read: got %d, want %d", got.RecordsRead, want.RecordsRead)
	}
	if got.CandidateSetSize <= 0 || got.CandidateSetSize != want.CandidateSetSize {
		t.Errorf("candidate set: got %d, want %d (>0)", got.CandidateSetSize, want.CandidateSetSize)
	}
	// Per-round profile: three rounds, each with measured traffic, model
	// bytes summing to the total, and a broadcast-carrying round 2/3.
	if len(got.PerRound) != 3 || len(want.PerRound) != 3 {
		t.Fatalf("per-round stats: got %d, want %d, expected 3", len(got.PerRound), len(want.PerRound))
	}
	var modelSum int64
	for i, r := range got.PerRound {
		if r.Round != i+1 || r.WireBytes <= 0 || r.RPCs <= 0 {
			t.Errorf("round %d stats malformed: %+v", i+1, r)
		}
		if r.ModelCommBytes != want.PerRound[i].ModelCommBytes {
			t.Errorf("round %d model comm: got %d, want %d", i+1, r.ModelCommBytes, want.PerRound[i].ModelCommBytes)
		}
		modelSum += r.ModelCommBytes
	}
	if modelSum != got.ModelCommBytes {
		t.Errorf("per-round model sum %d != total %d", modelSum, got.ModelCommBytes)
	}
	// The coordinator must have released every state lease at build end.
	for _, w := range workers {
		if n := len(w.Leases()); n != 0 {
			t.Errorf("worker %s still holds %d leases after build", w.ID(), n)
		}
	}
}

// TestHWTopk2DParity: the packed-domain H-WTopk-2D runs the same engine
// over a 2D dataset's key recipe and matches the simulated 2D build
// bit-for-bit.
func TestHWTopk2DParity(t *testing.T) {
	const side = 64
	n := 4096
	xs := make([]int64, n)
	ys := make([]int64, n)
	for i := range xs {
		// Deterministic correlated grid: hotspots on the diagonal.
		xs[i] = int64(i*31%side) * int64(i%3) % side
		ys[i] = (xs[i] + int64(i*17%7)) % side
	}
	ds, err := wavelethist.NewDataset2DFromPairs(xs, ys, side, 4<<10, 1)
	if err != nil {
		t.Fatal(err)
	}
	opts := wavelethist.Options{K: 20, Seed: 11}
	want, err := wavelethist.Build2D(ds, wavelethist.HWTopk2D, opts)
	if err != nil {
		t.Fatal(err)
	}
	coord, _ := dist.NewLoopbackCluster(2, 2, dist.Config{SplitsPerCall: 2})
	got, err := wavelethist.BuildDistributed2D(context.Background(), ds, wavelethist.HWTopk2D, opts, coord)
	if err != nil {
		t.Fatal(err)
	}
	wc, gc := want.Histogram.Coefficients(), got.Histogram.Coefficients()
	if len(wc) != len(gc) {
		t.Fatalf("coefficient count: got %d, want %d", len(gc), len(wc))
	}
	for i := range wc {
		if wc[i] != gc[i] {
			t.Fatalf("coefficient %d: got %+v, want %+v", i, gc[i], wc[i])
		}
	}
	if got.Rounds != 3 || got.WireBytes <= 0 || !got.Distributed {
		t.Errorf("rounds=%d wire=%d distributed=%v", got.Rounds, got.WireBytes, got.Distributed)
	}
	if got.CandidateSetSize != want.CandidateSetSize {
		t.Errorf("candidate set: got %d, want %d", got.CandidateSetSize, want.CandidateSetSize)
	}
	// The one-round 2D baselines distribute through the single fan-out
	// path, bit-identical to their simulated runs.
	for _, m2d := range []wavelethist.Method2D{wavelethist.SendV2D, wavelethist.TwoLevelS2D} {
		want2, err := wavelethist.Build2D(ds, m2d, opts)
		if err != nil {
			t.Fatal(err)
		}
		got2, err := wavelethist.BuildDistributed2D(context.Background(), ds, m2d, opts, coord)
		if err != nil {
			t.Fatal(err)
		}
		wc2, gc2 := want2.Histogram.Coefficients(), got2.Histogram.Coefficients()
		if len(wc2) != len(gc2) {
			t.Fatalf("%s coefficient count: got %d, want %d", m2d, len(gc2), len(wc2))
		}
		for i := range wc2 {
			if wc2[i] != gc2[i] {
				t.Fatalf("%s coefficient %d: got %+v, want %+v", m2d, i, gc2[i], wc2[i])
			}
		}
		if got2.Rounds != 1 || !got2.Distributed || got2.WireBytes <= 0 {
			t.Errorf("%s: rounds=%d wire=%d distributed=%v", m2d, got2.Rounds, got2.WireBytes, got2.Distributed)
		}
	}
	// An unknown 2D method still gets the typed error.
	if _, err := wavelethist.BuildDistributed2D(context.Background(), ds, wavelethist.Method2D("no-such-2d"), opts, coord); !errors.Is(err, wavelethist.ErrUnsupportedMethod) {
		t.Errorf("unknown 2D method: want ErrUnsupportedMethod, got %v", err)
	}
}

// TestUnsupportedMethodTyped: unknown/unsupported methods return the
// typed ErrUnsupportedMethod listing supported methods.
func TestUnsupportedMethodTyped(t *testing.T) {
	ds := zipfDS(t)
	coord, _ := dist.NewLoopbackCluster(1, 1, dist.Config{})
	_, err := wavelethist.BuildDistributed(context.Background(), ds, wavelethist.Method("H-WTopk-2D"), wavelethist.Options{K: 10}, coord)
	if err == nil || !errors.Is(err, wavelethist.ErrUnsupportedMethod) {
		t.Fatalf("2D-only method via 1D Build: want ErrUnsupportedMethod, got %v", err)
	}
	_, err = wavelethist.BuildDistributed(context.Background(), ds, wavelethist.Method("no-such"), wavelethist.Options{K: 10}, coord)
	if err == nil {
		t.Fatal("unknown method accepted")
	}
}

// TestHWTopkWorkerCrashMidRound kills a worker on its first round-2 (then
// round-3) assignment: the coordinator must re-assign the dead worker's
// splits, the new owners must replay the earlier rounds to rebuild the
// lost state leases, and the result must stay bit-identical.
func TestHWTopkWorkerCrashMidRound(t *testing.T) {
	ds := zipfDS(t)
	opts := wavelethist.Options{K: 25, Seed: 7}
	want, err := wavelethist.Build(ds, wavelethist.HWTopk, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, crashRound := range []int{2, 3} {
		t.Run(fmt.Sprintf("round-%d", crashRound), func(t *testing.T) {
			coord, lb := dist.NewLoopbackCluster(3, 1, dist.Config{SplitsPerCall: 2, MaxWorkerFailures: 1})
			lb.CrashWhen(dist.LoopbackScheme+"local-0", func(req *dist.MapRequest) bool {
				return req.Round == crashRound
			})
			got, err := wavelethist.BuildDistributed(context.Background(), ds, wavelethist.HWTopk, opts, coord)
			if err != nil {
				t.Fatal(err)
			}
			sameHistogram(t, want, got)
			if coord.AliveWorkers() != 2 {
				t.Errorf("alive workers after crash: got %d, want 2", coord.AliveWorkers())
			}
			if len(got.PerRound) != 3 {
				t.Fatalf("per-round stats: %d", len(got.PerRound))
			}
			rs := got.PerRound[crashRound-1]
			if rs.Retries == 0 {
				t.Errorf("round %d: no retries recorded after crash: %+v", crashRound, rs)
			}
			replayed := 0
			for _, r := range got.PerRound {
				replayed += r.ReplayedSplits
			}
			if replayed == 0 {
				t.Errorf("no splits replayed after mid-round-%d crash", crashRound)
			}
		})
	}
}

// TestHWTopkCrashSlowDeathDetection: with a high MaxWorkerFailures the
// crashed worker stays "alive" (and owner-sticky) for many failed RPCs;
// orphaning-on-failure plus the retry-budget clamp must still let the
// build finish on the survivors.
func TestHWTopkCrashSlowDeathDetection(t *testing.T) {
	ds := zipfDS(t)
	opts := wavelethist.Options{K: 25, Seed: 7}
	want, err := wavelethist.Build(ds, wavelethist.HWTopk, opts)
	if err != nil {
		t.Fatal(err)
	}
	coord, lb := dist.NewLoopbackCluster(3, 1, dist.Config{
		SplitsPerCall: 2, MaxWorkerFailures: 5, MaxRetries: 1, // clamped to 6
	})
	lb.CrashWhen(dist.LoopbackScheme+"local-0", func(req *dist.MapRequest) bool {
		return req.Round == 2
	})
	got, err := wavelethist.BuildDistributed(context.Background(), ds, wavelethist.HWTopk, opts, coord)
	if err != nil {
		t.Fatal(err)
	}
	sameHistogram(t, want, got)
}

// TestLeaseExpiry: a worker whose coordinator went silent expires its
// state lease after the TTL (the worker-side analogue of a heartbeat
// timeout); a later round for those splits must replay rather than read
// stale state, and Release drops leases explicitly.
func TestLeaseExpiry(t *testing.T) {
	ds := zipfDS(t)
	p := core.Params{U: ds.Domain(), K: 25, Seed: 7}
	file, _, err := ds.Spec().Materialize()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.NewRoundPlan(file, "H-WTopk", p)
	if err != nil {
		t.Fatal(err)
	}
	m := plan.NumSplits()
	all := make([]int, m)
	for i := range all {
		all[i] = i
	}

	w := dist.NewWorker("w0", 2)
	w.SetLeaseTTL(300 * time.Millisecond)
	ctx := context.Background()
	round := func(r int, bcast []byte) *dist.MapResponse {
		t.Helper()
		resp, err := w.HandleMap(ctx, &dist.MapRequest{
			JobID: "job-lease", Method: "H-WTopk", Params: p, Dataset: *ds.Spec(),
			Splits: all, Round: r, Rounds: 3, Broadcast: bcast,
		})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Error != "" {
			t.Fatal(resp.Error)
		}
		return resp
	}

	r1 := round(1, plan.Broadcast(1))
	parts, err := core.DecodePartials(r1.Partials)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.ReduceRound(ctx, 1, parts); err != nil {
		t.Fatal(err)
	}
	if got := len(w.Leases()); got != 1 {
		t.Fatalf("leases after round 1: %d, want 1", got)
	}

	// Let the lease expire, then run round 2: every split must replay.
	time.Sleep(time.Second)
	r2 := round(2, plan.Broadcast(2))
	if len(r2.Replayed) != m {
		t.Errorf("replayed after lease expiry: %d, want all %d", len(r2.Replayed), m)
	}
	// Expiry is proven; widen the TTL so the rest of the test (including
	// a full simulated comparison build) can't idle the lease out again
	// on a slow or contended machine.
	w.SetLeaseTTL(time.Hour)
	parts2, err := core.DecodePartials(r2.Partials)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.ReduceRound(ctx, 2, parts2); err != nil {
		t.Fatal(err)
	}

	// Round 3 right away: state is warm, nothing replays; the result
	// matches the single-process run despite the mid-protocol expiry.
	r3 := round(3, plan.Broadcast(3))
	if len(r3.Replayed) != 0 {
		t.Errorf("unexpected replays with warm lease: %v", r3.Replayed)
	}
	parts3, err := core.DecodePartials(r3.Partials)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.ReduceRound(ctx, 3, parts3); err != nil {
		t.Fatal(err)
	}
	out, err := plan.Output()
	if err != nil {
		t.Fatal(err)
	}
	want, err := wavelethist.Build(ds, wavelethist.HWTopk, wavelethist.Options{K: 25, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	wc := want.Histogram.Coefficients()
	if len(out.Rep.Coefs) != len(wc) {
		t.Fatalf("coefficient count: got %d, want %d", len(out.Rep.Coefs), len(wc))
	}
	for i := range wc {
		if out.Rep.Coefs[i].Index != wc[i].Index || out.Rep.Coefs[i].Value != wc[i].Value {
			t.Fatalf("coefficient %d: got %+v, want %+v", i, out.Rep.Coefs[i], wc[i])
		}
	}

	// Explicit release drops the lease; releasing again is a no-op.
	if !w.Release("job-lease") {
		t.Error("release of live lease reported no lease")
	}
	if w.Release("job-lease") {
		t.Error("double release reported a lease")
	}
	if got := len(w.Leases()); got != 0 {
		t.Errorf("leases after release: %d, want 0", got)
	}
}

// TestFleetStats: the saturation snapshot reports per-worker latency
// after builds and an empty build queue at rest.
func TestFleetStats(t *testing.T) {
	ds := zipfDS(t)
	coord, _ := dist.NewLoopbackCluster(2, 2, dist.Config{})
	if _, err := wavelethist.BuildDistributed(context.Background(), ds, wavelethist.HWTopk, wavelethist.Options{K: 10, Seed: 1}, coord); err != nil {
		t.Fatal(err)
	}
	fs := coord.FleetStats()
	if fs.ActiveBuilds != 0 || fs.PendingSplits != 0 || fs.InFlightRPCs != 0 {
		t.Errorf("fleet not idle after build: %+v", fs)
	}
	if len(fs.Workers) != 2 {
		t.Fatalf("workers: %d", len(fs.Workers))
	}
	for _, w := range fs.Workers {
		if w.RPCEWMAMillis <= 0 {
			t.Errorf("worker %s has no RPC-latency EWMA", w.ID)
		}
	}
	if fs.AliveWorkers != 2 {
		t.Errorf("alive workers: %d, want 2", fs.AliveWorkers)
	}
}

// TestBuildCancel: canceling the context aborts a distributed build with
// ctx.Err(), and the long-lived coordinator comes out unharmed — no
// leaked in-flight slots, no workers blamed for the cancellation.
func TestBuildCancel(t *testing.T) {
	ds := zipfDS(t)
	coord, _ := dist.NewLoopbackCluster(2, 1, dist.Config{MaxWorkerFailures: 1})
	opts := wavelethist.Options{K: 10, Seed: 1}

	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		if i == 0 {
			cancel() // before any dispatch
		} else {
			go func() {
				time.Sleep(time.Duration(i) * 3 * time.Millisecond)
				cancel() // mid-build, with RPCs in flight
			}()
		}
		_, err := wavelethist.BuildDistributed(ctx, ds, wavelethist.SendV, opts, coord)
		cancel()
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("cancel %d: got %v, want context.Canceled (or completion)", i, err)
		}
	}
	if got := coord.AliveWorkers(); got != 2 {
		t.Fatalf("alive after cancellations: got %d, want 2 (cancel must not count as worker failure)", got)
	}
	// The same coordinator must still have its full capacity: a fresh
	// build succeeds and matches the single-process result.
	want, err := wavelethist.Build(ds, wavelethist.SendV, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := wavelethist.BuildDistributed(context.Background(), ds, wavelethist.SendV, opts, coord)
	if err != nil {
		t.Fatalf("build after cancellations: %v (leaked in-flight slots?)", err)
	}
	sameHistogram(t, want, got)
	// Canceled RPCs are drained asynchronously; their slots must come
	// back promptly.
	deadline := time.Now().Add(10 * time.Second)
	for {
		stuck := 0
		for _, w := range coord.Workers() {
			stuck += w.InFlight
		}
		if stuck == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d in-flight slots never released after builds", stuck)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestHeartbeatRevivesDeadWorker: a worker marked dead after failures
// comes back via heartbeat and serves builds again.
func TestHeartbeatRevivesDeadWorker(t *testing.T) {
	lb := dist.NewLoopback()
	w := dist.NewWorker("w0", 1)
	addr := lb.Add(w)
	coord := dist.NewCoordinator(lb, dist.Config{})
	coord.Register(w.ID(), addr, 1)
	lb.Kill(addr)

	ds := zipfDS(t)
	if _, err := wavelethist.BuildDistributed(context.Background(), ds, wavelethist.SendV, wavelethist.Options{K: 10, Seed: 1}, coord); err == nil {
		t.Fatal("expected failure with the only worker dead")
	}
	if coord.AliveWorkers() != 0 {
		t.Fatalf("alive: got %d, want 0", coord.AliveWorkers())
	}
	lb.KillAfter(addr, 1<<30) // worker process restarted
	if !coord.Heartbeat("w0") {
		t.Fatal("heartbeat rejected for known worker")
	}
	if coord.AliveWorkers() != 1 {
		t.Fatalf("alive after heartbeat: got %d, want 1", coord.AliveWorkers())
	}
	if _, err := wavelethist.BuildDistributed(context.Background(), ds, wavelethist.SendV, wavelethist.Options{K: 10, Seed: 1}, coord); err != nil {
		t.Fatalf("build after revival: %v", err)
	}
}

// TestWaitForWorkers observes late registrations.
func TestWaitForWorkers(t *testing.T) {
	lb := dist.NewLoopback()
	coord := dist.NewCoordinator(lb, dist.Config{})
	go func() {
		time.Sleep(30 * time.Millisecond)
		w := dist.NewWorker("late", 1)
		coord.Register(w.ID(), lb.Add(w), 1)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := coord.WaitForWorkers(ctx, 1); err != nil {
		t.Fatal(err)
	}
}
