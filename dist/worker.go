package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"wavelethist/internal/core"
	"wavelethist/internal/hdfs"
)

// datasetCacheSize bounds how many materialized datasets a worker keeps
// (FIFO eviction) so a long-lived worker serving many datasets doesn't
// grow without bound.
const datasetCacheSize = 4

// DefaultLeaseTTL is how long an idle per-job state lease survives before
// the worker garbage-collects it. Multi-round builds refresh the lease on
// every assignment; a coordinator that crashed (or partitioned away — the
// worker-side analogue of a heartbeat timeout) stops refreshing, and the
// orphaned state is dropped rather than pinned forever.
const DefaultLeaseTTL = 5 * time.Minute

// Worker executes map assignments: it materializes the dataset named by
// the request's recipe (cached across requests), runs the method's map
// side over the assigned splits, and returns the encoded partials. For
// multi-round methods it additionally holds per-job state leases — the
// persisted unsent coefficients H-WTopk's later rounds read — released on
// job completion (coordinator Release RPC) or lease-TTL expiry. The same
// Worker backs the waveworker binary's HTTP server and the loopback
// transport's in-process fleet.
type Worker struct {
	id       string
	capacity int
	sem      chan struct{}

	mu     sync.Mutex
	files  map[string]*dsEntry
	order  []string
	leases map[string]*jobLease
	ttl    time.Duration
}

// jobLease is one job's state plus the bookkeeping expiry runs on.
// active counts in-flight assignments using the lease; the sweep never
// collects a pinned lease (idleness is measured from the last
// completion, and a long map task must not lose its store mid-run).
type jobLease struct {
	state    *core.WorkerState
	created  time.Time
	lastUsed time.Time
	active   int
}

// dsEntry is one cached dataset: a future so materialization happens
// outside the worker lock and concurrent requests for the same spec
// share one generation.
type dsEntry struct {
	ready chan struct{}
	file  *hdfs.File
	err   error
}

// NewWorker creates a worker. capacity bounds concurrently served map
// RPCs (0 = 2).
func NewWorker(id string, capacity int) *Worker {
	if capacity <= 0 {
		capacity = 2
	}
	return &Worker{
		id:       id,
		capacity: capacity,
		sem:      make(chan struct{}, capacity),
		files:    make(map[string]*dsEntry),
		leases:   make(map[string]*jobLease),
		ttl:      DefaultLeaseTTL,
	}
}

// ID returns the worker id.
func (w *Worker) ID() string { return w.id }

// Capacity returns the concurrent-RPC bound.
func (w *Worker) Capacity() int { return w.capacity }

// SetLeaseTTL overrides the state-lease expiry (0 restores the default).
func (w *Worker) SetLeaseTTL(d time.Duration) {
	if d <= 0 {
		d = DefaultLeaseTTL
	}
	w.mu.Lock()
	w.ttl = d
	w.mu.Unlock()
}

// HandleMap serves one map assignment.
func (w *Worker) HandleMap(ctx context.Context, req *MapRequest) (*MapResponse, error) {
	select {
	case w.sem <- struct{}{}:
		defer func() { <-w.sem }()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	if len(req.Splits) == 0 {
		return nil, fmt.Errorf("dist: empty split assignment")
	}
	file, err := w.dataset(req.Dataset)
	if err != nil {
		return nil, err
	}
	if req.Rounds <= 1 && req.Round <= 1 {
		// One-round method: stateless mergeable partials, no lease.
		parts, err := core.MapSplits(ctx, file, req.Method, req.Params, req.Splits)
		if err != nil {
			return nil, err
		}
		return &MapResponse{JobID: req.JobID, Partials: core.EncodePartials(parts)}, nil
	}
	state, done := w.acquireLease(req.JobID)
	defer done()
	parts, replayed, err := core.MapRoundSplits(ctx, file, req.Method, req.Params, req.Round, req.Broadcast, req.Splits, state)
	if err != nil {
		return nil, err
	}
	return &MapResponse{JobID: req.JobID, Partials: core.EncodePartials(parts), Replayed: replayed}, nil
}

// acquireLease returns (creating or refreshing) the job's state lease,
// pinned against sweeping until the returned release runs; expired idle
// leases of other jobs are swept while the lock is held.
func (w *Worker) acquireLease(jobID string) (*core.WorkerState, func()) {
	w.mu.Lock()
	defer w.mu.Unlock()
	now := time.Now()
	w.sweepLocked(now)
	l, ok := w.leases[jobID]
	if !ok {
		l = &jobLease{state: core.NewWorkerState(), created: now}
		w.leases[jobID] = l
	}
	l.lastUsed = now
	l.active++
	return l.state, func() {
		w.mu.Lock()
		defer w.mu.Unlock()
		l.active--
		l.lastUsed = time.Now()
	}
}

// sweepLocked drops unpinned leases idle past the TTL. Caller holds w.mu.
func (w *Worker) sweepLocked(now time.Time) {
	for id, l := range w.leases {
		if l.active <= 0 && now.Sub(l.lastUsed) > w.ttl {
			delete(w.leases, id)
		}
	}
}

// Release drops a job's state lease (the coordinator calls this when a
// multi-round build completes, fails, or is canceled). Reports whether a
// lease existed.
func (w *Worker) Release(jobID string) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.sweepLocked(time.Now())
	_, ok := w.leases[jobID]
	delete(w.leases, jobID)
	return ok
}

// Leases reports the worker's live state leases, oldest first.
func (w *Worker) Leases() []LeaseView {
	w.mu.Lock()
	defer w.mu.Unlock()
	now := time.Now()
	w.sweepLocked(now)
	out := make([]LeaseView, 0, len(w.leases))
	for id, l := range w.leases {
		out = append(out, LeaseView{
			JobID:      id,
			Entries:    l.state.Entries(),
			Bytes:      l.state.Bytes(),
			AgeMillis:  now.Sub(l.created).Milliseconds(),
			IdleMillis: now.Sub(l.lastUsed).Milliseconds(),
		})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].AgeMillis != out[b].AgeMillis {
			return out[a].AgeMillis > out[b].AgeMillis
		}
		return out[a].JobID < out[b].JobID
	})
	return out
}

// dataset returns the materialized file for a spec, generating and
// caching it on first use. Generation runs outside w.mu (it can take
// seconds for large datasets) behind a per-fingerprint future, so
// concurrent requests for cached datasets are never stalled and
// concurrent requests for the same new dataset share one generation.
func (w *Worker) dataset(spec DatasetSpec) (*hdfs.File, error) {
	fp := spec.Fingerprint()
	w.mu.Lock()
	e, ok := w.files[fp]
	if !ok {
		e = &dsEntry{ready: make(chan struct{})}
		w.files[fp] = e
		w.order = append(w.order, fp)
		if len(w.order) > datasetCacheSize {
			delete(w.files, w.order[0])
			w.order = w.order[1:]
		}
		w.mu.Unlock()
		e.file, _, e.err = spec.Materialize()
		close(e.ready)
		if e.err != nil {
			// Drop the failed entry so a later request can retry.
			w.mu.Lock()
			if w.files[fp] == e {
				delete(w.files, fp)
				for i, o := range w.order {
					if o == fp {
						w.order = append(w.order[:i], w.order[i+1:]...)
						break
					}
				}
			}
			w.mu.Unlock()
		}
		return e.file, e.err
	}
	w.mu.Unlock()
	<-e.ready
	return e.file, e.err
}

// Handler returns the worker's HTTP surface: POST /dist/v1/map,
// POST /dist/v1/release, GET /dist/v1/state and GET /dist/v1/ping.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathMap, func(rw http.ResponseWriter, r *http.Request) {
		var req MapRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(rw, http.StatusBadRequest, &MapResponse{Error: fmt.Sprintf("bad map request: %v", err)})
			return
		}
		resp, err := w.HandleMap(r.Context(), &req)
		if err != nil {
			writeJSON(rw, http.StatusOK, &MapResponse{JobID: req.JobID, Error: err.Error()})
			return
		}
		writeJSON(rw, http.StatusOK, resp)
	})
	mux.HandleFunc("POST "+PathRelease, func(rw http.ResponseWriter, r *http.Request) {
		var req ReleaseRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.JobID == "" {
			writeJSON(rw, http.StatusBadRequest, &ReleaseResponse{})
			return
		}
		writeJSON(rw, http.StatusOK, &ReleaseResponse{OK: true, Released: w.Release(req.JobID)})
	})
	mux.HandleFunc("GET "+PathState, func(rw http.ResponseWriter, r *http.Request) {
		w.mu.Lock()
		datasets := len(w.files)
		w.mu.Unlock()
		writeJSON(rw, http.StatusOK, &WorkerStateResponse{
			ID:       w.id,
			Capacity: w.capacity,
			Leases:   w.Leases(),
			Datasets: datasets,
		})
	})
	mux.HandleFunc("GET "+PathPing, func(rw http.ResponseWriter, r *http.Request) {
		writeJSON(rw, http.StatusOK, map[string]any{"ok": true, "id": w.id})
	})
	return mux
}

func writeJSON(rw http.ResponseWriter, code int, v any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(code)
	json.NewEncoder(rw).Encode(v)
}
