package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"wavelethist/internal/core"
	"wavelethist/internal/hdfs"
)

// datasetCacheSize bounds how many materialized datasets a worker keeps
// (FIFO eviction) so a long-lived worker serving many datasets doesn't
// grow without bound.
const datasetCacheSize = 4

// Worker executes map assignments: it materializes the dataset named by
// the request's recipe (cached across requests), runs the method's map
// side over the assigned splits, and returns the encoded partials. The
// same Worker backs the waveworker binary's HTTP server and the loopback
// transport's in-process fleet.
type Worker struct {
	id       string
	capacity int
	sem      chan struct{}

	mu    sync.Mutex
	files map[string]*dsEntry
	order []string
}

// dsEntry is one cached dataset: a future so materialization happens
// outside the worker lock and concurrent requests for the same spec
// share one generation.
type dsEntry struct {
	ready chan struct{}
	file  *hdfs.File
	err   error
}

// NewWorker creates a worker. capacity bounds concurrently served map
// RPCs (0 = 2).
func NewWorker(id string, capacity int) *Worker {
	if capacity <= 0 {
		capacity = 2
	}
	return &Worker{
		id:       id,
		capacity: capacity,
		sem:      make(chan struct{}, capacity),
		files:    make(map[string]*dsEntry),
	}
}

// ID returns the worker id.
func (w *Worker) ID() string { return w.id }

// Capacity returns the concurrent-RPC bound.
func (w *Worker) Capacity() int { return w.capacity }

// HandleMap serves one map assignment.
func (w *Worker) HandleMap(ctx context.Context, req *MapRequest) (*MapResponse, error) {
	select {
	case w.sem <- struct{}{}:
		defer func() { <-w.sem }()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	if len(req.Splits) == 0 {
		return nil, fmt.Errorf("dist: empty split assignment")
	}
	file, err := w.dataset(req.Dataset)
	if err != nil {
		return nil, err
	}
	parts, err := core.MapSplits(ctx, file, req.Method, req.Params, req.Splits)
	if err != nil {
		return nil, err
	}
	return &MapResponse{JobID: req.JobID, Partials: core.EncodePartials(parts)}, nil
}

// dataset returns the materialized file for a spec, generating and
// caching it on first use. Generation runs outside w.mu (it can take
// seconds for large datasets) behind a per-fingerprint future, so
// concurrent requests for cached datasets are never stalled and
// concurrent requests for the same new dataset share one generation.
func (w *Worker) dataset(spec DatasetSpec) (*hdfs.File, error) {
	fp := spec.Fingerprint()
	w.mu.Lock()
	e, ok := w.files[fp]
	if !ok {
		e = &dsEntry{ready: make(chan struct{})}
		w.files[fp] = e
		w.order = append(w.order, fp)
		if len(w.order) > datasetCacheSize {
			delete(w.files, w.order[0])
			w.order = w.order[1:]
		}
		w.mu.Unlock()
		e.file, _, e.err = spec.Materialize()
		close(e.ready)
		if e.err != nil {
			// Drop the failed entry so a later request can retry.
			w.mu.Lock()
			if w.files[fp] == e {
				delete(w.files, fp)
				for i, o := range w.order {
					if o == fp {
						w.order = append(w.order[:i], w.order[i+1:]...)
						break
					}
				}
			}
			w.mu.Unlock()
		}
		return e.file, e.err
	}
	w.mu.Unlock()
	<-e.ready
	return e.file, e.err
}

// Handler returns the worker's HTTP surface: POST /dist/v1/map and
// GET /dist/v1/ping.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathMap, func(rw http.ResponseWriter, r *http.Request) {
		var req MapRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(rw, http.StatusBadRequest, &MapResponse{Error: fmt.Sprintf("bad map request: %v", err)})
			return
		}
		resp, err := w.HandleMap(r.Context(), &req)
		if err != nil {
			writeJSON(rw, http.StatusOK, &MapResponse{JobID: req.JobID, Error: err.Error()})
			return
		}
		writeJSON(rw, http.StatusOK, resp)
	})
	mux.HandleFunc("GET "+PathPing, func(rw http.ResponseWriter, r *http.Request) {
		writeJSON(rw, http.StatusOK, map[string]any{"ok": true, "id": w.id})
	})
	return mux
}

func writeJSON(rw http.ResponseWriter, code int, v any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(code)
	json.NewEncoder(rw).Encode(v)
}
