package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"wavelethist/internal/core"
	"wavelethist/internal/hdfs"
	"wavelethist/internal/obs"
)

// datasetCacheSize bounds how many materialized datasets a worker keeps
// (FIFO eviction) so a long-lived worker serving many datasets doesn't
// grow without bound.
const datasetCacheSize = 4

// DefaultLeaseTTL is how long an idle per-job state lease survives before
// the worker garbage-collects it. Multi-round builds refresh the lease on
// every assignment; a coordinator that crashed (or partitioned away — the
// worker-side analogue of a heartbeat timeout) stops refreshing, and the
// orphaned state is dropped rather than pinned forever.
const DefaultLeaseTTL = 5 * time.Minute

// Worker executes map assignments: it materializes the dataset named by
// the request's recipe (cached across requests), runs the method's map
// side over the assigned splits — fanned across GOMAXPROCS goroutines by
// core.MapSplits — and returns the encoded partials. Computed partials
// are kept in a fingerprint-keyed LRU (cache.go), so a repeat build of
// the same (dataset, method, params) re-ships them without recomputing;
// the response's Cached field tells the coordinator which splits hit. For
// multi-round methods the worker additionally holds per-job state
// leases — the persisted unsent coefficients H-WTopk's later rounds
// read — released on job completion (coordinator Release RPC) or
// lease-TTL expiry. The same Worker backs the waveworker binary's HTTP
// server and the loopback transport's in-process fleet.
type Worker struct {
	id       string
	capacity int
	sem      chan struct{}
	cache    *partialCache

	mu     sync.Mutex
	files  map[string]*dsEntry
	order  []string
	leases map[string]*jobLease
	ttl    time.Duration

	// Observability (GET /metrics on the waveworker daemon).
	metrics        *obs.Registry
	mapReqs        *obs.Counter
	mapErrs        *obs.Counter
	mapDur         *obs.Histogram
	splitsComputed *obs.Counter
	splitsCached   *obs.Counter
	splitsReplayed *obs.Counter
	wireIn         *obs.Counter
	wireOut        *obs.Counter
}

// jobLease is one job's state plus the bookkeeping expiry runs on.
// active counts in-flight assignments using the lease; the sweep never
// collects a pinned lease (idleness is measured from the last
// completion, and a long map task must not lose its store mid-run).
type jobLease struct {
	state    *core.WorkerState
	created  time.Time
	lastUsed time.Time
	active   int
}

// dsEntry is one cached dataset: a future so materialization happens
// outside the worker lock and concurrent requests for the same spec
// share one generation.
type dsEntry struct {
	ready chan struct{}
	file  *hdfs.File
	err   error
}

// NewWorker creates a worker. capacity bounds concurrently served map
// RPCs (0 = 2).
func NewWorker(id string, capacity int) *Worker {
	if capacity <= 0 {
		capacity = 2
	}
	w := &Worker{
		id:       id,
		capacity: capacity,
		sem:      make(chan struct{}, capacity),
		cache:    newPartialCache(DefaultPartialCacheBytes),
		files:    make(map[string]*dsEntry),
		leases:   make(map[string]*jobLease),
		ttl:      DefaultLeaseTTL,
	}
	w.initMetrics()
	return w
}

func (w *Worker) initMetrics() {
	m := obs.NewRegistry()
	w.metrics = m
	w.mapReqs = m.Counter("waveworker_map_requests_total", "Map RPCs served (including failed ones).")
	w.mapErrs = m.Counter("waveworker_map_errors_total", "Map RPCs that returned an error.")
	w.mapDur = m.Histogram("waveworker_map_duration_seconds", "Map RPC service time, including capacity queueing.")
	w.splitsComputed = m.Counter("waveworker_splits_total", "Splits served, by how the result was produced.", obs.L("source", "computed"))
	w.splitsCached = m.Counter("waveworker_splits_total", "Splits served, by how the result was produced.", obs.L("source", "cached"))
	w.splitsReplayed = m.Counter("waveworker_replayed_splits_total", "Splits whose earlier rounds were replayed after an ownership change.")
	w.wireIn = m.Counter("waveworker_wire_bytes_total", "Map endpoint payload bytes by direction.", obs.L("dir", "in"))
	w.wireOut = m.Counter("waveworker_wire_bytes_total", "Map endpoint payload bytes by direction.", obs.L("dir", "out"))
	m.Collect(func(mw *obs.Writer) {
		cs := w.CacheStats()
		mw.Counter("waveworker_cache_hits_total", "Partial-cache hits.", float64(cs.Hits))
		mw.Counter("waveworker_cache_misses_total", "Partial-cache misses.", float64(cs.Misses))
		mw.Counter("waveworker_cache_evictions_total", "Partial-cache evictions.", float64(cs.Evictions))
		mw.Gauge("waveworker_cache_entries", "Partials currently cached.", float64(cs.Entries))
		mw.Gauge("waveworker_cache_bytes", "Bytes of cached partials.", float64(cs.Bytes))
		mw.Gauge("waveworker_cache_capacity_bytes", "Partial-cache capacity.", float64(cs.CapacityBytes))
		w.mu.Lock()
		leases, datasets := len(w.leases), len(w.files)
		w.mu.Unlock()
		mw.Gauge("waveworker_leases", "Live per-job state leases.", float64(leases))
		mw.Gauge("waveworker_datasets", "Materialized datasets cached.", float64(datasets))
		mw.Gauge("waveworker_capacity", "Concurrent map RPC bound.", float64(w.capacity))
		mw.Gauge("waveworker_inflight", "Map RPCs currently holding a capacity slot.", float64(len(w.sem)))
	})
}

// Metrics exposes the worker's metrics registry (mounted at GET /metrics
// by Handler; the waveworker daemon adds nothing on top).
func (w *Worker) Metrics() *obs.Registry { return w.metrics }

// SetPartialCacheBytes re-bounds the worker's partial cache (0 disables
// it).
func (w *Worker) SetPartialCacheBytes(n int64) { w.cache.setMax(n) }

// CacheStats reports the partial cache's occupancy and hit/miss counters.
func (w *Worker) CacheStats() CacheStatsView { return w.cache.stats() }

// ID returns the worker id.
func (w *Worker) ID() string { return w.id }

// Capacity returns the concurrent-RPC bound.
func (w *Worker) Capacity() int { return w.capacity }

// SetLeaseTTL overrides the state-lease expiry (0 restores the default).
func (w *Worker) SetLeaseTTL(d time.Duration) {
	if d <= 0 {
		d = DefaultLeaseTTL
	}
	w.mu.Lock()
	w.ttl = d
	w.mu.Unlock()
}

// HandleMap serves one map assignment. Assigned splits whose result is
// already in the partial cache are re-shipped without recomputation (and
// without even materializing the dataset when every split hits); the rest
// are mapped — concurrently, across GOMAXPROCS goroutines — and cached
// for the next build of the same shape.
func (w *Worker) HandleMap(ctx context.Context, req *MapRequest) (*MapResponse, error) {
	t0 := time.Now()
	w.mapReqs.Inc()
	resp, err := w.handleMap(ctx, req)
	w.mapDur.Observe(time.Since(t0))
	if err != nil {
		w.mapErrs.Inc()
		return nil, err
	}
	w.splitsCached.Add(int64(len(resp.Cached)))
	w.splitsReplayed.Add(int64(len(resp.Replayed)))
	w.splitsComputed.Add(int64(len(req.Splits) - len(resp.Cached)))
	return resp, nil
}

func (w *Worker) handleMap(ctx context.Context, req *MapRequest) (*MapResponse, error) {
	select {
	case w.sem <- struct{}{}:
		defer func() { <-w.sem }()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	if len(req.Splits) == 0 {
		return nil, fmt.Errorf("dist: empty split assignment")
	}
	base := partialCacheKey(req.Dataset.Fingerprint(), req.Method, req.Params, req.Round, req.Broadcast)
	parts := make([]core.SplitPartial, len(req.Splits))
	var cached, missing []int
	missingAt := make(map[int]int, len(req.Splits)) // split id -> slot
	for i, id := range req.Splits {
		if part, ok := w.cache.get(base, id); ok {
			parts[i] = part
			cached = append(cached, id)
		} else {
			missing = append(missing, id)
			missingAt[id] = i
		}
	}
	resp := &MapResponse{JobID: req.JobID, Cached: cached}
	if len(missing) > 0 {
		file, err := w.dataset(req.Dataset)
		if err != nil {
			return nil, err
		}
		var computed []core.SplitPartial
		if req.Rounds <= 1 && req.Round <= 1 {
			// One-round method: stateless mergeable partials, no lease.
			computed, err = core.MapSplits(ctx, file, req.Method, req.Params, missing)
		} else {
			state, done := w.acquireLease(req.JobID)
			computed, resp.Replayed, err = core.MapRoundSplits(ctx, file, req.Method, req.Params, req.Round, req.Broadcast, missing, state)
			done()
		}
		if err != nil {
			return nil, err
		}
		for _, part := range computed {
			parts[missingAt[part.SplitID]] = part
			w.cache.put(base, part.SplitID, part)
		}
	}
	resp.Partials = core.EncodePartials(parts)
	if len(resp.Partials) > maxPartialsPayload {
		// The frame header's length field is a uint32 and decoders cap
		// payloads at maxFramePayload; past that an encoded response
		// would be rejected (or silently wrap) on the coordinator as a
		// corrupt frame. Fail loudly with the actual cause instead —
		// it's deterministic, so the coordinator won't retry it.
		return nil, fmt.Errorf("dist: encoded partials (%d bytes) exceed the %d-byte frame limit; lower SplitsPerCall or use smaller splits", len(resp.Partials), maxPartialsPayload)
	}
	return resp, nil
}

// acquireLease returns (creating or refreshing) the job's state lease,
// pinned against sweeping until the returned release runs; expired idle
// leases of other jobs are swept while the lock is held.
func (w *Worker) acquireLease(jobID string) (*core.WorkerState, func()) {
	w.mu.Lock()
	defer w.mu.Unlock()
	now := time.Now()
	w.sweepLocked(now)
	l, ok := w.leases[jobID]
	if !ok {
		l = &jobLease{state: core.NewWorkerState(), created: now}
		w.leases[jobID] = l
	}
	l.lastUsed = now
	l.active++
	return l.state, func() {
		w.mu.Lock()
		defer w.mu.Unlock()
		l.active--
		l.lastUsed = time.Now()
	}
}

// sweepLocked drops unpinned leases idle past the TTL. Caller holds w.mu.
func (w *Worker) sweepLocked(now time.Time) {
	for id, l := range w.leases {
		if l.active <= 0 && now.Sub(l.lastUsed) > w.ttl {
			delete(w.leases, id)
		}
	}
}

// Release drops a job's state lease (the coordinator calls this when a
// multi-round build completes, fails, or is canceled). Reports whether a
// lease existed.
func (w *Worker) Release(jobID string) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.sweepLocked(time.Now())
	_, ok := w.leases[jobID]
	delete(w.leases, jobID)
	return ok
}

// Leases reports the worker's live state leases, oldest first.
func (w *Worker) Leases() []LeaseView {
	w.mu.Lock()
	defer w.mu.Unlock()
	now := time.Now()
	w.sweepLocked(now)
	out := make([]LeaseView, 0, len(w.leases))
	for id, l := range w.leases {
		out = append(out, LeaseView{
			JobID:      id,
			Entries:    l.state.Entries(),
			Bytes:      l.state.Bytes(),
			AgeMillis:  now.Sub(l.created).Milliseconds(),
			IdleMillis: now.Sub(l.lastUsed).Milliseconds(),
		})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].AgeMillis != out[b].AgeMillis {
			return out[a].AgeMillis > out[b].AgeMillis
		}
		return out[a].JobID < out[b].JobID
	})
	return out
}

// dataset returns the materialized file for a spec, generating and
// caching it on first use. Generation runs outside w.mu (it can take
// seconds for large datasets) behind a per-fingerprint future, so
// concurrent requests for cached datasets are never stalled and
// concurrent requests for the same new dataset share one generation.
func (w *Worker) dataset(spec DatasetSpec) (*hdfs.File, error) {
	fp := spec.Fingerprint()
	w.mu.Lock()
	e, ok := w.files[fp]
	if !ok {
		e = &dsEntry{ready: make(chan struct{})}
		w.files[fp] = e
		w.order = append(w.order, fp)
		if len(w.order) > datasetCacheSize {
			delete(w.files, w.order[0])
			w.order = w.order[1:]
		}
		w.mu.Unlock()
		e.file, _, e.err = spec.Materialize()
		close(e.ready)
		if e.err != nil {
			// Drop the failed entry so a later request can retry.
			w.mu.Lock()
			if w.files[fp] == e {
				delete(w.files, fp)
				for i, o := range w.order {
					if o == fp {
						w.order = append(w.order[:i], w.order[i+1:]...)
						break
					}
				}
			}
			w.mu.Unlock()
		}
		return e.file, e.err
	}
	w.mu.Unlock()
	<-e.ready
	return e.file, e.err
}

// Handler returns the worker's HTTP surface: POST /dist/v1/map,
// POST /dist/v1/release, GET /dist/v1/state and GET /dist/v1/ping. The
// POST endpoints negotiate by Content-Type — binary frames are answered
// with binary frames, JSON with JSON — so one worker serves new binary
// coordinators and old JSON ones alike.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathMap, func(rw http.ResponseWriter, r *http.Request) {
		if isBinary(r) {
			frame, err := io.ReadAll(r.Body)
			if err != nil {
				writeFrame(rw, http.StatusBadRequest, EncodeMapResponse(&MapResponse{Error: err.Error()}))
				return
			}
			req, err := DecodeMapRequest(frame)
			if err != nil {
				writeFrame(rw, http.StatusBadRequest, EncodeMapResponse(&MapResponse{Error: fmt.Sprintf("bad map request: %v", err)}))
				return
			}
			w.wireIn.Add(int64(len(frame)))
			resp, err := w.HandleMap(r.Context(), req)
			if err != nil {
				resp = &MapResponse{JobID: req.JobID, Error: err.Error()}
			}
			out := EncodeMapResponse(resp)
			w.wireOut.Add(int64(len(out)))
			writeFrame(rw, http.StatusOK, out)
			return
		}
		if r.ContentLength > 0 {
			w.wireIn.Add(r.ContentLength)
		}
		var req MapRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(rw, http.StatusBadRequest, &MapResponse{Error: fmt.Sprintf("bad map request: %v", err)})
			return
		}
		resp, err := w.HandleMap(r.Context(), &req)
		if err != nil {
			writeJSON(rw, http.StatusOK, &MapResponse{JobID: req.JobID, Error: err.Error()})
			return
		}
		writeJSON(rw, http.StatusOK, resp)
	})
	mux.HandleFunc("POST "+PathRelease, func(rw http.ResponseWriter, r *http.Request) {
		if isBinary(r) {
			frame, err := io.ReadAll(r.Body)
			if err != nil {
				writeFrame(rw, http.StatusBadRequest, EncodeReleaseResponse(&ReleaseResponse{}))
				return
			}
			req, err := DecodeReleaseRequest(frame)
			if err != nil || req.JobID == "" {
				writeFrame(rw, http.StatusBadRequest, EncodeReleaseResponse(&ReleaseResponse{}))
				return
			}
			writeFrame(rw, http.StatusOK, EncodeReleaseResponse(&ReleaseResponse{OK: true, Released: w.Release(req.JobID)}))
			return
		}
		var req ReleaseRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.JobID == "" {
			writeJSON(rw, http.StatusBadRequest, &ReleaseResponse{})
			return
		}
		writeJSON(rw, http.StatusOK, &ReleaseResponse{OK: true, Released: w.Release(req.JobID)})
	})
	mux.HandleFunc("GET "+PathState, func(rw http.ResponseWriter, r *http.Request) {
		w.mu.Lock()
		datasets := len(w.files)
		w.mu.Unlock()
		writeJSON(rw, http.StatusOK, &WorkerStateResponse{
			ID:       w.id,
			Capacity: w.capacity,
			Leases:   w.Leases(),
			Datasets: datasets,
			Cache:    w.CacheStats(),
		})
	})
	mux.HandleFunc("GET "+PathPing, func(rw http.ResponseWriter, r *http.Request) {
		writeJSON(rw, http.StatusOK, map[string]any{"ok": true, "id": w.id})
	})
	mux.Handle("GET /metrics", w.metrics.Handler())
	return mux
}

// isBinary reports whether a request carries a binary protocol frame.
func isBinary(r *http.Request) bool {
	return r.Header.Get("Content-Type") == ContentTypeBinary
}

func writeJSON(rw http.ResponseWriter, code int, v any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(code)
	json.NewEncoder(rw).Encode(v)
}

func writeFrame(rw http.ResponseWriter, code int, frame []byte) {
	rw.Header().Set("Content-Type", ContentTypeBinary)
	rw.WriteHeader(code)
	rw.Write(frame)
}
