package dist

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"wavelethist/internal/core"
	"wavelethist/internal/hdfs"
	"wavelethist/internal/obs"
)

// Config tunes a Coordinator. The zero value is usable.
type Config struct {
	// HeartbeatEvery is the interval advertised to registering workers
	// (default 3s).
	HeartbeatEvery time.Duration
	// HeartbeatTimeout marks a worker dead when neither a heartbeat nor a
	// successful RPC has been seen for this long. 0 disables expiry —
	// the right setting for in-process loopback fleets, which do not
	// heartbeat.
	HeartbeatTimeout time.Duration
	// MaxRetries bounds re-assignments per split per round before the
	// build fails (default 3).
	MaxRetries int
	// SplitsPerCall is the assignment batch size (default 4). Smaller
	// batches spread load and shrink the re-assignment unit; larger ones
	// amortize per-RPC overhead.
	SplitsPerCall int
	// MaxInFlight bounds concurrent map RPCs across the fleet
	// (default 16).
	MaxInFlight int
	// RPCTimeout bounds one map RPC (default 5m).
	RPCTimeout time.Duration
	// MaxWorkerFailures is the consecutive-failure count that marks a
	// worker dead (default 2).
	MaxWorkerFailures int
	// CheckpointDir, when non-empty, persists multi-round build state
	// after each round barrier (partials via the partial codec, atomically
	// tmp+renamed), keyed by build shape. A coordinator restarted
	// mid-build replays the checkpointed rounds through the reducer
	// locally — zero map RPCs, bit-identical state — and resumes the
	// fan-out at the first incomplete round. Checkpoints are removed when
	// their build completes.
	CheckpointDir string
	// TraceDir, when non-empty, dumps every finished build's span trace
	// as JSONL (<jobID>.jsonl) — the durable form of GET /dist/v1/trace.
	// Best-effort: a failed dump never fails the build.
	TraceDir string
}

func (c Config) withDefaults() Config {
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 3 * time.Second
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 3
	}
	if c.SplitsPerCall <= 0 {
		c.SplitsPerCall = 4
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 16
	}
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = 5 * time.Minute
	}
	if c.MaxWorkerFailures <= 0 {
		c.MaxWorkerFailures = 2
	}
	// A split's retry budget must outlive a dying worker: until a worker
	// accrues MaxWorkerFailures it stays dispatchable, so a split can burn
	// up to that many retries on it before re-assignment sticks elsewhere.
	if c.MaxRetries < c.MaxWorkerFailures+1 {
		c.MaxRetries = c.MaxWorkerFailures + 1
	}
	return c
}

// rpcEWMAAlpha weights the newest map-RPC latency sample in the
// per-worker EWMA: high enough to track load shifts within a few RPCs,
// low enough that one slow split doesn't look like a saturated worker the
// way the old last-sample-wins signal did.
const rpcEWMAAlpha = 0.2

// WorkerInfo describes one registered worker.
type WorkerInfo struct {
	ID       string    `json:"id"`
	Addr     string    `json:"addr"`
	Capacity int       `json:"capacity"`
	InFlight int       `json:"in_flight"`
	Alive    bool      `json:"alive"`
	LastSeen time.Time `json:"last_seen"`
	// RPCEWMAMillis is an exponentially weighted moving average of the
	// worker's completed map-RPC latencies (0 until one completes) — the
	// saturation signal /v1/stats surfaces per worker.
	RPCEWMAMillis float64 `json:"rpc_ewma_millis,omitempty"`
}

type workerState struct {
	id       string
	addr     string
	capacity int
	inflight int
	failures int
	dead     bool
	lastSeen time.Time
	ewmaRPC  float64 // milliseconds
}

// RoundStats is one round's execution profile within a build.
type RoundStats struct {
	Round int `json:"round"`
	// WireBytes is the measured request+response payload of the round's
	// map RPCs (including failed requests).
	WireBytes int64 `json:"wire_bytes"`
	// BroadcastBytes is the wire size of the coordinator's broadcast blob
	// shipped inside each of the round's requests (0 in round 1).
	BroadcastBytes int64 `json:"broadcast_bytes,omitempty"`
	RPCs           int   `json:"rpcs"`
	Retries        int   `json:"retries"`
	// ReplayedSplits counts splits whose new owner had to replay earlier
	// rounds after the original owner's death or lease loss.
	ReplayedSplits int `json:"replayed_splits,omitempty"`
	// CachedSplits counts splits served from workers' partial caches —
	// re-shipped without recomputation.
	CachedSplits int `json:"cached_splits,omitempty"`
	// Restored marks a round whose partials were replayed from a
	// checkpoint after a coordinator restart: no map RPCs were issued
	// (RPCs and WireBytes are 0), only the local reduce re-ran.
	Restored bool `json:"restored,omitempty"`
}

// BuildStats reports a distributed build's execution profile.
type BuildStats struct {
	// WireBytes is the real communication: measured request + response
	// payload bytes of all map RPCs (including failed ones' requests).
	WireBytes int64
	// RPCs counts completed map RPCs; Retries counts split
	// re-assignments after worker failures.
	RPCs    int
	Retries int
	// WorkersUsed is how many distinct workers returned at least one
	// partial; WorkerFailures counts failed RPCs.
	WorkersUsed    int
	WorkerFailures int
	// Splits is the number of input splits processed (per round).
	Splits int
	// Rounds is the protocol's round count (1, or 3 for H-WTopk).
	Rounds int
	// CachedSplits counts split results served from workers' partial
	// caches across all rounds (a fully warm one-round build has
	// CachedSplits == Splits and recomputed nothing).
	CachedSplits int
	// PerRound profiles each round (one entry per completed round).
	PerRound []RoundStats
	// CandidateSetSize is |R| — the candidate set broadcast before
	// H-WTopk's round 3 (0 for one-round methods).
	CandidateSetSize int
	// JobID is the coordinator-assigned build identifier ("build-…"),
	// the key for GET /dist/v1/trace/{id}.
	JobID string
}

// buildTrack is the live progress of one in-flight build, read by
// FleetStats without touching the build's goroutine.
type buildTrack struct {
	jobID    string
	rounds   int32
	round    atomic.Int32
	pending  atomic.Int32
	inflight atomic.Int32
}

// BuildProgress is one active build's queue depth in FleetStats.
type BuildProgress struct {
	JobID         string `json:"job_id"`
	Round         int    `json:"round"`
	Rounds        int    `json:"rounds"`
	PendingSplits int    `json:"pending_splits"`
	InFlightRPCs  int    `json:"in_flight_rpcs"`
}

// FleetStats is the coordinator's saturation snapshot: build queue depth
// plus per-worker load — the first slice of autoscaling/backpressure.
type FleetStats struct {
	ActiveBuilds  int             `json:"active_builds"`
	PendingSplits int             `json:"pending_splits"`
	InFlightRPCs  int             `json:"in_flight_rpcs"`
	AliveWorkers  int             `json:"alive_workers"`
	Builds        []BuildProgress `json:"builds,omitempty"`
	Workers       []WorkerInfo    `json:"workers"`
	// CachedSplitsTotal counts split results served from workers'
	// partial caches across this coordinator's lifetime.
	CachedSplitsTotal int64 `json:"cached_splits_total"`
}

// Coordinator owns the worker fleet and runs distributed builds.
type Coordinator struct {
	cfg      Config
	tr       Transport
	instance string

	mu      sync.Mutex
	workers map[string]*workerState
	jobSeq  int
	builds  map[string]*buildTrack

	// cachedSplits accumulates partial-cache hits across builds
	// (FleetStats.CachedSplitsTotal).
	cachedSplits atomic.Int64

	// traces retains span traces for recent builds (GET /dist/v1/trace).
	traces traceStore

	// Lifetime observability totals, exposed by Collect as
	// wavehist_dist_* metric families.
	buildsStarted obs.Counter
	buildsDone    obs.Counter
	buildsFailed  obs.Counter
	rpcsTotal     obs.Counter
	retriesTotal  obs.Counter
	failuresTotal obs.Counter
	wireBytes     obs.Counter
	bcastBytes    obs.Counter
	roundDur      obs.Histogram
	rpcDur        obs.Histogram

	// affinity remembers, per build shape (dataset fingerprint, method,
	// params), which worker served each split — seeded into the next
	// build of the same shape so repeat builds land splits on the worker
	// whose partial cache holds them. Bounded FIFO.
	affMu    sync.Mutex
	affinity map[string][]string
	affOrder []string
}

// affinityKeys bounds the affinity map (one entry per distinct build
// shape; each holds one worker id per split).
const affinityKeys = 128

// affinityOwners returns the remembered split→worker map for a build
// shape (and whether one existed), or a fresh one of length m.
func (c *Coordinator) affinityOwners(key string, m int) ([]string, bool) {
	c.affMu.Lock()
	defer c.affMu.Unlock()
	if prev, ok := c.affinity[key]; ok && len(prev) == m {
		owners := make([]string, m)
		copy(owners, prev)
		return owners, true
	}
	return make([]string, m), false
}

// storeAffinity remembers a finished build's split→worker map. A repeat
// build that got ZERO cache hits despite being routed by affinity proves
// the owners' caches are cold (evicted, disabled, or the worker
// restarted) — the entry is dropped instead, so the next build
// load-balances freely rather than staying pinned to cold owners.
func (c *Coordinator) storeAffinity(key string, owners []string, seeded bool, cacheHits int) {
	c.affMu.Lock()
	defer c.affMu.Unlock()
	if seeded && cacheHits == 0 {
		if _, ok := c.affinity[key]; ok {
			delete(c.affinity, key)
			for i, o := range c.affOrder {
				if o == key {
					c.affOrder = append(c.affOrder[:i], c.affOrder[i+1:]...)
					break
				}
			}
		}
		return
	}
	if c.affinity == nil {
		c.affinity = make(map[string][]string)
	}
	if _, ok := c.affinity[key]; !ok {
		c.affOrder = append(c.affOrder, key)
		for len(c.affOrder) > affinityKeys {
			delete(c.affinity, c.affOrder[0])
			c.affOrder = c.affOrder[1:]
		}
	}
	cp := make([]string, len(owners))
	copy(cp, owners)
	c.affinity[key] = cp
}

// NewCoordinator creates a coordinator dispatching over tr.
func NewCoordinator(tr Transport, cfg Config) *Coordinator {
	// The instance token namespaces job IDs across coordinator restarts
	// and shared fleets: a collision would let a worker resurrect another
	// job's state lease instead of replaying, so it must be unguessably
	// unique, not clock-derived.
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err != nil {
		binary.LittleEndian.PutUint64(buf[:], uint64(time.Now().UnixNano())^uint64(os.Getpid())<<32)
	}
	return &Coordinator{
		cfg:      cfg.withDefaults(),
		tr:       tr,
		instance: hex.EncodeToString(buf[:]),
		workers:  make(map[string]*workerState),
		builds:   make(map[string]*buildTrack),
	}
}

// Register adds (or refreshes) a worker. capacity <= 0 defaults to 1.
func (c *Coordinator) Register(id, addr string, capacity int) {
	if capacity <= 0 {
		capacity = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[id]
	if !ok {
		w = &workerState{id: id}
		c.workers[id] = w
	}
	w.addr = addr
	w.capacity = capacity
	w.dead = false
	w.failures = 0
	w.lastSeen = time.Now()
}

// Heartbeat refreshes a worker's liveness; false means the coordinator
// does not know the worker (it should re-register).
func (c *Coordinator) Heartbeat(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[id]
	if !ok {
		return false
	}
	w.lastSeen = time.Now()
	if w.dead {
		// A heartbeat from a worker marked dead means it recovered (or
		// the failures were transient); give it another chance.
		w.dead = false
		w.failures = 0
	}
	return true
}

// alive reports liveness under c.mu.
func (c *Coordinator) alive(w *workerState, now time.Time) bool {
	if w.dead {
		return false
	}
	if c.cfg.HeartbeatTimeout > 0 && now.Sub(w.lastSeen) > c.cfg.HeartbeatTimeout {
		return false
	}
	return true
}

// Workers lists the fleet, alive first then by id.
func (c *Coordinator) Workers() []WorkerInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	out := make([]WorkerInfo, 0, len(c.workers))
	for _, w := range c.workers {
		out = append(out, WorkerInfo{
			ID: w.id, Addr: w.addr, Capacity: w.capacity,
			InFlight: w.inflight, Alive: c.alive(w, now), LastSeen: w.lastSeen,
			RPCEWMAMillis: w.ewmaRPC,
		})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Alive != out[b].Alive {
			return out[a].Alive
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// AliveWorkers counts currently live workers.
func (c *Coordinator) AliveWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	n := 0
	for _, w := range c.workers {
		if c.alive(w, now) {
			n++
		}
	}
	return n
}

// WaitForWorkers blocks until at least n workers are alive or ctx ends.
func (c *Coordinator) WaitForWorkers(ctx context.Context, n int) error {
	for {
		if c.AliveWorkers() >= n {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("dist: waiting for %d workers (%d alive): %w", n, c.AliveWorkers(), ctx.Err())
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// FleetStats snapshots fleet saturation: active builds with their queue
// depth, total pending splits, and per-worker in-flight + latency.
func (c *Coordinator) FleetStats() FleetStats {
	c.mu.Lock()
	tracks := make([]*buildTrack, 0, len(c.builds))
	for _, t := range c.builds {
		tracks = append(tracks, t)
	}
	c.mu.Unlock()
	fs := FleetStats{Workers: c.Workers(), CachedSplitsTotal: c.cachedSplits.Load()}
	for _, w := range fs.Workers {
		fs.InFlightRPCs += w.InFlight
		if w.Alive {
			fs.AliveWorkers++
		}
	}
	for _, t := range tracks {
		bp := BuildProgress{
			JobID:         t.jobID,
			Round:         int(t.round.Load()),
			Rounds:        int(t.rounds),
			PendingSplits: int(t.pending.Load()),
			InFlightRPCs:  int(t.inflight.Load()),
		}
		fs.Builds = append(fs.Builds, bp)
		fs.PendingSplits += bp.PendingSplits
	}
	sort.Slice(fs.Builds, func(a, b int) bool { return fs.Builds[a].JobID < fs.Builds[b].JobID })
	fs.ActiveBuilds = len(fs.Builds)
	return fs
}

// RPC outcomes for release: success absolves past failures, failure
// counts toward death, neutral (a build-side abort, not a worker fault)
// only frees the slot.
type rpcOutcome int

const (
	relOK rpcOutcome = iota
	relFailed
	relNeutral
)

func (c *Coordinator) release(w *workerState, outcome rpcOutcome, latency time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w.inflight--
	if latency > 0 {
		sample := float64(latency.Nanoseconds()) / 1e6
		if w.ewmaRPC == 0 {
			w.ewmaRPC = sample
		} else {
			w.ewmaRPC = rpcEWMAAlpha*sample + (1-rpcEWMAAlpha)*w.ewmaRPC
		}
	}
	switch outcome {
	case relOK:
		w.failures = 0
		w.lastSeen = time.Now()
	case relFailed:
		w.failures++
		if w.failures >= c.cfg.MaxWorkerFailures {
			w.dead = true
		}
	}
}

type rpcResult struct {
	w       *workerState
	splits  []int
	resp    *MapResponse
	reqB    int64
	respB   int64
	latency time.Duration
	err     error
}

func (c *Coordinator) newJobID() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.jobSeq++
	return fmt.Sprintf("build-%s-%d", c.instance, c.jobSeq)
}

func (c *Coordinator) trackBuild(jobID string, rounds int) *buildTrack {
	t := &buildTrack{jobID: jobID, rounds: int32(rounds)}
	c.mu.Lock()
	c.builds[jobID] = t
	c.mu.Unlock()
	return t
}

func (c *Coordinator) untrackBuild(jobID string) {
	c.mu.Lock()
	delete(c.builds, jobID)
	c.mu.Unlock()
}

// Build runs one distributed build and merges the result; it is
// bit-identical to a single-process run of the same method, params and
// seed. One-round methods fan out once; multi-round methods (H-WTopk) run
// the full round barrier with per-job worker state leases. 2D methods go
// through Build2D.
func (c *Coordinator) Build(ctx context.Context, spec DatasetSpec, file *hdfs.File, method string, p core.Params) (*core.Output, *BuildStats, error) {
	if file == nil {
		return nil, nil, fmt.Errorf("dist: nil file")
	}
	if method == core.MethodHWTopk2D || core.OneRound2D(method) {
		return nil, nil, fmt.Errorf("%w: %s is 2D-only (use Build2D)", ErrUnsupportedMethod, method)
	}
	switch core.Rounds(method) {
	case 0:
		if _, err := core.ByName(method); err != nil {
			return nil, nil, err
		}
		return nil, nil, core.UnsupportedMethodError(method)
	case 1:
		return c.buildOneRound(ctx, spec, file, method, p)
	default:
		plan, stats, err := c.runMultiRound(ctx, spec, file, method, p)
		if err != nil {
			return nil, stats, err
		}
		out, err := plan.Output()
		if err != nil {
			return nil, stats, err
		}
		return out, stats, nil
	}
}

// Build2D runs a distributed 2D build: the one-round baselines
// (Send-V-2D, TwoLevel-S-2D) through the single fan-out + merge path,
// H-WTopk-2D through the multi-round engine.
func (c *Coordinator) Build2D(ctx context.Context, spec DatasetSpec, file *hdfs.File, method string, p core.Params) (*core.Output2D, *BuildStats, error) {
	if file == nil {
		return nil, nil, fmt.Errorf("dist: nil file")
	}
	switch {
	case core.OneRound2D(method):
		return c.buildOneRound2D(ctx, spec, file, method, p)
	case method == core.MethodHWTopk2D:
		plan, stats, err := c.runMultiRound(ctx, spec, file, method, p)
		if err != nil {
			return nil, stats, err
		}
		out, err := plan.Output2D()
		if err != nil {
			return nil, stats, err
		}
		return out, stats, nil
	default:
		return nil, nil, fmt.Errorf("%w: %q (2D distributed builds support: %s, %s, %s)",
			ErrUnsupportedMethod, method, core.MethodSendV2D, core.MethodTwoLevelS2D, core.MethodHWTopk2D)
	}
}

// oneRoundPartials is the single fan-out of a one-round build (1D or 2D):
// splits prefer the worker that served them in the last build of the same
// shape (cache affinity): its partial cache holds their results, so
// repeat builds re-ship instead of recomputing.
func (c *Coordinator) oneRoundPartials(ctx context.Context, spec DatasetSpec, file *hdfs.File, method string, p core.Params) (_ []core.SplitPartial, _ *BuildStats, retErr error) {
	m := core.NumSplits(file, p)
	jobID := c.newJobID()
	notifyJobID(ctx, jobID)
	stats := &BuildStats{Splits: m, Rounds: 1, JobID: jobID}
	track := c.trackBuild(jobID, 1)
	defer c.untrackBuild(jobID)
	c.beginTrace(jobID, method, m, 1)
	c.buildsStarted.Inc()
	defer func() {
		c.endTrace(jobID, retErr)
		if retErr != nil {
			c.buildsFailed.Inc()
		} else {
			c.buildsDone.Inc()
		}
	}()
	affKey := partialCacheKey(spec.Fingerprint(), method, p, 0, nil)
	owners, seeded := c.affinityOwners(affKey, m)
	responded := make(map[string]bool)
	rc := &roundCall{
		jobID: jobID, method: method, params: p, spec: spec,
		round: 1, rounds: 1, m: m, owners: owners,
		track: track, touched: make(map[string]string), responded: responded,
	}
	parts, err := c.runRound(ctx, rc, stats)
	if err != nil {
		return nil, stats, err
	}
	// Remember ownership only for completed rounds: a canceled or failed
	// build has zero (or partial) hits for reasons other than cold
	// caches, and must neither drop a valid entry nor overwrite a
	// complete map with a partially-filled one.
	c.storeAffinity(affKey, owners, seeded, stats.CachedSplits)
	stats.WorkersUsed = len(responded)
	return parts, stats, nil
}

// buildOneRound is the single fan-out + merge path of PR 2.
func (c *Coordinator) buildOneRound(ctx context.Context, spec DatasetSpec, file *hdfs.File, method string, p core.Params) (*core.Output, *BuildStats, error) {
	start := time.Now()
	parts, stats, err := c.oneRoundPartials(ctx, spec, file, method, p)
	if err != nil {
		return nil, stats, err
	}
	out, err := core.MergePartials(ctx, file, method, p, parts)
	if err != nil {
		return nil, stats, err
	}
	// The merge only times itself; report the whole fan-out + merge.
	out.Metrics.WallTime = time.Since(start)
	return out, stats, nil
}

// buildOneRound2D is buildOneRound with the 2D merge.
func (c *Coordinator) buildOneRound2D(ctx context.Context, spec DatasetSpec, file *hdfs.File, method string, p core.Params) (*core.Output2D, *BuildStats, error) {
	start := time.Now()
	parts, stats, err := c.oneRoundPartials(ctx, spec, file, method, p)
	if err != nil {
		return nil, stats, err
	}
	out, err := core.MergePartials2D(ctx, file, method, p, parts)
	if err != nil {
		return nil, stats, err
	}
	out.Metrics.WallTime = time.Since(start)
	return out, stats, nil
}

// runMultiRound drives the round barrier: fan out round r, reduce it on
// the coordinator, compute the next round's broadcast, repeat. Splits
// stick to the worker that ran them in earlier rounds (it holds their
// state); splits whose owner died are re-assigned, and the new owner
// replays the earlier rounds locally. Worker state leases are released on
// every exit path.
func (c *Coordinator) runMultiRound(ctx context.Context, spec DatasetSpec, file *hdfs.File, method string, p core.Params) (_ *core.RoundPlan, _ *BuildStats, retErr error) {
	plan, err := core.NewRoundPlan(file, method, p)
	if err != nil {
		return nil, nil, err
	}
	m := plan.NumSplits()
	jobID := c.newJobID()
	notifyJobID(ctx, jobID)
	stats := &BuildStats{Splits: m, Rounds: plan.NumRounds(), JobID: jobID}
	track := c.trackBuild(jobID, plan.NumRounds())
	defer c.untrackBuild(jobID)
	c.beginTrace(jobID, method, m, plan.NumRounds())
	c.buildsStarted.Inc()
	defer func() {
		c.endTrace(jobID, retErr)
		if retErr != nil {
			c.buildsFailed.Inc()
		} else {
			c.buildsDone.Inc()
		}
	}()

	// Seed round-1 stickiness from the last build of the same shape: the
	// prior owner's cache holds every round's partials, so a repeat build
	// hits in all rounds; within a build, ownership then follows the
	// round barrier's state-lease stickiness as before.
	affKey := partialCacheKey(spec.Fingerprint(), method, p, 0, nil)
	owners, seeded := c.affinityOwners(affKey, m)
	touched := make(map[string]string)
	responded := make(map[string]bool)
	defer func() { c.releaseLeases(jobID, touched) }()

	// Resume from a checkpoint when one matches this build shape: replay
	// each checkpointed round's partials through the reducer — the exact
	// state the crashed coordinator held at the barrier, reconstructed
	// with zero map RPCs — then fan out only the remaining rounds.
	ckDir := c.cfg.CheckpointDir
	var ckRounds [][]core.SplitPartial
	startRound := 1
	if ckDir != "" {
		if ck := loadCheckpoint(ckDir, affKey, method, m, plan.NumRounds()); ck != nil {
			replayed := true
			for r := 1; r <= len(ck.Rounds); r++ {
				track.round.Store(int32(r))
				plan.Broadcast(r)
				if err := plan.ReduceRound(ctx, r, ck.Rounds[r-1]); err != nil {
					replayed = false
					break
				}
				stats.PerRound = append(stats.PerRound, RoundStats{Round: r, Restored: true})
				c.recordSpan(jobID, Span{Round: r, Restored: true,
					StartUnixMicros: time.Now().UnixMicro()})
			}
			if replayed {
				startRound = len(ck.Rounds) + 1
				ckRounds = ck.Rounds
			} else {
				// A checkpoint the reducer rejects is stale or corrupt:
				// drop it and run the build from scratch.
				removeCheckpoint(ckDir, affKey)
				stats.PerRound = nil
				if plan, err = core.NewRoundPlan(file, method, p); err != nil {
					return nil, stats, err
				}
			}
		}
	}

	for r := startRound; r <= plan.NumRounds(); r++ {
		track.round.Store(int32(r))
		rc := &roundCall{
			jobID: jobID, method: method, params: p, spec: spec,
			round: r, rounds: plan.NumRounds(), bcast: plan.Broadcast(r), m: m,
			owners: owners, track: track, touched: touched, responded: responded,
		}
		parts, err := c.runRound(ctx, rc, stats)
		if err != nil {
			return nil, stats, err
		}
		if err := plan.ReduceRound(ctx, r, parts); err != nil {
			return nil, stats, err
		}
		if ckDir != "" && r < plan.NumRounds() {
			// Persist the barrier (best-effort: a failed write only costs
			// re-running rounds after a crash, never the build).
			ckRounds = append(ckRounds, parts)
			_ = saveCheckpoint(ckDir, &checkpoint{
				Key: affKey, Method: method, Splits: m, Rounds: ckRounds,
			})
		}
	}
	// Only a build that completed every round records its ownership map
	// (see buildOneRound: failures and cancellations prove nothing about
	// the workers' caches).
	c.storeAffinity(affKey, owners, seeded, stats.CachedSplits)
	stats.WorkersUsed = len(responded)
	stats.CandidateSetSize = plan.Candidates()
	if ckDir != "" {
		removeCheckpoint(ckDir, affKey)
	}
	return plan, stats, nil
}

// releaseLeases tells every live worker this job touched to drop its
// state lease. Best-effort and concurrent; workers the coordinator
// already knows are dead are skipped rather than dialed — a crashed or
// partitioned worker would only stall the build's return here, and its
// lease expires via the worker-side TTL anyway.
func (c *Coordinator) releaseLeases(jobID string, touched map[string]string) {
	c.mu.Lock()
	now := time.Now()
	addrs := make([]string, 0, len(touched))
	for id, addr := range touched {
		if w := c.workers[id]; w != nil && c.alive(w, now) {
			addrs = append(addrs, addr)
		}
	}
	c.mu.Unlock()
	var wg sync.WaitGroup
	for _, addr := range addrs {
		addr := addr
		wg.Add(1)
		go func() {
			defer wg.Done()
			rctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			defer cancel()
			_ = c.tr.Release(rctx, addr, &ReleaseRequest{JobID: jobID})
		}()
	}
	wg.Wait()
}

// roundCall describes one round's fan-out.
type roundCall struct {
	jobID  string
	method string
	params core.Params
	spec   DatasetSpec
	round  int
	rounds int
	bcast  []byte
	m      int
	// owners is the split→worker stickiness map: for multi-round builds
	// it tracks which worker holds each split's state lease; for
	// one-round builds it is seeded from cross-build cache affinity
	// (the worker whose partial cache holds the split). Updated with
	// whoever actually served each split this round. Splits wait for a
	// live-but-busy owner rather than spilling: for multi-round state a
	// non-owner must replay, and for cache affinity a spill turns a
	// cheap hit into a recompute. The pathological pin — every split
	// owned by one worker whose cache turns out cold — is healed by the
	// zero-hit affinity drop in buildOneRound/runMultiRound, not by
	// spilling here.
	owners    []string
	track     *buildTrack
	touched   map[string]string
	responded map[string]bool
}

// runRound fans one round's splits out to the fleet, re-assigning on
// worker failure, and returns one partial per split (in split order).
func (c *Coordinator) runRound(ctx context.Context, rc *roundCall, stats *BuildStats) ([]core.SplitPartial, error) {
	roundStart := time.Now()
	defer func() { c.roundDur.Observe(time.Since(roundStart)) }()
	m := rc.m
	pending := make([]int, m)
	for i := range pending {
		pending[i] = i
	}
	retries := make([]int, m)
	partials := make([]*core.SplitPartial, m)
	remaining := m
	inflight := 0
	rstats := RoundStats{Round: rc.round, BroadcastBytes: int64(len(rc.bcast))}
	c.bcastBytes.Add(int64(len(rc.bcast)))
	results := make(chan rpcResult, c.cfg.MaxInFlight)
	retry := time.NewTicker(25 * time.Millisecond)
	defer retry.Stop()

	updateTrack := func() {
		if rc.track != nil {
			rc.track.pending.Store(int32(len(pending)))
			rc.track.inflight.Store(int32(inflight))
		}
	}

	dispatch := func(w *workerState, batch []int) {
		req := &MapRequest{
			JobID:   rc.jobID,
			Method:  rc.method,
			Params:  rc.params,
			Dataset: rc.spec,
			Splits:  batch,
		}
		if rc.rounds > 1 {
			req.Round, req.Rounds, req.Broadcast = rc.round, rc.rounds, rc.bcast
		}
		rctx, cancel := context.WithTimeout(ctx, c.cfg.RPCTimeout)
		defer cancel()
		t0 := time.Now()
		resp, reqB, respB, err := c.tr.MapSplits(rctx, w.addr, req)
		results <- rpcResult{w: w, splits: batch, resp: resp, reqB: reqB, respB: respB, latency: time.Since(t0), err: err}
	}

	// pick selects the next (worker, batch) under c.mu: splits stick to
	// the live worker that owns their state from earlier rounds; splits
	// with a dead or unset owner go to the least-loaded live worker.
	// Splits whose owner is alive but at capacity wait for it — stealing
	// them would force a replay the owner can avoid by just finishing.
	pick := func() (*workerState, []int) {
		c.mu.Lock()
		defer c.mu.Unlock()
		now := time.Now()
		take := func(w *workerState, ids []int) (*workerState, []int) {
			n := c.cfg.SplitsPerCall
			if n > len(ids) {
				n = len(ids)
			}
			batch := append([]int(nil), ids[:n]...)
			inBatch := make(map[int]bool, n)
			for _, id := range batch {
				inBatch[id] = true
			}
			keep := pending[:0]
			for _, id := range pending {
				if !inBatch[id] {
					keep = append(keep, id)
				}
			}
			pending = keep
			w.inflight++
			return w, batch
		}
		if rc.owners != nil {
			byOwner := make(map[string][]int)
			for _, id := range pending {
				o := rc.owners[id]
				if o == "" {
					continue
				}
				if w := c.workers[o]; w != nil && c.alive(w, now) {
					byOwner[o] = append(byOwner[o], id)
				}
			}
			ownerIDs := make([]string, 0, len(byOwner))
			for o := range byOwner {
				ownerIDs = append(ownerIDs, o)
			}
			sort.Strings(ownerIDs)
			for _, o := range ownerIDs {
				if w := c.workers[o]; w.inflight < w.capacity {
					return take(w, byOwner[o])
				}
			}
		}
		var free []int
		for _, id := range pending {
			if rc.owners != nil {
				if o := rc.owners[id]; o != "" {
					if w := c.workers[o]; w != nil && c.alive(w, now) {
						continue // owned by a live (busy) worker: wait for it
					}
				}
			}
			free = append(free, id)
		}
		if len(free) == 0 {
			return nil, nil
		}
		var best *workerState
		for _, w := range c.workers {
			if !c.alive(w, now) || w.inflight >= w.capacity {
				continue
			}
			if best == nil || w.inflight < best.inflight || (w.inflight == best.inflight && w.id < best.id) {
				best = w
			}
		}
		if best == nil {
			return nil, nil
		}
		return take(best, free)
	}

	requeue := func(splits []int) error {
		for _, id := range splits {
			retries[id]++
			stats.Retries++
			rstats.Retries++
			c.retriesTotal.Inc()
			if retries[id] > c.cfg.MaxRetries {
				return fmt.Errorf("dist: round %d: split %d failed %d times; giving up", rc.round, id, retries[id])
			}
			pending = append(pending, id)
		}
		return nil
	}

	// drain releases the worker slots of RPCs still in flight when the
	// round returns early — the Coordinator and its workerStates outlive
	// this build, so abandoning the results channel would leak inflight
	// counts and permanently shrink fleet capacity. The results channel
	// is buffered to MaxInFlight, so the dispatch goroutines never block.
	drain := func(n int) {
		if n <= 0 {
			return
		}
		go func() {
			for i := 0; i < n; i++ {
				r := <-results
				outcome := relOK
				if r.err != nil {
					// Don't blame workers for our own cancellation.
					outcome = relFailed
					if ctx.Err() != nil {
						outcome = relNeutral
					}
				}
				c.release(r.w, outcome, r.latency)
			}
		}()
	}
	finish := func(err error) ([]core.SplitPartial, error) {
		drain(inflight)
		updateTrack()
		return nil, err
	}

	for remaining > 0 {
		// Dispatch as much as fleet capacity and the in-flight bound allow.
		for inflight < c.cfg.MaxInFlight {
			w, batch := pick()
			if w == nil {
				break
			}
			rc.touched[w.id] = w.addr
			inflight++
			go dispatch(w, batch)
		}
		updateTrack()
		if inflight == 0 && len(pending) > 0 && c.AliveWorkers() == 0 {
			return nil, fmt.Errorf("dist: no alive workers (%d splits unassigned in round %d)", len(pending), rc.round)
		}

		select {
		case r := <-results:
			inflight--
			stats.WireBytes += r.reqB + r.respB
			rstats.WireBytes += r.reqB + r.respB
			c.wireBytes.Add(r.reqB + r.respB)
			c.rpcDur.Observe(r.latency)
			// One span per split-batch RPC, whatever its outcome. Retry
			// marks a batch carrying at least one re-dispatched split.
			span := Span{
				Round:           rc.round,
				Worker:          r.w.id,
				Splits:          append([]int(nil), r.splits...),
				StartUnixMicros: time.Now().Add(-r.latency).UnixMicro(),
				DurMicros:       r.latency.Microseconds(),
				WireBytes:       r.reqB + r.respB,
			}
			for _, id := range r.splits {
				if retries[id] > 0 {
					span.Retry = true
					break
				}
			}
			fail := func(err error) error {
				stats.WorkerFailures++
				c.failuresTotal.Inc()
				c.release(r.w, relFailed, r.latency)
				// Orphan the failed splits this worker owned: a failed RPC
				// makes its state suspect, and keeping them sticky would
				// burn every per-split retry on the same worker before it
				// accrues MaxWorkerFailures (the two limits must not be
				// coupled). Orphans go to any live worker, which replays.
				if rc.owners != nil {
					for _, id := range r.splits {
						if rc.owners[id] == r.w.id {
							rc.owners[id] = ""
						}
					}
				}
				if rqErr := requeue(r.splits); rqErr != nil {
					return fmt.Errorf("%v (last worker error: %v)", rqErr, err)
				}
				return nil
			}
			switch {
			case r.err != nil:
				if ctx.Err() != nil {
					// Build canceled, not a worker fault.
					c.release(r.w, relNeutral, 0)
					return finish(ctx.Err())
				}
				span.Error = r.err.Error()
				c.recordSpan(rc.jobID, span)
				if err := fail(r.err); err != nil {
					return finish(err)
				}
			case r.resp.Error != "":
				// Application errors are deterministic (same request, same
				// failure on any worker): fail the build, don't retry.
				span.Error = r.resp.Error
				c.recordSpan(rc.jobID, span)
				c.release(r.w, relOK, r.latency)
				return finish(fmt.Errorf("dist: worker %s: %s", r.w.id, r.resp.Error))
			default:
				parts, err := core.DecodePartials(r.resp.Partials)
				if err == nil {
					err = checkCoverage(parts, r.splits)
				}
				if err != nil {
					span.Error = err.Error()
					c.recordSpan(rc.jobID, span)
					if ferr := fail(err); ferr != nil {
						return finish(ferr)
					}
					break
				}
				c.release(r.w, relOK, r.latency)
				stats.RPCs++
				rstats.RPCs++
				c.rpcsTotal.Inc()
				rstats.ReplayedSplits += len(r.resp.Replayed)
				rstats.CachedSplits += len(r.resp.Cached)
				stats.CachedSplits += len(r.resp.Cached)
				c.cachedSplits.Add(int64(len(r.resp.Cached)))
				span.Cached = append([]int(nil), r.resp.Cached...)
				span.Replayed = append([]int(nil), r.resp.Replayed...)
				c.recordSpan(rc.jobID, span)
				rc.responded[r.w.id] = true
				for i := range parts {
					id := parts[i].SplitID
					if partials[id] == nil {
						remaining--
					}
					partials[id] = &parts[i]
					if rc.owners != nil {
						rc.owners[id] = r.w.id
					}
				}
			}
		case <-retry.C:
			// Re-check dispatchability: workers may have registered,
			// recovered, or freed capacity held by a concurrent build.
		case <-ctx.Done():
			return finish(ctx.Err())
		}
	}
	updateTrack()
	stats.PerRound = append(stats.PerRound, rstats)

	flat := make([]core.SplitPartial, m)
	for i, part := range partials {
		flat[i] = *part
	}
	return flat, nil
}

// checkCoverage verifies a response's partials are exactly the assigned
// splits.
func checkCoverage(parts []core.SplitPartial, assigned []int) error {
	if len(parts) != len(assigned) {
		return fmt.Errorf("dist: got %d partials for %d assigned splits", len(parts), len(assigned))
	}
	want := make(map[int]bool, len(assigned))
	for _, id := range assigned {
		want[id] = true
	}
	for _, part := range parts {
		if !want[part.SplitID] {
			return fmt.Errorf("dist: unexpected partial for split %d", part.SplitID)
		}
		delete(want, part.SplitID)
	}
	return nil
}

// Handler returns the coordinator's HTTP surface: worker registration,
// heartbeats, fleet listing and saturation stats, mounted by wavehistd
// under /dist/v1/. Registration and heartbeats negotiate by Content-Type
// like the worker endpoints: binary frames answered with binary frames,
// JSON with JSON.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathRegister, func(rw http.ResponseWriter, r *http.Request) {
		var req RegisterRequest
		if isBinary(r) {
			frame, err := io.ReadAll(r.Body)
			if err == nil {
				var preq *RegisterRequest
				if preq, err = DecodeRegisterRequest(frame); err == nil {
					req = *preq
				}
			}
			if err != nil || req.ID == "" || req.Addr == "" {
				writeFrame(rw, http.StatusBadRequest, EncodeRegisterResponse(&RegisterResponse{}))
				return
			}
			c.Register(req.ID, req.Addr, req.Capacity)
			writeFrame(rw, http.StatusOK, EncodeRegisterResponse(&RegisterResponse{
				OK:              true,
				HeartbeatMillis: c.cfg.HeartbeatEvery.Milliseconds(),
			}))
			return
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.ID == "" || req.Addr == "" {
			writeJSON(rw, http.StatusBadRequest, map[string]string{"error": "register needs id and addr"})
			return
		}
		c.Register(req.ID, req.Addr, req.Capacity)
		writeJSON(rw, http.StatusOK, &RegisterResponse{
			OK:              true,
			HeartbeatMillis: c.cfg.HeartbeatEvery.Milliseconds(),
		})
	})
	mux.HandleFunc("POST "+PathHeartbeat, func(rw http.ResponseWriter, r *http.Request) {
		var req HeartbeatRequest
		if isBinary(r) {
			frame, err := io.ReadAll(r.Body)
			if err == nil {
				var preq *HeartbeatRequest
				if preq, err = DecodeHeartbeatRequest(frame); err == nil {
					req = *preq
				}
			}
			if err != nil || req.ID == "" {
				writeFrame(rw, http.StatusBadRequest, EncodeHeartbeatResponse(&HeartbeatResponse{}))
				return
			}
			code := http.StatusOK
			ok := c.Heartbeat(req.ID)
			if !ok {
				code = http.StatusNotFound
			}
			writeFrame(rw, code, EncodeHeartbeatResponse(&HeartbeatResponse{OK: ok}))
			return
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.ID == "" {
			writeJSON(rw, http.StatusBadRequest, map[string]string{"error": "heartbeat needs id"})
			return
		}
		if !c.Heartbeat(req.ID) {
			writeJSON(rw, http.StatusNotFound, &HeartbeatResponse{OK: false})
			return
		}
		writeJSON(rw, http.StatusOK, &HeartbeatResponse{OK: true})
	})
	mux.HandleFunc("GET "+PathWorkers, func(rw http.ResponseWriter, r *http.Request) {
		writeJSON(rw, http.StatusOK, &WorkersResponse{Workers: c.Workers()})
	})
	mux.HandleFunc("GET "+PathFleet, func(rw http.ResponseWriter, r *http.Request) {
		writeJSON(rw, http.StatusOK, c.FleetStats())
	})
	mux.HandleFunc("GET "+PathTrace+"{id}", func(rw http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		v, ok := c.Trace(id)
		if !ok {
			writeJSON(rw, http.StatusNotFound, map[string]string{"error": "no trace for build " + id})
			return
		}
		writeJSON(rw, http.StatusOK, v)
	})
	return mux
}

// Collect emits the coordinator's metric families through an obs.Writer:
// lifetime build/RPC/retry/wire counters, round and RPC latency
// histograms, and scrape-time fleet gauges. Mounted into the owning
// daemon's /metrics registry via Registry.Collect.
func (c *Coordinator) Collect(w *obs.Writer) {
	w.Counter("wavehist_dist_builds_total", "Distributed builds by outcome.",
		float64(c.buildsStarted.Value()), obs.L("state", "started"))
	w.Counter("wavehist_dist_builds_total", "Distributed builds by outcome.",
		float64(c.buildsDone.Value()), obs.L("state", "done"))
	w.Counter("wavehist_dist_builds_total", "Distributed builds by outcome.",
		float64(c.buildsFailed.Value()), obs.L("state", "failed"))
	w.Counter("wavehist_dist_map_rpcs_total", "Successful map RPCs.", float64(c.rpcsTotal.Value()))
	w.Counter("wavehist_dist_retries_total", "Split re-assignments after failures.", float64(c.retriesTotal.Value()))
	w.Counter("wavehist_dist_worker_failures_total", "Failed map RPCs.", float64(c.failuresTotal.Value()))
	w.Counter("wavehist_dist_wire_bytes_total", "Measured map RPC request+response bytes.", float64(c.wireBytes.Value()))
	w.Counter("wavehist_dist_broadcast_bytes_total", "Coordinator broadcast blob bytes per round.", float64(c.bcastBytes.Value()))
	w.Counter("wavehist_dist_cached_splits_total", "Split results served from worker partial caches.", float64(c.cachedSplits.Load()))
	w.Histogram("wavehist_dist_round_duration_seconds", "Build round wall time (fan-out to barrier).", c.roundDur.View())
	w.Histogram("wavehist_dist_rpc_duration_seconds", "Map RPC latency.", c.rpcDur.View())
	fs := c.FleetStats()
	w.Gauge("wavehist_dist_alive_workers", "Workers currently alive.", float64(fs.AliveWorkers))
	w.Gauge("wavehist_dist_pending_splits", "Splits queued across active builds.", float64(fs.PendingSplits))
	w.Gauge("wavehist_dist_inflight_rpcs", "Map RPCs currently in flight.", float64(fs.InFlightRPCs))
	w.Gauge("wavehist_dist_active_builds", "Builds currently running.", float64(fs.ActiveBuilds))
}

// NewLoopbackCluster builds a coordinator with n in-process workers on a
// fresh Loopback transport (HTTP fallback attached, so remote workers can
// still join the same coordinator). This is wavehistd's single-binary
// -workers mode and the test harness: same coordinator and worker code,
// no sockets. capacity <= 0 defaults per NewWorker.
func NewLoopbackCluster(n, capacity int, cfg Config) (*Coordinator, *Loopback) {
	lb := NewLoopback()
	lb.Fallback = NewHTTPTransport()
	c := NewCoordinator(lb, cfg)
	for i := 0; i < n; i++ {
		w := NewWorker(fmt.Sprintf("local-%d", i), capacity)
		addr := lb.Add(w)
		c.Register(w.ID(), addr, w.Capacity())
	}
	return c, lb
}
