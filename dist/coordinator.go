package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"wavelethist/internal/core"
	"wavelethist/internal/hdfs"
)

// Config tunes a Coordinator. The zero value is usable.
type Config struct {
	// HeartbeatEvery is the interval advertised to registering workers
	// (default 3s).
	HeartbeatEvery time.Duration
	// HeartbeatTimeout marks a worker dead when neither a heartbeat nor a
	// successful RPC has been seen for this long. 0 disables expiry —
	// the right setting for in-process loopback fleets, which do not
	// heartbeat.
	HeartbeatTimeout time.Duration
	// MaxRetries bounds re-assignments per split before the build fails
	// (default 3).
	MaxRetries int
	// SplitsPerCall is the assignment batch size (default 4). Smaller
	// batches spread load and shrink the re-assignment unit; larger ones
	// amortize per-RPC overhead.
	SplitsPerCall int
	// MaxInFlight bounds concurrent map RPCs across the fleet
	// (default 16).
	MaxInFlight int
	// RPCTimeout bounds one map RPC (default 5m).
	RPCTimeout time.Duration
	// MaxWorkerFailures is the consecutive-failure count that marks a
	// worker dead (default 2).
	MaxWorkerFailures int
}

func (c Config) withDefaults() Config {
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 3 * time.Second
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 3
	}
	if c.SplitsPerCall <= 0 {
		c.SplitsPerCall = 4
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 16
	}
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = 5 * time.Minute
	}
	if c.MaxWorkerFailures <= 0 {
		c.MaxWorkerFailures = 2
	}
	return c
}

// WorkerInfo describes one registered worker.
type WorkerInfo struct {
	ID       string    `json:"id"`
	Addr     string    `json:"addr"`
	Capacity int       `json:"capacity"`
	InFlight int       `json:"in_flight"`
	Alive    bool      `json:"alive"`
	LastSeen time.Time `json:"last_seen"`
}

type workerState struct {
	id       string
	addr     string
	capacity int
	inflight int
	failures int
	dead     bool
	lastSeen time.Time
}

// BuildStats reports a distributed build's execution profile.
type BuildStats struct {
	// WireBytes is the real communication: measured request + response
	// payload bytes of all map RPCs (including failed ones' requests).
	WireBytes int64
	// RPCs counts completed map RPCs; Retries counts split
	// re-assignments after worker failures.
	RPCs    int
	Retries int
	// WorkersUsed is how many distinct workers returned at least one
	// partial; WorkerFailures counts failed RPCs.
	WorkersUsed    int
	WorkerFailures int
	// Splits is the number of input splits processed.
	Splits int
}

// Coordinator owns the worker fleet and runs distributed builds.
type Coordinator struct {
	cfg Config
	tr  Transport

	mu      sync.Mutex
	workers map[string]*workerState
	jobSeq  int
}

// NewCoordinator creates a coordinator dispatching over tr.
func NewCoordinator(tr Transport, cfg Config) *Coordinator {
	return &Coordinator{
		cfg:     cfg.withDefaults(),
		tr:      tr,
		workers: make(map[string]*workerState),
	}
}

// Register adds (or refreshes) a worker. capacity <= 0 defaults to 1.
func (c *Coordinator) Register(id, addr string, capacity int) {
	if capacity <= 0 {
		capacity = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[id]
	if !ok {
		w = &workerState{id: id}
		c.workers[id] = w
	}
	w.addr = addr
	w.capacity = capacity
	w.dead = false
	w.failures = 0
	w.lastSeen = time.Now()
}

// Heartbeat refreshes a worker's liveness; false means the coordinator
// does not know the worker (it should re-register).
func (c *Coordinator) Heartbeat(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[id]
	if !ok {
		return false
	}
	w.lastSeen = time.Now()
	if w.dead {
		// A heartbeat from a worker marked dead means it recovered (or
		// the failures were transient); give it another chance.
		w.dead = false
		w.failures = 0
	}
	return true
}

// alive reports liveness under c.mu.
func (c *Coordinator) alive(w *workerState, now time.Time) bool {
	if w.dead {
		return false
	}
	if c.cfg.HeartbeatTimeout > 0 && now.Sub(w.lastSeen) > c.cfg.HeartbeatTimeout {
		return false
	}
	return true
}

// Workers lists the fleet, alive first then by id.
func (c *Coordinator) Workers() []WorkerInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	out := make([]WorkerInfo, 0, len(c.workers))
	for _, w := range c.workers {
		out = append(out, WorkerInfo{
			ID: w.id, Addr: w.addr, Capacity: w.capacity,
			InFlight: w.inflight, Alive: c.alive(w, now), LastSeen: w.lastSeen,
		})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Alive != out[b].Alive {
			return out[a].Alive
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// AliveWorkers counts currently live workers.
func (c *Coordinator) AliveWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	n := 0
	for _, w := range c.workers {
		if c.alive(w, now) {
			n++
		}
	}
	return n
}

// WaitForWorkers blocks until at least n workers are alive or ctx ends.
func (c *Coordinator) WaitForWorkers(ctx context.Context, n int) error {
	for {
		if c.AliveWorkers() >= n {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("dist: waiting for %d workers (%d alive): %w", n, c.AliveWorkers(), ctx.Err())
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// acquire picks the least-loaded live worker with a free slot.
func (c *Coordinator) acquire() *workerState {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	var best *workerState
	for _, w := range c.workers {
		if !c.alive(w, now) || w.inflight >= w.capacity {
			continue
		}
		if best == nil || w.inflight < best.inflight || (w.inflight == best.inflight && w.id < best.id) {
			best = w
		}
	}
	if best != nil {
		best.inflight++
	}
	return best
}

// RPC outcomes for release: success absolves past failures, failure
// counts toward death, neutral (a build-side abort, not a worker fault)
// only frees the slot.
type rpcOutcome int

const (
	relOK rpcOutcome = iota
	relFailed
	relNeutral
)

func (c *Coordinator) release(w *workerState, outcome rpcOutcome) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w.inflight--
	switch outcome {
	case relOK:
		w.failures = 0
		w.lastSeen = time.Now()
	case relFailed:
		w.failures++
		if w.failures >= c.cfg.MaxWorkerFailures {
			w.dead = true
		}
	}
}

type rpcResult struct {
	w      *workerState
	splits []int
	resp   *MapResponse
	reqB   int64
	respB  int64
	err    error
}

// Build runs one distributed build: partition file into splits, fan the
// splits out to the fleet as map RPCs (re-assigning on worker failure),
// then merge the collected partials into the final output. The result is
// bit-identical to a single-process run of the same method, params and
// seed.
func (c *Coordinator) Build(ctx context.Context, spec DatasetSpec, file *hdfs.File, method string, p core.Params) (*core.Output, *BuildStats, error) {
	if file == nil {
		return nil, nil, fmt.Errorf("dist: nil file")
	}
	if !core.Distributable(method) {
		if _, err := core.ByName(method); err != nil {
			return nil, nil, err
		}
		return nil, nil, fmt.Errorf("dist: method %s is multi-round and cannot run distributed (supported: %v)",
			method, core.DistributableMethods())
	}
	start := time.Now()
	m := core.NumSplits(file, p)
	c.mu.Lock()
	c.jobSeq++
	jobID := fmt.Sprintf("build-%d", c.jobSeq)
	c.mu.Unlock()

	pending := make([]int, m)
	for i := range pending {
		pending[i] = i
	}
	retries := make([]int, m)
	partials := make([]*core.SplitPartial, m)
	remaining := m
	inflight := 0
	stats := &BuildStats{Splits: m}
	usedWorkers := make(map[string]bool)
	results := make(chan rpcResult, c.cfg.MaxInFlight)
	retry := time.NewTicker(25 * time.Millisecond)
	defer retry.Stop()

	dispatch := func(w *workerState, batch []int) {
		req := &MapRequest{
			JobID:   jobID,
			Method:  method,
			Params:  p,
			Dataset: spec,
			Splits:  batch,
		}
		rctx, cancel := context.WithTimeout(ctx, c.cfg.RPCTimeout)
		defer cancel()
		resp, reqB, respB, err := c.tr.MapSplits(rctx, w.addr, req)
		results <- rpcResult{w: w, splits: batch, resp: resp, reqB: reqB, respB: respB, err: err}
	}

	requeue := func(splits []int) error {
		for _, id := range splits {
			retries[id]++
			stats.Retries++
			if retries[id] > c.cfg.MaxRetries {
				return fmt.Errorf("dist: split %d failed %d times; giving up", id, retries[id])
			}
			pending = append(pending, id)
		}
		return nil
	}

	// drain releases the worker slots of RPCs still in flight when the
	// build returns early — the Coordinator and its workerStates outlive
	// this build, so abandoning the results channel would leak inflight
	// counts and permanently shrink fleet capacity. The results channel
	// is buffered to MaxInFlight, so the dispatch goroutines never block.
	drain := func(n int) {
		if n <= 0 {
			return
		}
		go func() {
			for i := 0; i < n; i++ {
				r := <-results
				outcome := relOK
				if r.err != nil {
					// Don't blame workers for our own cancellation.
					outcome = relFailed
					if ctx.Err() != nil {
						outcome = relNeutral
					}
				}
				c.release(r.w, outcome)
			}
		}()
	}

	for remaining > 0 {
		// Dispatch as much as fleet capacity and the in-flight bound allow.
		for len(pending) > 0 && inflight < c.cfg.MaxInFlight {
			w := c.acquire()
			if w == nil {
				break
			}
			n := c.cfg.SplitsPerCall
			if n > len(pending) {
				n = len(pending)
			}
			batch := make([]int, n)
			copy(batch, pending[:n])
			pending = pending[n:]
			inflight++
			go dispatch(w, batch)
		}
		if inflight == 0 && len(pending) > 0 && c.AliveWorkers() == 0 {
			return nil, stats, fmt.Errorf("dist: no alive workers (%d splits unassigned)", len(pending))
		}

		select {
		case r := <-results:
			inflight--
			stats.WireBytes += r.reqB + r.respB
			fail := func(err error) error {
				stats.WorkerFailures++
				c.release(r.w, relFailed)
				if rqErr := requeue(r.splits); rqErr != nil {
					return fmt.Errorf("%v (last worker error: %v)", rqErr, err)
				}
				return nil
			}
			switch {
			case r.err != nil:
				if ctx.Err() != nil {
					// Build canceled, not a worker fault.
					c.release(r.w, relNeutral)
					drain(inflight)
					return nil, stats, ctx.Err()
				}
				if err := fail(r.err); err != nil {
					drain(inflight)
					return nil, stats, err
				}
			case r.resp.Error != "":
				// Application errors are deterministic (same request, same
				// failure on any worker): fail the build, don't retry.
				c.release(r.w, relOK)
				drain(inflight)
				return nil, stats, fmt.Errorf("dist: worker %s: %s", r.w.id, r.resp.Error)
			default:
				parts, err := core.DecodePartials(r.resp.Partials)
				if err == nil {
					err = checkCoverage(parts, r.splits)
				}
				if err != nil {
					if ferr := fail(err); ferr != nil {
						drain(inflight)
						return nil, stats, ferr
					}
					break
				}
				c.release(r.w, relOK)
				stats.RPCs++
				usedWorkers[r.w.id] = true
				for i := range parts {
					if partials[parts[i].SplitID] == nil {
						remaining--
					}
					partials[parts[i].SplitID] = &parts[i]
				}
			}
		case <-retry.C:
			// Re-check dispatchability: workers may have registered,
			// recovered, or freed capacity held by a concurrent build.
		case <-ctx.Done():
			drain(inflight)
			return nil, stats, ctx.Err()
		}
	}
	stats.WorkersUsed = len(usedWorkers)

	flat := make([]core.SplitPartial, m)
	for i, part := range partials {
		flat[i] = *part
	}
	out, err := core.MergePartials(ctx, file, method, p, flat)
	if err != nil {
		return nil, stats, err
	}
	// The merge only times itself; report the whole fan-out + merge.
	out.Metrics.WallTime = time.Since(start)
	return out, stats, nil
}

// checkCoverage verifies a response's partials are exactly the assigned
// splits.
func checkCoverage(parts []core.SplitPartial, assigned []int) error {
	if len(parts) != len(assigned) {
		return fmt.Errorf("dist: got %d partials for %d assigned splits", len(parts), len(assigned))
	}
	want := make(map[int]bool, len(assigned))
	for _, id := range assigned {
		want[id] = true
	}
	for _, part := range parts {
		if !want[part.SplitID] {
			return fmt.Errorf("dist: unexpected partial for split %d", part.SplitID)
		}
		delete(want, part.SplitID)
	}
	return nil
}

// Handler returns the coordinator's HTTP surface: worker registration,
// heartbeats, and fleet listing, mounted by wavehistd under /dist/v1/.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathRegister, func(rw http.ResponseWriter, r *http.Request) {
		var req RegisterRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.ID == "" || req.Addr == "" {
			writeJSON(rw, http.StatusBadRequest, map[string]string{"error": "register needs id and addr"})
			return
		}
		c.Register(req.ID, req.Addr, req.Capacity)
		writeJSON(rw, http.StatusOK, &RegisterResponse{
			OK:              true,
			HeartbeatMillis: c.cfg.HeartbeatEvery.Milliseconds(),
		})
	})
	mux.HandleFunc("POST "+PathHeartbeat, func(rw http.ResponseWriter, r *http.Request) {
		var req HeartbeatRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.ID == "" {
			writeJSON(rw, http.StatusBadRequest, map[string]string{"error": "heartbeat needs id"})
			return
		}
		if !c.Heartbeat(req.ID) {
			writeJSON(rw, http.StatusNotFound, &HeartbeatResponse{OK: false})
			return
		}
		writeJSON(rw, http.StatusOK, &HeartbeatResponse{OK: true})
	})
	mux.HandleFunc("GET "+PathWorkers, func(rw http.ResponseWriter, r *http.Request) {
		writeJSON(rw, http.StatusOK, &WorkersResponse{Workers: c.Workers()})
	})
	return mux
}

// NewLoopbackCluster builds a coordinator with n in-process workers on a
// fresh Loopback transport (HTTP fallback attached, so remote workers can
// still join the same coordinator). This is wavehistd's single-binary
// -workers mode and the test harness: same coordinator and worker code,
// no sockets. capacity <= 0 defaults per NewWorker.
func NewLoopbackCluster(n, capacity int, cfg Config) (*Coordinator, *Loopback) {
	lb := NewLoopback()
	lb.Fallback = NewHTTPTransport()
	c := NewCoordinator(lb, cfg)
	for i := 0; i < n; i++ {
		w := NewWorker(fmt.Sprintf("local-%d", i), capacity)
		addr := lb.Add(w)
		c.Register(w.ID(), addr, w.Capacity())
	}
	return c, lb
}
