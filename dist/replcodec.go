package dist

// Replication frames. A read replica catches up by pulling: it sends the
// highest registry version it has applied (ReplPullRequest.Since) and the
// primary answers with every entry published after that version plus the
// full current name set (ReplPullResponse.Names), which lets the replica
// detect drops without a tombstone log. Entry.Version is the registry
// version at which the entry was installed and is strictly monotonic, so
// it doubles as the replication cursor — the same role an LSN plays in
// log shipping, without keeping a log: the registry snapshot IS the
// materialized log tail.
//
// The frames ride the same WDF1 envelope as the job wire (deflate over
// threshold, crc-free length-prefixed body) so replicas and primaries
// reuse the transport's content negotiation unchanged.

// Replication entry kinds.
const (
	ReplKind1D byte = 1 // blob is a "WHST" 1D histogram
	ReplKind2D byte = 2 // blob is a "WH2D" 2D histogram
)

// ReplPullRequest asks a primary for all registry changes after Since
// (0 = full snapshot). Epoch is the primary epoch the replica last
// synced from (0 = unknown / first pull): a primary whose own epoch
// differs answers with a full snapshot so the replica re-bases instead
// of trusting a cursor minted under a dead lineage.
type ReplPullRequest struct {
	Since uint64 `json:"since"`
	Epoch uint64 `json:"epoch,omitempty"`
}

// ReplEntry is one histogram the replica must (re)install: the wire-format
// blob plus the registry version to advance the cursor to.
type ReplEntry struct {
	Name    string `json:"name"`
	Kind    byte   `json:"kind"` // ReplKind1D | ReplKind2D
	Version uint64 `json:"version"`
	Blob    []byte `json:"blob"`
}

// ReplPullResponse carries the primary's current registry version, the
// complete set of live names (for drop detection), and the entries newer
// than the request's Since, in version order. Epoch is the primary's
// registry epoch (0 = primary predates epochs); Since echoes the cursor
// the primary actually answered from — 0 means the response is a full
// snapshot, which a primary forces when the request's epoch does not
// match its own.
type ReplPullResponse struct {
	Version uint64      `json:"version"`
	Epoch   uint64      `json:"epoch,omitempty"`
	Since   uint64      `json:"since"`
	Names   []string    `json:"names"`
	Entries []ReplEntry `json:"entries"`
}

// EncodeReplPullRequest serializes a pull request as one WDF1 frame.
// The epoch is appended after the original body so frames from
// pre-epoch replicas still decode (epoch 0 = unknown).
func EncodeReplPullRequest(req *ReplPullRequest) []byte {
	b := appendUvarint(nil, req.Since)
	b = appendUvarint(b, req.Epoch)
	return encodeFrame(msgReplPullRequest, b)
}

// DecodeReplPullRequest is the inverse of EncodeReplPullRequest.
func DecodeReplPullRequest(frame []byte) (*ReplPullRequest, error) {
	body, err := decodeFrame(frame, msgReplPullRequest)
	if err != nil {
		return nil, err
	}
	r := &breader{b: body}
	req := &ReplPullRequest{Since: r.uvarint()}
	if r.remaining() {
		req.Epoch = r.uvarint()
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return req, nil
}

// EncodeReplPullResponse serializes a pull response as one WDF1 frame.
// Histogram blobs dominate the payload; the envelope's deflate pass
// compresses them together with the framing.
func EncodeReplPullResponse(resp *ReplPullResponse) []byte {
	b := appendUvarint(nil, resp.Version)
	b = appendUvarint(b, uint64(len(resp.Names)))
	for _, n := range resp.Names {
		b = appendStr(b, n)
	}
	b = appendUvarint(b, uint64(len(resp.Entries)))
	for i := range resp.Entries {
		e := &resp.Entries[i]
		b = appendStr(b, e.Name)
		b = append(b, e.Kind)
		b = appendUvarint(b, e.Version)
		b = appendBlob(b, e.Blob)
	}
	// Epoch fields ride after the original body: pre-epoch decoders never
	// see them and post-epoch decoders treat their absence as epoch 0.
	b = appendUvarint(b, resp.Epoch)
	b = appendUvarint(b, resp.Since)
	return encodeFrame(msgReplPullResponse, b)
}

// DecodeReplPullResponse is the inverse of EncodeReplPullResponse.
func DecodeReplPullResponse(frame []byte) (*ReplPullResponse, error) {
	body, err := decodeFrame(frame, msgReplPullResponse)
	if err != nil {
		return nil, err
	}
	r := &breader{b: body}
	resp := &ReplPullResponse{Version: r.uvarint()}
	nNames := r.length(1)
	for i := 0; i < nNames && r.err == nil; i++ {
		resp.Names = append(resp.Names, r.str())
	}
	nEnts := r.length(4)
	for i := 0; i < nEnts && r.err == nil; i++ {
		e := ReplEntry{Name: r.str()}
		if r.err != nil {
			break
		}
		if len(r.b)-r.off < 1 {
			r.fail("repl entry kind: truncated")
			break
		}
		e.Kind = r.b[r.off]
		r.off++
		e.Version = r.uvarint()
		e.Blob = r.blob()
		if e.Kind != ReplKind1D && e.Kind != ReplKind2D {
			r.fail("repl entry %q: unknown kind %d", e.Name, e.Kind)
			break
		}
		resp.Entries = append(resp.Entries, e)
	}
	if r.remaining() {
		resp.Epoch = r.uvarint()
	}
	if r.remaining() {
		resp.Since = r.uvarint()
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return resp, nil
}
