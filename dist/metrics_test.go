package dist_test

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"wavelethist"
	"wavelethist/dist"
	"wavelethist/internal/obs"
)

func scrapeMetrics(t *testing.T, url string) map[string]*obs.Family {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d: %s", resp.StatusCode, body)
	}
	fams, err := obs.Lint(string(body))
	if err != nil {
		t.Fatalf("lint: %v\n%s", err, body)
	}
	return fams
}

// TestWorkerMetricsEndpoint: a worker that served map RPCs exposes its
// counters (requests, splits by source, wire bytes, cache posture) at
// GET /metrics in lint-clean exposition format.
func TestWorkerMetricsEndpoint(t *testing.T) {
	coord := dist.NewCoordinator(dist.NewHTTPTransport(), dist.Config{SplitsPerCall: 4})
	w := dist.NewWorker("w0", 2)
	wsrv := httptest.NewServer(w.Handler())
	defer wsrv.Close()
	coord.Register("w0", wsrv.URL, 2)

	ds, err := wavelethist.NewZipfDataset(wavelethist.ZipfOptions{
		Records: 1 << 14, Domain: 1 << 10, Alpha: 1.1, Seed: 3, ChunkSize: 8 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := wavelethist.Options{K: 20, Seed: 3}
	if _, err := wavelethist.BuildDistributed(context.Background(), ds, wavelethist.TwoLevelS, opts, coord); err != nil {
		t.Fatal(err)
	}
	// A second identical build hits the worker's partial cache.
	if _, err := wavelethist.BuildDistributed(context.Background(), ds, wavelethist.TwoLevelS, opts, coord); err != nil {
		t.Fatal(err)
	}

	fams := scrapeMetrics(t, wsrv.URL)
	if err := obs.RequireFamilies(fams,
		"waveworker_map_requests_total", "waveworker_map_duration_seconds",
		"waveworker_splits_total", "waveworker_wire_bytes_total",
		"waveworker_cache_hits_total", "waveworker_cache_misses_total",
		"waveworker_cache_bytes", "waveworker_capacity",
	); err != nil {
		t.Fatal(err)
	}
	bySource := map[string]float64{}
	for _, sm := range fams["waveworker_splits_total"].Samples {
		bySource[sm.Labels["source"]] = sm.Value
	}
	if bySource["computed"] < 1 {
		t.Errorf("splits computed = %v, want >= 1", bySource["computed"])
	}
	if bySource["cached"] < 1 {
		t.Errorf("splits cached = %v, want >= 1 after warm rebuild", bySource["cached"])
	}
	var wireIn float64
	for _, sm := range fams["waveworker_wire_bytes_total"].Samples {
		if sm.Labels["dir"] == "in" {
			wireIn = sm.Value
		}
	}
	if wireIn <= 0 {
		t.Errorf("wire bytes in = %v, want > 0", wireIn)
	}
}

// TestCoordinatorTraceEndpointAndDump: a build's spans are served at
// GET /dist/v1/trace/{id} and dumped as JSONL into Config.TraceDir.
func TestCoordinatorTraceEndpointAndDump(t *testing.T) {
	traceDir := t.TempDir()
	coord, _ := dist.NewLoopbackCluster(2, 0, dist.Config{SplitsPerCall: 2, TraceDir: traceDir})
	coordSrv := httptest.NewServer(coord.Handler())
	defer coordSrv.Close()

	ds, err := wavelethist.NewZipfDataset(wavelethist.ZipfOptions{
		Records: 1 << 14, Domain: 1 << 10, Alpha: 1.1, Seed: 5, ChunkSize: 4 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	var jobID string
	ctx := dist.WithJobIDSink(context.Background(), func(id string) { jobID = id })
	if _, err := wavelethist.BuildDistributed(ctx, ds, wavelethist.HWTopk, wavelethist.Options{K: 20, Seed: 5}, coord); err != nil {
		t.Fatal(err)
	}
	if jobID == "" {
		t.Fatal("job-ID sink never fired")
	}

	tv, ok := coord.Trace(jobID)
	if !ok {
		t.Fatalf("no trace for %s", jobID)
	}
	if tv.State != "done" || tv.Rounds != 3 || len(tv.Spans) == 0 {
		t.Fatalf("trace: state=%s rounds=%d spans=%d", tv.State, tv.Rounds, len(tv.Spans))
	}
	for _, sp := range tv.Spans {
		if sp.Round < 1 || sp.Round > 3 {
			t.Errorf("span round out of range: %+v", sp)
		}
	}

	// Same view over HTTP.
	resp, err := http.Get(coordSrv.URL + dist.PathTrace + jobID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace = %d", resp.StatusCode)
	}
	var httpView dist.TraceView
	if err := json.NewDecoder(resp.Body).Decode(&httpView); err != nil {
		t.Fatal(err)
	}
	if httpView.JobID != jobID || len(httpView.Spans) != len(tv.Spans) {
		t.Fatalf("HTTP trace mismatch: %s spans=%d, want %s spans=%d",
			httpView.JobID, len(httpView.Spans), jobID, len(tv.Spans))
	}
	if r2, err := http.Get(coordSrv.URL + dist.PathTrace + "build-unknown"); err != nil {
		t.Fatal(err)
	} else {
		r2.Body.Close()
		if r2.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown trace = %d, want 404", r2.StatusCode)
		}
	}

	// JSONL dump: one summary line plus one per span, all valid JSON.
	f, err := os.Open(filepath.Join(traceDir, jobID+".jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	lines := 0
	for sc.Scan() {
		var v map[string]any
		if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
			t.Fatalf("line %d not JSON: %v", lines+1, err)
		}
		if v["job_id"] != jobID {
			t.Fatalf("line %d wrong job_id: %v", lines+1, v["job_id"])
		}
		lines++
	}
	if lines != 1+len(tv.Spans) {
		t.Fatalf("JSONL lines = %d, want %d", lines, 1+len(tv.Spans))
	}
}
